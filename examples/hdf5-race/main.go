// hdf5-race: the paper's Fig. 6 — improperly vs properly synchronized HDF5
// code under MPI-IO semantics.
//
// The improper variant is the recurring pattern found in HDF5's own tests
// (shapesame, testphdf5): H5Dwrite, MPI_Barrier, H5Dread. The barrier
// establishes temporal order, which is enough only on POSIX file systems;
// MPI-IO semantics requires the sync-barrier-sync construct, so the data
// returned by H5Dread is undefined on weaker systems.
//
// The proper variant inserts H5Fflush (→ MPI_File_sync) on both sides of
// the barrier, exactly the fix the paper's Fig. 6 shows.
package main

import (
	"fmt"
	"log"

	"verifyio"
	"verifyio/internal/sim/hdf5"
	"verifyio/internal/sim/mpiio"
)

func pattern(withFlush bool) func(r *verifyio.Rank) error {
	return func(r *verifyio.Rank) error {
		comm := r.Proc().CommWorld()
		f, err := hdf5.Create(r, comm, "dset.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("d", int64(comm.Size())*8)
		if err != nil {
			return err
		}
		me := int64(r.Rank())
		own := hdf5.Hyperslab{Start: []int64{me * 8}, Count: []int64{8}}
		if err := ds.Write(hdf5.Independent, own, []byte(fmt.Sprintf("rank%04d", r.Rank()))); err != nil {
			return err
		}
		if withFlush {
			if err := f.Flush(); err != nil { // H5Fflush → MPI_File_sync
				return err
			}
		}
		if err := r.Barrier(comm); err != nil {
			return err
		}
		if withFlush {
			if err := f.Flush(); err != nil {
				return err
			}
		}
		neighbour := (me + 1) % int64(comm.Size())
		other := hdf5.Hyperslab{Start: []int64{neighbour * 8}, Count: []int64{8}}
		if _, err := ds.Read(hdf5.Independent, other); err != nil {
			return err
		}
		return f.Close()
	}
}

func main() {
	for _, variant := range []struct {
		name      string
		withFlush bool
	}{
		{"improper (write / barrier / read)", false},
		{"proper   (write / flush / barrier / flush / read)", true},
	} {
		hdf5.ResetMetadata()
		tr, err := verifyio.TraceProgram(4, verifyio.POSIX, pattern(variant.withFlush))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", variant.name)
		for _, model := range []verifyio.Model{verifyio.POSIX, verifyio.MPIIO} {
			rep, err := verifyio.Verify(tr, model, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s\n", rep.Summary())
			if rep.RaceCount > 0 && len(rep.Races) > 0 {
				race := rep.Races[0]
				fmt.Printf("    e.g. rank %d %s vs rank %d %s on %s\n",
					race.RankX, race.FuncX, race.RankY, race.FuncY, race.File)
			}
		}
		fmt.Println()
	}
	fmt.Println("The flush calls invoke MPI_File_sync, completing the")
	fmt.Println("sync-barrier-sync construct that MPI-IO consistency requires.")
}

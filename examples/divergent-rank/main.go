// divergent-rank: spotting the straggler in a fleet with directly-follows
// graphs.
//
// Four ranks run the same bulk-synchronous I/O phase — open a shared file,
// write a private block, fsync, barrier, read the block back, barrier,
// close. Rank 2 misbehaves: before the read-back it grinds through an extra
// read-modify-write loop on its block, the classic signature of a rank that
// fell off the collective-buffering path and is patching its output in
// place.
//
// Every rank's record stream is folded into a per-rank directly-follows
// graph (nodes = call classes tagged with the file they touch, edges =
// successions). The three well-behaved ranks share one structural
// fingerprint, which makes them the majority; rank 2's extra read:f0 →
// write:f0 cycle puts edges in its graph the consensus does not have, so
// its anomaly score is positive and it is flagged. The program prints the
// per-rank scores and exits non-zero unless exactly rank 2 is caught — CI
// runs it as the end-to-end anomaly-detection check.
package main

import (
	"fmt"
	"log"
	"os"

	"verifyio"
	"verifyio/internal/dfg"
	"verifyio/internal/sim/posixfs"
)

const (
	ranks     = 4
	blockSize = 64
	// rmwRounds is how many read-modify-write passes the divergent rank
	// makes over its block — each adds a pread and a pwrite the other
	// ranks never issue.
	rmwRounds = 8
	divergent = 2
)

func program(r *verifyio.Rank) error {
	comm := r.Proc().CommWorld()
	off := int64(r.Rank() * blockSize)
	block := make([]byte, blockSize)
	for i := range block {
		block[i] = byte('a' + r.Rank())
	}

	fd, err := r.Open("data.bin", posixfs.ORdwr|posixfs.OCreate)
	if err != nil {
		return err
	}
	if _, err := r.Pwrite(fd, block, off); err != nil {
		return err
	}
	if err := r.Fsync(fd); err != nil {
		return err
	}
	if err := r.Barrier(comm); err != nil {
		return err
	}
	if _, err := r.Pread(fd, blockSize, off); err != nil {
		return err
	}
	if r.Rank() == divergent {
		for round := 0; round < rmwRounds; round++ {
			data, err := r.Pread(fd, blockSize, off)
			if err != nil {
				return err
			}
			for i := range data {
				data[i] ^= 1
			}
			if _, err := r.Pwrite(fd, data, off); err != nil {
				return err
			}
		}
	}
	if err := r.Barrier(comm); err != nil {
		return err
	}
	return r.Close(fd)
}

func main() {
	tr, err := verifyio.TraceProgram(ranks, verifyio.POSIX, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d records across %d ranks\n\n", tr.NumRecords(), tr.NumRanks())

	// Store the trace and fold it back through the streaming builder — the
	// same bounded-memory path `verifyio -dfg-out` takes on real traces.
	dir, err := os.MkdirTemp("", "divergent-rank-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := tr.WriteDir(dir); err != nil {
		log.Fatal(err)
	}
	fleet, err := dfg.BuildStreamDir(dir, dfg.StreamOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fleet.Summary())
	for _, s := range fleet.Scores {
		flag := ""
		if s.Anomalous {
			flag = "  <-- anomalous"
		}
		fmt.Printf("rank %d: struct-diff %2d  count-div %6.2f  score %6.2f%s\n",
			s.Rank, s.StructDiff, s.CountDiv, s.Score, flag)
	}

	if len(fleet.AnomalousRanks) != 1 || fleet.AnomalousRanks[0] != divergent {
		log.Fatalf("expected exactly rank %d anomalous, got %v", divergent, fleet.AnomalousRanks)
	}
	if s := fleet.Scores[divergent]; s.Score <= 0 {
		log.Fatalf("rank %d flagged but its score is %v, want > 0", divergent, s.Score)
	}
	fmt.Printf("\nrank %d correctly flagged: its read-modify-write loop adds edges the\nmajority graph does not have\n", divergent)
}

// Quickstart: the paper's running example (Fig. 2).
//
// Rank 0 writes the first four bytes of a shared file through MPI-IO and
// commits them with fsync; an MPI_Barrier orders the ranks; rank 1 reads
// the same four bytes. The whole four-step workflow then runs: the trace is
// collected, the pwrite/pread conflict is detected, the MPI calls are
// matched into a happens-before order, and the conflict is verified against
// all four consistency models.
//
// Expected verdicts (the Fig. 2 outcome):
//
//	POSIX    properly synchronized  (the barrier orders the accesses)
//	Commit   properly synchronized  (write -hb-> fsync -hb-> read)
//	Session  DATA RACE              (no close→open pair between them)
//	MPI-IO   DATA RACE              (no sync-barrier-sync construct)
package main

import (
	"fmt"
	"log"
	"os"

	"verifyio"
	"verifyio/internal/sim/mpiio"
)

func program(r *verifyio.Rank) error {
	comm := r.Proc().CommWorld()
	f, err := mpiio.Open(r, comm, "shared.bin", mpiio.ModeRdwr|mpiio.ModeCreate, mpiio.Config{})
	if err != nil {
		return err
	}
	if r.Rank() == 0 {
		if err := f.WriteAt(0, []byte("abcd")); err != nil {
			return err
		}
		// Commit the write. MPI_File_sync is collective, so the single
		// writer commits through the POSIX interface directly.
		if err := r.Fsync(f.Fd()); err != nil {
			return err
		}
	}
	if err := r.Barrier(comm); err != nil {
		return err
	}
	if r.Rank() == 1 {
		data, err := f.ReadAt(0, 4)
		if err != nil {
			return err
		}
		fmt.Printf("rank 1 read %q\n", data)
	}
	return f.Close()
}

func main() {
	tr, err := verifyio.TraceProgram(2, verifyio.POSIX, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d records across %d ranks\n\n", tr.NumRecords(), tr.NumRanks())

	reports, err := verifyio.VerifyAll(tr, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println(rep.Summary())
	}

	// Show the detail for one racy model: the call chains identify the
	// MPI-IO calls behind the conflicting POSIX operations.
	fmt.Println()
	for _, rep := range reports {
		if rep.Model == verifyio.MPIIO {
			rep.Render(os.Stdout)
		}
	}
}

// pnetcdf-flexible: the paper's Fig. 5 — the library-level MPI-IO violation
// inside PnetCDF's flexible API.
//
// The program mirrors flexible.c: it defines a two-dimensional variable,
// initializes it to fill values (ncmpi_set_fill + ncmpi_enddef, where each
// rank writes NULLs to its own area), then stores real data with the
// flexible ncmpi_put_vara_all. Internally the library modifies the MPI file
// view before the second collective write, which arms MPI-IO collective
// buffering: rank 0 performs the entire aggregated write, conflicting with
// every other rank's earlier fill write.
//
// The verdicts show why this is a *library*-level problem: the execution is
// properly synchronized under POSIX (the aggregation exchange orders the
// writes) but races under MPI-IO semantics — and the reported call chains
// point at ncmpi_enddef and ncmpi_put_vara_all, internals the application
// cannot reason about.
//
// The ablation at the end re-runs the program with collective buffering
// disabled: the aggregation disappears and so does the violation.
package main

import (
	"fmt"
	"log"
	"strings"

	"verifyio"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/pnetcdf"
)

func flexible(cfg mpiio.Config) func(r *verifyio.Rank) error {
	return func(r *verifyio.Rank) error {
		comm := r.Proc().CommWorld()
		f, err := pnetcdf.Create(r, comm, "flexible.nc", cfg)
		if err != nil {
			return err
		}
		rows, err := f.DefDim("rows", 16)
		if err != nil {
			return err
		}
		cols, err := f.DefDim("cols", 8)
		if err != nil {
			return err
		}
		v, err := f.DefVar("var", "NC_INT", rows, cols)
		if err != nil {
			return err
		}
		if err := f.SetFill(true); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil { // first MPI_File_write_at_all: fill
			return err
		}
		me := int64(r.Rank())
		n := int64(comm.Size())
		start := []int64{me * 16 / n, 0}
		count := []int64{16 / n, 8}
		data := make([]byte, count[0]*count[1])
		for i := range data {
			data[i] = byte('A' + r.Rank())
		}
		// Second MPI_File_write_at_all: the flexible put (view change →
		// aggregation → rank 0 writes everything).
		if err := f.PutVaraAll(v, start, count, data); err != nil {
			return err
		}
		return f.Close()
	}
}

func main() {
	run := func(label string, cfg mpiio.Config) {
		pnetcdf.ResetMetadata()
		tr, err := verifyio.TraceProgram(4, verifyio.POSIX, flexible(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", label)
		reports, err := verifyio.VerifyAll(tr, nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reports {
			fmt.Printf("  %s\n", rep.Summary())
		}
		for _, rep := range reports {
			if rep.Model == verifyio.MPIIO && len(rep.Races) > 0 {
				race := rep.Races[0]
				fmt.Println("  root cause (call chains of the first race):")
				fmt.Printf("    X: %s\n", strings.Join(race.ChainX, " -> "))
				fmt.Printf("    Y: %s\n", strings.Join(race.ChainY, " -> "))
			}
		}
		fmt.Println()
	}
	run("collective buffering ON  (production ROMIO behaviour)", mpiio.DefaultConfig())
	run("collective buffering OFF (ablation)", mpiio.Config{CollectiveBuffering: false})
	fmt.Println("With aggregation disabled each rank writes its own region and the")
	fmt.Println("fill-vs-aggregated-write conflict never forms — confirming the")
	fmt.Println("violation originates in the library's optimization, not the test.")
}

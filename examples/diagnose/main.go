// diagnose: the automated root-cause analysis of §V, over the three
// categories of consistency violation the paper identifies.
//
// Three buggy programs run through the pipeline; for each, the diagnosis
// answers the paper's central debugging questions — is the application or
// the library responsible, and what is the fix?
//
//  1. parallel5-style: every rank writes the whole variable through
//     nc_put_var_schar — unordered conflict, application must fix.
//  2. shapesame-style: H5Dwrite / barrier / H5Dread — the ordering exists
//     but the MPI-IO construct is missing; the application adds
//     H5Fflush (MPI_File_sync) around the barrier.
//  3. flexible-style: enddef fill vs aggregated collective write —
//     library-internal I/O; only the library can fix it.
package main

import (
	"fmt"
	"log"

	"verifyio"
	"verifyio/internal/sim/hdf5"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/netcdf"
	"verifyio/internal/sim/pnetcdf"
)

func main() {
	scenarios := []struct {
		name  string
		ranks int
		model verifyio.Model
		prog  func(r *verifyio.Rank) error
	}{
		{"whole-variable writes from every rank (parallel5)", 2, verifyio.POSIX, parallel5Style},
		{"write / barrier / read without flush (shapesame)", 2, verifyio.MPIIO, shapesameStyle},
		{"fill vs aggregated flexible write (flexible)", 4, verifyio.MPIIO, flexibleStyle},
	}
	for _, sc := range scenarios {
		hdf5.ResetMetadata()
		pnetcdf.ResetMetadata()
		tr, err := verifyio.TraceProgram(sc.ranks, verifyio.POSIX, sc.prog)
		if err != nil {
			log.Fatal(err)
		}
		rep, diagnoses, err := verifyio.Diagnose(tr, sc.model, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", sc.name)
		fmt.Printf("   verdict under %s: %s\n", sc.model, rep.Summary())
		if len(diagnoses) > 0 {
			d := diagnoses[0]
			fmt.Printf("   category:    %s\n", d.Category)
			fmt.Printf("   responsible: %s\n", d.Responsible)
			fmt.Printf("   fix:         %s\n", d.Suggestion)
		}
		fmt.Println()
	}
}

func parallel5Style(r *verifyio.Rank) error {
	comm := r.Proc().CommWorld()
	f, err := netcdf.CreatePar(r, comm, "p5.nc", mpiio.DefaultConfig())
	if err != nil {
		return err
	}
	d, err := f.DefDim("x", 16)
	if err != nil {
		return err
	}
	v, err := f.DefVar("v", "NC_BYTE", d)
	if err != nil {
		return err
	}
	if err := f.EndDef(); err != nil {
		return err
	}
	if err := f.PutVarSchar(v, make([]byte, 16)); err != nil {
		return err
	}
	return f.Close()
}

func shapesameStyle(r *verifyio.Rank) error {
	comm := r.Proc().CommWorld()
	f, err := hdf5.Create(r, comm, "s.h5", mpiio.DefaultConfig())
	if err != nil {
		return err
	}
	ds, err := f.CreateDataset("d", int64(comm.Size())*8)
	if err != nil {
		return err
	}
	me := int64(r.Rank())
	own := hdf5.Hyperslab{Start: []int64{me * 8}, Count: []int64{8}}
	if err := ds.Write(hdf5.Independent, own, make([]byte, 8)); err != nil {
		return err
	}
	if err := r.Barrier(comm); err != nil {
		return err
	}
	other := hdf5.Hyperslab{Start: []int64{(me + 1) % int64(comm.Size()) * 8}, Count: []int64{8}}
	if _, err := ds.Read(hdf5.Independent, other); err != nil {
		return err
	}
	return f.Close()
}

func flexibleStyle(r *verifyio.Rank) error {
	comm := r.Proc().CommWorld()
	f, err := pnetcdf.Create(r, comm, "flex.nc", mpiio.DefaultConfig())
	if err != nil {
		return err
	}
	d, err := f.DefDim("x", 16)
	if err != nil {
		return err
	}
	v, err := f.DefVar("v", "NC_INT", d)
	if err != nil {
		return err
	}
	if err := f.SetFill(true); err != nil {
		return err
	}
	if err := f.EndDef(); err != nil {
		return err
	}
	me := int64(r.Rank())
	return f.PutVaraAll(v, []int64{me * 4}, []int64{4}, make([]byte, 4))
}

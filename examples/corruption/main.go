// corruption: why improper synchronization matters — the silent data
// corruption the paper warns about (§V-C2), made visible.
//
// The same program runs twice on a simulated file system that provides
// MPI-IO consistency (writes stay invisible to other processes until an
// MPI_File_sync/close publishes them — how burst-buffer file systems
// behave):
//
//   - the improper variant (write / barrier / read) really reads stale
//     bytes: the barrier orders the processes in time, but time is not
//     visibility on a relaxed file system;
//   - the proper variant (write / sync / barrier / sync / read) reads the
//     data correctly.
//
// VerifyIO's verdict under the MPI-IO model predicts exactly this: the
// improper execution is flagged as a data race, the proper one is clean —
// without ever looking at the data.
package main

import (
	"bytes"
	"fmt"
	"log"

	"verifyio"
	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
)

const payload = "IMPORTANT-RESULT"

func program(withSync bool, got *[]byte) func(r *recorder.Rank) error {
	return func(r *recorder.Rank) error {
		comm := r.Proc().CommWorld()
		f, err := mpiio.Open(r, comm, "out.bin", mpiio.ModeRdwr|mpiio.ModeCreate, mpiio.Config{})
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			if err := f.WriteAt(0, []byte(payload)); err != nil {
				return err
			}
		}
		if withSync {
			if err := f.Sync(); err != nil { // collective MPI_File_sync
				return err
			}
		}
		if err := r.Barrier(comm); err != nil {
			return err
		}
		if withSync {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		if r.Rank() == 1 {
			data, err := f.ReadAt(0, len(payload))
			if err != nil {
				return err
			}
			*got = data
		}
		// Keep the close (which also publishes) strictly after every
		// read, so the observed bytes depend only on the synchronization
		// pattern, not on scheduling luck.
		if err := r.Barrier(comm); err != nil {
			return err
		}
		return f.Close()
	}
}

func main() {
	for _, variant := range []struct {
		name     string
		withSync bool
	}{
		{"improper: write / barrier / read", false},
		{"proper:   write / sync / barrier / sync / read", true},
	} {
		// Run on a relaxed (MPI-IO consistency) file system and observe
		// what rank 1 actually reads.
		var got []byte
		env := recorder.NewEnv(2, recorder.Options{FSMode: posixfs.ModeMPIIO})
		if err := env.Run(program(variant.withSync, &got)); err != nil {
			log.Fatal(err)
		}
		ok := bytes.Equal(got, []byte(payload))
		fmt.Printf("== %s ==\n", variant.name)
		if ok {
			fmt.Printf("  rank 1 read %q  (correct)\n", got)
		} else {
			fmt.Printf("  rank 1 read %q  (STALE — silent corruption!)\n", got)
		}

		// VerifyIO predicts the outcome from the trace alone.
		var got2 []byte
		tr, err := verifyio.TraceProgram(2, verifyio.POSIX, program(variant.withSync, &got2))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := verifyio.Verify(tr, verifyio.MPIIO, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  VerifyIO (MPI-IO model): %s\n\n", rep.Summary())
	}
	fmt.Println("The verdicts match the observed behaviour: the execution VerifyIO")
	fmt.Println("flags is the one that silently reads stale data on a relaxed file")
	fmt.Println("system, while both behave identically on strict POSIX.")
}

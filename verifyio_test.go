package verifyio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	itrace "verifyio/internal/trace"
)

func TestModelsOrder(t *testing.T) {
	got := Models()
	want := []Model{POSIX, Commit, Session, MPIIO}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Models()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCorpusListing(t *testing.T) {
	names := CorpusTests()
	if len(names) != 91 {
		t.Fatalf("CorpusTests = %d entries, want 91", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range []string{"parallel5", "flexible", "null_args", "shapesame", "collective_error"} {
		if !seen[n] {
			t.Errorf("corpus missing named test %s", n)
		}
	}
}

func TestRunAndVerifyFlexible(t *testing.T) {
	tr, err := RunCorpusTest("flexible")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 4 || tr.NumRecords() == 0 {
		t.Fatalf("trace shape: ranks=%d records=%d", tr.NumRanks(), tr.NumRecords())
	}
	if tr.Meta("program") != "flexible" {
		t.Errorf("meta program = %q", tr.Meta("program"))
	}
	reports, err := VerifyAll(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	byModel := map[Model]*Report{}
	for _, rep := range reports {
		byModel[rep.Model] = rep
	}
	if !byModel[POSIX].ProperlySynchronized {
		t.Error("flexible should be properly synchronized under POSIX")
	}
	for _, m := range []Model{Commit, Session, MPIIO} {
		if byModel[m].RaceCount == 0 {
			t.Errorf("flexible should race under %s", m)
		}
	}
	// Race details carry attribution data.
	race := byModel[MPIIO].Races[0]
	if race.File == "" || len(race.ChainX) == 0 || race.Level == "" {
		t.Errorf("race detail incomplete: %+v", race)
	}
}

func TestVerifySingleModelAndRender(t *testing.T) {
	tr, err := RunCorpusTest("parallel5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(tr, POSIX, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceCount == 0 || rep.ProperlySynchronized {
		t.Fatalf("parallel5 under POSIX: races=%d", rep.RaceCount)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"DATA RACES", "nc_put_var_schar", "pwrite"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
	if !strings.Contains(rep.Summary(), "data races") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestTraceDirRoundTrip(t *testing.T) {
	tr, err := RunCorpusTest("record")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "trace")
	if err := tr.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != tr.NumRecords() {
		t.Fatalf("round trip records %d != %d", back.NumRecords(), tr.NumRecords())
	}
	// Verification of the reloaded trace gives identical verdicts.
	a, err := VerifyAll(tr, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifyAll(back, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RaceCount != b[i].RaceCount {
			t.Errorf("%s: %d races before, %d after round trip", a[i].Model, a[i].RaceCount, b[i].RaceCount)
		}
	}
}

func TestUnmatchedReportSurface(t *testing.T) {
	tr, err := RunCorpusTest("collective_error")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(tr, MPIIO, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("collective_error must abort verification")
	}
	if len(rep.Problems) == 0 || rep.Problems[0].Kind == "" {
		t.Fatalf("problems = %+v", rep.Problems)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := RunCorpusTest("nope"); err == nil {
		t.Error("RunCorpusTest accepted unknown test")
	}
	tr, err := RunCorpusTest("scalar")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(tr, Model("strict"), nil); err == nil {
		t.Error("Verify accepted unknown model")
	}
	if _, err := Verify(tr, POSIX, &Options{Algorithm: "quantum"}); err == nil {
		t.Error("Verify accepted unknown algorithm")
	}
	if _, err := ReadTraceDir(t.TempDir()); err == nil {
		t.Error("ReadTraceDir accepted empty dir")
	}
}

// TestTolerantReadMatchesIntactPrefix is the acceptance test for lenient
// ingestion: verifying a trace salvaged from a mid-stream-truncated rank
// file must produce reports byte-identical (modulo the wall-clock timing
// line) to verifying the equivalent intact prefix trace, with accurate
// salvage accounting.
func TestTolerantReadMatchesIntactPrefix(t *testing.T) {
	full, err := RunCorpusTest("record")
	if err != nil {
		t.Fatal(err)
	}
	// Store uncompressed so the trace layout is addressable, then chop
	// rank 1's stream clean at a record boundary part-way through.
	dir := filepath.Join(t.TempDir(), "damaged")
	if err := itrace.WriteDir(dir, full.t, itrace.EncodeOptions{Compress: false}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rank-1.viot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := itrace.Layout(data)
	if err != nil {
		t.Fatal(err)
	}
	keep := len(full.t.Ranks[1]) / 2
	if keep < 2 {
		t.Fatalf("rank 1 too small to truncate meaningfully: %d records", len(full.t.Ranks[1]))
	}
	cut, ok := itrace.SpanByName(spans, "record", 0, keep-1)
	if !ok {
		t.Fatalf("no span for record %d", keep-1)
	}
	if err := os.WriteFile(path, data[:cut.End], 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict loading must refuse; lenient loading salvages with exact
	// counts.
	if _, err := ReadTraceDir(dir); err == nil {
		t.Fatal("strict ReadTraceDir accepted a truncated rank file")
	}
	salvaged, rec, err := ReadTraceDirTolerant(dir)
	if err != nil {
		t.Fatalf("tolerant read failed: %v", err)
	}
	wantDropped := len(full.t.Ranks[1]) - keep
	if rec.Clean() || len(rec.Ranks) != 1 {
		t.Fatalf("recovery = %+v, want exactly one damaged rank", rec)
	}
	rr := rec.Ranks[0]
	if rr.Rank != 1 || rr.Salvaged != keep || rr.Dropped != wantDropped {
		t.Fatalf("recovery = %+v, want rank 1 salvaged %d dropped %d", rr, keep, wantDropped)
	}
	if rr.Reason == "" || !strings.Contains(rr.Reason, "truncated") {
		t.Errorf("recovery reason %q does not classify the damage", rr.Reason)
	}

	// The reference: the same execution as if rank 1 had only ever logged
	// the prefix.
	ptr := itrace.New(full.t.NumRanks())
	ptr.Meta = full.t.Meta
	copy(ptr.Ranks, full.t.Ranks)
	ptr.Ranks[1] = full.t.Ranks[1][:keep]
	if err := ptr.Validate(); err != nil {
		t.Fatal(err)
	}
	prefix := &Trace{t: ptr}

	opts := &Options{Algorithm: "vector-clock", Workers: 1, ContinueOnUnmatched: true}
	got, err := VerifyAll(salvaged, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := VerifyAll(prefix, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("report counts differ: %d vs %d", len(got), len(want))
	}
	stripTiming := func(rep *Report) string {
		var buf bytes.Buffer
		rep.Render(&buf)
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "timing:") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	for i := range got {
		g, w := stripTiming(got[i]), stripTiming(want[i])
		if g != w {
			t.Errorf("%s: salvaged-trace report differs from intact-prefix report:\n--- salvaged\n%s\n--- intact\n%s",
				got[i].Model, g, w)
		}
	}
}

package verifyio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelsOrder(t *testing.T) {
	got := Models()
	want := []Model{POSIX, Commit, Session, MPIIO}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Models()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCorpusListing(t *testing.T) {
	names := CorpusTests()
	if len(names) != 91 {
		t.Fatalf("CorpusTests = %d entries, want 91", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range []string{"parallel5", "flexible", "null_args", "shapesame", "collective_error"} {
		if !seen[n] {
			t.Errorf("corpus missing named test %s", n)
		}
	}
}

func TestRunAndVerifyFlexible(t *testing.T) {
	tr, err := RunCorpusTest("flexible")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 4 || tr.NumRecords() == 0 {
		t.Fatalf("trace shape: ranks=%d records=%d", tr.NumRanks(), tr.NumRecords())
	}
	if tr.Meta("program") != "flexible" {
		t.Errorf("meta program = %q", tr.Meta("program"))
	}
	reports, err := VerifyAll(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	byModel := map[Model]*Report{}
	for _, rep := range reports {
		byModel[rep.Model] = rep
	}
	if !byModel[POSIX].ProperlySynchronized {
		t.Error("flexible should be properly synchronized under POSIX")
	}
	for _, m := range []Model{Commit, Session, MPIIO} {
		if byModel[m].RaceCount == 0 {
			t.Errorf("flexible should race under %s", m)
		}
	}
	// Race details carry attribution data.
	race := byModel[MPIIO].Races[0]
	if race.File == "" || len(race.ChainX) == 0 || race.Level == "" {
		t.Errorf("race detail incomplete: %+v", race)
	}
}

func TestVerifySingleModelAndRender(t *testing.T) {
	tr, err := RunCorpusTest("parallel5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(tr, POSIX, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceCount == 0 || rep.ProperlySynchronized {
		t.Fatalf("parallel5 under POSIX: races=%d", rep.RaceCount)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"DATA RACES", "nc_put_var_schar", "pwrite"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
	if !strings.Contains(rep.Summary(), "data races") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestTraceDirRoundTrip(t *testing.T) {
	tr, err := RunCorpusTest("record")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "trace")
	if err := tr.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != tr.NumRecords() {
		t.Fatalf("round trip records %d != %d", back.NumRecords(), tr.NumRecords())
	}
	// Verification of the reloaded trace gives identical verdicts.
	a, err := VerifyAll(tr, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifyAll(back, &Options{Algorithm: "vector-clock"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RaceCount != b[i].RaceCount {
			t.Errorf("%s: %d races before, %d after round trip", a[i].Model, a[i].RaceCount, b[i].RaceCount)
		}
	}
}

func TestUnmatchedReportSurface(t *testing.T) {
	tr, err := RunCorpusTest("collective_error")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(tr, MPIIO, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("collective_error must abort verification")
	}
	if len(rep.Problems) == 0 || rep.Problems[0].Kind == "" {
		t.Fatalf("problems = %+v", rep.Problems)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := RunCorpusTest("nope"); err == nil {
		t.Error("RunCorpusTest accepted unknown test")
	}
	tr, err := RunCorpusTest("scalar")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(tr, Model("strict"), nil); err == nil {
		t.Error("Verify accepted unknown model")
	}
	if _, err := Verify(tr, POSIX, &Options{Algorithm: "quantum"}); err == nil {
		t.Error("Verify accepted unknown algorithm")
	}
	if _, err := ReadTraceDir(t.TempDir()); err == nil {
		t.Error("ReadTraceDir accepted empty dir")
	}
}

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V). cmd/reproduce prints the corresponding rows as text
// artifacts; these benchmarks measure the work behind them and expose the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result's cost profile. Absolute times differ from the
// paper (simulator vs Lassen, scaled workloads — see EXPERIMENTS.md); the
// relative shape (which stage dominates which test, what pruning saves,
// how the algorithms compare) is the reproduced quantity.
package verifyio

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"verifyio/internal/corpus"
	"verifyio/internal/recorder"
	"verifyio/internal/semantics"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
	"verifyio/internal/verify"
)

// corpusTrace runs a corpus test once and returns its trace (helper; the
// traced execution itself is not part of the measured region unless the
// benchmark says so).
func corpusTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	tc, err := corpus.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := corpus.Run(tc)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTable1_ModelSpecs measures instantiating and rendering the four
// consistency-model specifications (S and MSC, Table I).
func BenchmarkTable1_ModelSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range semantics.All() {
			if err := m.MSC.Validate(); err != nil {
				b.Fatal(err)
			}
			_ = m.MSC.String()
		}
	}
}

// BenchmarkTable2_APICoverage measures building the Recorder⁺ signature
// registry from the embedded signature files and reports the per-library
// coverage counts (Table II).
func BenchmarkTable2_APICoverage(b *testing.B) {
	reg := recorder.DefaultRegistry()
	b.ReportMetric(float64(reg.Count(recorder.CoverageLegacy, "hdf5")), "legacy-hdf5")
	b.ReportMetric(float64(reg.Count(recorder.CoveragePlus, "hdf5")), "plus-hdf5")
	b.ReportMetric(float64(reg.Count(recorder.CoveragePlus, "netcdf")), "plus-netcdf")
	b.ReportMetric(float64(reg.Count(recorder.CoveragePlus, "pnetcdf")), "plus-pnetcdf")
	sigs := map[string]string{}
	for _, lib := range reg.Libraries() {
		sigs[lib] = ""
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-parse a representative signature file the way wrappergen
		// does (coverage is signature-file driven).
		sf, err := recorder.ParseSigFile(sampleSig)
		if err != nil {
			b.Fatal(err)
		}
		if len(sf.Funcs) == 0 {
			b.Fatal("no functions parsed")
		}
	}
}

const sampleSig = `# library: sample
expand TYPE: text schar uchar short ushort int uint long float double longlong ulonglong
int sample_put_var_${TYPE}(int ncid, int varid, const void *op);
int sample_get_var_${TYPE}(int ncid, int varid, void *ip);
int sample_open(const char *path, int mode, int *idp);
`

// BenchmarkFig2_Quickstart measures the full four-step pipeline on the
// paper's running example (Fig. 1 / Fig. 2): trace, detect, match, verify
// against all four models.
func BenchmarkFig2_Quickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := TraceProgram(2, POSIX, fig2Program)
		if err != nil {
			b.Fatal(err)
		}
		reports, err := VerifyAll(tr, &Options{Algorithm: "vector-clock"})
		if err != nil {
			b.Fatal(err)
		}
		if reports[0].RaceCount != 0 || reports[3].RaceCount != 1 {
			b.Fatalf("Fig. 2 verdicts changed: POSIX=%d MPI-IO=%d",
				reports[0].RaceCount, reports[3].RaceCount)
		}
	}
}

// BenchmarkFig3_Pruning measures the verification step with and without the
// conflict-group pruning (Fig. 3) on the largest-conflict-count corpus test
// and reports the properly-synchronized checks performed.
func BenchmarkFig3_Pruning(b *testing.B) {
	tr := corpusTrace(b, "pmulti_dset")
	a, err := verify.Analyze(tr, verify.AlgoVectorClock)
	if err != nil {
		b.Fatal(err)
	}
	model := semantics.MPIIOModel()
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"pruned", false}, {"exhaustive", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var checks int64
			var races int64
			for i := 0; i < b.N; i++ {
				rep, err := a.Verify(verify.Options{Model: model, DisablePruning: variant.disable})
				if err != nil {
					b.Fatal(err)
				}
				checks = rep.ChecksPerformed
				races = rep.RaceCount
			}
			b.ReportMetric(float64(checks), "ps-checks")
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkFig4_Corpus measures one full evaluation pass: all 91 corpus
// tests traced and verified against all four models (the work behind every
// Fig. 4 row), reporting the Table III totals as metrics.
func BenchmarkFig4_Corpus(b *testing.B) {
	var posixRacy, relaxedRacy, unmatched int
	for i := 0; i < b.N; i++ {
		posixRacy, relaxedRacy, unmatched = 0, 0, 0
		for _, tc := range corpus.Tests() {
			row, err := corpus.Verify(tc, verify.AlgoVectorClock)
			if err != nil {
				b.Fatal(err)
			}
			switch {
			case row.Unmatched:
				unmatched++
			default:
				if row.Races[0] > 0 {
					posixRacy++
				}
				if row.Races[3] > 0 {
					relaxedRacy++
				}
			}
		}
	}
	if posixRacy != 6 || relaxedRacy != 28 || unmatched != 3 {
		b.Fatalf("Table III totals changed: %d/%d/%d", posixRacy, relaxedRacy, unmatched)
	}
	b.ReportMetric(float64(posixRacy), "posix-racy")
	b.ReportMetric(float64(relaxedRacy), "relaxed-racy")
	b.ReportMetric(float64(unmatched), "unmatched")
}

// BenchmarkTable3_Summary measures aggregating Fig. 4 rows into the
// Table III summary.
func BenchmarkTable3_Summary(b *testing.B) {
	var rows []*corpus.Row
	for _, name := range []string{"parallel5", "flexible", "shapesame", "scalar", "collective_error"} {
		tc, err := corpus.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		row, err := corpus.Verify(tc, verify.AlgoVectorClock)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := corpus.Summarize(rows)
		if corpus.Totals(s.Unmatched) != 1 {
			b.Fatal("summary changed")
		}
	}
}

// BenchmarkTable4_Breakdown measures the per-stage cost of the three
// slowest tests (Table IV): nc4perf and pmulti_dset are dominated by
// conflict handling/verification, cache by happens-before construction.
func BenchmarkTable4_Breakdown(b *testing.B) {
	for _, name := range []string{"nc4perf", "cache", "pmulti_dset"} {
		tr := corpusTrace(b, name)
		b.Run(name, func(b *testing.B) {
			var timing verify.Timing
			for i := 0; i < b.N; i++ {
				a, err := verify.Analyze(tr, verify.AlgoVectorClock)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := a.Verify(verify.Options{Model: semantics.MPIIOModel()})
				if err != nil {
					b.Fatal(err)
				}
				timing = rep.Timing
			}
			b.ReportMetric(float64(timing.DetectConflicts.Nanoseconds()), "ns-detect")
			b.ReportMetric(float64(timing.BuildGraph.Nanoseconds()), "ns-graph")
			b.ReportMetric(float64(timing.VectorClock.Nanoseconds()), "ns-vclock")
			b.ReportMetric(float64(timing.Verification.Nanoseconds()), "ns-verify")
		})
	}
}

// BenchmarkFig5_FlexibleAggregation measures the flexible test's pipeline —
// the PnetCDF MPI-IO violation (Fig. 5) — asserting its verdict shape.
func BenchmarkFig5_FlexibleAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tc, err := corpus.ByName("flexible")
		if err != nil {
			b.Fatal(err)
		}
		row, err := corpus.Verify(tc, verify.AlgoVectorClock)
		if err != nil {
			b.Fatal(err)
		}
		if row.Races[0] != 0 || row.Races[3] == 0 {
			b.Fatalf("flexible verdicts changed: %v", row.Races)
		}
	}
}

// BenchmarkFig6_HDF5Pattern measures the improper (write/barrier/read) and
// proper (write/flush/barrier/flush/read) HDF5 patterns of Fig. 6.
func BenchmarkFig6_HDF5Pattern(b *testing.B) {
	for _, variant := range []struct {
		name     string
		test     string
		wantRace bool
	}{
		{"improper-shapesame", "shapesame", true},
		{"clean-chunk-alloc", "t_chunk_alloc", false},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc, err := corpus.ByName(variant.test)
				if err != nil {
					b.Fatal(err)
				}
				row, err := corpus.Verify(tc, verify.AlgoVectorClock)
				if err != nil {
					b.Fatal(err)
				}
				if got := row.Races[3] > 0; got != variant.wantRace {
					b.Fatalf("%s MPI-IO racy = %v, want %v", variant.test, got, variant.wantRace)
				}
			}
		})
	}
}

// BenchmarkAnalyze measures the parallel analysis front-end (steps 2–3:
// concurrent conflict detection and MPI matching, sharded per-rank replay
// and per-file sweep) plus graph construction on the large synthetic
// scaling trace, at increasing worker counts. Pair counts are asserted
// identical across worker counts — the speedup is for identical output.
// cmd/bench runs the same workload over the full scaling corpus and writes
// BENCH_analyze.json.
func BenchmarkAnalyze(b *testing.B) {
	tr := corpus.ScalingTrace(8, 4000, 1<<18, 7)
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	var pairs int64 = -1
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := verify.AnalyzeOpts(tr, verify.AlgoVectorClock,
					verify.AnalyzeOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if pairs < 0 {
					pairs = a.Conflicts.Pairs
				} else if a.Conflicts.Pairs != pairs {
					b.Fatalf("workers=%d changed the pair count: %d vs %d",
						workers, a.Conflicts.Pairs, pairs)
				}
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkVerifyParallel measures the sharded verification engine's
// scaling on the conflict-heaviest corpus trace: the same model pass at
// 1/2/4/8 workers (Workers=1 is the serial path). Race counts are asserted
// identical across worker counts, so the speedup is for bit-identical
// output.
func BenchmarkVerifyParallel(b *testing.B) {
	tr := corpusTrace(b, "pmulti_dset")
	a, err := verify.Analyze(tr, verify.AlgoVectorClock)
	if err != nil {
		b.Fatal(err)
	}
	model := semantics.MPIIOModel()
	var races int64 = -1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := a.Verify(verify.Options{Model: model, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if races < 0 {
					races = rep.RaceCount
				} else if rep.RaceCount != races {
					b.Fatalf("workers=%d changed the race count: %d vs %d", workers, rep.RaceCount, races)
				}
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// skewedTrace builds a deliberately unbalanced conflict population: every
// rank hammers offset 0 (dense ops cross-conflicting writes — a handful of
// enormous groups) while also scattering sparse writes across distinct
// offsets (many tiny groups). Count-based chunking would put the dense
// groups in ordinary chunks and straggle; the weight-based plan isolates
// them.
func skewedTrace(nranks, dense, sparse int) *trace.Trace {
	tr := trace.New(nranks)
	for rank := 0; rank < nranks; rank++ {
		tick := int64(2)
		emit := func(layer trace.Layer, fn string, args ...string) {
			tr.Append(trace.Record{Rank: rank, Func: fn, Layer: layer,
				Args: args, Tick: tick, Ret: tick + 1})
			tick += 2
		}
		emit(trace.LayerMPI, "MPI_Barrier", "comm-world")
		emit(trace.LayerPOSIX, "open", "skew.dat", "rw|creat", "3")
		for i := 0; i < dense; i++ {
			emit(trace.LayerPOSIX, "pwrite", "3", "16", "0")
		}
		for i := 0; i < sparse; i++ {
			emit(trace.LayerPOSIX, "pwrite", "3", "16", fmt.Sprint(int64(1024+i*16)))
		}
		emit(trace.LayerPOSIX, "close", "3")
		emit(trace.LayerMPI, "MPI_Barrier", "comm-world")
	}
	return tr
}

// BenchmarkVerifySkewedGroups measures parallel verification on the skewed
// conflict population — the workload the run-length-weighted chunk plan
// exists for. With chunks sized by group count, the dense groups land in
// one worker's chunk and serialize the pass; weight-based planning isolates
// them so the speedup survives the skew.
func BenchmarkVerifySkewedGroups(b *testing.B) {
	tr := skewedTrace(4, 600, 400)
	a, err := verify.Analyze(tr, verify.AlgoVectorClock)
	if err != nil {
		b.Fatal(err)
	}
	model := semantics.POSIXModel()
	var races int64 = -1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := a.Verify(verify.Options{Model: model, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if races < 0 {
					races = rep.RaceCount
				} else if rep.RaceCount != races {
					b.Fatalf("workers=%d changed the race count: %d vs %d",
						workers, rep.RaceCount, races)
				}
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkVerifyAllParallel measures the concurrent multi-model pass (all
// four models over one shared analysis) against the serial loop.
func BenchmarkVerifyAllParallel(b *testing.B) {
	tr := corpusTrace(b, "pmulti_dset")
	a, err := verify.Analyze(tr, verify.AlgoVectorClock)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reps, err := a.VerifyAll(semantics.All(), verify.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(reps) != 4 {
					b.Fatal("missing model reports")
				}
			}
		})
	}
}

// BenchmarkHBAlgorithms compares the five happens-before algorithms of
// §IV-D on one mid-size trace — the data behind the paper's future-work
// dynamic algorithm selection.
func BenchmarkHBAlgorithms(b *testing.B) {
	tr := corpusTrace(b, "nc4perf")
	model := semantics.MPIIOModel()
	for _, algo := range []verify.Algo{
		verify.AlgoVectorClock, verify.AlgoReachability,
		verify.AlgoTransitiveClosure, verify.AlgoOnTheFly,
		verify.AlgoSegment,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			var races int64 = -1
			for i := 0; i < b.N; i++ {
				a, err := verify.Analyze(tr, algo)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := a.Verify(verify.Options{Model: model})
				if err != nil {
					b.Fatal(err)
				}
				if races >= 0 && rep.RaceCount != races {
					b.Fatalf("algorithms disagree: %d vs %d", rep.RaceCount, races)
				}
				races = rep.RaceCount
			}
		})
	}
}

// BenchmarkTraceIO measures trace serialization with and without
// compression (the Recorder component the paper keeps from Recorder 2.0).
func BenchmarkTraceIO(b *testing.B) {
	tr := corpusTrace(b, "cache") // MPI-heavy: the most records
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		b.Run("encode-"+name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := trace.Encode(&buf, tr, trace.EncodeOptions{Compress: compress}); err != nil {
					b.Fatal(err)
				}
				size = buf.Len()
			}
			b.ReportMetric(float64(size), "bytes")
			b.ReportMetric(float64(size)/float64(tr.NumRecords()), "bytes/record")
		})
		b.Run("decode-"+name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := trace.Encode(&buf, tr, trace.EncodeOptions{Compress: compress}); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := trace.Decode(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if got.NumRecords() != tr.NumRecords() {
					b.Fatal("decode lost records")
				}
			}
		})
	}
}

// fig2Program is the Fig. 2 running example shared with the quickstart.
func fig2Program(r *Rank) error {
	comm := r.Proc().CommWorld()
	fd, err := r.Open("fig2.bin", 0x2|0x40) // O_RDWR|O_CREAT
	if err != nil {
		return err
	}
	if r.Rank() == 0 {
		if _, err := r.Pwrite(fd, []byte("abcd"), 0); err != nil {
			return err
		}
		if err := r.Fsync(fd); err != nil {
			return err
		}
	}
	if err := r.Barrier(comm); err != nil {
		return err
	}
	if r.Rank() == 1 {
		if _, err := r.Pread(fd, 4, 0); err != nil {
			return err
		}
	}
	return r.Close(fd)
}

// BenchmarkTracingOverhead measures Recorder⁺'s interception cost (§V-E
// reports <10% for Recorder on real systems): the same I/O+MPI program run
// through the traced wrappers vs directly against the substrates.
func BenchmarkTracingOverhead(b *testing.B) {
	const ranks = 2
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := recorder.NewEnv(ranks, recorder.Options{})
			err := env.Run(func(r *recorder.Rank) error {
				c := r.Proc().CommWorld()
				fd, err := r.Open("f", 0x2|0x40)
				if err != nil {
					return err
				}
				for k := int64(0); k < 64; k++ {
					if _, err := r.Pwrite(fd, []byte("datadata"), k*8); err != nil {
						return err
					}
				}
				if err := r.Barrier(c); err != nil {
					return err
				}
				for k := int64(0); k < 64; k++ {
					if _, err := r.Pread(fd, 8, k*8); err != nil {
						return err
					}
				}
				return r.Close(fd)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			world := mpi.NewWorld(ranks)
			fs := posixfs.New(posixfs.ModePOSIX)
			err := world.Run(func(p *mpi.Proc) error {
				pv := fs.Proc(p.Rank())
				fd, err := pv.Open("f", posixfs.ORdwr|posixfs.OCreate)
				if err != nil {
					return err
				}
				for k := int64(0); k < 64; k++ {
					if _, err := pv.Pwrite(fd, []byte("datadata"), k*8); err != nil {
						return err
					}
				}
				if err := p.Barrier(p.CommWorld()); err != nil {
					return err
				}
				buf := make([]byte, 8)
				for k := int64(0); k < 64; k++ {
					if _, err := pv.Pread(fd, buf, k*8); err != nil {
						return err
					}
				}
				return pv.Close(fd)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

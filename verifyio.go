// Package verifyio is the public API of VerifyIO-Go, a from-scratch Go
// reproduction of "VerifyIO: Verifying Adherence to Parallel I/O Consistency
// Semantics" (Wang, Zhu, Mohror, Neuwirth, Snir — IPDPS 2025).
//
// VerifyIO answers the question: does this parallel program's I/O follow the
// rules of a given storage consistency model? The workflow has four steps:
//
//  1. Trace — run the program under the Recorder⁺ tracer, capturing every
//     I/O and MPI call across all library layers with full call chains.
//  2. Detect conflicts — find pairs of operations that touch overlapping
//     bytes of the same file where at least one writes.
//  3. Match MPI calls — replay the recorded MPI operations to establish the
//     happens-before order, flagging unmatched or mismatched calls.
//  4. Verify — check that every conflict is properly synchronized under the
//     chosen model (POSIX, Commit, Session, or MPI-IO), reporting data
//     races with call chains when it is not.
//
// The simulated substrates (MPI runtime, POSIX file system with pluggable
// consistency, MPI-IO with collective buffering, and HDF5 / NetCDF /
// PnetCDF subsets) live under internal/; programs written against them are
// traced exactly like real applications. The paper's 91-test evaluation
// corpus ships in internal/corpus and is runnable through this package.
//
// Quick start:
//
//	tr, _ := verifyio.RunCorpusTest("flexible")
//	reports, _ := verifyio.VerifyAll(tr, nil)
//	for _, rep := range reports {
//	    fmt.Println(rep.Summary())
//	}
package verifyio

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"verifyio/internal/corpus"
	"verifyio/internal/obs"
	"verifyio/internal/recorder"
	"verifyio/internal/semantics"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
	"verifyio/internal/vcache"
	"verifyio/internal/verify"
)

// Telemetry collects tracing spans and runtime metrics from a verification
// run. Attach one instance to ReadOptions and Options across the calls of a
// run, then export: WriteChromeTrace emits a Chrome trace_event JSON
// flamegraph (chrome://tracing, Perfetto), WriteMetrics the metric registry
// snapshot. A nil *Telemetry disables instrumentation at near-zero cost.
//
// Span and metric content is deterministic: at a fixed worker count the
// exported spans (names, attributes, track assignment, ids, nesting) and
// every stable metric are identical across runs; only timestamps, durations
// and volatile (scheduling-dependent) metrics vary.
type Telemetry struct {
	tracer   *obs.Tracer
	registry *obs.Registry
}

// NewTelemetry returns an empty telemetry sink.
func NewTelemetry() *Telemetry {
	return &Telemetry{tracer: obs.NewTracer(), registry: obs.NewRegistry()}
}

// ctx returns the internal carrier (zero Ctx when t is nil).
func (t *Telemetry) ctx() obs.Ctx {
	if t == nil {
		return obs.Ctx{}
	}
	return obs.Ctx{T: t.tracer, R: t.registry}
}

// Obs exposes the internal instrumentation carrier so in-module tooling
// (the CLIs' analytics passes, e.g. the DFG builder) can share this
// telemetry's tracer and registry. The zero Ctx a nil *Telemetry returns
// disables instrumentation.
func (t *Telemetry) Obs() obs.Ctx { return t.ctx() }

// WriteChromeTrace writes the collected spans as Chrome trace_event JSON.
// Call after the instrumented run has finished.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return (*obs.Tracer)(nil).WriteChromeTrace(w)
	}
	return t.tracer.WriteChromeTrace(w)
}

// WriteMetrics writes the metric registry snapshot as JSON, partitioned
// into a "stable" section (byte-identical across runs at the same worker
// count) and a "volatile" section (scheduling- and timing-dependent).
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		return (*obs.Registry)(nil).WriteMetrics(w)
	}
	return t.registry.WriteMetrics(w)
}

// Publish exposes the live metric registry as the named expvar, so a process
// serving a debug endpoint (net/http/pprof + expvar) reports the run's
// metrics at /debug/vars while it executes. Nil-safe.
func (t *Telemetry) Publish(name string) {
	if t != nil {
		obs.PublishRegistry(name, t.registry)
	}
}

// Cache is a verdict cache for incremental re-verification: chunks of the
// verification plan are memoized by content digest, so re-verifying an
// unchanged trace is served entirely from cache and an appended trace
// re-verifies only the chunks the change dirtied. One Cache may back many
// runs (and many traces — entries are content addressed). Safe for
// concurrent use.
type Cache struct {
	s *vcache.Store
}

// NewMemoryCache returns a process-lifetime in-memory verdict cache.
func NewMemoryCache() *Cache { return &Cache{s: vcache.NewMemory()} }

// OpenCache opens (creating if needed) a persistent verdict cache in dir —
// what the verifyio command's -cache-dir flag uses. A corrupt or torn cache
// file never fails the open: damaged entries are discarded and recomputed.
// Close flushes and releases the store.
func OpenCache(dir string) (*Cache, error) {
	s, err := vcache.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{s: s}, nil
}

// Close releases the cache, flushing any pending on-disk state.
func (c *Cache) Close() error {
	if c == nil || c.s == nil {
		return nil
	}
	return c.s.Close()
}

// Stats returns the cache's cumulative chunk counters across every run it
// backed: hits (chunks served from cache, including verdicts promoted
// across a trace change), misses (chunks verified and sealed), and dirty
// (misses charged to a trace change rather than a cold start).
func (c *Cache) Stats() (hits, misses, dirty int64) {
	if c == nil || c.s == nil {
		return 0, 0, 0
	}
	return c.s.Stats()
}

// CacheStats reports verdict-cache effectiveness for one verification pass
// (see verify.CacheStats).
type CacheStats struct {
	// Hits counts chunks resolved from the cache, including verdicts
	// promoted across a trace change by the incremental dirtiness pass.
	Hits int64
	// Misses counts chunks verified from scratch and sealed.
	Misses int64
	// DirtyChunks counts misses charged to a trace change: chunks
	// re-verified while an incremental manifest for the trace existed.
	DirtyChunks int64
}

// Rank is the traced per-process handle programs receive under the tracer:
// it exposes the instrumented MPI and POSIX interfaces, and the simulated
// I/O libraries (internal/sim/...) build on it. See examples/ for complete
// programs.
type Rank = recorder.Rank

// Model names a consistency model.
type Model string

// The four built-in consistency models (Table I of the paper).
const (
	POSIX   Model = "posix"
	Commit  Model = "commit"
	Session Model = "session"
	MPIIO   Model = "mpi-io"
)

// Models returns the built-in models in the paper's order.
func Models() []Model { return []Model{POSIX, Commit, Session, MPIIO} }

func (m Model) resolve() (semantics.Model, error) {
	return semantics.ByName(string(m))
}

// Trace is a collected execution trace.
type Trace struct {
	t *trace.Trace
	// salvage records what lenient loading did to damaged ranks (nil for an
	// intact load); verification folds it into verdict-cache identity so a
	// salvaged trace can never serve stale verdicts to its repaired form.
	salvage *trace.DecodeStats
}

// NumRanks returns the number of MPI ranks in the trace.
func (t *Trace) NumRanks() int { return t.t.NumRanks() }

// NumRecords returns the total number of records.
func (t *Trace) NumRecords() int { return t.t.NumRecords() }

// Meta returns the execution metadata value for key.
func (t *Trace) Meta(key string) string { return t.t.Meta[key] }

// WriteDir stores the trace as a directory (one compressed stream per
// rank), the layout cmd/verifyio consumes.
func (t *Trace) WriteDir(dir string) error {
	return trace.WriteDir(dir, t.t, trace.DefaultEncodeOptions())
}

// ReadTraceDir loads a trace directory produced by WriteDir or
// cmd/verifyio-trace.
func ReadTraceDir(dir string) (*Trace, error) {
	tr, err := trace.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	return &Trace{t: tr}, nil
}

// ReadOptions tunes trace loading.
type ReadOptions struct {
	// Tolerate enables lenient loading (see ReadTraceDirTolerant).
	Tolerate bool
	// Telemetry instruments the load (a "read-trace" span with per-rank
	// children, trace.* metrics). Nil disables.
	Telemetry *Telemetry
	// WindowBytes bounds the decoded records resident at once on the
	// streaming entry points (VerifyStream, VerifyAllStream): 0 means the
	// default window (trace.DefaultWindowBytes), negative means unbounded.
	// Materializing loads ignore it — they hold the whole trace by design.
	WindowBytes int64
}

// ReadTraceDirOpts loads a trace directory with explicit options; it
// subsumes ReadTraceDir (zero options) and ReadTraceDirTolerant
// (Tolerate: true). The Recovery is non-nil only in tolerate mode.
func ReadTraceDirOpts(dir string, opts ReadOptions) (*Trace, *Recovery, error) {
	tr, stats, err := trace.ReadDirWithOptions(dir, trace.DecodeOptions{
		Tolerate: opts.Tolerate,
		Obs:      opts.Telemetry.ctx(),
	})
	if err != nil {
		return nil, nil, err
	}
	if !opts.Tolerate {
		return &Trace{t: tr}, nil, nil
	}
	return &Trace{t: tr, salvage: stats}, recoveryFromStats(stats), nil
}

// recoveryFromStats converts internal decode salvage stats to the public
// Recovery form (non-nil, possibly with an empty Ranks slice).
func recoveryFromStats(stats *trace.DecodeStats) *Recovery {
	rec := &Recovery{}
	if stats == nil {
		return rec
	}
	for _, rr := range stats.Ranks {
		reason := "unknown damage"
		if rr.Err != nil {
			reason = rr.Err.Error()
		}
		rec.Ranks = append(rec.Ranks, RankRecovery{
			Rank: rr.Rank, Salvaged: rr.Salvaged, Dropped: rr.Dropped, Reason: reason,
		})
	}
	return rec
}

// RankRecovery describes what lenient loading did to one damaged rank.
type RankRecovery struct {
	// Rank is the world rank of the damaged stream.
	Rank int
	// Salvaged is the number of records recovered from the rank's
	// well-formed prefix.
	Salvaged int
	// Dropped is the number of records lost, or -1 when the stream was too
	// damaged to know how many it held.
	Dropped int
	// Reason describes the damage (the classified decode error).
	Reason string
}

// Recovery summarizes a lenient trace load: which ranks were damaged and
// what was salvaged. An empty Ranks slice means the trace was intact.
type Recovery struct {
	Ranks []RankRecovery
}

// Clean reports whether the load salvaged nothing — the trace was intact.
func (r *Recovery) Clean() bool { return r == nil || len(r.Ranks) == 0 }

// ReadTraceDirTolerant loads a trace directory leniently: damaged or missing
// rank streams are salvaged to their longest well-formed prefix instead of
// failing the whole load, and the returned Recovery reports exactly what was
// kept and lost per rank. Verifying a salvaged trace is equivalent to
// verifying an execution that stopped where the trace breaks off — partial
// evidence, reported honestly.
func ReadTraceDirTolerant(dir string) (*Trace, *Recovery, error) {
	return ReadTraceDirOpts(dir, ReadOptions{Tolerate: true})
}

// TraceProgram runs prog once per rank under the Recorder⁺ tracer, against
// a simulated file system providing the given consistency model, and
// returns the execution trace (step 1 of the workflow). Note the file
// system's runtime model is independent of the models the trace is later
// verified against: the usual setup traces on POSIX (as the paper does on
// GPFS) and verifies against all four.
func TraceProgram(ranks int, fsModel Model, prog func(r *Rank) error) (*Trace, error) {
	var mode posixfs.Mode
	switch fsModel {
	case POSIX:
		mode = posixfs.ModePOSIX
	case Commit:
		mode = posixfs.ModeCommit
	case Session:
		mode = posixfs.ModeSession
	case MPIIO:
		mode = posixfs.ModeMPIIO
	default:
		return nil, fmt.Errorf("verifyio: unknown file-system model %q", fsModel)
	}
	env := recorder.NewEnv(ranks, recorder.Options{FSMode: mode})
	if err := env.Run(prog); err != nil {
		return nil, err
	}
	return &Trace{t: env.Trace()}, nil
}

// CorpusTests lists the names of the 91 evaluation test cases (15 HDF5,
// 17 NetCDF, 59 PnetCDF).
func CorpusTests() []string { return corpus.Names() }

// RunCorpusTest executes the named corpus test under the tracer and returns
// its trace.
func RunCorpusTest(name string) (*Trace, error) {
	t, err := corpus.ByName(name)
	if err != nil {
		return nil, err
	}
	tr, err := corpus.Run(t)
	if err != nil {
		return nil, err
	}
	return &Trace{t: tr}, nil
}

// Options tunes verification.
type Options struct {
	// Algorithm selects the happens-before algorithm: "auto" (default),
	// "vector-clock", "reachability", "transitive-closure", "on-the-fly",
	// "segment". Auto prefers the segment-reachability oracle (O(1) probes
	// over the skeleton's segment×segment closure) and falls back to
	// vector clocks when the closure exceeds its byte budget.
	Algorithm string
	// DisablePruning turns off the conflict-group pruning (Fig. 3).
	DisablePruning bool
	// MaxRaceDetails caps detailed race records (default 256); the race
	// count itself is always exact.
	MaxRaceDetails int
	// ContinueOnUnmatched verifies even when MPI matching found problems.
	ContinueOnUnmatched bool
	// Workers is the number of goroutines used across steps 2–4: conflict
	// detection shards its per-rank replay and per-file sweep, MPI
	// matching its per-rank scan (with the two steps also running
	// concurrently with each other), and verification shards the conflict
	// groups (plus running models concurrently in VerifyAll). 0 means
	// GOMAXPROCS; 1 forces the fully serial path. Results are independent
	// of the worker count.
	Workers int
	// Telemetry instruments the run with tracing spans and runtime metrics
	// (see Telemetry). Nil disables instrumentation; the disabled path
	// costs near zero.
	Telemetry *Telemetry
	// Cache attaches a verdict cache (see Cache): verification consults it
	// per chunk before computing and seals fresh verdicts after, and the
	// Report gains Cache statistics. Nil disables caching.
	Cache *Cache
	// CacheID names the logical trace for the cache's incremental manifest
	// (e.g. the trace directory path). Empty derives a stable identity from
	// the trace content. Only meaningful with Cache set.
	CacheID string
}

func (o *Options) algo() (verify.Algo, error) {
	if o == nil || o.Algorithm == "" {
		return verify.AlgoAuto, nil
	}
	return verify.AlgoByName(o.Algorithm)
}

func (o *Options) analyzeOptions() verify.AnalyzeOptions {
	if o == nil {
		return verify.AnalyzeOptions{}
	}
	return verify.AnalyzeOptions{Workers: o.Workers, Obs: o.Telemetry.ctx()}
}

func (o *Options) verifyOptions(m semantics.Model) verify.Options {
	vo := verify.Options{Model: m}
	if o != nil {
		vo.DisablePruning = o.DisablePruning
		vo.MaxRaceDetails = o.MaxRaceDetails
		vo.ContinueOnUnmatched = o.ContinueOnUnmatched
		vo.Workers = o.Workers
		vo.Obs = o.Telemetry.ctx()
		if o.Cache != nil {
			vo.Cache = o.Cache.s
			vo.CacheID = o.CacheID
		}
	}
	return vo
}

// Race is one detected data race: a conflicting operation pair that is not
// properly synchronized under the model. Call chains run from the outermost
// (application-issued) call down to the POSIX operation, which is how the
// root cause is attributed to the application or a library layer.
type Race struct {
	File           string
	FuncX, FuncY   string
	RankX, RankY   int
	StartX, EndX   int64
	StartY, EndY   int64
	ChainX, ChainY []string
	// Level classifies the originating layer ("application", "hdf5",
	// "pnetcdf", ...).
	Level string
}

// Problem is an unmatched or mismatched MPI call found during matching.
type Problem struct {
	Kind   string
	Detail string
}

// Timing is the stage breakdown of a verification run (Table IV).
type Timing struct {
	ReadTrace       time.Duration
	DetectConflicts time.Duration
	// Match covers step 3 (MPI matching), previously lumped into
	// BuildGraph.
	Match        time.Duration
	BuildGraph   time.Duration
	VectorClock  time.Duration
	Verification time.Duration
	// DetectMatchWall is the wall-clock time of the combined conflict
	// detection / MPI matching phase, which runs both steps concurrently
	// when Options.Workers != 1. It reports overlap (wall < detect+match)
	// and, like every "Wall"-suffixed field, is excluded from Total.
	DetectMatchWall time.Duration
	// AnalyzeWall is the wall-clock time of the whole analysis front-end
	// (steps 2–3 plus happens-before construction) — the elapsed time a
	// caller observes. Overlaps the per-stage fields; excluded from Total.
	AnalyzeWall time.Duration
}

// Total sums the per-stage durations; wall-clock overlap fields
// ("Wall"-suffixed) are excluded to avoid double-reporting.
func (t Timing) Total() time.Duration {
	return t.ReadTrace + t.DetectConflicts + t.Match + t.BuildGraph + t.VectorClock + t.Verification
}

// Report is the outcome of verifying a trace against one model.
type Report struct {
	Model     Model
	Algorithm string

	ConflictPairs int64
	RaceCount     int64
	Races         []Race
	Problems      []Problem

	// Verified is false when unmatched MPI calls aborted verification.
	Verified bool
	// ProperlySynchronized reports a race-free verified execution.
	ProperlySynchronized bool

	// Ranks / Records describe the analyzed trace (streaming runs carry them
	// even though no Trace value exists).
	Ranks   int
	Records int

	// Workers is the worker count the verification stage ran with.
	Workers        int
	GraphNodes     int
	GraphSyncEdges int
	// SkeletonNodes / SkeletonLevels describe the sync skeleton the
	// graph-based happens-before oracles computed on (S ≤ GraphNodes nodes,
	// scheduled across the given number of wavefront levels); zero when the
	// on-the-fly algorithm ran.
	SkeletonNodes  int
	SkeletonLevels int
	Timing         Timing

	// Cache reports verdict-cache effectiveness for this pass. Nil unless
	// Options.Cache was set.
	Cache *CacheStats `json:",omitempty"`

	// Metrics is the telemetry metrics snapshot (the WriteMetrics JSON
	// document) taken when the report was built. Nil unless the run was
	// instrumented via Options.Telemetry.
	Metrics json.RawMessage `json:",omitempty"`

	inner *verify.Report
}

// Render writes the full human-readable report, including call chains.
func (r *Report) Render(w io.Writer) { r.inner.Render(w) }

// Summary returns a one-line summary.
func (r *Report) Summary() string { return r.inner.Summary() }

// MarshalJSON renders the report for tooling (used by `verifyio -json`).
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report // drop methods to avoid recursion; inner is unexported
	return json.Marshal((*alias)(r))
}

func wrapReport(rep *verify.Report) *Report {
	out := &Report{
		Model:                Model(normalizeModel(rep.Model)),
		Algorithm:            rep.Algorithm,
		ConflictPairs:        rep.ConflictPairs,
		RaceCount:            rep.RaceCount,
		Verified:             rep.Verified,
		ProperlySynchronized: rep.ProperlySynchronized,
		Ranks:                rep.Ranks,
		Records:              rep.Records,
		Workers:              rep.Workers,
		GraphNodes:           rep.GraphNodes,
		GraphSyncEdges:       rep.GraphSyncEdges,
		SkeletonNodes:        rep.SkeletonNodes,
		SkeletonLevels:       rep.SkeletonLevels,
		Timing: Timing{
			ReadTrace:       rep.Timing.ReadTrace,
			DetectConflicts: rep.Timing.DetectConflicts,
			Match:           rep.Timing.Match,
			BuildGraph:      rep.Timing.BuildGraph,
			VectorClock:     rep.Timing.VectorClock,
			Verification:    rep.Timing.Verification,
			DetectMatchWall: rep.Timing.DetectMatchWall,
			AnalyzeWall:     rep.Timing.AnalyzeWall,
		},
		inner: rep,
	}
	if rep.Cache != nil {
		out.Cache = &CacheStats{
			Hits:        rep.Cache.Hits,
			Misses:      rep.Cache.Misses,
			DirtyChunks: rep.Cache.DirtyChunks,
		}
	}
	if rep.Metrics != nil {
		if b, err := json.Marshal(rep.Metrics); err == nil {
			out.Metrics = b
		}
	}
	for _, race := range rep.Races {
		out.Races = append(out.Races, Race{
			File:  race.File,
			FuncX: race.FuncX, FuncY: race.FuncY,
			RankX: race.X.Ref.Rank, RankY: race.Y.Ref.Rank,
			StartX: race.X.Start, EndX: race.X.End,
			StartY: race.Y.Start, EndY: race.Y.End,
			ChainX: race.ChainX, ChainY: race.ChainY,
			Level: race.Level(),
		})
	}
	for _, p := range rep.Problems {
		out.Problems = append(out.Problems, Problem{Kind: p.Kind.String(), Detail: p.Detail})
	}
	return out
}

func normalizeModel(name string) string {
	switch name {
	case "POSIX":
		return string(POSIX)
	case "Commit":
		return string(Commit)
	case "Session":
		return string(Session)
	case "MPI-IO":
		return string(MPIIO)
	}
	return name
}

// Diagnosis is the automated root-cause analysis of one race (§V): who is
// responsible and what fix the model asks for.
type Diagnosis struct {
	Race Race
	// Category is "unordered-conflict", "missing-sync-construct", or
	// "library-internal-conflict".
	Category string
	// Responsible is "application" or a library name.
	Responsible string
	// Suggestion is the model-specific remediation.
	Suggestion string
}

// Diagnose verifies the trace under the model and classifies every detailed
// race: whether the accesses lack any ordering (application must add MPI
// synchronization), lack only the model's synchronization construct
// (application adds fsync / close-open / sync-barrier-sync), or stem from
// library-internal I/O the application cannot see (library-level fix).
func Diagnose(t *Trace, model Model, opts *Options) (*Report, []Diagnosis, error) {
	m, err := model.resolve()
	if err != nil {
		return nil, nil, err
	}
	a, err := analyzeTrace(t, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := a.Verify(opts.verifyOptions(m))
	if err != nil {
		return nil, nil, err
	}
	var out []Diagnosis
	for _, d := range a.Diagnose(rep, m) {
		out = append(out, Diagnosis{
			Race:        wrapReport(rep).raceFor(d.Race),
			Category:    d.Category.String(),
			Responsible: d.Responsible,
			Suggestion:  d.Suggestion,
		})
	}
	return wrapReport(rep), out, nil
}

// raceFor converts an internal race to the public form (helper for
// Diagnose; details match the Races slice entries).
func (r *Report) raceFor(race verify.Race) Race {
	return Race{
		File:  race.File,
		FuncX: race.FuncX, FuncY: race.FuncY,
		RankX: race.X.Ref.Rank, RankY: race.Y.Ref.Rank,
		StartX: race.X.Start, EndX: race.X.End,
		StartY: race.Y.Start, EndY: race.Y.End,
		ChainX: race.ChainX, ChainY: race.ChainY,
		Level: race.Level(),
	}
}

// analyzeTrace builds the shared analysis front-end for a materialized
// trace, carrying its salvage state into verdict-cache identity.
func analyzeTrace(t *Trace, opts *Options) (*verify.Analysis, error) {
	algo, err := opts.algo()
	if err != nil {
		return nil, err
	}
	a, err := verify.AnalyzeOpts(t.t, algo, opts.analyzeOptions())
	if err != nil {
		return nil, err
	}
	a.SetSalvage(t.salvage)
	return a, nil
}

// Verify runs steps 2–4 of the workflow on a trace for one model.
func Verify(t *Trace, model Model, opts *Options) (*Report, error) {
	m, err := model.resolve()
	if err != nil {
		return nil, err
	}
	a, err := analyzeTrace(t, opts)
	if err != nil {
		return nil, err
	}
	rep, err := a.Verify(opts.verifyOptions(m))
	if err != nil {
		return nil, err
	}
	return wrapReport(rep), nil
}

// VerifyAll verifies a trace against all four models, sharing the conflict
// detection, MPI matching and happens-before construction across them. With
// Options.Workers != 1 the four model passes run concurrently over the
// shared analysis.
func VerifyAll(t *Trace, opts *Options) ([]*Report, error) {
	a, err := analyzeTrace(t, opts)
	if err != nil {
		return nil, err
	}
	reps, err := a.VerifyAll(semantics.All(), opts.verifyOptions(semantics.Model{}))
	if err != nil {
		return nil, fmt.Errorf("verifyio: %w", err)
	}
	out := make([]*Report, len(reps))
	for i, rep := range reps {
		out[i] = wrapReport(rep)
	}
	return out, nil
}

// analyzeStreamDir builds the analysis front-end directly off the on-disk
// trace stream (see verify.AnalyzeStream), never materializing the trace.
func analyzeStreamDir(dir string, read ReadOptions, opts *Options) (*verify.Analysis, *Recovery, error) {
	algo, err := opts.algo()
	if err != nil {
		return nil, nil, err
	}
	a, err := verify.AnalyzeStream(dir, algo, verify.StreamAnalyzeOptions{
		AnalyzeOptions: opts.analyzeOptions(),
		Decode: trace.DecodeOptions{
			Tolerate: read.Tolerate,
			Obs:      read.Telemetry.ctx(),
		},
		WindowBytes: read.WindowBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	if !read.Tolerate {
		return a, nil, nil
	}
	return a, recoveryFromStats(a.Salvage()), nil
}

// VerifyStream verifies the trace directory against one model while
// decoding it, holding at most ReadOptions.WindowBytes of decoded records at
// a time instead of the whole trace (conflict detection, MPI matching and
// the cache digests consume each record batch as it decodes). The report is
// identical to ReadTraceDirOpts + Verify on the same directory, except for
// the Timing split: the fused pass reports its wall time as DetectMatchWall,
// with DetectConflicts and Match covering only each stage's cross-rank
// finish phase and ReadTrace staying zero. The Recovery is non-nil only in
// tolerate mode.
func VerifyStream(dir string, model Model, read ReadOptions, opts *Options) (*Report, *Recovery, error) {
	m, err := model.resolve()
	if err != nil {
		return nil, nil, err
	}
	a, rec, err := analyzeStreamDir(dir, read, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := a.Verify(opts.verifyOptions(m))
	if err != nil {
		return nil, nil, err
	}
	return wrapReport(rep), rec, nil
}

// VerifyAllStream is VerifyStream across all four models, sharing the
// single fused decode/detect/match pass and the happens-before construction
// between them exactly as VerifyAll shares a materialized analysis.
func VerifyAllStream(dir string, read ReadOptions, opts *Options) ([]*Report, *Recovery, error) {
	a, rec, err := analyzeStreamDir(dir, read, opts)
	if err != nil {
		return nil, nil, err
	}
	reps, err := a.VerifyAll(semantics.All(), opts.verifyOptions(semantics.Model{}))
	if err != nil {
		return nil, nil, fmt.Errorf("verifyio: %w", err)
	}
	out := make([]*Report, len(reps))
	for i, rep := range reps {
		out[i] = wrapReport(rep)
	}
	return out, rec, nil
}

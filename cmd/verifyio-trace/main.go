// Command verifyio-trace runs step 1 of the VerifyIO workflow: it executes
// a corpus test program under the Recorder⁺ tracer and writes the trace
// directory that cmd/verifyio consumes.
//
// Usage:
//
//	verifyio-trace -list
//	verifyio-trace -test NAME -out DIR
//	verifyio-trace -all -out DIR          (one subdirectory per test)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"verifyio"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list = flag.Bool("list", false, "list the corpus test names and exit")
		test = flag.String("test", "", "corpus test to trace")
		all  = flag.Bool("all", false, "trace every corpus test")
		out  = flag.String("out", "traces", "output directory")
	)
	flag.Parse()

	if *list {
		for _, name := range verifyio.CorpusTests() {
			fmt.Println(name)
		}
		return 0
	}

	var names []string
	switch {
	case *all:
		names = verifyio.CorpusTests()
	case *test != "":
		names = []string{*test}
	default:
		fmt.Fprintln(os.Stderr, "verifyio-trace: need -test NAME, -all, or -list")
		flag.Usage()
		return 2
	}

	for _, name := range names {
		tr, err := verifyio.RunCorpusTest(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio-trace: %s: %v\n", name, err)
			return 2
		}
		dir := *out
		if *all {
			dir = filepath.Join(*out, name)
		}
		if err := tr.WriteDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio-trace: %s: %v\n", name, err)
			return 2
		}
		fmt.Printf("%-24s %d ranks, %6d records -> %s\n", name, tr.NumRanks(), tr.NumRecords(), dir)
	}
	return 0
}

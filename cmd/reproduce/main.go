// Command reproduce regenerates every table and figure of the paper's
// evaluation (§V) from the simulated corpus:
//
//	table1 — consistency-model specifications (S and MSC)
//	table2 — tracer API coverage (Recorder vs Recorder⁺)
//	fig4   — data races per test execution × consistency model (91 rows)
//	table3 — test executions that are not properly synchronized
//	table4 — workflow execution-time breakdown of the three slowest tests
//	fig3   — pruning ablation (properly-synchronized checks saved)
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// Lassen, and workloads are scaled down — see EXPERIMENTS.md); the shape of
// every result is preserved.
//
// Usage:
//
//	reproduce [-out DIR] [-only table1,fig4,...] [-workers N] [-tolerate]
//	          [-stream] [-window BYTES]
//	          [-cache-dir DIR] [-trace-out FILE] [-metrics-out FILE]
//	          [-corpus-out FILE]
//	          [-cpuprofile FILE] [-memprofile FILE] [-debug-addr ADDR]
//
// -stream makes the stored-trace pass (table4) analyze each trace while
// decoding it in bounded windows (-window BYTES, default 4 MiB) instead of
// materializing it; results are identical, only the stage-time split
// changes (the fused pass reports the detect+match wall clock).
//
// -corpus-out writes the fleet rollup: every corpus test's verification
// outcomes bucketed by consistency model, I/O library, and the trace's DFG
// archetype (metadata / read-only / write-only / read-modify-write /
// mixed, derived from its directly-follows graph), plus the run's
// verdict-cache, happens-before and skeleton telemetry — one
// machine-readable JSON document for fleet dashboards.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"verifyio/internal/corpus"
	"verifyio/internal/dfg"
	"verifyio/internal/obs"
	"verifyio/internal/recorder"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
	"verifyio/internal/vcache"
	"verifyio/internal/verify"
)

func main() {
	os.Exit(run())
}

type artifact struct {
	name string
	fn   func(w io.Writer) error
}

func run() int {
	var (
		out      = flag.String("out", "results", "output directory for the artifacts")
		only     = flag.String("only", "", "comma-separated subset (table1,table2,table3,table4,fig3,fig4)")
		workers  = flag.Int("workers", 0, "analysis+verification worker goroutines for steps 2–4 (0 = GOMAXPROCS, 1 = serial); conflict detection shards across files and within single shared files")
		tolerate = flag.Bool("tolerate", false, "read stored traces leniently, salvaging damaged rank streams")
		stream   = flag.Bool("stream", false, "analyze stored traces (table4) while decoding in bounded windows instead of materializing them")
		window   = flag.Int64("window", 0, "decoded-record window in bytes for -stream (0 = default 4 MiB, negative = unbounded)")
		cacheDir = flag.String("cache-dir", "", "persistent verdict-cache directory shared across reproduce runs (warm reruns skip unchanged verification work)")

		traceOut   = flag.String("trace-out", "", "write telemetry spans as Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write the runtime metrics snapshot as JSON to this file")
		corpusOut  = flag.String("corpus-out", "", "write the fleet rollup (races by model x library x DFG archetype plus cache/fallback telemetry) as JSON to this file")
		prof       obs.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		}
	}()
	var oc obs.Ctx
	if *traceOut != "" || *metricsOut != "" || prof.DebugAddr != "" {
		oc = obs.Ctx{T: obs.NewTracer(), R: obs.NewRegistry()}
		obs.PublishRegistry("verifyio", oc.R)
	} else if *corpusOut != "" {
		// The rollup pulls its telemetry section from Report.Metrics, which
		// needs a registry attached even when no metrics file was asked for.
		oc = obs.Ctx{R: obs.NewRegistry()}
	}
	defer func() {
		if err := obs.WriteFileWith(*traceOut, oc.T.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: write -trace-out: %v\n", err)
		}
		if err := obs.WriteFileWith(*metricsOut, oc.R.WriteMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: write -metrics-out: %v\n", err)
		}
	}()
	vopts := verify.Options{Workers: *workers, Obs: oc}
	if *cacheDir != "" {
		store, err := vcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: open -cache-dir: %v\n", err)
			return 2
		}
		defer func() {
			if err := store.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: close -cache-dir: %v\n", err)
			}
		}()
		// CacheID is left empty: corpus.VerifyOpts names each test's
		// manifest after the test, and other passes derive a content id.
		vopts.Cache = store
	}
	dopts := trace.DecodeOptions{Tolerate: *tolerate, Obs: oc}

	// fig4 is computed once and shared with table3/table4.
	var rows []*corpus.Row
	rowsOnce := func() ([]*corpus.Row, error) {
		if rows != nil {
			return rows, nil
		}
		for _, tc := range corpus.Tests() {
			row, err := corpus.VerifyOpts(tc, verify.AlgoVectorClock, vopts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil
	}

	artifacts := []artifact{
		{"table1", table1},
		{"table2", table2},
		{"fig4", func(w io.Writer) error { return fig4(w, rowsOnce) }},
		{"table3", func(w io.Writer) error { return table3(w, rowsOnce) }},
		{"table4", func(w io.Writer) error { return table4(w, vopts, dopts, *stream, *window) }},
		{"fig3", func(w io.Writer) error { return fig3(w, vopts) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		return 2
	}
	for _, a := range artifacts {
		if len(want) > 0 && !want[a.name] {
			continue
		}
		path := filepath.Join(*out, a.name+".txt")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			return 2
		}
		w := io.MultiWriter(os.Stdout, f)
		fmt.Fprintf(w, "==== %s ====\n", a.name)
		if err := a.fn(w); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", a.name, err)
			f.Close()
			return 2
		}
		fmt.Fprintln(w)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			return 2
		}
	}
	if *corpusOut != "" {
		if err := obs.WriteFileWith(*corpusOut, func(w io.Writer) error {
			return corpusRollup(w, rowsOnce, *workers, oc)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: write -corpus-out: %v\n", err)
			return 2
		}
		fmt.Printf("corpus rollup: %s\n", *corpusOut)
	}
	return 0
}

// corpusRollup aggregates the whole corpus's verification outcomes into
// the fleet rollup: each test's trace is regenerated, classified by its
// DFG archetype, and its per-model reports bucketed by
// (model, library, archetype). The telemetry section comes from the last
// report's registry snapshot — the registry is cumulative across the run,
// so that snapshot covers the full corpus pass.
func corpusRollup(w io.Writer, rowsOnce func() ([]*corpus.Row, error), workers int, oc obs.Ctx) error {
	rows, err := rowsOnce()
	if err != nil {
		return err
	}
	rb := dfg.NewRollup()
	var last *obs.Snapshot
	for _, row := range rows {
		tr, err := corpus.Run(row.Test)
		if err != nil {
			return fmt.Errorf("%s: %w", row.Test.Name, err)
		}
		fleet := dfg.FromTrace(tr, dfg.Options{Workers: workers, Obs: oc})
		rb.Add(row.Test.Library, fleet.Archetype, row.Reports)
		for _, rep := range row.Reports {
			if rep != nil && rep.Metrics != nil {
				last = rep.Metrics
			}
		}
	}
	return rb.Finish(last).WriteJSON(w)
}

// table1 prints the synchronization-operation set S and the MSC per model.
func table1(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-45s %s\n", "Model", "S", "MSC")
	for _, m := range semantics.All() {
		s := "{}"
		if len(m.SyncSet) > 0 {
			s = "{" + strings.Join(m.SyncSet, ", ") + "}"
		}
		fmt.Fprintf(w, "%-10s %-45s %s\n", m.Name, s, m.MSC.String())
	}
	return nil
}

// table2 prints the tracer coverage comparison.
func table2(w io.Writer) error {
	reg := recorder.DefaultRegistry()
	libs := []string{"hdf5", "netcdf", "pnetcdf"}
	fmt.Fprintf(w, "%-12s %8s %8s %8s\n", "Tracer", "HDF5", "NetCDF", "PnetCDF")
	for _, cov := range []recorder.Coverage{recorder.CoverageLegacy, recorder.CoveragePlus} {
		fmt.Fprintf(w, "%-12s", cov.String())
		for _, lib := range libs {
			n := reg.Count(cov, lib)
			if n == 0 {
				fmt.Fprintf(w, "%8s", "-")
			} else {
				fmt.Fprintf(w, "%8d", n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(recorder+ fully covers each simulated library's API surface;\n")
	fmt.Fprintf(w, " the legacy recorder supports a fixed 84-function HDF5 subset only)\n")
	return nil
}

// fig4 prints races per test × model; green = 0 races, gray = unmatched.
func fig4(w io.Writer, rowsOnce func() ([]*corpus.Row, error)) error {
	rows, err := rowsOnce()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %-8s %10s %10s %10s %10s %10s\n",
		"test", "library", "conflicts", "POSIX", "Commit", "Session", "MPI-IO")
	lib := ""
	for _, row := range rows {
		if row.Test.Library != lib {
			lib = row.Test.Library
			fmt.Fprintf(w, "-- %s --\n", lib)
		}
		if row.Unmatched {
			fmt.Fprintf(w, "%-24s %-8s %10s %10s %10s %10s %10s\n",
				row.Test.Name, lib, "-", "unmatched", "unmatched", "unmatched", "unmatched")
			continue
		}
		fmt.Fprintf(w, "%-24s %-8s %10d %10d %10d %10d %10d\n",
			row.Test.Name, lib, row.Conflicts,
			row.Races[0], row.Races[1], row.Races[2], row.Races[3])
	}
	return nil
}

// table3 prints the not-properly-synchronized summary.
func table3(w io.Writer, rowsOnce func() ([]*corpus.Row, error)) error {
	rows, err := rowsOnce()
	if err != nil {
		return err
	}
	s := corpus.Summarize(rows)
	libs := corpus.Libraries()
	fmt.Fprintf(w, "%-10s", "Semantics")
	for _, lib := range libs {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("%s (%d)", lib, s.TestsPerLibrary[lib]))
	}
	fmt.Fprintf(w, " %10s\n", "Total (91)")
	for m, model := range semantics.All() {
		fmt.Fprintf(w, "%-10s", model.Name)
		for _, lib := range libs {
			fmt.Fprintf(w, " %9d", s.NotSynced[m][lib])
		}
		fmt.Fprintf(w, " %10d\n", corpus.Totals(s.NotSynced[m]))
	}
	fmt.Fprintf(w, "unmatched MPI calls (gray rows): %d\n", corpus.Totals(s.Unmatched))
	return nil
}

// table4 prints the stage-time breakdown of the three slowest tests.
func table4(w io.Writer, vopts verify.Options, dopts trace.DecodeOptions, stream bool, window int64) error {
	names := []string{"nc4perf", "cache", "pmulti_dset"}
	type breakdown struct {
		name       string
		timing     verify.Timing
		nodes      int
		edges      int
		skelNodes  int
		skelLevels int
		pairs      int64
	}
	var rows []breakdown
	for _, name := range names {
		tc, err := corpus.ByName(name)
		if err != nil {
			return err
		}
		tr, err := corpus.Run(tc)
		if err != nil {
			return err
		}
		// The paper's first stage is reading the stored trace: round-trip
		// through the on-disk format and time the read.
		dir, err := os.MkdirTemp("", "verifyio-table4-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if err := trace.WriteDir(dir, tr, trace.DefaultEncodeOptions()); err != nil {
			return err
		}
		aopts := verify.AnalyzeOptions{Workers: vopts.Workers, Obs: vopts.Obs}
		var a *verify.Analysis
		if stream {
			// The fused pass decodes while it detects and matches, so the
			// read shows up in the detect+match wall clock, not Read trace.
			a, err = verify.AnalyzeStream(dir, verify.AlgoVectorClock, verify.StreamAnalyzeOptions{
				AnalyzeOptions: aopts,
				Decode:         dopts,
				WindowBytes:    window,
			})
			if err != nil {
				return err
			}
		} else {
			readStart := time.Now()
			tr, _, err = trace.ReadDirWithOptions(dir, dopts)
			if err != nil {
				return err
			}
			readTime := time.Since(readStart)
			a, err = verify.AnalyzeOpts(tr, verify.AlgoVectorClock, aopts)
			if err != nil {
				return err
			}
			a.Timing.ReadTrace = readTime
		}
		// Verification time = sum over the four models (the paper
		// verifies each model; we report the aggregate pass).
		var vtime time.Duration
		for _, m := range semantics.All() {
			o := vopts
			o.Model = m
			rep, err := a.Verify(o)
			if err != nil {
				return err
			}
			vtime += rep.Timing.Verification
		}
		t := a.Timing
		t.Verification = vtime
		rows = append(rows, breakdown{
			name: name, timing: t,
			nodes: a.Graph.Nodes(), edges: a.Graph.SyncEdges(),
			skelNodes: a.Graph.SkeletonNodes(), skelLevels: a.Graph.SkeletonLevels(),
			pairs: a.Conflicts.Pairs,
		})
	}
	fmt.Fprintf(w, "%-32s", "Stage")
	for _, r := range rows {
		fmt.Fprintf(w, " %16s", r.name)
	}
	fmt.Fprintln(w)
	stage := func(label string, pick func(verify.Timing) time.Duration) {
		fmt.Fprintf(w, "%-32s", label)
		for _, r := range rows {
			fmt.Fprintf(w, " %16s", pick(r.timing).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	stage("Read trace", func(t verify.Timing) time.Duration { return t.ReadTrace })
	stage("Detect conflicts", func(t verify.Timing) time.Duration { return t.DetectConflicts })
	stage("Match MPI calls", func(t verify.Timing) time.Duration { return t.Match })
	stage("  detect+match wall clock", func(t verify.Timing) time.Duration { return t.DetectMatchWall })
	stage("Build the happens-before graph", func(t verify.Timing) time.Duration { return t.BuildGraph })
	stage("Generate vector clock", func(t verify.Timing) time.Duration { return t.VectorClock })
	stage("Verification (4 models)", func(t verify.Timing) time.Duration { return t.Verification })
	stage("Total", func(t verify.Timing) time.Duration { return t.Total() })
	fmt.Fprintf(w, "%-32s", "graph nodes / sync edges")
	for _, r := range rows {
		fmt.Fprintf(w, " %16s", fmt.Sprintf("%d/%d", r.nodes, r.edges))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-32s", "skeleton nodes / levels")
	for _, r := range rows {
		fmt.Fprintf(w, " %16s", fmt.Sprintf("%d/%d", r.skelNodes, r.skelLevels))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-32s", "conflict pairs")
	for _, r := range rows {
		fmt.Fprintf(w, " %16d", r.pairs)
	}
	fmt.Fprintln(w)
	return nil
}

// fig3 prints the pruning ablation: properly-synchronized checks performed
// with and without the four pruning rules, per racy test.
func fig3(w io.Writer, vopts verify.Options) error {
	names := []string{"shapesame", "pmulti_dset", "nc4perf", "interleaved"}
	fmt.Fprintf(w, "%-16s %12s %14s %14s %8s\n", "test", "conflicts", "checks(prune)", "checks(full)", "saving")
	for _, name := range names {
		tc, err := corpus.ByName(name)
		if err != nil {
			return err
		}
		tr, err := corpus.Run(tc)
		if err != nil {
			return err
		}
		a, err := verify.AnalyzeOpts(tr, verify.AlgoVectorClock, verify.AnalyzeOptions{Workers: vopts.Workers, Obs: vopts.Obs})
		if err != nil {
			return err
		}
		o := vopts
		o.Model = semantics.MPIIOModel()
		pruned, err := a.Verify(o)
		if err != nil {
			return err
		}
		o.DisablePruning = true
		full, err := a.Verify(o)
		if err != nil {
			return err
		}
		if pruned.RaceCount != full.RaceCount {
			return fmt.Errorf("%s: pruning changed the result (%d vs %d races)",
				name, pruned.RaceCount, full.RaceCount)
		}
		saving := 1 - float64(pruned.ChecksPerformed)/float64(full.ChecksPerformed)
		fmt.Fprintf(w, "%-16s %12d %14d %14d %7.1f%%\n",
			name, pruned.ConflictPairs, pruned.ChecksPerformed, full.ChecksPerformed, 100*saving)
	}
	return nil
}

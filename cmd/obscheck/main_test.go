package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"verifyio/internal/obs"
)

func writeSnap(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Gauge("decode.peak_resident_bytes").Set(5_000_000)
	reg.Gauge("decode.window_bytes").Set(4_194_304)
	reg.Gauge("dfg.anomalous_ranks").Set(0)
	reg.Counter("verify.checks").Add(12)
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssertMetrics(t *testing.T) {
	path := writeSnap(t)
	for _, tc := range []struct {
		spec string
		op   compareOp
		ok   bool
	}{
		// Plain name/literal operands, both relations.
		{"dfg.anomalous_ranks,0", opEQ, true},
		{"dfg.anomalous_ranks,0", opLE, true},
		{"verify.checks,12", opEQ, true},
		{"verify.checks,11", opEQ, false},
		{"verify.checks,11", opLE, false},
		// Ratio-scaled operands: peak <= 2x window holds, == does not.
		{"decode.peak_resident_bytes,decode.window_bytes*2", opLE, true},
		{"decode.peak_resident_bytes,decode.window_bytes*2", opEQ, false},
		{"decode.peak_resident_bytes,decode.window_bytes*1.1", opLE, false},
		// Ratio on the left, metric-vs-metric equality.
		{"decode.window_bytes*0.5,decode.peak_resident_bytes", opLE, true},
		{"decode.window_bytes,decode.window_bytes*1", opEQ, true},
		// Malformed specs and unknown metrics fail.
		{"decode.window_bytes", opLE, false},
		{"no.such.metric,0", opEQ, false},
		{"decode.window_bytes*x,0", opLE, false},
	} {
		err := assertMetrics(path, tc.spec, tc.op)
		if tc.ok && err != nil {
			t.Errorf("%s %q: unexpected error %v", tc.op.flagName(), tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s %q: want failure, got pass", tc.op.flagName(), tc.spec)
		}
	}
}

// Command obscheck validates the telemetry artifacts the other CLIs emit —
// the schema check CI's observability smoke job runs on -trace-out and
// -metrics-out files.
//
// Usage:
//
//	obscheck -chrome FILE [-stages read-trace,detect,match,build-graph,verify] [-shards]
//	obscheck -metrics FILE [-assert-le gaugeA,gaugeB]
//	obscheck -compare-stable FILE_A -with FILE_B
//
// -chrome checks a Chrome trace_event document: structural invariants (named
// tracks, resolvable parents, children nested in time) plus the presence of
// every required pipeline stage span; -shards additionally requires the
// per-rank replay/scan shard spans a Workers>1 run emits. -metrics checks a
// metrics snapshot (histogram bucket invariants, non-negative counters) and
// that the stable section is non-empty; -assert-le additionally enforces an
// ordering invariant between two metrics — each side a gauge/counter name or
// an integer literal (CI pins the sync-skeleton clock arena under the
// full-graph one, and the warm verdict-cache miss count to zero with
// "vcache.misses,0"). -compare-stable asserts two metrics
// files have byte-identical stable sections — the determinism contract for
// runs at the same worker count.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"verifyio/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		chrome   = flag.String("chrome", "", "Chrome trace_event JSON file to validate")
		stages   = flag.String("stages", "read-trace,detect,match,build-graph,verify", "comma-separated span names the trace must contain")
		shards   = flag.Bool("shards", false, "require per-rank shard spans (replay, scan) in the trace")
		metrics  = flag.String("metrics", "", "metrics snapshot JSON file to validate")
		assertLE = flag.String("assert-le", "", "with -metrics: \"A,B\" asserts gauge A <= gauge B in the snapshot")
		compare  = flag.String("compare-stable", "", "metrics file whose stable section must byte-match -with")
		with     = flag.String("with", "", "second metrics file for -compare-stable")
	)
	flag.Parse()

	ran := false
	if *chrome != "" {
		ran = true
		if err := checkChrome(*chrome, *stages, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid chrome trace\n", *chrome)
	}
	if *metrics != "" {
		ran = true
		if err := checkMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid metrics snapshot\n", *metrics)
	}
	if *assertLE != "" {
		ran = true
		if *metrics == "" {
			fmt.Fprintln(os.Stderr, "obscheck: -assert-le requires -metrics")
			return 2
		}
		if err := assertGaugeLE(*metrics, *assertLE); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
	}
	if *compare != "" || *with != "" {
		ran = true
		if *compare == "" || *with == "" {
			fmt.Fprintln(os.Stderr, "obscheck: -compare-stable and -with must be used together")
			return 2
		}
		if err := compareStable(*compare, *with); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s and %s: stable sections identical\n", *compare, *with)
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

func checkChrome(path, stages string, shards bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := obs.ParseChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := obs.ValidateEvents(events); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	seen := map[string]int{}
	for _, e := range events {
		if e.Ph == "X" {
			seen[e.Name]++
		}
	}
	for _, stage := range strings.Split(stages, ",") {
		stage = strings.TrimSpace(stage)
		if stage != "" && seen[stage] == 0 {
			return fmt.Errorf("%s: no %q span (have %d spans across %d distinct names)",
				path, stage, len(events), len(seen))
		}
	}
	if shards {
		for _, shard := range []string{"replay", "scan"} {
			if seen[shard] == 0 {
				return fmt.Errorf("%s: no %q shard span — was the run single-worker?", path, shard)
			}
		}
	}
	return nil
}

func loadSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: not a metrics snapshot: %w", path, err)
	}
	return &snap, nil
}

func checkMetrics(path string) error {
	snap, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	if err := obs.ValidateSnapshot(snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Stable.Counters)+len(snap.Stable.Gauges)+len(snap.Stable.Histograms) == 0 {
		return fmt.Errorf("%s: stable section is empty", path)
	}
	return nil
}

// assertGaugeLE checks an ordering invariant in a snapshot, e.g. that the
// sync-skeleton clock arena never exceeds the full-graph one, or that a
// warm verdict-cache run recorded zero misses. spec is "A,B" meaning metric
// A must be <= B. Each side is a gauge or counter name (searched in both
// stability sections, gauges first) or an integer literal — so
// "vcache.misses,0" pins a metric to zero.
func assertGaugeLE(path, spec string) error {
	names := strings.Split(spec, ",")
	if len(names) != 2 || strings.TrimSpace(names[0]) == "" || strings.TrimSpace(names[1]) == "" {
		return fmt.Errorf("-assert-le wants \"gaugeA,gaugeB\", got %q", spec)
	}
	snap, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	vals := make([]int64, 2)
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		if v, err := strconv.ParseInt(name, 10, 64); err == nil {
			vals[i] = v
			continue
		}
		v, ok := lookupMetric(snap, name)
		if !ok {
			return fmt.Errorf("%s: metric %q not in snapshot", path, name)
		}
		vals[i] = v
	}
	if vals[0] > vals[1] {
		return fmt.Errorf("%s: %s = %d exceeds %s = %d", path, names[0], vals[0], names[1], vals[1])
	}
	fmt.Printf("%s: %s = %d <= %s = %d\n", path, names[0], vals[0], names[1], vals[1])
	return nil
}

// lookupMetric resolves a name against the snapshot's gauges, then
// counters, in both stability sections.
func lookupMetric(snap *obs.Snapshot, name string) (int64, bool) {
	for _, sec := range []*obs.Section{&snap.Stable, &snap.Volatile} {
		if v, ok := sec.Gauges[name]; ok {
			return v, true
		}
	}
	for _, sec := range []*obs.Section{&snap.Stable, &snap.Volatile} {
		if v, ok := sec.Counters[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func compareStable(pathA, pathB string) error {
	var stable [2][]byte
	for i, path := range []string{pathA, pathB} {
		snap, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(snap.Stable, "", "  ")
		if err != nil {
			return err
		}
		stable[i] = b
	}
	if !bytes.Equal(stable[0], stable[1]) {
		return fmt.Errorf("stable sections differ:\n--- %s\n%s\n--- %s\n%s",
			pathA, stable[0], pathB, stable[1])
	}
	return nil
}

// Command obscheck validates the telemetry artifacts the other CLIs emit —
// the schema check CI's observability smoke job runs on -trace-out and
// -metrics-out files.
//
// Usage:
//
//	obscheck -chrome FILE [-stages read-trace,detect,match,build-graph,verify] [-shards]
//	obscheck -metrics FILE [-assert-le A,B] [-assert-eq A,B]
//	obscheck -compare-stable FILE_A -with FILE_B
//
// -chrome checks a Chrome trace_event document: structural invariants (named
// tracks, resolvable parents, children nested in time) plus the presence of
// every required pipeline stage span; -shards additionally requires the
// per-rank replay/scan shard spans a Workers>1 run emits. -metrics checks a
// metrics snapshot (histogram bucket invariants, non-negative counters) and
// that the stable section is non-empty.
//
// -assert-le and -assert-eq enforce invariants between two metrics: "A,B"
// asserts A <= B (respectively A == B). Each operand is a gauge/counter
// name, an integer literal, or a name scaled by a literal ratio
// ("name*2.5"), so CI can pin the sync-skeleton clock arena under the
// full-graph one, the warm verdict-cache miss count to zero
// ("vcache.misses,0"), the anomalous-rank gauge to zero on clean corpus
// runs ("dfg.anomalous_ranks,0"), and the streaming decoder's peak under
// twice its window ("decode.peak_resident_bytes,decode.window_bytes*2").
//
// -compare-stable asserts two metrics files have byte-identical stable
// sections — the determinism contract for runs at the same worker count.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"verifyio/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		chrome   = flag.String("chrome", "", "Chrome trace_event JSON file to validate")
		stages   = flag.String("stages", "read-trace,detect,match,build-graph,verify", "comma-separated span names the trace must contain")
		shards   = flag.Bool("shards", false, "require per-rank shard spans (replay, scan) in the trace")
		metrics  = flag.String("metrics", "", "metrics snapshot JSON file to validate")
		assertLE = flag.String("assert-le", "", "with -metrics: \"A,B\" asserts metric A <= B (operands: name, integer literal, or name*ratio)")
		assertEQ = flag.String("assert-eq", "", "with -metrics: \"A,B\" asserts metric A == B (operands: name, integer literal, or name*ratio)")
		compare  = flag.String("compare-stable", "", "metrics file whose stable section must byte-match -with")
		with     = flag.String("with", "", "second metrics file for -compare-stable")
	)
	flag.Parse()

	ran := false
	if *chrome != "" {
		ran = true
		if err := checkChrome(*chrome, *stages, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid chrome trace\n", *chrome)
	}
	if *metrics != "" {
		ran = true
		if err := checkMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid metrics snapshot\n", *metrics)
	}
	for _, a := range []struct {
		flag, spec string
		op         compareOp
	}{
		{"-assert-le", *assertLE, opLE},
		{"-assert-eq", *assertEQ, opEQ},
	} {
		if a.spec == "" {
			continue
		}
		ran = true
		if *metrics == "" {
			fmt.Fprintf(os.Stderr, "obscheck: %s requires -metrics\n", a.flag)
			return 2
		}
		if err := assertMetrics(*metrics, a.spec, a.op); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
	}
	if *compare != "" || *with != "" {
		ran = true
		if *compare == "" || *with == "" {
			fmt.Fprintln(os.Stderr, "obscheck: -compare-stable and -with must be used together")
			return 2
		}
		if err := compareStable(*compare, *with); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			return 1
		}
		fmt.Printf("%s and %s: stable sections identical\n", *compare, *with)
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

func checkChrome(path, stages string, shards bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := obs.ParseChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := obs.ValidateEvents(events); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	seen := map[string]int{}
	for _, e := range events {
		if e.Ph == "X" {
			seen[e.Name]++
		}
	}
	for _, stage := range strings.Split(stages, ",") {
		stage = strings.TrimSpace(stage)
		if stage != "" && seen[stage] == 0 {
			return fmt.Errorf("%s: no %q span (have %d spans across %d distinct names)",
				path, stage, len(events), len(seen))
		}
	}
	if shards {
		for _, shard := range []string{"replay", "scan"} {
			if seen[shard] == 0 {
				return fmt.Errorf("%s: no %q shard span — was the run single-worker?", path, shard)
			}
		}
	}
	return nil
}

func loadSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: not a metrics snapshot: %w", path, err)
	}
	return &snap, nil
}

func checkMetrics(path string) error {
	snap, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	if err := obs.ValidateSnapshot(snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Stable.Counters)+len(snap.Stable.Gauges)+len(snap.Stable.Histograms) == 0 {
		return fmt.Errorf("%s: stable section is empty", path)
	}
	return nil
}

// compareOp is the relation an assertion enforces between its operands.
type compareOp int

const (
	opLE compareOp = iota
	opEQ
)

func (op compareOp) String() string {
	if op == opEQ {
		return "=="
	}
	return "<="
}

func (op compareOp) flagName() string {
	if op == opEQ {
		return "-assert-eq"
	}
	return "-assert-le"
}

// assertMetrics checks an invariant between two metrics in a snapshot,
// e.g. that the sync-skeleton clock arena never exceeds the full-graph
// one, that a warm verdict-cache run recorded zero misses, or that the
// anomalous-rank gauge is exactly zero. spec is "A,B" meaning metric A
// must satisfy the relation against B. Each operand is a gauge or counter
// name (searched in both stability sections, gauges first), an integer
// literal, or a name scaled by a literal ratio ("decode.window_bytes*2").
func assertMetrics(path, spec string, op compareOp) error {
	names := strings.Split(spec, ",")
	if len(names) != 2 || strings.TrimSpace(names[0]) == "" || strings.TrimSpace(names[1]) == "" {
		return fmt.Errorf("%s wants \"A,B\", got %q", op.flagName(), spec)
	}
	snap, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	vals := make([]float64, 2)
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		v, err := evalOperand(snap, name)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		vals[i] = v
	}
	holds := vals[0] <= vals[1]
	if op == opEQ {
		holds = vals[0] == vals[1]
	}
	if !holds {
		return fmt.Errorf("%s: %s = %s violates %s %s = %s",
			path, names[0], fmtVal(vals[0]), op, names[1], fmtVal(vals[1]))
	}
	fmt.Printf("%s: %s = %s %s %s = %s\n",
		path, names[0], fmtVal(vals[0]), op, names[1], fmtVal(vals[1]))
	return nil
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// evalOperand resolves one assertion operand: an integer literal, a metric
// name, or "name*ratio" with a literal float ratio.
func evalOperand(snap *obs.Snapshot, operand string) (float64, error) {
	if v, err := strconv.ParseInt(operand, 10, 64); err == nil {
		return float64(v), nil
	}
	name, ratio := operand, 1.0
	if base, scale, ok := strings.Cut(operand, "*"); ok {
		r, err := strconv.ParseFloat(strings.TrimSpace(scale), 64)
		if err != nil {
			return 0, fmt.Errorf("operand %q: ratio %q is not a number", operand, scale)
		}
		name, ratio = strings.TrimSpace(base), r
	}
	v, ok := lookupMetric(snap, name)
	if !ok {
		return 0, fmt.Errorf("metric %q not in snapshot", name)
	}
	return float64(v) * ratio, nil
}

// lookupMetric resolves a name against the snapshot's gauges, then
// counters, in both stability sections.
func lookupMetric(snap *obs.Snapshot, name string) (int64, bool) {
	for _, sec := range []*obs.Section{&snap.Stable, &snap.Volatile} {
		if v, ok := sec.Gauges[name]; ok {
			return v, true
		}
	}
	for _, sec := range []*obs.Section{&snap.Stable, &snap.Volatile} {
		if v, ok := sec.Counters[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func compareStable(pathA, pathB string) error {
	var stable [2][]byte
	for i, path := range []string{pathA, pathB} {
		snap, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(snap.Stable, "", "  ")
		if err != nil {
			return err
		}
		stable[i] = b
	}
	if !bytes.Equal(stable[0], stable[1]) {
		return fmt.Errorf("stable sections differ:\n--- %s\n%s\n--- %s\n%s",
			pathA, stable[0], pathB, stable[1])
	}
	return nil
}

// Command bench measures the analysis front-end (steps 2–4): it runs
// Analyze + a four-model verification pass over every scaling-corpus trace
// at workers ∈ {1, GOMAXPROCS} and writes the results — ns/op, allocs/op,
// bytes/op, and the per-stage timing breakdown — as JSON. The committed
// BENCH_analyze.json at the repository root is this command's output; CI
// regenerates and validates it with -benchtime 1x on every push.
//
// Usage:
//
//	bench [-out BENCH_analyze.json] [-benchtime 5x|2s] [-check FILE]
//	bench -compare NEW -baseline OLD [-max-overhead PCT]
//	bench -stream-smoke [-stream-records N] [-window BYTES] [-metrics-out FILE]
//
// -stream-smoke is the bounded-memory ingestion cell: it stages a synthetic
// trace directory of -stream-records records (default 10M) one rank at a
// time, stream-decodes it with the given -window, and reports decode
// throughput plus the decode.peak_resident_bytes high-water mark in the
// -metrics-out snapshot. Each decoded batch is also fed to a dfg.Builder
// before it is released, so the snapshot carries the dfg.* gauges and the
// peak-resident gate covers directly-follows-graph construction too. CI
// gates that gauge with obscheck -assert-le: peak resident decoded bytes
// must stay bounded by the window no matter how large the trace grows.
//
// -benchtime accepts either a fixed iteration count ("5x") or a minimum
// duration per (trace, workers) cell ("2s"), mirroring go test. -check
// validates an existing output file instead of benchmarking. -compare reads
// two output files and reports the mean ns/op delta of NEW relative to OLD
// across matching (trace, workers) cells, failing when it exceeds
// -max-overhead percent — the CI guard that telemetry-disabled runs stay
// within noise of the committed baseline.
//
// Every run cell also records the stable telemetry metrics of the workload
// (conflict pairs, checks performed, par pool task counts, ...) captured
// from one extra instrumented iteration that is excluded from the timing.
//
// Each trace additionally carries build-graph/vector-clock micro-cells
// (graph_runs) measuring hbgraph.Build and skeleton clock construction in
// isolation, plus the skeleton shape and clock-arena sizes; -check enforces
// that the skeleton arena never exceeds the full-graph O(records·ranks) one.
// dfg_runs cells measure directly-follows-graph construction (dfg.FromTrace)
// at the same worker counts; while measuring, bench cross-checks that the
// fleet JSON is byte-identical across worker counts, and -check enforces
// that the fleet shape (nodes, edges, anomalous ranks) agrees.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/corpus"
	"verifyio/internal/dfg"
	"verifyio/internal/hbgraph"
	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
	"verifyio/internal/vcache"
	"verifyio/internal/verify"
)

// Output schema. Field names are part of the artifact contract checked by
// -check and the CI smoke job.
type output struct {
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	BenchTime  string       `json:"benchtime"`
	Traces     []traceBench `json:"traces"`
	// Cache holds the incremental re-verification cells (verdict cache).
	Cache *cacheBench `json:"cache,omitempty"`
	// Sweep holds the intra-file conflict-sweep cells (dense single file).
	Sweep *sweepBench `json:"sweep,omitempty"`
}

// sweepBench is the intra-file sweep workload: conflict detection in
// isolation on a dense single-shared-file trace — every rank hammering one
// file, the canonical N-to-1 HPC pattern the per-file sharding could never
// parallelize. Cells measure conflict.DetectOpts at workers 1 and
// GOMAXPROCS; bench cross-checks while measuring that the Result is
// byte-identical across worker counts, and -check enforces the fan-out,
// allocation, scratch, and speedup contracts.
type sweepBench struct {
	Ranks  int         `json:"ranks"`
	Ops    int         `json:"ops"`
	Pairs  int64       `json:"pairs"`
	Groups int         `json:"groups"`
	Cells  []sweepCell `json:"sweep_runs"`
	// DetectSpeedup is ns/op at workers=1 over ns/op at the highest worker
	// count (1.0 when GOMAXPROCS is 1).
	DetectSpeedup float64 `json:"detect_speedup"`
}

// sweepCell is one (workers) cell of the sweep workload. The telemetry
// fields come from one instrumented iteration excluded from the timing:
// Tasks is par.detect-sweep.tasks_submitted (> 1 proves the intra-file
// fan-out), Slices/CarryOps/ScratchBytes are the conflict.sweep_* gauges.
type sweepCell struct {
	Workers      int   `json:"workers"`
	Iters        int   `json:"iters"`
	NsPerOp      int64 `json:"ns_per_op"`
	AllocsPerOp  int64 `json:"allocs_per_op"`
	BytesPerOp   int64 `json:"bytes_per_op"`
	Tasks        int64 `json:"sweep_tasks"`
	Slices       int64 `json:"sweep_slices"`
	CarryOps     int64 `json:"sweep_carry_ops"`
	ScratchBytes int64 `json:"sweep_scratch_bytes"`
}

// cacheBench measures the verdict cache on an append workload: verify a
// base trace cold, re-verify it fully warm, then re-verify the same trace
// with ~1% of operations appended — the incremental case the cache exists
// for. Cells time the verification stage only (all four models, serial);
// analysis is shared and excluded. -check enforces the contract: a warm run
// never misses, and the append run costs at most 10% of cold.
type cacheBench struct {
	Ranks         int         `json:"ranks"`
	BaseRecords   int         `json:"base_records"`
	AppendRecords int         `json:"append_records"`
	Cells         []cacheCell `json:"cells"`
	// AppendColdRatio is verify_append1pct ns/op over verify_cold ns/op.
	AppendColdRatio float64 `json:"append_cold_ratio"`
}

// cacheCell is one verdict-cache cell: verify_cold (empty store),
// verify_warm (unchanged trace, sealed store), verify_append1pct (grown
// trace against the base run's store). Hit/miss/dirty counters are summed
// over the four model passes of one measured iteration.
type cacheCell struct {
	Name        string `json:"name"`
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	DirtyChunks int64  `json:"dirty_chunks"`
	RaceCount   int64  `json:"race_count"`
}

type traceBench struct {
	Name    string `json:"name"`
	Ranks   int    `json:"ranks"`
	Records int    `json:"records"`
	Ops     int    `json:"ops"`
	Pairs   int64  `json:"pairs"`
	Groups  int    `json:"groups"`
	Runs    []run  `json:"runs"`
	// Speedup is ns/op at workers=1 divided by ns/op at the highest
	// worker count (1.0 when GOMAXPROCS is 1).
	Speedup float64 `json:"speedup"`

	// Sync-skeleton shape and the happens-before micro-cells. The clock
	// arena is O(SkeletonNodes·ranks); VCFullArenaBytes records what the
	// pre-skeleton O(records·ranks) layout would have allocated, so the
	// artifact carries the memory win explicitly (and -check enforces
	// arena ≤ full-arena).
	SkeletonNodes    int        `json:"skeleton_nodes"`
	SkeletonLevels   int        `json:"skeleton_levels"`
	VCArenaBytes     int64      `json:"vc_arena_bytes"`
	VCFullArenaBytes int64      `json:"vc_full_arena_bytes"`
	GraphRuns        []graphRun `json:"graph_runs"`

	// SegReachBytes is the segment-reachability matrix size (S²/8 bytes),
	// the hbgraph.segreach_bytes gauge; -check enforces it stays within the
	// default budget. QueryRuns is the cross-oracle queries/sec comparison:
	// each oracle answers the same fixed query mix on this trace's graph.
	SegReachBytes int64      `json:"segreach_bytes"`
	QueryRuns     []queryRun `json:"query_runs"`

	// DfgRuns are the directly-follows-graph construction cells
	// (dfg.FromTrace at workers 1 and GOMAXPROCS). bench cross-checks while
	// measuring that the fleet JSON is byte-identical across worker counts.
	DfgRuns []dfgRun `json:"dfg_runs"`
}

// dfgRun is one DFG construction micro-cell plus the fleet shape it
// produced; -check enforces the shape agrees across worker counts. Bytes
// are total allocations per op — the streaming peak-resident bound is gated
// separately by the -stream-smoke cell, which builds the same graphs from
// bounded decode windows.
type dfgRun struct {
	Workers        int   `json:"workers"`
	Iters          int   `json:"iters"`
	NsPerOp        int64 `json:"ns_per_op"`
	BytesPerOp     int64 `json:"bytes_per_op"`
	Nodes          int   `json:"nodes"`
	Edges          int   `json:"edges"`
	AnomalousRanks int   `json:"anomalous_ranks"`
}

// queryRun is one oracle's query micro-cell: ns per happens-before query
// over a fixed mixed (same-rank and cross-rank) query set.
type queryRun struct {
	Oracle        string  `json:"oracle"`
	Queries       int     `json:"queries"`
	Iters         int     `json:"iters"`
	NsPerQuery    float64 `json:"ns_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// graphRun is one build-graph/vector-clock micro-cell: hbgraph.Build and
// skeleton clock construction in isolation (the end-to-end runs above
// include them inside analyze).
type graphRun struct {
	Workers       int   `json:"workers"`
	Iters         int   `json:"iters"`
	BuildNsPerOp  int64 `json:"build_ns_per_op"`
	VCNsPerOp     int64 `json:"vc_ns_per_op"`
	VCAllocsPerOp int64 `json:"vc_allocs_per_op"`
	VCBytesPerOp  int64 `json:"vc_bytes_per_op"`
}

type run struct {
	Workers     int      `json:"workers"`
	Iters       int      `json:"iters"`
	NsPerOp     int64    `json:"ns_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	BytesPerOp  int64    `json:"bytes_per_op"`
	Stages      stagesNs `json:"stages_ns"`
	RaceCount   int64    `json:"race_count"`
	// Metrics is the stable telemetry section of one instrumented iteration
	// of this cell (deterministic at a fixed worker count; the timed
	// iterations above run with telemetry disabled).
	Metrics *obs.Section `json:"metrics,omitempty"`
}

// stagesNs is the Timing breakdown of the last iteration, in nanoseconds.
type stagesNs struct {
	Detect          int64 `json:"detect"`
	Match           int64 `json:"match"`
	DetectMatchWall int64 `json:"detect_match_wall"`
	BuildGraph      int64 `json:"build_graph"`
	VectorClock     int64 `json:"vector_clock"`
	Verification    int64 `json:"verification"`
	Total           int64 `json:"total"`
}

func main() {
	var (
		out         = flag.String("out", "BENCH_analyze.json", "output file")
		benchtime   = flag.String("benchtime", "3x", "iterations per cell: \"Nx\" or a duration (\"2s\")")
		check       = flag.String("check", "", "validate an existing output file and exit")
		compare     = flag.String("compare", "", "output file to compare against -baseline and exit")
		baseline    = flag.String("baseline", "", "baseline output file for -compare")
		maxOverhead = flag.Float64("max-overhead", 2.0, "fail -compare when the mean ns/op overhead exceeds this percentage")

		sweepMetricsOut = flag.String("sweep-metrics-out", "", "write the sweep cell's instrumented metrics snapshot as JSON to this file (obscheck input)")

		streamSmoke   = flag.Bool("stream-smoke", false, "run the streaming-decode smoke cell instead of the full benchmark")
		streamRecords = flag.Int("stream-records", 10_000_000, "total record count for -stream-smoke")
		streamWindow  = flag.Int64("window", 0, "decode window in bytes for -stream-smoke (0 = default 4 MiB, negative = unbounded)")
		metricsOut    = flag.String("metrics-out", "", "write the -stream-smoke metrics snapshot as JSON to this file (obscheck input)")
		prof          obs.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *streamSmoke {
		if err := runStreamSmoke(*streamRecords, *streamWindow, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "bench: stream-smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: well-formed\n", *check)
		return
	}
	if *compare != "" || *baseline != "" {
		if *compare == "" || *baseline == "" {
			fmt.Fprintln(os.Stderr, "bench: -compare and -baseline must be used together")
			os.Exit(2)
		}
		if err := compareFiles(*compare, *baseline, *maxOverhead); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		}
	}()

	iters, minTime, err := parseBenchTime(*benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}

	res := output{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}

	for _, sc := range corpus.ScalingCorpus() {
		tr, err := sc.Gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		tb := traceBench{Name: sc.Name, Ranks: tr.NumRanks(), Records: tr.NumRecords()}
		var baseRaces int64 = -1
		for _, workers := range workerCounts {
			r, a, races := benchOne(tr, workers, iters, minTime)
			tb.Ops = len(a.Conflicts.Ops)
			tb.Pairs = a.Conflicts.Pairs
			tb.Groups = len(a.Conflicts.Groups)
			// The determinism contract, enforced while measuring: every
			// worker count must report the same races.
			if baseRaces == -1 {
				baseRaces = races
			} else if races != baseRaces {
				fmt.Fprintf(os.Stderr, "bench: %s: workers=%d found %d races, workers=1 found %d\n",
					sc.Name, workers, races, baseRaces)
				os.Exit(1)
			}
			tb.Runs = append(tb.Runs, r)
			fmt.Printf("%-16s workers=%-3d %12d ns/op %12d allocs/op\n",
				sc.Name, workers, r.NsPerOp, r.AllocsPerOp)
		}
		tb.Speedup = float64(tb.Runs[0].NsPerOp) / float64(tb.Runs[len(tb.Runs)-1].NsPerOp)

		// Happens-before micro-cells: Build and VectorClocks in isolation,
		// over the same matcher edges the end-to-end runs used.
		mres, err := match.MatchOpts(tr, match.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: match: %v\n", sc.Name, err)
			os.Exit(1)
		}
		g, err := hbgraph.Build(tr, mres.Edges)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: build: %v\n", sc.Name, err)
			os.Exit(1)
		}
		vc, err := g.VectorClocks()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: vector clocks: %v\n", sc.Name, err)
			os.Exit(1)
		}
		tb.SkeletonNodes = g.SkeletonNodes()
		tb.SkeletonLevels = g.SkeletonLevels()
		tb.VCArenaBytes = int64(vc.ArenaBytes())
		tb.VCFullArenaBytes = int64(4 * tr.NumRecords() * tr.NumRanks())
		for _, workers := range workerCounts {
			gr := benchGraph(tr, mres.Edges, workers, iters, minTime)
			tb.GraphRuns = append(tb.GraphRuns, gr)
			fmt.Printf("%-16s workers=%-3d %12d build-ns/op %10d vc-ns/op %8d vc-B/op (skeleton %d/%d nodes)\n",
				sc.Name, workers, gr.BuildNsPerOp, gr.VCNsPerOp, gr.VCBytesPerOp,
				tb.SkeletonNodes, tb.Records)
		}
		qrs, segBytes, err := benchQueries(tr, g, mres.Edges, iters, minTime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: queries: %v\n", sc.Name, err)
			os.Exit(1)
		}
		tb.QueryRuns = qrs
		tb.SegReachBytes = segBytes
		for _, qr := range qrs {
			fmt.Printf("%-16s oracle=%-18s %8.1f ns/query %14.0f queries/s\n",
				sc.Name, qr.Oracle, qr.NsPerQuery, qr.QueriesPerSec)
		}

		// DFG cells, with the worker-count determinism contract enforced
		// while measuring: the fleet JSON must be byte-identical.
		var dfgJSON []byte
		for _, workers := range workerCounts {
			dr, js := benchDFG(tr, workers, iters, minTime)
			if dfgJSON == nil {
				dfgJSON = js
			} else if !bytes.Equal(js, dfgJSON) {
				fmt.Fprintf(os.Stderr, "bench: %s: dfg JSON at workers=%d differs from workers=1\n",
					sc.Name, workers)
				os.Exit(1)
			}
			tb.DfgRuns = append(tb.DfgRuns, dr)
			fmt.Printf("%-16s workers=%-3d %12d dfg-ns/op %12d dfg-B/op (%d nodes, %d edges, %d anomalous)\n",
				sc.Name, workers, dr.NsPerOp, dr.BytesPerOp, dr.Nodes, dr.Edges, dr.AnomalousRanks)
		}
		res.Traces = append(res.Traces, tb)
	}

	cb, err := benchCache(iters, minTime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: cache: %v\n", err)
		os.Exit(1)
	}
	res.Cache = cb

	swb, err := benchSweep(iters, minTime, *sweepMetricsOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: sweep: %v\n", err)
		os.Exit(1)
	}
	res.Sweep = swb

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchOne measures Analyze + a four-model verify pass at one worker count.
func benchOne(tr *trace.Trace, workers, iters int, minTime time.Duration) (run, *verify.Analysis, int64) {
	var (
		lastA     *verify.Analysis
		races     int64
		elapsed   time.Duration
		done      int
		allocs    uint64
		bytes     uint64
		memBefore runtime.MemStats
		memAfter  runtime.MemStats
	)
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	for done = 0; done < iters || elapsed < minTime; done++ {
		start := time.Now()
		a, err := verify.AnalyzeOpts(tr, verify.AlgoVectorClock, verify.AnalyzeOptions{Workers: workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: analyze: %v\n", err)
			os.Exit(1)
		}
		races = 0
		for _, m := range semantics.All() {
			rep, err := a.Verify(verify.Options{Model: m, Workers: workers, ContinueOnUnmatched: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: verify: %v\n", err)
				os.Exit(1)
			}
			races += rep.RaceCount
			a.Timing.Verification += rep.Timing.Verification
		}
		elapsed += time.Since(start)
		lastA = a
	}
	runtime.ReadMemStats(&memAfter)
	allocs = memAfter.Mallocs - memBefore.Mallocs
	bytes = memAfter.TotalAlloc - memBefore.TotalAlloc

	// One extra instrumented iteration, outside the timed window, captures
	// the cell's stable telemetry metrics (the timed loop above runs with
	// telemetry disabled so the artifact measures the uninstrumented path).
	reg := obs.NewRegistry()
	oc := obs.Ctx{R: reg}
	if a, err := verify.AnalyzeOpts(tr, verify.AlgoVectorClock, verify.AnalyzeOptions{Workers: workers, Obs: oc}); err == nil {
		for _, m := range semantics.All() {
			if _, err := a.Verify(verify.Options{Model: m, Workers: workers, ContinueOnUnmatched: true, Obs: oc}); err != nil {
				fmt.Fprintf(os.Stderr, "bench: instrumented verify: %v\n", err)
				os.Exit(1)
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "bench: instrumented analyze: %v\n", err)
		os.Exit(1)
	}
	metrics := reg.Snapshot().Stable

	t := lastA.Timing
	return run{
		Workers:     workers,
		Iters:       done,
		NsPerOp:     elapsed.Nanoseconds() / int64(done),
		AllocsPerOp: int64(allocs) / int64(done),
		BytesPerOp:  int64(bytes) / int64(done),
		RaceCount:   races,
		Metrics:     &metrics,
		Stages: stagesNs{
			Detect:          t.DetectConflicts.Nanoseconds(),
			Match:           t.Match.Nanoseconds(),
			DetectMatchWall: t.DetectMatchWall.Nanoseconds(),
			BuildGraph:      t.BuildGraph.Nanoseconds(),
			VectorClock:     t.VectorClock.Nanoseconds(),
			Verification:    t.Verification.Nanoseconds(),
			Total:           t.Total().Nanoseconds(),
		},
	}, lastA, races
}

// benchGraph measures hbgraph.Build and skeleton vector-clock construction
// in isolation at one worker count. Allocation stats cover the clock pass
// only — the cell whose O(V·P) → O(S·P) reduction the artifact tracks.
func benchGraph(tr *trace.Trace, edges []match.Edge, workers, iters int, minTime time.Duration) graphRun {
	var (
		g        *hbgraph.Graph
		err      error
		elapsed  time.Duration
		done     int
		memStart runtime.MemStats
		memEnd   runtime.MemStats
	)
	for done = 0; done < iters || elapsed < minTime; done++ {
		start := time.Now()
		g, err = hbgraph.Build(tr, edges)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: build: %v\n", err)
			os.Exit(1)
		}
		elapsed += time.Since(start)
	}
	buildNs := elapsed.Nanoseconds() / int64(done)

	runtime.GC()
	runtime.ReadMemStats(&memStart)
	elapsed = 0
	for done = 0; done < iters || elapsed < minTime; done++ {
		start := time.Now()
		if _, err := g.VectorClocksOpts(hbgraph.VCOptions{Workers: workers}); err != nil {
			fmt.Fprintf(os.Stderr, "bench: vector clocks: %v\n", err)
			os.Exit(1)
		}
		elapsed += time.Since(start)
	}
	runtime.ReadMemStats(&memEnd)
	return graphRun{
		Workers:       workers,
		Iters:         done,
		BuildNsPerOp:  buildNs,
		VCNsPerOp:     elapsed.Nanoseconds() / int64(done),
		VCAllocsPerOp: int64(memEnd.Mallocs-memStart.Mallocs) / int64(done),
		VCBytesPerOp:  int64(memEnd.TotalAlloc-memStart.TotalAlloc) / int64(done),
	}
}

// benchQueryCount is the fixed query-set size of the cross-oracle cells: a
// deterministic mix of same-rank and cross-rank happens-before queries.
const benchQueryCount = 4096

// benchQueries measures per-query cost for every oracle over one shared
// query set on the trace's graph, cross-checking while measuring that all
// oracles answer identically. It returns the cells plus the size of the
// segment-reachability matrix (the hbgraph.segreach_bytes gauge).
func benchQueries(tr *trace.Trace, g *hbgraph.Graph, edges []match.Edge, iters int, minTime time.Duration) ([]queryRun, int64, error) {
	vc, err := g.VectorClocks()
	if err != nil {
		return nil, 0, err
	}
	tc, err := g.TransitiveClosure()
	if err != nil {
		return nil, 0, err
	}
	seg, err := g.SegReachability(hbgraph.SegOptions{})
	if err != nil {
		return nil, 0, err
	}
	oracles := []hbgraph.Oracle{vc, g.Reachability(), tc, seg, hbgraph.NewOnTheFly(tr, edges)}

	rng := rand.New(rand.NewSource(17))
	nranks := tr.NumRanks()
	queries := make([][2]trace.Ref, benchQueryCount)
	for i := range queries {
		r1, r2 := rng.Intn(nranks), rng.Intn(nranks)
		queries[i] = [2]trace.Ref{
			{Rank: r1, Seq: rng.Intn(len(tr.Ranks[r1]))},
			{Rank: r2, Seq: rng.Intn(len(tr.Ranks[r2]))},
		}
	}

	var cells []queryRun
	var want []bool
	for _, o := range oracles {
		got := make([]bool, len(queries))
		var elapsed time.Duration
		var done int
		for done = 0; done < iters || elapsed < minTime; done++ {
			start := time.Now()
			for q, pair := range queries {
				got[q] = o.HB(pair[0], pair[1])
			}
			elapsed += time.Since(start)
		}
		if want == nil {
			want = append(want, got...)
		} else {
			for q := range queries {
				if got[q] != want[q] {
					return nil, 0, fmt.Errorf("oracle %s disagrees on query %d", o.Name(), q)
				}
			}
		}
		total := done * len(queries)
		nsq := float64(elapsed.Nanoseconds()) / float64(total)
		cell := queryRun{
			Oracle:     o.Name(),
			Queries:    len(queries),
			Iters:      done,
			NsPerQuery: nsq,
		}
		if elapsed > 0 {
			cell.QueriesPerSec = float64(total) / elapsed.Seconds()
		}
		cells = append(cells, cell)
	}
	return cells, int64(seg.ArenaBytes()), nil
}

// benchDFG measures directly-follows-graph construction (dfg.FromTrace) in
// isolation at one worker count and returns the cell plus the fleet's JSON
// encoding, which the caller compares across worker counts.
func benchDFG(tr *trace.Trace, workers, iters int, minTime time.Duration) (dfgRun, []byte) {
	var (
		fleet    *dfg.Fleet
		elapsed  time.Duration
		done     int
		memStart runtime.MemStats
		memEnd   runtime.MemStats
	)
	runtime.GC()
	runtime.ReadMemStats(&memStart)
	for done = 0; done < iters || elapsed < minTime; done++ {
		start := time.Now()
		fleet = dfg.FromTrace(tr, dfg.Options{Workers: workers})
		elapsed += time.Since(start)
	}
	runtime.ReadMemStats(&memEnd)

	var buf bytes.Buffer
	if err := fleet.WriteJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "bench: dfg encode: %v\n", err)
		os.Exit(1)
	}
	return dfgRun{
		Workers:        workers,
		Iters:          done,
		NsPerOp:        elapsed.Nanoseconds() / int64(done),
		BytesPerOp:     int64(memEnd.TotalAlloc-memStart.TotalAlloc) / int64(done),
		Nodes:          fleet.Nodes,
		Edges:          fleet.Edges,
		AnomalousRanks: len(fleet.AnomalousRanks),
	}, buf.Bytes()
}

// Cache-cell workload geometry. ops is chosen so the per-rank record count
// shared by the base and appended traces (2 + ops + 2·⌊ops/64⌋ = 8192) is an
// exact multiple of the digest block (trace.DigestBlock = 64): the manifest's
// block-granular cuts then land precisely at the append point and the whole
// base prefix is certifiable as stable. extra = 80 ≈ 1% of ops.
const (
	cacheRanks  = 8
	cacheOps    = 7942
	cacheExtra  = 80
	cacheWindow = int64(1 << 18)
	cacheSeed   = int64(7)
	cacheID     = "bench/scaling-append"
)

// verdictsMatch compares what a verification pass concluded — the contract
// the cache must preserve bit for bit.
func verdictsMatch(a, b []*verify.Report) error {
	if len(a) != len(b) {
		return fmt.Errorf("report count %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Model != y.Model || x.RaceCount != y.RaceCount || x.ChecksPerformed != y.ChecksPerformed {
			return fmt.Errorf("%s: races %d/%d, checks %d/%d",
				x.Model, x.RaceCount, y.RaceCount, x.ChecksPerformed, y.ChecksPerformed)
		}
		if len(x.Races) != len(y.Races) {
			return fmt.Errorf("%s: %d vs %d race details", x.Model, len(x.Races), len(y.Races))
		}
		for j := range x.Races {
			if x.Races[j].X.Ref != y.Races[j].X.Ref || x.Races[j].Y.Ref != y.Races[j].Y.Ref {
				return fmt.Errorf("%s: race %d (%v,%v) vs (%v,%v)", x.Model, j,
					x.Races[j].X.Ref, x.Races[j].Y.Ref, y.Races[j].X.Ref, y.Races[j].Y.Ref)
			}
		}
	}
	return nil
}

// cachePass verifies all four models serially against one store, returning
// the verification wall time and the pass's reports.
func cachePass(a *verify.Analysis, store *vcache.Store) (time.Duration, []*verify.Report, error) {
	var reps []*verify.Report
	start := time.Now()
	for _, m := range semantics.All() {
		rep, err := a.Verify(verify.Options{
			Model: m, Workers: 1, ContinueOnUnmatched: true,
			Cache: store, CacheID: cacheID,
		})
		if err != nil {
			return 0, nil, err
		}
		reps = append(reps, rep)
	}
	return time.Since(start), reps, nil
}

// cellStats folds one pass's per-model cache counters into the cell.
func cellStats(c *cacheCell, reps []*verify.Report) {
	c.Hits, c.Misses, c.DirtyChunks, c.RaceCount = 0, 0, 0, 0
	for _, rep := range reps {
		c.Hits += rep.Cache.Hits
		c.Misses += rep.Cache.Misses
		c.DirtyChunks += rep.Cache.DirtyChunks
		c.RaceCount += rep.RaceCount
	}
}

// benchCache measures the three verdict-cache cells and cross-checks, while
// measuring, that cached verdicts are identical to cacheless ones.
func benchCache(iters int, minTime time.Duration) (*cacheBench, error) {
	base := corpus.ScalingTrace(cacheRanks, cacheOps, cacheWindow, cacheSeed)
	app := corpus.ScalingTraceAppend(cacheRanks, cacheOps, cacheExtra, cacheWindow, cacheSeed)
	analyze := func(tr *trace.Trace) (*verify.Analysis, error) {
		return verify.AnalyzeOpts(tr, verify.AlgoVectorClock, verify.AnalyzeOptions{Workers: 1})
	}
	baseA, err := analyze(base)
	if err != nil {
		return nil, err
	}
	appA, err := analyze(app)
	if err != nil {
		return nil, err
	}
	// Cacheless baselines: the verdicts every cached cell must reproduce.
	_, baseWant, err := cachePass(baseA, vcache.NewMemory())
	if err != nil {
		return nil, err
	}
	_, appWant, err := cachePass(appA, vcache.NewMemory())
	if err != nil {
		return nil, err
	}

	cb := &cacheBench{
		Ranks:         cacheRanks,
		BaseRecords:   base.NumRecords(),
		AppendRecords: app.NumRecords(),
	}

	// verify_cold: empty store every iteration.
	cold := cacheCell{Name: "verify_cold"}
	var elapsed time.Duration
	for cold.Iters = 0; cold.Iters < iters || elapsed < minTime; cold.Iters++ {
		d, reps, err := cachePass(baseA, vcache.NewMemory())
		if err != nil {
			return nil, err
		}
		if err := verdictsMatch(reps, baseWant); err != nil {
			return nil, fmt.Errorf("cold pass verdicts differ from cacheless: %w", err)
		}
		cellStats(&cold, reps)
		elapsed += d
	}
	cold.NsPerOp = elapsed.Nanoseconds() / int64(cold.Iters)
	cb.Cells = append(cb.Cells, cold)

	// verify_warm: one store sealed by an unmeasured cold pass, then
	// re-verified; every chunk must hit.
	warmStore := vcache.NewMemory()
	if _, _, err := cachePass(baseA, warmStore); err != nil {
		return nil, err
	}
	warm := cacheCell{Name: "verify_warm"}
	elapsed = 0
	for warm.Iters = 0; warm.Iters < iters || elapsed < minTime; warm.Iters++ {
		d, reps, err := cachePass(baseA, warmStore)
		if err != nil {
			return nil, err
		}
		if err := verdictsMatch(reps, baseWant); err != nil {
			return nil, fmt.Errorf("warm pass verdicts differ from cacheless: %w", err)
		}
		cellStats(&warm, reps)
		elapsed += d
	}
	warm.NsPerOp = elapsed.Nanoseconds() / int64(warm.Iters)
	if warm.Misses != 0 {
		return nil, fmt.Errorf("warm pass missed %d chunks on an unchanged trace", warm.Misses)
	}
	cb.Cells = append(cb.Cells, warm)

	// verify_append1pct: each iteration seeds a fresh store with the base
	// trace (unmeasured), then measures re-verifying the appended trace —
	// the dirtiness pass promotes the stable prefix and recomputes only the
	// chunks the append touched.
	appc := cacheCell{Name: "verify_append1pct"}
	elapsed = 0
	for appc.Iters = 0; appc.Iters < iters || elapsed < minTime; appc.Iters++ {
		store := vcache.NewMemory()
		if _, _, err := cachePass(baseA, store); err != nil {
			return nil, err
		}
		d, reps, err := cachePass(appA, store)
		if err != nil {
			return nil, err
		}
		if err := verdictsMatch(reps, appWant); err != nil {
			return nil, fmt.Errorf("incremental append verdicts differ from cacheless: %w", err)
		}
		cellStats(&appc, reps)
		elapsed += d
	}
	appc.NsPerOp = elapsed.Nanoseconds() / int64(appc.Iters)
	if appc.Hits == 0 {
		return nil, fmt.Errorf("append pass promoted no chunks — the stable prefix was not certified")
	}
	cb.Cells = append(cb.Cells, appc)

	// Guard the denominator: on a machine (or clock) fast enough that the
	// cold pass measures as zero, a plain division would poison the artifact
	// with +Inf — which json.Marshal rejects, failing the whole run. Record
	// the ratio as 0 ("not measurable") instead; -check treats that pairing
	// as n/a rather than a contract violation.
	if cold.NsPerOp > 0 {
		cb.AppendColdRatio = float64(appc.NsPerOp) / float64(cold.NsPerOp)
	}
	for _, c := range cb.Cells {
		fmt.Printf("%-18s workers=1   %12d ns/op  %6d hits %6d misses %5d dirty\n",
			c.Name, c.NsPerOp, c.Hits, c.Misses, c.DirtyChunks)
	}
	if cold.NsPerOp > 0 {
		fmt.Printf("append/cold ratio: %.4f\n", cb.AppendColdRatio)
	} else {
		fmt.Printf("append/cold ratio: n/a (cold pass too fast to time)\n")
	}
	return cb, nil
}

// Sweep-cell workload and gate constants. The trace is every rank hammering
// one shared file — the N-to-1 pattern the per-file sharding could never
// split — dense enough (window 8 KiB, 16 K ops) that the interval sweep
// dominates the detect stage.
const (
	sweepRanks  = 8
	sweepOps    = 2048
	sweepWindow = int64(1 << 13)
	sweepSeed   = int64(99)
	// sweepAllocCeiling gates detect-stage allocs/op on the sweep cell:
	// measured ~290 at workers=1 with the pair-free counting build (down
	// from ~356 with the pairRec sort path). The ceiling leaves room for
	// pool goroutines at higher worker counts without readmitting a
	// per-pair or per-group allocation pattern.
	sweepAllocCeiling = 700
	// sweepScratchPerPair bounds transient sweep bytes per conflicting
	// pair: the pair-free build stages ~4 bytes per directed adjacency
	// entry (8 per pair) plus O(ops) index tables, well under the ~16
	// bytes/directed pair the old materialized pair list cost.
	sweepScratchPerPair = 12
	// sweepMinSpeedup is the detect-stage workers-1-vs-N floor, enforced by
	// -check only when the artifact was generated with at least
	// sweepSpeedupCPUs CPUs (a 1-CPU artifact cannot exhibit parallelism).
	sweepMinSpeedup  = 2.0
	sweepSpeedupCPUs = 4
)

// conflictFingerprint serializes everything a conflict.Result exposes —
// ops, files, syncs, the pair count, and the full CSR group content — so
// equal fingerprints mean byte-identical detection output.
func conflictFingerprint(res *conflict.Result) ([]byte, error) {
	var buf bytes.Buffer
	w := func(vs ...int64) error {
		for _, v := range vs {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w(int64(len(res.Ops)), int64(len(res.Files)), int64(len(res.Syncs)),
		res.Pairs, int64(len(res.Groups)), int64(res.Skipped)); err != nil {
		return nil, err
	}
	for i := range res.Ops {
		op := &res.Ops[i]
		wr := int64(0)
		if op.Write {
			wr = 1
		}
		if err := w(int64(op.Ref.Rank), int64(op.Ref.Seq), int64(op.FID), wr, op.Start, op.End); err != nil {
			return nil, err
		}
	}
	for _, f := range res.Files {
		buf.WriteString(f)
		buf.WriteByte(0)
	}
	for i := range res.Syncs {
		sp := &res.Syncs[i]
		if err := w(int64(sp.Ref.Rank), int64(sp.Ref.Seq), int64(sp.FID)); err != nil {
			return nil, err
		}
		buf.WriteString(sp.Func)
		buf.WriteByte(0)
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		if err := w(int64(g.X), int64(len(g.Ys())), int64(g.NumRuns())); err != nil {
			return nil, err
		}
		for _, y := range g.Ys() {
			if err := w(int64(y)); err != nil {
				return nil, err
			}
		}
		for k := 0; k < g.NumRuns(); k++ {
			if err := w(int64(len(g.RunAt(k)))); err != nil {
				return nil, err
			}
		}
	}
	return buf.Bytes(), nil
}

// benchSweep measures conflict detection in isolation on the dense
// single-shared-file trace at workers 1 and GOMAXPROCS, cross-checking
// while measuring that the Result is byte-identical across worker counts.
// Each cell's telemetry comes from one instrumented iteration outside the
// timed window; the last (highest worker count) cell's snapshot is written
// to metricsOut for the CI obscheck gate on sweep transient bytes.
func benchSweep(iters int, minTime time.Duration, metricsOut string) (*sweepBench, error) {
	tr := corpus.ScalingTrace(sweepRanks, sweepOps, sweepWindow, sweepSeed)
	sb := &sweepBench{Ranks: sweepRanks}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	var wantFP []byte
	var lastReg *obs.Registry
	for _, workers := range workerCounts {
		// Warmup, doubling as the determinism cross-check input.
		res, err := conflict.DetectOpts(tr, conflict.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		fp, err := conflictFingerprint(res)
		if err != nil {
			return nil, err
		}
		if wantFP == nil {
			wantFP = fp
			sb.Ops = len(res.Ops)
			sb.Pairs = res.Pairs
			sb.Groups = len(res.Groups)
		} else if !bytes.Equal(fp, wantFP) {
			return nil, fmt.Errorf("Result at workers=%d differs from workers=1", workers)
		}

		var memBefore, memAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
		var elapsed time.Duration
		var done int
		for done = 0; done < iters || elapsed < minTime; done++ {
			start := time.Now()
			if _, err := conflict.DetectOpts(tr, conflict.Options{Workers: workers}); err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
		}
		runtime.ReadMemStats(&memAfter)

		// Instrumented iteration, excluded from the timing.
		reg := obs.NewRegistry()
		if _, err := conflict.DetectOpts(tr, conflict.Options{Workers: workers, Obs: obs.Ctx{R: reg}}); err != nil {
			return nil, err
		}
		lastReg = reg
		snap := reg.Snapshot()
		cell := sweepCell{
			Workers:      workers,
			Iters:        done,
			NsPerOp:      elapsed.Nanoseconds() / int64(done),
			AllocsPerOp:  int64(memAfter.Mallocs-memBefore.Mallocs) / int64(done),
			BytesPerOp:   int64(memAfter.TotalAlloc-memBefore.TotalAlloc) / int64(done),
			Tasks:        snap.Stable.Counters["par.detect-sweep.tasks_submitted"],
			Slices:       snap.Stable.Gauges["conflict.sweep_slices"],
			CarryOps:     snap.Stable.Gauges["conflict.sweep_carry_ops"],
			ScratchBytes: snap.Stable.Gauges["conflict.sweep_scratch_bytes"],
		}
		sb.Cells = append(sb.Cells, cell)
		fmt.Printf("%-16s workers=%-3d %12d ns/op %12d allocs/op (%d pairs, %d tasks, %d slices)\n",
			"sweep_dense1file", workers, cell.NsPerOp, cell.AllocsPerOp, sb.Pairs, cell.Tasks, cell.Slices)
	}
	first, last := sb.Cells[0], sb.Cells[len(sb.Cells)-1]
	if last.NsPerOp > 0 {
		sb.DetectSpeedup = float64(first.NsPerOp) / float64(last.NsPerOp)
	}
	if metricsOut != "" {
		if err := obs.WriteFileWith(metricsOut, func(w io.Writer) error { return lastReg.WriteMetrics(w) }); err != nil {
			return nil, fmt.Errorf("write -sweep-metrics-out: %w", err)
		}
	}
	return sb, nil
}

// runStreamSmoke stages a synthetic trace directory of at least records
// records (one rank at a time — the generator itself never holds the whole
// trace) and stream-decodes it with the given window, reporting throughput
// and the peak resident decoded bytes. The metrics snapshot written to
// metricsOut carries the decode.peak_resident_bytes and decode.window_bytes
// gauges CI gates with obscheck.
func runStreamSmoke(records int, window int64, metricsOut string) error {
	const (
		ranks  = 8
		offWin = int64(1 << 18)
		seed   = int64(7)
	)
	perRank := (records + ranks - 1) / ranks
	// Invert ScalingRankRecords(ops) ≈ ops·33/32 + 4, then nudge up to the
	// exact boundary.
	ops := (perRank - 4) * 32 / 33
	for corpus.ScalingRankRecords(ops) < perRank {
		ops++
	}
	total := ranks * corpus.ScalingRankRecords(ops)

	dir, err := os.MkdirTemp("", "bench-stream-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	stage := time.Now()
	if err := corpus.WriteScalingDir(dir, ranks, ops, offWin, seed, trace.DefaultEncodeOptions()); err != nil {
		return err
	}
	fmt.Printf("staged %d records (%d ranks × %d) in %v\n",
		total, ranks, corpus.ScalingRankRecords(ops), time.Since(stage).Round(time.Millisecond))

	reg := obs.NewRegistry()
	oc := obs.Ctx{R: reg}
	s, err := trace.OpenStream(dir, trace.StreamOptions{
		DecodeOptions: trace.DecodeOptions{Obs: oc},
		WindowBytes:   window,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	// Each batch also feeds the directly-follows-graph builder before being
	// released: DFG state is O(nodes+edges) per rank, so the decoder's
	// peak-resident gauge keeps gating the whole pipeline's window bound.
	db := dfg.NewBuilder(ranks, oc)
	start := time.Now()
	decoded := 0
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		decoded += len(b.Recs)
		db.Feed(b.Rank, b.Recs)
		b.Release()
	}
	if err := s.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if decoded != total {
		return fmt.Errorf("decoded %d records, staged %d", decoded, total)
	}
	perSec := float64(decoded) / elapsed.Seconds()
	fmt.Printf("stream-decoded %d records in %v (%.0f records/s), peak resident %d bytes\n",
		decoded, elapsed.Round(time.Millisecond), perSec, s.PeakResidentBytes())
	fmt.Println(db.Finish().Summary())

	if err := obs.WriteFileWith(metricsOut, func(w io.Writer) error { return reg.WriteMetrics(w) }); err != nil {
		return fmt.Errorf("write -metrics-out: %w", err)
	}
	return nil
}

// parseBenchTime accepts "Nx" (fixed iterations) or a Go duration (minimum
// time per cell).
func parseBenchTime(s string) (iters int, minTime time.Duration, err error) {
	if n, ok := strings.CutSuffix(s, "x"); ok {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			return 0, 0, fmt.Errorf("bad -benchtime %q", s)
		}
		return v, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad -benchtime %q", s)
	}
	return 1, d, nil
}

// checkFile validates the artifact shape: parses, and requires a non-empty
// trace list where every trace has runs at workers=1 and at GOMAXPROCS
// (equal when GOMAXPROCS is 1) with positive ns/op and stage totals.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res output
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if res.Generated == "" || res.GoVersion == "" || res.GOMAXPROCS < 1 {
		return fmt.Errorf("missing header fields")
	}
	if len(res.Traces) == 0 {
		return fmt.Errorf("no traces")
	}
	for _, tb := range res.Traces {
		if tb.Name == "" || len(tb.Runs) == 0 {
			return fmt.Errorf("trace %q has no runs", tb.Name)
		}
		if tb.Runs[0].Workers != 1 {
			return fmt.Errorf("trace %q: first run must be workers=1, got %d", tb.Name, tb.Runs[0].Workers)
		}
		for _, r := range tb.Runs {
			if r.Iters < 1 || r.NsPerOp <= 0 {
				return fmt.Errorf("trace %q workers=%d: bad iteration stats", tb.Name, r.Workers)
			}
			if r.Stages.Total <= 0 {
				return fmt.Errorf("trace %q workers=%d: missing stage breakdown", tb.Name, r.Workers)
			}
			if r.Metrics == nil {
				return fmt.Errorf("trace %q workers=%d: missing metrics snapshot", tb.Name, r.Workers)
			}
			if r.Metrics.Counters["verify.checks"] < 0 || len(r.Metrics.Counters) == 0 {
				return fmt.Errorf("trace %q workers=%d: empty metrics snapshot", tb.Name, r.Workers)
			}
		}
		if len(tb.GraphRuns) == 0 {
			return fmt.Errorf("trace %q has no graph runs", tb.Name)
		}
		if tb.GraphRuns[0].Workers != 1 {
			return fmt.Errorf("trace %q: first graph run must be workers=1, got %d", tb.Name, tb.GraphRuns[0].Workers)
		}
		for _, r := range tb.GraphRuns {
			if r.Iters < 1 || r.BuildNsPerOp <= 0 || r.VCNsPerOp <= 0 {
				return fmt.Errorf("trace %q graph workers=%d: bad iteration stats", tb.Name, r.Workers)
			}
		}
		if tb.SkeletonNodes < 1 || tb.SkeletonNodes > tb.Records {
			return fmt.Errorf("trace %q: skeleton %d nodes outside [1, %d records]", tb.Name, tb.SkeletonNodes, tb.Records)
		}
		if tb.SkeletonLevels < 1 {
			return fmt.Errorf("trace %q: missing skeleton levels", tb.Name)
		}
		if tb.VCArenaBytes <= 0 || tb.VCArenaBytes > tb.VCFullArenaBytes {
			return fmt.Errorf("trace %q: skeleton clock arena %d bytes exceeds full-graph arena %d",
				tb.Name, tb.VCArenaBytes, tb.VCFullArenaBytes)
		}
		if tb.SegReachBytes <= 0 || tb.SegReachBytes > hbgraph.DefaultSegReachBudget {
			return fmt.Errorf("trace %q: segment reachability matrix %d bytes outside (0, %d budget]",
				tb.Name, tb.SegReachBytes, hbgraph.DefaultSegReachBudget)
		}
		if len(tb.QueryRuns) < 5 {
			return fmt.Errorf("trace %q: %d query runs, want all five oracles", tb.Name, len(tb.QueryRuns))
		}
		seen := map[string]bool{}
		for _, qr := range tb.QueryRuns {
			if qr.Iters < 1 || qr.Queries < 1 || qr.NsPerQuery < 0 {
				return fmt.Errorf("trace %q oracle %q: bad query stats", tb.Name, qr.Oracle)
			}
			seen[qr.Oracle] = true
		}
		for _, name := range []string{"vector-clock", "reachability", "transitive-closure", "segment", "on-the-fly"} {
			if !seen[name] {
				return fmt.Errorf("trace %q: query cell for oracle %q missing", tb.Name, name)
			}
		}
		if len(tb.DfgRuns) == 0 {
			return fmt.Errorf("trace %q has no dfg runs", tb.Name)
		}
		if tb.DfgRuns[0].Workers != 1 {
			return fmt.Errorf("trace %q: first dfg run must be workers=1, got %d", tb.Name, tb.DfgRuns[0].Workers)
		}
		shape := tb.DfgRuns[0]
		for _, r := range tb.DfgRuns {
			if r.Iters < 1 || r.NsPerOp <= 0 {
				return fmt.Errorf("trace %q dfg workers=%d: bad iteration stats", tb.Name, r.Workers)
			}
			if r.Nodes < 1 || r.Edges < 0 || r.AnomalousRanks < 0 || r.AnomalousRanks > tb.Ranks {
				return fmt.Errorf("trace %q dfg workers=%d: fleet shape %d nodes, %d edges, %d anomalous out of range",
					tb.Name, r.Workers, r.Nodes, r.Edges, r.AnomalousRanks)
			}
			if r.Nodes != shape.Nodes || r.Edges != shape.Edges || r.AnomalousRanks != shape.AnomalousRanks {
				return fmt.Errorf("trace %q dfg workers=%d: fleet shape differs from workers=1", tb.Name, r.Workers)
			}
		}
	}
	if err := checkCache(res.Cache); err != nil {
		return err
	}
	return checkSweep(res.Sweep, res.GOMAXPROCS)
}

// checkSweep enforces the intra-file sweep contracts on the dense
// single-shared-file cell: the sweep must fan out (more than one detect-sweep
// task and more than one slice on a one-file trace), stay within the
// allocation ceiling and the per-pair scratch budget, and — when the
// artifact was generated with enough CPUs — deliver the detect-stage
// parallel speedup the sharding exists for.
func checkSweep(sb *sweepBench, gomaxprocs int) error {
	if sb == nil {
		return fmt.Errorf("missing sweep cells")
	}
	if sb.Ops <= 0 || sb.Pairs <= 0 || sb.Groups <= 0 {
		return fmt.Errorf("sweep: empty workload (ops=%d pairs=%d groups=%d)", sb.Ops, sb.Pairs, sb.Groups)
	}
	if len(sb.Cells) == 0 || sb.Cells[0].Workers != 1 {
		return fmt.Errorf("sweep: first cell must be workers=1")
	}
	for _, c := range sb.Cells {
		if c.Iters < 1 || c.NsPerOp <= 0 {
			return fmt.Errorf("sweep workers=%d: bad iteration stats", c.Workers)
		}
		if c.Tasks <= 1 {
			return fmt.Errorf("sweep workers=%d: %d detect-sweep tasks on a single shared file — intra-file sharding is not fanning out",
				c.Workers, c.Tasks)
		}
		if c.Slices <= 1 {
			return fmt.Errorf("sweep workers=%d: %d slices on a single dense file, want > 1", c.Workers, c.Slices)
		}
		if c.AllocsPerOp <= 0 || c.AllocsPerOp > sweepAllocCeiling {
			return fmt.Errorf("sweep workers=%d: %d allocs/op outside (0, %d] — a per-pair or per-group allocation pattern crept back in",
				c.Workers, c.AllocsPerOp, sweepAllocCeiling)
		}
		if c.ScratchBytes <= 0 || c.ScratchBytes > sweepScratchPerPair*sb.Pairs {
			return fmt.Errorf("sweep workers=%d: %d scratch bytes outside (0, %d·pairs=%d]",
				c.Workers, c.ScratchBytes, int64(sweepScratchPerPair), sweepScratchPerPair*sb.Pairs)
		}
	}
	if gomaxprocs >= sweepSpeedupCPUs && sb.DetectSpeedup < sweepMinSpeedup {
		return fmt.Errorf("sweep: detect-stage speedup %.2f at %d CPUs below the %.1f floor",
			sb.DetectSpeedup, gomaxprocs, sweepMinSpeedup)
	}
	return nil
}

// checkCache enforces the incremental-verification contract on the cache
// cells: all three present, a warm run never misses, a cold run never hits,
// and re-verifying after a ~1% append costs at most 10% of a cold run.
func checkCache(cb *cacheBench) error {
	if cb == nil {
		return fmt.Errorf("missing cache cells")
	}
	cells := map[string]cacheCell{}
	for _, c := range cb.Cells {
		// NsPerOp 0 is tolerated: a sub-nanosecond-per-iteration cell on a
		// coarse clock measures as zero, and the ratio gate below knows how
		// to treat an untimeable denominator.
		if c.Iters < 1 || c.NsPerOp < 0 {
			return fmt.Errorf("cache cell %q: bad iteration stats", c.Name)
		}
		cells[c.Name] = c
	}
	for _, name := range []string{"verify_cold", "verify_warm", "verify_append1pct"} {
		if _, ok := cells[name]; !ok {
			return fmt.Errorf("cache cell %q missing", name)
		}
	}
	cold, warm, app := cells["verify_cold"], cells["verify_warm"], cells["verify_append1pct"]
	if cold.Hits != 0 || cold.Misses == 0 {
		return fmt.Errorf("verify_cold: hits=%d misses=%d, want pure misses", cold.Hits, cold.Misses)
	}
	if warm.Misses != 0 || warm.Hits == 0 {
		return fmt.Errorf("verify_warm: hits=%d misses=%d, want pure hits", warm.Hits, warm.Misses)
	}
	if app.Hits == 0 {
		return fmt.Errorf("verify_append1pct: no promoted chunks")
	}
	if cold.RaceCount != warm.RaceCount {
		return fmt.Errorf("warm races %d != cold races %d", warm.RaceCount, cold.RaceCount)
	}
	// The precise reuse contract is on the chunk counts: a ~1% append must
	// re-verify only the dirtied tail, so the append pass's misses stay a
	// few percent of the cold pass's total chunks.
	if missRatio := float64(app.Misses) / float64(cold.Misses); missRatio > 0.05 {
		return fmt.Errorf("append re-verified %d of %d chunks (%.1f%%): a ~1%% append must dirty only ~1%% of the plan",
			app.Misses, cold.Misses, 100*missRatio)
	}
	// Wall time is only a coarse sanity bound: with the resolved query plan
	// the verification stage is no longer the dominant cost of a cold run,
	// so the append cell's fixed per-run work (decode, detect/match, graph,
	// digesting) keeps the ratio well above the ~1% chunk fraction.
	const maxRatio = 0.75
	if cold.NsPerOp == 0 {
		// The cold denominator was untimeable, so the ratio is n/a by
		// construction; the hit/miss contracts above still gated the cells.
		if cb.AppendColdRatio != 0 {
			return fmt.Errorf("append/cold ratio %.4f recorded against an untimeable cold pass; want 0 (n/a)",
				cb.AppendColdRatio)
		}
		return nil
	}
	if cb.AppendColdRatio <= 0 || cb.AppendColdRatio > maxRatio {
		return fmt.Errorf("append/cold ratio %.4f outside (0, %.2f]: an incremental re-verify must stay cheaper than a cold run",
			cb.AppendColdRatio, maxRatio)
	}
	return nil
}

// compareFiles reports the ns/op delta of newPath relative to basePath over
// every (trace, workers) cell present in both, failing when the mean
// overhead exceeds maxPct percent. Single-cell deltas are reported but not
// gated on — they are dominated by scheduling noise at small benchtimes.
func compareFiles(newPath, basePath string, maxPct float64) error {
	load := func(path string) (output, error) {
		var res output
		data, err := os.ReadFile(path)
		if err != nil {
			return res, err
		}
		if err := json.Unmarshal(data, &res); err != nil {
			return res, fmt.Errorf("%s: not valid JSON: %w", path, err)
		}
		return res, nil
	}
	newRes, err := load(newPath)
	if err != nil {
		return err
	}
	baseRes, err := load(basePath)
	if err != nil {
		return err
	}
	type cell struct {
		name    string
		workers int
	}
	base := map[cell]int64{}
	for _, tb := range baseRes.Traces {
		for _, r := range tb.Runs {
			base[cell{tb.Name, r.Workers}] = r.NsPerOp
		}
	}
	var sum float64
	var n int
	fmt.Printf("%-16s %-8s %14s %14s %8s\n", "trace", "workers", "baseline ns/op", "new ns/op", "delta")
	for _, tb := range newRes.Traces {
		for _, r := range tb.Runs {
			old, ok := base[cell{tb.Name, r.Workers}]
			if !ok || old <= 0 {
				continue
			}
			delta := 100 * (float64(r.NsPerOp) - float64(old)) / float64(old)
			fmt.Printf("%-16s %-8d %14d %14d %+7.2f%%\n", tb.Name, r.Workers, old, r.NsPerOp, delta)
			sum += delta
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("no common (trace, workers) cells between %s and %s", newPath, basePath)
	}
	mean := sum / float64(n)
	fmt.Printf("mean overhead over %d cells: %+.2f%% (limit %.2f%%)\n", n, mean, maxPct)
	if mean > maxPct {
		return fmt.Errorf("mean overhead %+.2f%% exceeds limit %.2f%%", mean, maxPct)
	}
	return nil
}

package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"verifyio/internal/recorder"
)

const testSig = `# library: toy
expand T: int float
void toy_put_${T}(const ${T} *v);
int toy_open(const char *path);
`

func TestGenerateProducesValidGo(t *testing.T) {
	sf, err := recorder.ParseSigFile(testSig)
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(sf, "wrappers")
	// The generated file must parse as Go source.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{
		"package wrappers",
		"DO NOT EDIT",
		"ToyFunctions",
		`"toy_put_int"`,
		`"toy_put_float"`,
		`"toy_open"`,
		"const float *v", // prototype comment, expanded
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestGenerateMatchesEmbeddedRegistryCounts(t *testing.T) {
	// Re-generating from the shipped signature files yields exactly the
	// function sets the tracer registry uses (codegen and tracer agree).
	reg := recorder.DefaultRegistry()
	for _, lib := range reg.Libraries() {
		sigData, err := recorder.EmbeddedSig(lib)
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		sf, err := recorder.ParseSigFile(sigData)
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		if got, want := len(sf.Funcs), reg.Count(recorder.CoveragePlus, lib); got != want {
			t.Errorf("%s: generator sees %d functions, registry %d", lib, got, want)
		}
		src := Generate(sf, "wrappers")
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, lib+".go", src, 0); err != nil {
			t.Errorf("%s: generated source does not parse: %v", lib, err)
		}
	}
}

func TestExportNameAndOneLine(t *testing.T) {
	if exportName("pnetcdf") != "Pnetcdf" || exportName("") != "Lib" {
		t.Error("exportName wrong")
	}
	long := strings.Repeat("x", 200)
	if got := oneLine("int f(" + long + ");"); len(got) > 90 {
		t.Errorf("oneLine did not truncate: %d chars", len(got))
	}
}

// Command verifyio runs steps 2–4 of the VerifyIO workflow on a trace
// directory: conflict detection, MPI matching, and consistency-semantics
// verification against one or all models.
//
// Usage:
//
//	verifyio -trace DIR [-model posix|commit|session|mpi-io|all]
//	         [-algorithm auto|vector-clock|reachability|transitive-closure|on-the-fly|segment]
//	         [-workers N] [-no-pruning] [-max-races N] [-details] [-tolerate]
//	         [-stream] [-window BYTES]
//	         [-cache-dir DIR] [-trace-out FILE] [-metrics-out FILE]
//	         [-dfg-out FILE] [-dfg-dot FILE]
//	         [-cpuprofile FILE] [-memprofile FILE] [-debug-addr ADDR]
//
// -stream verifies the trace while decoding it instead of loading it whole:
// conflict detection, MPI matching and the cache digests consume each record
// batch as it decodes, so peak memory is bounded by the decode window
// (-window BYTES, default 4 MiB, negative = unbounded) rather than the trace
// size. Reports are identical to the materializing path; only the Timing
// split differs (the fused pass reports DetectMatchWall). -diagnose needs
// the materialized trace and cannot be combined with -stream.
//
// -cache-dir attaches a persistent verdict cache: chunks of the verification
// plan are memoized by content digest, so re-running over an unchanged trace
// is served from cache (zero misses) and re-running after an append
// re-verifies only the chunks the change dirtied. Reports carry the hit,
// miss, and dirty-chunk counts.
//
// -trace-out writes the run's telemetry spans as Chrome trace_event JSON
// (load in chrome://tracing or https://ui.perfetto.dev); -metrics-out writes
// the runtime metric registry. -debug-addr serves net/http/pprof and expvar
// (including the live metrics) while the run executes.
//
// -dfg-out writes each rank's I/O directly-follows graph (nodes are
// normalized call classes tagged with file roles, edges are observed
// successions with counts, bytes, and inter-arrival histograms) plus the
// rank anomaly report — which ranks deviate from the rank-majority graph
// and by how much — as JSON. -dfg-dot writes the same graphs as Graphviz
// DOT (render with: dot -Tsvg dfg.dot -o dfg.svg; anomalous ranks are
// drawn red). The DFG pass streams the trace directory in bounded windows
// regardless of -stream; both artifacts are byte-deterministic at any
// worker count.
//
// Exit status: 0 when every verified model is properly synchronized, 1 when
// data races were found, 2 when verification aborted on unmatched MPI calls
// or an error occurred.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"verifyio"
	"verifyio/internal/dfg"
	"verifyio/internal/obs"
	"verifyio/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		traceDir  = flag.String("trace", "", "trace directory (written by verifyio-trace)")
		model     = flag.String("model", "all", "consistency model: posix, commit, session, mpi-io, or all")
		algorithm = flag.String("algorithm", "auto", "happens-before algorithm")
		noPrune   = flag.Bool("no-pruning", false, "disable conflict-group pruning (Fig. 3)")
		workers   = flag.Int("workers", 0, "analysis+verification worker goroutines for steps 2–4 (0 = GOMAXPROCS, 1 = serial); conflict detection shards across files and within single shared files")
		maxRaces  = flag.Int("max-races", 16, "maximum races reported in detail")
		details   = flag.Bool("details", false, "print full reports with call chains")
		diagnose  = flag.Bool("diagnose", false, "classify each race and suggest a fix")
		dump      = flag.Bool("dump", false, "print the trace as text and exit")
		jsonOut   = flag.Bool("json", false, "emit the reports as JSON")
		tolerate  = flag.Bool("tolerate", false, "salvage damaged or truncated rank streams instead of failing")
		stream    = flag.Bool("stream", false, "verify while decoding in bounded windows instead of materializing the trace")
		window    = flag.Int64("window", 0, "decoded-record window in bytes for -stream (0 = default 4 MiB, negative = unbounded)")
		cacheDir  = flag.String("cache-dir", "", "persistent verdict-cache directory: re-verifying an unchanged trace is served from cache, an appended trace re-verifies only the dirtied chunks")

		traceOut   = flag.String("trace-out", "", "write telemetry spans as Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write the runtime metrics snapshot as JSON to this file")
		dfgOut     = flag.String("dfg-out", "", "write per-rank I/O directly-follows graphs and the rank anomaly report as JSON to this file")
		dfgDot     = flag.String("dfg-dot", "", "write the per-rank directly-follows graphs as Graphviz DOT to this file (render: dot -Tsvg)")
		prof       obs.Profiling
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *traceDir == "" {
		fmt.Fprintln(os.Stderr, "verifyio: -trace DIR is required")
		flag.Usage()
		return 2
	}
	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
		}
	}()

	var tel *verifyio.Telemetry
	if *traceOut != "" || *metricsOut != "" || prof.DebugAddr != "" {
		tel = verifyio.NewTelemetry()
		tel.Publish("verifyio")
	}
	defer func() {
		if err := obs.WriteFileWith(*traceOut, func(w io.Writer) error { return tel.WriteChromeTrace(w) }); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: write -trace-out: %v\n", err)
		}
		if err := obs.WriteFileWith(*metricsOut, func(w io.Writer) error { return tel.WriteMetrics(w) }); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: write -metrics-out: %v\n", err)
		}
	}()
	if *dump {
		raw, _, err := trace.ReadDirWithOptions(*traceDir, trace.DecodeOptions{Tolerate: *tolerate})
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
		if err := trace.WriteText(os.Stdout, raw); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
		return 0
	}

	if *stream && *diagnose {
		fmt.Fprintln(os.Stderr, "verifyio: -diagnose needs the materialized trace; drop -stream")
		return 2
	}

	opts := &verifyio.Options{
		Algorithm:      *algorithm,
		DisablePruning: *noPrune,
		MaxRaceDetails: *maxRaces,
		Workers:        *workers,
		Telemetry:      tel,
	}
	if *cacheDir != "" {
		cache, err := verifyio.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: open -cache-dir: %v\n", err)
			return 2
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "verifyio: close -cache-dir: %v\n", err)
			}
		}()
		opts.Cache = cache
		// The trace directory names the manifest, so re-runs against the
		// same (possibly grown) directory find their incremental baseline.
		opts.CacheID = *traceDir
	}
	ropts := verifyio.ReadOptions{
		Tolerate:    *tolerate,
		Telemetry:   tel,
		WindowBytes: *window,
	}

	var (
		reports []*verifyio.Report
		tr      *verifyio.Trace
	)
	start := time.Now()
	if *stream {
		var rec *verifyio.Recovery
		if *model == "all" {
			reports, rec, err = verifyio.VerifyAllStream(*traceDir, ropts, opts)
		} else {
			var rep *verifyio.Report
			rep, rec, err = verifyio.VerifyStream(*traceDir, verifyio.Model(*model), ropts, opts)
			reports = []*verifyio.Report{rep}
		}
		if err == nil {
			warnRecovery(rec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
		fmt.Printf("trace: %s (%d ranks, %d records, streamed+analyzed in %v)\n",
			*traceDir, reports[0].Ranks, reports[0].Records, time.Since(start).Round(time.Millisecond))
	} else {
		var rec *verifyio.Recovery
		tr, rec, err = verifyio.ReadTraceDirOpts(*traceDir, ropts)
		if err == nil {
			warnRecovery(rec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
		readTime := time.Since(start)
		fmt.Printf("trace: %s (%d ranks, %d records, read in %v)\n",
			*traceDir, tr.NumRanks(), tr.NumRecords(), readTime.Round(time.Millisecond))
		if prog := tr.Meta("program"); prog != "" {
			fmt.Printf("program: %s\n", prog)
		}
		if *model == "all" {
			reports, err = verifyio.VerifyAll(tr, opts)
		} else {
			var rep *verifyio.Report
			rep, err = verifyio.Verify(tr, verifyio.Model(*model), opts)
			reports = []*verifyio.Report{rep}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
	}

	if *dfgOut != "" || *dfgDot != "" {
		// The DFG pass always streams the trace directory, whatever the
		// verification mode: memory stays bounded by the decode window
		// plus the graphs themselves.
		fleet, err := dfg.BuildStreamDir(*traceDir, dfg.StreamOptions{
			Decode:      trace.DecodeOptions{Tolerate: *tolerate},
			WindowBytes: *window,
			Obs:         tel.Obs(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: dfg: %v\n", err)
			return 2
		}
		if err := obs.WriteFileWith(*dfgOut, fleet.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: write -dfg-out: %v\n", err)
			return 2
		}
		if err := obs.WriteFileWith(*dfgDot, fleet.WriteDOT); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: write -dfg-dot: %v\n", err)
			return 2
		}
		fmt.Println(fleet.Summary())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "verifyio: %v\n", err)
			return 2
		}
		for _, rep := range reports {
			if !rep.Verified {
				return 2
			}
			if !rep.ProperlySynchronized {
				return 1
			}
		}
		return 0
	}

	status := 0
	for _, rep := range reports {
		if *details {
			fmt.Println("----------------------------------------")
			rep.Render(os.Stdout)
		} else {
			fmt.Println(rep.Summary())
		}
		if *diagnose && rep.Verified && rep.RaceCount > 0 {
			_, ds, err := verifyio.Diagnose(tr, rep.Model, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "verifyio: diagnose: %v\n", err)
				return 2
			}
			for i, d := range ds {
				fmt.Printf("  diagnosis #%d [%s] responsible: %s\n", i+1, d.Category, d.Responsible)
				fmt.Printf("    %s (rank %d) vs %s (rank %d) on %s\n",
					d.Race.FuncX, d.Race.RankX, d.Race.FuncY, d.Race.RankY, d.Race.File)
				fmt.Printf("    fix: %s\n", d.Suggestion)
			}
		}
		switch {
		case !rep.Verified:
			status = 2
		case !rep.ProperlySynchronized && status == 0:
			status = 1
		}
	}
	if opts.Cache != nil {
		hits, misses, dirty := opts.Cache.Stats()
		fmt.Printf("verdict cache: %d hits, %d misses (%d dirty chunks)\n", hits, misses, dirty)
	}
	return status
}

// warnRecovery reports what lenient loading salvaged, rank by rank.
func warnRecovery(rec *verifyio.Recovery) {
	if rec.Clean() {
		return
	}
	for _, rr := range rec.Ranks {
		dropped := fmt.Sprintf("%d records dropped", rr.Dropped)
		if rr.Dropped < 0 {
			dropped = "unknown records dropped"
		}
		fmt.Fprintf(os.Stderr, "verifyio: rank %d damaged: %d records salvaged, %s (%s)\n",
			rr.Rank, rr.Salvaged, dropped, rr.Reason)
	}
	fmt.Fprintf(os.Stderr, "verifyio: verifying the salvaged prefix; results cover only the recovered records\n")
}

package verifyio

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"verifyio/internal/corpus"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
	"verifyio/internal/verify"
)

// algoFreeFingerprint is reportFingerprint with the algorithm label and the
// graph-shape stats masked: cross-oracle comparisons need every verdict field
// byte-identical, while the oracle name — and, against the graph-free
// on-the-fly oracle, the graph gauges — legitimately differ.
func algoFreeFingerprint(t *testing.T, rep *verify.Report) []byte {
	t.Helper()
	cp := *rep
	cp.Algorithm = ""
	cp.GraphNodes, cp.GraphSyncEdges = 0, 0
	cp.SkeletonNodes, cp.SkeletonLevels = 0, 0
	return reportFingerprint(t, &cp)
}

// TestSegmentOracleReportEquivalenceCorpus is the acceptance gate for the
// segment-reachability oracle and the resolved query plan: on every corpus
// trace, verification through the segment oracle must produce byte-identical
// reports to all four pre-existing oracles, across all models, at every
// worker count, and with the Table I fast paths disabled (which exercises the
// generic DFS over the same resolved plan).
func TestSegmentOracleReportEquivalenceCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide segment equivalence suite skipped in -short mode")
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	baseline := []verify.Algo{
		verify.AlgoVectorClock, verify.AlgoReachability,
		verify.AlgoTransitiveClosure, verify.AlgoOnTheFly,
	}
	for _, name := range corpus.Names() {
		tr := corpusTraceT(t, name)
		seg, err := verify.Analyze(tr, verify.AlgoSegment)
		if err != nil {
			t.Fatalf("%s: analyze segment: %v", name, err)
		}
		for _, workers := range workerCounts {
			want := verifyAllReports(t, seg, workers)
			for _, algo := range baseline {
				a, err := verify.Analyze(tr, algo)
				if err != nil {
					t.Fatalf("%s/%v: %v", name, algo, err)
				}
				got := verifyAllReports(t, a, workers)
				for i := range want {
					w := algoFreeFingerprint(t, want[i])
					g := algoFreeFingerprint(t, got[i])
					if !bytes.Equal(w, g) {
						t.Errorf("%s model=%s workers=%d: %v report differs from segment\nsegment: %s\n%v: %s",
							name, want[i].Model, workers, algo, w, algo, g)
					}
				}
			}
			// The fast-path-free sweep must reach the same verdicts through
			// the generic DFS over the same resolved plan.
			for _, m := range semantics.All() {
				fast, err := seg.Verify(verify.Options{Model: m, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				slow, err := seg.Verify(verify.Options{Model: m, Workers: workers, DisableFastPaths: true})
				if err != nil {
					t.Fatal(err)
				}
				f := reportFingerprint(t, fast)
				s := reportFingerprint(t, slow)
				if !bytes.Equal(f, s) {
					t.Errorf("%s model=%s workers=%d: DisableFastPaths report differs\nfast: %s\nslow: %s",
						name, m.Name, workers, f, s)
				}
			}
		}
	}
}

// TestSegmentOracleSalvagedEquivalence runs the same cross-oracle report
// comparison on a salvaged prefix: a truncated rank stream read leniently
// must yield identical verdicts from the segment oracle and vector clocks —
// the damaged synchronization state shifts the skeleton, never the answers.
func TestSegmentOracleSalvagedEquivalence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	if err := trace.WriteDir(dir, corpus.ScalingTrace(4, 500, 1<<12, 3), trace.DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, "rank-2.viot")
	orig, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, orig[:2*len(orig)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	tr, rec, err := ReadTraceDirOpts(dir, ReadOptions{Tolerate: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Clean() {
		t.Fatal("truncated rank file loaded clean; the test damaged nothing")
	}
	seg, err := verify.Analyze(tr.t, verify.AlgoSegment)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := verify.Analyze(tr.t, verify.AlgoVectorClock)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		want := verifyAllReports(t, seg, workers)
		got := verifyAllReports(t, vc, workers)
		for i := range want {
			w := algoFreeFingerprint(t, want[i])
			g := algoFreeFingerprint(t, got[i])
			if !bytes.Equal(w, g) {
				t.Errorf("salvaged model=%s workers=%d: vector-clock report differs from segment",
					want[i].Model, workers)
			}
		}
	}
}

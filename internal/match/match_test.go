package match

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func runTraced(t *testing.T, nranks int, prog func(r *recorder.Rank) error) *trace.Trace {
	t.Helper()
	env := recorder.NewEnv(nranks, recorder.Options{FSMode: posixfs.ModePOSIX,
		MPIOptions: []mpi.Option{mpi.WithTimeout(2 * time.Second)}})
	if err := env.Run(prog); err != nil {
		t.Fatalf("traced program failed: %v", err)
	}
	return env.Trace()
}

func mustMatch(t *testing.T, tr *trace.Trace) *Result {
	t.Helper()
	res, err := Match(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hasEdge(res *Result, from, to trace.Ref) bool {
	for _, e := range res.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

func problems(res *Result, kind ProblemKind) []Problem {
	var out []Problem
	for _, p := range res.Problems {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

func TestBlockingSendRecvEdge(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			return r.Send(c, 1, 5, []byte("x"))
		}
		_, _, err := r.Recv(c, 0, 5)
		return err
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.P2P != 1 {
		t.Fatalf("p2p = %d", res.P2P)
	}
	if !hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 1, Seq: 0}) {
		t.Errorf("missing send→recv edge; edges = %v", res.Edges)
	}
}

func TestWildcardRecvResolvedFromStatus(t *testing.T) {
	tr := runTraced(t, 3, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		switch r.Rank() {
		case 0:
			return r.Send(c, 2, 10, []byte("a"))
		case 1:
			return r.Send(c, 2, 20, []byte("b"))
		default:
			for i := 0; i < 2; i++ {
				if _, _, err := r.Recv(c, mpi.AnySource, mpi.AnyTag); err != nil {
					return err
				}
			}
			return nil
		}
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.P2P != 2 {
		t.Fatalf("p2p = %d, want 2 (wildcards resolved)", res.P2P)
	}
}

func TestNonBlockingMatchedThroughWait(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			req, err := r.Isend(c, 1, 3, []byte("z"))
			if err != nil {
				return err
			}
			_, err = r.Wait(req)
			return err
		}
		req, err := r.Irecv(c, 0, 3)
		if err != nil {
			return err
		}
		_, err = r.Wait(req)
		return err
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	// Edge runs from the Isend initiation (rank 0 seq 0) to the Wait that
	// completed the Irecv (rank 1 seq 1).
	if !hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 1, Seq: 1}) {
		t.Errorf("edge should land on the receive's completion; edges = %v", res.Edges)
	}
}

func TestTestsomeCompletion(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			return r.Send(c, 1, 1, []byte("p"))
		}
		req, err := r.Irecv(c, 0, 1)
		if err != nil {
			return err
		}
		for {
			idx, _, err := r.Testsome([]*mpi.Request{req})
			if err != nil {
				return err
			}
			if len(idx) == 1 {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.P2P != 1 {
		t.Fatalf("p2p = %d", res.P2P)
	}
	// Completion must be the successful Testsome record (flag set).
	found := false
	for _, e := range res.Edges {
		rec := tr.Record(e.To)
		if rec.Func == "MPI_Testsome" {
			found = true
		}
	}
	if !found {
		t.Errorf("edge does not land on Testsome; edges = %v", res.Edges)
	}
}

func TestBarrierEdgesUsePredecessors(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		// One record before the barrier on each rank.
		if _, err := r.Allreduce(c, 1, mpi.OpSum); err != nil {
			return err
		}
		return r.Barrier(c)
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.Collectives != 2 {
		t.Fatalf("collectives = %d, want 2", res.Collectives)
	}
	// Barrier (seq 1) edges: pred on rank0 (seq 0) → barrier on rank1.
	if !hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 1, Seq: 1}) {
		t.Errorf("missing pred-edge; edges = %v", res.Edges)
	}
	// No cycle: barrier_0 → barrier_1 and barrier_1 → barrier_0 both
	// absent.
	if hasEdge(res, trace.Ref{Rank: 0, Seq: 1}, trace.Ref{Rank: 1, Seq: 1}) &&
		hasEdge(res, trace.Ref{Rank: 1, Seq: 1}, trace.Ref{Rank: 0, Seq: 1}) {
		t.Error("mutual barrier edges form a cycle")
	}
}

func TestRootedCollectiveEdges(t *testing.T) {
	tr := runTraced(t, 3, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if _, err := r.Bcast(c, 1, []byte("d")); err != nil {
			return err
		}
		_, err := r.Reduce(c, 2, int64(r.Rank()), mpi.OpSum)
		return err
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	// Bcast: root (rank 1, seq 0) → others' bcast records.
	if !hasEdge(res, trace.Ref{Rank: 1, Seq: 0}, trace.Ref{Rank: 0, Seq: 0}) ||
		!hasEdge(res, trace.Ref{Rank: 1, Seq: 0}, trace.Ref{Rank: 2, Seq: 0}) {
		t.Errorf("bcast edges wrong: %v", res.Edges)
	}
	// Bcast must NOT order non-root pairs.
	if hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 2, Seq: 0}) {
		t.Error("bcast created a non-root→non-root edge")
	}
	// Reduce: others (seq 1) → root (rank 2, seq 1).
	if !hasEdge(res, trace.Ref{Rank: 0, Seq: 1}, trace.Ref{Rank: 2, Seq: 1}) {
		t.Errorf("reduce edges wrong: %v", res.Edges)
	}
}

func TestUserCommunicatorCollectives(t *testing.T) {
	tr := runTraced(t, 4, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		sub, err := r.CommSplit(c, r.Rank()%2, r.Rank())
		if err != nil {
			return err
		}
		return r.Barrier(sub)
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	// 1 split on world + 2 sub-barriers (one per half).
	if res.Collectives != 3 {
		t.Fatalf("collectives = %d, want 3", res.Collectives)
	}
	// Barrier on the even half must not order the odd half: rank0's
	// pre-barrier record to rank1's barrier.
	if hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 1, Seq: 1}) {
		t.Error("sub-communicator barrier leaked across halves")
	}
}

func TestMismatchedCollectiveDetected(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			return r.Barrier(c)
		}
		_, err := r.Allreduce(c, 1, mpi.OpSum)
		return err
	})
	res := mustMatch(t, tr)
	ps := problems(res, MismatchedCollective)
	if len(ps) != 1 {
		t.Fatalf("mismatched problems = %v", res.Problems)
	}
	if !strings.Contains(ps[0].Detail, "MPI_Barrier") || !strings.Contains(ps[0].Detail, "MPI_Allreduce") {
		t.Errorf("detail = %s", ps[0].Detail)
	}
}

func TestMissingCollectiveDetected(t *testing.T) {
	// Build the trace by hand: rank 1 simply never reaches the barrier
	// (at runtime this would hang; the matcher sees the truncated trace).
	tr := trace.New(2)
	tr.Append(trace.Record{Rank: 0, Func: "MPI_Barrier", Layer: trace.LayerMPI,
		Args: []string{"comm-world"}, Tick: 1, Ret: 2})
	res := mustMatch(t, tr)
	ps := problems(res, MissingCollective)
	if len(ps) != 1 || !strings.Contains(ps[0].Detail, "rank 1") {
		t.Fatalf("problems = %v", res.Problems)
	}
}

func TestUnmatchedSendAndRecv(t *testing.T) {
	tr := trace.New(2)
	tr.Append(trace.Record{Rank: 0, Func: "MPI_Send", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "1", "7", "4"}, Tick: 1, Ret: 2})
	tr.Append(trace.Record{Rank: 1, Func: "MPI_Recv", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "0", "9", "4", "0", "9"}, Tick: 1, Ret: 2})
	res := mustMatch(t, tr)
	if len(problems(res, UnmatchedSend)) != 1 {
		t.Errorf("unmatched sends: %v", res.Problems)
	}
	if len(problems(res, UnmatchedRecv)) != 1 {
		t.Errorf("unmatched recvs: %v", res.Problems)
	}
}

func TestDanglingRequestDetected(t *testing.T) {
	tr := trace.New(1)
	tr.Append(trace.Record{Rank: 0, Func: "MPI_Irecv", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "0", "1", "req-0.0"}, Tick: 1, Ret: 2})
	res := mustMatch(t, tr)
	if len(problems(res, DanglingRequest)) != 1 {
		t.Errorf("problems = %v", res.Problems)
	}
}

func TestMalformedRecordsReported(t *testing.T) {
	tr := trace.New(1)
	tr.Append(trace.Record{Rank: 0, Func: "MPI_Send", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "notanint", "1", "4"}, Tick: 1, Ret: 2})
	res := mustMatch(t, tr)
	if len(problems(res, MalformedRecord)) != 1 {
		t.Errorf("problems = %v", res.Problems)
	}
}

func TestFileCollectivesMatchedButNotSynchronizing(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		return r.Record(trace.LayerMPIIO, "MPI_File_open", func() []string {
			return []string{c.GID(), "f", "rw", "3"}
		}, func() error { return nil })
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.Collectives != 1 {
		t.Fatalf("collectives = %d", res.Collectives)
	}
	if len(res.Edges) != 0 {
		t.Errorf("MPI-IO open produced sync edges: %v", res.Edges)
	}
}

func TestNcmpiWaitBugShapeFlagged(t *testing.T) {
	// Hand-built §V-D shape: rank 0 records MPI_File_write_at_all, rank 1
	// records MPI_File_write_all, both after an MPI_File_open on world.
	tr := trace.New(2)
	for rank := 0; rank < 2; rank++ {
		tr.Append(trace.Record{Rank: rank, Func: "MPI_File_open", Layer: trace.LayerMPIIO,
			Args: []string{"comm-world", "f", "rw", "3"}, Tick: 1, Ret: 2})
	}
	tr.Append(trace.Record{Rank: 0, Func: "MPI_File_write_at_all", Layer: trace.LayerMPIIO,
		Args: []string{"3", "0", "4"}, Tick: 3, Ret: 4})
	tr.Append(trace.Record{Rank: 1, Func: "MPI_File_write_all", Layer: trace.LayerMPIIO,
		Args: []string{"3", "4"}, Tick: 3, Ret: 4})
	res := mustMatch(t, tr)
	ps := problems(res, MismatchedCollective)
	if len(ps) != 1 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if !strings.Contains(ps[0].Detail, "MPI_File_write_at_all") || !strings.Contains(ps[0].Detail, "MPI_File_write_all") {
		t.Errorf("detail = %s", ps[0].Detail)
	}
}

func TestNonBlockingCollectiveCompletionTarget(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		// A data record before the Ibarrier so pred edges exist.
		if _, err := r.Allreduce(c, 0, mpi.OpSum); err != nil {
			return err
		}
		req, err := r.Ibarrier(c)
		if err != nil {
			return err
		}
		_, err = r.Wait(req)
		return err
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	// The Ibarrier edge must land on the MPI_Wait record (seq 2), sourced
	// from the other rank's pred (seq 0).
	if !hasEdge(res, trace.Ref{Rank: 0, Seq: 0}, trace.Ref{Rank: 1, Seq: 2}) {
		t.Errorf("ibarrier edge should target the Wait; edges = %v", res.Edges)
	}
}

func TestDeterministicOutput(t *testing.T) {
	prog := func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			if err := r.Send(c, 1, 1, []byte("a")); err != nil {
				return err
			}
		} else {
			if _, _, err := r.Recv(c, 0, 1); err != nil {
				return err
			}
		}
		return r.Barrier(c)
	}
	tr := runTraced(t, 2, prog)
	a := mustMatch(t, tr)
	b := mustMatch(t, tr)
	if fmt.Sprint(a.Edges) != fmt.Sprint(b.Edges) {
		t.Error("matcher output is not deterministic")
	}
}

func TestSendrecvMatchesBothHalves(t *testing.T) {
	// A ring shift with MPI_Sendrecv: every rank sends right, receives
	// from the left. Each record is both a send and a receive event.
	tr := runTraced(t, 3, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		right := (r.Rank() + 1) % 3
		left := (r.Rank() + 2) % 3
		data, st, err := r.Sendrecv(c, right, 9, []byte{byte(r.Rank())}, left, 9)
		if err != nil {
			return err
		}
		if st.Source != left || data[0] != byte(left) {
			return fmt.Errorf("rank %d got %v from %d", r.Rank(), data, st.Source)
		}
		return nil
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	if res.P2P != 3 {
		t.Fatalf("p2p = %d, want 3 ring edges", res.P2P)
	}
	// Each edge runs from a Sendrecv record to the right neighbour's
	// Sendrecv record.
	for _, e := range res.Edges {
		if tr.Record(e.From).Func != "MPI_Sendrecv" || tr.Record(e.To).Func != "MPI_Sendrecv" {
			t.Errorf("edge endpoints %s -> %s", tr.Record(e.From).Func, tr.Record(e.To).Func)
		}
		if (e.From.Rank+1)%3 != e.To.Rank {
			t.Errorf("edge %v -> %v is not a ring-right edge", e.From, e.To)
		}
	}
}

func TestPrefixCollectiveEdges(t *testing.T) {
	tr := runTraced(t, 3, func(r *recorder.Rank) error {
		_, err := r.Scan(r.Proc().CommWorld(), int64(r.Rank()), mpi.OpSum)
		return err
	})
	res := mustMatch(t, tr)
	if len(res.Problems) != 0 {
		t.Fatalf("problems = %v", res.Problems)
	}
	// Edges only from lower to higher ranks: 0→1, 0→2, 1→2.
	if len(res.Edges) != 3 {
		t.Fatalf("edges = %v", res.Edges)
	}
	for _, e := range res.Edges {
		if e.From.Rank >= e.To.Rank {
			t.Errorf("prefix edge %v→%v goes the wrong way", e.From, e.To)
		}
	}
	// A higher rank's value must not be ordered before a lower rank's.
	if hasEdge(res, trace.Ref{Rank: 2, Seq: 0}, trace.Ref{Rank: 0, Seq: 0}) {
		t.Error("Scan ordered rank 2 before rank 0")
	}
}

// TestMalformedCommCreationReported pins the ingestion-hardening fix: a
// communicator-creation record whose member list cannot be parsed must
// surface as a MalformedRecord problem naming that record, not vanish
// silently (leaving later collectives on the comm to fail cryptically).
func TestMalformedCommCreationReported(t *testing.T) {
	cases := []struct {
		name string
		fn   string
		args []string
		want string
	}{
		{"dup bad member", "MPI_Comm_dup", []string{"comm-world", "comm1", "0,x"}, "not a rank"},
		{"dup negative member", "MPI_Comm_dup", []string{"comm-world", "comm1", "0,-2"}, "not a rank"},
		{"dup missing members", "MPI_Comm_dup", []string{"comm-world", "comm1"}, "missing group id or member list"},
		{"split bad member", "MPI_Comm_split", []string{"comm-world", "0", "0", "comm1", "1,zzz"}, "not a rank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New(1)
			tr.Append(trace.Record{
				Rank: 0, Func: tc.fn, Layer: trace.LayerMPI,
				Args: tc.args, Tick: 2, Ret: 3,
			})
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			res := mustMatch(t, tr)
			probs := problems(res, MalformedRecord)
			if len(probs) != 1 {
				t.Fatalf("MalformedRecord problems = %v, want exactly one", probs)
			}
			p := probs[0]
			if !strings.Contains(p.Detail, tc.want) {
				t.Errorf("problem detail %q does not explain the damage (%q)", p.Detail, tc.want)
			}
			if len(p.Refs) != 1 || p.Refs[0] != (trace.Ref{Rank: 0, Seq: 0}) {
				t.Errorf("problem refs = %v, want the creation record", p.Refs)
			}
		})
	}
}

// TestWellFormedCommCreationNotReported guards against over-reporting: the
// recorder's normal [parent, new, members] layout must register cleanly.
func TestWellFormedCommCreationNotReported(t *testing.T) {
	tr := runTraced(t, 2, func(r *recorder.Rank) error {
		_, err := r.CommDup(r.Proc().CommWorld())
		return err
	})
	res := mustMatch(t, tr)
	if probs := problems(res, MalformedRecord); len(probs) != 0 {
		t.Fatalf("unexpected MalformedRecord problems: %v", probs)
	}
}

package match

import (
	"cmp"
	"fmt"
	"slices"

	"verifyio/internal/trace"
)

// matchCollectives pairs the k-th collective call on each communicator
// across all members and emits synchronization edges.
func (m *matcher) matchCollectives() {
	gids := make([]string, 0, len(m.colls))
	for gid := range m.colls {
		gids = append(gids, gid)
	}
	slices.Sort(gids)

	for _, gid := range gids {
		byRank := m.colls[gid]
		members, ok := m.members[gid]
		if !ok {
			// Walk the participating ranks in order: map iteration order
			// must not leak into the refs.
			var refs []trace.Ref
			ranks := make([]int, 0, len(byRank))
			for r := range byRank {
				ranks = append(ranks, r)
			}
			slices.Sort(ranks)
			for _, r := range ranks {
				if entries := byRank[r]; len(entries) > 0 {
					refs = append(refs, entries[0].init)
				}
			}
			m.problem(MissingCollective,
				fmt.Sprintf("collective calls on unknown communicator %s", gid), refs...)
			continue
		}
		maxLen := 0
		for _, rank := range members {
			if n := len(byRank[rank]); n > maxLen {
				maxLen = n
			}
		}
		// Ranks that participate in fewer slots than their peers are
		// reported once each.
		for _, rank := range members {
			if n := len(byRank[rank]); n < maxLen {
				m.problem(MissingCollective,
					fmt.Sprintf("rank %d made %d collective calls on %s; peers made %d",
						rank, n, gid, maxLen))
			}
		}
		full := maxLen
		for _, rank := range members {
			if n := len(byRank[rank]); n < full {
				full = n
			}
		}
		for slot := 0; slot < full; slot++ {
			entries := make(map[int]*collEntry, len(members)) // world rank -> entry
			name := ""
			sameName := true
			root := -1
			sameRoot := true
			for _, rank := range members {
				e := &byRank[rank][slot]
				entries[rank] = e
				if name == "" {
					name = e.fn
					root = e.rootArg
				} else {
					if e.fn != name {
						sameName = false
					}
					if e.rootArg != root {
						sameRoot = false
					}
				}
			}
			if !sameName || !sameRoot {
				var refs []trace.Ref
				detail := fmt.Sprintf("collective slot %d on %s mixes calls:", slot, gid)
				for _, rank := range members {
					e := entries[rank]
					refs = append(refs, e.init)
					detail += fmt.Sprintf(" rank%d=%s", rank, e.fn)
				}
				m.problem(MismatchedCollective, detail, refs...)
				continue
			}
			m.res.Collectives++
			m.collectiveEdges(name, members, root, entries)
		}
	}
}

// collectiveEdges emits the synchronization edges for one matched slot.
func (m *matcher) collectiveEdges(name string, members []int, root int, entries map[int]*collEntry) {
	switch {
	case barrierLike[name]:
		// pred(call_i) → completion_j for all i ≠ j: everything before
		// the collective on any member happens-before everything after
		// it on every member, without creating call_i ↔ call_j cycles.
		for _, i := range members {
			ei := entries[i]
			if ei.init.Seq == 0 {
				continue // nothing precedes the call on this rank
			}
			pred := trace.Ref{Rank: ei.init.Rank, Seq: ei.init.Seq - 1}
			for _, j := range members {
				if i == j {
					continue
				}
				m.res.Edges = append(m.res.Edges, Edge{From: pred, To: entries[j].completion})
			}
		}
	case scatterLike[name]:
		rootWorld, ok := worldOf(members, root)
		if !ok {
			return
		}
		er := entries[rootWorld]
		for _, j := range members {
			if j == rootWorld {
				continue
			}
			m.res.Edges = append(m.res.Edges, Edge{From: er.init, To: entries[j].completion})
		}
	case gatherLike[name]:
		rootWorld, ok := worldOf(members, root)
		if !ok {
			return
		}
		er := entries[rootWorld]
		for _, j := range members {
			if j == rootWorld {
				continue
			}
			m.res.Edges = append(m.res.Edges, Edge{From: entries[j].init, To: er.completion})
		}
	case prefixLike[name]:
		// Prefix reductions: rank i's completion depends on every lower
		// comm rank's contribution (and on nothing above it).
		for i := 1; i < len(members); i++ {
			for j := 0; j < i; j++ {
				m.res.Edges = append(m.res.Edges, Edge{
					From: entries[members[j]].init,
					To:   entries[members[i]].completion,
				})
			}
		}
	default:
		// MPI-IO collectives: matched (error detection) but not
		// synchronizing — the reason the sync-barrier-sync construct
		// exists.
	}
}

func worldOf(members []int, commRank int) (int, bool) {
	if commRank < 0 || commRank >= len(members) {
		return -1, false
	}
	return members[commRank], true
}

// matchP2P pairs sends and receives per (comm, src, dst, tag) bucket in FIFO
// order.
func (m *matcher) matchP2P() {
	keys := make([]p2pKey, 0, len(m.sends)+len(m.recvs))
	seen := map[p2pKey]bool{}
	for k := range m.sends {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range m.recvs {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	slices.SortFunc(keys, func(a, b p2pKey) int {
		if c := cmp.Compare(a.comm, b.comm); c != 0 {
			return c
		}
		if c := cmp.Compare(a.src, b.src); c != 0 {
			return c
		}
		if c := cmp.Compare(a.dst, b.dst); c != 0 {
			return c
		}
		return cmp.Compare(a.tag, b.tag)
	})

	for _, key := range keys {
		sends := m.sends[key]
		recvs := m.recvs[key]
		// Receives match in posting order (non-overtaking): sort by the
		// initiation record.
		slices.SortFunc(recvs, func(a, b recvEntry) int { return refCompare(a.init, b.init) })
		n := len(sends)
		if len(recvs) < n {
			n = len(recvs)
		}
		for k := 0; k < n; k++ {
			m.res.Edges = append(m.res.Edges, Edge{From: sends[k].init, To: recvs[k].completion})
			m.res.P2P++
		}
		for k := n; k < len(sends); k++ {
			m.problem(UnmatchedSend,
				fmt.Sprintf("send on %s to world rank %d tag %d has no matching receive", key.comm, key.dst, key.tag),
				sends[k].init)
		}
		for k := n; k < len(recvs); k++ {
			m.problem(UnmatchedRecv,
				fmt.Sprintf("receive on %s from comm rank %d tag %d has no matching send", key.comm, key.src, key.tag),
				recvs[k].init)
		}
	}
}

func (m *matcher) sortOutputs() {
	slices.SortFunc(m.res.Edges, func(a, b Edge) int {
		if c := refCompare(a.From, b.From); c != 0 {
			return c
		}
		return refCompare(a.To, b.To)
	})
	slices.SortFunc(m.res.Problems, func(a, b Problem) int {
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.Detail, b.Detail)
	})
}

// refCompare orders refs by rank, then program order — trace.Ref.Less as a
// three-way comparison for slices.SortFunc.
func refCompare(a, b trace.Ref) int {
	if c := cmp.Compare(a.Rank, b.Rank); c != 0 {
		return c
	}
	return cmp.Compare(a.Seq, b.Seq)
}

package match

import (
	"fmt"
	"testing"

	"verifyio/internal/trace"
)

// collectiveHeavyTrace builds a trace of iters barriers across nranks.
func collectiveHeavyTrace(nranks, iters int) *trace.Trace {
	tr := trace.New(nranks)
	for rank := 0; rank < nranks; rank++ {
		tick := int64(0)
		for i := 0; i < iters; i++ {
			tick += 2
			tr.Append(trace.Record{Rank: rank, Func: "MPI_Barrier", Layer: trace.LayerMPI,
				Args: []string{"comm-world"}, Tick: tick, Ret: tick + 1})
		}
	}
	return tr
}

// p2pHeavyTrace builds a trace of iters ping messages per non-root rank.
func p2pHeavyTrace(nranks, iters int) *trace.Trace {
	tr := trace.New(nranks)
	ticks := make([]int64, nranks)
	add := func(rank int, fn string, args ...string) {
		ticks[rank] += 2
		tr.Append(trace.Record{Rank: rank, Func: fn, Layer: trace.LayerMPI,
			Args: args, Tick: ticks[rank], Ret: ticks[rank] + 1})
	}
	for i := 0; i < iters; i++ {
		for src := 1; src < nranks; src++ {
			add(src, "MPI_Send", "comm-world", "0", fmt.Sprint(i%8), "8")
			add(0, "MPI_Recv", "comm-world", fmt.Sprint(src), fmt.Sprint(i%8), "8",
				fmt.Sprint(src), fmt.Sprint(i%8))
		}
	}
	return tr
}

// BenchmarkMatchCollectives measures slot matching and barrier-edge
// generation (the cache test's dominant cost).
func BenchmarkMatchCollectives(b *testing.B) {
	for _, iters := range []int{500, 5000} {
		tr := collectiveHeavyTrace(8, iters)
		b.Run(fmt.Sprintf("barriers=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Match(tr)
				if err != nil {
					b.Fatal(err)
				}
				if res.Collectives != iters {
					b.Fatalf("collectives = %d", res.Collectives)
				}
			}
		})
	}
}

// BenchmarkMatchP2P measures FIFO bucket matching for point-to-point
// traffic.
func BenchmarkMatchP2P(b *testing.B) {
	for _, iters := range []int{500, 5000} {
		tr := p2pHeavyTrace(4, iters)
		b.Run(fmt.Sprintf("msgs=%d", iters*3), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Match(tr)
				if err != nil {
					b.Fatal(err)
				}
				if res.P2P != iters*3 {
					b.Fatalf("p2p = %d", res.P2P)
				}
			}
		})
	}
}

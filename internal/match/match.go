// Package match implements step 3 of the VerifyIO workflow: matching the
// MPI calls recorded in a trace to establish the synchronization order
// (Def. 2) between operations, and flagging unmatched or mismatched calls
// (the §V-D findings).
//
// Matching rules, following §IV-C:
//
//   - Point-to-point calls match by (communicator, source, destination,
//     tag) in FIFO order (MPI's non-overtaking rule). Wildcard receives
//     (MPI_ANY_SOURCE / MPI_ANY_TAG) are resolved from the actual source
//     and tag the tracer recorded out of the MPI_Status.
//
//   - Non-blocking operations are identified by request id; their
//     completion is the MPI_Wait*/MPI_Test* record that retired the
//     request. The happens-before edge of a matched message runs from the
//     send's initiation record to the receive's completion record.
//
//   - Collective calls match per communicator in program order: the k-th
//     collective on a communicator matches the k-th on every other member.
//     Communicator membership comes from the recorded MPI_Comm_dup/split
//     creation records (every communicator has a globally unique id).
//     A slot whose calls disagree on the function name, or that some
//     member never reaches, is reported as unmatched.
//
// Synchronization edges per collective follow its data flow:
//
//   - barrier-like (Barrier, Allreduce, Allgather, Alltoall, Comm_dup,
//     Comm_split, Comm_free): everything po-before the call on any rank
//     happens-before everything po-after the call on every other rank.
//     Encoded acyclically as pred(call_i) → call_j for i ≠ j, where pred is
//     the po-predecessor.
//   - rooted scatter-like (Bcast, Scatter): root's call → every other call.
//   - rooted gather-like (Reduce, Gather): every non-root call → root's
//     call.
//
// Collective MPI-IO data/metadata calls (MPI_File_open/close/sync/
// write_at_all/...) are matched for error detection but contribute no
// synchronization edges: MPI collective calls are not synchronizing unless
// they move data, which is exactly why the sync-barrier-sync construct is
// needed (§II-A4).
package match

import (
	"cmp"
	"fmt"
	"maps"
	"slices"
	"strconv"
	"strings"

	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// Edge is a synchronization-order edge: From happens-before To.
type Edge struct {
	From, To trace.Ref
}

// Problem is an unmatched or mismatched MPI call.
type Problem struct {
	// Kind classifies the problem.
	Kind ProblemKind
	// Refs are the involved records (one per rank where applicable).
	Refs []trace.Ref
	// Detail is a human-readable description.
	Detail string
}

// ProblemKind classifies matching failures.
type ProblemKind int

// Problem kinds.
const (
	// MismatchedCollective: members reached the same slot with different
	// collective functions (e.g. MPI_File_write_at_all vs
	// MPI_File_write_all — the ncmpi_wait bug).
	MismatchedCollective ProblemKind = iota
	// MissingCollective: a member made fewer collective calls on the
	// communicator than its peers (e.g. collective_error).
	MissingCollective
	// UnmatchedSend: a send with no matching receive.
	UnmatchedSend
	// UnmatchedRecv: a receive with no matching send.
	UnmatchedRecv
	// DanglingRequest: a non-blocking operation never completed by
	// MPI_Wait*/MPI_Test*.
	DanglingRequest
	// MalformedRecord: an MPI record whose arguments could not be
	// interpreted.
	MalformedRecord
)

var problemNames = map[ProblemKind]string{
	MismatchedCollective: "mismatched-collective",
	MissingCollective:    "missing-collective",
	UnmatchedSend:        "unmatched-send",
	UnmatchedRecv:        "unmatched-recv",
	DanglingRequest:      "dangling-request",
	MalformedRecord:      "malformed-record",
}

func (k ProblemKind) String() string {
	if s, ok := problemNames[k]; ok {
		return s
	}
	return fmt.Sprintf("problem(%d)", int(k))
}

// Result is the matcher's output.
type Result struct {
	// Edges are the synchronization-order edges.
	Edges []Edge
	// Problems are the unmatched/mismatched calls. A non-empty list means
	// the verification step cannot trust the happens-before order (the
	// gray rows of Fig. 4).
	Problems []Problem
	// Collectives is the number of matched collective slots.
	Collectives int
	// P2P is the number of matched point-to-point pairs.
	P2P int
}

// classification of MPI functions.
var (
	barrierLike = map[string]bool{
		"MPI_Barrier": true, "MPI_Allreduce": true, "MPI_Allgather": true,
		"MPI_Alltoall": true, "MPI_Comm_dup": true, "MPI_Comm_split": true,
		"MPI_Comm_free": true, "MPI_Ibarrier": true, "MPI_Iallreduce": true,
	}
	scatterLike = map[string]bool{"MPI_Bcast": true, "MPI_Scatter": true}
	gatherLike  = map[string]bool{"MPI_Reduce": true, "MPI_Gather": true}
	// prefixLike collectives order lower comm ranks before higher ones:
	// rank i's result depends on every rank j < i.
	prefixLike = map[string]bool{"MPI_Scan": true, "MPI_Exscan": true}
	// fileCollective calls are matched for error detection only.
	fileCollective = map[string]bool{
		"MPI_File_open": true, "MPI_File_close": true, "MPI_File_sync": true,
		"MPI_File_set_view": true, "MPI_File_set_size": true,
		"MPI_File_read_all": true, "MPI_File_write_all": true,
		"MPI_File_read_at_all": true, "MPI_File_write_at_all": true,
	}
)

// isCollective reports whether fn participates in slot matching, and how.
func collectiveClass(fn string) (sync bool, ok bool) {
	if barrierLike[fn] || scatterLike[fn] || gatherLike[fn] || prefixLike[fn] {
		return true, true
	}
	if fileCollective[fn] {
		return false, true
	}
	return false, false
}

// collEntry is one rank's participation in a collective slot.
type collEntry struct {
	fn         string
	init       trace.Ref
	completion trace.Ref // == init for blocking calls
	rootArg    int       // root for rooted collectives, else -1
}

// sendEntry is an unmatched send.
type sendEntry struct {
	init trace.Ref
	tag  int
}

// recvEntry is an unmatched receive (with resolved actual src/tag).
type recvEntry struct {
	init       trace.Ref
	completion trace.Ref
	src, tag   int // actual values from the status
	resolved   bool
}

// Options configures the matcher.
type Options struct {
	// Workers bounds the goroutines used for the per-rank scan phase. 0
	// means GOMAXPROCS; 1 forces the serial path. The result is identical
	// at every worker count.
	Workers int
	// Obs carries telemetry sinks; the zero Ctx disables instrumentation.
	Obs obs.Ctx
}

// Match replays the MPI records of tr with a GOMAXPROCS-wide worker pool;
// see MatchOpts.
func Match(tr *trace.Trace) (*Result, error) {
	return MatchOpts(tr, Options{})
}

// MatchOpts replays the MPI records of tr in three phases. Phase 0 replays
// only the communicator-creation records, serially in rank order, giving
// each rank the membership view a serial rank-major scan would have had on
// reaching it (all lower ranks' registrations; its own arrive in phase 1).
// Phase 1 scans the ranks in parallel — each scan touches only its own view
// and output buckets. Phase 2 merges the per-rank outputs in rank order and
// runs the (cheap, cross-rank) collective and point-to-point matching. The
// phases reproduce the serial scan's behavior exactly, including on
// malformed traces, at every worker count.
func MatchOpts(tr *trace.Trace, opts Options) (*Result, error) {
	workers := par.Resolve(opts.Workers)
	oc, span := opts.Obs.StartLane("match", "match", obs.Int("ranks", len(tr.Ranks)))
	span.SetCat("match")
	defer span.End()
	m := newMatcher(tr.NumRanks())

	// Phase 0: membership views. Registration errors are discarded here —
	// phase 1 re-runs each rank's registrations against its own view and
	// reports them in record order, like the serial scan did.
	_, regSpan := oc.Start("register")
	views := make([]map[string][]int, len(tr.Ranks))
	for rank := range tr.Ranks {
		views[rank] = maps.Clone(m.members)
		for i := range tr.Ranks[rank] {
			rec := &tr.Ranks[rank][i]
			switch rec.Func {
			case "MPI_Comm_dup":
				_ = registerComm(m.members, rec.Arg(1), rec.Arg(2))
			case "MPI_Comm_split":
				_ = registerComm(m.members, rec.Arg(3), rec.Arg(4))
			}
		}
	}

	regSpan.End()

	// Phase 1: independent per-rank scans.
	outs := make([]*rankOut, len(tr.Ranks))
	par.DoObs(oc, "match-scan", workers, len(tr.Ranks), func(rank int) {
		_, sp := oc.StartLane("match/rank-"+strconv.Itoa(rank), "scan", obs.Int("rank", rank))
		outs[rank] = scanRank(tr.Ranks[rank], rank, views[rank])
		sp.End()
	})
	return m.mergeAndMatch(outs, oc), nil
}

func newMatcher(nranks int) *matcher {
	m := &matcher{
		res:     &Result{},
		members: map[string][]int{},
		colls:   map[string]map[int][]collEntry{},
		sends:   map[p2pKey][]sendEntry{},
		recvs:   map[p2pKey][]recvEntry{},
	}
	// MPI_COMM_WORLD always exists.
	world := make([]int, nranks)
	for i := range world {
		world[i] = i
	}
	m.members["comm-world"] = world
	return m
}

// mergeAndMatch is the serial tail shared by the materialized and streaming
// front-ends. Phase 2: merge the per-rank scan outputs in rank order — the
// append order of a serial rank-major scan (per-key send/recv buckets and
// per-rank collective entry lists all grow rank by rank there too) — then
// run the cross-rank collective and point-to-point matching.
func (m *matcher) mergeAndMatch(outs []*rankOut, oc obs.Ctx) *Result {
	_, mergeSpan := oc.Start("merge")
	for rank, out := range outs {
		if out == nil {
			continue
		}
		m.res.Problems = append(m.res.Problems, out.problems...)
		for gid, entries := range out.colls {
			byRank, ok := m.colls[gid]
			if !ok {
				byRank = map[int][]collEntry{}
				m.colls[gid] = byRank
			}
			byRank[rank] = entries
		}
		for key, entries := range out.sends {
			m.sends[key] = append(m.sends[key], entries...)
		}
		for key, entries := range out.recvs {
			m.recvs[key] = append(m.recvs[key], entries...)
		}
	}

	mergeSpan.End()

	_, collSpan := oc.Start("collectives")
	m.matchCollectives()
	collSpan.End()
	_, p2pSpan := oc.Start("p2p")
	m.matchP2P()
	p2pSpan.End()
	m.sortOutputs()
	if r := oc.R; r != nil {
		r.Counter("match.edges").Add(int64(len(m.res.Edges)))
		r.Counter("match.problems").Add(int64(len(m.res.Problems)))
		r.Counter("match.collectives").Add(int64(m.res.Collectives))
		r.Counter("match.p2p").Add(int64(m.res.P2P))
	}
	return m.res
}

// StreamMatcher runs matching over records as they decode. Ranks must
// arrive in nondecreasing rank order (the order trace.Stream yields), each
// rank's records in program order in any batch partitioning; this is
// exactly the rank-major serial scan MatchOpts reproduces, so the Result is
// identical to the materialized path's.
//
// The phase structure maps onto the stream: each rank scans against a
// membership view captured when its first batch arrives (all lower ranks'
// registrations — what phase 0 would have given it), and its own
// registrations are replayed into the global table when the next rank
// starts, errors discarded exactly as phase 0 discards them.
type StreamMatcher struct {
	global  map[string][]int
	outs    []*rankOut
	cur     *rankScanner
	curRank int
}

// NewStreamMatcher prepares matching state for nranks ranks.
func NewStreamMatcher(nranks int) *StreamMatcher {
	world := make([]int, nranks)
	for i := range world {
		world[i] = i
	}
	return &StreamMatcher{
		global:  map[string][]int{"comm-world": world},
		outs:    make([]*rankOut, nranks),
		curRank: -1,
	}
}

// Feed scans the next records of one rank. The batch buffer is not
// retained.
func (sm *StreamMatcher) Feed(rank int, recs []trace.Record) {
	if rank != sm.curRank {
		sm.flush()
		sm.curRank = rank
		sm.cur = newRankScanner(rank, maps.Clone(sm.global))
	}
	for i := range recs {
		sm.cur.step(&recs[i])
	}
}

// flush finalizes the in-progress rank: emit its dangling-request problems
// and replay its communicator registrations into the global table.
func (sm *StreamMatcher) flush() {
	if sm.cur == nil {
		return
	}
	sm.outs[sm.curRank] = sm.cur.finish()
	for _, reg := range sm.cur.regs {
		_ = registerComm(sm.global, reg[0], reg[1])
	}
	sm.cur = nil
}

// Finish completes matching over everything fed so far.
func (sm *StreamMatcher) Finish(opts Options) (*Result, error) {
	sm.flush()
	oc, span := opts.Obs.StartLane("match", "match", obs.Int("ranks", len(sm.outs)))
	span.SetCat("match")
	defer span.End()
	m := newMatcher(len(sm.outs))
	m.members = sm.global
	return m.mergeAndMatch(sm.outs, oc), nil
}

type p2pKey struct {
	comm     string
	src, dst int // world ranks
	tag      int
}

type matcher struct {
	res *Result

	// members: communicator gid -> world ranks.
	members map[string][]int
	// colls: gid -> world rank -> ordered collective entries.
	colls map[string]map[int][]collEntry
	// sends/recvs: matching buckets.
	sends map[p2pKey][]sendEntry
	recvs map[p2pKey][]recvEntry
}

func (m *matcher) problem(kind ProblemKind, detail string, refs ...trace.Ref) {
	m.res.Problems = append(m.res.Problems, Problem{Kind: kind, Detail: detail, Refs: refs})
}

// pendingReq tracks a not-yet-completed non-blocking operation during the
// per-rank scan.
type pendingReq struct {
	fn   string
	init trace.Ref
	comm string
	peer int // dst for isend, requested src for irecv (may be -1)
	tag  int // requested tag (may be -1)
	// collGID/collIdx locate a non-blocking collective's entry so its
	// completion record can be filled in (indices, not pointers: the
	// per-rank entry slice may be reallocated by later appends).
	collGID string
	collIdx int
}

// rankOut is one rank's scan output, merged rank-major in phase 2.
type rankOut struct {
	// colls: gid -> this rank's ordered collective entries.
	colls map[string][]collEntry
	// sends/recvs: this rank's contributions to the matching buckets.
	sends    map[p2pKey][]sendEntry
	recvs    map[p2pKey][]recvEntry
	problems []Problem
}

func (o *rankOut) problem(kind ProblemKind, detail string, refs ...trace.Ref) {
	o.problems = append(o.problems, Problem{Kind: kind, Detail: detail, Refs: refs})
}

// scanRank scans one rank's records against its membership view. It mutates
// only the view and its own output, which is what makes the scan phase
// embarrassingly parallel.
func scanRank(recs []trace.Record, rank int, members map[string][]int) *rankOut {
	sc := newRankScanner(rank, members)
	for i := range recs {
		sc.step(&recs[i])
	}
	return sc.finish()
}

// rankScanner is scanRank unrolled into explicit state so records can be fed
// one batch at a time: everything the serial scan kept in loop-local closures
// lives here, plus the forward-tracked open-file table that replaces the
// materialized path's backward scan for MPI-IO communicator recovery.
type rankScanner struct {
	rank    int
	members map[string][]int
	out     *rankOut
	pending map[string]*pendingReq // request id -> op
	// regs: communicator registrations in record order, kept so a streaming
	// caller can replay them into a shared global table (MatchOpts' phase 0
	// does this ahead of time from the materialized trace).
	regs [][2]string
	// openByFd: fh -> comm of the most recent MPI_File_open that produced
	// it; lastOpen is the comm of the most recent open of any fh. Together
	// they answer "nearest preceding open" queries without looking back.
	openByFd map[string]string
	lastOpen string
	anyOpen  bool
}

func newRankScanner(rank int, members map[string][]int) *rankScanner {
	return &rankScanner{
		rank:    rank,
		members: members,
		out: &rankOut{
			colls: map[string][]collEntry{},
			sends: map[p2pKey][]sendEntry{},
			recvs: map[p2pKey][]recvEntry{},
		},
		pending:  map[string]*pendingReq{},
		openByFd: map[string]string{},
	}
}

func (sc *rankScanner) addColl(gid string, e collEntry) int {
	sc.out.colls[gid] = append(sc.out.colls[gid], e)
	return len(sc.out.colls[gid]) - 1
}

// complete retires a request id at the given completion record with the
// given actual (src, tag) status.
func (sc *rankScanner) complete(req string, at trace.Ref, src, tag int) {
	p, ok := sc.pending[req]
	if !ok {
		// Completing an unknown/already-done request: tolerated
		// (MPI_Test on an inactive request is legal).
		return
	}
	delete(sc.pending, req)
	switch {
	case p.collGID != "":
		sc.out.colls[p.collGID][p.collIdx].completion = at
	case p.fn == "MPI_Isend":
		// The send edge uses the initiation record; nothing to do
		// at completion.
	case p.fn == "MPI_Irecv":
		key := p2pKey{comm: p.comm, src: src, dst: sc.rank, tag: tag}
		sc.out.recvs[key] = append(sc.out.recvs[key], recvEntry{
			init: p.init, completion: at, src: src, tag: tag, resolved: true,
		})
	}
}

// step scans one record.
func (sc *rankScanner) step(rec *trace.Record) {
	rank, out, members, pending := sc.rank, sc.out, sc.members, sc.pending
	if rec.Layer != trace.LayerMPI && rec.Layer != trace.LayerMPIIO {
		return
	}
	ref := trace.Ref{Rank: rank, Seq: rec.Seq}
	malformed := func(why string) {
		out.problem(MalformedRecord, fmt.Sprintf("%s: %s", rec.Func, why), ref)
	}

	switch rec.Func {
	case "MPI_Send":
		comm, dst, tag, ok := commPeerTag(rec)
		if !ok {
			malformed("bad arguments")
			return
		}
		dstWorld, ok := worldRank(members, comm, dst)
		if !ok {
			malformed("unknown communicator " + comm)
			return
		}
		srcComm, _ := commRank(members, comm, rank)
		key := p2pKey{comm: comm, src: srcComm, dst: dstWorld, tag: tag}
		out.sends[key] = append(out.sends[key], sendEntry{init: ref, tag: tag})

	case "MPI_Sendrecv":
		// [comm, dst, stag, scount, src, rtag, nrecv, aSrc, aTag]
		// — one record, two events: a send and a completed receive.
		comm, dst, stag, ok := commPeerTag(rec)
		aSrc, ok1 := rec.IntArg(7)
		aTag, ok2 := rec.IntArg(8)
		if !ok || !ok1 || !ok2 {
			malformed("bad arguments")
			return
		}
		dstWorld, okD := worldRank(members, comm, dst)
		if !okD {
			malformed("unknown communicator " + comm)
			return
		}
		srcComm, _ := commRank(members, comm, rank)
		sKey := p2pKey{comm: comm, src: srcComm, dst: dstWorld, tag: stag}
		out.sends[sKey] = append(out.sends[sKey], sendEntry{init: ref, tag: stag})
		rKey := p2pKey{comm: comm, src: int(aSrc), dst: rank, tag: int(aTag)}
		out.recvs[rKey] = append(out.recvs[rKey], recvEntry{
			init: ref, completion: ref, src: int(aSrc), tag: int(aTag), resolved: true,
		})

	case "MPI_Isend":
		comm, dst, tag, ok := commPeerTag(rec)
		req := rec.Arg(4)
		if !ok || req == "" {
			malformed("bad arguments")
			return
		}
		dstWorld, ok := worldRank(members, comm, dst)
		if !ok {
			malformed("unknown communicator " + comm)
			return
		}
		srcComm, _ := commRank(members, comm, rank)
		key := p2pKey{comm: comm, src: srcComm, dst: dstWorld, tag: tag}
		out.sends[key] = append(out.sends[key], sendEntry{init: ref, tag: tag})
		pending[req] = &pendingReq{fn: rec.Func, init: ref, comm: comm, peer: dst, tag: tag}

	case "MPI_Recv":
		// [comm, src, tag, n, actualSrc, actualTag]
		comm := rec.Arg(0)
		aSrc, ok1 := rec.IntArg(4)
		aTag, ok2 := rec.IntArg(5)
		if comm == "" || !ok1 || !ok2 {
			malformed("bad arguments")
			return
		}
		key := p2pKey{comm: comm, src: int(aSrc), dst: rank, tag: int(aTag)}
		out.recvs[key] = append(out.recvs[key], recvEntry{
			init: ref, completion: ref, src: int(aSrc), tag: int(aTag), resolved: true,
		})

	case "MPI_Irecv":
		comm, src, tag, ok := commPeerTag(rec)
		req := rec.Arg(3)
		if !ok || req == "" {
			malformed("bad arguments")
			return
		}
		pending[req] = &pendingReq{fn: rec.Func, init: ref, comm: comm, peer: src, tag: tag}

	case "MPI_Wait":
		// [req, src, tag]
		src, _ := rec.IntArg(1)
		tag, _ := rec.IntArg(2)
		sc.complete(rec.Arg(0), ref, int(src), int(tag))

	case "MPI_Waitall", "MPI_Testall":
		n, ok := rec.IntArg(0)
		if !ok || n < 0 || n > int64(len(rec.Args)) {
			malformed("bad count")
			return
		}
		statusBase := 1 + int(n)
		if rec.Func == "MPI_Testall" {
			if rec.Arg(statusBase) != "1" {
				return // flag=0: nothing completed
			}
			statusBase++
		}
		for k := 0; k < int(n); k++ {
			src, _ := rec.IntArg(statusBase + 2*k)
			tag, _ := rec.IntArg(statusBase + 2*k + 1)
			sc.complete(rec.Arg(1+k), ref, int(src), int(tag))
		}

	case "MPI_Test":
		// [req, flag, src, tag]
		if rec.Arg(1) != "1" {
			return
		}
		src, _ := rec.IntArg(2)
		tag, _ := rec.IntArg(3)
		sc.complete(rec.Arg(0), ref, int(src), int(tag))

	case "MPI_Waitany":
		// [n, reqs..., idx, src, tag]
		n, ok := rec.IntArg(0)
		if !ok || n < 0 || n > int64(len(rec.Args)) {
			malformed("bad count")
			return
		}
		idx, okI := rec.IntArg(1 + int(n))
		if !okI || idx < 0 || idx >= n {
			malformed("bad completion index")
			return
		}
		src, _ := rec.IntArg(1 + int(n) + 1)
		tag, _ := rec.IntArg(1 + int(n) + 2)
		sc.complete(rec.Arg(1+int(idx)), ref, int(src), int(tag))

	case "MPI_Waitsome", "MPI_Testsome":
		// [n, reqs..., outcount, indices..., (src,tag)...]
		n, ok := rec.IntArg(0)
		if !ok || n < 0 || n > int64(len(rec.Args)) {
			malformed("bad count")
			return
		}
		base := 1 + int(n)
		outc, okC := rec.IntArg(base)
		if !okC || outc < 0 || outc > n {
			malformed("bad outcount")
			return
		}
		for k := 0; k < int(outc); k++ {
			idx, okI := rec.IntArg(base + 1 + k)
			if !okI || idx < 0 || idx >= n {
				malformed("bad completion index")
				continue
			}
			src, _ := rec.IntArg(base + 1 + int(outc) + 2*k)
			tag, _ := rec.IntArg(base + 1 + int(outc) + 2*k + 1)
			sc.complete(rec.Arg(1+int(idx)), ref, int(src), int(tag))
		}

	case "MPI_Comm_dup":
		// [parent, new, members]
		sc.regs = append(sc.regs, [2]string{rec.Arg(1), rec.Arg(2)})
		if err := registerComm(members, rec.Arg(1), rec.Arg(2)); err != nil {
			malformed(err.Error())
		}
		sc.addColl(rec.Arg(0), collEntry{fn: rec.Func, init: ref, completion: ref, rootArg: -1})

	case "MPI_Comm_split":
		// [parent, color, key, new, members]
		sc.regs = append(sc.regs, [2]string{rec.Arg(3), rec.Arg(4)})
		if err := registerComm(members, rec.Arg(3), rec.Arg(4)); err != nil {
			malformed(err.Error())
		}
		sc.addColl(rec.Arg(0), collEntry{fn: rec.Func, init: ref, completion: ref, rootArg: -1})

	case "MPI_Ibarrier", "MPI_Iallreduce":
		// [comm, (op,) req]
		comm := rec.Arg(0)
		req := rec.Arg(len(rec.Args) - 1)
		if comm == "" || req == "" {
			malformed("bad arguments")
			return
		}
		idx := sc.addColl(comm, collEntry{fn: rec.Func, init: ref, completion: ref, rootArg: -1})
		pending[req] = &pendingReq{fn: rec.Func, init: ref, comm: comm, collGID: comm, collIdx: idx}

	default:
		if _, isColl := collectiveClass(rec.Func); !isColl {
			return
		}
		root := -1
		if scatterLike[rec.Func] || gatherLike[rec.Func] {
			if v, ok := rec.IntArg(1); ok {
				root = int(v)
			}
		}
		comm := rec.Arg(0)
		if rec.Func == "MPI_File_close" || rec.Func == "MPI_File_sync" ||
			rec.Func == "MPI_File_set_view" || rec.Func == "MPI_File_set_size" ||
			strings.HasPrefix(rec.Func, "MPI_File_read") || strings.HasPrefix(rec.Func, "MPI_File_write") {
			// MPI-IO collectives carry an fh, not a comm; they are
			// matched on the communicator of the enclosing open —
			// recovered from the open-file table.
			comm = ""
		}
		if rec.Func == "MPI_File_open" {
			comm = rec.Arg(0)
			// Record the open before resolving, so an open with an
			// empty comm resolves through itself like the backward
			// scan did.
			sc.openByFd[rec.Arg(3)] = rec.Arg(0)
			sc.lastOpen = rec.Arg(0)
			sc.anyOpen = true
		}
		sc.addColl(sc.fileComm(rec, comm), collEntry{fn: rec.Func, init: ref, completion: ref, rootArg: root})
	}
}

// finish reports dangling requests and returns the rank's scan output.
func (sc *rankScanner) finish() *rankOut {
	// Dangling requests are reported in initiation order: map iteration
	// order must not leak into the problem list.
	pending := sc.pending
	dangling := make([]string, 0, len(pending))
	for req := range pending {
		dangling = append(dangling, req)
	}
	slices.SortFunc(dangling, func(a, b string) int {
		if c := cmp.Compare(pending[a].init.Seq, pending[b].init.Seq); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for _, req := range dangling {
		p := pending[req]
		sc.out.problem(DanglingRequest,
			fmt.Sprintf("%s request %s never completed by MPI_Wait*/MPI_Test*", p.fn, req), p.init)
	}
	return sc.out
}

// fileComm resolves the communicator for MPI-IO collective records: the comm
// of the most recent MPI_File_open on this rank. The open-file table is the
// forward-tracked equivalent of scanning backwards for the nearest preceding
// open — the most recent open with this fh is exactly the nearest preceding
// one. (A single open file per rank at a time covers this simulation's
// programs; the fh→comm table also handles interleaved opens on different
// communicators.)
func (sc *rankScanner) fileComm(rec *trace.Record, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if comm, ok := sc.openByFd[rec.Arg(0)]; ok {
		return comm
	}
	// Fall back to the last open of any fd.
	if sc.anyOpen {
		return sc.lastOpen
	}
	return "comm-world"
}

// registerComm records the membership of a newly created communicator. A
// malformed creation record is reported, not silently dropped: later
// collectives on the unregistered communicator would otherwise surface as
// confusing mismatched/missing-collective problems with no hint that the
// creation itself was the bad record.
func registerComm(members map[string][]int, gid, list string) error {
	if gid == "" || list == "" {
		return fmt.Errorf("communicator creation missing group id or member list")
	}
	if _, ok := members[gid]; ok {
		return nil
	}
	parts := strings.Split(list, ",")
	ranks := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return fmt.Errorf("communicator %s member list %q: %q is not a rank", gid, list, p)
		}
		ranks = append(ranks, v)
	}
	members[gid] = ranks
	return nil
}

func worldRank(members map[string][]int, gid string, commRank int) (int, bool) {
	mem, ok := members[gid]
	if !ok || commRank < 0 || commRank >= len(mem) {
		return -1, false
	}
	return mem[commRank], true
}

func commRank(members map[string][]int, gid string, world int) (int, bool) {
	for i, w := range members[gid] {
		if w == world {
			return i, true
		}
	}
	return -1, false
}

func commPeerTag(rec *trace.Record) (comm string, peer, tag int, ok bool) {
	comm = rec.Arg(0)
	p, ok1 := rec.IntArg(1)
	t, ok2 := rec.IntArg(2)
	if comm == "" || !ok1 || !ok2 {
		return "", 0, 0, false
	}
	return comm, int(p), int(t), true
}

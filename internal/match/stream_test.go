package match

import (
	"reflect"
	"testing"

	"verifyio/internal/recorder"
	"verifyio/internal/trace"
)

// streamFeed runs tr through a StreamMatcher, feeding each rank's records in
// batches of the given size (the stream's rank-major order).
func streamFeed(t *testing.T, tr *trace.Trace, batch int) *Result {
	t.Helper()
	sm := NewStreamMatcher(tr.NumRanks())
	for rank := range tr.Ranks {
		recs := tr.Ranks[rank]
		for lo := 0; lo < len(recs); lo += batch {
			hi := lo + batch
			if hi > len(recs) {
				hi = len(recs)
			}
			sm.Feed(rank, recs[lo:hi])
		}
	}
	res, err := sm.Finish(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// streamTestTraces covers every scanner state machine the streaming path
// must carry across batch boundaries: pending requests, communicator
// registrations visible to later ranks, the open-file table for MPI-IO
// communicator recovery, and problem reporting.
func streamTestTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	traces := map[string]*trace.Trace{}

	traces["comm-split-file-io"] = runTraced(t, 4, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		sub, err := r.CommSplit(c, r.Rank()%2, r.Rank())
		if err != nil {
			return err
		}
		if err := r.Barrier(sub); err != nil {
			return err
		}
		if err := r.Record(trace.LayerMPIIO, "MPI_File_open", func() []string {
			return []string{sub.GID(), "f", "rw", "3"}
		}, func() error { return nil }); err != nil {
			return err
		}
		return r.Record(trace.LayerMPIIO, "MPI_File_close", func() []string {
			return []string{"3"}
		}, func() error { return nil })
	})

	traces["p2p-nonblocking"] = runTraced(t, 2, func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			return r.Send(c, 1, 7, []byte("data"))
		}
		req, err := r.Irecv(c, 0, 7)
		if err != nil {
			return err
		}
		_, err = r.Wait(req)
		return err
	})

	// Hand-built: dangling request + malformed record + unmatched p2p +
	// file collective with no preceding open on one rank.
	mixed := trace.New(2)
	mixed.Append(trace.Record{Rank: 0, Func: "MPI_Irecv", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "1", "3", "req-0.0"}, Tick: 1, Ret: 2})
	mixed.Append(trace.Record{Rank: 0, Func: "MPI_Send", Layer: trace.LayerMPI,
		Args: []string{"comm-world", "notanint", "1", "4"}, Tick: 3, Ret: 4})
	mixed.Append(trace.Record{Rank: 0, Func: "MPI_File_write_all", Layer: trace.LayerMPIIO,
		Args: []string{"3", "8"}, Tick: 5, Ret: 6})
	mixed.Append(trace.Record{Rank: 1, Func: "MPI_File_open", Layer: trace.LayerMPIIO,
		Args: []string{"comm-world", "f", "rw", "3"}, Tick: 1, Ret: 2})
	mixed.Append(trace.Record{Rank: 1, Func: "MPI_File_write_all", Layer: trace.LayerMPIIO,
		Args: []string{"3", "8"}, Tick: 3, Ret: 4})
	traces["mixed-problems"] = mixed

	return traces
}

// TestStreamMatcherMatchesMatch pins the streaming matcher to the
// materialized matcher's output for every batch partitioning: feeding one
// record at a time must give the same Result as handing Match the whole
// trace.
func TestStreamMatcherMatchesMatch(t *testing.T) {
	for name, tr := range streamTestTraces(t) {
		t.Run(name, func(t *testing.T) {
			want := mustMatch(t, tr)
			max := 0
			for _, recs := range tr.Ranks {
				if len(recs) > max {
					max = len(recs)
				}
			}
			for _, batch := range []int{1, 3, max + 1} {
				got := streamFeed(t, tr, batch)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("batch=%d: streaming result differs from Match\ngot:  %+v\nwant: %+v",
						batch, got, want)
				}
			}
		})
	}
}

// TestStreamMatcherSkippedEmptyRank pins that a rank the stream never feeds
// (no records) matches the materialized scan of an empty rank — the
// missing-collective report must still name it.
func TestStreamMatcherSkippedEmptyRank(t *testing.T) {
	tr := trace.New(3)
	for _, rank := range []int{0, 2} {
		tr.Append(trace.Record{Rank: rank, Func: "MPI_Barrier", Layer: trace.LayerMPI,
			Args: []string{"comm-world"}, Tick: 1, Ret: 2})
	}
	want := mustMatch(t, tr)
	sm := NewStreamMatcher(3)
	for _, rank := range []int{0, 2} {
		sm.Feed(rank, tr.Ranks[rank])
	}
	got, err := sm.Finish(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming result differs from Match\ngot:  %+v\nwant: %+v", got, want)
	}
	if len(problems(got, MissingCollective)) == 0 {
		t.Fatal("empty rank did not surface a missing collective")
	}
}

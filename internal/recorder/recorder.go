// Package recorder implements Recorder⁺, the tracing component of VerifyIO
// (step 1 of the workflow).
//
// The real Recorder⁺ intercepts calls via LD_PRELOAD wrappers generated from
// function-signature files; in this simulation every library layer routes
// its calls through a Rank, which plays the wrapper role: it records the
// prologue (entry timestamp, call chain), invokes the real operation, then
// records the epilogue (all runtime arguments, including post-invocation
// values such as the MPI_Status of a wildcard receive or the descriptor
// returned by open). Nesting is captured exactly the way the paper needs it:
// when PnetCDF calls MPI-IO which calls POSIX, all three records appear,
// each carrying its enclosing call chain, which the verifier reports for
// data races so users can tell application-level misuse from library-level
// bugs.
//
// Coverage is signature-driven. A Registry lists the functions the tracer
// supports, loaded from the signature files under sigs/ (the same files
// cmd/wrappergen consumes). CoverageLegacy reproduces the original
// Recorder's partial coverage — only a small, fixed HDF5 subset plus the
// POSIX/MPI core — so the evaluation can show what full coverage buys
// (Table II) and what partial coverage silently misses.
package recorder

import (
	"fmt"
	"strconv"

	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// Coverage selects which tracer generation to simulate.
type Coverage int

const (
	// CoveragePlus is Recorder⁺: every function in the signature registry
	// is recorded (full coverage of HDF5, NetCDF, and PnetCDF).
	CoveragePlus Coverage = iota
	// CoverageLegacy is the original Recorder: POSIX, MPI, MPI-IO, and a
	// fixed subset of HDF5 functions only. Calls outside the subset still
	// execute but leave no trace records.
	CoverageLegacy
)

func (c Coverage) String() string {
	if c == CoverageLegacy {
		return "recorder"
	}
	return "recorder+"
}

// Env is one traced execution: a simulated MPI world, a simulated file
// system, and the trace being collected.
type Env struct {
	world    *mpi.World
	fs       *posixfs.FS
	tr       *trace.Trace
	reg      *Registry
	coverage Coverage
}

// Options configures a traced execution.
type Options struct {
	// FSMode is the simulated file system's consistency mode.
	FSMode posixfs.Mode
	// Coverage selects Recorder⁺ (default) or legacy Recorder.
	Coverage Coverage
	// Registry overrides the default signature registry (tests).
	Registry *Registry
	// MPIOptions are passed through to the simulated MPI world.
	MPIOptions []mpi.Option
}

// NewEnv creates a traced execution with nranks ranks.
func NewEnv(nranks int, opts Options) *Env {
	reg := opts.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	e := &Env{
		world:    mpi.NewWorld(nranks, opts.MPIOptions...),
		fs:       posixfs.New(opts.FSMode),
		tr:       trace.New(nranks),
		reg:      reg,
		coverage: opts.Coverage,
	}
	e.tr.Meta["fs.mode"] = opts.FSMode.String()
	e.tr.Meta["tracer"] = opts.Coverage.String()
	return e
}

// FS exposes the simulated file system (examples inspect committed data).
func (e *Env) FS() *posixfs.FS { return e.fs }

// Trace returns the collected trace. Call it after Run has returned.
func (e *Env) Trace() *trace.Trace { return e.tr }

// Run executes prog once per rank under tracing and waits for completion.
func (e *Env) Run(prog func(r *Rank) error) error {
	return e.world.Run(func(p *mpi.Proc) error {
		return prog(&Rank{
			env:  e,
			proc: p,
			fs:   e.fs.Proc(p.Rank()),
		})
	})
}

// Rank is one traced process: the wrapper layer in front of the simulated
// MPI and POSIX substrates. It must be used only from its rank's goroutine.
type Rank struct {
	env  *Env
	proc *mpi.Proc
	fs   *posixfs.Proc

	tick  int64
	chain []string
	site  string
}

// Rank returns the MPI world rank.
func (r *Rank) Rank() int { return r.proc.Rank() }

// Size returns the MPI world size.
func (r *Rank) Size() int { return r.proc.Size() }

// Proc exposes the raw (untraced) MPI handle. Library layers use Record
// around it; application code should use the traced wrappers instead.
func (r *Rank) Proc() *mpi.Proc { return r.proc }

// FSProc exposes the raw (untraced) file-system view.
func (r *Rank) FSProc() *posixfs.Proc { return r.fs }

// SetSite labels subsequent records with a call-site string — the paper's
// future-work backtrace feature, which disambiguates repeated calls to the
// same function from different source locations.
func (r *Rank) SetSite(site string) { r.site = site }

// Record is the wrapper skeleton from the paper (§IV-A):
//
//	wrapper(func, ...) { prologue(); ret = func(args); epilogue(args); }
//
// It runs body inside a recorded frame of the given layer. args is evaluated
// after body so post-invocation values (statuses, returned descriptors) are
// captured. If the registry (under the configured coverage) does not support
// fn, body still runs but no record is written — exactly how an uninstru-
// mented function behaves under LD_PRELOAD tracing.
func (r *Rank) Record(layer trace.Layer, fn string, args func() []string, body func() error) error {
	if !r.env.reg.Supported(r.env.coverage, fn) {
		return body()
	}
	entry := r.nextTick()
	frame := trace.FormatFrame(layer, fn, r.site)
	r.chain = append(r.chain, frame)
	err := body()
	r.chain = r.chain[:len(r.chain)-1]
	ret := r.nextTick()

	var argv []string
	if args != nil {
		argv = args()
	}
	chain := make([]string, len(r.chain))
	copy(chain, r.chain)
	r.env.tr.Append(trace.Record{
		Rank:  r.Rank(),
		Func:  fn,
		Layer: layer,
		Depth: len(chain),
		Args:  argv,
		Tick:  entry,
		Ret:   ret,
		Chain: chain,
		Site:  r.site,
	})
	return err
}

func (r *Rank) nextTick() int64 {
	r.tick++
	return r.tick
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func whenceName(whence int) string {
	switch whence {
	case posixfs.SeekSet:
		return "SEEK_SET"
	case posixfs.SeekCur:
		return "SEEK_CUR"
	case posixfs.SeekEnd:
		return "SEEK_END"
	}
	return fmt.Sprintf("whence(%d)", whence)
}

// ParseWhence is the inverse of the whence encoding used in lseek/fseek
// records; the conflict detector uses it to replay file positions.
func ParseWhence(s string) (int, error) {
	switch s {
	case "SEEK_SET":
		return posixfs.SeekSet, nil
	case "SEEK_CUR":
		return posixfs.SeekCur, nil
	case "SEEK_END":
		return posixfs.SeekEnd, nil
	}
	return 0, fmt.Errorf("recorder: unknown whence %q", s)
}

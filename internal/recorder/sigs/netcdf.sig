# library: netcdf
# NetCDF-4 API surface; the typed var/att accessors are the usual generated
# matrix (kind x type).
expand TYPE: text schar uchar short ushort int uint long float double longlong ulonglong string
expand KIND: var var1 vara vars varm

int nc_put_${KIND}_${TYPE}(int ncid, int varid, const void *op);
int nc_get_${KIND}_${TYPE}(int ncid, int varid, void *ip);
int nc_put_${KIND}(int ncid, int varid, const void *op);
int nc_get_${KIND}(int ncid, int varid, void *ip);

int nc_put_att_${TYPE}(int ncid, int varid, const char *name, nc_type xtype, size_t len, const void *op);
int nc_get_att_${TYPE}(int ncid, int varid, const char *name, void *ip);
int nc_put_att(int ncid, int varid, const char *name, nc_type xtype, size_t len, const void *op);
int nc_get_att(int ncid, int varid, const char *name, void *ip);
int nc_inq_att(int ncid, int varid, const char *name, nc_type *xtypep, size_t *lenp);
int nc_inq_attid(int ncid, int varid, const char *name, int *idp);
int nc_inq_attname(int ncid, int varid, int attnum, char *name);
int nc_inq_natts(int ncid, int *nattsp);
int nc_rename_att(int ncid, int varid, const char *name, const char *newname);
int nc_del_att(int ncid, int varid, const char *name);
int nc_copy_att(int ncid_in, int varid_in, const char *name, int ncid_out, int varid_out);

int nc_create(const char *path, int cmode, int *ncidp);
int nc_open(const char *path, int omode, int *ncidp);
int nc_create_par(const char *path, int cmode, MPI_Comm comm, MPI_Info info, int *ncidp);
int nc_open_par(const char *path, int omode, MPI_Comm comm, MPI_Info info, int *ncidp);
int nc_var_par_access(int ncid, int varid, int par_access);
int nc_enddef(int ncid);
int nc__enddef(int ncid, size_t h_minfree, size_t v_align, size_t v_minfree, size_t r_align);
int nc_redef(int ncid);
int nc_close(int ncid);
int nc_sync(int ncid);
int nc_abort(int ncid);
int nc_set_fill(int ncid, int fillmode, int *old_modep);
int nc_set_default_format(int format, int *old_formatp);

int nc_def_dim(int ncid, const char *name, size_t len, int *idp);
int nc_def_var(int ncid, const char *name, nc_type xtype, int ndims, const int *dimidsp, int *varidp);
int nc_def_var_fill(int ncid, int varid, int no_fill, const void *fill_value);
int nc_def_var_chunking(int ncid, int varid, int storage, const size_t *chunksizesp);
int nc_def_var_deflate(int ncid, int varid, int shuffle, int deflate, int deflate_level);
int nc_def_var_fletcher32(int ncid, int varid, int fletcher32);
int nc_def_var_endian(int ncid, int varid, int endian);
int nc_def_grp(int ncid, const char *name, int *new_ncid);
int nc_rename_dim(int ncid, int dimid, const char *name);
int nc_rename_var(int ncid, int varid, const char *name);
int nc_rename_grp(int grpid, const char *name);

int nc_inq(int ncid, int *ndimsp, int *nvarsp, int *nattsp, int *unlimdimidp);
int nc_inq_ndims(int ncid, int *ndimsp);
int nc_inq_nvars(int ncid, int *nvarsp);
int nc_inq_unlimdim(int ncid, int *unlimdimidp);
int nc_inq_unlimdims(int ncid, int *nunlimdimsp, int *unlimdimidsp);
int nc_inq_dimid(int ncid, const char *name, int *idp);
int nc_inq_dim(int ncid, int dimid, char *name, size_t *lenp);
int nc_inq_dimname(int ncid, int dimid, char *name);
int nc_inq_dimlen(int ncid, int dimid, size_t *lenp);
int nc_inq_varid(int ncid, const char *name, int *varidp);
int nc_inq_var(int ncid, int varid, char *name, nc_type *xtypep, int *ndimsp, int *dimidsp, int *nattsp);
int nc_inq_varname(int ncid, int varid, char *name);
int nc_inq_vartype(int ncid, int varid, nc_type *xtypep);
int nc_inq_varndims(int ncid, int varid, int *ndimsp);
int nc_inq_vardimid(int ncid, int varid, int *dimidsp);
int nc_inq_varnatts(int ncid, int varid, int *nattsp);
int nc_inq_var_fill(int ncid, int varid, int *no_fill, void *fill_value);
int nc_inq_var_chunking(int ncid, int varid, int *storagep, size_t *chunksizesp);
int nc_inq_var_deflate(int ncid, int varid, int *shufflep, int *deflatep, int *deflate_levelp);
int nc_inq_var_endian(int ncid, int varid, int *endianp);
int nc_inq_format(int ncid, int *formatp);
int nc_inq_format_extended(int ncid, int *formatp, int *modep);
int nc_inq_grps(int ncid, int *numgrps, int *ncids);
int nc_inq_grpname(int ncid, char *name);
int nc_inq_grpname_full(int ncid, size_t *lenp, char *full_name);
int nc_inq_grp_parent(int ncid, int *parent_ncid);
int nc_inq_grp_ncid(int ncid, const char *grp_name, int *grp_ncid);
int nc_inq_ncid(int ncid, const char *name, int *grp_ncid);
int nc_inq_libvers(void);
int nc_inq_path(int ncid, size_t *pathlen, char *path);
int nc_inq_type(int ncid, nc_type xtype, char *name, size_t *size);
const char *nc_strerror(int ncerr);

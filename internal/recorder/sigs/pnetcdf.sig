# library: pnetcdf
# PnetCDF API surface. The var-access API is a generated matrix, exactly as
# in PnetCDF itself (kind x type x blocking x collective); the expansion
# directives below mirror that generation.
expand TYPE: text schar uchar short ushort int uint long float double longlong ulonglong
expand KIND: var var1 vara vars varm varn

# Blocking typed var APIs, independent and collective.
int ncmpi_put_${KIND}_${TYPE}(int ncid, int varid, const void *op);
int ncmpi_put_${KIND}_${TYPE}_all(int ncid, int varid, const void *op);
int ncmpi_get_${KIND}_${TYPE}(int ncid, int varid, void *ip);
int ncmpi_get_${KIND}_${TYPE}_all(int ncid, int varid, void *ip);

# Flexible (MPI-datatype) var APIs.
int ncmpi_put_${KIND}(int ncid, int varid, const void *buf, MPI_Offset bufcount, MPI_Datatype buftype);
int ncmpi_put_${KIND}_all(int ncid, int varid, const void *buf, MPI_Offset bufcount, MPI_Datatype buftype);
int ncmpi_get_${KIND}(int ncid, int varid, void *buf, MPI_Offset bufcount, MPI_Datatype buftype);
int ncmpi_get_${KIND}_all(int ncid, int varid, void *buf, MPI_Offset bufcount, MPI_Datatype buftype);

# Non-blocking typed var APIs (completed by ncmpi_wait / ncmpi_wait_all).
int ncmpi_iput_${KIND}_${TYPE}(int ncid, int varid, const void *op, int *req);
int ncmpi_iget_${KIND}_${TYPE}(int ncid, int varid, void *ip, int *req);
int ncmpi_bput_${KIND}_${TYPE}(int ncid, int varid, const void *op, int *req);

# Non-blocking flexible var APIs.
int ncmpi_iput_${KIND}(int ncid, int varid, const void *buf, MPI_Offset bufcount, MPI_Datatype buftype, int *req);
int ncmpi_iget_${KIND}(int ncid, int varid, void *buf, MPI_Offset bufcount, MPI_Datatype buftype, int *req);
int ncmpi_bput_${KIND}(int ncid, int varid, const void *buf, MPI_Offset bufcount, MPI_Datatype buftype, int *req);

# Attribute APIs.
int ncmpi_put_att_${TYPE}(int ncid, int varid, const char *name, nc_type xtype, MPI_Offset len, const void *op);
int ncmpi_get_att_${TYPE}(int ncid, int varid, const char *name, void *ip);
int ncmpi_put_att(int ncid, int varid, const char *name, nc_type xtype, MPI_Offset len, const void *op);
int ncmpi_get_att(int ncid, int varid, const char *name, void *ip);
int ncmpi_inq_att(int ncid, int varid, const char *name, nc_type *xtypep, MPI_Offset *lenp);
int ncmpi_inq_attid(int ncid, int varid, const char *name, int *idp);
int ncmpi_inq_attname(int ncid, int varid, int attnum, char *name);
int ncmpi_inq_natts(int ncid, int *nattsp);
int ncmpi_rename_att(int ncid, int varid, const char *name, const char *newname);
int ncmpi_del_att(int ncid, int varid, const char *name);
int ncmpi_copy_att(int ncid_in, int varid_in, const char *name, int ncid_out, int varid_out);

# File and define-mode APIs.
int ncmpi_create(MPI_Comm comm, const char *path, int cmode, MPI_Info info, int *ncidp);
int ncmpi_open(MPI_Comm comm, const char *path, int omode, MPI_Info info, int *ncidp);
int ncmpi_enddef(int ncid);
int ncmpi__enddef(int ncid, MPI_Offset h_minfree, MPI_Offset v_align, MPI_Offset v_minfree, MPI_Offset r_align);
int ncmpi_redef(int ncid);
int ncmpi_close(int ncid);
int ncmpi_sync(int ncid);
int ncmpi_sync_numrecs(int ncid);
int ncmpi_abort(int ncid);
int ncmpi_flush(int ncid);
int ncmpi_begin_indep_data(int ncid);
int ncmpi_end_indep_data(int ncid);
int ncmpi_wait(int ncid, int count, int array_of_requests[], int array_of_statuses[]);
int ncmpi_wait_all(int ncid, int count, int array_of_requests[], int array_of_statuses[]);
int ncmpi_cancel(int ncid, int count, int array_of_requests[], int array_of_statuses[]);
int ncmpi_buffer_attach(int ncid, MPI_Offset bufsize);
int ncmpi_buffer_detach(int ncid);
int ncmpi_delete(const char *filename, MPI_Info info);
int ncmpi_set_fill(int ncid, int fillmode, int *old_modep);
int ncmpi_set_default_format(int format, int *old_formatp);
int ncmpi_inq_default_format(int *formatp);

# Dimension and variable definition APIs.
int ncmpi_def_dim(int ncid, const char *name, MPI_Offset len, int *idp);
int ncmpi_def_var(int ncid, const char *name, nc_type xtype, int ndims, const int *dimidsp, int *varidp);
int ncmpi_def_var_fill(int ncid, int varid, int no_fill, const void *fill_value);
int ncmpi_fill_var_rec(int ncid, int varid, MPI_Offset recno);
int ncmpi_rename_dim(int ncid, int dimid, const char *name);
int ncmpi_rename_var(int ncid, int varid, const char *name);

# Inquiry APIs.
int ncmpi_inq(int ncid, int *ndimsp, int *nvarsp, int *nattsp, int *unlimdimidp);
int ncmpi_inq_ndims(int ncid, int *ndimsp);
int ncmpi_inq_nvars(int ncid, int *nvarsp);
int ncmpi_inq_unlimdim(int ncid, int *unlimdimidp);
int ncmpi_inq_dimid(int ncid, const char *name, int *idp);
int ncmpi_inq_dim(int ncid, int dimid, char *name, MPI_Offset *lenp);
int ncmpi_inq_dimname(int ncid, int dimid, char *name);
int ncmpi_inq_dimlen(int ncid, int dimid, MPI_Offset *lenp);
int ncmpi_inq_varid(int ncid, const char *name, int *varidp);
int ncmpi_inq_var(int ncid, int varid, char *name, nc_type *xtypep, int *ndimsp, int *dimidsp, int *nattsp);
int ncmpi_inq_varname(int ncid, int varid, char *name);
int ncmpi_inq_vartype(int ncid, int varid, nc_type *xtypep);
int ncmpi_inq_varndims(int ncid, int varid, int *ndimsp);
int ncmpi_inq_vardimid(int ncid, int varid, int *dimidsp);
int ncmpi_inq_varnatts(int ncid, int varid, int *nattsp);
int ncmpi_inq_var_fill(int ncid, int varid, int *no_fill, void *fill_value);
int ncmpi_inq_format(int ncid, int *formatp);
int ncmpi_inq_file_format(const char *filename, int *formatp);
int ncmpi_inq_version(int ncid, int *nc_mode);
int ncmpi_inq_path(int ncid, int *pathlen, char *path);
int ncmpi_inq_files_opened(int *num, int *ncids);
int ncmpi_inq_libvers(void);
int ncmpi_inq_malloc_size(MPI_Offset *size);
int ncmpi_inq_malloc_max_size(MPI_Offset *size);
int ncmpi_inq_put_size(int ncid, MPI_Offset *size);
int ncmpi_inq_get_size(int ncid, MPI_Offset *size);
int ncmpi_inq_header_size(int ncid, MPI_Offset *size);
int ncmpi_inq_header_extent(int ncid, MPI_Offset *extent);
int ncmpi_inq_striping(int ncid, int *striping_size, int *striping_count);
int ncmpi_inq_nreqs(int ncid, int *nreqs);
int ncmpi_inq_buffer_usage(int ncid, MPI_Offset *usage);
int ncmpi_inq_buffer_size(int ncid, MPI_Offset *buf_size);
int ncmpi_inq_file_info(int ncid, MPI_Info *info_used);
int ncmpi_inq_recsize(int ncid, MPI_Offset *recsize);
const char *ncmpi_strerror(int err);
const char *ncmpi_strerrno(int err);

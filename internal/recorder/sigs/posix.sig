# library: posix
# Core POSIX I/O interface. Both Recorder and Recorder+ intercept these.
int open(const char *pathname, int flags, mode_t mode);
int close(int fd);
ssize_t read(int fd, void *buf, size_t count);
ssize_t write(int fd, const void *buf, size_t count);
ssize_t pread(int fd, void *buf, size_t count, off_t offset);
ssize_t pwrite(int fd, const void *buf, size_t count, off_t offset);
off_t lseek(int fd, off_t offset, int whence);
int fsync(int fd);
int fdatasync(int fd);
int ftruncate(int fd, off_t length);
FILE *fopen(const char *pathname, const char *mode);
int fclose(FILE *stream);
size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);
size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);
int fseek(FILE *stream, long offset, int whence);
long ftell(FILE *stream);
int fflush(FILE *stream);
int unlink(const char *pathname);
int rename(const char *oldpath, const char *newpath);
int stat(const char *pathname, struct stat *statbuf);
int fstat(int fd, struct stat *statbuf);
int access(const char *pathname, int mode);
int mkdir(const char *pathname, mode_t mode);
ssize_t readv(int fd, const struct iovec *iov, int iovcnt);
ssize_t writev(int fd, const struct iovec *iov, int iovcnt);

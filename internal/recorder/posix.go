package recorder

import (
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// Traced POSIX wrappers. Argument layouts are a contract with the conflict
// detector (package conflict); keep the two in sync:
//
//	open      [path, flags, fd]
//	close     [fd]
//	fsync     [fd]
//	read      [fd, count]
//	write     [fd, count]
//	pread     [fd, count, offset]
//	pwrite    [fd, count, offset]
//	lseek     [fd, offset, whence, newpos]
//	ftruncate [fd, size]
//	fopen     [path, mode, stream]
//	fclose    [stream]
//	fread     [stream, size, count]
//	fwrite    [stream, size, count]
//	fseek     [stream, offset, whence, newpos]
//
// Offsets are deliberately NOT recorded for read/write/fread/fwrite — those
// POSIX functions have no offset argument, so the detector must reconstruct
// positions from open/lseek/fseek history exactly as the paper describes
// (§IV-B, the (FP, EOF) tracking).

// Open is the traced open(2).
func (r *Rank) Open(path string, flags posixfs.OpenFlag) (int, error) {
	fd := -1
	var err error
	rerr := r.Record(trace.LayerPOSIX, "open", func() []string {
		return []string{path, flags.String(), itoa(int64(fd))}
	}, func() error {
		fd, err = r.fs.Open(path, flags)
		return err
	})
	_ = rerr
	return fd, err
}

// Close is the traced close(2).
func (r *Rank) Close(fd int) error {
	return r.Record(trace.LayerPOSIX, "close", func() []string {
		return []string{itoa(int64(fd))}
	}, func() error { return r.fs.Close(fd) })
}

// Fsync is the traced fsync(2) — the commit operation under commit
// consistency.
func (r *Rank) Fsync(fd int) error {
	return r.Record(trace.LayerPOSIX, "fsync", func() []string {
		return []string{itoa(int64(fd))}
	}, func() error { return r.fs.Fsync(fd) })
}

// Read is the traced read(2); it returns the bytes read. The recorded
// access size is the requested count — the call argument, which is what the
// tracer captures and the conflict detector consumes (§IV-B) — keeping the
// trace independent of scheduling-dependent short reads.
func (r *Rank) Read(fd int, count int) ([]byte, error) {
	buf := make([]byte, count)
	n := 0
	var err error
	r.Record(trace.LayerPOSIX, "read", func() []string {
		return []string{itoa(int64(fd)), itoa(int64(count))}
	}, func() error {
		n, err = r.fs.Read(fd, buf)
		return err
	})
	return buf[:n], err
}

// Write is the traced write(2).
func (r *Rank) Write(fd int, data []byte) (int, error) {
	n := 0
	var err error
	r.Record(trace.LayerPOSIX, "write", func() []string {
		return []string{itoa(int64(fd)), itoa(int64(len(data)))}
	}, func() error {
		n, err = r.fs.Write(fd, data)
		return err
	})
	return n, err
}

// Pread is the traced pread(2).
func (r *Rank) Pread(fd int, count int, off int64) ([]byte, error) {
	buf := make([]byte, count)
	n := 0
	var err error
	r.Record(trace.LayerPOSIX, "pread", func() []string {
		return []string{itoa(int64(fd)), itoa(int64(count)), itoa(off)}
	}, func() error {
		n, err = r.fs.Pread(fd, buf, off)
		return err
	})
	return buf[:n], err
}

// Pwrite is the traced pwrite(2).
func (r *Rank) Pwrite(fd int, data []byte, off int64) (int, error) {
	n := 0
	var err error
	r.Record(trace.LayerPOSIX, "pwrite", func() []string {
		return []string{itoa(int64(fd)), itoa(int64(len(data))), itoa(off)}
	}, func() error {
		n, err = r.fs.Pwrite(fd, data, off)
		return err
	})
	return n, err
}

// Lseek is the traced lseek(2).
func (r *Rank) Lseek(fd int, off int64, whence int) (int64, error) {
	var pos int64
	var err error
	r.Record(trace.LayerPOSIX, "lseek", func() []string {
		return []string{itoa(int64(fd)), itoa(off), whenceName(whence), itoa(pos)}
	}, func() error {
		pos, err = r.fs.Lseek(fd, off, whence)
		return err
	})
	return pos, err
}

// Ftruncate is the traced ftruncate(2).
func (r *Rank) Ftruncate(fd int, size int64) error {
	return r.Record(trace.LayerPOSIX, "ftruncate", func() []string {
		return []string{itoa(int64(fd)), itoa(size)}
	}, func() error { return r.fs.Ftruncate(fd, size) })
}

// Writev is the traced writev(2): [fd, iovcnt, len1, len2, ...]. The file
// range is contiguous at the current position (vector I/O scatters in
// memory, not in the file).
func (r *Rank) Writev(fd int, bufs [][]byte) (int, error) {
	n := 0
	var err error
	r.Record(trace.LayerPOSIX, "writev", func() []string {
		args := []string{itoa(int64(fd)), itoa(int64(len(bufs)))}
		for _, b := range bufs {
			args = append(args, itoa(int64(len(b))))
		}
		return args
	}, func() error {
		n, err = r.fs.Writev(fd, bufs)
		return err
	})
	return n, err
}

// Readv is the traced readv(2): [fd, iovcnt, len1, len2, ...].
func (r *Rank) Readv(fd int, lens []int) ([]byte, error) {
	var out []byte
	var err error
	r.Record(trace.LayerPOSIX, "readv", func() []string {
		args := []string{itoa(int64(fd)), itoa(int64(len(lens)))}
		for _, n := range lens {
			args = append(args, itoa(int64(n)))
		}
		return args
	}, func() error {
		out, err = r.fs.Readv(fd, lens)
		return err
	})
	return out, err
}

// Unlink is the traced unlink(2). The conflict detector retires the path's
// file identity: accesses to a later file created at the same path are a
// different file and must not be compared against the unlinked one.
func (r *Rank) Unlink(path string) error {
	return r.Record(trace.LayerPOSIX, "unlink", func() []string {
		return []string{path}
	}, func() error { return r.fs.FS().Unlink(path) })
}

// Stat is the traced stat(2); it returns the committed file size.
func (r *Rank) Stat(path string) (int64, error) {
	var size int64
	var err error
	r.Record(trace.LayerPOSIX, "stat", func() []string {
		return []string{path, itoa(size)}
	}, func() error {
		size, err = r.fs.FS().Stat(path)
		return err
	})
	return size, err
}

// Stream is a traced FILE* handle.
type Stream struct {
	r  *Rank
	st *posixfs.Stream
}

// Fopen is the traced fopen(3).
func (r *Rank) Fopen(path, mode string) (*Stream, error) {
	var st *posixfs.Stream
	var err error
	r.Record(trace.LayerPOSIX, "fopen", func() []string {
		id := int64(-1)
		if st != nil {
			id = int64(st.ID())
		}
		return []string{path, mode, itoa(id)}
	}, func() error {
		st, err = r.fs.Fopen(path, mode)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Stream{r: r, st: st}, nil
}

// Fwrite is the traced fwrite(3).
func (s *Stream) Fwrite(data []byte, size, count int) (int, error) {
	n := 0
	var err error
	s.r.Record(trace.LayerPOSIX, "fwrite", func() []string {
		return []string{itoa(int64(s.st.ID())), itoa(int64(size)), itoa(int64(count))}
	}, func() error {
		n, err = s.st.Fwrite(data, size, count)
		return err
	})
	return n, err
}

// Fread is the traced fread(3). The recorded item count is the requested
// count (the call argument), like the other read wrappers.
func (s *Stream) Fread(size, count int) ([]byte, error) {
	buf := make([]byte, size*count)
	n := 0
	var err error
	s.r.Record(trace.LayerPOSIX, "fread", func() []string {
		return []string{itoa(int64(s.st.ID())), itoa(int64(size)), itoa(int64(count))}
	}, func() error {
		n, err = s.st.Fread(buf, size, count)
		return err
	})
	return buf[:n*size], err
}

// Fseek is the traced fseek(3).
func (s *Stream) Fseek(off int64, whence int) error {
	var err error
	s.r.Record(trace.LayerPOSIX, "fseek", func() []string {
		pos := int64(-1)
		if err == nil {
			pos, _ = s.st.Ftell()
		}
		return []string{itoa(int64(s.st.ID())), itoa(off), whenceName(whence), itoa(pos)}
	}, func() error {
		err = s.st.Fseek(off, whence)
		return err
	})
	return err
}

// Fclose is the traced fclose(3).
func (s *Stream) Fclose() error {
	return s.r.Record(trace.LayerPOSIX, "fclose", func() []string {
		return []string{itoa(int64(s.st.ID()))}
	}, func() error { return s.st.Fclose() })
}

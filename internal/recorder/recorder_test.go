package recorder

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func TestSigFileParsing(t *testing.T) {
	sf, err := ParseSigFile(`# library: demo
# a comment
expand T: int float
void demo_put_${T}(const ${T} *v);
int demo_open(const char *path);
int demo_open(const char *path); # duplicate is de-duplicated
`)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Library != "demo" {
		t.Errorf("library = %q", sf.Library)
	}
	want := []string{"demo_put_int", "demo_put_float", "demo_open"}
	if len(sf.Funcs) != len(want) {
		t.Fatalf("funcs = %v, want %v", sf.Funcs, want)
	}
	for i, fn := range want {
		if sf.Funcs[i] != fn {
			t.Errorf("funcs[%d] = %q, want %q", i, sf.Funcs[i], fn)
		}
	}
	if !strings.Contains(sf.Protos["demo_put_float"], "const float *v") {
		t.Errorf("expanded prototype = %q", sf.Protos["demo_put_float"])
	}
}

func TestSigFileErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":   "int f(void);",
		"undefined var":    "# library: x\nint f_${T}(void);",
		"malformed expand": "# library: x\nexpand T int float\nint f(void);",
		"not a prototype":  "# library: x\njust words",
		"empty proto name": "# library: x\n(int x);",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseSigFile(text); err == nil {
				t.Errorf("ParseSigFile accepted %q", text)
			}
		})
	}
}

func TestDefaultRegistryCoverage(t *testing.T) {
	reg := DefaultRegistry()

	libs := reg.Libraries()
	want := []string{"hdf5", "mpi", "netcdf", "pnetcdf", "posix"}
	if fmt.Sprint(libs) != fmt.Sprint(want) {
		t.Fatalf("libraries = %v, want %v", libs, want)
	}

	// Table II shape: legacy supports exactly the 84-function HDF5 subset
	// and nothing from NetCDF/PnetCDF; Recorder+ covers everything, with
	// PnetCDF the largest surface and NetCDF the smallest of the three.
	if got := reg.Count(CoverageLegacy, "hdf5"); got != 84 {
		t.Errorf("legacy hdf5 count = %d, want 84", got)
	}
	if got := reg.Count(CoverageLegacy, "netcdf"); got != 0 {
		t.Errorf("legacy netcdf count = %d, want 0", got)
	}
	if got := reg.Count(CoverageLegacy, "pnetcdf"); got != 0 {
		t.Errorf("legacy pnetcdf count = %d, want 0", got)
	}
	h := reg.Count(CoveragePlus, "hdf5")
	n := reg.Count(CoveragePlus, "netcdf")
	p := reg.Count(CoveragePlus, "pnetcdf")
	if !(p > h && h > n) {
		t.Errorf("coverage shape violated: pnetcdf=%d hdf5=%d netcdf=%d, want pnetcdf > hdf5 > netcdf", p, h, n)
	}
	if h < 300 || n < 150 || p < 500 {
		t.Errorf("coverage magnitudes too small: hdf5=%d netcdf=%d pnetcdf=%d", h, n, p)
	}

	// Functions every layer relies on must be present.
	for _, fn := range []string{
		"pwrite", "fwrite", "lseek", "MPI_Barrier", "MPI_File_write_at",
		"MPI_Testsome", "H5Dwrite", "nc_put_var_schar",
		"ncmpi_put_vara_all", "ncmpi_iput_vara_int", "ncmpi_enddef",
	} {
		if !reg.Supported(CoveragePlus, fn) {
			t.Errorf("Recorder+ does not support %s", fn)
		}
	}
	// Legacy must keep POSIX/MPI but drop the higher libraries.
	for fn, want := range map[string]bool{
		"pwrite":             true,
		"MPI_File_write_at":  true,
		"H5Dwrite":           true,  // in the 84 subset
		"H5Drefresh":         false, // not in the subset
		"nc_put_var_schar":   false,
		"ncmpi_put_vara_all": false,
	} {
		if got := reg.Supported(CoverageLegacy, fn); got != want {
			t.Errorf("legacy Supported(%s) = %v, want %v", fn, got, want)
		}
	}
	if reg.Library("H5Dwrite") != "hdf5" || reg.Library("nope") != "" {
		t.Error("Library lookup wrong")
	}
	if reg.Prototype("pwrite") == "" {
		t.Error("missing prototype for pwrite")
	}
}

func TestTracedPosixCallsProduceRecords(t *testing.T) {
	env := NewEnv(1, Options{FSMode: posixfs.ModePOSIX})
	err := env.Run(func(r *Rank) error {
		fd, err := r.Open("data.bin", posixfs.ORdwr|posixfs.OCreate)
		if err != nil {
			return err
		}
		if _, err := r.Pwrite(fd, []byte("abcd"), 0); err != nil {
			return err
		}
		if _, err := r.Lseek(fd, 1, posixfs.SeekSet); err != nil {
			return err
		}
		if _, err := r.Read(fd, 2); err != nil {
			return err
		}
		return r.Close(fd)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	recs := tr.Ranks[0]
	wantFuncs := []string{"open", "pwrite", "lseek", "read", "close"}
	if len(recs) != len(wantFuncs) {
		t.Fatalf("got %d records, want %d: %v", len(recs), len(wantFuncs), recs)
	}
	for i, fn := range wantFuncs {
		if recs[i].Func != fn {
			t.Errorf("record %d = %s, want %s", i, recs[i].Func, fn)
		}
	}
	// open records [path, flags, fd]; the fd is a post-invocation value.
	if recs[0].Arg(0) != "data.bin" || recs[0].Arg(2) == "-1" {
		t.Errorf("open args = %v", recs[0].Args)
	}
	// read records actual bytes read.
	if got := recs[3].Arg(1); got != "2" {
		t.Errorf("read nread = %s, want 2", got)
	}
	// lseek records the resulting position.
	if recs[2].Arg(2) != "SEEK_SET" || recs[2].Arg(3) != "1" {
		t.Errorf("lseek args = %v", recs[2].Args)
	}
}

func TestTracedMPIRecordsStatusAndRequests(t *testing.T) {
	env := NewEnv(2, Options{FSMode: posixfs.ModePOSIX,
		MPIOptions: []mpi.Option{mpi.WithTimeout(150 * time.Millisecond)}})
	err := env.Run(func(r *Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			req, err := r.Isend(c, 1, 42, []byte("zz"))
			if err != nil {
				return err
			}
			_, err = r.Wait(req)
			return err
		}
		_, st, err := r.Recv(c, -1, -1) // wildcards
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 42 {
			return fmt.Errorf("status %+v", st)
		}
		return r.Barrier(c) // unmatched at runtime is fine; matcher's job
	})
	// Rank 0 never calls Barrier, so rank 1's barrier deadlocks — use a
	// simpler program instead. (Guard: the error must be the deadlock.)
	if err == nil {
		t.Fatal("expected rank 1 barrier to deadlock in this intentionally lopsided program")
	}

	env = NewEnv(2, Options{FSMode: posixfs.ModePOSIX})
	err = env.Run(func(r *Rank) error {
		c := r.Proc().CommWorld()
		if r.Rank() == 0 {
			req, err := r.Isend(c, 1, 42, []byte("zz"))
			if err != nil {
				return err
			}
			_, err = r.Wait(req)
			return err
		}
		_, st, err := r.Recv(c, -1, -1)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 42 {
			return fmt.Errorf("status %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	r0 := tr.Ranks[0]
	if r0[0].Func != "MPI_Isend" || r0[1].Func != "MPI_Wait" {
		t.Fatalf("rank 0 records: %v %v", r0[0].Func, r0[1].Func)
	}
	// The Isend's request id must reappear in the Wait record.
	if r0[0].Arg(4) == "" || r0[0].Arg(4) != r0[1].Arg(0) {
		t.Errorf("request id mismatch: isend %v wait %v", r0[0].Args, r0[1].Args)
	}
	r1 := tr.Ranks[1]
	if r1[0].Func != "MPI_Recv" {
		t.Fatalf("rank 1 record: %v", r1[0].Func)
	}
	// Wildcard receive records requested (-1,-1) and actual (0,42).
	if r1[0].Arg(1) != "-1" || r1[0].Arg(2) != "-1" || r1[0].Arg(4) != "0" || r1[0].Arg(5) != "42" {
		t.Errorf("recv args = %v", r1[0].Args)
	}
}

func TestNestedRecordsCarryCallChain(t *testing.T) {
	env := NewEnv(1, Options{FSMode: posixfs.ModePOSIX})
	err := env.Run(func(r *Rank) error {
		r.SetSite("test.c:10")
		return r.Record(trace.LayerHDF5, "H5Dwrite", nil, func() error {
			return r.Record(trace.LayerMPIIO, "MPI_File_write_at", nil, func() error {
				fd, err := r.Open("f", posixfs.OWronly|posixfs.OCreate)
				if err != nil {
					return err
				}
				_, err = r.Pwrite(fd, []byte("x"), 0)
				return err
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := env.Trace().Ranks[0]
	// Records appear at their return, so innermost first.
	byFunc := map[string]trace.Record{}
	for _, rec := range recs {
		byFunc[rec.Func] = rec
	}
	pw := byFunc["pwrite"]
	if pw.Depth != 2 || len(pw.Chain) != 2 {
		t.Fatalf("pwrite depth=%d chain=%v", pw.Depth, pw.Chain)
	}
	if !strings.Contains(pw.Chain[0], "H5Dwrite") || !strings.Contains(pw.Chain[1], "MPI_File_write_at") {
		t.Errorf("pwrite chain = %v", pw.Chain)
	}
	if !strings.Contains(pw.Chain[0], "test.c:10") {
		t.Errorf("chain missing call site: %v", pw.Chain)
	}
	if byFunc["H5Dwrite"].Depth != 0 {
		t.Errorf("H5Dwrite depth = %d", byFunc["H5Dwrite"].Depth)
	}
}

func TestLegacyCoverageDropsUnsupportedRecords(t *testing.T) {
	prog := func(r *Rank) error {
		if err := r.Record(trace.LayerHDF5, "H5Dwrite", nil, func() error { return nil }); err != nil {
			return err
		}
		// H5Drefresh is outside the 84-function legacy subset.
		if err := r.Record(trace.LayerHDF5, "H5Drefresh", nil, func() error { return nil }); err != nil {
			return err
		}
		// PnetCDF calls are invisible to the legacy Recorder entirely.
		return r.Record(trace.LayerPnetCDF, "ncmpi_put_vara_all", nil, func() error { return nil })
	}
	plus := NewEnv(1, Options{Coverage: CoveragePlus})
	if err := plus.Run(prog); err != nil {
		t.Fatal(err)
	}
	legacy := NewEnv(1, Options{Coverage: CoverageLegacy})
	if err := legacy.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := len(plus.Trace().Ranks[0]); got != 3 {
		t.Errorf("recorder+ records = %d, want 3", got)
	}
	if got := len(legacy.Trace().Ranks[0]); got != 1 {
		t.Errorf("legacy records = %d, want 1", got)
	}
	if legacy.Trace().Ranks[0][0].Func != "H5Dwrite" {
		t.Errorf("legacy kept %s", legacy.Trace().Ranks[0][0].Func)
	}
}

func TestEnvMetaRecordsModeAndTracer(t *testing.T) {
	env := NewEnv(1, Options{FSMode: posixfs.ModeSession, Coverage: CoverageLegacy})
	if err := env.Run(func(r *Rank) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	if tr.Meta["fs.mode"] != "session" || tr.Meta["tracer"] != "recorder" {
		t.Errorf("meta = %v", tr.Meta)
	}
}

func TestParseWhenceRoundTrip(t *testing.T) {
	for _, w := range []int{posixfs.SeekSet, posixfs.SeekCur, posixfs.SeekEnd} {
		got, err := ParseWhence(whenceName(w))
		if err != nil || got != w {
			t.Errorf("ParseWhence(whenceName(%d)) = %d, %v", w, got, err)
		}
	}
	if _, err := ParseWhence("SEEK_BOGUS"); err == nil {
		t.Error("ParseWhence accepted junk")
	}
}

package recorder

import (
	"testing"

	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// BenchmarkRecordOverhead measures the wrapper skeleton itself: prologue,
// body, argument capture, chain snapshot, record append.
func BenchmarkRecordOverhead(b *testing.B) {
	env := NewEnv(1, Options{})
	done := make(chan struct{})
	go func() {
		env.Run(func(r *Rank) error {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Record(trace.LayerPOSIX, "pwrite", func() []string {
					return []string{"3", "8", "0"}
				}, func() error { return nil })
			}
			b.StopTimer()
			return nil
		})
		close(done)
	}()
	<-done
}

// BenchmarkTracedPosixCall measures a full traced pwrite against the
// simulated file system (wrapper + FS work together).
func BenchmarkTracedPosixCall(b *testing.B) {
	env := NewEnv(1, Options{FSMode: posixfs.ModePOSIX})
	done := make(chan struct{})
	go func() {
		env.Run(func(r *Rank) error {
			fd, err := r.Open("bench", posixfs.ORdwr|posixfs.OCreate)
			if err != nil {
				return err
			}
			payload := []byte("12345678")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Pwrite(fd, payload, int64(i%4096)); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		})
		close(done)
	}()
	<-done
}

// BenchmarkRegistryLookup measures the coverage check on the hot wrapper
// path.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := DefaultRegistry()
	fns := []string{"pwrite", "MPI_Barrier", "H5Dwrite", "ncmpi_put_vara_int_all", "unknown_fn"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range fns {
			reg.Supported(CoveragePlus, fn)
			reg.Supported(CoverageLegacy, fn)
		}
	}
}

package recorder

import (
	"bufio"
	"fmt"
	"sort"
	"strings"
)

// Signature files describe the API surface of a library, one C prototype per
// line. cmd/wrappergen turns them into wrapper registrations, mirroring the
// code-generation approach the paper introduces for Recorder⁺ (§IV-A): "a
// code-generation tool that takes a function signature file as input and
// automatically generates wrapper functions for each function in the file".
//
// Because the NetCDF and PnetCDF APIs are themselves macro-generated
// (kind × type × blocking × collective matrices — how PnetCDF reaches 900+
// functions), signature files support the same style of expansion:
//
//	# library: pnetcdf                  -- header, names the library
//	expand TYPE: text schar uchar ...   -- declares an expansion variable
//	int ncmpi_put_var1_${TYPE}_all(...) -- expands to one prototype per value
//
// A line may reference several variables; the cartesian product is emitted.

// SigFile is a parsed signature file.
type SigFile struct {
	// Library is the library name from the "# library:" header.
	Library string
	// Funcs are the expanded function names, in file order,
	// de-duplicated.
	Funcs []string
	// Protos maps each function name to its (expanded) prototype line.
	Protos map[string]string
}

// ParseSigFile parses signature-file text.
func ParseSigFile(text string) (*SigFile, error) {
	sf := &SigFile{Protos: make(map[string]string)}
	vars := make(map[string][]string)
	seen := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# library:"):
			sf.Library = strings.TrimSpace(strings.TrimPrefix(line, "# library:"))
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "expand "):
			name, vals, ok := strings.Cut(strings.TrimPrefix(line, "expand "), ":")
			if !ok {
				return nil, fmt.Errorf("sigfile line %d: malformed expand directive", lineNo)
			}
			vars[strings.TrimSpace(name)] = strings.Fields(vals)
		default:
			expanded, err := expandLine(line, vars)
			if err != nil {
				return nil, fmt.Errorf("sigfile line %d: %w", lineNo, err)
			}
			for _, proto := range expanded {
				fn, err := protoName(proto)
				if err != nil {
					return nil, fmt.Errorf("sigfile line %d: %w", lineNo, err)
				}
				if seen[fn] {
					continue
				}
				seen[fn] = true
				sf.Funcs = append(sf.Funcs, fn)
				sf.Protos[fn] = proto
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sf.Library == "" {
		return nil, fmt.Errorf("sigfile: missing \"# library:\" header")
	}
	return sf, nil
}

// expandLine substitutes every ${VAR} reference, producing the cartesian
// product over the variables used in the line.
func expandLine(line string, vars map[string][]string) ([]string, error) {
	used := usedVars(line)
	if len(used) == 0 {
		return []string{line}, nil
	}
	out := []string{line}
	for _, v := range used {
		vals, ok := vars[v]
		if !ok {
			return nil, fmt.Errorf("undefined expansion variable ${%s}", v)
		}
		var next []string
		for _, l := range out {
			for _, val := range vals {
				next = append(next, strings.ReplaceAll(l, "${"+v+"}", val))
			}
		}
		out = next
	}
	return out, nil
}

// usedVars returns the expansion variables referenced in line, sorted for
// deterministic expansion order.
func usedVars(line string) []string {
	set := make(map[string]bool)
	for rest := line; ; {
		i := strings.Index(rest, "${")
		if i < 0 {
			break
		}
		rest = rest[i+2:]
		j := strings.Index(rest, "}")
		if j < 0 {
			break
		}
		set[rest[:j]] = true
		rest = rest[j+1:]
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// protoName extracts the function name from a C prototype: the identifier
// immediately before the first '('.
func protoName(proto string) (string, error) {
	i := strings.IndexByte(proto, '(')
	if i < 0 {
		return "", fmt.Errorf("not a prototype: %q", proto)
	}
	head := strings.TrimSpace(proto[:i])
	j := strings.LastIndexFunc(head, func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	})
	name := head[j+1:]
	if name == "" {
		return "", fmt.Errorf("no function name in %q", proto)
	}
	return name, nil
}

package recorder

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

//go:embed sigs/*.sig
var sigFS embed.FS

// Registry is the set of functions the tracer can intercept, grouped by
// library. Recorder⁺ builds it from signature files (the same files
// cmd/wrappergen consumes); the legacy Recorder view is the POSIX/MPI core
// plus a fixed 84-function HDF5 subset, reproducing the partial coverage
// column of Table II.
type Registry struct {
	byLib map[string][]string // lib -> function names, file order
	owner map[string]string   // function -> lib
	proto map[string]string   // function -> prototype
	leg   map[string]bool     // legacy HDF5 subset
}

// NewRegistry builds a registry from parsed signature files.
func NewRegistry(files ...*SigFile) (*Registry, error) {
	r := &Registry{
		byLib: make(map[string][]string),
		owner: make(map[string]string),
		proto: make(map[string]string),
		leg:   make(map[string]bool),
	}
	for _, sf := range files {
		if _, dup := r.byLib[sf.Library]; dup {
			return nil, fmt.Errorf("recorder: duplicate signature file for library %q", sf.Library)
		}
		r.byLib[sf.Library] = sf.Funcs
		for _, fn := range sf.Funcs {
			if prev, dup := r.owner[fn]; dup {
				return nil, fmt.Errorf("recorder: function %s declared by both %s and %s", fn, prev, sf.Library)
			}
			r.owner[fn] = sf.Library
			r.proto[fn] = sf.Protos[fn]
		}
	}
	for _, fn := range legacyHDF5 {
		if r.owner[fn] != "hdf5" {
			return nil, fmt.Errorf("recorder: legacy subset entry %s not in the hdf5 signature file", fn)
		}
		r.leg[fn] = true
	}
	return r, nil
}

var (
	defaultReg     *Registry
	defaultRegOnce sync.Once
	defaultRegErr  error
)

// DefaultRegistry parses the embedded signature files. It panics on a
// malformed embedded file — that is a build defect, not a runtime condition.
func DefaultRegistry() *Registry {
	defaultRegOnce.Do(func() {
		var files []*SigFile
		err := fs.WalkDir(sigFS, "sigs", func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, err := sigFS.ReadFile(path)
			if err != nil {
				return err
			}
			sf, err := ParseSigFile(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			files = append(files, sf)
			return nil
		})
		if err != nil {
			defaultRegErr = err
			return
		}
		sort.Slice(files, func(i, j int) bool { return files[i].Library < files[j].Library })
		defaultReg, defaultRegErr = NewRegistry(files...)
	})
	if defaultRegErr != nil {
		panic(fmt.Sprintf("recorder: embedded signature files invalid: %v", defaultRegErr))
	}
	return defaultReg
}

// Supported reports whether fn is intercepted under the given coverage.
func (r *Registry) Supported(cov Coverage, fn string) bool {
	lib, ok := r.owner[fn]
	if !ok {
		return false
	}
	if cov == CoveragePlus {
		return true
	}
	// Legacy Recorder: POSIX, MPI and MPI-IO fully; HDF5 partially; the
	// NetCDF and PnetCDF layers not at all.
	switch lib {
	case "posix", "mpi":
		return true
	case "hdf5":
		return r.leg[fn]
	default:
		return false
	}
}

// Count returns the number of functions a coverage level supports for lib —
// the numbers Table II reports.
func (r *Registry) Count(cov Coverage, lib string) int {
	fns, ok := r.byLib[lib]
	if !ok {
		return 0
	}
	if cov == CoveragePlus {
		return len(fns)
	}
	n := 0
	for _, fn := range fns {
		if r.Supported(CoverageLegacy, fn) {
			n++
		}
	}
	return n
}

// Libraries lists the libraries in the registry, sorted.
func (r *Registry) Libraries() []string {
	out := make([]string, 0, len(r.byLib))
	for lib := range r.byLib {
		out = append(out, lib)
	}
	sort.Strings(out)
	return out
}

// Library returns the library owning fn ("" when unknown).
func (r *Registry) Library(fn string) string { return r.owner[fn] }

// Prototype returns the C prototype recorded for fn ("" when unknown).
func (r *Registry) Prototype(fn string) string { return r.proto[fn] }

// EmbeddedSig returns the raw embedded signature-file text for a library —
// the same input cmd/wrappergen consumes, so codegen and the tracer registry
// can be cross-checked.
func EmbeddedSig(lib string) (string, error) {
	data, err := sigFS.ReadFile("sigs/" + lib + ".sig")
	if err != nil {
		return "", fmt.Errorf("recorder: no embedded signature file for %q: %w", lib, err)
	}
	return string(data), nil
}

// legacyHDF5 is the fixed 84-function HDF5 subset the original Recorder
// supported (Table II's "Recorder / HDF5 = 84" cell).
var legacyHDF5 = []string{
	"H5Fcreate", "H5Fopen", "H5Freopen", "H5Fclose", "H5Fflush",
	"H5Fis_hdf5", "H5Fget_create_plist", "H5Fget_access_plist",
	"H5Fget_name", "H5Fget_filesize",
	"H5Dcreate", "H5Dcreate2", "H5Dopen", "H5Dopen2", "H5Dclose",
	"H5Dread", "H5Dwrite", "H5Dget_space", "H5Dget_type",
	"H5Dget_create_plist", "H5Dset_extent", "H5Dfill",
	"H5Acreate", "H5Acreate2", "H5Aopen", "H5Aopen_by_name", "H5Aclose",
	"H5Aread", "H5Awrite", "H5Adelete", "H5Aexists", "H5Aget_name",
	"H5Aget_space", "H5Aget_type", "H5Aiterate", "H5Arename",
	"H5Screate", "H5Screate_simple", "H5Scopy", "H5Sclose",
	"H5Sselect_hyperslab", "H5Sselect_elements", "H5Sselect_all",
	"H5Sselect_none", "H5Sget_select_npoints", "H5Sget_simple_extent_dims",
	"H5Sget_simple_extent_ndims", "H5Sget_simple_extent_npoints",
	"H5Sset_extent_simple", "H5Sis_simple", "H5Soffset_simple",
	"H5Tcreate", "H5Topen", "H5Tclose", "H5Tcopy", "H5Tequal",
	"H5Tget_class", "H5Tget_size", "H5Tset_size", "H5Tget_order",
	"H5Tset_order", "H5Tinsert", "H5Tget_native_type",
	"H5Gcreate", "H5Gcreate2", "H5Gopen", "H5Gopen2", "H5Gclose",
	"H5Gget_info", "H5Giterate",
	"H5Pcreate", "H5Pclose", "H5Pcopy", "H5Pset_chunk", "H5Pget_chunk",
	"H5Pset_deflate", "H5Pset_fapl_mpio", "H5Pset_dxpl_mpio",
	"H5Pset_fill_value", "H5Pget_fill_value", "H5Pset_layout",
	"H5Pset_alignment",
	"H5open", "H5close",
}

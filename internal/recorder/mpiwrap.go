package recorder

import (
	"strconv"
	"strings"

	"verifyio/internal/sim/mpi"
	"verifyio/internal/trace"
)

// Traced MPI wrappers. Argument layouts are a contract with the MPI matcher
// (package match); keep the two in sync:
//
//	MPI_Send        [comm, dst, tag, count]
//	MPI_Recv        [comm, src, tag, nrecv, actualSrc, actualTag]
//	MPI_Isend       [comm, dst, tag, count, req]
//	MPI_Irecv       [comm, src, tag, req]
//	MPI_Wait        [req, actualSrc, actualTag]
//	MPI_Waitall     [n, req..., (src,tag)...]
//	MPI_Waitany     [n, req..., outIndex, src, tag]
//	MPI_Waitsome    [n, req..., outCount, outIndex..., (src,tag)...]
//	MPI_Test        [req, flag, src, tag]
//	MPI_Testall     [n, req..., flag, (src,tag)...]
//	MPI_Testsome    [n, req..., outCount, outIndex..., (src,tag)...]
//	MPI_Barrier     [comm]
//	MPI_Bcast       [comm, root, count]
//	MPI_Reduce      [comm, root, op]
//	MPI_Allreduce   [comm, op]
//	MPI_Gather      [comm, root]
//	MPI_Allgather   [comm]
//	MPI_Scatter     [comm, root]
//	MPI_Alltoall    [comm]
//	MPI_Ibarrier    [comm, req]
//	MPI_Iallreduce  [comm, op, req]
//	MPI_Comm_dup    [parent, new, members]
//	MPI_Comm_split  [parent, color, key, new, members]
//	MPI_Comm_free   [comm]
//
// Wildcard receives record the requested src/tag (-1) *and* the actual
// values from the returned MPI_Status — the information the paper's matcher
// uses to resolve MPI_ANY_SOURCE / MPI_ANY_TAG offline. Request ids tie
// non-blocking initiations to their completing Wait*/Test* calls.

// Send is the traced MPI_Send.
func (r *Rank) Send(comm *mpi.Comm, dst, tag int, data []byte) error {
	return r.Record(trace.LayerMPI, "MPI_Send", func() []string {
		return []string{comm.GID(), itoa(int64(dst)), itoa(int64(tag)), itoa(int64(len(data)))}
	}, func() error { return r.proc.Send(comm, dst, tag, data) })
}

// Recv is the traced MPI_Recv.
func (r *Rank) Recv(comm *mpi.Comm, src, tag int) ([]byte, mpi.Status, error) {
	var data []byte
	var st mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Recv", func() []string {
		return []string{comm.GID(), itoa(int64(src)), itoa(int64(tag)),
			itoa(int64(len(data))), itoa(int64(st.Source)), itoa(int64(st.Tag))}
	}, func() error {
		data, st, err = r.proc.Recv(comm, src, tag)
		return err
	})
	return data, st, err
}

// Sendrecv is the traced MPI_Sendrecv. The record carries both halves:
// [comm, dst, sendTag, sendCount, src, recvTag, nrecv, actualSrc,
// actualTag]; the matcher treats it as a send event and a receive event.
func (r *Rank) Sendrecv(comm *mpi.Comm, dst, sendTag int, data []byte, src, recvTag int) ([]byte, mpi.Status, error) {
	var out []byte
	var st mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Sendrecv", func() []string {
		return []string{comm.GID(), itoa(int64(dst)), itoa(int64(sendTag)),
			itoa(int64(len(data))), itoa(int64(src)), itoa(int64(recvTag)),
			itoa(int64(len(out))), itoa(int64(st.Source)), itoa(int64(st.Tag))}
	}, func() error {
		out, st, err = r.proc.Sendrecv(comm, dst, sendTag, data, src, recvTag)
		return err
	})
	return out, st, err
}

// Isend is the traced MPI_Isend.
func (r *Rank) Isend(comm *mpi.Comm, dst, tag int, data []byte) (*mpi.Request, error) {
	var req *mpi.Request
	var err error
	r.Record(trace.LayerMPI, "MPI_Isend", func() []string {
		return []string{comm.GID(), itoa(int64(dst)), itoa(int64(tag)),
			itoa(int64(len(data))), reqID(req)}
	}, func() error {
		req, err = r.proc.Isend(comm, dst, tag, data)
		return err
	})
	return req, err
}

// Irecv is the traced MPI_Irecv.
func (r *Rank) Irecv(comm *mpi.Comm, src, tag int) (*mpi.Request, error) {
	var req *mpi.Request
	var err error
	r.Record(trace.LayerMPI, "MPI_Irecv", func() []string {
		return []string{comm.GID(), itoa(int64(src)), itoa(int64(tag)), reqID(req)}
	}, func() error {
		req, err = r.proc.Irecv(comm, src, tag)
		return err
	})
	return req, err
}

// Wait is the traced MPI_Wait.
func (r *Rank) Wait(req *mpi.Request) (mpi.Status, error) {
	var st mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Wait", func() []string {
		return []string{reqID(req), itoa(int64(st.Source)), itoa(int64(st.Tag))}
	}, func() error {
		st, err = r.proc.Wait(req)
		return err
	})
	return st, err
}

// Waitall is the traced MPI_Waitall.
func (r *Rank) Waitall(reqs []*mpi.Request) ([]mpi.Status, error) {
	var sts []mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Waitall", func() []string {
		args := reqListArgs(reqs)
		for _, st := range sts {
			args = append(args, itoa(int64(st.Source)), itoa(int64(st.Tag)))
		}
		return args
	}, func() error {
		sts, err = r.proc.Waitall(reqs)
		return err
	})
	return sts, err
}

// Waitany is the traced MPI_Waitany.
func (r *Rank) Waitany(reqs []*mpi.Request) (int, mpi.Status, error) {
	idx := -1
	var st mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Waitany", func() []string {
		args := reqListArgs(reqs)
		return append(args, itoa(int64(idx)), itoa(int64(st.Source)), itoa(int64(st.Tag)))
	}, func() error {
		idx, st, err = r.proc.Waitany(reqs)
		return err
	})
	return idx, st, err
}

// Waitsome is the traced MPI_Waitsome.
func (r *Rank) Waitsome(reqs []*mpi.Request) ([]int, []mpi.Status, error) {
	var idx []int
	var sts []mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Waitsome", func() []string {
		return completionListArgs(reqs, idx, sts)
	}, func() error {
		idx, sts, err = r.proc.Waitsome(reqs)
		return err
	})
	return idx, sts, err
}

// Test is the traced MPI_Test.
func (r *Rank) Test(req *mpi.Request) (bool, mpi.Status, error) {
	var done bool
	var st mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Test", func() []string {
		return []string{reqID(req), boolArg(done), itoa(int64(st.Source)), itoa(int64(st.Tag))}
	}, func() error {
		done, st, err = r.proc.Test(req)
		return err
	})
	return done, st, err
}

// Testall is the traced MPI_Testall.
func (r *Rank) Testall(reqs []*mpi.Request) (bool, []mpi.Status, error) {
	var done bool
	var sts []mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Testall", func() []string {
		args := append(reqListArgs(reqs), boolArg(done))
		for _, st := range sts {
			args = append(args, itoa(int64(st.Source)), itoa(int64(st.Tag)))
		}
		return args
	}, func() error {
		done, sts, err = r.proc.Testall(reqs)
		return err
	})
	return done, sts, err
}

// Testsome is the traced MPI_Testsome.
func (r *Rank) Testsome(reqs []*mpi.Request) ([]int, []mpi.Status, error) {
	var idx []int
	var sts []mpi.Status
	var err error
	r.Record(trace.LayerMPI, "MPI_Testsome", func() []string {
		return completionListArgs(reqs, idx, sts)
	}, func() error {
		idx, sts, err = r.proc.Testsome(reqs)
		return err
	})
	return idx, sts, err
}

// Barrier is the traced MPI_Barrier.
func (r *Rank) Barrier(comm *mpi.Comm) error {
	return r.Record(trace.LayerMPI, "MPI_Barrier", func() []string {
		return []string{comm.GID()}
	}, func() error { return r.proc.Barrier(comm) })
}

// Bcast is the traced MPI_Bcast.
func (r *Rank) Bcast(comm *mpi.Comm, root int, data []byte) ([]byte, error) {
	var out []byte
	var err error
	r.Record(trace.LayerMPI, "MPI_Bcast", func() []string {
		return []string{comm.GID(), itoa(int64(root)), itoa(int64(len(out)))}
	}, func() error {
		out, err = r.proc.Bcast(comm, root, data)
		return err
	})
	return out, err
}

// Reduce is the traced MPI_Reduce.
func (r *Rank) Reduce(comm *mpi.Comm, root int, val int64, op mpi.Op) (int64, error) {
	var out int64
	var err error
	r.Record(trace.LayerMPI, "MPI_Reduce", func() []string {
		return []string{comm.GID(), itoa(int64(root)), op.String()}
	}, func() error {
		out, err = r.proc.Reduce(comm, root, val, op)
		return err
	})
	return out, err
}

// Allreduce is the traced MPI_Allreduce.
func (r *Rank) Allreduce(comm *mpi.Comm, val int64, op mpi.Op) (int64, error) {
	var out int64
	var err error
	r.Record(trace.LayerMPI, "MPI_Allreduce", func() []string {
		return []string{comm.GID(), op.String()}
	}, func() error {
		out, err = r.proc.Allreduce(comm, val, op)
		return err
	})
	return out, err
}

// Scan is the traced MPI_Scan (inclusive prefix reduction).
func (r *Rank) Scan(comm *mpi.Comm, val int64, op mpi.Op) (int64, error) {
	var out int64
	var err error
	r.Record(trace.LayerMPI, "MPI_Scan", func() []string {
		return []string{comm.GID(), op.String()}
	}, func() error {
		out, err = r.proc.Scan(comm, val, op)
		return err
	})
	return out, err
}

// Exscan is the traced MPI_Exscan (exclusive prefix reduction).
func (r *Rank) Exscan(comm *mpi.Comm, val int64, op mpi.Op) (int64, error) {
	var out int64
	var err error
	r.Record(trace.LayerMPI, "MPI_Exscan", func() []string {
		return []string{comm.GID(), op.String()}
	}, func() error {
		out, err = r.proc.Exscan(comm, val, op)
		return err
	})
	return out, err
}

// Gather is the traced MPI_Gather.
func (r *Rank) Gather(comm *mpi.Comm, root int, data []byte) ([][]byte, error) {
	var out [][]byte
	var err error
	r.Record(trace.LayerMPI, "MPI_Gather", func() []string {
		return []string{comm.GID(), itoa(int64(root))}
	}, func() error {
		out, err = r.proc.Gather(comm, root, data)
		return err
	})
	return out, err
}

// Allgather is the traced MPI_Allgather.
func (r *Rank) Allgather(comm *mpi.Comm, data []byte) ([][]byte, error) {
	var out [][]byte
	var err error
	r.Record(trace.LayerMPI, "MPI_Allgather", func() []string {
		return []string{comm.GID()}
	}, func() error {
		out, err = r.proc.Allgather(comm, data)
		return err
	})
	return out, err
}

// Scatter is the traced MPI_Scatter.
func (r *Rank) Scatter(comm *mpi.Comm, root int, parts [][]byte) ([]byte, error) {
	var out []byte
	var err error
	r.Record(trace.LayerMPI, "MPI_Scatter", func() []string {
		return []string{comm.GID(), itoa(int64(root))}
	}, func() error {
		out, err = r.proc.Scatter(comm, root, parts)
		return err
	})
	return out, err
}

// Alltoall is the traced MPI_Alltoall.
func (r *Rank) Alltoall(comm *mpi.Comm, parts [][]byte) ([][]byte, error) {
	var out [][]byte
	var err error
	r.Record(trace.LayerMPI, "MPI_Alltoall", func() []string {
		return []string{comm.GID()}
	}, func() error {
		out, err = r.proc.Alltoall(comm, parts)
		return err
	})
	return out, err
}

// Ibarrier is the traced MPI_Ibarrier.
func (r *Rank) Ibarrier(comm *mpi.Comm) (*mpi.Request, error) {
	var req *mpi.Request
	var err error
	r.Record(trace.LayerMPI, "MPI_Ibarrier", func() []string {
		return []string{comm.GID(), reqID(req)}
	}, func() error {
		req, err = r.proc.Ibarrier(comm)
		return err
	})
	return req, err
}

// Iallreduce is the traced MPI_Iallreduce.
func (r *Rank) Iallreduce(comm *mpi.Comm, val int64, op mpi.Op) (*mpi.Request, error) {
	var req *mpi.Request
	var err error
	r.Record(trace.LayerMPI, "MPI_Iallreduce", func() []string {
		return []string{comm.GID(), op.String(), reqID(req)}
	}, func() error {
		req, err = r.proc.Iallreduce(comm, val, op)
		return err
	})
	return req, err
}

// CommDup is the traced MPI_Comm_dup. The new communicator's globally unique
// id and membership are recorded at creation time, which is how the offline
// matcher pairs collectives on user-created communicators (§IV-C).
func (r *Rank) CommDup(comm *mpi.Comm) (*mpi.Comm, error) {
	var nc *mpi.Comm
	var err error
	r.Record(trace.LayerMPI, "MPI_Comm_dup", func() []string {
		return []string{comm.GID(), commGID(nc), commMembers(nc)}
	}, func() error {
		nc, err = r.proc.CommDup(comm)
		return err
	})
	return nc, err
}

// CommSplit is the traced MPI_Comm_split.
func (r *Rank) CommSplit(comm *mpi.Comm, color, key int) (*mpi.Comm, error) {
	var nc *mpi.Comm
	var err error
	r.Record(trace.LayerMPI, "MPI_Comm_split", func() []string {
		return []string{comm.GID(), itoa(int64(color)), itoa(int64(key)), commGID(nc), commMembers(nc)}
	}, func() error {
		nc, err = r.proc.CommSplit(comm, color, key)
		return err
	})
	return nc, err
}

// CommFree is the traced MPI_Comm_free.
func (r *Rank) CommFree(comm *mpi.Comm) error {
	gid := comm.GID()
	return r.Record(trace.LayerMPI, "MPI_Comm_free", func() []string {
		return []string{gid}
	}, func() error { return r.proc.CommFree(comm) })
}

func reqID(req *mpi.Request) string {
	if req == nil {
		return "req-nil"
	}
	return req.ID()
}

func boolArg(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func reqListArgs(reqs []*mpi.Request) []string {
	args := []string{itoa(int64(len(reqs)))}
	for _, req := range reqs {
		args = append(args, reqID(req))
	}
	return args
}

func completionListArgs(reqs []*mpi.Request, idx []int, sts []mpi.Status) []string {
	args := append(reqListArgs(reqs), itoa(int64(len(idx))))
	for _, i := range idx {
		args = append(args, itoa(int64(i)))
	}
	for _, st := range sts {
		args = append(args, itoa(int64(st.Source)), itoa(int64(st.Tag)))
	}
	return args
}

func commGID(c *mpi.Comm) string {
	if c == nil {
		return "comm-nil"
	}
	return c.GID()
}

func commMembers(c *mpi.Comm) string {
	if c == nil {
		return ""
	}
	parts := make([]string, len(c.Members()))
	for i, m := range c.Members() {
		parts[i] = strconv.Itoa(m)
	}
	return strings.Join(parts, ",")
}

// Package mpi implements a simulated MPI runtime: ranks are goroutines in
// one process, exchanging messages through an in-memory router.
//
// The VerifyIO workflow never links against MPI — it consumes *traces of MPI
// calls*. What matters is that programs written against this package issue
// exactly the call/argument streams a real MPI program would, including the
// cases the paper singles out as hard to match offline (§IV-C):
//
//   - point-to-point sends and receives with tag matching and the
//     MPI_ANY_SOURCE / MPI_ANY_TAG wildcards, whose actual source and tag
//     are only available from the returned MPI_Status;
//   - non-blocking operations (Isend/Irecv and non-blocking collectives)
//     that complete through Wait/Waitall/Waitany/Waitsome/Test/Testall/
//     Testsome, identified by request ids;
//   - collectives matched per communicator in program order, over
//     user-created communicators (Comm_dup / Comm_split) that need globally
//     unique identifiers.
//
// Message matching follows the MPI non-overtaking rule: two messages from
// the same sender to the same receiver on the same communicator with
// matching tags are received in the order they were sent. Standard-mode
// sends are modelled as buffered (they never block), which is a legal MPI
// implementation choice and keeps simulated programs deadlock-free as long
// as every receive has a matching send.
//
// A World-level deadline converts genuinely unmatched communication
// (deadlock) into an error instead of a hung test.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv/Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrDeadlock is returned when a blocking operation cannot complete before
// the world's deadline — the simulated equivalent of a hung MPI job.
var ErrDeadlock = errors.New("mpi: deadlock (blocking operation timed out)")

// ErrFreed is returned when a communicator is used after Comm_free.
var ErrFreed = errors.New("mpi: communicator has been freed")

// World owns a simulated MPI job: the ranks, the message router, and the
// collective rendezvous state.
type World struct {
	n       int
	timeout time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	mail     map[mailKey][]*envelope
	colls    map[collKey]*collSlot
	commSeq  int
	stopped  bool
	stopPing chan struct{}
}

type mailKey struct {
	comm string
	dst  int // world rank of the receiver
}

type envelope struct {
	src  int // communicator rank of the sender
	tag  int
	data []byte
	seq  int // send order, for the non-overtaking rule
}

type collKey struct {
	comm string
	slot int
}

type collSlot struct {
	arrived int
	expect  int
	op      map[int]string // comm rank -> collective name called
	data    map[int][]byte // comm rank -> contribution
	parts   map[int][][]byte
	done    bool
	// colors carries Comm_split colors/keys so every member can compute
	// the same deterministic split.
	colors map[int][2]int
}

// Option configures a World.
type Option func(*World)

// WithTimeout overrides the deadlock deadline (default 10s).
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// NewWorld creates a simulated MPI job with n ranks.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", n))
	}
	w := &World{
		n:        n,
		timeout:  10 * time.Second,
		mail:     make(map[mailKey][]*envelope),
		colls:    make(map[collKey]*collSlot),
		stopPing: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(w)
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.n }

// Run executes prog once per rank, each in its own goroutine, and waits for
// all of them. It returns the first non-nil error any rank produced (rank
// order breaks ties). Panics in rank goroutines are converted to errors so a
// buggy simulated program fails its test instead of crashing the run.
func (w *World) Run(prog func(p *Proc) error) error {
	// Wake blocked ranks periodically so deadline checks make progress.
	ticker := time.NewTicker(5 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ticker.C:
				w.cond.Broadcast()
			case <-done:
				return
			}
		}
	}()
	defer func() {
		ticker.Stop()
		close(done)
	}()

	errs := make([]error, w.n)
	var wg sync.WaitGroup
	for rank := 0; rank < w.n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
			}()
			p := w.Proc(rank)
			errs[rank] = prog(p)
		}(rank)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Proc returns the per-rank handle. Normally Run hands these out; direct use
// is for tests that drive ranks manually.
func (w *World) Proc(rank int) *Proc {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Proc{
		world: w,
		rank:  rank,
		comm:  worldComm(w.n),
		reqs:  make(map[string]*Request),
		collC: make(map[string]int),
	}
}

// deadline returns the absolute deadline for a blocking operation starting
// now.
func (w *World) deadline() time.Time { return time.Now().Add(w.timeout) }

// waitLocked blocks on the world condition variable until pred holds or the
// deadline passes. Callers must hold w.mu.
func (w *World) waitLocked(pred func() bool, deadline time.Time) error {
	for !pred() {
		if time.Now().After(deadline) {
			return ErrDeadlock
		}
		w.cond.Wait()
	}
	return nil
}

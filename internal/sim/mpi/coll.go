package mpi

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// slotIndexed is the completed rendezvous state handed back to collective
// implementations.
type completedSlot struct {
	slotIndex int
	op        map[int]string
	data      map[int][]byte
	parts     map[int][][]byte
	colors    map[int][2]int
}

// collective performs the rendezvous for this rank's next collective call on
// comm. All members of comm meet at the same slot index; the k-th collective
// call on a communicator matches the k-th call on every other member — the
// matching rule the paper uses offline. The call's name is recorded in the
// slot so tests can observe runtime-tolerated mismatches (which VerifyIO
// detects offline, cf. §V-D's collective_error).
func (p *Proc) collective(comm *Comm, name string, me int, contrib []byte, parts [][]byte, colorKey *[2]int) (*completedSlot, error) {
	slotIdx := p.collC[comm.gid]
	p.collC[comm.gid] = slotIdx + 1

	w := p.world
	w.mu.Lock()
	defer w.mu.Unlock()
	key := collKey{comm: comm.gid, slot: slotIdx}
	s, ok := w.colls[key]
	if !ok {
		s = &collSlot{
			expect: comm.Size(),
			op:     make(map[int]string),
			data:   make(map[int][]byte),
			parts:  make(map[int][][]byte),
			colors: make(map[int][2]int),
		}
		w.colls[key] = s
	}
	if _, dup := s.op[me]; dup {
		return nil, fmt.Errorf("mpi: rank %d arrived twice at collective slot %d on %s", me, slotIdx, comm.gid)
	}
	s.op[me] = name
	if contrib != nil {
		cp := make([]byte, len(contrib))
		copy(cp, contrib)
		s.data[me] = cp
	}
	if parts != nil {
		cps := make([][]byte, len(parts))
		for i, part := range parts {
			cps[i] = make([]byte, len(part))
			copy(cps[i], part)
		}
		s.parts[me] = cps
	}
	if colorKey != nil {
		s.colors[me] = *colorKey
	}
	s.arrived++
	if s.arrived == s.expect {
		s.done = true
		w.cond.Broadcast()
	} else {
		deadline := w.deadline()
		if err := w.waitLocked(func() bool { return s.done }, deadline); err != nil {
			return nil, fmt.Errorf("%w: rank %d in collective %s slot %d on %s (%d/%d arrived)",
				ErrDeadlock, p.rank, name, slotIdx, comm.gid, s.arrived, s.expect)
		}
	}
	return &completedSlot{slotIndex: slotIdx, op: s.op, data: s.data, parts: s.parts, colors: s.colors}, nil
}

// Barrier blocks until every member of comm reaches it.
func (p *Proc) Barrier(comm *Comm) error {
	me, err := comm.check(p.rank)
	if err != nil {
		return err
	}
	_, err = p.collective(comm, "MPI_Barrier", me, nil, nil, nil)
	return err
}

// Bcast broadcasts root's data to every member and returns it.
func (p *Proc) Bcast(comm *Comm, root int, data []byte) ([]byte, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	var contrib []byte
	if me == root {
		contrib = data
		if contrib == nil {
			contrib = []byte{}
		}
	}
	s, err := p.collective(comm, "MPI_Bcast", me, contrib, nil, nil)
	if err != nil {
		return nil, err
	}
	out, ok := s.data[root]
	if !ok {
		return nil, fmt.Errorf("mpi: Bcast root %d contributed no data on %s", root, comm.gid)
	}
	return out, nil
}

// Reduce combines every member's value with op; the result is significant
// only at root (other ranks receive the combined value too, which is a
// harmless strengthening).
func (p *Proc) Reduce(comm *Comm, root int, val int64, op Op) (int64, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return 0, err
	}
	s, err := p.collective(comm, "MPI_Reduce", me, encodeInt64(val), nil, nil)
	if err != nil {
		return 0, err
	}
	return reduceSlot(s, comm, op)
}

// Allreduce combines every member's value with op and returns the result on
// all ranks.
func (p *Proc) Allreduce(comm *Comm, val int64, op Op) (int64, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return 0, err
	}
	s, err := p.collective(comm, "MPI_Allreduce", me, encodeInt64(val), nil, nil)
	if err != nil {
		return 0, err
	}
	return reduceSlot(s, comm, op)
}

// Gather collects every member's data; the result (indexed by communicator
// rank) is significant at root.
func (p *Proc) Gather(comm *Comm, root int, data []byte) ([][]byte, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	if data == nil {
		data = []byte{}
	}
	s, err := p.collective(comm, "MPI_Gather", me, data, nil, nil)
	if err != nil {
		return nil, err
	}
	if me != root {
		return nil, nil
	}
	return gatherSlot(s, comm)
}

// Allgather collects every member's data on all ranks.
func (p *Proc) Allgather(comm *Comm, data []byte) ([][]byte, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	if data == nil {
		data = []byte{}
	}
	s, err := p.collective(comm, "MPI_Allgather", me, data, nil, nil)
	if err != nil {
		return nil, err
	}
	return gatherSlot(s, comm)
}

// Scatter distributes root's parts (one per communicator rank); each rank
// receives its own part.
func (p *Proc) Scatter(comm *Comm, root int, parts [][]byte) ([]byte, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	if me == root && len(parts) != comm.Size() {
		return nil, fmt.Errorf("mpi: Scatter root supplied %d parts for %d ranks", len(parts), comm.Size())
	}
	var send [][]byte
	if me == root {
		send = parts
	}
	s, err := p.collective(comm, "MPI_Scatter", me, nil, send, nil)
	if err != nil {
		return nil, err
	}
	rp, ok := s.parts[root]
	if !ok || len(rp) != comm.Size() {
		return nil, fmt.Errorf("mpi: Scatter root %d contributed no parts on %s", root, comm.gid)
	}
	return rp[me], nil
}

// Alltoall exchanges parts: rank i's parts[j] is delivered to rank j, and
// rank i receives [from0, from1, ...].
func (p *Proc) Alltoall(comm *Comm, parts [][]byte) ([][]byte, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	if len(parts) != comm.Size() {
		return nil, fmt.Errorf("mpi: Alltoall supplied %d parts for %d ranks", len(parts), comm.Size())
	}
	s, err := p.collective(comm, "MPI_Alltoall", me, nil, parts, nil)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, comm.Size())
	for j := 0; j < comm.Size(); j++ {
		jp, ok := s.parts[j]
		if !ok || len(jp) != comm.Size() {
			return nil, fmt.Errorf("mpi: Alltoall rank %d contributed %d parts on %s", j, len(jp), comm.gid)
		}
		out[j] = jp[me]
	}
	return out, nil
}

// Scan computes an inclusive prefix reduction: rank i receives the
// combination of ranks 0..i's values.
func (p *Proc) Scan(comm *Comm, val int64, op Op) (int64, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return 0, err
	}
	s, err := p.collective(comm, "MPI_Scan", me, encodeInt64(val), nil, nil)
	if err != nil {
		return 0, err
	}
	return prefixSlot(s, me, op, true)
}

// Exscan computes an exclusive prefix reduction: rank i receives the
// combination of ranks 0..i-1's values (undefined — zero here — at rank 0).
func (p *Proc) Exscan(comm *Comm, val int64, op Op) (int64, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return 0, err
	}
	s, err := p.collective(comm, "MPI_Exscan", me, encodeInt64(val), nil, nil)
	if err != nil {
		return 0, err
	}
	return prefixSlot(s, me, op, false)
}

func prefixSlot(s *completedSlot, me int, op Op, inclusive bool) (int64, error) {
	var acc int64
	first := true
	hi := me
	if !inclusive {
		hi = me - 1
	}
	for r := 0; r <= hi; r++ {
		b, ok := s.data[r]
		if !ok {
			continue
		}
		v := decodeInt64(b)
		if first {
			acc, first = v, false
		} else {
			acc = op.apply(acc, v)
		}
	}
	return acc, nil
}

// Ibarrier starts a non-blocking barrier: the slot is claimed now (so the
// collective matches in program order) but the rendezvous happens when the
// request is waited on.
func (p *Proc) Ibarrier(comm *Comm) (*Request, error) {
	return p.icollective(comm, "MPI_Ibarrier", nil)
}

// Iallreduce starts a non-blocking allreduce; the combined value is
// available from the request's Data after completion.
func (p *Proc) Iallreduce(comm *Comm, val int64, op Op) (*Request, error) {
	return p.icollective(comm, "MPI_Iallreduce", func(s *completedSlot) ([]byte, error) {
		v, err := reduceSlot(s, comm, op)
		if err != nil {
			return nil, err
		}
		return encodeInt64(v), nil
	}, encodeInt64(val)...)
}

func (p *Proc) icollective(comm *Comm, name string, result func(*completedSlot) ([]byte, error), contrib ...byte) (*Request, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	// Claim the slot index now so program order determines matching even
	// if ranks Wait in different relative orders.
	slotIdx := p.collC[comm.gid]
	p.collC[comm.gid] = slotIdx + 1

	req := p.newRequest("icoll")
	started := false
	req.complete = func(_ time.Time, block bool) (bool, error) {
		if !block && !started {
			// Peek: only complete without blocking if all peers arrived.
			w := p.world
			w.mu.Lock()
			s, ok := w.colls[collKey{comm: comm.gid, slot: slotIdx}]
			ready := ok && s.arrived == s.expect-1
			w.mu.Unlock()
			if !ready {
				return false, nil
			}
		}
		started = true
		// Rendezvous directly at the claimed slot.
		s, err := p.rendezvousAt(comm, name, me, slotIdx, contrib)
		if err != nil {
			return false, err
		}
		if result != nil {
			buf, err := result(s)
			if err != nil {
				return false, err
			}
			req.buf = buf
		}
		req.done = true
		return true, nil
	}
	return req, nil
}

// rendezvousAt is collective() with an explicit slot index (used by the
// non-blocking collectives, which claim their slot at initiation time).
func (p *Proc) rendezvousAt(comm *Comm, name string, me, slotIdx int, contrib []byte) (*completedSlot, error) {
	w := p.world
	w.mu.Lock()
	defer w.mu.Unlock()
	key := collKey{comm: comm.gid, slot: slotIdx}
	s, ok := w.colls[key]
	if !ok {
		s = &collSlot{
			expect: comm.Size(),
			op:     make(map[int]string),
			data:   make(map[int][]byte),
			parts:  make(map[int][][]byte),
			colors: make(map[int][2]int),
		}
		w.colls[key] = s
	}
	if _, dup := s.op[me]; dup {
		return nil, fmt.Errorf("mpi: rank %d arrived twice at collective slot %d on %s", me, slotIdx, comm.gid)
	}
	s.op[me] = name
	if contrib != nil {
		s.data[me] = contrib
	}
	s.arrived++
	if s.arrived == s.expect {
		s.done = true
		w.cond.Broadcast()
	} else if err := w.waitLocked(func() bool { return s.done }, w.deadline()); err != nil {
		return nil, fmt.Errorf("%w: rank %d in %s slot %d on %s", ErrDeadlock, p.rank, name, slotIdx, comm.gid)
	}
	return &completedSlot{slotIndex: slotIdx, op: s.op, data: s.data, parts: s.parts, colors: s.colors}, nil
}

func reduceSlot(s *completedSlot, comm *Comm, op Op) (int64, error) {
	// Ranks that reached this slot through a mismatched collective (a bug
	// the runtime tolerates and the offline matcher flags, §V-D) have no
	// contribution; their values are simply absent from the reduction.
	var acc int64
	first := true
	for r := 0; r < comm.Size(); r++ {
		b, ok := s.data[r]
		if !ok {
			continue
		}
		v := decodeInt64(b)
		if first {
			acc, first = v, false
		} else {
			acc = op.apply(acc, v)
		}
	}
	return acc, nil
}

func gatherSlot(s *completedSlot, comm *Comm) ([][]byte, error) {
	out := make([][]byte, comm.Size())
	for r := 0; r < comm.Size(); r++ {
		b, ok := s.data[r]
		if !ok {
			return nil, fmt.Errorf("mpi: gather missing contribution from rank %d on %s", r, comm.gid)
		}
		out[r] = b
	}
	return out, nil
}

func encodeInt64(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeInt64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

package mpi

import (
	"fmt"
	"time"
)

// Proc is one rank's handle to the simulated MPI job. A Proc must be used
// only from its own goroutine, like a real MPI process.
type Proc struct {
	world   *World
	rank    int
	comm    *Comm
	reqs    map[string]*Request
	nextReq int
	sendSeq int
	collC   map[string]int // per-communicator collective-slot counter
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.n }

// CommWorld returns MPI_COMM_WORLD.
func (p *Proc) CommWorld() *Comm { return p.comm }

// Status mirrors MPI_Status: the actual source (communicator rank) and tag
// of a received message. The tracer records it so the offline matcher can
// resolve wildcard receives, exactly as the paper describes.
type Status struct {
	Source int
	Tag    int
}

// Send performs a standard-mode send, modelled as buffered: it enqueues the
// message and returns. dst is a communicator rank.
func (p *Proc) Send(comm *Comm, dst, tag int, data []byte) error {
	me, err := comm.check(p.rank)
	if err != nil {
		return err
	}
	if dst < 0 || dst >= comm.Size() {
		return fmt.Errorf("mpi: send to invalid rank %d on %s", dst, comm.gid)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: send with invalid tag %d", tag)
	}
	w := p.world
	w.mu.Lock()
	defer w.mu.Unlock()
	p.sendSeq++
	cp := make([]byte, len(data))
	copy(cp, data)
	key := mailKey{comm: comm.gid, dst: comm.members[dst]}
	w.mail[key] = append(w.mail[key], &envelope{src: me, tag: tag, data: cp, seq: p.sendSeq})
	w.cond.Broadcast()
	return nil
}

// Recv blocks until a message matching (src, tag) arrives on comm. src may
// be AnySource and tag may be AnyTag; the returned Status carries the actual
// values.
func (p *Proc) Recv(comm *Comm, src, tag int) ([]byte, Status, error) {
	req, err := p.Irecv(comm, src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	st, err := p.Wait(req)
	if err != nil {
		return nil, Status{}, err
	}
	return req.buf, st, nil
}

// Sendrecv performs MPI_Sendrecv: a combined send to dst and receive from
// src (each with its own tag), deadlock-free by construction under the
// buffered send model.
func (p *Proc) Sendrecv(comm *Comm, dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	if err := p.Send(comm, dst, sendTag, data); err != nil {
		return nil, Status{}, err
	}
	return p.Recv(comm, src, recvTag)
}

// Isend starts a non-blocking send. Under the buffered model the message
// departs immediately, so the request is born complete — but callers must
// still Wait/Test it, and the tracer records both ends, which is what the
// offline matcher consumes.
func (p *Proc) Isend(comm *Comm, dst, tag int, data []byte) (*Request, error) {
	if err := p.Send(comm, dst, tag, data); err != nil {
		return nil, err
	}
	req := p.newRequest("isend")
	req.done = true
	return req, nil
}

// Irecv posts a non-blocking receive. The message is matched when the
// request completes through Wait/Test and friends.
func (p *Proc) Irecv(comm *Comm, src, tag int) (*Request, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	if src != AnySource && (src < 0 || src >= comm.Size()) {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d on %s", src, comm.gid)
	}
	req := p.newRequest("irecv")
	req.comm, req.src, req.tag, req.me = comm, src, tag, me
	return req, nil
}

// Request identifies an outstanding non-blocking operation. The tracer
// records its ID at the initiating call and again at the completing
// Wait/Test call, which is how the matcher ties the two together.
type Request struct {
	id   string
	kind string // isend, irecv, icoll

	done   bool
	status Status
	buf    []byte

	// irecv matching state.
	comm     *Comm
	src, tag int
	me       int

	// icoll completion closure (runs the rendezvous at Wait time).
	complete func(deadline time.Time, block bool) (bool, error)
}

// ID returns the request's per-rank unique identifier.
func (r *Request) ID() string { return r.id }

// Kind reports the operation kind ("isend", "irecv", "icoll").
func (r *Request) Kind() string { return r.kind }

// Data returns the received payload of a completed receive request.
func (r *Request) Data() []byte { return r.buf }

func (p *Proc) newRequest(kind string) *Request {
	id := fmt.Sprintf("req-%d.%d", p.rank, p.nextReq)
	p.nextReq++
	req := &Request{id: id, kind: kind}
	p.reqs[id] = req
	return req
}

// tryComplete attempts to finish req. With block set it waits (up to the
// world deadline); otherwise it polls once. Callers must NOT hold w.mu.
func (p *Proc) tryComplete(req *Request, block bool) (bool, error) {
	if req.done {
		return true, nil
	}
	switch req.kind {
	case "irecv":
		return p.tryRecv(req, block)
	case "icoll":
		return req.complete(p.world.deadline(), block)
	default:
		return true, nil
	}
}

func (p *Proc) tryRecv(req *Request, block bool) (bool, error) {
	w := p.world
	w.mu.Lock()
	defer w.mu.Unlock()
	key := mailKey{comm: req.comm.gid, dst: p.rank}
	match := func() *envelope {
		q := w.mail[key]
		bestIdx := -1
		for i, env := range q {
			if req.src != AnySource && env.src != req.src {
				continue
			}
			if req.tag != AnyTag && env.tag != req.tag {
				continue
			}
			// Non-overtaking: earliest matching send wins. Envelope
			// order in the queue is arrival order, which preserves
			// per-sender send order.
			bestIdx = i
			break
		}
		if bestIdx < 0 {
			return nil
		}
		env := q[bestIdx]
		w.mail[key] = append(q[:bestIdx], q[bestIdx+1:]...)
		return env
	}
	finish := func(env *envelope) {
		req.done = true
		req.buf = env.data
		req.status = Status{Source: env.src, Tag: env.tag}
	}
	if env := match(); env != nil {
		finish(env)
		return true, nil
	}
	if !block {
		return false, nil
	}
	deadline := w.deadline()
	for {
		if err := w.waitLocked(func() bool { return len(w.mail[key]) > 0 }, deadline); err != nil {
			return false, fmt.Errorf("%w: rank %d waiting for recv(src=%d, tag=%d) on %s",
				ErrDeadlock, p.rank, req.src, req.tag, req.comm.gid)
		}
		if env := match(); env != nil {
			finish(env)
			return true, nil
		}
		// A message arrived but did not match; keep waiting for one that
		// does. Re-arm by waiting for the queue to change again.
		if time.Now().After(deadline) {
			return false, ErrDeadlock
		}
		w.cond.Wait()
	}
}

// Wait blocks until req completes and returns its status.
func (p *Proc) Wait(req *Request) (Status, error) {
	if _, err := p.tryComplete(req, true); err != nil {
		return Status{}, err
	}
	delete(p.reqs, req.id)
	return req.status, nil
}

// Test polls req once; done reports whether it completed.
func (p *Proc) Test(req *Request) (done bool, st Status, err error) {
	ok, err := p.tryComplete(req, false)
	if err != nil {
		return false, Status{}, err
	}
	if ok {
		delete(p.reqs, req.id)
		return true, req.status, nil
	}
	return false, Status{}, nil
}

// Waitall blocks until every request completes.
func (p *Proc) Waitall(reqs []*Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	for i, r := range reqs {
		st, err := p.Wait(r)
		if err != nil {
			return nil, err
		}
		sts[i] = st
	}
	return sts, nil
}

// Waitany blocks until at least one request completes and returns its index.
func (p *Proc) Waitany(reqs []*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, fmt.Errorf("mpi: Waitany on empty request list")
	}
	deadline := p.world.deadline()
	for {
		for i, r := range reqs {
			if r == nil {
				continue
			}
			ok, err := p.tryComplete(r, false)
			if err != nil {
				return -1, Status{}, err
			}
			if ok {
				delete(p.reqs, r.id)
				return i, r.status, nil
			}
		}
		if time.Now().After(deadline) {
			return -1, Status{}, fmt.Errorf("%w: rank %d in Waitany", ErrDeadlock, p.rank)
		}
		p.yield()
	}
}

// Waitsome blocks until at least one request completes, then returns the
// indices of all currently complete requests.
func (p *Proc) Waitsome(reqs []*Request) ([]int, []Status, error) {
	first, st, err := p.Waitany(reqs)
	if err != nil {
		return nil, nil, err
	}
	idx := []int{first}
	sts := []Status{st}
	for i, r := range reqs {
		if i == first || r == nil {
			continue
		}
		ok, err := p.tryComplete(r, false)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			delete(p.reqs, r.id)
			idx = append(idx, i)
			sts = append(sts, r.status)
		}
	}
	return idx, sts, nil
}

// Testall polls all requests; done only when every one is complete (in which
// case all are released, mirroring MPI_Testall semantics).
func (p *Proc) Testall(reqs []*Request) (bool, []Status, error) {
	for _, r := range reqs {
		ok, err := p.tryComplete(r, false)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, nil
		}
	}
	sts := make([]Status, len(reqs))
	for i, r := range reqs {
		delete(p.reqs, r.id)
		sts[i] = r.status
	}
	return true, sts, nil
}

// Testsome polls all requests and returns the indices of those that have
// completed; possibly none.
func (p *Proc) Testsome(reqs []*Request) ([]int, []Status, error) {
	var idx []int
	var sts []Status
	for i, r := range reqs {
		if r == nil {
			continue
		}
		ok, err := p.tryComplete(r, false)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			delete(p.reqs, r.id)
			idx = append(idx, i)
			sts = append(sts, r.status)
		}
	}
	return idx, sts, nil
}

// yield briefly parks the goroutine so polling loops don't spin hot.
func (p *Proc) yield() {
	w := p.world
	w.mu.Lock()
	w.cond.Wait()
	w.mu.Unlock()
}

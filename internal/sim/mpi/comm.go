package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of world ranks plus a globally
// unique identifier. The identifier is what the tracer records and what the
// offline matcher uses to pair collective calls across ranks — the paper's
// answer to matching collectives on user-created communicators.
type Comm struct {
	gid     string
	members []int // world ranks, index = communicator rank
	freed   bool
}

// WorldGID is the identifier of MPI_COMM_WORLD.
const WorldGID = "comm-world"

func worldComm(n int) *Comm {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return &Comm{gid: WorldGID, members: m}
}

// GID returns the communicator's globally unique identifier.
func (c *Comm) GID() string { return c.gid }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// Members returns the world ranks of the communicator, in communicator-rank
// order. The returned slice must not be modified.
func (c *Comm) Members() []int { return c.members }

// rankOf translates a world rank to a communicator rank, or -1.
func (c *Comm) rankOf(worldRank int) int {
	for i, m := range c.members {
		if m == worldRank {
			return i
		}
	}
	return -1
}

func (c *Comm) check(worldRank int) (int, error) {
	if c.freed {
		return -1, ErrFreed
	}
	me := c.rankOf(worldRank)
	if me < 0 {
		return -1, fmt.Errorf("mpi: world rank %d is not a member of %s", worldRank, c.gid)
	}
	return me, nil
}

// CommDup collectively duplicates comm. All members must call it; the new
// communicator has the same group and a fresh globally unique id.
func (p *Proc) CommDup(comm *Comm) (*Comm, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	slot, err := p.collective(comm, "MPI_Comm_dup", me, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	gid := fmt.Sprintf("%s.dup%d", comm.gid, slot.slotIndex)
	members := make([]int, len(comm.members))
	copy(members, comm.members)
	return &Comm{gid: gid, members: members}, nil
}

// CommSplit collectively splits comm: members calling with the same color
// land in the same new communicator, ordered by key (ties broken by old
// rank). It mirrors MPI_Comm_split.
func (p *Proc) CommSplit(comm *Comm, color, key int) (*Comm, error) {
	me, err := comm.check(p.rank)
	if err != nil {
		return nil, err
	}
	slot, err := p.collective(comm, "MPI_Comm_split", me, nil, nil, &[2]int{color, key})
	if err != nil {
		return nil, err
	}
	// Deterministic group construction: every member sees the same slot
	// state, so all compute identical results.
	type entry struct{ commRank, color, key int }
	var same []entry
	for r, ck := range slot.colors {
		if ck[0] == color {
			same = append(same, entry{r, ck[0], ck[1]})
		}
	}
	sort.Slice(same, func(i, j int) bool {
		if same[i].key != same[j].key {
			return same[i].key < same[j].key
		}
		return same[i].commRank < same[j].commRank
	})
	members := make([]int, len(same))
	for i, e := range same {
		members[i] = comm.members[e.commRank]
	}
	gid := fmt.Sprintf("%s.split%d.c%d", comm.gid, slot.slotIndex, color)
	return &Comm{gid: gid, members: members}, nil
}

// CommFree marks the communicator freed; further use fails. Collective in
// real MPI; here each rank's call is matched offline like any collective.
func (p *Proc) CommFree(comm *Comm) error {
	me, err := comm.check(p.rank)
	if err != nil {
		return err
	}
	if _, err := p.collective(comm, "MPI_Comm_free", me, nil, nil, nil); err != nil {
		return err
	}
	comm.freed = true
	return nil
}

package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			return p.Send(c, 1, 7, []byte("hello"))
		default:
			data, st, err := p.Recv(c, 0, 7)
			if err != nil {
				return err
			}
			if string(data) != "hello" || st.Source != 0 || st.Tag != 7 {
				return fmt.Errorf("got %q status %+v", data, st)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			return p.Send(c, 2, 11, []byte("from0"))
		case 1:
			return p.Send(c, 2, 22, []byte("from1"))
		default:
			seen := map[int]int{}
			for i := 0; i < 2; i++ {
				data, st, err := p.Recv(c, AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[st.Source] = st.Tag
				want := fmt.Sprintf("from%d", st.Source)
				if string(data) != want {
					return fmt.Errorf("payload %q from source %d", data, st.Source)
				}
			}
			if seen[0] != 11 || seen[1] != 22 {
				return fmt.Errorf("statuses %v", seen)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := p.Send(c, 1, 1, []byte("first")); err != nil {
				return err
			}
			return p.Send(c, 1, 2, []byte("second"))
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		data, _, err := p.Recv(c, 0, 2)
		if err != nil {
			return err
		}
		if string(data) != "second" {
			return fmt.Errorf("tag-2 recv got %q", data)
		}
		data, _, err = p.Recv(c, 0, 1)
		if err != nil {
			return err
		}
		if string(data) != "first" {
			return fmt.Errorf("tag-1 recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	const msgs = 20
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := p.Send(c, 1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			data, _, err := p.Recv(c, 0, 5)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d overtook: got %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 3; i++ {
				r, err := p.Isend(c, 1, i, []byte{byte(i)})
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			_, err := p.Waitall(reqs)
			return err
		}
		var reqs []*Request
		for i := 0; i < 3; i++ {
			r, err := p.Irecv(c, 0, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		sts, err := p.Waitall(reqs)
		if err != nil {
			return err
		}
		for i, st := range sts {
			if st.Tag != i || reqs[i].Data()[0] != byte(i) {
				return fmt.Errorf("req %d: status %+v data %v", i, st, reqs[i].Data())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestAndTestsome(t *testing.T) {
	w := NewWorld(2, WithTimeout(2*time.Second))
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			// Let rank 1 poll an incomplete request first.
			time.Sleep(30 * time.Millisecond)
			return p.Send(c, 1, 0, []byte("x"))
		}
		req, err := p.Irecv(c, 0, 0)
		if err != nil {
			return err
		}
		done, _, err := p.Test(req)
		if err != nil {
			return err
		}
		if done {
			return errors.New("Test completed before the send")
		}
		idx, _, err := p.Testsome([]*Request{req})
		if err != nil {
			return err
		}
		if len(idx) != 0 {
			return errors.New("Testsome completed before the send")
		}
		for {
			done, st, err := p.Test(req)
			if err != nil {
				return err
			}
			if done {
				if st.Source != 0 {
					return fmt.Errorf("status %+v", st)
				}
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitsome(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			return p.Send(c, 2, 1, []byte("a"))
		case 1:
			time.Sleep(20 * time.Millisecond)
			return p.Send(c, 2, 2, []byte("b"))
		default:
			r1, _ := p.Irecv(c, 0, 1)
			r2, _ := p.Irecv(c, 1, 2)
			got := map[int]bool{}
			for len(got) < 2 {
				idx, _, err := p.Waitsome([]*Request{r1, r2})
				if err != nil {
					return err
				}
				if len(idx) == 0 {
					return errors.New("Waitsome returned empty")
				}
				for _, i := range idx {
					got[i] = true
				}
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersSides(t *testing.T) {
	var before, after atomic.Int32
	w := NewWorld(4)
	err := w.Run(func(p *Proc) error {
		before.Add(1)
		if err := p.Barrier(p.CommWorld()); err != nil {
			return err
		}
		if before.Load() != 4 {
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", p.Rank(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 4 {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestCollectiveDataMovement(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		me := p.Rank()

		got, err := p.Bcast(c, 1, ifRoot(me == 1, []byte("root-data")))
		if err != nil {
			return err
		}
		if string(got) != "root-data" {
			return fmt.Errorf("Bcast = %q", got)
		}

		sum, err := p.Allreduce(c, int64(me+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("Allreduce sum = %d", sum)
		}
		mx, err := p.Reduce(c, 0, int64(me*me), OpMax)
		if err != nil {
			return err
		}
		if me == 0 && mx != 9 {
			return fmt.Errorf("Reduce max = %d", mx)
		}

		all, err := p.Allgather(c, []byte{byte('A' + me)})
		if err != nil {
			return err
		}
		var cat []byte
		for _, b := range all {
			cat = append(cat, b...)
		}
		if string(cat) != "ABCD" {
			return fmt.Errorf("Allgather = %q", cat)
		}

		gathered, err := p.Gather(c, 2, []byte{byte('a' + me)})
		if err != nil {
			return err
		}
		if me == 2 {
			var g []byte
			for _, b := range gathered {
				g = append(g, b...)
			}
			if string(g) != "abcd" {
				return fmt.Errorf("Gather = %q", g)
			}
		}

		var parts [][]byte
		if me == 3 {
			parts = [][]byte{[]byte("p0"), []byte("p1"), []byte("p2"), []byte("p3")}
		}
		part, err := p.Scatter(c, 3, parts)
		if err != nil {
			return err
		}
		if string(part) != fmt.Sprintf("p%d", me) {
			return fmt.Errorf("Scatter = %q", part)
		}

		outbound := make([][]byte, 4)
		for j := range outbound {
			outbound[j] = []byte{byte(me*10 + j)}
		}
		inbound, err := p.Alltoall(c, outbound)
		if err != nil {
			return err
		}
		for j, b := range inbound {
			if b[0] != byte(j*10+me) {
				return fmt.Errorf("Alltoall[%d] = %d", j, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingCollectives(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		req, err := p.Iallreduce(c, int64(p.Rank()), OpSum)
		if err != nil {
			return err
		}
		br, err := p.Ibarrier(c)
		if err != nil {
			return err
		}
		if _, err := p.Wait(req); err != nil {
			return err
		}
		if v := decodeInt64(req.Data()); v != 3 {
			return fmt.Errorf("Iallreduce = %d", v)
		}
		_, err = p.Wait(br)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommDupAndSplit(t *testing.T) {
	w := NewWorld(4)
	gids := make([]string, 4)
	subSizes := make([]int, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		dup, err := p.CommDup(c)
		if err != nil {
			return err
		}
		if dup.GID() == c.GID() || dup.Size() != 4 {
			return fmt.Errorf("dup gid=%s size=%d", dup.GID(), dup.Size())
		}
		gids[p.Rank()] = dup.GID()

		// Split into even/odd halves, reverse-ordered by key.
		sub, err := p.CommSplit(c, p.Rank()%2, -p.Rank())
		if err != nil {
			return err
		}
		subSizes[p.Rank()] = sub.Size()
		// Communicator ranks must be usable: barrier within the half.
		if err := p.Barrier(sub); err != nil {
			return err
		}
		// Highest world rank got key smallest, so it's comm rank 0.
		wantFirst := 2 + p.Rank()%2
		if sub.Members()[0] != wantFirst {
			return fmt.Errorf("split members %v, want first %d", sub.Members(), wantFirst)
		}
		if err := p.CommFree(dup); err != nil {
			return err
		}
		if err := p.Barrier(dup); !errors.Is(err, ErrFreed) {
			return fmt.Errorf("use after free = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if gids[r] != gids[0] {
			t.Errorf("dup gid differs: rank %d %q vs rank 0 %q", r, gids[r], gids[0])
		}
		if subSizes[r] != 2 {
			t.Errorf("split size on rank %d = %d", r, subSizes[r])
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := NewWorld(2, WithTimeout(150*time.Millisecond))
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			_, _, err := p.Recv(p.CommWorld(), 1, 0) // never sent
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestCollectiveStragglerDeadlock(t *testing.T) {
	w := NewWorld(3, WithTimeout(150*time.Millisecond))
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 2 {
			return nil // never joins the barrier
		}
		return p.Barrier(p.CommWorld())
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestMismatchedCollectiveNamesStillRendezvous(t *testing.T) {
	// Runtime tolerates a name mismatch in the same slot (the job keeps
	// running, as MPI implementations often do); VerifyIO's offline
	// matcher is responsible for flagging it (§V-D).
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return p.Barrier(c)
		}
		_, err := p.Allreduce(c, 1, OpSum)
		return err
	})
	if err != nil {
		t.Fatalf("mismatched collectives should complete at runtime: %v", err)
	}
}

func TestSendArgumentValidation(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := p.Send(c, 9, 0, nil); err == nil {
			return errors.New("send to rank 9 accepted")
		}
		if err := p.Send(c, 0, -3, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		if _, err := p.Irecv(c, 9, 0); err == nil {
			return errors.New("irecv from rank 9 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunConvertsPanics(t *testing.T) {
	w := NewWorld(2, WithTimeout(200*time.Millisecond))
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic conversion", err)
	}
}

// TestPropertyRandomRingAllreduce cross-checks a manual ring-pass sum (p2p)
// against Allreduce for random world sizes and values.
func TestPropertyRandomRingAllreduce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(rng.Intn(1000))
			want += vals[i]
		}
		w := NewWorld(n, WithTimeout(5*time.Second))
		ok := true
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			me := p.Rank()
			// Ring reduction: pass a running sum around the ring.
			sum := vals[me]
			if me == 0 {
				if err := p.Send(c, 1%n, 0, encodeInt64(sum)); err != nil {
					return err
				}
				data, _, err := p.Recv(c, n-1, 0)
				if err != nil {
					return err
				}
				sum = decodeInt64(data)
			} else {
				data, _, err := p.Recv(c, me-1, 0)
				if err != nil {
					return err
				}
				sum = decodeInt64(data) + vals[me]
				if err := p.Send(c, (me+1)%n, 0, encodeInt64(sum)); err != nil {
					return err
				}
			}
			total, err := p.Allreduce(c, vals[me], OpSum)
			if err != nil {
				return err
			}
			if total != want {
				ok = false
			}
			if me == 0 && sum != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func ifRoot(cond bool, b []byte) []byte {
	if cond {
		return b
	}
	return nil
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

func TestSendrecvRingShift(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		right := (p.Rank() + 1) % n
		left := (p.Rank() + n - 1) % n
		data, st, err := p.Sendrecv(c, right, 3, []byte{byte('A' + p.Rank())}, left, 3)
		if err != nil {
			return err
		}
		if st.Source != left || st.Tag != 3 {
			return fmt.Errorf("status %+v, want source %d", st, left)
		}
		if data[0] != byte('A'+left) {
			return fmt.Errorf("payload %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanAndExscan(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		val := int64(p.Rank() + 1) // 1,2,3,4
		inc, err := p.Scan(c, val, OpSum)
		if err != nil {
			return err
		}
		wantInc := int64(0)
		for i := 0; i <= p.Rank(); i++ {
			wantInc += int64(i + 1)
		}
		if inc != wantInc {
			return fmt.Errorf("rank %d Scan = %d, want %d", p.Rank(), inc, wantInc)
		}
		exc, err := p.Exscan(c, val, OpSum)
		if err != nil {
			return err
		}
		if exc != wantInc-val {
			return fmt.Errorf("rank %d Exscan = %d, want %d", p.Rank(), exc, wantInc-val)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

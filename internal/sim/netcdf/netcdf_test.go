package netcdf

import (
	"errors"
	"fmt"
	"testing"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/hdf5"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func newEnv(t *testing.T, n int) *recorder.Env {
	t.Helper()
	t.Cleanup(hdf5.ResetMetadata)
	return recorder.NewEnv(n, recorder.Options{FSMode: posixfs.ModePOSIX})
}

func TestDefineModeLifecycle(t *testing.T) {
	env := newEnv(t, 1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := CreatePar(r, r.Proc().CommWorld(), "n.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, err := f.DefDim("x", 8)
		if err != nil {
			return err
		}
		v, err := f.DefVar("temp", "NC_BYTE", d)
		if err != nil {
			return err
		}
		// Data calls are rejected in define mode.
		if err := f.PutVarSchar(v, make([]byte, 8)); !errors.Is(err, ErrDefineMode) {
			return fmt.Errorf("put in define mode = %v", err)
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		// Define calls are rejected in data mode.
		if _, err := f.DefDim("y", 2); err == nil {
			return errors.New("def_dim accepted in data mode")
		}
		if err := f.PutVarSchar(v, []byte("12345678")); err != nil {
			return err
		}
		got, err := f.GetVarSchar(v)
		if err != nil {
			return err
		}
		if string(got) != "12345678" {
			return fmt.Errorf("read back %q", got)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutVarWholeVariableCallChain(t *testing.T) {
	// The parallel5 mechanism: nc_put_var_schar → H5Dwrite →
	// MPI_File_write_at → pwrite, with the full chain on the POSIX record.
	env := newEnv(t, 1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := CreatePar(r, r.Proc().CommWorld(), "n.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_BYTE", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		return f.PutVarSchar(v, []byte("abcd"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var pw *trace.Record
	for _, rec := range env.Trace().Ranks[0] {
		rec := rec
		if rec.Func == "pwrite" {
			pw = &rec
		}
	}
	if pw == nil {
		t.Fatal("no pwrite")
	}
	wantChain := []string{"nc_put_var_schar", "H5Dwrite", "MPI_File_write_at"}
	if len(pw.Chain) != len(wantChain) {
		t.Fatalf("chain = %v", pw.Chain)
	}
	for i, fn := range wantChain {
		fr, err := trace.ParseFrame(pw.Chain[i])
		if err != nil || fr.Func != fn {
			t.Errorf("chain[%d] = %v, want %s", i, pw.Chain[i], fn)
		}
	}
}

func TestConcurrentPutVarWritesSameOffsets(t *testing.T) {
	// Two ranks both writing the whole variable → same offset, both write.
	env := newEnv(t, 2)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := CreatePar(r, c, "p5.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_BYTE", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		return f.PutVarSchar(v, []byte{byte('0' + r.Rank()), 'x', 'x', 'x'})
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	var offs []string
	for rank := 0; rank < 2; rank++ {
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pwrite" {
				offs = append(offs, rec.Arg(2))
			}
		}
	}
	if len(offs) != 2 || offs[0] != offs[1] {
		t.Errorf("pwrite offsets = %v, want two writes to one offset", offs)
	}
}

func TestVaraSubarrayAndParAccess(t *testing.T) {
	env := newEnv(t, 2)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := CreatePar(r, c, "v.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 8)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if err := f.VarParAccess(v, true); err != nil {
			return err
		}
		me := int64(r.Rank())
		if err := f.PutVaraInt(v, []int64{me * 4}, []int64{4}, []byte(fmt.Sprintf("rk%d-", r.Rank()))); err != nil {
			return err
		}
		got, err := f.GetVaraInt(v, []int64{me * 4}, []int64{4})
		if err != nil {
			return err
		}
		if string(got) != fmt.Sprintf("rk%d-", r.Rank()) {
			return fmt.Errorf("vara read %q", got)
		}
		return f.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	// nc_sync flushed through to MPI_File_sync.
	n := 0
	for _, rec := range env.Trace().Ranks[0] {
		if rec.Func == "MPI_File_sync" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("MPI_File_sync records = %d, want 1", n)
	}
}

func TestDefVarValidation(t *testing.T) {
	env := newEnv(t, 1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := CreatePar(r, r.Proc().CommWorld(), "x.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := f.DefVar("bad", "NC_BYTE", 7); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("undefined dim = %v", err)
		}
		if _, err := f.DefVar("none", "NC_BYTE"); err == nil {
			return errors.New("0-dim var accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttributes(t *testing.T) {
	env := newEnv(t, 2)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := CreatePar(r, c, "att.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		// Collective attribute writes (rank 0 performs the metadata I/O).
		if err := f.PutAttText(nil, "title", []byte("demo")); err != nil {
			return err
		}
		if err := f.PutAttText(v, "units", []byte("m")); err != nil {
			return err
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		got, err := f.GetAttText(nil, "title")
		if err != nil || string(got) != "demo" {
			return fmt.Errorf("GetAttText = %q, %v", got, err)
		}
		if _, err := f.GetAttText(v, "missing"); err == nil {
			return errors.New("missing attribute read succeeded")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only rank 0 issued the attribute's pwrite.
	tr := env.Trace()
	for rank := 0; rank < 2; rank++ {
		writes := 0
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "H5Awrite" {
				writes++
			}
		}
		if rank == 0 && writes != 2 {
			t.Errorf("rank 0 H5Awrite count = %d, want 2", writes)
		}
		if rank != 0 && writes != 0 {
			t.Errorf("rank %d H5Awrite count = %d, want 0", rank, writes)
		}
	}
}

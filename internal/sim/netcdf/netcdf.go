// Package netcdf implements a functional subset of parallel NetCDF-4 on top
// of the simulated HDF5 substrate (NetCDF-4's real backend), routed through
// the Recorder⁺ tracing layer.
//
// The subset reproduces the paper's NetCDF finding (§V-B1): high-level calls
// like nc_put_var_schar write the *entire variable* from the calling rank by
// invoking H5Dwrite, which invokes MPI_File_write_at. A test that calls
// nc_put_var_schar concurrently from several ranks (parallel5) therefore
// writes the same offsets from every rank — a write-write data race even
// under POSIX, attributable to application-level misuse because the call
// chain shows the conflicting pwrites rooted at the application's
// nc_put_var_schar calls.
//
// Variables are byte-element arrays: the typed API variants differ only in
// the recorded function name, which is what the verification workflow
// consumes. This simplification does not affect any traced behaviour.
package netcdf

import (
	"errors"
	"fmt"
	"strings"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/hdf5"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/trace"
)

// Errors.
var (
	ErrDefineMode = errors.New("netcdf: operation invalid in define mode")
	ErrNotFound   = errors.New("netcdf: not found")
)

// File is an open NetCDF dataset.
type File struct {
	r    *recorder.Rank
	hf   *hdf5.File
	comm *mpi.Comm

	defMode bool
	dims    []dim
	vars    []*Var
}

type dim struct {
	name string
	len  int64
}

// Var is a defined variable.
type Var struct {
	f      *File
	id     int
	name   string
	dimids []int
	ds     *hdf5.Dataset
	xfer   hdf5.Transfer
}

// CreatePar is the traced nc_create_par: creates a NetCDF-4 file backed by
// parallel HDF5.
func CreatePar(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, comm: comm, defMode: true}
	err := r.Record(trace.LayerNetCDF, "nc_create_par", func() []string {
		return []string{path, "NC_NETCDF4|NC_MPIIO", comm.GID()}
	}, func() error {
		hf, err := hdf5.Create(r, comm, path, cfg)
		if err != nil {
			return err
		}
		f.hf = hf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenPar is the traced nc_open_par: reopens a NetCDF-4 file, recovering the
// variable table from the underlying HDF5 datasets ("var:<name>").
func OpenPar(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, comm: comm, defMode: false}
	err := r.Record(trace.LayerNetCDF, "nc_open_par", func() []string {
		return []string{path, "NC_NOWRITE|NC_MPIIO", comm.GID()}
	}, func() error {
		hf, err := hdf5.OpenFile(r, comm, path, cfg)
		if err != nil {
			return err
		}
		f.hf = hf
		for _, name := range hf.Datasets() {
			if !strings.HasPrefix(name, "var:") {
				continue
			}
			dims, _ := hf.DatasetDims(name)
			var dimids []int
			for _, d := range dims {
				f.dims = append(f.dims, dim{name: fmt.Sprintf("dim%d", len(f.dims)), len: d})
				dimids = append(dimids, len(f.dims)-1)
			}
			ds, err := hf.OpenDataset(name)
			if err != nil {
				return err
			}
			f.vars = append(f.vars, &Var{f: f, id: len(f.vars),
				name: strings.TrimPrefix(name, "var:"), dimids: dimids, ds: ds,
				xfer: hdf5.Independent})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// InqVarid is the traced nc_inq_varid.
func (f *File) InqVarid(name string) (*Var, error) {
	var out *Var
	err := f.r.Record(trace.LayerNetCDF, "nc_inq_varid", func() []string {
		id := int64(-1)
		if out != nil {
			id = int64(out.id)
		}
		return []string{name, itoa(id)}
	}, func() error {
		for _, v := range f.vars {
			if v.name == name {
				out = v
				return nil
			}
		}
		return fmt.Errorf("%w: variable %s", ErrNotFound, name)
	})
	return out, err
}

// Vars returns the defined variables in definition order.
func (f *File) Vars() []*Var { return f.vars }

// DefDim is the traced nc_def_dim.
func (f *File) DefDim(name string, length int64) (int, error) {
	id := -1
	err := f.r.Record(trace.LayerNetCDF, "nc_def_dim", func() []string {
		return []string{name, itoa(length), itoa(int64(id))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("netcdf: nc_def_dim outside define mode")
		}
		f.dims = append(f.dims, dim{name, length})
		id = len(f.dims) - 1
		return nil
	})
	return id, err
}

// DefVar is the traced nc_def_var. The HDF5 dataset is created at enddef.
func (f *File) DefVar(name, xtype string, dimids ...int) (*Var, error) {
	v := &Var{f: f, name: name, dimids: dimids, xfer: hdf5.Independent}
	err := f.r.Record(trace.LayerNetCDF, "nc_def_var", func() []string {
		return []string{name, xtype, fmt.Sprint(dimids), itoa(int64(v.id))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("netcdf: nc_def_var outside define mode")
		}
		if len(dimids) == 0 || len(dimids) > 2 {
			return fmt.Errorf("netcdf: %d-dimensional variables not supported", len(dimids))
		}
		for _, d := range dimids {
			if d < 0 || d >= len(f.dims) {
				return fmt.Errorf("%w: dim id %d", ErrNotFound, d)
			}
		}
		v.id = len(f.vars)
		f.vars = append(f.vars, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// EndDef is the traced nc_enddef: leaves define mode and materializes every
// variable as an HDF5 dataset (collective).
func (f *File) EndDef() error {
	return f.r.Record(trace.LayerNetCDF, "nc_enddef", func() []string {
		return []string{itoa(int64(len(f.vars)))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("netcdf: nc_enddef outside define mode")
		}
		f.defMode = false
		for _, v := range f.vars {
			dims := make([]int64, len(v.dimids))
			for i, d := range v.dimids {
				dims[i] = f.dims[d].len
			}
			ds, err := f.hf.CreateDataset("var:"+v.name, dims...)
			if err != nil {
				return err
			}
			v.ds = ds
		}
		return nil
	})
}

// VarParAccess is the traced nc_var_par_access: selects collective or
// independent transfers for the variable.
func (f *File) VarParAccess(v *Var, collective bool) error {
	return f.r.Record(trace.LayerNetCDF, "nc_var_par_access", func() []string {
		mode := "NC_INDEPENDENT"
		if collective {
			mode = "NC_COLLECTIVE"
		}
		return []string{v.name, mode}
	}, func() error {
		if collective {
			v.xfer = hdf5.Collective
		} else {
			v.xfer = hdf5.Independent
		}
		return nil
	})
}

// PutAttText is the traced nc_put_att_text. NetCDF-4 attribute writes are
// collective; the underlying HDF5 metadata write is performed by rank 0
// (the metadata-cache behaviour), so concurrent collective put_att calls do
// not conflict with each other.
func (f *File) PutAttText(v *Var, name string, value []byte) error {
	return f.r.Record(trace.LayerNetCDF, "nc_put_att_text", func() []string {
		return []string{attTarget(v), name, itoa(int64(len(value)))}
	}, func() error {
		a, err := f.hf.CreateAttr(attKey(v, name), int64(len(value)))
		if err != nil {
			return err
		}
		if f.r.Rank() == 0 {
			if err := a.Write(value); err != nil {
				return err
			}
		}
		return a.Close()
	})
}

// GetAttText is the traced nc_get_att_text; every calling rank reads the
// attribute from the file.
func (f *File) GetAttText(v *Var, name string) ([]byte, error) {
	var out []byte
	err := f.r.Record(trace.LayerNetCDF, "nc_get_att_text", func() []string {
		return []string{attTarget(v), name, itoa(int64(len(out)))}
	}, func() error {
		a, err := f.hf.OpenAttr(attKey(v, name))
		if err != nil {
			return err
		}
		buf, err := a.Read()
		if err != nil {
			return err
		}
		out = buf
		return a.Close()
	})
	return out, err
}

func attTarget(v *Var) string {
	if v == nil {
		return "NC_GLOBAL"
	}
	return v.name
}

func attKey(v *Var, name string) string {
	return "att:" + attTarget(v) + ":" + name
}

// Sync is the traced nc_sync (flushes via H5Fflush → MPI_File_sync).
func (f *File) Sync() error {
	return f.r.Record(trace.LayerNetCDF, "nc_sync", nil, func() error {
		return f.hf.Flush()
	})
}

// Close is the traced nc_close.
func (f *File) Close() error {
	return f.r.Record(trace.LayerNetCDF, "nc_close", nil, func() error {
		return f.hf.Close()
	})
}

// dimsOf returns the variable's extent per dimension.
func (v *Var) dimsOf() []int64 {
	out := make([]int64, len(v.dimids))
	for i, d := range v.dimids {
		out[i] = v.f.dims[d].len
	}
	return out
}

func (v *Var) size() int64 {
	s := int64(1)
	for _, d := range v.dimsOf() {
		s *= d
	}
	return s
}

func (f *File) checkDataMode() error {
	if f.defMode {
		return fmt.Errorf("%w", ErrDefineMode)
	}
	return nil
}

// putVar writes the whole variable from the calling rank.
func (f *File) putVar(fn string, v *Var, data []byte) error {
	return f.r.Record(trace.LayerNetCDF, fn, func() []string {
		return []string{v.name, itoa(v.size())}
	}, func() error {
		if err := f.checkDataMode(); err != nil {
			return err
		}
		if int64(len(data)) < v.size() {
			return fmt.Errorf("netcdf: %d bytes for %d-element variable %s", len(data), v.size(), v.name)
		}
		return v.ds.Write(v.xfer, v.ds.All(), data[:v.size()])
	})
}

// getVar reads the whole variable.
func (f *File) getVar(fn string, v *Var) ([]byte, error) {
	var out []byte
	err := f.r.Record(trace.LayerNetCDF, fn, func() []string {
		return []string{v.name, itoa(v.size())}
	}, func() error {
		if err := f.checkDataMode(); err != nil {
			return err
		}
		buf, err := v.ds.Read(v.xfer, v.ds.All())
		out = buf
		return err
	})
	return out, err
}

// putVara writes a subarray.
func (f *File) putVara(fn string, v *Var, start, count []int64, data []byte) error {
	return f.r.Record(trace.LayerNetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count)}
	}, func() error {
		if err := f.checkDataMode(); err != nil {
			return err
		}
		return v.ds.Write(v.xfer, hdf5.Hyperslab{Start: start, Count: count}, data)
	})
}

// getVara reads a subarray.
func (f *File) getVara(fn string, v *Var, start, count []int64) ([]byte, error) {
	var out []byte
	err := f.r.Record(trace.LayerNetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count)}
	}, func() error {
		if err := f.checkDataMode(); err != nil {
			return err
		}
		buf, err := v.ds.Read(v.xfer, hdf5.Hyperslab{Start: start, Count: count})
		out = buf
		return err
	})
	return out, err
}

// Typed API variants. Variables are byte-element arrays; the variants differ
// in the recorded function name only (see the package comment).

// PutVarSchar is the traced nc_put_var_schar — the parallel5 call.
func (f *File) PutVarSchar(v *Var, data []byte) error { return f.putVar("nc_put_var_schar", v, data) }

// PutVarText is the traced nc_put_var_text.
func (f *File) PutVarText(v *Var, data []byte) error { return f.putVar("nc_put_var_text", v, data) }

// PutVarInt is the traced nc_put_var_int.
func (f *File) PutVarInt(v *Var, data []byte) error { return f.putVar("nc_put_var_int", v, data) }

// GetVarSchar is the traced nc_get_var_schar.
func (f *File) GetVarSchar(v *Var) ([]byte, error) { return f.getVar("nc_get_var_schar", v) }

// GetVarInt is the traced nc_get_var_int.
func (f *File) GetVarInt(v *Var) ([]byte, error) { return f.getVar("nc_get_var_int", v) }

// PutVaraInt is the traced nc_put_vara_int.
func (f *File) PutVaraInt(v *Var, start, count []int64, data []byte) error {
	return f.putVara("nc_put_vara_int", v, start, count, data)
}

// PutVaraText is the traced nc_put_vara_text.
func (f *File) PutVaraText(v *Var, start, count []int64, data []byte) error {
	return f.putVara("nc_put_vara_text", v, start, count, data)
}

// GetVaraInt is the traced nc_get_vara_int.
func (f *File) GetVaraInt(v *Var, start, count []int64) ([]byte, error) {
	return f.getVara("nc_get_vara_int", v, start, count)
}

// GetVaraText is the traced nc_get_vara_text.
func (f *File) GetVaraText(v *Var, start, count []int64) ([]byte, error) {
	return f.getVara("nc_get_vara_text", v, start, count)
}

func itoa(v int64) string { return fmt.Sprint(v) }

package pnetcdf

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func newEnv(n int) *recorder.Env {
	return recorder.NewEnv(n, recorder.Options{FSMode: posixfs.ModePOSIX})
}

func countFunc(tr *trace.Trace, rank int, fn string) int {
	n := 0
	for _, rec := range tr.Ranks[rank] {
		if rec.Func == fn {
			n++
		}
	}
	return n
}

func TestDefineAndDataModeRules(t *testing.T) {
	env := newEnv(1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "a.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, err := f.DefDim("x", 8)
		if err != nil {
			return err
		}
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.PutVaraIntAll(v, []int64{0}, []int64{1}, []byte{1}); !errors.Is(err, ErrDefineMode) {
			return fmt.Errorf("put in define mode = %v", err)
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if _, err := f.DefDim("y", 2); !errors.Is(err, ErrDataMode) {
			return fmt.Errorf("def_dim in data mode = %v", err)
		}
		// Independent put requires independent data mode.
		if err := f.PutVaraInt(v, []int64{0}, []int64{2}, []byte("ab")); !errors.Is(err, ErrIndepMode) {
			return fmt.Errorf("independent put in collective mode = %v", err)
		}
		if err := f.BeginIndep(); err != nil {
			return err
		}
		if err := f.PutVaraInt(v, []int64{0}, []int64{2}, []byte("ab")); err != nil {
			return err
		}
		// Collective put rejected in independent mode.
		if err := f.PutVaraIntAll(v, []int64{0}, []int64{2}, []byte("ab")); !errors.Is(err, ErrIndepMode) {
			return fmt.Errorf("collective put in indep mode = %v", err)
		}
		if err := f.EndIndep(); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEndDefFillWritesDistinctPartitions(t *testing.T) {
	env := newEnv(4)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "fill.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 16)
		if _, err := f.DefVar("v", "NC_INT", d); err != nil {
			return err
		}
		if err := f.SetFill(true); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	// Each rank performed its own fill write (no view → no aggregation),
	// at distinct offsets; rank 0 additionally wrote the header at 0.
	offs := map[string]int{}
	for rank := 0; rank < 4; rank++ {
		want := 1
		if rank == 0 {
			want = 2 // header + fill
		}
		if n := countFunc(tr, rank, "pwrite"); n != want {
			t.Errorf("rank %d pwrites = %d, want %d", rank, n, want)
		}
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pwrite" && rec.Arg(2) != "0" {
				offs[rec.Arg(2)]++
			}
		}
	}
	if len(offs) != 4 {
		t.Errorf("fill offsets = %v, want 4 distinct", offs)
	}
	// The file has 16 zero bytes at the variable's extent.
	size, _ := env.FS().CommittedSize("fill.nc")
	if size != headerBytes+16 {
		t.Errorf("file size = %d, want %d", size, headerBytes+16)
	}
	// enddef also issued the internal header-consistency allreduce.
	if countFunc(tr, 0, "MPI_Allreduce") != 1 {
		t.Error("enddef did not run the header-consistency allreduce")
	}
}

func TestFlexiblePutTriggersAggregation(t *testing.T) {
	// The flexible (§V-C1) mechanism: put_vara_all with an MPI datatype
	// sets the file view, arming collective buffering, so rank 0 performs
	// the entire write.
	env := newEnv(4)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "flex.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 8)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.SetFill(true); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		me := int64(r.Rank())
		return f.PutVaraAll(v, []int64{me * 2}, []int64{2}, []byte{byte('a' + r.Rank()), '!'})
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	// pwrites per rank: fill (1 each) + header and aggregated data write
	// (rank 0 only).
	if n := countFunc(tr, 0, "pwrite"); n != 3 {
		t.Errorf("rank 0 pwrites = %d, want 3 (header + fill + aggregated)", n)
	}
	for rank := 1; rank < 4; rank++ {
		if n := countFunc(tr, rank, "pwrite"); n != 1 {
			t.Errorf("rank %d pwrites = %d, want 1 (fill only)", rank, n)
		}
	}
	if countFunc(tr, 0, "MPI_File_set_view") != 1 {
		t.Error("flexible put did not set the file view")
	}
	data, _ := env.FS().CommittedData("flex.nc")
	if string(data[headerBytes:headerBytes+8]) != "a!b!c!d!" {
		t.Errorf("variable bytes = %q", data[headerBytes:headerBytes+8])
	}
}

func TestTypedPutsDoNotAggregate(t *testing.T) {
	// null_args mechanism: every rank's put_var1_text_all writes the same
	// location itself (no view, no aggregation).
	env := newEnv(3)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "n.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_TEXT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		return f.PutVar1TextAll(v, []int64{0}, byte('0'+r.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	offs := map[string]int{}
	for rank := 0; rank < 3; rank++ {
		want := 1
		if rank == 0 {
			want = 2 // header + data
		}
		if n := countFunc(tr, rank, "pwrite"); n != want {
			t.Errorf("rank %d pwrites = %d, want %d", rank, n, want)
		}
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pwrite" && rec.Arg(2) != "0" {
				offs[rec.Arg(2)]++
			}
		}
	}
	if len(offs) != 1 {
		t.Errorf("data pwrite offsets = %v, want one shared location", offs)
	}
}

func TestNonblockingWaitAllUniformPath(t *testing.T) {
	env := newEnv(2)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "nb.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 8)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		me := int64(r.Rank())
		req, err := f.IputVara("int", v, []int64{me * 4}, []int64{4}, []byte(fmt.Sprintf("nb%d!", r.Rank())))
		if err != nil {
			return err
		}
		if req == "" {
			return errors.New("empty request id")
		}
		return f.WaitAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	for rank := 0; rank < 2; rank++ {
		// Two write_at_all calls per rank: the enddef header write and
		// the wait_all completion.
		if countFunc(tr, rank, "MPI_File_write_at_all") != 2 {
			t.Errorf("rank %d: wait_all did not use write_at_all uniformly", rank)
		}
		if countFunc(tr, rank, "MPI_File_write_all") != 0 {
			t.Errorf("rank %d: wait_all used write_all", rank)
		}
	}
	data, _ := env.FS().CommittedData("nb.nc")
	if string(data[headerBytes:headerBytes+8]) != "nb0!nb1!" {
		t.Errorf("variable = %q", data[headerBytes:headerBytes+8])
	}
}

func TestBuggyWaitSplitsCollectivePaths(t *testing.T) {
	// §V-D: ncmpi_wait sends rank 0 down MPI_File_write_at_all and the
	// other ranks down MPI_File_write_all.
	env := newEnv(3)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "bug.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 6)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		me := int64(r.Rank())
		if _, err := f.IputVara("int", v, []int64{me * 2}, []int64{2}, []byte{byte('a' + r.Rank()), '.'}); err != nil {
			return err
		}
		return f.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	// Every rank has one write_at_all from the enddef header write; the
	// buggy completion adds another on rank 0 and a write_all elsewhere.
	if countFunc(tr, 0, "MPI_File_write_at_all") != 2 || countFunc(tr, 0, "MPI_File_write_all") != 0 {
		t.Error("rank 0 should use write_at_all")
	}
	for rank := 1; rank < 3; rank++ {
		if countFunc(tr, rank, "MPI_File_write_all") != 1 || countFunc(tr, rank, "MPI_File_write_at_all") != 1 {
			t.Errorf("rank %d should use write_all for the completion", rank)
		}
	}
	// The data still lands correctly at runtime — the bug is a semantics
	// violation, not (on this system) a wrong result.
	data, _ := env.FS().CommittedData("bug.nc")
	if string(data[headerBytes:headerBytes+6]) != "a.b.c." {
		t.Errorf("variable = %q", data[headerBytes:headerBytes+6])
	}
}

func TestInqVaridAndAccessors(t *testing.T) {
	env := newEnv(1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "q.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 5)
		v, err := f.DefVar("temp", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		got, err := f.InqVarid("temp")
		if err != nil || got != v {
			return fmt.Errorf("InqVarid = %v, %v", got, err)
		}
		if _, err := f.InqVarid("nope"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing var = %v", err)
		}
		if v.Name() != "temp" || v.Size() != 5 {
			return fmt.Errorf("accessors: %s %d", v.Name(), v.Size())
		}
		if len(f.Vars()) != 1 {
			return fmt.Errorf("vars = %d", len(f.Vars()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectionValidation(t *testing.T) {
	env := newEnv(1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "s.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if err := f.PutVaraIntAll(v, []int64{3}, []int64{4}, make([]byte, 4)); err == nil {
			return errors.New("out-of-bounds put accepted")
		}
		if err := f.PutVaraIntAll(v, []int64{0, 0}, []int64{1, 1}, make([]byte, 1)); err == nil {
			return errors.New("rank-mismatched selection accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedefReentersDefineMode(t *testing.T) {
	env := newEnv(1)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "rd.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 2)
		if _, err := f.DefVar("a", "NC_INT", d); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if err := f.Redef(); err != nil {
			return err
		}
		if _, err := f.DefVar("b", "NC_INT", d); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		vs := f.Vars()
		if len(vs) != 2 || vs[0].off == vs[1].off {
			return fmt.Errorf("layout after redef: %+v", vs)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttributesAndHeader(t *testing.T) {
	env := newEnv(2)
	err := env.Run(func(r *recorder.Rank) error {
		comm := r.Proc().CommWorld()
		f, err := Create(r, comm, "attr.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		v, err := f.DefVar("v", "NC_INT", d)
		if err != nil {
			return err
		}
		if err := f.PutAttText(nil, "title", []byte("demo")); err != nil {
			return err
		}
		if err := f.PutAttText(v, "units", []byte("K")); err != nil {
			return err
		}
		// Re-put overwrites.
		if err := f.PutAttText(nil, "title", []byte("demo2")); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		// put_att outside define mode is rejected.
		if err := f.PutAttText(nil, "late", []byte("x")); !errors.Is(err, ErrDataMode) {
			return fmt.Errorf("late put_att = %v", err)
		}
		got, err := f.GetAttText(nil, "title")
		if err != nil || string(got) != "demo2" {
			return fmt.Errorf("GetAttText = %q, %v", got, err)
		}
		if _, err := f.GetAttText(v, "missing"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing att = %v", err)
		}
		n, err := f.InqNatts()
		if err != nil || n != 1 {
			return fmt.Errorf("InqNatts = %d, %v", n, err)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 wrote the header at offset 0 ("CDF5" magic + entries).
	data, err := env.FS().CommittedData("attr.nc")
	if err != nil {
		t.Fatal(err)
	}
	head := string(data)
	if int64(len(head)) > headerBytes {
		head = head[:headerBytes]
	}
	for _, want := range []string{"CDF5", "d:x=4", "v:v@1024", `a:-1/title="demo2"`, `a:0/units="K"`} {
		if !strings.Contains(head, want) {
			t.Errorf("header missing %q:\n%s", want, head)
		}
	}
	// Only rank 0 performed the header pwrite.
	tr := env.Trace()
	headerWrites := 0
	for rank := 0; rank < 2; rank++ {
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pwrite" && rec.Arg(2) == "0" {
				headerWrites++
				if rank != 0 {
					t.Errorf("rank %d wrote the header", rank)
				}
			}
		}
	}
	if headerWrites != 1 {
		t.Errorf("header writes = %d, want 1", headerWrites)
	}
}

func TestOpenReadsHeaderAndRecoversAttrs(t *testing.T) {
	env := newEnv(2)
	err := env.Run(func(r *recorder.Rank) error {
		comm := r.Proc().CommWorld()
		f, err := Create(r, comm, "hdr.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d, _ := f.DefDim("x", 4)
		if _, err := f.DefVar("v", "NC_INT", d); err != nil {
			return err
		}
		if err := f.PutAttText(nil, "run", []byte("42")); err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := r.Barrier(comm); err != nil {
			return err
		}
		f2, err := Open(r, comm, "hdr.nc", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		got, err := f2.GetAttText(nil, "run")
		if err != nil || string(got) != "42" {
			return fmt.Errorf("recovered att = %q, %v", got, err)
		}
		return f2.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank read the header region at open.
	tr := env.Trace()
	for rank := 0; rank < 2; rank++ {
		found := false
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pread" && rec.Arg(2) == "0" && rec.Arg(1) == fmt.Sprint(headerBytes) {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d did not read the header at open", rank)
		}
	}
	defer ResetMetadata()
}

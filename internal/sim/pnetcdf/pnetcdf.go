// Package pnetcdf implements a functional subset of PnetCDF on top of the
// simulated MPI-IO layer, routed through the Recorder⁺ tracing layer.
//
// The subset reproduces the PnetCDF behaviours the paper diagnoses:
//
//   - ncmpi_enddef: performs the library's internal header-consistency
//     MPI_Allreduce, then — when fill mode is on — writes each rank's
//     partition of every variable with MPI_File_write_at_all ("each rank
//     writes NULLs to distinct areas of the file", Fig. 5).
//
//   - Flexible collective puts (ncmpi_put_vara_all with an MPI datatype):
//     the library modifies the MPI file view before writing, which arms
//     MPI-IO collective buffering, so rank 0 performs the entire combined
//     write — conflicting with the other ranks' earlier fill writes. This is
//     the MPI-IO semantics violation of §V-C1.
//
//   - Typed element puts (ncmpi_put_var1_text_all, ncmpi_put_var_uchar_all):
//     no view change, so each rank's MPI_File_write_at_all performs its own
//     pwrite. When a test writes the same variable from every rank
//     (null_args, test_erange), the same location is written concurrently —
//     a POSIX-level data race caused by application-level misuse (§V-B2).
//
//   - ncmpi_wait: reproduces the implementation bug of §V-D — rank 0
//     completes pending requests with MPI_File_write_at_all while the other
//     ranks call MPI_File_write_all, a collective-call mismatch VerifyIO's
//     matcher flags as unmatched MPI calls.
//
// Variables are byte-element arrays; typed API variants differ only in the
// recorded function name.
package pnetcdf

import (
	"errors"
	"fmt"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/trace"
)

// Errors.
var (
	ErrDefineMode = errors.New("pnetcdf: operation invalid in define mode")
	ErrDataMode   = errors.New("pnetcdf: operation invalid in data mode")
	ErrIndepMode  = errors.New("pnetcdf: wrong independent/collective data mode")
	ErrNotFound   = errors.New("pnetcdf: not found")
)

// headerBytes is the file-header region reserved ahead of variable data.
const headerBytes = 1024

// File is an open PnetCDF dataset.
type File struct {
	r    *recorder.Rank
	mf   *mpiio.File
	comm *mpi.Comm

	defMode  bool
	indep    bool
	fillMode bool
	dims     []dim
	vars     []*Var
	attrs    []attr
	nextOff  int64

	pending []*pendingOp
	nextReq int
}

type dim struct {
	name string
	len  int64
}

// Var is a defined variable occupying a contiguous byte extent.
type Var struct {
	id   int
	name string
	dims []int64
	off  int64
}

func (v *Var) size() int64 {
	s := int64(1)
	for _, d := range v.dims {
		s *= d
	}
	return s
}

type pendingOp struct {
	req   string
	v     *Var
	start []int64
	count []int64
	data  []byte
}

// Create is the traced ncmpi_create.
func Create(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, comm: comm, defMode: true, fillMode: false, nextOff: headerBytes}
	err := r.Record(trace.LayerPnetCDF, "ncmpi_create", func() []string {
		return []string{comm.GID(), path, "NC_CLOBBER"}
	}, func() error {
		mf, err := mpiio.Open(r, comm, path, mpiio.ModeRdwr|mpiio.ModeCreate, cfg)
		if err != nil {
			return err
		}
		f.mf = mf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// DefDim is the traced ncmpi_def_dim.
func (f *File) DefDim(name string, length int64) (int, error) {
	id := -1
	err := f.r.Record(trace.LayerPnetCDF, "ncmpi_def_dim", func() []string {
		return []string{name, itoa(length), itoa(int64(id))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("%w: ncmpi_def_dim", ErrDataMode)
		}
		f.dims = append(f.dims, dim{name, length})
		id = len(f.dims) - 1
		return nil
	})
	return id, err
}

// DefVar is the traced ncmpi_def_var. Extents are laid out in definition
// order at enddef, so all ranks agree without coordination.
func (f *File) DefVar(name, xtype string, dimids ...int) (*Var, error) {
	v := &Var{name: name}
	err := f.r.Record(trace.LayerPnetCDF, "ncmpi_def_var", func() []string {
		return []string{name, xtype, fmt.Sprint(dimids), itoa(int64(v.id))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("%w: ncmpi_def_var", ErrDataMode)
		}
		if len(dimids) == 0 || len(dimids) > 2 {
			return fmt.Errorf("pnetcdf: %d-dimensional variables not supported", len(dimids))
		}
		v.dims = make([]int64, len(dimids))
		for i, d := range dimids {
			if d < 0 || d >= len(f.dims) {
				return fmt.Errorf("%w: dim id %d", ErrNotFound, d)
			}
			v.dims[i] = f.dims[d].len
		}
		v.id = len(f.vars)
		f.vars = append(f.vars, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// SetFill is the traced ncmpi_set_fill. With NC_FILL on, enddef writes fill
// values into every variable.
func (f *File) SetFill(fill bool) error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_set_fill", func() []string {
		mode := "NC_NOFILL"
		if fill {
			mode = "NC_FILL"
		}
		return []string{mode}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("%w: ncmpi_set_fill", ErrDataMode)
		}
		f.fillMode = fill
		return nil
	})
}

// EndDef is the traced ncmpi_enddef: allocates variable extents, performs
// the library's internal header-consistency allreduce, and — in fill mode —
// writes each rank's partition of every variable (Fig. 5's first
// MPI_File_write_at_all).
func (f *File) EndDef() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_enddef", func() []string {
		return []string{itoa(int64(len(f.vars)))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("%w: ncmpi_enddef", ErrDataMode)
		}
		f.defMode = false
		for _, v := range f.vars {
			if v.off == 0 {
				v.off = f.nextOff
				f.nextOff += v.size()
			}
		}
		// Header consistency check across ranks (PnetCDF really does
		// this; it is also the temporal edge that makes the fill-vs-
		// aggregated-write conflict POSIX-clean but MPI-IO-racy).
		if _, err := f.r.Allreduce(f.comm, int64(len(f.vars)), mpi.OpMax); err != nil {
			return err
		}
		// Rank 0 writes the serialized header (collective call, empty
		// contributions elsewhere).
		if err := f.writeHeader(); err != nil {
			return err
		}
		if !f.fillMode {
			return nil
		}
		n := int64(f.comm.Size())
		me := int64(commRank(f.comm, f.r.Rank()))
		for _, v := range f.vars {
			// Rank i fills its block partition [lo, hi).
			lo := v.size() * me / n
			hi := v.size() * (me + 1) / n
			if hi <= lo {
				continue
			}
			if err := f.mf.WriteAtAll(v.off+lo, make([]byte, hi-lo)); err != nil {
				return err
			}
		}
		return nil
	})
}

// Redef is the traced ncmpi_redef.
func (f *File) Redef() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_redef", nil, func() error {
		if f.defMode {
			return fmt.Errorf("%w: ncmpi_redef", ErrDefineMode)
		}
		f.defMode = true
		return nil
	})
}

// BeginIndep is the traced ncmpi_begin_indep_data.
func (f *File) BeginIndep() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_begin_indep_data", nil, func() error {
		f.indep = true
		return nil
	})
}

// EndIndep is the traced ncmpi_end_indep_data.
func (f *File) EndIndep() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_end_indep_data", nil, func() error {
		f.indep = false
		return nil
	})
}

// Sync is the traced ncmpi_sync (→ MPI_File_sync).
func (f *File) Sync() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_sync", nil, func() error {
		return f.mf.Sync()
	})
}

// Close is the traced ncmpi_close (→ MPI_File_close). The layout is saved
// to the shared header metadata so a later ncmpi_open can recover it.
func (f *File) Close() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_close", nil, func() error {
		f.saveMeta(f.mf.Path())
		return f.mf.Close()
	})
}

// extentOf flattens (start, count) into contiguous file extents.
func (v *Var) extents(start, count []int64) ([][2]int64, error) {
	if len(start) != len(v.dims) || len(count) != len(v.dims) {
		return nil, fmt.Errorf("pnetcdf: selection rank mismatch on %s", v.name)
	}
	for i := range start {
		if start[i] < 0 || count[i] < 0 || start[i]+count[i] > v.dims[i] {
			return nil, fmt.Errorf("pnetcdf: selection out of bounds on %s dim %d", v.name, i)
		}
	}
	if len(v.dims) == 1 {
		return [][2]int64{{v.off + start[0], count[0]}}, nil
	}
	rowLen := v.dims[1]
	out := make([][2]int64, 0, count[0])
	for r := int64(0); r < count[0]; r++ {
		out = append(out, [2]int64{v.off + (start[0]+r)*rowLen + start[1], count[1]})
	}
	return out, nil
}

// collectivePut is the common path of all blocking collective puts. flexible
// selects the flexible API behaviour: modify the MPI file view first, which
// arms collective buffering (§V-C1).
func (f *File) collectivePut(fn string, v *Var, start, count []int64, data []byte, flexible bool) error {
	return f.r.Record(trace.LayerPnetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count)}
	}, func() error {
		if f.defMode {
			return fmt.Errorf("%w: %s", ErrDefineMode, fn)
		}
		if f.indep {
			return fmt.Errorf("%w: collective call in independent mode", ErrIndepMode)
		}
		exts, err := v.extents(start, count)
		if err != nil {
			return err
		}
		if flexible {
			if err := f.mf.SetView(0, "MPI_BYTE", "flexible:"+v.name); err != nil {
				return err
			}
		}
		pos := int64(0)
		for _, e := range exts {
			if err := f.mf.WriteAtAll(e[0], data[pos:pos+e[1]]); err != nil {
				return err
			}
			pos += e[1]
		}
		return nil
	})
}

// collectiveGet mirrors collectivePut for reads.
func (f *File) collectiveGet(fn string, v *Var, start, count []int64, flexible bool) ([]byte, error) {
	var out []byte
	err := f.r.Record(trace.LayerPnetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count)}
	}, func() error {
		if f.defMode {
			return fmt.Errorf("%w: %s", ErrDefineMode, fn)
		}
		if f.indep {
			return fmt.Errorf("%w: collective call in independent mode", ErrIndepMode)
		}
		exts, err := v.extents(start, count)
		if err != nil {
			return err
		}
		if flexible {
			if err := f.mf.SetView(0, "MPI_BYTE", "flexible:"+v.name); err != nil {
				return err
			}
		}
		for _, e := range exts {
			buf, err := f.mf.ReadAtAll(e[0], int(e[1]))
			if err != nil {
				return err
			}
			out = append(out, buf...)
		}
		return nil
	})
	return out, err
}

// independentPut is the common path of independent puts.
func (f *File) independentPut(fn string, v *Var, start, count []int64, data []byte) error {
	return f.r.Record(trace.LayerPnetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count)}
	}, func() error {
		if f.defMode {
			return fmt.Errorf("%w: %s", ErrDefineMode, fn)
		}
		if !f.indep {
			return fmt.Errorf("%w: independent call in collective mode", ErrIndepMode)
		}
		exts, err := v.extents(start, count)
		if err != nil {
			return err
		}
		pos := int64(0)
		for _, e := range exts {
			if err := f.mf.WriteAt(e[0], data[pos:pos+e[1]]); err != nil {
				return err
			}
			pos += e[1]
		}
		return nil
	})
}

func (v *Var) wholeSel() ([]int64, []int64) {
	start := make([]int64, len(v.dims))
	return start, append([]int64(nil), v.dims...)
}

func commRank(c *mpi.Comm, worldRank int) int {
	for i, m := range c.Members() {
		if m == worldRank {
			return i
		}
	}
	return -1
}

func itoa(v int64) string { return fmt.Sprint(v) }

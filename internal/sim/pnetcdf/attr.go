package pnetcdf

import (
	"fmt"

	"verifyio/internal/trace"
)

// Attributes are header data: they live in the reserved header region and
// are materialized when rank 0 writes the header at ncmpi_enddef (real
// PnetCDF behaviour — only one process writes the file header; the others
// participate in the collective with empty contributions).

type attr struct {
	varid int // -1 for global attributes
	name  string
	value []byte
}

// GlobalAttr is the varid marker for global (file-level) attributes.
const GlobalAttr = -1

// PutAttText is the traced ncmpi_put_att_text (define mode only). v may be
// nil for a global attribute.
func (f *File) PutAttText(v *Var, name string, value []byte) error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_put_att_text", func() []string {
		return []string{varName(v), name, itoa(int64(len(value)))}
	}, func() error {
		if !f.defMode {
			return fmt.Errorf("%w: ncmpi_put_att_text", ErrDataMode)
		}
		id := GlobalAttr
		if v != nil {
			id = v.id
		}
		for i := range f.attrs {
			if f.attrs[i].varid == id && f.attrs[i].name == name {
				f.attrs[i].value = append([]byte(nil), value...)
				return nil
			}
		}
		f.attrs = append(f.attrs, attr{varid: id, name: name, value: append([]byte(nil), value...)})
		return nil
	})
}

// GetAttText is the traced ncmpi_get_att_text.
func (f *File) GetAttText(v *Var, name string) ([]byte, error) {
	var out []byte
	err := f.r.Record(trace.LayerPnetCDF, "ncmpi_get_att_text", func() []string {
		return []string{varName(v), name, itoa(int64(len(out)))}
	}, func() error {
		id := GlobalAttr
		if v != nil {
			id = v.id
		}
		for i := range f.attrs {
			if f.attrs[i].varid == id && f.attrs[i].name == name {
				out = append([]byte(nil), f.attrs[i].value...)
				return nil
			}
		}
		return fmt.Errorf("%w: attribute %s", ErrNotFound, name)
	})
	return out, err
}

// InqNatts is the traced ncmpi_inq_natts (global attribute count).
func (f *File) InqNatts() (int, error) {
	n := 0
	err := f.r.Record(trace.LayerPnetCDF, "ncmpi_inq_natts", func() []string {
		return []string{itoa(int64(n))}
	}, func() error {
		for _, a := range f.attrs {
			if a.varid == GlobalAttr {
				n++
			}
		}
		return nil
	})
	return n, err
}

func varName(v *Var) string {
	if v == nil {
		return "NC_GLOBAL"
	}
	return v.name
}

// headerBlob serializes the header (dims, vars, attrs) into the reserved
// region; deterministic across ranks so rank 0's write represents everyone's
// view.
func (f *File) headerBlob() ([]byte, error) {
	blob := []byte("CDF5")
	for _, d := range f.dims {
		blob = append(blob, []byte(fmt.Sprintf("|d:%s=%d", d.name, d.len))...)
	}
	for _, v := range f.vars {
		blob = append(blob, []byte(fmt.Sprintf("|v:%s@%d%v", v.name, v.off, v.dims))...)
	}
	for _, a := range f.attrs {
		blob = append(blob, []byte(fmt.Sprintf("|a:%d/%s=%q", a.varid, a.name, a.value))...)
	}
	if int64(len(blob)) > headerBytes {
		return nil, fmt.Errorf("pnetcdf: header (%d bytes) exceeds the reserved %d-byte region", len(blob), headerBytes)
	}
	return blob, nil
}

// writeHeader is the collective header write inside enddef: comm rank 0
// contributes the serialized header, everyone else an empty piece.
func (f *File) writeHeader() error {
	blob, err := f.headerBlob()
	if err != nil {
		return err
	}
	if commRank(f.comm, f.r.Rank()) != 0 {
		blob = nil
	}
	return f.mf.WriteAtAll(0, blob)
}

// readHeader is the per-process header read at ncmpi_open.
func (f *File) readHeader() error {
	_, err := f.mf.ReadAt(0, int(headerBytes))
	return err
}

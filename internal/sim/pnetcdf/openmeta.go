package pnetcdf

import (
	"fmt"
	"sync"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// Shared file-format metadata, so a file created in one phase of a program
// can be reopened (ncmpi_open) in a later phase with the same variable
// layout — the role the on-disk header plays for real PnetCDF. Keyed by
// (file system, path); all ranks observe one consistent layout.

type fileMeta struct {
	dims    []dim
	vars    []varMeta
	attrs   []attr
	nextOff int64
}

type varMeta struct {
	name string
	dims []int64
	off  int64
}

type metaKey struct {
	fs   *posixfs.FS
	path string
}

var (
	metaMu  sync.Mutex
	metaTab = map[metaKey]*fileMeta{}
)

// saveMeta records the file's layout at close time.
func (f *File) saveMeta(path string) {
	metaMu.Lock()
	defer metaMu.Unlock()
	m := &fileMeta{dims: append([]dim(nil), f.dims...),
		attrs: append([]attr(nil), f.attrs...), nextOff: f.nextOff}
	for _, v := range f.vars {
		m.vars = append(m.vars, varMeta{name: v.name, dims: append([]int64(nil), v.dims...), off: v.off})
	}
	metaTab[metaKey{f.r.FSProc().FS(), path}] = m
}

// Open is the traced ncmpi_open: reopens an existing dataset, recovering
// dims and variables from the stored header metadata.
func Open(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, comm: comm, defMode: false, nextOff: headerBytes}
	err := r.Record(trace.LayerPnetCDF, "ncmpi_open", func() []string {
		return []string{comm.GID(), path, "NC_NOWRITE"}
	}, func() error {
		metaMu.Lock()
		m, ok := metaTab[metaKey{r.FSProc().FS(), path}]
		metaMu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %s is not a PnetCDF dataset", ErrNotFound, path)
		}
		mf, err := mpiio.Open(r, comm, path, mpiio.ModeRdwr, cfg)
		if err != nil {
			return err
		}
		f.mf = mf
		f.dims = append([]dim(nil), m.dims...)
		f.attrs = append([]attr(nil), m.attrs...)
		f.nextOff = m.nextOff
		for i, vm := range m.vars {
			f.vars = append(f.vars, &Var{id: i, name: vm.name,
				dims: append([]int64(nil), vm.dims...), off: vm.off})
		}
		// Every opening process reads the file header.
		return f.readHeader()
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ResetMetadata clears the shared layout registry; the corpus runner calls
// it between executions.
func ResetMetadata() {
	metaMu.Lock()
	defer metaMu.Unlock()
	metaTab = map[metaKey]*fileMeta{}
}

package pnetcdf

import (
	"fmt"

	"verifyio/internal/trace"
)

// Typed and flexible public API variants, mapping onto the common put/get
// paths. Variables are byte-element arrays; the type suffix only changes the
// recorded function name (see the package comment).

// PutVaraTextAll is the traced ncmpi_put_vara_text_all.
func (f *File) PutVaraTextAll(v *Var, start, count []int64, data []byte) error {
	return f.collectivePut("ncmpi_put_vara_text_all", v, start, count, data, false)
}

// PutVaraIntAll is the traced ncmpi_put_vara_int_all.
func (f *File) PutVaraIntAll(v *Var, start, count []int64, data []byte) error {
	return f.collectivePut("ncmpi_put_vara_int_all", v, start, count, data, false)
}

// PutVaraUcharAll is the traced ncmpi_put_vara_uchar_all.
func (f *File) PutVaraUcharAll(v *Var, start, count []int64, data []byte) error {
	return f.collectivePut("ncmpi_put_vara_uchar_all", v, start, count, data, false)
}

// PutVar1TextAll is the traced ncmpi_put_var1_text_all: a single-element
// collective write — the null_args call of §V-B2. Every rank that calls it
// with the same index writes the same file location.
func (f *File) PutVar1TextAll(v *Var, index []int64, data byte) error {
	count := make([]int64, len(index))
	for i := range count {
		count[i] = 1
	}
	return f.collectivePut("ncmpi_put_var1_text_all", v, index, count, []byte{data}, false)
}

// PutVarUcharAll is the traced ncmpi_put_var_uchar_all: writes the whole
// variable — the test_erange call of §V-B2.
func (f *File) PutVarUcharAll(v *Var, data []byte) error {
	start, count := v.wholeSel()
	return f.collectivePut("ncmpi_put_var_uchar_all", v, start, count, data, false)
}

// PutVarTextAll is the traced ncmpi_put_var_text_all.
func (f *File) PutVarTextAll(v *Var, data []byte) error {
	start, count := v.wholeSel()
	return f.collectivePut("ncmpi_put_var_text_all", v, start, count, data, false)
}

// PutVaraAll is the traced flexible ncmpi_put_vara_all (MPI-datatype
// argument in real PnetCDF). The flexible path modifies the MPI file view
// before writing, arming collective buffering — the behaviour behind the
// flexible test's MPI-IO violation (§V-C1, Fig. 5).
func (f *File) PutVaraAll(v *Var, start, count []int64, data []byte) error {
	return f.collectivePut("ncmpi_put_vara_all", v, start, count, data, true)
}

// GetVaraAll is the traced flexible ncmpi_get_vara_all.
func (f *File) GetVaraAll(v *Var, start, count []int64) ([]byte, error) {
	return f.collectiveGet("ncmpi_get_vara_all", v, start, count, true)
}

// GetVaraIntAll is the traced ncmpi_get_vara_int_all.
func (f *File) GetVaraIntAll(v *Var, start, count []int64) ([]byte, error) {
	return f.collectiveGet("ncmpi_get_vara_int_all", v, start, count, false)
}

// GetVaraTextAll is the traced ncmpi_get_vara_text_all.
func (f *File) GetVaraTextAll(v *Var, start, count []int64) ([]byte, error) {
	return f.collectiveGet("ncmpi_get_vara_text_all", v, start, count, false)
}

// GetVarTextAll is the traced ncmpi_get_var_text_all.
func (f *File) GetVarTextAll(v *Var) ([]byte, error) {
	start, count := v.wholeSel()
	return f.collectiveGet("ncmpi_get_var_text_all", v, start, count, false)
}

// PutVaraInt is the traced independent ncmpi_put_vara_int (requires
// independent data mode).
func (f *File) PutVaraInt(v *Var, start, count []int64, data []byte) error {
	return f.independentPut("ncmpi_put_vara_int", v, start, count, data)
}

// PutVaraText is the traced independent ncmpi_put_vara_text.
func (f *File) PutVaraText(v *Var, start, count []int64, data []byte) error {
	return f.independentPut("ncmpi_put_vara_text", v, start, count, data)
}

// IputVara is the traced non-blocking ncmpi_iput_vara_<type>: the operation
// is queued and performed by ncmpi_wait / ncmpi_wait_all.
func (f *File) IputVara(xtype string, v *Var, start, count []int64, data []byte) (string, error) {
	op := &pendingOp{
		v:     v,
		start: append([]int64(nil), start...),
		count: append([]int64(nil), count...),
		data:  append([]byte(nil), data...),
	}
	fn := "ncmpi_iput_vara_" + xtype
	err := f.r.Record(trace.LayerPnetCDF, fn, func() []string {
		return []string{v.name, fmt.Sprint(start), fmt.Sprint(count), op.req}
	}, func() error {
		if f.defMode {
			return fmt.Errorf("%w: %s", ErrDefineMode, fn)
		}
		op.req = fmt.Sprintf("ncreq-%d.%d", f.r.Rank(), f.nextReq)
		f.nextReq++
		f.pending = append(f.pending, op)
		return nil
	})
	if err != nil {
		return "", err
	}
	return op.req, nil
}

// WaitAll is the traced ncmpi_wait_all: completes every pending request with
// uniform collective writes — the correct implementation path.
func (f *File) WaitAll() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_wait_all", func() []string {
		args := []string{itoa(int64(len(f.pending)))}
		for _, op := range f.pending {
			args = append(args, op.req)
		}
		return args
	}, func() error {
		ops := f.pending
		f.pending = nil
		for _, op := range ops {
			exts, err := op.v.extents(op.start, op.count)
			if err != nil {
				return err
			}
			pos := int64(0)
			for _, e := range exts {
				if err := f.mf.WriteAtAll(e[0], op.data[pos:pos+e[1]]); err != nil {
					return err
				}
				pos += e[1]
			}
		}
		return nil
	})
}

// Wait is the traced ncmpi_wait, reproducing the implementation bug of §V-D:
// rank 0 completes requests with MPI_File_write_at_all while every other
// rank takes a code path that issues MPI_File_write_all — mismatched
// collective calls that VerifyIO's matcher reports.
func (f *File) Wait() error {
	return f.r.Record(trace.LayerPnetCDF, "ncmpi_wait", func() []string {
		args := []string{itoa(int64(len(f.pending)))}
		for _, op := range f.pending {
			args = append(args, op.req)
		}
		return args
	}, func() error {
		ops := f.pending
		f.pending = nil
		rank0 := commRank(f.comm, f.r.Rank()) == 0
		for _, op := range ops {
			exts, err := op.v.extents(op.start, op.count)
			if err != nil {
				return err
			}
			pos := int64(0)
			for _, e := range exts {
				if rank0 {
					err = f.mf.WriteAtAll(e[0], op.data[pos:pos+e[1]])
				} else {
					if err = f.mf.FileSeek(e[0], 0); err != nil {
						return err
					}
					err = f.mf.WriteAll(op.data[pos : pos+e[1]])
				}
				if err != nil {
					return err
				}
				pos += e[1]
			}
		}
		return nil
	})
}

// InqVarid is the traced ncmpi_inq_varid.
func (f *File) InqVarid(name string) (*Var, error) {
	var out *Var
	err := f.r.Record(trace.LayerPnetCDF, "ncmpi_inq_varid", func() []string {
		id := int64(-1)
		if out != nil {
			id = int64(out.id)
		}
		return []string{name, itoa(id)}
	}, func() error {
		for _, v := range f.vars {
			if v.name == name {
				out = v
				return nil
			}
		}
		return fmt.Errorf("%w: variable %s", ErrNotFound, name)
	})
	return out, err
}

// Vars returns the defined variables in definition order.
func (f *File) Vars() []*Var { return f.vars }

// Name returns the variable's name.
func (v *Var) Name() string { return v.name }

// Size returns the variable's total element count.
func (v *Var) Size() int64 { return v.size() }

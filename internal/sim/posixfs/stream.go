package posixfs

import "fmt"

// Stream is a FILE*-style buffered handle. The paper's conflict detector must
// handle the same file being accessed simultaneously through an int fd
// (pwrite) and a FILE* (fwrite); Stream provides the second handle kind.
// Streams wrap an underlying descriptor, so two handles to one path really
// are distinct handles with distinct positions.
type Stream struct {
	p      *Proc
	fd     int
	id     int
	closed bool
}

// Fopen opens path with a C fopen-style mode string: "r", "r+", "w", "w+",
// "a", "a+".
func (p *Proc) Fopen(path, mode string) (*Stream, error) {
	var flags OpenFlag
	switch mode {
	case "r":
		flags = ORdonly
	case "r+":
		flags = ORdwr
	case "w":
		flags = OWronly | OCreate | OTrunc
	case "w+":
		flags = ORdwr | OCreate | OTrunc
	case "a":
		flags = OWronly | OCreate | OAppend
	case "a+":
		flags = ORdwr | OCreate | OAppend
	default:
		return nil, fmt.Errorf("%w: fopen mode %q", ErrInvalid, mode)
	}
	fd, err := p.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &Stream{p: p, fd: fd, id: fd}, nil
}

// ID returns a stable identifier for the stream, distinct from any raw fd
// currently open (it reuses the underlying descriptor number, which is
// unique per process).
func (s *Stream) ID() int { return s.id }

// Fwrite writes count items of size bytes each, C fwrite-style, and returns
// the number of items written.
func (s *Stream) Fwrite(data []byte, size, count int) (int, error) {
	if err := s.ok(); err != nil {
		return 0, err
	}
	if size <= 0 || count < 0 {
		return 0, ErrInvalid
	}
	total := size * count
	if total > len(data) {
		return 0, fmt.Errorf("%w: fwrite of %d bytes from %d-byte buffer", ErrInvalid, total, len(data))
	}
	n, err := s.p.Write(s.fd, data[:total])
	return n / size, err
}

// Fread reads count items of size bytes each into dst and returns the number
// of complete items read.
func (s *Stream) Fread(dst []byte, size, count int) (int, error) {
	if err := s.ok(); err != nil {
		return 0, err
	}
	if size <= 0 || count < 0 {
		return 0, ErrInvalid
	}
	total := size * count
	if total > len(dst) {
		return 0, fmt.Errorf("%w: fread of %d bytes into %d-byte buffer", ErrInvalid, total, len(dst))
	}
	n, err := s.p.Read(s.fd, dst[:total])
	return n / size, err
}

// Fseek repositions the stream.
func (s *Stream) Fseek(off int64, whence int) error {
	if err := s.ok(); err != nil {
		return err
	}
	_, err := s.p.Lseek(s.fd, off, whence)
	return err
}

// Ftell reports the current stream position.
func (s *Stream) Ftell() (int64, error) {
	if err := s.ok(); err != nil {
		return 0, err
	}
	return s.p.Tell(s.fd)
}

// Fflush flushes the stream's userspace buffer. Visibility-wise this model
// buffers at the process level, so fflush alone does not publish under
// relaxed modes — matching real systems, where fflush moves data to the
// kernel but fsync/close controls cross-node visibility.
func (s *Stream) Fflush() error { return s.ok() }

// Fclose closes the stream (and publishes under session consistency, like
// close).
func (s *Stream) Fclose() error {
	if err := s.ok(); err != nil {
		return err
	}
	s.closed = true
	return s.p.Close(s.fd)
}

// Path reports the path the stream refers to.
func (s *Stream) Path() (string, error) {
	if err := s.ok(); err != nil {
		return "", err
	}
	return s.p.Path(s.fd)
}

func (s *Stream) ok() error {
	if s.closed {
		return fmt.Errorf("%w: stream %d is closed", ErrBadFD, s.id)
	}
	return nil
}

package posixfs

import (
	"fmt"
	"sort"
)

// Proc is one process's view of the file system: its open descriptors, file
// positions, and — under relaxed consistency modes — its not-yet-published
// write overlay per file.
type Proc struct {
	fs       *FS
	rank     int
	fds      map[int]*openFile
	overlays map[string]*overlay
	nextFD   int
}

type openFile struct {
	path   string
	pos    int64
	flags  OpenFlag
	closed bool
}

// overlay holds a process's unpublished writes to one file.
type overlay struct {
	extents     []extent // sorted by off, non-overlapping
	truncatedTo int64    // -1 when no local truncate pending
	localEOF    int64    // furthest local write end (≥ committed size at writes)
}

type extent struct {
	off  int64
	data []byte
}

func newOverlay() *overlay { return &overlay{truncatedTo: -1} }

// Rank reports which rank this view belongs to.
func (p *Proc) Rank() int { return p.rank }

// FS returns the shared store this view belongs to.
func (p *Proc) FS() *FS { return p.fs }

// Open opens path and returns a new file descriptor.
func (p *Proc) Open(path string, flags OpenFlag) (int, error) {
	_, err := p.fs.lookup(path, flags&OCreate != 0, flags&OExcl != 0, flags&OTrunc != 0)
	if err != nil {
		return -1, err
	}
	if flags&OTrunc != 0 {
		// A truncating open also discards this process's overlay.
		if ov := p.overlays[path]; ov != nil {
			ov.extents = nil
			ov.truncatedTo = 0
			ov.localEOF = 0
		}
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &openFile{path: path, flags: flags}
	return fd, nil
}

// Close closes fd. Under ModeSession this publishes the process's writes to
// the file (close-to-open consistency).
func (p *Proc) Close(fd int) error {
	of, err := p.file(fd)
	if err != nil {
		return err
	}
	if p.fs.mode == ModeSession {
		p.publish(of.path)
	}
	of.closed = true
	delete(p.fds, fd)
	return nil
}

// Fsync flushes fd. Under ModeCommit this is the commit operation that
// publishes the process's writes. Under strict POSIX it is a no-op for
// visibility (writes are already visible); it still validates fd.
func (p *Proc) Fsync(fd int) error {
	of, err := p.file(fd)
	if err != nil {
		return err
	}
	if p.fs.mode == ModeCommit || p.fs.mode == ModeMPIIO {
		p.publish(of.path)
	}
	_ = of
	return nil
}

// Flush unconditionally publishes this process's buffered writes to path.
// The MPI-IO layer maps MPI_File_sync / MPI_File_close onto it.
func (p *Proc) Flush(path string) {
	p.publish(path)
}

// Write writes data at the current position and advances it. With OAppend
// the position is first moved to the current end of file.
func (p *Proc) Write(fd int, data []byte) (int, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.writable() {
		return 0, ErrReadOnly
	}
	if of.flags&OAppend != 0 {
		of.pos = p.visibleSize(of.path)
	}
	n, err := p.writeAt(of.path, data, of.pos)
	of.pos += int64(n)
	return n, err
}

// Pwrite writes data at off without moving the file position.
func (p *Proc) Pwrite(fd int, data []byte, off int64) (int, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.writable() {
		return 0, ErrReadOnly
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	return p.writeAt(of.path, data, off)
}

// Read reads up to len(dst) bytes at the current position and advances it.
func (p *Proc) Read(fd int, dst []byte) (int, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.readable() {
		return 0, ErrWriteOnly
	}
	n := p.readAt(of.path, dst, of.pos)
	of.pos += int64(n)
	return n, nil
}

// Pread reads up to len(dst) bytes at off without moving the position.
func (p *Proc) Pread(fd int, dst []byte, off int64) (int, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.readable() {
		return 0, ErrWriteOnly
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	return p.readAt(of.path, dst, off), nil
}

// Writev writes the buffers back to back at the current position (vector
// I/O is scattered in memory but contiguous in the file).
func (p *Proc) Writev(fd int, bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	flat := make([]byte, 0, total)
	for _, b := range bufs {
		flat = append(flat, b...)
	}
	return p.Write(fd, flat)
}

// Readv reads into buffers of the given lengths from the current position
// and returns the flattened data actually read.
func (p *Proc) Readv(fd int, lens []int) ([]byte, error) {
	total := 0
	for _, n := range lens {
		if n < 0 {
			return nil, ErrInvalid
		}
		total += n
	}
	buf := make([]byte, total)
	n, err := p.Read(fd, buf)
	return buf[:n], err
}

// Lseek repositions fd and returns the new offset.
func (p *Proc) Lseek(fd int, off int64, whence int) (int64, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = of.pos
	case SeekEnd:
		base = p.visibleSize(of.path)
	default:
		return 0, ErrInvalid
	}
	np := base + off
	if np < 0 {
		return 0, ErrInvalid
	}
	of.pos = np
	return np, nil
}

// Ftruncate sets the file size.
func (p *Proc) Ftruncate(fd int, size int64) error {
	of, err := p.file(fd)
	if err != nil {
		return err
	}
	if !of.flags.writable() {
		return ErrReadOnly
	}
	if size < 0 {
		return ErrInvalid
	}
	if p.fs.mode == ModePOSIX {
		p.fs.mu.Lock()
		if f, ok := p.fs.files[of.path]; ok {
			f.data = resize(f.data, size)
		}
		p.fs.mu.Unlock()
		return nil
	}
	ov := p.overlay(of.path)
	ov.truncatedTo = size
	var kept []extent
	for _, e := range ov.extents {
		if e.off >= size {
			continue
		}
		if end := e.off + int64(len(e.data)); end > size {
			e.data = e.data[:size-e.off]
		}
		kept = append(kept, e)
	}
	ov.extents = kept
	ov.localEOF = size
	return nil
}

// Tell reports the current position of fd.
func (p *Proc) Tell(fd int) (int64, error) {
	of, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	return of.pos, nil
}

// Path reports the path fd refers to.
func (p *Proc) Path(fd int) (string, error) {
	of, err := p.file(fd)
	if err != nil {
		return "", err
	}
	return of.path, nil
}

// VisibleData returns what this process would read from path right now:
// committed data overlaid with its own unpublished writes.
func (p *Proc) VisibleData(path string) []byte {
	size := p.visibleSize(path)
	dst := make([]byte, size)
	p.readAt(path, dst, 0)
	return dst
}

func (p *Proc) file(fd int) (*openFile, error) {
	of, ok := p.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return of, nil
}

func (p *Proc) overlay(path string) *overlay {
	ov, ok := p.overlays[path]
	if !ok {
		ov = newOverlay()
		p.overlays[path] = ov
	}
	return ov
}

func (p *Proc) publish(path string) {
	if ov, ok := p.overlays[path]; ok {
		p.fs.publish(path, ov)
		delete(p.overlays, path)
	}
}

// visibleSize is the size this process observes: the committed size, the
// local truncate if pending, extended by local writes.
func (p *Proc) visibleSize(path string) int64 {
	size := p.fs.committedSizeLocked(path)
	if ov, ok := p.overlays[path]; ok {
		if ov.truncatedTo >= 0 {
			size = ov.truncatedTo
		}
		if ov.localEOF > size {
			size = ov.localEOF
		}
	}
	return size
}

func (p *Proc) writeAt(path string, data []byte, off int64) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	if p.fs.mode == ModePOSIX {
		ov := newOverlay()
		ov.addExtent(off, data)
		p.fs.publish(path, ov)
		return len(data), nil
	}
	ov := p.overlay(path)
	ov.addExtent(off, data)
	if end := off + int64(len(data)); end > ov.localEOF {
		ov.localEOF = end
	}
	return len(data), nil
}

func (p *Proc) readAt(path string, dst []byte, off int64) int {
	if len(dst) == 0 {
		return 0
	}
	size := p.visibleSize(path)
	if off >= size {
		return 0
	}
	n := len(dst)
	if int64(n) > size-off {
		n = int(size - off)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	// Committed bytes first (unless locally truncated below them)...
	limit := int64(-1)
	ov := p.overlays[path]
	if ov != nil && ov.truncatedTo >= 0 {
		limit = ov.truncatedTo
	}
	if limit < 0 || off < limit {
		cdst := dst
		if limit >= 0 && off+int64(len(cdst)) > limit {
			cdst = cdst[:limit-off]
		}
		p.fs.readCommitted(path, cdst, off)
	}
	// ...then this process's own unpublished writes on top.
	if ov != nil {
		for _, e := range ov.extents {
			eEnd := e.off + int64(len(e.data))
			if eEnd <= off || e.off >= off+int64(n) {
				continue
			}
			srcStart := int64(0)
			dstStart := e.off - off
			if dstStart < 0 {
				srcStart = -dstStart
				dstStart = 0
			}
			copy(dst[dstStart:], e.data[srcStart:])
		}
	}
	return n
}

// addExtent inserts [off, off+len(data)) into the overlay, keeping extents
// sorted and non-overlapping; newer data wins.
func (ov *overlay) addExtent(off int64, data []byte) {
	nd := make([]byte, len(data))
	copy(nd, data)
	ne := extent{off: off, data: nd}
	end := off + int64(len(nd))

	var out []extent
	for _, e := range ov.extents {
		eEnd := e.off + int64(len(e.data))
		switch {
		case eEnd <= off || e.off >= end:
			out = append(out, e) // disjoint
		default:
			// Overlap: keep the non-overlapped pieces of the old extent.
			if e.off < off {
				out = append(out, extent{off: e.off, data: e.data[:off-e.off]})
			}
			if eEnd > end {
				out = append(out, extent{off: end, data: e.data[end-e.off:]})
			}
		}
	}
	out = append(out, ne)
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	ov.extents = out
}

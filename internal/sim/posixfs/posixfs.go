// Package posixfs implements an in-memory parallel file system with the
// POSIX interface and a pluggable consistency model.
//
// The paper's motivation is that emerging HPC file systems (UnifyFS, BurstFS,
// GfarmBB, ...) keep the POSIX *interface* but relax POSIX *consistency*.
// This package simulates exactly that: every process (MPI rank) gets its own
// view (Proc) of a shared store (FS). Under ModePOSIX writes are immediately
// visible to all processes; under the relaxed modes writes stay in a
// process-local overlay until a mode-specific synchronization operation
// publishes them:
//
//   - ModeCommit:  a commit operation (fsync, as in UnifyFS) publishes.
//   - ModeSession: closing the file publishes (close-to-open consistency).
//   - ModeMPIIO:   only an explicit Flush (issued by MPI_File_sync or
//     MPI_File_close in the MPI-IO layer) publishes.
//
// This lets example programs demonstrate the silent data corruption the
// paper warns about: an execution VerifyIO flags as improperly synchronized
// really does read stale bytes when replayed on a relaxed-mode FS, while a
// properly synchronized one does not.
package posixfs

import (
	"errors"
	"fmt"
	"sync"
)

// Mode selects the consistency model the file system provides.
type Mode int

// Supported consistency modes.
const (
	// ModePOSIX provides strong POSIX consistency: writes are globally
	// visible as soon as the write call returns.
	ModePOSIX Mode = iota
	// ModeCommit provides commit consistency: writes become globally
	// visible when the writer issues fsync (the commit operation).
	ModeCommit
	// ModeSession provides session (close-to-open) consistency: writes
	// become globally visible when the writer closes the file.
	ModeSession
	// ModeMPIIO buffers writes until an explicit Flush, the behaviour the
	// MPI-IO layer maps MPI_File_sync and MPI_File_close onto.
	ModeMPIIO
)

var modeNames = map[Mode]string{
	ModePOSIX:   "posix",
	ModeCommit:  "commit",
	ModeSession: "session",
	ModeMPIIO:   "mpi-io",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Errors returned by file operations.
var (
	ErrNotExist  = errors.New("posixfs: no such file")
	ErrExist     = errors.New("posixfs: file exists")
	ErrBadFD     = errors.New("posixfs: bad file descriptor")
	ErrReadOnly  = errors.New("posixfs: file not open for writing")
	ErrWriteOnly = errors.New("posixfs: file not open for reading")
	ErrInvalid   = errors.New("posixfs: invalid argument")
)

// Open flags, combinable with |.
type OpenFlag int

const (
	ORdonly OpenFlag = 0x0
	OWronly OpenFlag = 0x1
	ORdwr   OpenFlag = 0x2
	OCreate OpenFlag = 0x40
	OTrunc  OpenFlag = 0x200
	OAppend OpenFlag = 0x400
	OExcl   OpenFlag = 0x80

	accessMask OpenFlag = 0x3
)

func (f OpenFlag) readable() bool { return f&accessMask != OWronly }
func (f OpenFlag) writable() bool { return f&accessMask != ORdonly }

// String renders flags the way the tracer records them ("rw|creat|trunc").
func (f OpenFlag) String() string {
	var s string
	switch f & accessMask {
	case ORdonly:
		s = "r"
	case OWronly:
		s = "w"
	default:
		s = "rw"
	}
	if f&OCreate != 0 {
		s += "|creat"
	}
	if f&OTrunc != 0 {
		s += "|trunc"
	}
	if f&OAppend != 0 {
		s += "|append"
	}
	if f&OExcl != 0 {
		s += "|excl"
	}
	return s
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// FS is the shared store: the "disk" every process sees after publication.
type FS struct {
	mode Mode

	mu    sync.Mutex
	files map[string]*file
}

type file struct {
	data []byte // committed (globally visible) contents
}

// New creates an empty file system with the given consistency mode.
func New(mode Mode) *FS {
	return &FS{mode: mode, files: make(map[string]*file)}
}

// Mode reports the configured consistency mode.
func (fs *FS) Mode() Mode { return fs.mode }

// Proc returns a process-local view for the given rank. Each Proc must only
// be used from a single goroutine (its rank); the FS itself is safe for
// concurrent use by many Procs.
func (fs *FS) Proc(rank int) *Proc {
	return &Proc{
		fs:       fs,
		rank:     rank,
		fds:      make(map[int]*openFile),
		overlays: make(map[string]*overlay),
		nextFD:   3, // 0/1/2 are conventionally stdio
	}
}

// CommittedData returns a copy of the globally visible contents of path.
// Test helpers and the example programs use it to check what "the disk"
// holds, independent of any process overlay.
func (fs *FS) CommittedData(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// CommittedSize returns the globally visible size of path.
func (fs *FS) CommittedSize(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return int64(len(f.data)), nil
}

// Paths returns the names of all files that exist in the committed store.
func (fs *FS) Paths() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	return out
}

// Unlink removes path from the committed namespace. Open descriptors keep
// working on the orphaned contents (POSIX semantics); a subsequent create
// produces a fresh file.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(fs.files, path)
	return nil
}

// Stat reports the committed size of path.
func (fs *FS) Stat(path string) (int64, error) {
	return fs.CommittedSize(path)
}

// lookup returns the file for path, creating it when create is set.
func (fs *FS) lookup(path string, create, excl, trunc bool) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		if !create {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		f = &file{}
		fs.files[path] = f
		return f, nil
	}
	if excl {
		return nil, fmt.Errorf("%w: %s", ErrExist, path)
	}
	if trunc {
		f.data = f.data[:0]
	}
	return f, nil
}

// publish merges a process overlay into the committed store.
func (fs *FS) publish(path string, ov *overlay) {
	if ov == nil || len(ov.extents) == 0 && ov.truncatedTo < 0 {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		f = &file{}
		fs.files[path] = f
	}
	if ov.truncatedTo >= 0 {
		f.data = resize(f.data, ov.truncatedTo)
	}
	for _, e := range ov.extents {
		end := e.off + int64(len(e.data))
		if int64(len(f.data)) < end {
			f.data = resize(f.data, end)
		}
		copy(f.data[e.off:end], e.data)
	}
}

// readCommitted copies committed bytes [off, off+len(dst)) into dst and
// returns how many bytes were available.
func (fs *FS) readCommitted(path string, dst []byte, off int64) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok || off >= int64(len(f.data)) {
		return 0
	}
	return copy(dst, f.data[off:])
}

func (fs *FS) committedSizeLocked(path string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[path]; ok {
		return int64(len(f.data))
	}
	return 0
}

func resize(b []byte, n int64) []byte {
	if int64(len(b)) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

package posixfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpenFlags(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)

	if _, err := p.Open("missing", ORdonly); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open missing = %v, want ErrNotExist", err)
	}
	fd, err := p.Open("f", OWronly|OCreate)
	if err != nil {
		t.Fatalf("Open create: %v", err)
	}
	if _, err := p.Open("f", OWronly|OCreate|OExcl); !errors.Is(err, ErrExist) {
		t.Errorf("Open excl existing = %v, want ErrExist", err)
	}
	if _, err := p.Write(fd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// O_TRUNC resets the committed contents.
	if _, err := p.Open("f", OWronly|OTrunc); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.CommittedSize("f"); n != 0 {
		t.Errorf("size after O_TRUNC = %d, want 0", n)
	}
}

func TestAccessModeEnforcement(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	rd, _ := p.Open("f", ORdonly|OCreate)
	if _, err := p.Write(rd, []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Write on O_RDONLY = %v, want ErrReadOnly", err)
	}
	wr, _ := p.Open("f", OWronly)
	if _, err := p.Read(wr, make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Errorf("Read on O_WRONLY = %v, want ErrWriteOnly", err)
	}
	if err := p.Close(rd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(rd, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Errorf("Read on closed fd = %v, want ErrBadFD", err)
	}
}

func TestPosixReadWriteSeek(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", ORdwr|OCreate)

	if _, err := p.Write(fd, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if pos, _ := p.Tell(fd); pos != 6 {
		t.Errorf("pos after write = %d, want 6", pos)
	}
	if _, err := p.Lseek(fd, 2, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if n, _ := p.Read(fd, buf); n != 3 || string(buf) != "cde" {
		t.Errorf("Read = %d %q, want 3 %q", n, buf, "cde")
	}
	if pos, _ := p.Lseek(fd, -1, SeekEnd); pos != 5 {
		t.Errorf("SeekEnd-1 = %d, want 5", pos)
	}
	if pos, _ := p.Lseek(fd, 1, SeekCur); pos != 6 {
		t.Errorf("SeekCur+1 = %d, want 6", pos)
	}
	if _, err := p.Lseek(fd, -100, SeekSet); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative seek = %v, want ErrInvalid", err)
	}
	if _, err := p.Lseek(fd, 0, 99); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad whence = %v, want ErrInvalid", err)
	}
}

func TestPreadPwrite(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", ORdwr|OCreate)
	if _, err := p.Pwrite(fd, []byte("wxyz"), 10); err != nil {
		t.Fatal(err)
	}
	if pos, _ := p.Tell(fd); pos != 0 {
		t.Errorf("Pwrite moved the position to %d", pos)
	}
	// Sparse gap reads back as zeros.
	buf := make([]byte, 14)
	if n, _ := p.Pread(fd, buf, 0); n != 14 {
		t.Fatalf("Pread = %d, want 14", n)
	}
	want := append(make([]byte, 10), 'w', 'x', 'y', 'z')
	if !bytes.Equal(buf, want) {
		t.Errorf("Pread = %q, want %q", buf, want)
	}
	if n, _ := p.Pread(fd, buf, 100); n != 0 {
		t.Errorf("Pread past EOF = %d, want 0", n)
	}
}

func TestAppendMode(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", OWronly|OCreate)
	p.Write(fd, []byte("base"))
	afd, _ := p.Open("f", OWronly|OAppend)
	if _, err := p.Write(afd, []byte("++")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.CommittedData("f")
	if string(got) != "base++" {
		t.Errorf("append result = %q, want %q", got, "base++")
	}
}

func TestFtruncate(t *testing.T) {
	for _, mode := range []Mode{ModePOSIX, ModeCommit} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := New(mode)
			p := fs.Proc(0)
			fd, _ := p.Open("f", ORdwr|OCreate)
			p.Write(fd, []byte("0123456789"))
			if err := p.Ftruncate(fd, 4); err != nil {
				t.Fatal(err)
			}
			if got := p.VisibleData("f"); string(got) != "0123" {
				t.Errorf("visible after truncate = %q, want %q", got, "0123")
			}
			if err := p.Fsync(fd); err != nil {
				t.Fatal(err)
			}
			got, _ := fs.CommittedData("f")
			if string(got) != "0123" {
				t.Errorf("committed after truncate+sync = %q, want %q", got, "0123")
			}
		})
	}
}

// TestRelaxedVisibility is the core of the substrate: writes must stay
// private until the mode-specific synchronization, then become visible.
func TestRelaxedVisibility(t *testing.T) {
	cases := []struct {
		mode    Mode
		publish func(p *Proc, fd int) error
	}{
		{ModeCommit, func(p *Proc, fd int) error { return p.Fsync(fd) }},
		{ModeSession, func(p *Proc, fd int) error { return p.Close(fd) }},
		{ModeMPIIO, func(p *Proc, fd int) error { p.Flush("f"); return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			fs := New(tc.mode)
			writer := fs.Proc(0)
			reader := fs.Proc(1)
			wfd, _ := writer.Open("f", OWronly|OCreate)
			rfd, err := reader.Open("f", ORdonly)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := writer.Pwrite(wfd, []byte("DATA"), 0); err != nil {
				t.Fatal(err)
			}
			// Writer sees its own write (read-your-writes)...
			if got := writer.VisibleData("f"); string(got) != "DATA" {
				t.Errorf("writer sees %q, want DATA", got)
			}
			// ...but the reader sees stale (empty) data before publication.
			buf := make([]byte, 4)
			if n, _ := reader.Pread(rfd, buf, 0); n != 0 {
				t.Errorf("reader saw %d unpublished bytes %q", n, buf[:n])
			}
			if err := tc.publish(writer, wfd); err != nil {
				t.Fatal(err)
			}
			if n, _ := reader.Pread(rfd, buf, 0); n != 4 || string(buf) != "DATA" {
				t.Errorf("after publish reader got %d %q, want 4 DATA", n, buf[:n])
			}
		})
	}
}

func TestPosixModeIsImmediatelyVisible(t *testing.T) {
	fs := New(ModePOSIX)
	writer, reader := fs.Proc(0), fs.Proc(1)
	wfd, _ := writer.Open("f", OWronly|OCreate)
	rfd, _ := reader.Open("f", ORdonly)
	writer.Pwrite(wfd, []byte("now"), 0)
	buf := make([]byte, 3)
	if n, _ := reader.Pread(rfd, buf, 0); n != 3 || string(buf) != "now" {
		t.Errorf("POSIX read = %d %q, want immediate visibility", n, buf[:n])
	}
}

func TestCommitModeWriterOverwritesOwnData(t *testing.T) {
	fs := New(ModeCommit)
	p := fs.Proc(0)
	fd, _ := p.Open("f", ORdwr|OCreate)
	p.Pwrite(fd, []byte("aaaaaaaa"), 0)
	p.Pwrite(fd, []byte("BB"), 3) // overlapping rewrite before commit
	p.Fsync(fd)
	got, _ := fs.CommittedData("f")
	if string(got) != "aaaBBaaa" {
		t.Errorf("committed = %q, want aaaBBaaa", got)
	}
}

func TestStreamAndFdAliasSameFile(t *testing.T) {
	// The paper's §IV-B corner case: pwrite via fd and fwrite via FILE*
	// against the same file at the same time.
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", ORdwr|OCreate)
	st, err := p.Fopen("f", "r+")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pwrite(fd, []byte("11"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fwrite([]byte("22"), 1, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.CommittedData("f")
	if string(got) != "22" {
		t.Errorf("committed = %q, want 22 (stream write wins at offset 0)", got)
	}
	if err := st.Fseek(0, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if n, _ := st.Fread(buf, 1, 2); n != 2 || string(buf) != "22" {
		t.Errorf("Fread = %d %q", n, buf)
	}
}

func TestStreamModes(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	if _, err := p.Fopen("f", "bogus"); !errors.Is(err, ErrInvalid) {
		t.Errorf("Fopen bogus mode = %v, want ErrInvalid", err)
	}
	if _, err := p.Fopen("missing", "r"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Fopen missing = %v, want ErrNotExist", err)
	}
	w, err := p.Fopen("f", "w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fwrite([]byte("abc"), 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Fclose(); err != nil {
		t.Fatal(err)
	}
	if err := w.Fclose(); !errors.Is(err, ErrBadFD) {
		t.Errorf("double Fclose = %v, want ErrBadFD", err)
	}
	a, _ := p.Fopen("f", "a")
	a.Fwrite([]byte("d"), 1, 1)
	a.Fclose()
	got, _ := fs.CommittedData("f")
	if string(got) != "abcd" {
		t.Errorf("append stream result = %q", got)
	}
}

func TestOverlayExtentMerging(t *testing.T) {
	ov := newOverlay()
	ov.addExtent(0, []byte("aaaa"))
	ov.addExtent(8, []byte("bbbb"))
	ov.addExtent(2, []byte("CCCCCC")) // overlaps both neighbours' edges
	var got []byte
	for _, e := range ov.extents {
		for int64(len(got)) < e.off {
			got = append(got, '.')
		}
		got = append(got, e.data...)
	}
	if string(got) != "aaCCCCCCbbbb" {
		t.Errorf("merged overlay = %q, want aaCCCCCCbbbb", got)
	}
}

// TestPropertyOverlayMatchesShadow cross-checks the extent overlay against a
// trivial shadow-buffer model under random writes and reads.
func TestPropertyOverlayMatchesShadow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New(ModeCommit)
		p := fs.Proc(0)
		fd, err := p.Open("f", ORdwr|OCreate)
		if err != nil {
			return false
		}
		shadow := make([]byte, 0, 256)
		for i := 0; i < 60; i++ {
			off := int64(rng.Intn(200))
			n := 1 + rng.Intn(30)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rng.Intn(256))
			}
			if _, err := p.Pwrite(fd, data, off); err != nil {
				return false
			}
			if end := off + int64(n); int64(len(shadow)) < end {
				shadow = append(shadow, make([]byte, end-int64(len(shadow)))...)
			}
			copy(shadow[off:], data)
		}
		if !bytes.Equal(p.VisibleData("f"), shadow) {
			t.Logf("seed %d: visible view diverged from shadow", seed)
			return false
		}
		// Random windowed reads agree too.
		for i := 0; i < 20; i++ {
			off := int64(rng.Intn(len(shadow) + 10))
			buf := make([]byte, rng.Intn(40))
			n, err := p.Pread(fd, buf, off)
			if err != nil {
				return false
			}
			wantN := len(buf)
			if off >= int64(len(shadow)) {
				wantN = 0
			} else if int64(wantN) > int64(len(shadow))-off {
				wantN = int(int64(len(shadow)) - off)
			}
			if n != wantN || !bytes.Equal(buf[:n], shadow[off:off+int64(n)]) {
				t.Logf("seed %d: windowed read mismatch at off=%d", seed, off)
				return false
			}
		}
		// After commit, the committed store equals the shadow as well.
		if err := p.Fsync(fd); err != nil {
			return false
		}
		got, err := fs.CommittedData("f")
		return err == nil && bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVisibleSizeAcrossModes(t *testing.T) {
	fs := New(ModeCommit)
	w := fs.Proc(0)
	r := fs.Proc(1)
	fd, _ := w.Open("f", OWronly|OCreate)
	w.Pwrite(fd, []byte("123456"), 0)
	if got, _ := fs.CommittedSize("f"); got != 0 {
		t.Errorf("committed size before commit = %d", got)
	}
	if got := len(r.VisibleData("f")); got != 0 {
		t.Errorf("reader visible size before commit = %d", got)
	}
	w.Fsync(fd)
	if got, _ := fs.CommittedSize("f"); got != 6 {
		t.Errorf("committed size after commit = %d", got)
	}
}

func TestUnlinkAndStat(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", OWronly|OCreate)
	p.Write(fd, []byte("abc"))
	if n, err := fs.Stat("f"); err != nil || n != 3 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	if err := fs.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Stat after unlink = %v", err)
	}
	if err := fs.Unlink("f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double unlink = %v", err)
	}
	// Recreate: a fresh, empty file.
	fd2, err := p.Open("f", OWronly|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	_ = fd2
	if n, _ := fs.CommittedSize("f"); n != 0 {
		t.Errorf("recreated size = %d", n)
	}
}

func TestVectorIO(t *testing.T) {
	fs := New(ModePOSIX)
	p := fs.Proc(0)
	fd, _ := p.Open("f", ORdwr|OCreate)
	n, err := p.Writev(fd, [][]byte{[]byte("ab"), []byte("cde"), []byte("f")})
	if err != nil || n != 6 {
		t.Fatalf("Writev = %d, %v", n, err)
	}
	if _, err := p.Lseek(fd, 0, SeekSet); err != nil {
		t.Fatal(err)
	}
	got, err := p.Readv(fd, []int{3, 3})
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("Readv = %q, %v", got, err)
	}
	if _, err := p.Readv(fd, []int{-1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative iov length = %v", err)
	}
}

package mpiio

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func newEnv(n int, fsMode posixfs.Mode) *recorder.Env {
	return recorder.NewEnv(n, recorder.Options{FSMode: fsMode})
}

func TestIndependentWriteReadAt(t *testing.T) {
	env := newEnv(2, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f.bin", ModeRdwr|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		me := int64(r.Rank())
		if err := f.WriteAt(me*4, []byte(fmt.Sprintf("rk%d!", r.Rank()))); err != nil {
			return err
		}
		if err := r.Barrier(f.Comm()); err != nil {
			return err
		}
		got, err := f.ReadAt((1-me)*4, 4)
		if err != nil {
			return err
		}
		want := fmt.Sprintf("rk%d!", 1-r.Rank())
		if string(got) != want {
			return fmt.Errorf("rank %d read %q, want %q", r.Rank(), got, want)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.FS().CommittedData("f.bin")
	if err != nil || string(data) != "rk0!rk1!" {
		t.Fatalf("committed = %q, %v", data, err)
	}
}

func TestFilePointerOps(t *testing.T) {
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		if err := f.Write([]byte("abc")); err != nil {
			return err
		}
		if err := f.Write([]byte("def")); err != nil {
			return err
		}
		if err := f.FileSeek(1, posixfs.SeekSet); err != nil {
			return err
		}
		got, err := f.Read(4)
		if err != nil {
			return err
		}
		if string(got) != "bcde" {
			return fmt.Errorf("read %q", got)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMPIIOModeVisibilityRequiresSync(t *testing.T) {
	// On an MPI-IO-consistency file system, data written by rank 0 is not
	// visible to rank 1 until rank 0 issues MPI_File_sync — the behaviour
	// the sync-barrier-sync construct exists for.
	env := newEnv(2, posixfs.ModeMPIIO)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := Open(r, c, "f", ModeRdwr|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			if err := f.WriteAt(0, []byte("DATA")); err != nil {
				return err
			}
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		if r.Rank() == 1 {
			got, err := f.ReadAt(0, 4)
			if err != nil {
				return err
			}
			if len(got) != 0 {
				return fmt.Errorf("rank 1 saw unpublished data %q", got)
			}
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		if r.Rank() == 0 {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		if r.Rank() == 1 {
			got, err := f.ReadAt(0, 4)
			if err != nil {
				return err
			}
			if string(got) != "DATA" {
				return fmt.Errorf("after sync rank 1 read %q", got)
			}
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloseAlsoPublishes(t *testing.T) {
	env := newEnv(1, posixfs.ModeMPIIO)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeWronly|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte("xy")); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.FS().CommittedData("f")
	if err != nil || string(data) != "xy" {
		t.Fatalf("committed after close = %q, %v", data, err)
	}
}

func TestCollectiveWriteWithoutViewIsIndependent(t *testing.T) {
	env := newEnv(4, posixfs.ModePOSIX)
	aggregated := false
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		if err := f.WriteAtAll(int64(r.Rank())*2, []byte{byte('a' + r.Rank()), '.'}); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without a view there is no aggregation: every rank issues its own
	// pwrite (4 pwrites total, one per rank).
	tr := env.Trace()
	for rank := 0; rank < 4; rank++ {
		n := countFunc(tr, rank, "pwrite")
		if n != 1 {
			aggregated = true
		}
	}
	if aggregated {
		t.Error("collective write aggregated without a file view")
	}
	data, _ := env.FS().CommittedData("f")
	if string(data) != "a.b.c.d." {
		t.Errorf("committed = %q", data)
	}
}

func TestCollectiveWriteAggregatesWithView(t *testing.T) {
	env := newEnv(4, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := Open(r, c, "f", ModeRdwr|ModeCreate, DefaultConfig())
		if err != nil {
			return err
		}
		if err := f.SetView(0, "MPI_BYTE", "interleaved"); err != nil {
			return err
		}
		if err := f.WriteAtAll(int64(r.Rank())*2, []byte{byte('a' + r.Rank()), '!'}); err != nil {
			return err
		}
		// Everyone can read the combined result collectively.
		got, err := f.ReadAtAll(int64(r.Rank())*2, 2)
		if err != nil {
			return err
		}
		if got[0] != byte('a'+r.Rank()) {
			return fmt.Errorf("rank %d read back %q", r.Rank(), got)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	// Aggregation: only rank 0 performs POSIX writes, and the contiguous
	// pieces coalesce into a single pwrite.
	if n := countFunc(tr, 0, "pwrite"); n != 1 {
		t.Errorf("rank 0 pwrites = %d, want 1 (coalesced)", n)
	}
	for rank := 1; rank < 4; rank++ {
		if n := countFunc(tr, rank, "pwrite"); n != 0 {
			t.Errorf("rank %d pwrites = %d, want 0 under aggregation", rank, n)
		}
	}
	// The exchange is visible in the trace as matched MPI collectives.
	if n := countFunc(tr, 0, "MPI_Gather"); n < 1 {
		t.Error("aggregation exchange not traced")
	}
	data, _ := env.FS().CommittedData("f")
	if string(data) != "a!b!c!d!" {
		t.Errorf("committed = %q", data)
	}
}

func TestCollectiveBufferingDisabled(t *testing.T) {
	cfg := Config{CollectiveBuffering: false}
	env := newEnv(2, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, cfg)
		if err != nil {
			return err
		}
		if err := f.SetView(0, "MPI_BYTE", "interleaved"); err != nil {
			return err
		}
		return f.WriteAtAll(int64(r.Rank()), []byte{byte('0' + r.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	for rank := 0; rank < 2; rank++ {
		if n := countFunc(tr, rank, "pwrite"); n != 1 {
			t.Errorf("rank %d pwrites = %d, want 1 with cb disabled", rank, n)
		}
	}
}

func TestViewDisplacementOffsetsIO(t *testing.T) {
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, Config{})
		if err != nil {
			return err
		}
		if err := f.SetView(100, "MPI_BYTE", "contig"); err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte("zz")); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	size, _ := env.FS().CommittedSize("f")
	if size != 102 {
		t.Errorf("size = %d, want 102 (displacement applied)", size)
	}
}

func TestDataSievingIssuesRead(t *testing.T) {
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, Config{DataSieving: true})
		if err != nil {
			return err
		}
		return f.WriteAt(10, []byte("abc"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := countFunc(env.Trace(), 0, "pread"); n != 1 {
		t.Errorf("sieving preads = %d, want 1", n)
	}
}

func TestUseAfterClose(t *testing.T) {
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, Config{})
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte("x")); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("WriteAt after close = %v", err)
		}
		if err := f.Close(); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("double close = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetSizeTruncates(t *testing.T) {
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, Config{})
		if err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte("0123456789")); err != nil {
			return err
		}
		return f.SetSize(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := env.FS().CommittedData("f")
	if !bytes.Equal(data, []byte("012")) {
		t.Errorf("after set_size = %q", data)
	}
}

func TestTraceShowsNestedPosixCalls(t *testing.T) {
	// The Fig. 2 property: MPI-IO records appear with their POSIX records
	// nested beneath them, each carrying the enclosing call chain.
	env := newEnv(1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Open(r, r.Proc().CommWorld(), "f", ModeRdwr|ModeCreate, Config{})
		if err != nil {
			return err
		}
		return f.WriteAt(0, []byte("abcd"))
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := env.Trace().Ranks[0]
	var pw *trace.Record
	for i := range recs {
		if recs[i].Func == "pwrite" {
			pw = &recs[i]
		}
	}
	if pw == nil {
		t.Fatal("no pwrite record")
	}
	if pw.Depth != 1 || len(pw.Chain) != 1 {
		t.Fatalf("pwrite depth=%d chain=%v", pw.Depth, pw.Chain)
	}
	fr, err := trace.ParseFrame(pw.Chain[0])
	if err != nil || fr.Func != "MPI_File_write_at" || fr.Layer != trace.LayerMPIIO {
		t.Errorf("chain frame = %+v, %v", fr, err)
	}
}

func countFunc(tr *trace.Trace, rank int, fn string) int {
	n := 0
	for _, rec := range tr.Ranks[rank] {
		if rec.Func == fn {
			n++
		}
	}
	return n
}

// Package mpiio implements the MPI-IO layer on top of the simulated POSIX
// file system, routed through the Recorder⁺ tracing layer.
//
// Two behaviours matter for the paper's findings and are modelled here:
//
//  1. Consistency mapping. MPI_File_sync and MPI_File_close are the
//     synchronization operations of the MPI-IO consistency model (Table I).
//     They map onto fsync/close at the POSIX level and additionally publish
//     the process's buffered writes when the simulated file system runs in
//     MPI-IO mode.
//
//  2. Collective buffering (two-phase I/O). When a file view has been set,
//     collective reads/writes are aggregated: ranks ship their (offset,
//     data) pieces to rank 0, which performs the combined POSIX I/O. This is
//     the ROMIO optimization that makes PnetCDF's `flexible` test violate
//     MPI-IO semantics (§V-C1): after ncmpi_enddef's per-rank fill writes, a
//     view change triggers aggregation, so rank 0's combined write conflicts
//     with every other rank's earlier fill write — properly synchronized
//     under POSIX (the aggregation exchange orders them) but not under
//     MPI-IO semantics (no sync-barrier-sync construct).
//
// The aggregation exchange is issued through the traced MPI wrappers, so the
// resulting trace is self-contained: the temporal order the exchange creates
// is visible to the offline matcher the same way PnetCDF's own internal MPI
// calls are.
package mpiio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// AMode is the MPI_File_open access mode.
type AMode int

// Access modes, combinable with |.
const (
	ModeRdonly AMode = 1 << iota
	ModeWronly
	ModeRdwr
	ModeCreate
	ModeExcl
	ModeAppend
	ModeDeleteOnClose
)

func (m AMode) String() string {
	var s string
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if m&ModeRdonly != 0 {
		add("MPI_MODE_RDONLY")
	}
	if m&ModeWronly != 0 {
		add("MPI_MODE_WRONLY")
	}
	if m&ModeRdwr != 0 {
		add("MPI_MODE_RDWR")
	}
	if m&ModeCreate != 0 {
		add("MPI_MODE_CREATE")
	}
	if m&ModeExcl != 0 {
		add("MPI_MODE_EXCL")
	}
	if m&ModeAppend != 0 {
		add("MPI_MODE_APPEND")
	}
	if m&ModeDeleteOnClose != 0 {
		add("MPI_MODE_DELETE_ON_CLOSE")
	}
	if s == "" {
		s = "0"
	}
	return s
}

// Config controls the MPI-IO implementation's optimizations — the knobs the
// ablation benchmarks flip.
type Config struct {
	// CollectiveBuffering enables two-phase aggregation for collective
	// data operations once a file view is set (ROMIO's cb_* behaviour).
	CollectiveBuffering bool
	// DataSieving enables read-modify-write sieving for non-contiguous
	// independent writes (modelled as a read of the surrounding region
	// before the write).
	DataSieving bool
}

// DefaultConfig matches a production ROMIO: collective buffering on.
func DefaultConfig() Config { return Config{CollectiveBuffering: true} }

// ErrClosed is returned when a closed file is used.
var ErrClosed = errors.New("mpiio: file is closed")

// File is an open MPI file handle.
type File struct {
	r    *recorder.Rank
	comm *mpi.Comm
	path string
	fd   int
	cfg  Config

	pos     int64
	viewSet bool
	viewDsp int64
	closed  bool
}

// Open is the traced, collective MPI_File_open. All members of comm must
// call it.
func Open(r *recorder.Rank, comm *mpi.Comm, path string, amode AMode, cfg Config) (*File, error) {
	f := &File{r: r, comm: comm, path: path, cfg: cfg}
	err := r.Record(trace.LayerMPIIO, "MPI_File_open", func() []string {
		return []string{comm.GID(), path, amode.String(), itoa(int64(f.fd))}
	}, func() error {
		flags := posixFlags(amode)
		fd, err := r.Open(path, flags)
		if err != nil {
			return err
		}
		f.fd = fd
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

func posixFlags(amode AMode) posixfs.OpenFlag {
	var flags posixfs.OpenFlag
	switch {
	case amode&ModeRdwr != 0:
		flags = posixfs.ORdwr
	case amode&ModeWronly != 0:
		flags = posixfs.OWronly
	default:
		flags = posixfs.ORdonly
	}
	if amode&ModeCreate != 0 {
		flags |= posixfs.OCreate
	}
	if amode&ModeExcl != 0 {
		flags |= posixfs.OExcl
	}
	if amode&ModeAppend != 0 {
		flags |= posixfs.OAppend
	}
	return flags
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Comm returns the communicator the file was opened on.
func (f *File) Comm() *mpi.Comm { return f.comm }

// Fd returns the underlying POSIX descriptor (used by library layers that
// mix interfaces).
func (f *File) Fd() int { return f.fd }

// Close is the traced, collective MPI_File_close. It publishes buffered data
// (MPI_File_close is a synchronization operation of the MPI-IO model).
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_close", func() []string {
		return []string{itoa(int64(f.fd))}
	}, func() error {
		f.publish()
		f.closed = true
		return f.r.Close(f.fd)
	})
}

// Sync is the traced MPI_File_sync: flushes and publishes this process's
// writes. With open+close it forms the MPI-IO model's sync-op set.
func (f *File) Sync() error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_sync", func() []string {
		return []string{itoa(int64(f.fd))}
	}, func() error {
		f.publish()
		return f.r.Fsync(f.fd)
	})
}

// publish forces buffered data out under the file-system modes where plain
// fsync/close would not do it for us.
func (f *File) publish() {
	if f.r.FSProc().FS().Mode() == posixfs.ModeMPIIO {
		f.r.FSProc().Flush(f.path)
	}
}

// SetView is the traced, collective MPI_File_set_view. Setting a view is
// what arms collective buffering for subsequent collective data operations.
func (f *File) SetView(disp int64, etype, filetype string) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_set_view", func() []string {
		return []string{itoa(int64(f.fd)), itoa(disp), etype, filetype}
	}, func() error {
		f.viewSet = true
		f.viewDsp = disp
		f.pos = 0
		return nil
	})
}

// FileSeek is the traced MPI_File_seek (individual file pointer).
func (f *File) FileSeek(off int64, whence int) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_seek", func() []string {
		return []string{itoa(int64(f.fd)), itoa(off), itoa(int64(whence)), itoa(f.pos)}
	}, func() error {
		switch whence {
		case posixfs.SeekSet:
			f.pos = off
		case posixfs.SeekCur:
			f.pos += off
		case posixfs.SeekEnd:
			size, err := f.r.FSProc().FS().CommittedSize(f.path)
			if err != nil {
				return err
			}
			f.pos = size + off
		default:
			return fmt.Errorf("mpiio: bad whence %d", whence)
		}
		if f.pos < 0 {
			return fmt.Errorf("mpiio: negative file pointer")
		}
		return nil
	})
}

// SetSize is the traced, collective MPI_File_set_size.
func (f *File) SetSize(size int64) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_set_size", func() []string {
		return []string{itoa(int64(f.fd)), itoa(size)}
	}, func() error { return f.r.Ftruncate(f.fd, size) })
}

// WriteAt is the traced, independent MPI_File_write_at.
func (f *File) WriteAt(off int64, data []byte) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_write_at", func() []string {
		return []string{itoa(int64(f.fd)), itoa(f.abs(off)), itoa(int64(len(data)))}
	}, func() error { return f.pwrite(f.abs(off), data) })
}

// ReadAt is the traced, independent MPI_File_read_at.
func (f *File) ReadAt(off int64, n int) ([]byte, error) {
	if f.closed {
		return nil, ErrClosed
	}
	var out []byte
	err := f.r.Record(trace.LayerMPIIO, "MPI_File_read_at", func() []string {
		return []string{itoa(int64(f.fd)), itoa(f.abs(off)), itoa(int64(n))}
	}, func() error {
		buf, err := f.r.Pread(f.fd, n, f.abs(off))
		out = buf
		return err
	})
	return out, err
}

// Write is the traced, independent MPI_File_write at the individual file
// pointer.
func (f *File) Write(data []byte) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_write", func() []string {
		return []string{itoa(int64(f.fd)), itoa(int64(len(data)))}
	}, func() error {
		err := f.pwrite(f.abs(f.pos), data)
		if err == nil {
			f.pos += int64(len(data))
		}
		return err
	})
}

// Read is the traced, independent MPI_File_read at the individual file
// pointer.
func (f *File) Read(n int) ([]byte, error) {
	if f.closed {
		return nil, ErrClosed
	}
	var out []byte
	err := f.r.Record(trace.LayerMPIIO, "MPI_File_read", func() []string {
		return []string{itoa(int64(f.fd)), itoa(int64(n))}
	}, func() error {
		buf, err := f.r.Pread(f.fd, n, f.abs(f.pos))
		out = buf
		f.pos += int64(len(buf))
		return err
	})
	return out, err
}

// WriteAtAll is the traced, collective MPI_File_write_at_all.
func (f *File) WriteAtAll(off int64, data []byte) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_write_at_all", func() []string {
		return []string{itoa(int64(f.fd)), itoa(f.abs(off)), itoa(int64(len(data)))}
	}, func() error { return f.collectiveWrite(f.abs(off), data) })
}

// WriteAll is the traced, collective MPI_File_write_all at the individual
// file pointer. Mixing WriteAll on some ranks with WriteAtAll on others is
// the PnetCDF ncmpi_wait implementation bug of §V-D; the runtime tolerates
// it (the aggregation exchange still pairs up) and the offline matcher
// flags it.
func (f *File) WriteAll(data []byte) error {
	if f.closed {
		return ErrClosed
	}
	return f.r.Record(trace.LayerMPIIO, "MPI_File_write_all", func() []string {
		return []string{itoa(int64(f.fd)), itoa(int64(len(data)))}
	}, func() error {
		err := f.collectiveWrite(f.abs(f.pos), data)
		if err == nil {
			f.pos += int64(len(data))
		}
		return err
	})
}

// ReadAtAll is the traced, collective MPI_File_read_at_all.
func (f *File) ReadAtAll(off int64, n int) ([]byte, error) {
	if f.closed {
		return nil, ErrClosed
	}
	var out []byte
	err := f.r.Record(trace.LayerMPIIO, "MPI_File_read_at_all", func() []string {
		return []string{itoa(int64(f.fd)), itoa(f.abs(off)), itoa(int64(n))}
	}, func() error {
		buf, err := f.collectiveRead(f.abs(off), n)
		out = buf
		return err
	})
	return out, err
}

// ReadAll is the traced, collective MPI_File_read_all at the individual file
// pointer.
func (f *File) ReadAll(n int) ([]byte, error) {
	if f.closed {
		return nil, ErrClosed
	}
	var out []byte
	err := f.r.Record(trace.LayerMPIIO, "MPI_File_read_all", func() []string {
		return []string{itoa(int64(f.fd)), itoa(int64(n))}
	}, func() error {
		buf, err := f.collectiveRead(f.abs(f.pos), n)
		out = buf
		f.pos += int64(len(buf))
		return err
	})
	return out, err
}

// Delete is the traced MPI_File_delete.
func Delete(r *recorder.Rank, path string) error {
	return r.Record(trace.LayerMPIIO, "MPI_File_delete", func() []string {
		return []string{path}
	}, func() error { return nil })
}

// abs translates a view-relative offset to an absolute file offset.
func (f *File) abs(off int64) int64 {
	if f.viewSet {
		return f.viewDsp + off
	}
	return off
}

// aggregating reports whether collective buffering applies right now.
func (f *File) aggregating() bool { return f.cfg.CollectiveBuffering && f.viewSet }

// pwrite performs the POSIX write, with optional data sieving. Zero-length
// contributions (e.g. a non-root rank's share of a header write) issue no
// system call at all.
func (f *File) pwrite(off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if f.cfg.DataSieving && len(data) > 0 {
		// Read-modify-write: sieving reads the enclosing region first.
		if _, err := f.r.Pread(f.fd, len(data), off); err != nil {
			return err
		}
	}
	_, err := f.r.Pwrite(f.fd, data, off)
	return err
}

// collectiveWrite implements the two-phase write: with aggregation armed,
// every rank ships (offset, data) to rank 0 (comm rank 0), which performs
// the combined write; a completion broadcast closes the exchange. Without
// aggregation each rank writes independently.
func (f *File) collectiveWrite(off int64, data []byte) error {
	if !f.aggregating() {
		return f.pwrite(off, data)
	}
	pieces, err := f.r.Gather(f.comm, 0, encodePiece(off, data))
	if err != nil {
		return err
	}
	if myCommRank(f.comm, f.r.Rank()) == 0 {
		type piece struct {
			off  int64
			data []byte
		}
		ps := make([]piece, 0, len(pieces))
		for _, raw := range pieces {
			o, d, err := decodePiece(raw)
			if err != nil {
				return err
			}
			ps = append(ps, piece{o, d})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].off < ps[j].off })
		// Coalesce contiguous pieces into single writes — the whole point
		// of two-phase I/O.
		for i := 0; i < len(ps); {
			j := i + 1
			buf := append([]byte(nil), ps[i].data...)
			end := ps[i].off + int64(len(ps[i].data))
			for j < len(ps) && ps[j].off <= end {
				if e := ps[j].off + int64(len(ps[j].data)); e > end {
					buf = append(buf[:ps[j].off-ps[i].off], ps[j].data...)
					end = e
				}
				j++
			}
			if err := f.pwrite(ps[i].off, buf); err != nil {
				return err
			}
			i = j
		}
	}
	// Completion notification from the aggregator.
	_, err = f.r.Bcast(f.comm, 0, []byte{1})
	return err
}

// collectiveRead implements the two-phase read: rank 0 reads every rank's
// range and scatters the results.
func (f *File) collectiveRead(off int64, n int) ([]byte, error) {
	if !f.aggregating() {
		return f.r.Pread(f.fd, n, off)
	}
	pieces, err := f.r.Gather(f.comm, 0, encodePiece(off, make([]byte, n)))
	if err != nil {
		return nil, err
	}
	var parts [][]byte
	if myCommRank(f.comm, f.r.Rank()) == 0 {
		parts = make([][]byte, f.comm.Size())
		for i, raw := range pieces {
			o, d, err := decodePiece(raw)
			if err != nil {
				return nil, err
			}
			buf, err := f.r.Pread(f.fd, len(d), o)
			if err != nil {
				return nil, err
			}
			parts[i] = buf
		}
	}
	return f.r.Scatter(f.comm, 0, parts)
}

func myCommRank(c *mpi.Comm, worldRank int) int {
	for i, m := range c.Members() {
		if m == worldRank {
			return i
		}
	}
	return -1
}

func encodePiece(off int64, data []byte) []byte {
	buf := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(buf, uint64(off))
	copy(buf[8:], data)
	return buf
}

func decodePiece(raw []byte) (int64, []byte, error) {
	if len(raw) < 8 {
		return 0, nil, fmt.Errorf("mpiio: malformed aggregation piece (%d bytes)", len(raw))
	}
	return int64(binary.LittleEndian.Uint64(raw)), raw[8:], nil
}

func itoa(v int64) string { return fmt.Sprint(v) }

package hdf5

import (
	"fmt"

	"verifyio/internal/trace"
)

// Chunked datasets (H5Pset_chunk + H5Dcreate2). A chunked 1-D dataset is
// stored as fixed-size chunks allocated on demand in *access* order, so —
// unlike a contiguous dataset — logically adjacent elements can live in
// non-adjacent file extents. For the verification workflow this matters
// because one H5Dwrite over a chunk boundary becomes several POSIX writes
// at unrelated offsets, the behaviour that inflates conflict counts in
// chunk-heavy HDF5 tests.

// chunkedExtent tracks a chunked dataset's allocation state; chunk k's file
// offset is assigned the first time any rank touches chunk k (deterministic
// here: allocation happens at create time in index order, matching
// H5D_ALLOC_TIME_EARLY, the allocation strategy parallel HDF5 requires for
// writes without collective metadata updates).
type chunkedExtent struct {
	dims      []int64
	chunkElem int64
	chunkOffs []int64 // file offset per chunk index
}

// CreateChunkedDataset is the traced H5Dcreate2 with an H5Pset_chunk
// creation property: a 1-D dataspace of the given length, stored in chunks
// of chunkElem elements (early allocation, as parallel HDF5 requires).
func (f *File) CreateChunkedDataset(name string, length, chunkElem int64) (*Dataset, error) {
	d := &Dataset{f: f, name: name}
	err := f.r.Record(trace.LayerHDF5, "H5Pset_chunk", func() []string {
		return []string{name, itoa(chunkElem)}
	}, func() error {
		if length <= 0 || chunkElem <= 0 {
			return fmt.Errorf("hdf5: invalid chunked dataspace %d/%d", length, chunkElem)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = f.r.Record(trace.LayerHDF5, "H5Dcreate2", func() []string {
		return []string{f.path, name, fmt.Sprintf("[%d] chunked(%d)", length, chunkElem)}
	}, func() error {
		f.meta.mu.Lock()
		defer f.meta.mu.Unlock()
		if e, ok := f.meta.datasets[name]; ok {
			d.ext = e
			return nil
		}
		nchunks := (length + chunkElem - 1) / chunkElem
		ck := &chunkedExtent{dims: []int64{length}, chunkElem: chunkElem,
			chunkOffs: make([]int64, nchunks)}
		for k := range ck.chunkOffs {
			ck.chunkOffs[k] = f.meta.nextData
			f.meta.nextData += chunkElem
		}
		e := &extent{off: ck.chunkOffs[0], dims: []int64{length}, chunked: ck}
		f.meta.datasets[name] = e
		d.ext = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// chunkExtents maps a 1-D selection through the chunk layout into file
// extents, one per touched chunk fragment.
func (ck *chunkedExtent) chunkExtents(start, count int64) ([][2]int64, error) {
	if start < 0 || count < 0 || start+count > ck.dims[0] {
		return nil, fmt.Errorf("%w: chunked selection [%d,%d) of %d", ErrBounds, start, start+count, ck.dims[0])
	}
	var out [][2]int64
	for count > 0 {
		k := start / ck.chunkElem
		inChunk := start % ck.chunkElem
		n := ck.chunkElem - inChunk
		if n > count {
			n = count
		}
		out = append(out, [2]int64{ck.chunkOffs[k] + inChunk, n})
		start += n
		count -= n
	}
	return out, nil
}

package hdf5

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

func newEnv(t *testing.T, n int, fsMode posixfs.Mode) *recorder.Env {
	t.Helper()
	t.Cleanup(ResetMetadata)
	return recorder.NewEnv(n, recorder.Options{FSMode: fsMode})
}

func TestDatasetRoundTrip1D(t *testing.T) {
	env := newEnv(t, 2, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := Create(r, c, "a.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("d", 8)
		if err != nil {
			return err
		}
		me := int64(r.Rank())
		hs := Hyperslab{Start: []int64{me * 4}, Count: []int64{4}}
		if err := ds.Write(Independent, hs, []byte(fmt.Sprintf("wr%d.", r.Rank()))); err != nil {
			return err
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		got, err := ds.Read(Independent, hs)
		if err != nil {
			return err
		}
		if string(got) != fmt.Sprintf("wr%d.", r.Rank()) {
			return fmt.Errorf("read back %q", got)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := env.FS().CommittedData("a.h5")
	if string(data[headerSize:headerSize+8]) != "wr0.wr1." {
		t.Errorf("dataset bytes = %q", data[headerSize:headerSize+8])
	}
}

func TestDataset2DHyperslabRows(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "b.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("m", 4, 6) // 4 rows x 6 cols
		if err != nil {
			return err
		}
		// Select a 2x3 block at (1,2): two non-contiguous row extents.
		hs := Hyperslab{Start: []int64{1, 2}, Count: []int64{2, 3}}
		if err := ds.Write(Independent, hs, []byte("ABCdef")); err != nil {
			return err
		}
		got, err := ds.Read(Independent, hs)
		if err != nil {
			return err
		}
		if string(got) != "ABCdef" {
			return fmt.Errorf("block read %q", got)
		}
		// Collective transfers reject non-contiguous selections.
		if err := ds.Write(Collective, hs, []byte("ABCdef")); err == nil {
			return errors.New("collective write accepted 2-row selection")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Row layout: row 1 cols 2..4 = ABC, row 2 cols 2..4 = def.
	data, _ := env.FS().CommittedData("b.h5")
	r1 := data[headerSize+1*6+2 : headerSize+1*6+5]
	r2 := data[headerSize+2*6+2 : headerSize+2*6+5]
	if string(r1) != "ABC" || string(r2) != "def" {
		t.Errorf("rows = %q %q", r1, r2)
	}
}

func TestSelectionBounds(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "c.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("d", 4)
		if err != nil {
			return err
		}
		if err := ds.Write(Independent, Hyperslab{Start: []int64{2}, Count: []int64{4}}, make([]byte, 4)); !errors.Is(err, ErrBounds) {
			return fmt.Errorf("out-of-bounds write = %v", err)
		}
		if err := ds.Write(Independent, Hyperslab{Start: []int64{0, 0}, Count: []int64{1, 1}}, make([]byte, 1)); !errors.Is(err, ErrBounds) {
			return fmt.Errorf("rank-mismatched selection = %v", err)
		}
		if err := ds.Write(Independent, ds.All(), []byte("xy")); !errors.Is(err, ErrBounds) {
			return fmt.Errorf("short buffer = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicLayoutAcrossRanks(t *testing.T) {
	env := newEnv(t, 4, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "d.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		d1, err := f.CreateDataset("one", 16)
		if err != nil {
			return err
		}
		d2, err := f.CreateDataset("two", 16)
		if err != nil {
			return err
		}
		if d1.ext.off == d2.ext.off {
			return errors.New("datasets share an extent")
		}
		if d1.ext.off != headerSize || d2.ext.off != headerSize+16 {
			return fmt.Errorf("layout %d %d", d1.ext.off, d2.ext.off)
		}
		// Reopening by name resolves to the same extent.
		d1b, err := f.OpenDataset("one")
		if err != nil {
			return err
		}
		if d1b.ext.off != d1.ext.off {
			return errors.New("open resolved a different extent")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenFileAndMissingObjects(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := Create(r, c, "e.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := f.CreateDataset("d", 4); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		f2, err := OpenFile(r, c, "e.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := f2.OpenDataset("d"); err != nil {
			return err
		}
		if _, err := f2.OpenDataset("nope"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing dataset = %v", err)
		}
		if _, err := f2.OpenAttr("nope"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing attr = %v", err)
		}
		return f2.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Opening a file that was never created as HDF5 fails.
	err = env.Run(func(r *recorder.Rank) error {
		_, err := OpenFile(r, r.Proc().CommWorld(), "never.h5", mpiio.DefaultConfig())
		return err
	})
	if err == nil {
		t.Fatal("OpenFile on non-HDF5 path succeeded")
	}
}

func TestAttrWriteTargetsHeaderArea(t *testing.T) {
	env := newEnv(t, 2, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := Create(r, c, "f.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		a, err := f.CreateAttr("units", 8)
		if err != nil {
			return err
		}
		// Both ranks write the same attribute — the same-offset conflict
		// behind the HDF5 POSIX races.
		if err := a.Write([]byte("meters!!")); err != nil {
			return err
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		got, err := a.Read()
		if err != nil {
			return err
		}
		if string(got) != "meters!!" {
			return fmt.Errorf("attr read %q", got)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks' pwrites hit the same header offset.
	tr := env.Trace()
	offs := map[string]int{}
	for rank := 0; rank < 2; rank++ {
		for _, rec := range tr.Ranks[rank] {
			if rec.Func == "pwrite" {
				offs[rec.Arg(2)]++
			}
		}
	}
	if len(offs) != 1 {
		t.Errorf("attr pwrites at offsets %v, want one shared offset", offs)
	}
}

func TestFlushMapsToFileSync(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModeMPIIO)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "g.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("d", 4)
		if err != nil {
			return err
		}
		if err := ds.Write(Independent, ds.All(), []byte("data")); err != nil {
			return err
		}
		return f.Flush()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := env.Trace()
	foundSync := false
	for _, rec := range tr.Ranks[0] {
		if rec.Func == "MPI_File_sync" {
			foundSync = true
			if len(rec.Chain) != 1 {
				t.Errorf("MPI_File_sync chain = %v", rec.Chain)
			} else if fr, _ := trace.ParseFrame(rec.Chain[0]); fr.Func != "H5Fflush" {
				t.Errorf("MPI_File_sync caller = %v", rec.Chain[0])
			}
		}
	}
	if !foundSync {
		t.Fatal("H5Fflush did not issue MPI_File_sync")
	}
	// And the flush published the data on the MPI-IO-mode FS.
	data, err := env.FS().CommittedData("g.h5")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[headerSize:headerSize+4], []byte("data")) {
		t.Errorf("committed dataset = %q", data[headerSize:headerSize+4])
	}
}

func TestAttrSlotValidation(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "h.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := f.CreateAttr("too-big", attrSlot+1); err == nil {
			return errors.New("oversized attribute accepted")
		}
		a, err := f.CreateAttr("ok", 4)
		if err != nil {
			return err
		}
		if err := a.Write(make([]byte, 9)); !errors.Is(err, ErrBounds) {
			return fmt.Errorf("overlong attr write = %v", err)
		}
		return a.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkedDataset(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "c.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		// 20 elements in chunks of 8 → chunks of 8, 8, 4.
		ds, err := f.CreateChunkedDataset("ck", 20, 8)
		if err != nil {
			return err
		}
		// A write spanning two chunk boundaries becomes three extents.
		hs := Hyperslab{Start: []int64{4}, Count: []int64{14}} // [4,18)
		if err := ds.Write(Independent, hs, []byte("ABCDEFGHIJKLMN")); err != nil {
			return err
		}
		got, err := ds.Read(Independent, hs)
		if err != nil {
			return err
		}
		if string(got) != "ABCDEFGHIJKLMN" {
			return fmt.Errorf("chunked read back %q", got)
		}
		// Out-of-bounds chunked selections are rejected.
		if err := ds.Write(Independent, Hyperslab{Start: []int64{18}, Count: []int64{4}}, make([]byte, 4)); !errors.Is(err, ErrBounds) {
			return fmt.Errorf("oob chunked write = %v", err)
		}
		// Collective transfers reject multi-extent chunked selections.
		if err := ds.Write(Collective, hs, make([]byte, 14)); err == nil {
			return errors.New("collective write accepted chunk-spanning selection")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The spanning write produced one pwrite per touched chunk fragment.
	pwrites := 0
	for _, rec := range env.Trace().Ranks[0] {
		if rec.Func == "pwrite" {
			pwrites++
		}
	}
	if pwrites != 3 {
		t.Errorf("pwrites = %d, want 3 (chunk fragments)", pwrites)
	}
}

func TestChunkedDatasetValidation(t *testing.T) {
	env := newEnv(t, 1, posixfs.ModePOSIX)
	err := env.Run(func(r *recorder.Rank) error {
		f, err := Create(r, r.Proc().CommWorld(), "cv.h5", mpiio.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := f.CreateChunkedDataset("bad", 0, 8); err == nil {
			return errors.New("zero-length chunked dataset accepted")
		}
		if _, err := f.CreateChunkedDataset("bad2", 8, 0); err == nil {
			return errors.New("zero chunk size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

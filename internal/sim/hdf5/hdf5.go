// Package hdf5 implements a functional subset of parallel HDF5 on top of the
// simulated MPI-IO layer, routed through the Recorder⁺ tracing layer.
//
// The subset is chosen to reproduce the paper's HDF5 findings:
//
//   - H5Dwrite / H5Dread translate to MPI_File_write_at(_all) /
//     MPI_File_read_at(_all) on the dataset's file extent, so the
//     write → MPI_Barrier → read pattern of Fig. 6 produces exactly the
//     conflicting MPI-IO/POSIX operations VerifyIO flags: properly
//     synchronized under POSIX, a data race under MPI-IO semantics unless
//     H5Fflush (→ MPI_File_sync) brackets the barrier.
//
//   - H5Awrite performs an independent write of the attribute's header-area
//     extent from the calling rank. Tests that call H5Awrite from every
//     rank "collectively" (a common real-world pattern) therefore produce
//     same-offset write-write conflicts — the source of the HDF5 POSIX
//     races in the evaluation.
//
//   - Dataset extents are allocated deterministically in call order, so all
//     ranks agree on file offsets without central coordination, like a real
//     file format's layout rules.
//
// Hyperslab selections are supported on 1-D and 2-D dataspaces; a 2-D
// selection decomposes into one file extent per row, which is what makes
// tests in the shapesame style generate very large conflict counts.
package hdf5

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpi"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// Transfer is the data-transfer property (H5FD_MPIO_INDEPENDENT /
// H5FD_MPIO_COLLECTIVE).
type Transfer int

// Transfer modes.
const (
	Independent Transfer = iota
	Collective
)

func (t Transfer) String() string {
	if t == Collective {
		return "H5FD_MPIO_COLLECTIVE"
	}
	return "H5FD_MPIO_INDEPENDENT"
}

// Errors.
var (
	ErrNotFound = errors.New("hdf5: object not found")
	ErrExists   = errors.New("hdf5: object already exists")
	ErrBounds   = errors.New("hdf5: selection out of bounds")
)

// File-format layout constants. The header area holds attributes; dataset
// extents follow.
const (
	headerSize = 1024
	attrSlot   = 64
)

// fileMeta is the shared file-format metadata: where datasets and attributes
// live. It is keyed by (file system, path), playing the role the on-disk
// superblock plays for a real format; all ranks observe one consistent
// layout.
type fileMeta struct {
	mu       sync.Mutex
	datasets map[string]*extent
	attrs    map[string]*extent
	nextData int64
	nextAttr int64
}

type extent struct {
	off  int64
	dims []int64
	// chunked is non-nil for chunked datasets (see chunk.go).
	chunked *chunkedExtent
}

func (e *extent) size() int64 {
	s := int64(1)
	for _, d := range e.dims {
		s *= d
	}
	return s
}

var (
	metaMu  sync.Mutex
	metaTab = map[metaKey]*fileMeta{}
)

type metaKey struct {
	fs   *posixfs.FS
	path string
}

func metaFor(fs *posixfs.FS, path string, create bool) (*fileMeta, error) {
	metaMu.Lock()
	defer metaMu.Unlock()
	k := metaKey{fs, path}
	m, ok := metaTab[k]
	if !ok {
		if !create {
			return nil, fmt.Errorf("%w: file %s has no HDF5 metadata", ErrNotFound, path)
		}
		m = &fileMeta{
			datasets: make(map[string]*extent),
			attrs:    make(map[string]*extent),
			nextData: headerSize,
		}
		metaTab[k] = m
	}
	return m, nil
}

// File is an open HDF5 file.
type File struct {
	r    *recorder.Rank
	mf   *mpiio.File
	meta *fileMeta
	path string
}

// Create is the traced, collective H5Fcreate with an MPI-IO (fapl_mpio)
// access property.
func Create(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, path: path}
	err := r.Record(trace.LayerHDF5, "H5Fcreate", func() []string {
		return []string{path, "H5F_ACC_TRUNC", comm.GID()}
	}, func() error {
		mf, err := mpiio.Open(r, comm, path, mpiio.ModeRdwr|mpiio.ModeCreate, cfg)
		if err != nil {
			return err
		}
		f.mf = mf
		m, err := metaFor(r.FSProc().FS(), path, true)
		if err != nil {
			return err
		}
		f.meta = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenFile is the traced, collective H5Fopen.
func OpenFile(r *recorder.Rank, comm *mpi.Comm, path string, cfg mpiio.Config) (*File, error) {
	f := &File{r: r, path: path}
	err := r.Record(trace.LayerHDF5, "H5Fopen", func() []string {
		return []string{path, "H5F_ACC_RDWR", comm.GID()}
	}, func() error {
		mf, err := mpiio.Open(r, comm, path, mpiio.ModeRdwr, cfg)
		if err != nil {
			return err
		}
		f.mf = mf
		m, err := metaFor(r.FSProc().FS(), path, false)
		if err != nil {
			return err
		}
		f.meta = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Close is the traced H5Fclose (collective), which closes the MPI file.
func (f *File) Close() error {
	return f.r.Record(trace.LayerHDF5, "H5Fclose", func() []string {
		return []string{f.path}
	}, func() error { return f.mf.Close() })
}

// Flush is the traced H5Fflush: the call the right-hand side of Fig. 6 adds.
// It maps to MPI_File_sync, the MPI-IO synchronization operation.
func (f *File) Flush() error {
	return f.r.Record(trace.LayerHDF5, "H5Fflush", func() []string {
		return []string{f.path, "H5F_SCOPE_GLOBAL"}
	}, func() error { return f.mf.Sync() })
}

// CreateGroup is the traced H5Gcreate2. Groups are namespace-only here.
func (f *File) CreateGroup(name string) error {
	return f.r.Record(trace.LayerHDF5, "H5Gcreate2", func() []string {
		return []string{f.path, name}
	}, func() error { return nil })
}

// Dataset is an open HDF5 dataset backed by a contiguous file extent.
type Dataset struct {
	f    *File
	name string
	ext  *extent
}

// CreateDataset is the traced H5Dcreate2. All ranks must create datasets in
// the same order so the deterministic extent allocation agrees.
func (f *File) CreateDataset(name string, dims ...int64) (*Dataset, error) {
	d := &Dataset{f: f, name: name}
	err := f.r.Record(trace.LayerHDF5, "H5Dcreate2", func() []string {
		return []string{f.path, name, fmt.Sprint(dims)}
	}, func() error {
		if len(dims) == 0 || len(dims) > 2 {
			return fmt.Errorf("hdf5: %d-dimensional dataspaces are not supported", len(dims))
		}
		f.meta.mu.Lock()
		defer f.meta.mu.Unlock()
		if e, ok := f.meta.datasets[name]; ok {
			// Another rank of this collective call already allocated it.
			d.ext = e
			return nil
		}
		e := &extent{off: f.meta.nextData, dims: append([]int64(nil), dims...)}
		f.meta.datasets[name] = e
		f.meta.nextData += e.size()
		d.ext = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// OpenDataset is the traced H5Dopen2.
func (f *File) OpenDataset(name string) (*Dataset, error) {
	d := &Dataset{f: f, name: name}
	err := f.r.Record(trace.LayerHDF5, "H5Dopen2", func() []string {
		return []string{f.path, name}
	}, func() error {
		f.meta.mu.Lock()
		defer f.meta.mu.Unlock()
		e, ok := f.meta.datasets[name]
		if !ok {
			return fmt.Errorf("%w: dataset %s", ErrNotFound, name)
		}
		d.ext = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Close is the traced H5Dclose.
func (d *Dataset) Close() error {
	return d.f.r.Record(trace.LayerHDF5, "H5Dclose", func() []string {
		return []string{d.name}
	}, func() error { return nil })
}

// Dims returns the dataset's dataspace dimensions.
func (d *Dataset) Dims() []int64 { return d.ext.dims }

// Hyperslab is a regular selection: start and count per dimension.
type Hyperslab struct {
	Start []int64
	Count []int64
}

// All selects the entire dataspace.
func (d *Dataset) All() Hyperslab {
	hs := Hyperslab{Start: make([]int64, len(d.ext.dims)), Count: append([]int64(nil), d.ext.dims...)}
	return hs
}

// rowExtents flattens the selection into contiguous file extents (one per
// selected row for 2-D spaces).
func (d *Dataset) rowExtents(hs Hyperslab) ([][2]int64, error) {
	if len(hs.Start) != len(d.ext.dims) || len(hs.Count) != len(d.ext.dims) {
		return nil, fmt.Errorf("%w: selection rank %d vs dataspace rank %d", ErrBounds, len(hs.Start), len(d.ext.dims))
	}
	for i := range hs.Start {
		if hs.Start[i] < 0 || hs.Count[i] < 0 || hs.Start[i]+hs.Count[i] > d.ext.dims[i] {
			return nil, fmt.Errorf("%w: dim %d start %d count %d extent %d", ErrBounds, i, hs.Start[i], hs.Count[i], d.ext.dims[i])
		}
	}
	switch len(d.ext.dims) {
	case 1:
		if d.ext.chunked != nil {
			return d.ext.chunked.chunkExtents(hs.Start[0], hs.Count[0])
		}
		return [][2]int64{{d.ext.off + hs.Start[0], hs.Count[0]}}, nil
	default:
		rowLen := d.ext.dims[1]
		out := make([][2]int64, 0, hs.Count[0])
		for r := int64(0); r < hs.Count[0]; r++ {
			off := d.ext.off + (hs.Start[0]+r)*rowLen + hs.Start[1]
			out = append(out, [2]int64{off, hs.Count[1]})
		}
		return out, nil
	}
}

// Write is the traced H5Dwrite over the given selection. Collective
// transfers require a selection that flattens to a single contiguous extent
// (all ranks must make the same number of collective MPI calls); independent
// transfers accept any selection.
func (d *Dataset) Write(xfer Transfer, hs Hyperslab, data []byte) error {
	return d.f.r.Record(trace.LayerHDF5, "H5Dwrite", func() []string {
		return []string{d.name, xfer.String(), fmt.Sprint(hs.Start), fmt.Sprint(hs.Count)}
	}, func() error {
		exts, err := d.rowExtents(hs)
		if err != nil {
			return err
		}
		need := int64(0)
		for _, e := range exts {
			need += e[1]
		}
		if int64(len(data)) < need {
			return fmt.Errorf("%w: %d bytes for %d-byte selection", ErrBounds, len(data), need)
		}
		if xfer == Collective {
			if len(exts) != 1 {
				return fmt.Errorf("hdf5: collective transfer requires a contiguous selection (%d extents)", len(exts))
			}
			return d.f.mf.WriteAtAll(exts[0][0], data[:exts[0][1]])
		}
		pos := int64(0)
		for _, e := range exts {
			if err := d.f.mf.WriteAt(e[0], data[pos:pos+e[1]]); err != nil {
				return err
			}
			pos += e[1]
		}
		return nil
	})
}

// Read is the traced H5Dread over the given selection.
func (d *Dataset) Read(xfer Transfer, hs Hyperslab) ([]byte, error) {
	var out []byte
	err := d.f.r.Record(trace.LayerHDF5, "H5Dread", func() []string {
		return []string{d.name, xfer.String(), fmt.Sprint(hs.Start), fmt.Sprint(hs.Count)}
	}, func() error {
		exts, err := d.rowExtents(hs)
		if err != nil {
			return err
		}
		if xfer == Collective {
			if len(exts) != 1 {
				return fmt.Errorf("hdf5: collective transfer requires a contiguous selection (%d extents)", len(exts))
			}
			buf, err := d.f.mf.ReadAtAll(exts[0][0], int(exts[0][1]))
			out = buf
			return err
		}
		for _, e := range exts {
			buf, err := d.f.mf.ReadAt(e[0], int(e[1]))
			if err != nil {
				return err
			}
			out = append(out, buf...)
		}
		return nil
	})
	return out, err
}

// Attr is an open attribute, stored in the file's header area.
type Attr struct {
	f    *File
	name string
	ext  *extent
}

// CreateAttr is the traced H5Acreate2. Attributes occupy fixed header slots.
func (f *File) CreateAttr(name string, size int64) (*Attr, error) {
	a := &Attr{f: f, name: name}
	err := f.r.Record(trace.LayerHDF5, "H5Acreate2", func() []string {
		return []string{f.path, name, itoa(size)}
	}, func() error {
		if size <= 0 || size > attrSlot {
			return fmt.Errorf("hdf5: attribute size %d outside (0,%d]", size, attrSlot)
		}
		f.meta.mu.Lock()
		defer f.meta.mu.Unlock()
		if e, ok := f.meta.attrs[name]; ok {
			a.ext = e
			return nil
		}
		if f.meta.nextAttr+attrSlot > headerSize {
			return fmt.Errorf("hdf5: header area full")
		}
		e := &extent{off: f.meta.nextAttr, dims: []int64{size}}
		f.meta.attrs[name] = e
		f.meta.nextAttr += attrSlot
		a.ext = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// OpenAttr is the traced H5Aopen.
func (f *File) OpenAttr(name string) (*Attr, error) {
	a := &Attr{f: f, name: name}
	err := f.r.Record(trace.LayerHDF5, "H5Aopen", func() []string {
		return []string{f.path, name}
	}, func() error {
		f.meta.mu.Lock()
		defer f.meta.mu.Unlock()
		e, ok := f.meta.attrs[name]
		if !ok {
			return fmt.Errorf("%w: attribute %s", ErrNotFound, name)
		}
		a.ext = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Write is the traced H5Awrite: an independent header-area write from the
// calling rank. Calling it from every rank concurrently produces the
// same-offset write-write conflicts behind the evaluation's HDF5 POSIX
// races.
func (a *Attr) Write(data []byte) error {
	return a.f.r.Record(trace.LayerHDF5, "H5Awrite", func() []string {
		return []string{a.name, itoa(int64(len(data)))}
	}, func() error {
		if int64(len(data)) > a.ext.size() {
			return fmt.Errorf("%w: %d bytes into %d-byte attribute", ErrBounds, len(data), a.ext.size())
		}
		return a.f.mf.WriteAt(a.ext.off, data)
	})
}

// Read is the traced H5Aread.
func (a *Attr) Read() ([]byte, error) {
	var out []byte
	err := a.f.r.Record(trace.LayerHDF5, "H5Aread", func() []string {
		return []string{a.name, itoa(a.ext.size())}
	}, func() error {
		buf, err := a.f.mf.ReadAt(a.ext.off, int(a.ext.size()))
		out = buf
		return err
	})
	return out, err
}

// Close is the traced H5Aclose.
func (a *Attr) Close() error {
	return a.f.r.Record(trace.LayerHDF5, "H5Aclose", func() []string {
		return []string{a.name}
	}, func() error { return nil })
}

// Datasets lists the names of the file's datasets (sorted), the information
// a reopening reader recovers from the file format.
func (f *File) Datasets() []string {
	f.meta.mu.Lock()
	defer f.meta.mu.Unlock()
	out := make([]string, 0, len(f.meta.datasets))
	for name := range f.meta.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DatasetDims returns the dimensions of a dataset without opening it.
func (f *File) DatasetDims(name string) ([]int64, bool) {
	f.meta.mu.Lock()
	defer f.meta.mu.Unlock()
	e, ok := f.meta.datasets[name]
	if !ok {
		return nil, false
	}
	return append([]int64(nil), e.dims...), true
}

// ResetMetadata clears the shared layout registry. Tests and the corpus
// runner call it between executions so file layouts from one run cannot
// leak into the next.
func ResetMetadata() {
	metaMu.Lock()
	defer metaMu.Unlock()
	metaTab = map[metaKey]*fileMeta{}
}

func itoa(v int64) string { return fmt.Sprint(v) }

package semantics

import (
	"strings"
	"testing"
)

// TestTableI pins the model specifications to the paper's Table I.
func TestTableI(t *testing.T) {
	posix := POSIXModel()
	if posix.MSC.K() != 0 || len(posix.SyncSet) != 0 || posix.MSC.Edges[0] != HB {
		t.Errorf("POSIX spec wrong: %+v", posix)
	}

	commit := CommitModel()
	if commit.MSC.K() != 1 {
		t.Fatalf("Commit k = %d", commit.MSC.K())
	}
	if commit.MSC.Edges[0] != HB || commit.MSC.Edges[1] != HB {
		t.Errorf("Commit edges = %v, want hb commit hb", commit.MSC.Edges)
	}
	if !commit.MSC.Ops[0].Contains("fsync") {
		t.Error("Commit op must include fsync (UnifyFS maps commit to fsync)")
	}

	session := SessionModel()
	if session.MSC.K() != 2 {
		t.Fatalf("Session k = %d", session.MSC.K())
	}
	wantEdges := []EdgeKind{PO, HB, PO}
	for i, e := range wantEdges {
		if session.MSC.Edges[i] != e {
			t.Errorf("Session edge %d = %v, want %v", i, session.MSC.Edges[i], e)
		}
	}
	if !session.MSC.Ops[0].Contains("close") || !session.MSC.Ops[1].Contains("open") {
		t.Errorf("Session ops = %+v", session.MSC.Ops)
	}

	mpiio := MPIIOModel()
	if mpiio.MSC.K() != 2 {
		t.Fatalf("MPI-IO k = %d", mpiio.MSC.K())
	}
	s1, s2 := mpiio.MSC.Ops[0], mpiio.MSC.Ops[1]
	if !s1.Contains("MPI_File_close") || !s1.Contains("MPI_File_sync") || s1.Contains("MPI_File_open") {
		t.Errorf("s1 = %+v, want {MPI_File_close, MPI_File_sync}", s1)
	}
	if !s2.Contains("MPI_File_sync") || !s2.Contains("MPI_File_open") || s2.Contains("MPI_File_close") {
		t.Errorf("s2 = %+v, want {MPI_File_sync, MPI_File_open}", s2)
	}
	if len(mpiio.SyncSet) != 3 {
		t.Errorf("MPI-IO S = %v", mpiio.SyncSet)
	}
}

func TestMSCValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.MSC.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := MSC{Edges: []EdgeKind{HB}, Ops: []OpClass{{Name: "x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid MSC accepted")
	}
}

func TestMSCString(t *testing.T) {
	s := SessionModel().MSC.String()
	for _, want := range []string{"-po->", "-hb->", "session_close", "session_open"} {
		if !strings.Contains(s, want) {
			t.Errorf("MSC string %q missing %q", s, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"posix", "POSIX", "Commit", "session", "MPI-IO"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("strict"); err == nil {
		t.Error("ByName accepted unknown model")
	}
}

func TestAllOrderMatchesPaper(t *testing.T) {
	all := All()
	wantNames := []string{"POSIX", "Commit", "Session", "MPI-IO"}
	for i, m := range all {
		if m.Name != wantNames[i] || m.ID != ID(i) {
			t.Errorf("All()[%d] = %s/%d, want %s/%d", i, m.Name, m.ID, wantNames[i], i)
		}
	}
}

func TestOpClassContains(t *testing.T) {
	c := OpClass{Name: "x", Funcs: []string{"a", "b"}}
	if !c.Contains("a") || c.Contains("z") {
		t.Error("Contains wrong")
	}
}

// Package semantics specifies I/O consistency models in the unified
// framework of Wang, Mohror and Snir [10], as adopted by the paper (§III-A):
// a model is a set S of synchronization operations plus a minimum
// synchronization construct (MSC, Def. 5) — an alternating sequence of
// ordering edges (program order or happens-before) and synchronization
// operations:
//
//	MSC = →r0 S1 →r1 S2 →r2 … Sk →rk,  rj ∈ {po, hb},  Si ∈ S
//
// Two conflicting operations X (a write) and Y are properly synchronized
// when an instance of the MSC exists between them in the happens-before
// order, with every Si acting on the conflicting file.
//
// The four models of Table I are built in; new models are plain data — an
// extension point, not code.
package semantics

import (
	"fmt"
	"strings"
)

// EdgeKind is the ordering requirement between consecutive MSC elements.
type EdgeKind int

// Edge kinds.
const (
	// PO requires program order: same process, later (or earlier, for the
	// edge into Y) in that process's execution.
	PO EdgeKind = iota
	// HB requires happens-before order (Def. 3).
	HB
)

func (e EdgeKind) String() string {
	if e == PO {
		return "po"
	}
	return "hb"
}

// OpClass is one synchronization-operation position in an MSC: the set of
// function names that may fill it. Names are trace-record function names;
// each candidate must act on the file of the conflicting accesses.
type OpClass struct {
	// Name labels the class for display (e.g. "commit").
	Name string
	// Funcs are the trace function names that realize the operation.
	Funcs []string
}

// Contains reports whether fn realizes this operation class.
func (c OpClass) Contains(fn string) bool {
	for _, f := range c.Funcs {
		if f == fn {
			return true
		}
	}
	return false
}

// MSC is the minimum synchronization construct: k+1 edges around k
// synchronization operations.
type MSC struct {
	// Edges has length k+1.
	Edges []EdgeKind
	// Ops has length k.
	Ops []OpClass
}

// K returns the number of synchronization operations in the construct.
func (m MSC) K() int { return len(m.Ops) }

// Validate checks the structural invariant len(Edges) == len(Ops)+1.
func (m MSC) Validate() error {
	if len(m.Edges) != len(m.Ops)+1 {
		return fmt.Errorf("semantics: MSC has %d edges for %d ops (want %d)",
			len(m.Edges), len(m.Ops), len(m.Ops)+1)
	}
	return nil
}

// String renders the construct in the paper's arrow notation.
func (m MSC) String() string {
	var b strings.Builder
	for i, e := range m.Edges {
		fmt.Fprintf(&b, "-%s->", e)
		if i < len(m.Ops) {
			fmt.Fprintf(&b, " %s ", m.Ops[i].Name)
		}
	}
	return b.String()
}

// ID identifies a built-in model.
type ID int

// Built-in models, in the paper's column order.
const (
	POSIX ID = iota
	Commit
	Session
	MPIIO
)

// Model is a consistency model: its synchronization-operation set and MSC.
type Model struct {
	ID   ID
	Name string
	// SyncSet is S — every function name that is a synchronization
	// operation under this model (the union of the MSC op classes).
	SyncSet []string
	// MSC is the minimum synchronization construct of Table I.
	MSC MSC
}

// String returns the model name.
func (m Model) String() string { return m.Name }

// Table I: the synchronization operation set (S) and minimum
// synchronization construct (MSC) for the four commonly-seen storage
// consistency models.
var (
	// commitOps: commit consistency maps "commit" onto fsync (UnifyFS
	// signals commits with fsync, §II-A2); MPI_File_sync reaches fsync
	// through its nested POSIX call, so the POSIX name suffices.
	commitOps = OpClass{Name: "commit", Funcs: []string{"fsync", "fdatasync"}}

	sessionClose = OpClass{Name: "session_close", Funcs: []string{"close", "fclose"}}
	sessionOpen  = OpClass{Name: "session_open", Funcs: []string{"open", "fopen"}}

	mpiioS1 = OpClass{Name: "s1", Funcs: []string{"MPI_File_close", "MPI_File_sync"}}
	mpiioS2 = OpClass{Name: "s2", Funcs: []string{"MPI_File_sync", "MPI_File_open"}}
)

// POSIXModel returns POSIX consistency: S = {}, MSC = -hb->.
func POSIXModel() Model {
	return Model{
		ID: POSIX, Name: "POSIX",
		SyncSet: nil,
		MSC:     MSC{Edges: []EdgeKind{HB}},
	}
}

// CommitModel returns commit consistency: S = {commit},
// MSC = -hb-> commit -hb->.
func CommitModel() Model {
	return Model{
		ID: Commit, Name: "Commit",
		SyncSet: commitOps.Funcs,
		MSC:     MSC{Edges: []EdgeKind{HB, HB}, Ops: []OpClass{commitOps}},
	}
}

// SessionModel returns session (close-to-open) consistency:
// S = {session_close, session_open},
// MSC = -po-> session_close -hb-> session_open -po->.
func SessionModel() Model {
	return Model{
		ID: Session, Name: "Session",
		SyncSet: append(append([]string{}, sessionClose.Funcs...), sessionOpen.Funcs...),
		MSC: MSC{
			Edges: []EdgeKind{PO, HB, PO},
			Ops:   []OpClass{sessionClose, sessionOpen},
		},
	}
}

// MPIIOModel returns MPI-IO consistency:
// S = {MPI_File_sync, MPI_File_close, MPI_File_open},
// MSC = -po-> s1 -hb-> s2 -po-> with s1 ∈ {close, sync}, s2 ∈ {sync, open}.
func MPIIOModel() Model {
	return Model{
		ID: MPIIO, Name: "MPI-IO",
		SyncSet: []string{"MPI_File_sync", "MPI_File_close", "MPI_File_open"},
		MSC: MSC{
			Edges: []EdgeKind{PO, HB, PO},
			Ops:   []OpClass{mpiioS1, mpiioS2},
		},
	}
}

// All returns the four built-in models in the paper's order.
func All() []Model {
	return []Model{POSIXModel(), CommitModel(), SessionModel(), MPIIOModel()}
}

// ByName resolves a model by its (case-insensitive) name.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("semantics: unknown consistency model %q (have posix, commit, session, mpi-io)", name)
}

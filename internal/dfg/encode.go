package dfg

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes the fleet as indented JSON. Every slice in the fleet is
// sorted at build time, so the output is byte-deterministic: the same
// trace produces the same bytes at any worker count, streamed or
// materialized.
func (f *Fleet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteDOT writes the fleet as a Graphviz digraph, one cluster per rank
// (render with: dot -Tsvg dfg.dot -o dfg.svg). Anomalous ranks are drawn
// red. Output is byte-deterministic like WriteJSON.
func (f *Fleet) WriteDOT(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("digraph dfg {\n")
	bw.printf("  rankdir=LR;\n")
	bw.printf("  node [shape=box, fontname=\"monospace\"];\n")
	anomalous := make(map[int]bool, len(f.AnomalousRanks))
	for _, r := range f.AnomalousRanks {
		anomalous[r] = true
	}
	for i := range f.Graphs {
		g := &f.Graphs[i]
		ids := make(map[string]string, len(g.Nodes))
		bw.printf("  subgraph cluster_r%d {\n", g.Rank)
		label := fmt.Sprintf("rank %d", g.Rank)
		if anomalous[g.Rank] {
			label += " (anomalous)"
			bw.printf("    color=red; fontcolor=red;\n")
		}
		bw.printf("    label=%q;\n", label)
		for j, n := range g.Nodes {
			id := fmt.Sprintf("r%d_n%d", g.Rank, j)
			ids[n.Label] = id
			bw.printf("    %s [label=\"%s\\nx%d\"];\n", id, n.Label, n.Count)
		}
		for _, e := range g.Edges {
			attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%d", e.Count))
			if e.Bytes > 0 {
				attrs = fmt.Sprintf("label=%q", fmt.Sprintf("%d / %dB", e.Count, e.Bytes))
			}
			bw.printf("    %s -> %s [%s];\n", ids[e.From], ids[e.To], attrs)
		}
		bw.printf("  }\n")
	}
	bw.printf("}\n")
	return bw.err
}

// errWriter folds the first write error through a sequence of printfs.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// Summary is the one-line human rendering the CLI prints next to the
// artifact paths.
func (f *Fleet) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dfg: %d ranks, %d nodes, %d edges, archetype %s",
		f.Ranks, f.Nodes, f.Edges, f.Archetype)
	if len(f.AnomalousRanks) > 0 {
		fmt.Fprintf(&b, ", %d anomalous rank(s) %v", len(f.AnomalousRanks), f.AnomalousRanks)
	} else {
		b.WriteString(", no anomalous ranks")
	}
	return b.String()
}

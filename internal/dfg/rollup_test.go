package dfg

import (
	"bytes"
	"testing"

	"verifyio/internal/obs"
	"verifyio/internal/verify"
)

func rep(model string, races int64, verified bool) *verify.Report {
	return &verify.Report{
		Model:                model,
		RaceCount:            races,
		Verified:             verified,
		ProperlySynchronized: verified && races == 0,
	}
}

func TestRollupCellsSortedAndCounted(t *testing.T) {
	rb := NewRollup()
	rb.Add("hdf5", "mixed", []*verify.Report{rep("posix", 3, true), rep("session", 0, true)})
	rb.Add("hdf5", "mixed", []*verify.Report{rep("posix", 1, true), rep("session", 0, true)})
	rb.Add("netcdf", "write-only", []*verify.Report{rep("posix", 0, false), nil})

	reg := obs.NewRegistry()
	reg.Counter("verify.hb_queries").Add(42)
	reg.Counter("verify.hb_fallbacks").Add(0)
	reg.Gauge("vcache.hits").Set(7)
	r := rb.Finish(reg.Snapshot())

	if r.Traces != 3 {
		t.Fatalf("traces = %d, want 3", r.Traces)
	}
	if len(r.Models) != 2 || r.Models[0] != "posix" || r.Models[1] != "session" {
		t.Fatalf("models = %v", r.Models)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("cells = %+v, want 3", r.Cells)
	}
	// Sorted by (model, library, archetype).
	c0 := r.Cells[0]
	if c0.Model != "posix" || c0.Library != "hdf5" || c0.Traces != 2 || c0.Races != 4 || c0.Synced != 0 {
		t.Fatalf("cell 0 = %+v", c0)
	}
	c1 := r.Cells[1]
	if c1.Model != "posix" || c1.Library != "netcdf" || c1.Aborted != 1 {
		t.Fatalf("cell 1 = %+v", c1)
	}
	c2 := r.Cells[2]
	if c2.Model != "session" || c2.Synced != 2 {
		t.Fatalf("cell 2 = %+v", c2)
	}
	if r.Telemetry == nil || r.Telemetry.HBQueries != 42 || r.Telemetry.VCacheHits != 7 {
		t.Fatalf("telemetry = %+v", r.Telemetry)
	}

	// Byte-determinism: rebuilding with the same adds marshals equal.
	rb2 := NewRollup()
	rb2.Add("hdf5", "mixed", []*verify.Report{rep("posix", 3, true), rep("session", 0, true)})
	rb2.Add("hdf5", "mixed", []*verify.Report{rep("posix", 1, true), rep("session", 0, true)})
	rb2.Add("netcdf", "write-only", []*verify.Report{rep("posix", 0, false), nil})
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb2.Finish(reg.Snapshot()).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rollup JSON not deterministic:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}
}

package dfg

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"verifyio/internal/obs"
	"verifyio/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// ev is one call in a synthetic rank program.
type ev struct {
	layer trace.Layer
	fn    string
	args  []string
}

func appendEvents(tr *trace.Trace, rank int, evs []ev) {
	tick := int64(len(tr.Ranks[rank]) * 2)
	for _, e := range evs {
		tick++
		tr.Append(trace.Record{
			Rank: rank, Func: e.fn, Layer: e.layer,
			Args: e.args, Tick: tick, Ret: tick + 1,
		})
		tick++
	}
}

// phase helpers: open fd 3 on path, write, sync, barrier, read back, close.
func cleanProgram() []ev {
	return []ev{
		{trace.LayerPOSIX, "open", []string{"data.bin", "rdwr|create", "3"}},
		{trace.LayerPOSIX, "pwrite", []string{"3", "256", "0"}},
		{trace.LayerPOSIX, "pwrite", []string{"3", "256", "256"}},
		{trace.LayerPOSIX, "fsync", []string{"3"}},
		{trace.LayerMPI, "MPI_Barrier", []string{"comm0"}},
		{trace.LayerPOSIX, "pread", []string{"3", "256", "0"}},
		{trace.LayerMPI, "MPI_Barrier", []string{"comm0"}},
		{trace.LayerPOSIX, "close", []string{"3"}},
	}
}

// divergentProgram is the clean program with an extra read-modify-write
// phase spliced in before the final barrier.
func divergentProgram() []ev {
	evs := cleanProgram()
	rmw := []ev{}
	for i := 0; i < 4; i++ {
		rmw = append(rmw,
			ev{trace.LayerPOSIX, "pread", []string{"3", "64", "0"}},
			ev{trace.LayerPOSIX, "pwrite", []string{"3", "64", "0"}},
		)
	}
	out := append([]ev{}, evs[:6]...) // ...through the first pread
	out = append(out, rmw...)
	out = append(out, evs[6:]...)
	return out
}

func buildTrace(nranks, divergent int) *trace.Trace {
	tr := trace.New(nranks)
	tr.Meta["program"] = "dfg-test"
	for r := 0; r < nranks; r++ {
		if r == divergent {
			appendEvents(tr, r, divergentProgram())
		} else {
			appendEvents(tr, r, cleanProgram())
		}
	}
	return tr
}

func fleetJSON(t *testing.T, f *Fleet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fleetDOT(t *testing.T, f *Fleet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDivergentRankAnomalous(t *testing.T) {
	f := FromTrace(buildTrace(4, 2), Options{Workers: 1})
	if f.MajoritySize != 3 {
		t.Fatalf("majority size = %d, want 3", f.MajoritySize)
	}
	if len(f.AnomalousRanks) != 1 || f.AnomalousRanks[0] != 2 {
		t.Fatalf("anomalous ranks = %v, want [2]", f.AnomalousRanks)
	}
	if s := f.Scores[2]; !s.Anomalous || s.Score <= 0 || s.StructDiff == 0 {
		t.Fatalf("rank 2 score = %+v, want anomalous with positive score and struct diff", s)
	}
	for _, r := range []int{0, 1, 3} {
		if s := f.Scores[r]; s.Anomalous || s.Score != 0 {
			t.Fatalf("clean rank %d score = %+v, want zero", r, s)
		}
	}
	if f.Archetype != "read-modify-write" {
		t.Fatalf("archetype = %q, want read-modify-write", f.Archetype)
	}
}

func TestCleanFleetScoresZero(t *testing.T) {
	f := FromTrace(buildTrace(4, -1), Options{Workers: 1})
	if len(f.AnomalousRanks) != 0 {
		t.Fatalf("anomalous ranks = %v, want none", f.AnomalousRanks)
	}
	if f.MajoritySize != 4 {
		t.Fatalf("majority size = %d, want 4", f.MajoritySize)
	}
	for _, s := range f.Scores {
		if s.Score != 0 || s.Anomalous || s.Straggler {
			t.Fatalf("score = %+v, want zero", s)
		}
	}
	if f.Archetype != "mixed" {
		t.Fatalf("archetype = %q, want mixed", f.Archetype)
	}
}

// TestNoMajorityNoAnomaly: with no strict structural majority there is no
// consensus to deviate from, so nothing is flagged (the 2-rank
// producer/consumer shape must not trip the gate).
func TestNoMajorityNoAnomaly(t *testing.T) {
	tr := trace.New(2)
	appendEvents(tr, 0, []ev{
		{trace.LayerPOSIX, "open", []string{"a", "wronly|create", "3"}},
		{trace.LayerPOSIX, "pwrite", []string{"3", "128", "0"}},
		{trace.LayerPOSIX, "close", []string{"3"}},
	})
	appendEvents(tr, 1, []ev{
		{trace.LayerPOSIX, "open", []string{"a", "rdonly", "3"}},
		{trace.LayerPOSIX, "pread", []string{"3", "128", "0"}},
		{trace.LayerPOSIX, "close", []string{"3"}},
	})
	f := FromTrace(tr, Options{Workers: 1})
	if f.MajorityFP != "" || len(f.AnomalousRanks) != 0 {
		t.Fatalf("majority = %q anomalous = %v, want no majority and no anomalies",
			f.MajorityFP, f.AnomalousRanks)
	}
	for _, s := range f.Scores {
		if s.Score == 0 {
			t.Fatalf("rank %d score = 0: asymmetric ranks should still diverge from consensus", s.Rank)
		}
	}
}

// TestStragglerFlagged: a rank that matches the majority shape but repeats
// an edge far past the consensus median is a straggler.
func TestStragglerFlagged(t *testing.T) {
	loop := func(n int) []ev {
		evs := []ev{{trace.LayerPOSIX, "open", []string{"log", "wronly|create", "3"}}}
		for i := 0; i < n; i++ {
			evs = append(evs, ev{trace.LayerPOSIX, "pwrite", []string{"3", "8", fmt.Sprint(8 * i)}})
		}
		return append(evs, ev{trace.LayerPOSIX, "close", []string{"3"}})
	}
	tr := trace.New(5)
	for r := 0; r < 4; r++ {
		appendEvents(tr, r, loop(20))
	}
	appendEvents(tr, 4, loop(1000))
	f := FromTrace(tr, Options{Workers: 1})
	if len(f.AnomalousRanks) != 1 || f.AnomalousRanks[0] != 4 {
		t.Fatalf("anomalous ranks = %v, want [4]", f.AnomalousRanks)
	}
	if s := f.Scores[4]; !s.Straggler || !s.Anomalous {
		t.Fatalf("rank 4 score = %+v, want straggler", s)
	}
	for r := 0; r < 4; r++ {
		if f.Scores[r].Anomalous {
			t.Fatalf("rank %d flagged: %+v", r, f.Scores[r])
		}
	}
}

// TestDeterministicAcrossWorkers is the byte-determinism contract: same
// trace, any worker count, identical JSON and DOT bytes.
func TestDeterministicAcrossWorkers(t *testing.T) {
	tr := buildTrace(6, 3)
	base := FromTrace(tr, Options{Workers: 1})
	wantJSON, wantDOT := fleetJSON(t, base), fleetDOT(t, base)
	for _, workers := range []int{2, 4, 7} {
		f := FromTrace(tr, Options{Workers: workers})
		if !bytes.Equal(fleetJSON(t, f), wantJSON) {
			t.Fatalf("workers=%d JSON differs from serial build", workers)
		}
		if !bytes.Equal(fleetDOT(t, f), wantDOT) {
			t.Fatalf("workers=%d DOT differs from serial build", workers)
		}
	}
}

// TestStreamMatchesFromTrace: the streaming build (small window, many
// batches per rank) must produce byte-identical output to the materialized
// build, and its peak resident decode bytes must stay bounded by the
// window.
func TestStreamMatchesFromTrace(t *testing.T) {
	tr := buildTrace(4, 1)
	// Pad the trace so a small window forces multiple batches per rank.
	for r := 0; r < 4; r++ {
		var evs []ev
		for i := 0; i < 300; i++ {
			evs = append(evs, ev{trace.LayerPOSIX, "pwrite", []string{"3", "8", fmt.Sprint(8 * i)}})
		}
		appendEvents(tr, r, evs)
	}
	dir := t.TempDir()
	if err := trace.WriteDir(dir, tr, trace.DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	want := fleetJSON(t, FromTrace(tr, Options{Workers: 1}))

	const window = 1 << 12
	reg := obs.NewRegistry()
	f, err := BuildStreamDir(dir, StreamOptions{
		WindowBytes: window,
		Obs:         obs.Ctx{R: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetJSON(t, f); !bytes.Equal(got, want) {
		t.Fatalf("streamed fleet differs from materialized fleet")
	}
	snap := reg.Snapshot()
	peak := snap.Stable.Gauges["decode.peak_resident_bytes"]
	if peak <= 0 || peak > 2*window {
		t.Fatalf("decode.peak_resident_bytes = %d, want in (0, %d]", peak, 2*window)
	}
	if snap.Stable.Gauges["dfg.nodes"] != int64(f.Nodes) ||
		snap.Stable.Gauges["dfg.edges"] != int64(f.Edges) ||
		snap.Stable.Gauges["dfg.anomalous_ranks"] != int64(len(f.AnomalousRanks)) {
		t.Fatalf("dfg gauges %v don't match fleet (%d nodes, %d edges, %d anomalous)",
			snap.Stable.Gauges, f.Nodes, f.Edges, len(f.AnomalousRanks))
	}
}

// TestBuilderUnknownHandleAndUnlink: operations on never-opened handles
// keep a distinguishable tag, and unlink retires a path's identity so the
// next open gets a fresh file tag (mirroring the conflict replayer).
func TestBuilderUnknownHandleAndUnlink(t *testing.T) {
	tr := trace.New(1)
	appendEvents(tr, 0, []ev{
		{trace.LayerPOSIX, "pwrite", []string{"9", "64", "0"}}, // unknown handle
		{trace.LayerPOSIX, "open", []string{"a", "wronly|create", "3"}},
		{trace.LayerPOSIX, "close", []string{"3"}},
		{trace.LayerPOSIX, "unlink", []string{"a"}},
		{trace.LayerPOSIX, "open", []string{"a", "wronly|create", "3"}},
		{trace.LayerPOSIX, "close", []string{"3"}},
	})
	f := FromTrace(tr, Options{Workers: 1})
	g := f.Graphs[0]
	want := map[string]int64{
		"write:f?": 1, // unknown handle
		"meta:f0":  3, // open, close, unlink of the first identity
		"meta:f1":  2, // open, close of the post-unlink identity
	}
	got := map[string]int64{}
	for _, n := range g.Nodes {
		got[n.Label] = n.Count
	}
	for label, count := range want {
		if got[label] != count {
			t.Fatalf("node %q count = %d, want %d (nodes: %v)", label, got[label], count, got)
		}
	}
}

func TestGolden(t *testing.T) {
	f := FromTrace(buildTrace(3, 2), Options{Workers: 1})
	for _, tc := range []struct {
		name string
		got  []byte
	}{
		{"fleet.golden.json", fleetJSON(t, f)},
		{"fleet.golden.dot", fleetDOT(t, f)},
	} {
		path := filepath.Join("testdata", tc.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Fatalf("%s drifted from golden output; rerun with -update and review the diff.\ngot:\n%s", tc.name, tc.got)
		}
	}
}

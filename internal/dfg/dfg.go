// Package dfg derives per-rank directly-follows graphs (DFGs) of I/O
// phases from a decoded trace and diffs them across ranks.
//
// A DFG is the process-mining view of one rank's I/O behaviour: nodes are
// normalized call classes (metadata, read, write, sync, comm) tagged with
// the rank-local file role they act on, and a directed edge u->v counts how
// often an event of class v directly followed one of class u in program
// order, with the bytes moved and a logical-tick inter-arrival histogram on
// each edge. Phase structure (write burst, barrier, read-back) shows up as
// the graph's shape; a rank whose shape or edge weights deviate from the
// rank-majority graph is a divergent rank or a straggler.
//
// Classification covers the leaf layers only — POSIX file calls and plain
// MPI communication. Library wrappers (HDF5, PnetCDF, MPI-IO) are skipped:
// their nested POSIX records already appear in the stream, and counting
// both would double-weight every wrapped operation.
//
// Graphs build incrementally from trace.Stream batches (Builder.Feed keeps
// only per-file handle state and the node/edge accumulators, so memory is
// bounded by graph size, never trace size), or from a materialized trace
// with rank-sharded parallelism (FromTrace). Both paths produce identical,
// byte-deterministic output at any worker count: per-rank graphs are pure
// left-to-right folds over that rank's records, and every exported slice is
// sorted.
package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// TickBounds is the bucket layout of the per-edge inter-arrival histograms:
// logical ticks between the completion of an event and the completion of
// its successor, in powers of two. One leaf call costs two ticks, so the
// low buckets separate back-to-back syscalls from phases separated by
// library work or communication.
var TickBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Node is one call class observed on a rank.
type Node struct {
	// Label is "class:filetag" for file classes ("write:f0") and "comm"
	// for communication. File tags number distinct file identities in
	// first-use order per rank, mirroring the conflict replayer's fid
	// canonicalization ({path, unlink-generation} keys), so the same role
	// gets the same tag on every rank regardless of real fd values.
	Label string `json:"label"`
	Count int64  `json:"count"`
	Bytes int64  `json:"bytes,omitempty"`
}

// Edge is one observed succession u -> v.
type Edge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int64  `json:"count"`
	// Bytes sums the bytes moved by the destination events.
	Bytes int64 `json:"bytes,omitempty"`
	// Interarrival is the logical-tick gap distribution between the
	// completion of the source event and the completion of the
	// destination event, bucketed by TickBounds.
	Interarrival obs.HistogramSnapshot `json:"interarrival"`
}

// Graph is one rank's directly-follows graph. Nodes and Edges are sorted
// by label, so equal graphs marshal byte-equal.
type Graph struct {
	Rank int `json:"rank"`
	// Events is the number of records classified into the graph.
	Events int64  `json:"events"`
	Nodes  []Node `json:"nodes"`
	Edges  []Edge `json:"edges"`
	// StructFP fingerprints the graph's shape only (node and edge
	// labels); ranks with equal StructFP do the same kinds of I/O in the
	// same successions, whatever the counts.
	StructFP string `json:"struct_fp"`
	// Fingerprint additionally covers counts and bytes: equal
	// fingerprints mean behaviourally identical ranks.
	Fingerprint string `json:"fingerprint"`
}

// edgeKey identifies an edge by its endpoint labels.
type edgeKey struct{ from, to string }

// nodeAcc and edgeAcc are the mutable accumulators behind Node and Edge.
type nodeAcc struct{ count, bytes int64 }

type edgeAcc struct {
	count, bytes int64
	hist         *obs.Histogram
}

// rankBuilder folds one rank's records into its DFG. The fold is pure
// left-to-right, so it accepts any batch partitioning of the rank's stream.
type rankBuilder struct {
	rank    int
	fids    map[localKey]int        // {path, unlink-gen} -> rank-local file id
	unlinks map[string]int          // path -> unlinks seen so far
	handles map[string]int          // live handle arg -> file id
	nfids   int
	nodes   map[string]*nodeAcc
	edges   map[edgeKey]*edgeAcc
	prev    string // previous event's node label ("" before the first)
	prevRet int64  // previous event's completion tick
	events  int64
}

type localKey struct {
	path string
	gen  int
}

func newRankBuilder(rank int) *rankBuilder {
	return &rankBuilder{
		rank:    rank,
		fids:    make(map[localKey]int),
		unlinks: make(map[string]int),
		handles: make(map[string]int),
		nodes:   make(map[string]*nodeAcc),
		edges:   make(map[edgeKey]*edgeAcc),
	}
}

// fidOf resolves a path to the rank-local id of its current identity,
// assigning ids in first-use order (the same canonicalization the conflict
// replayer applies, so tags line up with its file ids).
func (rb *rankBuilder) fidOf(path string) int {
	k := localKey{path: path, gen: rb.unlinks[path]}
	id, ok := rb.fids[k]
	if !ok {
		id = rb.nfids
		rb.nfids++
		rb.fids[k] = id
	}
	return id
}

func fileTag(fid int) string { return "f" + strconv.Itoa(fid) }

// eventOf classifies one record into a DFG event. ok reports whether the
// record is a DFG event at all; non-leaf layers and unrecognized calls are
// skipped.
func (rb *rankBuilder) eventOf(rec *trace.Record) (label string, nbytes int64, ok bool) {
	switch rec.Layer {
	case trace.LayerMPI:
		return "comm", 0, true
	case trace.LayerPOSIX:
		// fall through to the call switch
	default:
		return "", 0, false
	}

	// tagOfHandle resolves a live handle to its file tag; operations on
	// handles the builder never saw opened keep a distinguishable tag
	// instead of being dropped (a truncated stream should still graph).
	tagOfHandle := func(h string) string {
		if fid, ok := rb.handles[h]; ok {
			return fileTag(fid)
		}
		return "f?"
	}

	switch rec.Func {
	case "open", "fopen":
		path, handle := rec.Arg(0), rec.Arg(2)
		if path == "" {
			return "", 0, false
		}
		fid := rb.fidOf(path)
		if handle != "" {
			rb.handles[handle] = fid
		}
		return "meta:" + fileTag(fid), 0, true

	case "close", "fclose":
		h := rec.Arg(0)
		tag := tagOfHandle(h)
		delete(rb.handles, h)
		return "meta:" + tag, 0, true

	case "lseek", "fseek":
		return "meta:" + tagOfHandle(rec.Arg(0)), 0, true

	case "fsync", "fdatasync":
		return "sync:" + tagOfHandle(rec.Arg(0)), 0, true

	case "read", "pread", "fread", "readv":
		return "read:" + tagOfHandle(rec.Arg(0)), opBytes(rec), true

	case "write", "pwrite", "fwrite", "writev":
		return "write:" + tagOfHandle(rec.Arg(0)), opBytes(rec), true

	case "ftruncate":
		// Truncation rewrites file contents: class write, size unknown
		// without EOF replay, so it carries no byte weight.
		return "write:" + tagOfHandle(rec.Arg(0)), 0, true

	case "unlink":
		path := rec.Arg(0)
		if path == "" {
			return "", 0, false
		}
		fid := rb.fidOf(path)
		rb.unlinks[path]++
		return "meta:" + fileTag(fid), 0, true

	case "stat", "access":
		path := rec.Arg(0)
		if path == "" {
			return "", 0, false
		}
		return "meta:" + fileTag(rb.fidOf(path)), 0, true
	}
	return "", 0, false
}

// opBytes extracts the byte count a data operation moved, 0 when the
// record's arguments don't say (or are corrupt).
func opBytes(rec *trace.Record) int64 {
	switch rec.Func {
	case "read", "write", "pread", "pwrite":
		if n, ok := rec.IntArg(1); ok && n > 0 {
			return n
		}
	case "fread", "fwrite":
		size, okS := rec.IntArg(1)
		count, okC := rec.IntArg(2)
		if okS && okC && size > 0 && count > 0 && size <= math.MaxInt64/count {
			return size * count
		}
	case "readv", "writev":
		cnt, ok := rec.IntArg(1)
		if !ok || cnt < 0 || cnt > int64(len(rec.Args)) {
			return 0
		}
		total := int64(0)
		for k := 0; k < int(cnt); k++ {
			n, ok := rec.IntArg(2 + k)
			if !ok || n < 0 {
				return 0
			}
			total += n
		}
		return total
	}
	return 0
}

// step folds the next record into the rank's graph.
func (rb *rankBuilder) step(rec *trace.Record) {
	label, nbytes, ok := rb.eventOf(rec)
	if !ok {
		return
	}
	n := rb.nodes[label]
	if n == nil {
		n = &nodeAcc{}
		rb.nodes[label] = n
	}
	n.count++
	n.bytes += nbytes
	if rb.prev != "" {
		k := edgeKey{from: rb.prev, to: label}
		e := rb.edges[k]
		if e == nil {
			e = &edgeAcc{hist: obs.NewHistogram(TickBounds)}
			rb.edges[k] = e
		}
		e.count++
		e.bytes += nbytes
		gap := rec.Ret - rb.prevRet
		if gap < 0 {
			gap = 0
		}
		e.hist.Observe(gap)
	}
	rb.prev = label
	rb.prevRet = rec.Ret
	rb.events++
}

func (rb *rankBuilder) feed(recs []trace.Record) {
	for i := range recs {
		rb.step(&recs[i])
	}
}

// graph freezes the accumulators into a sorted, fingerprinted Graph.
func (rb *rankBuilder) graph() Graph {
	g := Graph{Rank: rb.rank, Events: rb.events}
	labels := make([]string, 0, len(rb.nodes))
	for l := range rb.nodes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		n := rb.nodes[l]
		g.Nodes = append(g.Nodes, Node{Label: l, Count: n.count, Bytes: n.bytes})
	}
	keys := make([]edgeKey, 0, len(rb.edges))
	for k := range rb.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		e := rb.edges[k]
		g.Edges = append(g.Edges, Edge{
			From: k.from, To: k.to,
			Count: e.count, Bytes: e.bytes,
			Interarrival: e.hist.Snapshot(),
		})
	}
	g.StructFP, g.Fingerprint = fingerprints(&g)
	return g
}

// fingerprints hashes the graph twice: shape only, and shape plus weights.
func fingerprints(g *Graph) (structFP, fullFP string) {
	hs := sha256.New()
	hf := sha256.New()
	writeInt := func(h io.Writer, v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		io.WriteString(hs, "n\x00"+n.Label+"\x00")
		io.WriteString(hf, "n\x00"+n.Label+"\x00")
		writeInt(hf, n.Count)
		writeInt(hf, n.Bytes)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		io.WriteString(hs, "e\x00"+e.From+"\x00"+e.To+"\x00")
		io.WriteString(hf, "e\x00"+e.From+"\x00"+e.To+"\x00")
		writeInt(hf, e.Count)
		writeInt(hf, e.Bytes)
	}
	s, f := hs.Sum(nil), hf.Sum(nil)
	return hex.EncodeToString(s[:12]), hex.EncodeToString(f[:12])
}

// Builder accumulates per-rank DFGs from record batches. Feed accepts
// batches in any order across ranks but program order within a rank —
// exactly what trace.Stream's rank-major batches deliver. The builder
// copies what it needs out of each batch before returning, so callers may
// Release the batch immediately after Feed (the pool contract documented
// on trace.Batch.Release).
type Builder struct {
	ranks []*rankBuilder
	oc    obs.Ctx
}

// NewBuilder returns a builder expecting nranks ranks (grown on demand if
// a Feed names a higher rank). The obs context instruments Finish and
// receives the dfg.* gauges.
func NewBuilder(nranks int, oc obs.Ctx) *Builder {
	b := &Builder{oc: oc}
	b.grow(nranks)
	return b
}

func (b *Builder) grow(n int) {
	for len(b.ranks) < n {
		b.ranks = append(b.ranks, newRankBuilder(len(b.ranks)))
	}
}

// Feed folds one batch of rank's records into that rank's graph.
func (b *Builder) Feed(rank int, recs []trace.Record) {
	if rank < 0 {
		return
	}
	b.grow(rank + 1)
	b.ranks[rank].feed(recs)
}

// Finish freezes the graphs, scores every rank against the rank-majority
// graph, and publishes the dfg.* gauges.
func (b *Builder) Finish() *Fleet {
	return finishRanks(b.ranks, b.oc)
}

// Options tunes FromTrace.
type Options struct {
	// Workers bounds the rank-sharding parallelism (0 = GOMAXPROCS,
	// 1 = serial). The output is identical at any worker count.
	Workers int
	// Obs instruments the build and receives the dfg.* gauges.
	Obs obs.Ctx
}

// FromTrace builds the fleet's DFGs from a materialized trace, sharding
// rank builds across workers (each rank's fold is independent).
func FromTrace(tr *trace.Trace, opts Options) *Fleet {
	workers := par.Resolve(opts.Workers)
	oc, span := opts.Obs.Start("dfg",
		obs.Int("ranks", tr.NumRanks()), obs.Int("workers", workers))
	span.SetCat("dfg")
	defer span.End()

	rbs := make([]*rankBuilder, tr.NumRanks())
	par.DoObs(oc, "dfg", workers, len(rbs), func(r int) {
		rb := newRankBuilder(r)
		rb.feed(tr.Ranks[r])
		rbs[r] = rb
	})
	return finishRanks(rbs, oc)
}

// StreamOptions tunes BuildStreamDir.
type StreamOptions struct {
	// Decode passes trace decoding options through (tolerate mode). Its
	// Obs field is overridden so the decode spans nest under the dfg span.
	Decode trace.DecodeOptions
	// WindowBytes bounds the decoded records resident at once, exactly as
	// trace.StreamOptions.WindowBytes.
	WindowBytes int64
	// Obs instruments the pass and receives the dfg.* gauges.
	Obs obs.Ctx
}

// BuildStreamDir builds the fleet's DFGs straight off the streaming
// decoder: each record batch is folded into its rank's graph and released,
// so peak memory is bounded by the decode window plus the graphs
// themselves, never the trace size.
func BuildStreamDir(dir string, opts StreamOptions) (*Fleet, error) {
	oc, span := opts.Obs.Start("dfg", obs.String("mode", "stream"))
	span.SetCat("dfg")
	defer span.End()

	dopts := opts.Decode
	dopts.Obs = oc
	s, err := trace.OpenStream(dir, trace.StreamOptions{DecodeOptions: dopts, WindowBytes: opts.WindowBytes})
	if err != nil {
		return nil, fmt.Errorf("dfg: read trace: %w", err)
	}
	defer s.Close()

	b := NewBuilder(s.NumRanks(), oc)
	for {
		batch, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dfg: read trace: %w", err)
		}
		b.Feed(batch.Rank, batch.Recs)
		batch.Release()
	}
	return b.Finish(), nil
}

package dfg

import (
	"encoding/json"
	"io"
	"sort"

	"verifyio/internal/obs"
	"verifyio/internal/verify"
)

// RollupCell is one (model, library, archetype) bucket of the corpus
// rollup: how many traces of that shape were verified under that model,
// and what came of it.
type RollupCell struct {
	Model     string `json:"model"`
	Library   string `json:"library"`
	Archetype string `json:"archetype"`
	// Traces counts the verified (trace, model) pairs in this bucket.
	Traces int `json:"traces"`
	// Races sums the data races reported across the bucket.
	Races int64 `json:"races"`
	// Synced counts traces verified properly synchronized.
	Synced int `json:"synced"`
	// Aborted counts verification aborts (unmatched MPI calls).
	Aborted int `json:"aborted,omitempty"`
}

// RollupTelemetry is the cache/skeleton/fallback counter extract of the
// fleet run, pulled from the final Report.Metrics snapshot (the registry
// is cumulative across a run, so the last snapshot covers the whole
// corpus pass).
type RollupTelemetry struct {
	VCacheHits    int64 `json:"vcache_hits"`
	VCacheMisses  int64 `json:"vcache_misses"`
	VCacheDirty   int64 `json:"vcache_dirty_chunks"`
	HBQueries     int64 `json:"hb_queries"`
	HBFastHits    int64 `json:"hb_fast_hits"`
	HBFallbacks   int64 `json:"hb_fallbacks"`
	SkeletonNodes int64 `json:"skeleton_nodes"`
	GraphNodes    int64 `json:"graph_nodes"`
	SyncEdges     int64 `json:"sync_edges"`
}

// Rollup aggregates verification outcomes across a corpus of traces into
// one machine-readable document: races by model x library x archetype,
// plus the run's cache and happens-before telemetry.
type Rollup struct {
	Traces    int              `json:"traces"`
	Models    []string         `json:"models"`
	Cells     []RollupCell     `json:"cells"`
	Telemetry *RollupTelemetry `json:"telemetry,omitempty"`
}

type cellKey struct{ model, library, archetype string }

// RollupBuilder accumulates rollup cells trace by trace.
type RollupBuilder struct {
	cells  map[cellKey]*RollupCell
	models map[string]struct{}
	traces int
}

// NewRollup returns an empty rollup builder.
func NewRollup() *RollupBuilder {
	return &RollupBuilder{
		cells:  map[cellKey]*RollupCell{},
		models: map[string]struct{}{},
	}
}

// Add folds one trace's verification reports into the rollup. library is
// the I/O library the trace exercises; archetype is the trace's DFG
// archetype (Fleet.Archetype).
func (rb *RollupBuilder) Add(library, archetype string, reports []*verify.Report) {
	rb.traces++
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		rb.models[rep.Model] = struct{}{}
		k := cellKey{model: rep.Model, library: library, archetype: archetype}
		c := rb.cells[k]
		if c == nil {
			c = &RollupCell{Model: rep.Model, Library: library, Archetype: archetype}
			rb.cells[k] = c
		}
		c.Traces++
		c.Races += rep.RaceCount
		switch {
		case !rep.Verified:
			c.Aborted++
		case rep.ProperlySynchronized:
			c.Synced++
		}
	}
}

// Finish freezes the rollup, sorted by (model, library, archetype) so
// equal rollups marshal byte-equal. snap, when non-nil, supplies the
// telemetry extract (pass the final Report.Metrics of the run).
func (rb *RollupBuilder) Finish(snap *obs.Snapshot) *Rollup {
	r := &Rollup{Traces: rb.traces, Cells: []RollupCell{}}
	for m := range rb.models {
		r.Models = append(r.Models, m)
	}
	sort.Strings(r.Models)
	keys := make([]cellKey, 0, len(rb.cells))
	for k := range rb.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.model != b.model {
			return a.model < b.model
		}
		if a.library != b.library {
			return a.library < b.library
		}
		return a.archetype < b.archetype
	})
	for _, k := range keys {
		r.Cells = append(r.Cells, *rb.cells[k])
	}
	if snap != nil {
		r.Telemetry = &RollupTelemetry{
			VCacheHits:    metric(snap, "vcache.hits"),
			VCacheMisses:  metric(snap, "vcache.misses"),
			VCacheDirty:   metric(snap, "vcache.dirty_chunks"),
			HBQueries:     metric(snap, "verify.hb_queries"),
			HBFastHits:    metric(snap, "verify.hb_fast_hits"),
			HBFallbacks:   metric(snap, "verify.hb_fallbacks"),
			SkeletonNodes: metric(snap, "hbgraph.skeleton_nodes"),
			GraphNodes:    metric(snap, "hbgraph.nodes"),
			SyncEdges:     metric(snap, "hbgraph.sync_edges"),
		}
	}
	return r
}

// metric resolves a gauge or counter name in either stability section
// (0 when absent — telemetry that wasn't collected rolls up as zero).
func metric(snap *obs.Snapshot, name string) int64 {
	for _, sec := range []*obs.Section{&snap.Stable, &snap.Volatile} {
		if v, ok := sec.Gauges[name]; ok {
			return v
		}
		if v, ok := sec.Counters[name]; ok {
			return v
		}
	}
	return 0
}

// WriteJSON writes the rollup as indented JSON (byte-deterministic).
func (r *Rollup) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

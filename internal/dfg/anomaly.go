package dfg

import (
	"sort"
	"strings"

	"verifyio/internal/obs"
)

// Anomaly thresholds. Structural deviation from the majority graph is
// always anomalous; a straggler inside the majority cluster must exceed
// both a ratio and an absolute excess over the consensus median before it
// flags, so benign count jitter on small traces never trips the gate.
const (
	// StragglerRatio is the per-edge count multiple of the consensus
	// median past which a structurally conforming rank is a straggler.
	StragglerRatio = 8
	// StragglerExcess is the minimum absolute count excess over the
	// median that must accompany the ratio.
	StragglerExcess = 64
)

// Score is one rank's deviation from the rank-majority graph.
type Score struct {
	Rank int `json:"rank"`
	// StructDiff is the edge-set symmetric difference between this
	// rank's graph and the consensus edge set (edges present on a
	// majority of ranks).
	StructDiff int `json:"struct_diff"`
	// CountDiv sums, over consensus edges, the relative deviation of
	// this rank's edge count from the cross-rank median.
	CountDiv float64 `json:"count_div"`
	// Score is StructDiff + CountDiv: zero exactly when the rank walks
	// the consensus graph with median weights.
	Score float64 `json:"score"`
	// Straggler marks a structurally conforming rank whose edge counts
	// exceed the consensus median by StragglerRatio and StragglerExcess.
	Straggler bool `json:"straggler,omitempty"`
	// Anomalous marks the rank as divergent: it exists only when a
	// strict majority of ranks share a graph shape, and this rank either
	// deviates from that shape or straggles inside it.
	Anomalous bool `json:"anomalous,omitempty"`
}

// Fleet is the cross-rank view: every rank's graph, the majority
// consensus, and each rank's anomaly score. All slices are sorted by rank
// or label, so equal fleets marshal byte-equal.
type Fleet struct {
	Ranks  int   `json:"ranks"`
	Events int64 `json:"events"`
	// Nodes and Edges count distinct node labels and edge label pairs
	// across all ranks (the union graph) — the dfg.nodes / dfg.edges
	// gauges.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// MajorityFP is the structural fingerprint shared by a strict
	// majority of ranks, empty when no shape reaches a majority (then no
	// rank is flagged: there is no consensus to deviate from).
	MajorityFP string `json:"majority_fp,omitempty"`
	// MajoritySize is the number of ranks sharing MajorityFP.
	MajoritySize int `json:"majority_size,omitempty"`
	// Archetype is the fleet-level I/O shape: metadata, read-only,
	// write-only, read-modify-write, or mixed.
	Archetype string `json:"archetype"`
	// AnomalousRanks lists every rank whose Score entry is Anomalous.
	AnomalousRanks []int   `json:"anomalous_ranks"`
	Scores         []Score `json:"scores"`
	Graphs         []Graph `json:"graphs"`
}

// finishRanks freezes the per-rank builders and scores the fleet. It is
// the single convergence point of the streaming and materialized builds,
// so both produce identical output.
func finishRanks(rbs []*rankBuilder, oc obs.Ctx) *Fleet {
	_, span := oc.Start("dfg-score", obs.Int("ranks", len(rbs)))
	span.SetCat("dfg")
	defer span.End()

	f := &Fleet{Ranks: len(rbs)}
	for _, rb := range rbs {
		g := rb.graph()
		f.Events += g.Events
		f.Graphs = append(f.Graphs, g)
	}
	unionNodes := map[string]struct{}{}
	unionEdges := map[edgeKey]struct{}{}
	for i := range f.Graphs {
		g := &f.Graphs[i]
		for _, n := range g.Nodes {
			unionNodes[n.Label] = struct{}{}
		}
		for _, e := range g.Edges {
			unionEdges[edgeKey{e.From, e.To}] = struct{}{}
		}
	}
	f.Nodes = len(unionNodes)
	f.Edges = len(unionEdges)

	f.score()
	f.Archetype = archetype(f)

	oc.R.Gauge("dfg.nodes").Set(int64(f.Nodes))
	oc.R.Gauge("dfg.edges").Set(int64(f.Edges))
	oc.R.Gauge("dfg.anomalous_ranks").Set(int64(len(f.AnomalousRanks)))
	return f
}

// score computes the consensus and every rank's deviation from it.
func (f *Fleet) score() {
	n := len(f.Graphs)
	f.AnomalousRanks = []int{}
	if n == 0 {
		return
	}

	// Majority cluster by structural fingerprint: a strict majority must
	// agree on a shape before any rank can be called divergent.
	clusters := map[string]int{}
	for i := range f.Graphs {
		clusters[f.Graphs[i].StructFP]++
	}
	for fp, size := range clusters {
		if 2*size > n {
			f.MajorityFP, f.MajoritySize = fp, size
		}
	}

	// Consensus edge set: edges present on a strict majority of ranks.
	// Per consensus edge, the cross-rank count median (absent = 0) is the
	// baseline for count divergence.
	presence := map[edgeKey]int{}
	counts := map[edgeKey][]int64{}
	for i := range f.Graphs {
		for _, e := range f.Graphs[i].Edges {
			k := edgeKey{e.From, e.To}
			presence[k]++
			counts[k] = append(counts[k], e.Count)
		}
	}
	consensus := make([]edgeKey, 0, len(presence))
	for k, c := range presence {
		if 2*c > n {
			consensus = append(consensus, k)
		}
	}
	sort.Slice(consensus, func(i, j int) bool {
		if consensus[i].from != consensus[j].from {
			return consensus[i].from < consensus[j].from
		}
		return consensus[i].to < consensus[j].to
	})
	median := map[edgeKey]int64{}
	for _, k := range consensus {
		cs := append([]int64(nil), counts[k]...)
		for len(cs) < n { // ranks missing the edge contribute 0
			cs = append(cs, 0)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		median[k] = cs[len(cs)/2]
	}
	inConsensus := make(map[edgeKey]bool, len(consensus))
	for _, k := range consensus {
		inConsensus[k] = true
	}

	for i := range f.Graphs {
		g := &f.Graphs[i]
		s := Score{Rank: g.Rank}
		have := make(map[edgeKey]int64, len(g.Edges))
		for _, e := range g.Edges {
			have[edgeKey{e.From, e.To}] = e.Count
		}
		for k := range have {
			if !inConsensus[k] {
				s.StructDiff++
			}
		}
		for _, k := range consensus {
			c, ok := have[k]
			if !ok {
				s.StructDiff++
			}
			med := median[k]
			div := c - med
			if div < 0 {
				div = -div
			}
			base := med
			if base < 1 {
				base = 1
			}
			s.CountDiv += float64(div) / float64(base)
			if c > StragglerRatio*med && c-med >= StragglerExcess {
				s.Straggler = true
			}
		}
		s.Score = float64(s.StructDiff) + s.CountDiv
		if f.MajorityFP != "" {
			s.Anomalous = g.StructFP != f.MajorityFP || s.Straggler
		}
		if s.Anomalous {
			f.AnomalousRanks = append(f.AnomalousRanks, g.Rank)
		}
		f.Scores = append(f.Scores, s)
	}
}

// archetype classifies the fleet's I/O shape from the union graph: what
// mix of reading and writing the application does, and whether any rank
// read-modify-writes a file in place (a read->write succession on the same
// file tag).
func archetype(f *Fleet) string {
	var reads, writes int64
	rmw := false
	for i := range f.Graphs {
		g := &f.Graphs[i]
		for _, nd := range g.Nodes {
			switch {
			case strings.HasPrefix(nd.Label, "read:"):
				reads += nd.Count
			case strings.HasPrefix(nd.Label, "write:"):
				writes += nd.Count
			}
		}
		for _, e := range g.Edges {
			if tag, ok := strings.CutPrefix(e.From, "read:"); ok && e.To == "write:"+tag {
				rmw = true
			}
		}
	}
	switch {
	case reads == 0 && writes == 0:
		return "metadata"
	case writes == 0:
		return "read-only"
	case reads == 0:
		return "write-only"
	case rmw:
		return "read-modify-write"
	default:
		return "mixed"
	}
}

package par

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"verifyio/internal/obs"
)

func TestDoCoversIndexSpace(t *testing.T) {
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		const n = 100
		var hits [n]atomic.Int32
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoPanicPropagatesOriginalStack(t *testing.T) {
	sentinel := errors.New("task exploded")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if tp.Value != sentinel {
			t.Fatalf("panic value = %v, want sentinel", tp.Value)
		}
		if tp.Index != 13 {
			t.Fatalf("panic index = %d, want 13", tp.Index)
		}
		// The captured stack must point at the panicking task function, not
		// at Do's caller.
		if !strings.Contains(string(tp.Stack), "explodingTask") {
			t.Fatalf("stack lost goroutine identity:\n%s", tp.Stack)
		}
		if !errors.Is(tp, sentinel) {
			t.Fatal("TaskPanic does not unwrap to the original error")
		}
	}()
	Do(4, 64, func(i int) {
		if i == 13 {
			explodingTask(sentinel)
		}
	})
}

// explodingTask exists so the test can assert the panicking frame survives
// into TaskPanic.Stack.
func explodingTask(err error) { panic(err) }

func TestDoPanicDrainsPool(t *testing.T) {
	// After the first panic the pool must stop claiming new indices (drain),
	// not run the remaining thousands of tasks.
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		Do(2, 100000, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("stop")
			}
		})
	}()
	if got := ran.Load(); got >= 100000 {
		t.Fatalf("pool ran all %d tasks after panic", got)
	}
}

func TestDoObsRecordsPoolStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := obs.NewRegistry()
		const n = 50
		DoObs(obs.Ctx{R: r}, "test-pool", workers, n, func(i int) {})
		snap := r.Snapshot()
		if got := snap.Stable.Counters["par.test-pool.tasks_submitted"]; got != n {
			t.Fatalf("workers=%d submitted = %d, want %d", workers, got, n)
		}
		if got := snap.Stable.Counters["par.test-pool.tasks_completed"]; got != n {
			t.Fatalf("workers=%d completed = %d, want %d", workers, got, n)
		}
		maxc := snap.Volatile.Gauges["par.test-pool.max_concurrent"]
		if maxc < 1 || maxc > int64(workers) {
			t.Fatalf("workers=%d max_concurrent = %d", workers, maxc)
		}
		if _, ok := snap.Volatile.Gauges["par.test-pool.busy_ns"]; !ok {
			t.Fatalf("workers=%d busy_ns missing", workers)
		}
	}
}

func TestDoObsDisabledIsDo(t *testing.T) {
	var hits atomic.Int64
	DoObs(obs.Ctx{}, "unused", 4, 32, func(i int) { hits.Add(1) })
	if hits.Load() != 32 {
		t.Fatalf("ran %d tasks", hits.Load())
	}
}

func TestResolve(t *testing.T) {
	if Resolve(0) != runtime.GOMAXPROCS(0) || Resolve(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("Resolve(<=0) != GOMAXPROCS")
	}
	if Resolve(5) != 5 {
		t.Fatal("Resolve(5) != 5")
	}
}

// Package par provides the worker-pool primitive shared by the parallel
// analysis stages (conflict detection, MPI matching): run n independent
// tasks on a bounded number of goroutines.
//
// The contract that keeps results worker-count-independent lives here: the
// serial and parallel paths execute the same task function over the same
// index space, each index in isolation, so callers only need their tasks to
// be index-pure (output i depends only on input i) and their merge step to
// run in index order.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"verifyio/internal/obs"
)

// Resolve normalizes a Workers option: 0 or negative means GOMAXPROCS.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// TaskPanic is what Do re-panics with when a task panicked on a pool
// goroutine: it carries the panic value and the stack of the goroutine that
// actually failed, which a bare re-panic on the caller's goroutine would
// lose.
type TaskPanic struct {
	Index int    // task index that panicked
	Value any    // original panic value
	Stack []byte // stack of the panicking pool goroutine
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n\noriginal stack:\n%s", p.Index, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines, claiming
// indices from an atomic cursor (cheap dynamic load balancing — task costs
// vary wildly across ranks and files). With workers <= 1 or n <= 1 it
// degenerates to a plain loop on the calling goroutine.
//
// If a task panics on a pool goroutine, the pool drains (no new indices are
// claimed), and Do re-panics on the calling goroutine with a *TaskPanic
// carrying the first panic's value and original stack.
func Do(workers, n int, fn func(i int)) {
	DoObs(obs.Ctx{}, "", workers, n, fn)
}

// DoObs is Do with telemetry: when c carries a registry, the pool records
// tasks submitted/completed, the high-water mark of concurrently running
// tasks, and per-pool busy nanoseconds under "par.*" metric names, prefixed
// with pool (e.g. pool "detect-replay" yields "par.detect-replay.busy_ns").
// A zero Ctx or empty pool name skips all of it.
func DoObs(c obs.Ctx, pool string, workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}

	var submitted, completed *obs.Counter
	var maxConc, busy *obs.Gauge
	if c.R != nil && pool != "" {
		submitted = c.R.Counter("par." + pool + ".tasks_submitted")
		completed = c.R.Counter("par." + pool + ".tasks_completed")
		maxConc = c.R.GaugeS("par."+pool+".max_concurrent", obs.Volatile)
		busy = c.R.GaugeS("par."+pool+".busy_ns", obs.Volatile)
		submitted.Add(int64(n))
	}

	if workers <= 1 {
		start := time.Time{}
		if busy != nil {
			start = time.Now()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		if busy != nil {
			busy.Add(time.Since(start).Nanoseconds())
			maxConc.SetMax(1)
			completed.Add(int64(n))
		}
		return
	}

	var cursor atomic.Int64
	var running atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked atomic.Bool
	var firstPanic *TaskPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var workerBusy time.Duration
			defer func() {
				if busy != nil {
					busy.Add(workerBusy.Nanoseconds())
				}
			}()
			for {
				if panicked.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if maxConc != nil {
					maxConc.SetMax(running.Add(1))
				}
				var start time.Time
				if busy != nil {
					start = time.Now()
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								firstPanic = &TaskPanic{Index: i, Value: r, Stack: debug.Stack()}
								panicked.Store(true)
							})
						}
					}()
					fn(i)
				}()
				if busy != nil {
					workerBusy += time.Since(start)
					completed.Inc()
				}
				if maxConc != nil {
					running.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

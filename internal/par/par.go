// Package par provides the worker-pool primitive shared by the parallel
// analysis stages (conflict detection, MPI matching): run n independent
// tasks on a bounded number of goroutines.
//
// The contract that keeps results worker-count-independent lives here: the
// serial and parallel paths execute the same task function over the same
// index space, each index in isolation, so callers only need their tasks to
// be index-pure (output i depends only on input i) and their merge step to
// run in index order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers option: 0 or negative means GOMAXPROCS.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines, claiming
// indices from an atomic cursor (cheap dynamic load balancing — task costs
// vary wildly across ranks and files). With workers <= 1 or n <= 1 it
// degenerates to a plain loop on the calling goroutine.
func Do(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

package conflict

import "encoding/binary"

// AppendGroupKey appends a canonical binary encoding of group gi to buf and
// returns the extended slice. The encoding names everything a group's
// verification verdict can depend on at the conflict layer:
//
//   - the conflicting file, both by path (content identity) and by fid
//     (generation identity — two same-path fids separated by an unlink are
//     distinct files, and their sync-point cohorts differ);
//   - every contributing op — X first, then the ys in CSR order — as
//     (rank, seq, write, [start, end)).
//
// Op arena indices deliberately do not appear: they shift when the trace
// grows, while refs and extents of an untouched group do not, which is what
// keeps a chunk digest stable across a suffix append. The encoding is a pure
// function of the Result content, so it is identical at every detector
// worker count.
func (r *Result) AppendGroupKey(buf []byte, gi int) []byte {
	g := &r.Groups[gi]
	x := &r.Ops[g.X]
	path := r.PathOf(x.FID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(path)))
	buf = append(buf, path...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.FID))
	buf = appendOpKey(buf, x)
	ys := g.Ys()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ys)))
	for _, yi := range ys {
		buf = appendOpKey(buf, &r.Ops[yi])
	}
	return buf
}

func appendOpKey(buf []byte, op *Op) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Ref.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Ref.Seq))
	w := byte(0)
	if op.Write {
		w = 1
	}
	buf = append(buf, w)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.End))
	return buf
}

package conflict

import (
	"fmt"
	"math/rand"
	"testing"

	"verifyio/internal/trace"
)

// synthTrace builds a trace with nranks ranks each issuing ops pwrites at
// random offsets within a window (overlap density controlled by window).
func synthTrace(nranks, ops int, window int64, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(nranks)
	for rank := 0; rank < nranks; rank++ {
		tick := int64(0)
		tick += 2
		tr.Append(trace.Record{Rank: rank, Func: "open", Layer: trace.LayerPOSIX,
			Args: []string{"f", "rw|creat", "3"}, Tick: tick, Ret: tick + 1})
		for i := 0; i < ops; i++ {
			tick += 2
			tr.Append(trace.Record{Rank: rank, Func: "pwrite", Layer: trace.LayerPOSIX,
				Args: []string{"3", "16", fmt.Sprint(rng.Int63n(window))},
				Tick: tick, Ret: tick + 1})
		}
	}
	return tr
}

// BenchmarkDetectScaling measures the sort-and-sweep over increasing
// operation counts at two overlap densities.
func BenchmarkDetectScaling(b *testing.B) {
	for _, cfg := range []struct {
		ops    int
		name   string
		window int64
	}{
		{1000, "sparse", 1 << 20},
		{1000, "dense", 1 << 10},
		{10000, "sparse", 1 << 20},
		// dense × 10000 is omitted: ~1.8×10⁷ pairs make the benchmark
		// measure pair materialization, not the sweep.
	} {
		tr := synthTrace(4, cfg.ops, cfg.window, 42)
		b.Run(fmt.Sprintf("ops=%d/%s", cfg.ops, cfg.name), func(b *testing.B) {
			var pairs int64
			for i := 0; i < b.N; i++ {
				res, err := Detect(tr)
				if err != nil {
					b.Fatal(err)
				}
				pairs = res.Pairs
			}
			b.ReportMetric(float64(pairs), "pairs")
			b.ReportMetric(float64(4*cfg.ops), "ops")
		})
	}
}

// BenchmarkOffsetReplay measures the (FP, EOF) reconstruction path: seeks
// interleaved with offset-less reads/writes.
func BenchmarkOffsetReplay(b *testing.B) {
	tr := trace.New(1)
	tick := int64(0)
	add := func(fn string, args ...string) {
		tick += 2
		tr.Append(trace.Record{Rank: 0, Func: fn, Layer: trace.LayerPOSIX,
			Args: args, Tick: tick, Ret: tick + 1})
	}
	add("open", "f", "rw|creat", "3")
	for i := 0; i < 5000; i++ {
		add("lseek", "3", fmt.Sprint(i*8), "SEEK_SET", fmt.Sprint(i*8))
		add("write", "3", "8")
		add("read", "3", "8")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Detect(tr)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Ops) != 10000 {
			b.Fatalf("ops = %d", len(res.Ops))
		}
	}
}

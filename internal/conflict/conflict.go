// Package conflict implements step 2 of the VerifyIO workflow: detecting
// conflicting data operations in an execution trace (Def. 4 — overlapping
// byte ranges on the same file, at least one a write).
//
// Data operations are the POSIX-layer records. Many of them (read, write,
// fread, fwrite) carry no offset argument, so the detector replays each
// rank's metadata history to reconstruct access locations, exactly as §IV-B
// describes: it tracks a (FP, EOF) pair per open handle/file, updates it on
// every open/lseek/fseek/read/write/ftruncate, and assigns every file a
// unique identifier so that accesses through different handle types (an int
// descriptor from open and a FILE* stream from fopen) to the same file are
// compared against each other.
//
// The replay state is per-rank by construction, so the detector shards it:
// each rank replays independently with rank-local file identities, and a
// serial merge canonicalizes those identities into exactly the ids a
// rank-major serial scan would assign (see mergeShards). The sort-and-sweep
// over per-file interval lists is likewise sharded — per file, and within a
// file into contiguous offset-range slices, so detection scales even when
// every rank targets one shared file (see detectPairs). Both shardings are
// exact — the result is identical at every worker count.
//
// The detector reports conflict groups (X, ζ): for each data operation X,
// the operations on other ranks that conflict with X, partitioned by rank
// and sorted in program order — the structure the verifier's pruning
// (Fig. 3) operates on. Only cross-rank pairs are conflicts: same-process
// operations are totally ordered by program order. Groups use a flat
// CSR-style layout (see Group).
package conflict

import (
	"fmt"
	"math"
	"strings"

	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/recorder"
	"verifyio/internal/trace"
)

// Op is one data operation with its resolved byte range.
type Op struct {
	// Ref locates the trace record.
	Ref trace.Ref
	// FID is the unique file identifier.
	FID int
	// Write is true for write-type operations.
	Write bool
	// Start and End delimit the accessed byte range [Start, End).
	Start, End int64
}

// SyncPoint is a synchronization-relevant record (open/close/fsync at the
// POSIX layer, MPI_File_open/close/sync at the MPI-IO layer) resolved to its
// file. The verifier uses these to instantiate the minimum synchronization
// constructs of Table I.
type SyncPoint struct {
	Ref  trace.Ref
	Func string
	FID  int
}

// Result is the detector's output.
type Result struct {
	// Ops are all data operations, ordered by (rank, seq).
	Ops []Op
	// Files maps fid -> path.
	Files []string
	// Syncs are the synchronization-relevant records, ordered by
	// (rank, seq).
	Syncs []SyncPoint
	// Pairs is the number of conflicting cross-rank pairs (each unordered
	// pair counted once).
	Pairs int64
	// Groups holds, for each op index with at least one conflict, the
	// conflict group (X, ζ), sorted by X.
	Groups []Group
	// Skipped counts records that looked like data operations but could
	// not be interpreted (missing arguments, unknown handles) — tolerated
	// the way VerifyIO tolerates partial legacy traces.
	Skipped int
}

// Options configures the detector.
type Options struct {
	// Workers bounds the goroutines used for the per-rank metadata replay
	// and the per-file conflict sweep. 0 means GOMAXPROCS; 1 forces the
	// serial path. The result is identical at every worker count.
	Workers int
	// Obs carries telemetry sinks; the zero Ctx disables instrumentation.
	Obs obs.Ctx
}

// handleState is the per-handle replay state: which file, and the handle's
// file pointer.
type handleState struct {
	fid int
	pos int64
}

// Detect scans the trace with a GOMAXPROCS-wide worker pool; see
// DetectOpts.
func Detect(tr *trace.Trace) (*Result, error) {
	return DetectOpts(tr, Options{})
}

// DetectOpts scans the trace and returns all data operations,
// synchronization points, and conflict groups.
func DetectOpts(tr *trace.Trace, opts Options) (*Result, error) {
	workers := par.Resolve(opts.Workers)
	oc, span := opts.Obs.StartLane("detect", "detect", obs.Int("ranks", len(tr.Ranks)))
	span.SetCat("detect")
	defer span.End()

	shards := make([]*rankShard, len(tr.Ranks))
	par.DoObs(oc, "detect-replay", workers, len(tr.Ranks), func(rank int) {
		_, sp := oc.StartLane("detect/rank-"+fmt.Sprint(rank), "replay", obs.Int("rank", rank))
		shards[rank] = replayRank(tr.Ranks[rank])
		sp.End()
	})
	return finishShards(shards, workers, oc)
}

// finishShards is the serial tail of detection, shared by the materialized
// and streaming front-ends: canonicalize file identities, sweep for
// conflicting pairs, publish metrics.
func finishShards(shards []*rankShard, workers int, oc obs.Ctx) (*Result, error) {
	_, mergeSpan := oc.Start("merge")
	res := mergeShards(shards)
	mergeSpan.End()
	if len(res.Ops) > math.MaxInt32 {
		return nil, fmt.Errorf("conflict: %d data operations exceed the int32 group index space", len(res.Ops))
	}
	detectPairs(res, workers, oc)
	if r := oc.R; r != nil {
		r.Counter("conflict.ops").Add(int64(len(res.Ops)))
		r.Counter("conflict.syncs").Add(int64(len(res.Syncs)))
		r.Counter("conflict.skipped").Add(int64(res.Skipped))
		r.Counter("conflict.files").Add(int64(len(res.Files)))
		r.Counter("conflict.pairs").Add(res.Pairs)
		r.Counter("conflict.groups").Add(int64(len(res.Groups)))
		fanout := r.Histogram("conflict.group_fanout", []int64{1, 2, 4, 8, 16, 32, 64, 128, 256})
		for i := range res.Groups {
			fanout.Observe(int64(len(res.Groups[i].Ys())))
		}
	}
	return res, nil
}

// StreamDetector runs detection over records as they decode: the per-rank
// metadata replay consumes each batch the moment it arrives (so no rank's
// records need to stay resident), and Finish runs the serial merge and pair
// sweep exactly as DetectOpts would. Feeding a rank its records in order —
// in any batch partitioning, interleaved with other ranks however the
// stream delivers them — yields the identical Result.
type StreamDetector struct {
	replayers []*rankReplayer
}

// NewStreamDetector prepares replay state for nranks ranks.
func NewStreamDetector(nranks int) *StreamDetector {
	sd := &StreamDetector{replayers: make([]*rankReplayer, nranks)}
	for i := range sd.replayers {
		sd.replayers[i] = newRankReplayer()
	}
	return sd
}

// Feed replays the next records of one rank. Records must arrive in program
// order per rank; the batch buffer is not retained.
func (sd *StreamDetector) Feed(rank int, recs []trace.Record) {
	rp := sd.replayers[rank]
	for i := range recs {
		rp.step(&recs[i])
	}
}

// Finish completes detection over everything fed so far.
func (sd *StreamDetector) Finish(opts Options) (*Result, error) {
	workers := par.Resolve(opts.Workers)
	oc, span := opts.Obs.StartLane("detect", "detect", obs.Int("ranks", len(sd.replayers)))
	span.SetCat("detect")
	defer span.End()
	shards := make([]*rankShard, len(sd.replayers))
	for rank, rp := range sd.replayers {
		shards[rank] = rp.sh
	}
	return finishShards(shards, workers, oc)
}

// localKey names a file identity as one rank sees it in isolation: the path
// plus the number of unlinks of that path the rank had replayed when the
// identity was first used. Unlink retires a path's current identity — a
// later create at the same path is a different file — so the generation
// count is exactly what distinguishes identities sharing a path. Unlinks on
// other ranks shift the generation during the merge (cross-rank
// interleavings resolve by rank-major scan order, a documented
// approximation like the paper's (FP, EOF) replay).
type localKey struct {
	path string
	gen  int
}

// rankShard is one rank's replay output. Op/Sync FIDs index keys; the merge
// rewrites them to canonical file ids.
type rankShard struct {
	ops     []Op
	syncs   []SyncPoint
	keys    []localKey     // local fid -> identity, in first-use order
	unlinks map[string]int // path -> total unlinks on this rank
	skipped int
}

// rankReplayer holds one rank's in-progress metadata replay: the replay is
// a pure left-to-right fold over the rank's records, so it can consume them
// in any batch partitioning — the whole rank at once (replayRank) or batch
// by batch as a stream decodes them (StreamDetector).
type rankReplayer struct {
	sh      *rankShard
	fids    map[localKey]int
	handles map[string]*handleState // handle arg -> state
	eof     map[int]int64           // local fid -> EOF estimate
}

func newRankReplayer() *rankReplayer {
	return &rankReplayer{
		sh:      &rankShard{unlinks: make(map[string]int)},
		fids:    make(map[localKey]int),
		handles: make(map[string]*handleState),
		eof:     make(map[int]int64),
	}
}

// fidOf resolves a path to the rank-local id of its current identity.
// During the scan sh.unlinks doubles as the unlinks-seen-so-far counter.
func (rp *rankReplayer) fidOf(path string) int {
	k := localKey{path: path, gen: rp.sh.unlinks[path]}
	id, ok := rp.fids[k]
	if !ok {
		id = len(rp.sh.keys)
		rp.fids[k] = id
		rp.sh.keys = append(rp.sh.keys, k)
	}
	return id
}

func (rp *rankReplayer) growEOF(fid int, end int64) {
	if end > rp.eof[fid] {
		rp.eof[fid] = end
	}
}

func (rp *rankReplayer) addOp(rec *trace.Record, fid int, write bool, start, n int64) {
	if n <= 0 {
		return
	}
	rp.sh.ops = append(rp.sh.ops, Op{
		Ref: trace.Ref{Rank: rec.Rank, Seq: rec.Seq},
		FID: fid, Write: write, Start: start, End: start + n,
	})
	if write {
		rp.growEOF(fid, start+n)
	}
}

func (rp *rankReplayer) addSync(rec *trace.Record, fid int) {
	rp.sh.syncs = append(rp.sh.syncs, SyncPoint{
		Ref:  trace.Ref{Rank: rec.Rank, Seq: rec.Seq},
		Func: rec.Func, FID: fid,
	})
}

func (rp *rankReplayer) lookup(handle string) *handleState {
	return rp.handles[handle]
}

// replayRank replays one rank's metadata history. It touches no shared
// state, which is what makes the replay embarrassingly parallel.
func replayRank(recs []trace.Record) *rankShard {
	rp := newRankReplayer()
	for i := range recs {
		rp.step(&recs[i])
	}
	return rp.sh
}

// step folds the next record into the replay.
func (rp *rankReplayer) step(rec *trace.Record) {
	sh := rp.sh
	fidOf, addOp, addSync, lookup := rp.fidOf, rp.addOp, rp.addSync, rp.lookup
	eof, handles := rp.eof, rp.handles
	switch rec.Func {
	case "open":
		fd := rec.Arg(2)
		if rec.Arg(0) == "" || fd == "" {
			sh.skipped++
			return
		}
		fid := fidOf(rec.Arg(0))
		st := &handleState{fid: fid}
		flags := rec.Arg(1)
		if strings.Contains(flags, "trunc") {
			eof[fid] = 0
		}
		if strings.Contains(flags, "append") {
			st.pos = eof[fid]
		}
		handles[fd] = st
		addSync(rec, fid)

	case "fopen":
		id := rec.Arg(2)
		if rec.Arg(0) == "" || id == "" {
			sh.skipped++
			return
		}
		fid := fidOf(rec.Arg(0))
		st := &handleState{fid: fid}
		switch rec.Arg(1) {
		case "w", "w+":
			eof[fid] = 0
		case "a", "a+":
			st.pos = eof[fid]
		}
		handles[id] = st
		addSync(rec, fid)

	case "close", "fclose":
		st := lookup(rec.Arg(0))
		if st == nil {
			sh.skipped++
			return
		}
		addSync(rec, st.fid)
		delete(handles, rec.Arg(0))

	case "fsync", "fdatasync":
		st := lookup(rec.Arg(0))
		if st == nil {
			sh.skipped++
			return
		}
		addSync(rec, st.fid)

	case "read", "write":
		st := lookup(rec.Arg(0))
		n, ok := rec.IntArg(1)
		if st == nil || !ok {
			sh.skipped++
			return
		}
		addOp(rec, st.fid, rec.Func == "write", st.pos, n)
		st.pos += n

	case "pread", "pwrite":
		st := lookup(rec.Arg(0))
		n, okN := rec.IntArg(1)
		off, okO := rec.IntArg(2)
		if st == nil || !okN || !okO {
			sh.skipped++
			return
		}
		addOp(rec, st.fid, rec.Func == "pwrite", off, n)

	case "fread", "fwrite":
		st := lookup(rec.Arg(0))
		size, okS := rec.IntArg(1)
		count, okC := rec.IntArg(2)
		// A corrupt record can carry negative fields or a
		// size*count product past int64: both would poison the
		// interval index with nonsense ranges.
		if st == nil || !okS || !okC || size < 0 || count < 0 ||
			(size > 0 && count > math.MaxInt64/size) {
			sh.skipped++
			return
		}
		// Access size = size * count (the paper's fwrite
		// example).
		n := size * count
		addOp(rec, st.fid, rec.Func == "fwrite", st.pos, n)
		st.pos += n

	case "readv", "writev":
		// [fd, iovcnt, len...] — contiguous in the file, so
		// one range of the summed lengths at the current
		// position.
		st := lookup(rec.Arg(0))
		cnt, okC := rec.IntArg(1)
		if st == nil || !okC || cnt < 0 || cnt > int64(len(rec.Args)) {
			sh.skipped++
			return
		}
		total := int64(0)
		bad := false
		for k := 0; k < int(cnt); k++ {
			n, ok := rec.IntArg(2 + k)
			if !ok {
				bad = true
				break
			}
			total += n
		}
		if bad {
			sh.skipped++
			return
		}
		addOp(rec, st.fid, rec.Func == "writev", st.pos, total)
		st.pos += total

	case "lseek", "fseek":
		st := lookup(rec.Arg(0))
		if st == nil {
			sh.skipped++
			return
		}
		// Prefer the recorded resulting position; fall back
		// to replaying the whence rule against (FP, EOF).
		if pos, ok := rec.IntArg(3); ok {
			st.pos = pos
			return
		}
		off, okO := rec.IntArg(1)
		whence, errW := recorder.ParseWhence(rec.Arg(2))
		if !okO || errW != nil {
			sh.skipped++
			return
		}
		switch whence {
		case 0: // SEEK_SET
			st.pos = off
		case 1: // SEEK_CUR
			st.pos += off
		case 2: // SEEK_END
			st.pos = eof[st.fid] + off
		}

	case "ftruncate":
		st := lookup(rec.Arg(0))
		size, ok := rec.IntArg(1)
		if st == nil || !ok {
			sh.skipped++
			return
		}
		// Truncation rewrites the affected range: shrink
		// clobbers [size, EOF), growth zero-fills [EOF, size).
		old := eof[st.fid]
		lo, hi := size, old
		if size > old {
			lo, hi = old, size
		}
		addOp(rec, st.fid, true, lo, hi-lo)
		eof[st.fid] = size

	case "unlink":
		// Bumping the generation retires the path's current
		// identity: the next fidOf at this path resolves to a
		// fresh key.
		if rec.Arg(0) == "" {
			sh.skipped++
			return
		}
		sh.unlinks[rec.Arg(0)]++

	case "MPI_File_open":
		// [comm, path, amode, fd] — the fd aliases the nested
		// POSIX open, giving the MPI-IO sync op its file.
		if rec.Arg(1) == "" {
			sh.skipped++
			return
		}
		addSync(rec, fidOf(rec.Arg(1)))

	case "MPI_File_close", "MPI_File_sync":
		st := lookup(rec.Arg(0))
		if st == nil {
			// The nested POSIX close has already removed the
			// handle when the MPI-IO record is emitted
			// (records appear at call return, innermost
			// first). Resolve through the close that just
			// happened instead.
			if fid, ok := lastClosedFID(sh.syncs, rec.Seq); ok {
				addSync(rec, fid)
				return
			}
			sh.skipped++
			return
		}
		addSync(rec, st.fid)
	}
}

// lastClosedFID finds the fid of the most recent close/fsync sync point on
// this rank (the nested POSIX record of the enclosing MPI-IO call).
func lastClosedFID(syncs []SyncPoint, beforeSeq int) (int, bool) {
	for i := len(syncs) - 1; i >= 0; i-- {
		sp := syncs[i]
		if sp.Ref.Seq >= beforeSeq {
			continue
		}
		switch sp.Func {
		case "close", "fclose", "fsync", "fdatasync":
			return sp.FID, true
		}
		return 0, false
	}
	return 0, false
}

// mergeShards canonicalizes file identities and concatenates the per-rank
// outputs in rank order, reproducing exactly the ids and ordering of a
// single rank-major scan with one global path table.
//
// The equivalence: in a serial scan, two fidOf calls resolve to the same id
// iff they name the same path with no unlink of that path between them. A
// rank-local key (path, g) therefore denotes the global identity
// (path, genBefore[path] + g), where genBefore accumulates the unlink
// counts of all earlier ranks — earlier unlinks on the same rank are
// already in g, later ranks' unlinks come after every use on this rank.
// Canonical ids are assigned on first sight walking the ranks' key tables
// in order, which is each identity's first-use position in the rank-major
// scan, so the numbering matches too.
func mergeShards(shards []*rankShard) *Result {
	res := &Result{}
	nops, nsyncs := 0, 0
	for _, sh := range shards {
		nops += len(sh.ops)
		nsyncs += len(sh.syncs)
		res.Skipped += sh.skipped
	}
	res.Ops = make([]Op, 0, nops)
	res.Syncs = make([]SyncPoint, 0, nsyncs)

	canon := make(map[localKey]int)
	genBefore := make(map[string]int)
	for _, sh := range shards {
		remap := make([]int, len(sh.keys))
		for i, k := range sh.keys {
			gk := localKey{path: k.path, gen: k.gen + genBefore[k.path]}
			id, ok := canon[gk]
			if !ok {
				id = len(res.Files)
				canon[gk] = id
				res.Files = append(res.Files, k.path)
			}
			remap[i] = id
		}
		for p, n := range sh.unlinks {
			genBefore[p] += n
		}
		for _, op := range sh.ops {
			op.FID = remap[op.FID]
			res.Ops = append(res.Ops, op)
		}
		for _, sp := range sh.syncs {
			sp.FID = remap[sp.FID]
			res.Syncs = append(res.Syncs, sp)
		}
	}
	return res
}

// PathOf returns the path for a file id.
func (r *Result) PathOf(fid int) string {
	if fid < 0 || fid >= len(r.Files) {
		return fmt.Sprintf("fid(%d)", fid)
	}
	return r.Files[fid]
}

// Package conflict implements step 2 of the VerifyIO workflow: detecting
// conflicting data operations in an execution trace (Def. 4 — overlapping
// byte ranges on the same file, at least one a write).
//
// Data operations are the POSIX-layer records. Many of them (read, write,
// fread, fwrite) carry no offset argument, so the detector replays each
// rank's metadata history to reconstruct access locations, exactly as §IV-B
// describes: it tracks a (FP, EOF) pair per open handle/file, updates it on
// every open/lseek/fseek/read/write/ftruncate, and assigns every file a
// unique identifier so that accesses through different handle types (an int
// descriptor from open and a FILE* stream from fopen) to the same file are
// compared against each other.
//
// The detector reports conflict groups (X, ζ): for each data operation X, a
// map from process rank to the operations on that rank that conflict with X,
// sorted in program order — the structure the verifier's pruning (Fig. 3)
// operates on. Only cross-rank pairs are conflicts: same-process operations
// are totally ordered by program order.
package conflict

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"verifyio/internal/recorder"
	"verifyio/internal/trace"
)

// Op is one data operation with its resolved byte range.
type Op struct {
	// Ref locates the trace record.
	Ref trace.Ref
	// FID is the unique file identifier.
	FID int
	// Write is true for write-type operations.
	Write bool
	// Start and End delimit the accessed byte range [Start, End).
	Start, End int64
}

// SyncPoint is a synchronization-relevant record (open/close/fsync at the
// POSIX layer, MPI_File_open/close/sync at the MPI-IO layer) resolved to its
// file. The verifier uses these to instantiate the minimum synchronization
// constructs of Table I.
type SyncPoint struct {
	Ref  trace.Ref
	Func string
	FID  int
}

// Result is the detector's output.
type Result struct {
	// Ops are all data operations, ordered by (rank, seq).
	Ops []Op
	// Files maps fid -> path.
	Files []string
	// Syncs are the synchronization-relevant records, ordered by
	// (rank, seq).
	Syncs []SyncPoint
	// Pairs is the number of conflicting cross-rank pairs (each unordered
	// pair counted once).
	Pairs int64
	// Groups holds, for each op index with at least one conflict, the
	// conflict group (X, ζ).
	Groups []Group
	// Skipped counts records that looked like data operations but could
	// not be interpreted (missing arguments, unknown handles) — tolerated
	// the way VerifyIO tolerates partial legacy traces.
	Skipped int
}

// Group is a conflict group (X, ζ).
type Group struct {
	// X indexes Result.Ops.
	X int
	// ByRank maps a process rank to the indices (into Result.Ops) of the
	// operations on that rank conflicting with X, sorted in program
	// order.
	ByRank map[int][]int
}

// handleState is the per-handle replay state: which file, and the handle's
// file pointer.
type handleState struct {
	fid int
	pos int64
}

// Detect scans the trace and returns all data operations, synchronization
// points, and conflict groups.
func Detect(tr *trace.Trace) (*Result, error) {
	res := &Result{}
	fids := make(map[string]int)
	fidOf := func(path string) int {
		id, ok := fids[path]
		if !ok {
			id = len(res.Files)
			fids[path] = id
			res.Files = append(res.Files, path)
		}
		return id
	}

	for rank := range tr.Ranks {
		handles := make(map[string]*handleState) // handle arg -> state
		eof := make(map[int]int64)               // fid -> local EOF estimate

		growEOF := func(fid int, end int64) {
			if end > eof[fid] {
				eof[fid] = end
			}
		}
		addOp := func(rec *trace.Record, fid int, write bool, start, n int64) {
			if n <= 0 {
				return
			}
			res.Ops = append(res.Ops, Op{
				Ref: trace.Ref{Rank: rec.Rank, Seq: rec.Seq},
				FID: fid, Write: write, Start: start, End: start + n,
			})
			if write {
				growEOF(fid, start+n)
			}
		}
		addSync := func(rec *trace.Record, fid int) {
			res.Syncs = append(res.Syncs, SyncPoint{
				Ref:  trace.Ref{Rank: rec.Rank, Seq: rec.Seq},
				Func: rec.Func, FID: fid,
			})
		}
		lookup := func(handle string) *handleState {
			return handles[handle]
		}

		for i := range tr.Ranks[rank] {
			rec := &tr.Ranks[rank][i]
			switch rec.Func {
			case "open":
				fd := rec.Arg(2)
				if rec.Arg(0) == "" || fd == "" {
					res.Skipped++
					continue
				}
				fid := fidOf(rec.Arg(0))
				st := &handleState{fid: fid}
				flags := rec.Arg(1)
				if contains(flags, "trunc") {
					eof[fid] = 0
				}
				if contains(flags, "append") {
					st.pos = eof[fid]
				}
				handles[fd] = st
				addSync(rec, fid)

			case "fopen":
				id := rec.Arg(2)
				if rec.Arg(0) == "" || id == "" {
					res.Skipped++
					continue
				}
				fid := fidOf(rec.Arg(0))
				st := &handleState{fid: fid}
				switch rec.Arg(1) {
				case "w", "w+":
					eof[fid] = 0
				case "a", "a+":
					st.pos = eof[fid]
				}
				handles[id] = st
				addSync(rec, fid)

			case "close", "fclose":
				st := lookup(rec.Arg(0))
				if st == nil {
					res.Skipped++
					continue
				}
				addSync(rec, st.fid)
				delete(handles, rec.Arg(0))

			case "fsync", "fdatasync":
				st := lookup(rec.Arg(0))
				if st == nil {
					res.Skipped++
					continue
				}
				addSync(rec, st.fid)

			case "read", "write":
				st := lookup(rec.Arg(0))
				n, ok := rec.IntArg(1)
				if st == nil || !ok {
					res.Skipped++
					continue
				}
				addOp(rec, st.fid, rec.Func == "write", st.pos, n)
				st.pos += n

			case "pread", "pwrite":
				st := lookup(rec.Arg(0))
				n, okN := rec.IntArg(1)
				off, okO := rec.IntArg(2)
				if st == nil || !okN || !okO {
					res.Skipped++
					continue
				}
				addOp(rec, st.fid, rec.Func == "pwrite", off, n)

			case "fread", "fwrite":
				st := lookup(rec.Arg(0))
				size, okS := rec.IntArg(1)
				count, okC := rec.IntArg(2)
				// A corrupt record can carry negative fields or a
				// size*count product past int64: both would poison the
				// interval index with nonsense ranges.
				if st == nil || !okS || !okC || size < 0 || count < 0 ||
					(size > 0 && count > math.MaxInt64/size) {
					res.Skipped++
					continue
				}
				// Access size = size * count (the paper's fwrite
				// example).
				n := size * count
				addOp(rec, st.fid, rec.Func == "fwrite", st.pos, n)
				st.pos += n

			case "readv", "writev":
				// [fd, iovcnt, len...] — contiguous in the file, so
				// one range of the summed lengths at the current
				// position.
				st := lookup(rec.Arg(0))
				cnt, okC := rec.IntArg(1)
				if st == nil || !okC || cnt < 0 || cnt > int64(len(rec.Args)) {
					res.Skipped++
					continue
				}
				total := int64(0)
				bad := false
				for k := 0; k < int(cnt); k++ {
					n, ok := rec.IntArg(2 + k)
					if !ok {
						bad = true
						break
					}
					total += n
				}
				if bad {
					res.Skipped++
					continue
				}
				addOp(rec, st.fid, rec.Func == "writev", st.pos, total)
				st.pos += total

			case "lseek", "fseek":
				st := lookup(rec.Arg(0))
				if st == nil {
					res.Skipped++
					continue
				}
				// Prefer the recorded resulting position; fall back
				// to replaying the whence rule against (FP, EOF).
				if pos, ok := rec.IntArg(3); ok {
					st.pos = pos
					continue
				}
				off, okO := rec.IntArg(1)
				whence, errW := recorder.ParseWhence(rec.Arg(2))
				if !okO || errW != nil {
					res.Skipped++
					continue
				}
				switch whence {
				case 0: // SEEK_SET
					st.pos = off
				case 1: // SEEK_CUR
					st.pos += off
				case 2: // SEEK_END
					st.pos = eof[st.fid] + off
				}

			case "ftruncate":
				st := lookup(rec.Arg(0))
				size, ok := rec.IntArg(1)
				if st == nil || !ok {
					res.Skipped++
					continue
				}
				// Truncation rewrites the affected range: shrink
				// clobbers [size, EOF), growth zero-fills [EOF, size).
				old := eof[st.fid]
				lo, hi := size, old
				if size > old {
					lo, hi = old, size
				}
				addOp(rec, st.fid, true, lo, hi-lo)
				eof[st.fid] = size

			case "unlink":
				// Unlink retires the path's current file identity:
				// a later create at the same path is a different
				// file and must not be compared against this one.
				// (Cross-rank unlink/recreate interleavings are
				// resolved by scan order — a documented
				// approximation, like the paper's (FP, EOF)
				// replay.)
				if rec.Arg(0) == "" {
					res.Skipped++
					continue
				}
				delete(fids, rec.Arg(0))

			case "MPI_File_open":
				// [comm, path, amode, fd] — the fd aliases the nested
				// POSIX open, giving the MPI-IO sync op its file.
				if rec.Arg(1) == "" {
					res.Skipped++
					continue
				}
				addSync(rec, fidOf(rec.Arg(1)))

			case "MPI_File_close", "MPI_File_sync":
				st := lookup(rec.Arg(0))
				if st == nil {
					// The nested POSIX close has already removed the
					// handle when the MPI-IO record is emitted
					// (records appear at call return, innermost
					// first). Resolve through the close that just
					// happened instead.
					if fid, ok := lastClosedFID(res.Syncs, rank, rec.Seq); ok {
						addSync(rec, fid)
						continue
					}
					res.Skipped++
					continue
				}
				addSync(rec, st.fid)
			}
		}
	}
	detectPairs(res)
	return res, nil
}

// lastClosedFID finds the fid of the most recent close/fsync sync point on
// this rank (the nested POSIX record of the enclosing MPI-IO call).
func lastClosedFID(syncs []SyncPoint, rank, beforeSeq int) (int, bool) {
	for i := len(syncs) - 1; i >= 0; i-- {
		sp := syncs[i]
		if sp.Ref.Rank != rank || sp.Ref.Seq >= beforeSeq {
			continue
		}
		switch sp.Func {
		case "close", "fclose", "fsync", "fdatasync":
			return sp.FID, true
		}
		return 0, false
	}
	return 0, false
}

// detectPairs runs the sort-and-sweep over per-file interval lists (the
// paper's conflict_detection pseudocode) and builds the conflict groups.
func detectPairs(res *Result) {
	byFile := make(map[int][]int)
	for i := range res.Ops {
		byFile[res.Ops[i].FID] = append(byFile[res.Ops[i].FID], i)
	}
	groups := make(map[int]*Group)
	groupOf := func(x int) *Group {
		g, ok := groups[x]
		if !ok {
			g = &Group{X: x, ByRank: make(map[int][]int)}
			groups[x] = g
		}
		return g
	}

	fids := make([]int, 0, len(byFile))
	for fid := range byFile {
		fids = append(fids, fid)
	}
	sort.Ints(fids)

	for _, fid := range fids {
		idx := byFile[fid]
		sort.Slice(idx, func(a, b int) bool {
			oa, ob := &res.Ops[idx[a]], &res.Ops[idx[b]]
			if oa.Start != ob.Start {
				return oa.Start < ob.Start
			}
			return oa.Ref.Less(ob.Ref)
		})
		for i := 0; i < len(idx); i++ {
			I := &res.Ops[idx[i]]
			for j := i + 1; j < len(idx); j++ {
				J := &res.Ops[idx[j]]
				if J.Start >= I.End {
					// Sorted by start: no later interval can
					// overlap I either.
					break
				}
				if !I.Write && !J.Write {
					continue
				}
				if I.Ref.Rank == J.Ref.Rank {
					continue // ordered by program order
				}
				res.Pairs++
				groupOf(idx[i]).ByRank[J.Ref.Rank] = append(groupOf(idx[i]).ByRank[J.Ref.Rank], idx[j])
				groupOf(idx[j]).ByRank[I.Ref.Rank] = append(groupOf(idx[j]).ByRank[I.Ref.Rank], idx[i])
			}
		}
	}

	xs := make([]int, 0, len(groups))
	for x := range groups {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	for _, x := range xs {
		g := groups[x]
		for rank := range g.ByRank {
			lst := g.ByRank[rank]
			sort.Slice(lst, func(a, b int) bool {
				return res.Ops[lst[a]].Ref.Less(res.Ops[lst[b]].Ref)
			})
			g.ByRank[rank] = lst
		}
		res.Groups = append(res.Groups, *g)
	}
}

// PathOf returns the path for a file id.
func (r *Result) PathOf(fid int) string {
	if fid < 0 || fid >= len(r.Files) {
		return fmt.Sprintf("fid(%d)", fid)
	}
	return r.Files[fid]
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

package conflict

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"verifyio/internal/obs"
	"verifyio/internal/trace"
)

// resultFingerprint serializes every byte of a Result the sweep is
// responsible for — ops, files, syncs, the pair count, and the full CSR
// group content — so equality of fingerprints is equality of Results.
func resultFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := func(vs ...int64) {
		for _, v := range vs {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	w(int64(len(res.Ops)), int64(len(res.Files)), int64(len(res.Syncs)),
		res.Pairs, int64(len(res.Groups)), int64(res.Skipped))
	for i := range res.Ops {
		op := &res.Ops[i]
		wr := int64(0)
		if op.Write {
			wr = 1
		}
		w(int64(op.Ref.Rank), int64(op.Ref.Seq), int64(op.FID), wr, op.Start, op.End)
	}
	for _, f := range res.Files {
		buf.WriteString(f)
		buf.WriteByte(0)
	}
	for i := range res.Syncs {
		sp := &res.Syncs[i]
		w(int64(sp.Ref.Rank), int64(sp.Ref.Seq), int64(sp.FID))
		buf.WriteString(sp.Func)
		buf.WriteByte(0)
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		w(int64(g.X), int64(len(g.ys)), int64(len(g.runs)))
		for _, y := range g.ys {
			w(int64(y))
		}
		for _, r := range g.runs {
			w(int64(r))
		}
	}
	return buf.Bytes()
}

// bruteCheck rebuilds every conflict group from the O(n²) definition —
// independent of sorting, slicing, and the counting transpose — and
// requires the sweep's CSR output to match it exactly: group set, y order,
// run boundaries, pair count.
func bruteCheck(t *testing.T, res *Result) {
	t.Helper()
	n := len(res.Ops)
	adj := make([][]int32, n)
	var pairs int64
	for i := 0; i < n; i++ {
		I := &res.Ops[i]
		for j := i + 1; j < n; j++ {
			J := &res.Ops[j]
			if I.FID != J.FID || I.Ref.Rank == J.Ref.Rank || (!I.Write && !J.Write) {
				continue
			}
			if I.Start < J.End && J.Start < I.End {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
				pairs++
			}
		}
	}
	if res.Pairs != pairs {
		t.Errorf("pairs = %d, brute force = %d", res.Pairs, pairs)
	}
	gi := 0
	for x := 0; x < n; x++ {
		if len(adj[x]) == 0 {
			continue
		}
		slices.Sort(adj[x])
		if gi >= len(res.Groups) {
			t.Fatalf("no group for op %d (have %d groups)", x, len(res.Groups))
		}
		g := &res.Groups[gi]
		gi++
		if g.X != x || !slices.Equal(g.ys, adj[x]) {
			t.Fatalf("group %d: X=%d ys=%v; brute x=%d ys=%v", gi-1, g.X, g.ys, x, adj[x])
		}
		var runs []int32
		prev := -1
		for k, y := range adj[x] {
			if r := res.Ops[y].Ref.Rank; r != prev {
				runs = append(runs, int32(k))
				prev = r
			}
		}
		runs = append(runs, int32(len(adj[x])))
		if !slices.Equal(g.runs, runs) {
			t.Fatalf("group X=%d: runs=%v, brute=%v", g.X, g.runs, runs)
		}
	}
	if gi != len(res.Groups) {
		t.Errorf("sweep produced %d groups, brute force %d", len(res.Groups), gi)
	}
}

// sweepShapes are the adversarial interval distributions the
// full-adjacency property test covers. Every shape but the last is big
// enough to cut its file into several slices, so the carry-in sets and the
// slice-ownership rule are on the hook, not just the per-file split.
var sweepShapes = []struct {
	name     string
	nranks   int
	ops      int // total, spread over the ranks
	nfiles   int
	window   int64
	width    int64
	pctWrite int
	rankSkew bool // concentrate most ops on rank 0
}{
	{name: "overlap-heavy", nranks: 4, ops: 1600, nfiles: 1, window: 1 << 8, width: 48, pctWrite: 60},
	{name: "same-rank-heavy", nranks: 2, ops: 2200, nfiles: 1, window: 1 << 10, width: 16, pctWrite: 50, rankSkew: true},
	{name: "multi-file", nranks: 4, ops: 2600, nfiles: 3, window: 1 << 9, width: 24, pctWrite: 40},
	{name: "zero-write", nranks: 4, ops: 900, nfiles: 1, window: 1 << 8, width: 32, pctWrite: 0},
}

// genShapeTrace builds a trace realizing one sweepShapes entry.
func genShapeTrace(si int, seed int64) *trace.Trace {
	sh := sweepShapes[si]
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(sh.nranks)
	for rank := 0; rank < sh.nranks; rank++ {
		tick := int64(0)
		emit := func(fn string, args ...string) {
			tick += 2
			tr.Append(trace.Record{Rank: rank, Func: fn, Layer: trace.LayerPOSIX,
				Args: args, Tick: tick, Ret: tick + 1})
		}
		for fi := 0; fi < sh.nfiles; fi++ {
			emit("open", fmt.Sprintf("f%d", fi), "rw|creat", fmt.Sprint(3+fi))
		}
		nops := sh.ops / sh.nranks
		if sh.rankSkew {
			if rank == 0 {
				nops = sh.ops * 4 / 5
			} else {
				nops = sh.ops / 5 / (sh.nranks - 1)
			}
		}
		for i := 0; i < nops; i++ {
			fn := "pread"
			if rng.Intn(100) < sh.pctWrite {
				fn = "pwrite"
			}
			n := 1 + rng.Int63n(sh.width)
			emit(fn, fmt.Sprint(3+rng.Intn(sh.nfiles)), fmt.Sprint(n), fmt.Sprint(rng.Int63n(sh.window)))
		}
	}
	return tr
}

// TestPropertySweepFullAdjacency checks the sliced, pair-free sweep against
// the brute-force definition — full group content, not just pair counts —
// and requires byte-identical Results across worker counts on every shape.
func TestPropertySweepFullAdjacency(t *testing.T) {
	for si := range sweepShapes {
		sh := sweepShapes[si]
		t.Run(sh.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				tr := genShapeTrace(si, seed)
				var base []byte
				for _, workers := range []int{1, 2, 7} {
					res, err := DetectOpts(tr, Options{Workers: workers})
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, workers, err)
					}
					if workers == 1 {
						bruteCheck(t, res)
						if sh.pctWrite == 0 && res.Pairs != 0 {
							t.Fatalf("seed %d: read-only shape produced %d pairs", seed, res.Pairs)
						}
						base = resultFingerprint(t, res)
						continue
					}
					if fp := resultFingerprint(t, res); !bytes.Equal(fp, base) {
						t.Fatalf("seed %d: workers=%d Result differs from workers=1", seed, workers)
					}
				}
			}
		})
	}
}

// TestSweepShardsWithinSingleFile pins the intra-file fan-out: a dense
// single-shared-file trace must submit more than one sweep task even at the
// default worker count — before slicing, such a trace collapsed to exactly
// one detect-sweep task no matter what -workers said.
func TestSweepShardsWithinSingleFile(t *testing.T) {
	tr := synthTrace(4, 1024, 1<<12, 3) // 4096 ops, one shared file
	reg := obs.NewRegistry()
	res, err := DetectOpts(tr, Options{Workers: runtime.GOMAXPROCS(0), Obs: obs.Ctx{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("dense trace produced no conflicts")
	}
	snap := reg.Snapshot()
	if tasks := snap.Stable.Counters["par.detect-sweep.tasks_submitted"]; tasks <= 1 {
		t.Errorf("par.detect-sweep.tasks_submitted = %d, want > 1", tasks)
	}
	if s := snap.Stable.Gauges["conflict.sweep_slices"]; s <= 1 {
		t.Errorf("conflict.sweep_slices = %d, want > 1", s)
	}
	if b := snap.Stable.Gauges["conflict.sweep_scratch_bytes"]; b <= 0 {
		t.Errorf("conflict.sweep_scratch_bytes = %d, want > 0", b)
	}
}

// TestStreamDetectorMatchesMaterialized feeds one trace through the
// streaming detector in ragged batch partitionings and requires the exact
// Result the materialized path produces, at several worker counts — the
// streaming path rides the same sliced sweep through finishShards.
func TestStreamDetectorMatchesMaterialized(t *testing.T) {
	tr := synthTrace(3, 700, 1<<10, 11)
	base, err := DetectOpts(tr, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(t, base)
	for _, workers := range []int{1, 2, 7} {
		sd := NewStreamDetector(len(tr.Ranks))
		for rank, recs := range tr.Ranks {
			for lo := 0; lo < len(recs); {
				hi := lo + 1 + lo%97
				if hi > len(recs) {
					hi = len(recs)
				}
				sd.Feed(rank, recs[lo:hi])
				lo = hi
			}
		}
		res, err := sd.Finish(Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if fp := resultFingerprint(t, res); !bytes.Equal(fp, want) {
			t.Errorf("workers=%d: streamed Result differs from materialized", workers)
		}
	}
}

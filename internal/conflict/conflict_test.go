package conflict

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"verifyio/internal/recorder"
	"verifyio/internal/sim/mpiio"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// buildTrace assembles a raw trace from shorthand specs: "rank func a b c".
func buildTrace(nranks int, recs ...[]string) *trace.Trace {
	tr := trace.New(nranks)
	ticks := make([]int64, nranks)
	for _, spec := range recs {
		rank := int(spec[0][0] - '0')
		ticks[rank] += 2
		tr.Append(trace.Record{
			Rank: rank, Func: spec[1], Layer: trace.LayerPOSIX,
			Args: spec[2:], Tick: ticks[rank], Ret: ticks[rank] + 1,
		})
	}
	return tr
}

func TestBasicOverlapDetection(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "4", "0"}, // [0,4) write
		[]string{"1", "open", "f", "r", "3"},
		[]string{"1", "pread", "3", "4", "2"}, // [2,6) read — overlaps
		[]string{"1", "pread", "3", "4", "8"}, // [8,12) — no overlap
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", res.Pairs)
	}
	if len(res.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(res.Ops))
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (one per side)", len(res.Groups))
	}
}

func TestReadReadIsNotAConflict(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "open", "f", "r", "3"},
		[]string{"0", "pread", "3", "8", "0"},
		[]string{"1", "open", "f", "r", "3"},
		[]string{"1", "pread", "3", "8", "0"},
	)
	res, _ := Detect(tr)
	if res.Pairs != 0 {
		t.Errorf("read-read pairs = %d, want 0", res.Pairs)
	}
}

func TestSameRankPairsExcluded(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "4", "0"},
		[]string{"0", "pwrite", "3", "4", "2"},
	)
	res, _ := Detect(tr)
	if res.Pairs != 0 {
		t.Errorf("same-rank pairs = %d, want 0", res.Pairs)
	}
}

func TestDistinctFilesDoNotConflict(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "open", "a", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "4", "0"},
		[]string{"1", "open", "b", "rw|creat", "3"},
		[]string{"1", "pwrite", "3", "4", "0"},
	)
	res, _ := Detect(tr)
	if res.Pairs != 0 {
		t.Errorf("cross-file pairs = %d, want 0", res.Pairs)
	}
	if len(res.Files) != 2 {
		t.Errorf("files = %v", res.Files)
	}
}

func TestOffsetReconstructionFromSeeks(t *testing.T) {
	// write/read carry no offsets; the detector replays lseek history.
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "lseek", "3", "10", "SEEK_SET", "10"},
		[]string{"0", "write", "3", "4"}, // [10,14)
		[]string{"0", "write", "3", "4"}, // [14,18)
		[]string{"1", "open", "f", "r", "4"},
		[]string{"1", "lseek", "4", "12", "SEEK_SET", "12"},
		[]string{"1", "read", "4", "2"}, // [12,14) — conflicts with first write only
	)
	res, _ := Detect(tr)
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", res.Pairs)
	}
	// Verify the reconstructed ranges.
	want := map[string][2]int64{
		"0:2": {10, 14}, "0:3": {14, 18}, "1:2": {12, 14},
	}
	for _, op := range res.Ops {
		w, ok := want[op.Ref.String()]
		if !ok {
			t.Errorf("unexpected op %v", op)
			continue
		}
		if op.Start != w[0] || op.End != w[1] {
			t.Errorf("op %v range [%d,%d), want [%d,%d)", op.Ref, op.Start, op.End, w[0], w[1])
		}
	}
}

func TestSeekEndUsesTrackedEOF(t *testing.T) {
	// No recorded result position (arg 3 missing): replay SEEK_END from
	// the tracked EOF.
	tr := buildTrace(1,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "100", "0"}, // EOF=100
		[]string{"0", "lseek", "3", "-10", "SEEK_END"},
		[]string{"0", "write", "3", "5"}, // [90,95)
	)
	res, _ := Detect(tr)
	last := res.Ops[len(res.Ops)-1]
	if last.Start != 90 || last.End != 95 {
		t.Errorf("SEEK_END write range [%d,%d), want [90,95)", last.Start, last.End)
	}
}

func TestFwriteSizeTimesCount(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "fopen", "f", "w", "5"},
		[]string{"0", "fwrite", "5", "4", "3"}, // 12 bytes at 0
		[]string{"1", "open", "f", "r", "3"},
		[]string{"1", "pread", "3", "2", "10"}, // [10,12) overlaps
	)
	res, _ := Detect(tr)
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", res.Pairs)
	}
	if op := res.Ops[0]; op.Start != 0 || op.End != 12 || !op.Write {
		t.Errorf("fwrite op = %+v", op)
	}
}

func TestFdAndStreamAliasSameFile(t *testing.T) {
	// The §IV-B corner case: pwrite via fd on rank 0, fwrite via FILE* on
	// rank 1, same file → same fid → conflict.
	tr := buildTrace(2,
		[]string{"0", "open", "shared", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "8", "0"},
		[]string{"1", "fopen", "shared", "r+", "7"},
		[]string{"1", "fwrite", "7", "1", "4"},
	)
	res, _ := Detect(tr)
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1 (handle aliasing)", res.Pairs)
	}
	if len(res.Files) != 1 {
		t.Errorf("files = %v, want one unique id", res.Files)
	}
}

func TestAppendModeStartsAtEOF(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "6", "0"}, // EOF=6
		[]string{"0", "open", "f", "w|append", "4"},
		[]string{"0", "write", "4", "3"}, // [6,9)
	)
	res, _ := Detect(tr)
	last := res.Ops[len(res.Ops)-1]
	if last.Start != 6 || last.End != 9 {
		t.Errorf("append write range [%d,%d), want [6,9)", last.Start, last.End)
	}
}

func TestTruncateProducesWriteRange(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "10", "0"}, // EOF=10
		[]string{"0", "ftruncate", "3", "4"},    // clobbers [4,10)
		[]string{"1", "open", "f", "r", "3"},
		[]string{"1", "pread", "3", "2", "5"}, // [5,7) — hits truncated range
	)
	res, _ := Detect(tr)
	// pread conflicts with both the pwrite and the truncate.
	if res.Pairs != 2 {
		t.Errorf("pairs = %d, want 2", res.Pairs)
	}
}

func TestSyncPointsResolveFiles(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "fsync", "3"},
		[]string{"0", "close", "3"},
	)
	res, _ := Detect(tr)
	if len(res.Syncs) != 3 {
		t.Fatalf("syncs = %d, want 3", len(res.Syncs))
	}
	for _, sp := range res.Syncs {
		if sp.FID != 0 {
			t.Errorf("sync %s fid = %d", sp.Func, sp.FID)
		}
	}
}

func TestUnknownHandlesSkippedNotFatal(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "pwrite", "99", "4", "0"}, // fd never opened
		[]string{"0", "lseek", "99", "0", "SEEK_SET", "0"},
		[]string{"0", "close", "99"},
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 3 {
		t.Errorf("skipped = %d, want 3", res.Skipped)
	}
	if len(res.Ops) != 0 {
		t.Errorf("ops = %v", res.Ops)
	}
}

func TestGroupsSortedByProgramOrder(t *testing.T) {
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "10", "0"},
		[]string{"1", "open", "f", "rw", "3"},
		[]string{"1", "pwrite", "3", "2", "8"},
		[]string{"1", "pwrite", "3", "2", "0"},
		[]string{"1", "pwrite", "3", "2", "4"},
	)
	res, _ := Detect(tr)
	var g *Group
	for i := range res.Groups {
		if res.Ops[res.Groups[i].X].Ref.Rank == 0 {
			g = &res.Groups[i]
		}
	}
	if g == nil {
		t.Fatal("no group for rank 0's write")
	}
	lst := g.ByRank(res.Ops)[1]
	if len(lst) != 3 {
		t.Fatalf("ζ[1] = %v", lst)
	}
	for i := 1; i < len(lst); i++ {
		if !res.Ops[lst[i-1]].Ref.Less(res.Ops[lst[i]].Ref) {
			t.Errorf("ζ[1] not in program order: %v", lst)
		}
	}
}

func TestEndToEndWithRecorder(t *testing.T) {
	// Fig. 2's scenario via the real tracer: rank 0 writes [0,4), rank 1
	// reads [0,4) through MPI-IO.
	env := recorder.NewEnv(2, recorder.Options{FSMode: posixfs.ModePOSIX})
	err := env.Run(func(r *recorder.Rank) error {
		c := r.Proc().CommWorld()
		f, err := mpiio.Open(r, c, "fig2.bin", mpiio.ModeRdwr|mpiio.ModeCreate, mpiio.Config{})
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			if err := f.WriteAt(0, []byte("abcd")); err != nil {
				return err
			}
		}
		if err := r.Barrier(c); err != nil {
			return err
		}
		if r.Rank() == 1 {
			if _, err := f.ReadAt(0, 4); err != nil {
				return err
			}
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(env.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1 (pwrite vs pread)", res.Pairs)
	}
	// Sync points include the MPI-IO open/close resolved to the file.
	byFunc := map[string]int{}
	for _, sp := range res.Syncs {
		byFunc[sp.Func]++
		if res.PathOf(sp.FID) != "fig2.bin" {
			t.Errorf("sync %s resolved to %s", sp.Func, res.PathOf(sp.FID))
		}
	}
	if byFunc["MPI_File_open"] != 2 || byFunc["MPI_File_close"] != 2 {
		t.Errorf("MPI-IO sync points = %v", byFunc)
	}
}

// TestPropertySweepMatchesBruteForce cross-checks the sort-and-sweep against
// the O(n²) definition on random interval sets.
func TestPropertySweepMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 2 + rng.Intn(3)
		tr := trace.New(nranks)
		ticks := make([]int64, nranks)
		type iv struct {
			rank       int
			write      bool
			start, end int64
		}
		var ivs []iv
		emit := func(rank int, fn string, args ...string) {
			ticks[rank] += 2
			tr.Append(trace.Record{Rank: rank, Func: fn, Layer: trace.LayerPOSIX,
				Args: args, Tick: ticks[rank], Ret: ticks[rank] + 1})
		}
		for rank := 0; rank < nranks; rank++ {
			emit(rank, "open", "f", "rw|creat", "3")
			for i := 0; i < 12; i++ {
				start := int64(rng.Intn(60))
				n := int64(1 + rng.Intn(10))
				write := rng.Intn(2) == 0
				fn := "pread"
				if write {
					fn = "pwrite"
				}
				emit(rank, fn, "3", fmt.Sprint(n), fmt.Sprint(start))
				ivs = append(ivs, iv{rank, write, start, start + n})
			}
		}
		var brute int64
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.rank == b.rank || (!a.write && !b.write) {
					continue
				}
				if a.start < b.end && b.start < a.end {
					brute++
				}
			}
		}
		res, err := Detect(tr)
		if err != nil {
			return false
		}
		if res.Pairs != brute {
			t.Logf("seed %d: sweep %d vs brute %d", seed, res.Pairs, brute)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnlinkRetiresFileIdentity(t *testing.T) {
	// Rank 0 writes generation 1, unlinks, recreates; rank 1's write to
	// generation 2 must not conflict with generation 1's data.
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "8", "0"}, // gen 1
		[]string{"0", "close", "3"},
		[]string{"0", "unlink", "f"},
		[]string{"0", "open", "f", "rw|creat", "4"}, // gen 2
		[]string{"0", "pwrite", "4", "8", "0"},
		[]string{"1", "open", "f", "rw", "3"},
		[]string{"1", "pwrite", "3", "8", "0"}, // rank-major scan: gen 2
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 2 {
		t.Fatalf("file identities = %d (%v), want 2 generations", len(res.Files), res.Files)
	}
	// Only the generation-2 writes conflict (rank 0's second write vs
	// rank 1's write): one pair, not three.
	if res.Pairs != 1 {
		t.Errorf("pairs = %d, want 1 (generations kept apart)", res.Pairs)
	}
}

func TestStatRecordsAreIgnored(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "stat", "f", "0"},
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "pwrite", "3", "4", "0"},
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 1 || res.Skipped != 0 {
		t.Errorf("ops=%d skipped=%d", len(res.Ops), res.Skipped)
	}
}

func TestVectorIOContiguousRange(t *testing.T) {
	// writev/readv scatter in memory but are contiguous in the file: one
	// range of the summed iov lengths at the file position.
	tr := buildTrace(2,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "lseek", "3", "100", "SEEK_SET", "100"},
		[]string{"0", "writev", "3", "3", "4", "8", "4"}, // [100,116)
		[]string{"1", "open", "f", "r", "3"},
		[]string{"1", "lseek", "3", "110", "SEEK_SET", "110"},
		[]string{"1", "readv", "3", "2", "4", "4"}, // [110,118) — overlaps
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", res.Pairs)
	}
	w := res.Ops[0]
	if w.Start != 100 || w.End != 116 || !w.Write {
		t.Errorf("writev op = %+v, want [100,116) write", w)
	}
	rd := res.Ops[1]
	if rd.Start != 110 || rd.End != 118 || rd.Write {
		t.Errorf("readv op = %+v, want [110,118) read", rd)
	}
}

func TestVectorIOMalformedSkipped(t *testing.T) {
	tr := buildTrace(1,
		[]string{"0", "open", "f", "rw|creat", "3"},
		[]string{"0", "writev", "3", "3", "4"}, // claims 3 iovecs, lists 1
	)
	res, _ := Detect(tr)
	if res.Skipped != 1 || len(res.Ops) != 0 {
		t.Errorf("skipped=%d ops=%d", res.Skipped, len(res.Ops))
	}
}

// TestFwriteOverflowSkipped pins the ingestion-hardening fix: corrupt
// fread/fwrite records whose size*count is negative or overflows int64 must
// be counted as skipped, not turned into garbage byte ranges that poison
// conflict detection.
func TestFwriteOverflowSkipped(t *testing.T) {
	cases := []struct {
		name        string
		size, count string
	}{
		{"negative size", "-4", "10"},
		{"negative count", "4", "-10"},
		{"product overflows", "4611686018427387904", "4"}, // 2^62 * 4
		{"both huge", "9223372036854775807", "9223372036854775807"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildTrace(2,
				[]string{"0", "fopen", "f", "w", "s0"},
				[]string{"0", "fwrite", "s0", tc.size, tc.count},
				[]string{"1", "fopen", "f", "r", "s1"},
				[]string{"1", "fread", "s1", tc.size, tc.count},
			)
			res, err := Detect(tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.Skipped != 2 {
				t.Errorf("skipped = %d, want 2 (both corrupt records)", res.Skipped)
			}
			if len(res.Ops) != 0 {
				t.Errorf("ops = %v, want none from corrupt records", res.Ops)
			}
			if res.Pairs != 0 {
				t.Errorf("pairs = %d, want 0", res.Pairs)
			}
		})
	}
	// Boundary sanity: a legitimate maximal product still replays.
	tr := buildTrace(1,
		[]string{"0", "fopen", "f", "w", "s0"},
		[]string{"0", "fwrite", "s0", "4611686018427387903", "2"},
	)
	res, err := Detect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 || len(res.Ops) != 1 {
		t.Errorf("legit max-range fwrite skipped: skipped=%d ops=%d", res.Skipped, len(res.Ops))
	}
}

package conflict

import (
	"cmp"
	"fmt"
	"slices"

	"verifyio/internal/obs"
	"verifyio/internal/par"
)

// Group is a conflict group (X, ζ) in a flat CSR-style layout: the indices
// of the operations conflicting with X form one ascending []int32 view into
// a Result-wide arena, with per-rank runs delimited by offset views into a
// second arena. Because Result.Ops is ordered by (rank, seq), ascending op
// index is program order and each rank's conflicting operations form one
// contiguous run, ranks ascending — the map-of-slices this layout replaces
// (rank -> program-ordered indices) stored exactly the same information at
// the cost of a map and a slice header per rank per group.
type Group struct {
	// X indexes Result.Ops.
	X int
	// ys are the conflicting op indices, ascending.
	ys []int32
	// runs holds NumRuns()+1 offsets into ys: run k is
	// ys[runs[k]:runs[k+1]], a maximal same-rank span.
	runs []int32
}

// Ys returns the indices (into Result.Ops) of all operations conflicting
// with X, ascending — which is (rank, seq) program order. The slice is a
// view; callers must not modify it.
func (g *Group) Ys() []int32 { return g.ys }

// NumRuns returns the number of per-rank runs in the group.
func (g *Group) NumRuns() int {
	if len(g.runs) == 0 {
		return 0
	}
	return len(g.runs) - 1
}

// RunAt returns the k-th run: the indices of the conflicting operations on
// one rank, in program order. Runs are ordered by ascending rank. The slice
// is a view; callers must not modify it.
func (g *Group) RunAt(k int) []int32 {
	return g.ys[g.runs[k]:g.runs[k+1]]
}

// ByRank materializes the associative view the CSR layout replaced: process
// rank -> indices (into ops, which must be the Result.Ops slice the group
// indexes) of the operations on that rank conflicting with X, in program
// order. It exists for tests and external consumers; hot paths iterate
// RunAt directly.
func (g *Group) ByRank(ops []Op) map[int][]int {
	out := make(map[int][]int, g.NumRuns())
	for k := 0; k < g.NumRuns(); k++ {
		run := g.RunAt(k)
		lst := make([]int, len(run))
		for i, y := range run {
			lst[i] = int(y)
		}
		out[ops[run[0]].Ref.Rank] = lst
	}
	return out
}

// pairRec is one directed conflicting pair during the per-file sweep.
type pairRec struct{ x, y int32 }

// fileSweep is one file's sweep output. The groups view file-local ys/runs
// storage; the merge copies them into the Result-wide arenas.
type fileSweep struct {
	pairs  int64
	groups []Group
	nys    int
	nruns  int
}

// detectPairs runs the sort-and-sweep over per-file interval lists (the
// paper's conflict_detection pseudocode) and builds the conflict groups.
// An operation belongs to exactly one file, so the per-file sweeps are
// independent and shard across the worker pool; their group lists have
// disjoint X sets, so the final sort by X interleaves them exactly as a
// serial ascending-fid sweep would have emitted them.
func detectPairs(res *Result, workers int, oc obs.Ctx) {
	sc, sweepSpan := oc.Start("sweep", obs.Int("files", len(res.Files)))
	defer sweepSpan.End()

	byFile := make([][]int32, len(res.Files))
	for i := range res.Ops {
		fid := res.Ops[i].FID
		byFile[fid] = append(byFile[fid], int32(i))
	}

	sweeps := make([]fileSweep, len(byFile))
	par.DoObs(sc, "detect-sweep", workers, len(byFile), func(fid int) {
		var sp *obs.Span
		// Files with fewer than two ops cannot conflict; skip their spans
		// so traces on wide file sets stay readable.
		if len(byFile[fid]) > 1 {
			_, sp = sc.StartLane("detect/sweep-"+fmt.Sprint(fid), "sweep-file", obs.Int("fid", fid))
		}
		sweeps[fid] = sweepFile(res.Ops, byFile[fid])
		sp.End()
	})

	totalGroups, totalYs, totalRuns := 0, 0, 0
	for i := range sweeps {
		res.Pairs += sweeps[i].pairs
		totalGroups += len(sweeps[i].groups)
		totalYs += sweeps[i].nys
		totalRuns += sweeps[i].nruns
	}
	if totalGroups == 0 {
		return
	}
	groups := make([]Group, 0, totalGroups)
	for i := range sweeps {
		groups = append(groups, sweeps[i].groups...)
	}
	slices.SortFunc(groups, func(a, b Group) int { return cmp.Compare(a.X, b.X) })

	// Compact the per-file storage into two Result-wide arenas in group
	// order. Capacities are exact, so the appends never reallocate and the
	// rebased views stay valid.
	ys := make([]int32, 0, totalYs)
	runs := make([]int32, 0, totalRuns)
	for i := range groups {
		g := &groups[i]
		ylo, rlo := len(ys), len(runs)
		ys = append(ys, g.ys...)
		runs = append(runs, g.runs...)
		g.ys = ys[ylo:len(ys):len(ys)]
		g.runs = runs[rlo:len(runs):len(runs)]
	}
	res.Groups = groups
}

// sweepFile sorts one file's operations by start offset and sweeps for
// overlapping cross-rank pairs with at least one write, then folds the
// pair list into CSR groups.
func sweepFile(ops []Op, idx []int32) fileSweep {
	slices.SortFunc(idx, func(a, b int32) int {
		oa, ob := &ops[a], &ops[b]
		if oa.Start != ob.Start {
			return cmp.Compare(oa.Start, ob.Start)
		}
		// Op index order is (rank, seq) order: Ops is rank-major.
		return cmp.Compare(a, b)
	})

	var sw fileSweep
	var recs []pairRec
	for i := 0; i < len(idx); i++ {
		I := &ops[idx[i]]
		for j := i + 1; j < len(idx); j++ {
			J := &ops[idx[j]]
			if J.Start >= I.End {
				// Sorted by start: no later interval can overlap I
				// either.
				break
			}
			if !I.Write && !J.Write {
				continue
			}
			if I.Ref.Rank == J.Ref.Rank {
				continue // ordered by program order
			}
			sw.pairs++
			recs = append(recs, pairRec{x: idx[i], y: idx[j]}, pairRec{x: idx[j], y: idx[i]})
		}
	}
	if len(recs) == 0 {
		return sw
	}

	// Sorting the directed pairs by (x, y) clusters each group's ys
	// contiguously and ascending; runs then fall out of a single walk.
	slices.SortFunc(recs, func(a, b pairRec) int {
		if a.x != b.x {
			return cmp.Compare(a.x, b.x)
		}
		return cmp.Compare(a.y, b.y)
	})
	ysArena := make([]int32, len(recs))
	var runArena []int32
	for s := 0; s < len(recs); {
		x := recs[s].x
		e := s
		for e < len(recs) && recs[e].x == x {
			ysArena[e] = recs[e].y
			e++
		}
		ys := ysArena[s:e]
		rlo := len(runArena)
		prevRank := -1
		for k, y := range ys {
			if r := ops[y].Ref.Rank; r != prevRank {
				runArena = append(runArena, int32(k)) // run offsets are group-relative
				prevRank = r
			}
		}
		runArena = append(runArena, int32(len(ys)))
		// Earlier groups keep views into superseded runArena backing
		// arrays after growth; their contents are complete and never
		// rewritten, and detectPairs rebases everything anyway.
		sw.groups = append(sw.groups, Group{X: int(x), ys: ys, runs: runArena[rlo:len(runArena)]})
		s = e
	}
	sw.nys = len(ysArena)
	sw.nruns = len(runArena)
	return sw
}

package conflict

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"verifyio/internal/obs"
	"verifyio/internal/par"
)

// Group is a conflict group (X, ζ) in a flat CSR-style layout: the indices
// of the operations conflicting with X form one ascending []int32 view into
// a Result-wide arena, with per-rank runs delimited by offset views into a
// second arena. Because Result.Ops is ordered by (rank, seq), ascending op
// index is program order and each rank's conflicting operations form one
// contiguous run, ranks ascending — the map-of-slices this layout replaces
// (rank -> program-ordered indices) stored exactly the same information at
// the cost of a map and a slice header per rank per group.
type Group struct {
	// X indexes Result.Ops.
	X int
	// ys are the conflicting op indices, ascending.
	ys []int32
	// runs holds NumRuns()+1 offsets into ys: run k is
	// ys[runs[k]:runs[k+1]], a maximal same-rank span.
	runs []int32
}

// Ys returns the indices (into Result.Ops) of all operations conflicting
// with X, ascending — which is (rank, seq) program order. The slice is a
// view; callers must not modify it.
func (g *Group) Ys() []int32 { return g.ys }

// NumRuns returns the number of per-rank runs in the group.
func (g *Group) NumRuns() int {
	if len(g.runs) == 0 {
		return 0
	}
	return len(g.runs) - 1
}

// RunAt returns the k-th run: the indices of the conflicting operations on
// one rank, in program order. Runs are ordered by ascending rank. The slice
// is a view; callers must not modify it.
func (g *Group) RunAt(k int) []int32 {
	return g.ys[g.runs[k]:g.runs[k+1]]
}

// ByRank materializes the associative view the CSR layout replaced: process
// rank -> indices (into ops, which must be the Result.Ops slice the group
// indexes) of the operations on that rank conflicting with X, in program
// order. It exists for tests and external consumers; hot paths iterate
// RunAt directly.
func (g *Group) ByRank(ops []Op) map[int][]int {
	out := make(map[int][]int, g.NumRuns())
	for k := 0; k < g.NumRuns(); k++ {
		run := g.RunAt(k)
		lst := make([]int, len(run))
		for i, y := range run {
			lst[i] = int(y)
		}
		out[ops[run[0]].Ref.Rank] = lst
	}
	return out
}

// Intra-file sharding parameters. Slice boundaries are a function of the op
// count alone — never of the worker count — so the task list, the spans it
// emits, and every byte of the merged output are determined by the trace.
const (
	// sliceTargetOps is the aimed-for number of sorted intervals per
	// intra-file sweep slice.
	sliceTargetOps = 1024
	// maxFileSlices caps how many slices one file is cut into.
	maxFileSlices = 128
	// histBudgetBytes bounds the transpose histograms (4·K·n bytes): the
	// range count K shrinks before the scratch outgrows this.
	histBudgetBytes = 1 << 24
)

// numSlices is the slice plan for a file with m data operations.
func numSlices(m int) int {
	if m == 0 {
		return 0
	}
	s := (m + sliceTargetOps - 1) / sliceTargetOps
	if s > maxFileSlices {
		s = maxFileSlices
	}
	return s
}

// sweepSlice is one intra-file sweep task: positions [lo, hi) of its file's
// start-sorted interval list, plus the carry-in positions from the left
// whose intervals straddle the slice's boundary. A pair is owned by the
// slice of its later sorted position — the one holding max(I.Start,
// J.Start) — so the task list partitions the pair set exactly: no pair is
// emitted twice, none is missed.
type sweepSlice struct {
	fid    int32
	sub    int32   // slice ordinal within the file
	lo, hi int32   // file-local sorted positions
	carry  []int32 // file-local positions < lo with End > start of position lo
}

func (t *sweepSlice) lane() string {
	return fmt.Sprintf("detect/sweep-%d.%d", t.fid, t.sub)
}

// sliceFile fills out (one entry per slice) with the file's fixed slice
// plan and computes each slice's carry-in set. w is the file's interval
// index, already sorted by (Start, index).
func sliceFile(ops []Op, w []int32, fid int, out []sweepSlice) {
	m, S := len(w), len(out)
	for s := 0; s < S; s++ {
		out[s] = sweepSlice{
			fid: int32(fid), sub: int32(s),
			lo: int32(s * m / S), hi: int32((s + 1) * m / S),
		}
	}
	if S == 1 {
		return
	}
	// bStart[s] is the start offset at slice s's left boundary; it ascends
	// with s because w is start-sorted.
	bStart := make([]int64, S)
	for s := 0; s < S; s++ {
		bStart[s] = ops[w[out[s].lo]].Start
	}
	// Interval i straddles into every later slice whose boundary start it
	// covers: exactly the slices t > sliceOf(i) with End_i > bStart[t].
	// Ascending boundary starts make those a contiguous run (sliceOf(i), t]
	// found by binary search. The carry lists are built as views into one
	// exactly-sized arena — a diff-array counting pass sizes them — and
	// filling in ascending i keeps each list in the order the serial scan
	// would visit it.
	straddle := func(visit func(i, first, last int)) {
		s := 0
		for i := 0; i < m; i++ {
			for s+1 < S && i >= int(out[s+1].lo) {
				s++
			}
			end := ops[w[i]].End
			if s+1 >= S || end <= bStart[s+1] {
				continue
			}
			k := sort.Search(S-s-2, func(q int) bool { return bStart[s+2+q] >= end })
			visit(i, s+1, s+1+k)
		}
	}
	diff := make([]int64, S+1)
	straddle(func(i, first, last int) {
		diff[first]++
		diff[last+1]--
	})
	carryOff := make([]int64, S+1)
	run := int64(0)
	for q := 0; q < S; q++ {
		run += diff[q]
		carryOff[q+1] = carryOff[q] + run
		diff[q] = carryOff[q] // reuse as the fill cursor
	}
	arena := make([]int32, carryOff[S])
	straddle(func(i, first, last int) {
		for q := first; q <= last; q++ {
			arena[diff[q]] = int32(i)
			diff[q]++
		}
	})
	for q := 0; q < S; q++ {
		out[q].carry = arena[carryOff[q]:carryOff[q+1]:carryOff[q+1]]
	}
}

// count sweeps the slice's share of the pairs, bumping both endpoints'
// degrees. Degrees are order-free sums, so the atomic adds from
// concurrently swept slices cannot perturb the result. Returns the number
// of unordered pairs owned by the slice.
func (t *sweepSlice) count(ops []Op, w []int32, deg []int32) int64 {
	var pairs int64
	lo, hi := int(t.lo), int(t.hi)
	for _, ci := range t.carry {
		I := &ops[w[ci]]
		for j := lo; j < hi; j++ {
			J := &ops[w[j]]
			if J.Start >= I.End {
				break // sorted by start: no later interval overlaps I either
			}
			if (!I.Write && !J.Write) || I.Ref.Rank == J.Ref.Rank {
				continue
			}
			atomic.AddInt32(&deg[w[ci]], 1)
			atomic.AddInt32(&deg[w[j]], 1)
			pairs++
		}
	}
	for i := lo; i < hi; i++ {
		I := &ops[w[i]]
		for j := i + 1; j < hi; j++ {
			J := &ops[w[j]]
			if J.Start >= I.End {
				break
			}
			if (!I.Write && !J.Write) || I.Ref.Rank == J.Ref.Rank {
				continue
			}
			atomic.AddInt32(&deg[w[i]], 1)
			atomic.AddInt32(&deg[w[j]], 1)
			pairs++
		}
	}
	return pairs
}

// fill re-runs the slice's sweep, scattering both directed endpoints of
// every pair into the scratch adjacency through atomic cursors. The
// intra-bucket order is scheduling-dependent; the transpose in detectPairs
// produces the same final layout for every such order.
func (t *sweepSlice) fill(ops []Op, w []int32, cur []int64, adj []int32) {
	lo, hi := int(t.lo), int(t.hi)
	for _, ci := range t.carry {
		I := &ops[w[ci]]
		for j := lo; j < hi; j++ {
			J := &ops[w[j]]
			if J.Start >= I.End {
				break
			}
			if (!I.Write && !J.Write) || I.Ref.Rank == J.Ref.Rank {
				continue
			}
			adj[atomic.AddInt64(&cur[w[ci]], 1)-1] = w[j]
			adj[atomic.AddInt64(&cur[w[j]], 1)-1] = w[ci]
		}
	}
	for i := lo; i < hi; i++ {
		I := &ops[w[i]]
		for j := i + 1; j < hi; j++ {
			J := &ops[w[j]]
			if J.Start >= I.End {
				break
			}
			if (!I.Write && !J.Write) || I.Ref.Rank == J.Ref.Rank {
				continue
			}
			adj[atomic.AddInt64(&cur[w[i]], 1)-1] = w[j]
			adj[atomic.AddInt64(&cur[w[j]], 1)-1] = w[i]
		}
	}
}

// transposeRanges picks the parallelism of the transpose and group-build
// passes: one balanced op range per worker, shrunk so the K·n histograms
// stay within histBudgetBytes.
func transposeRanges(workers, n int) int {
	k := workers
	if maxK := histBudgetBytes / (4 * n); k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	return k
}

// rangeBounds splits the op index space [0, n) into K contiguous ranges
// balanced by directed-entry count, by binary search on the offset table.
func rangeBounds(off []int64, n, K int) []int {
	total := off[n]
	bounds := make([]int, K+1)
	bounds[K] = n
	for k := 1; k < K; k++ {
		target := total * int64(k) / int64(K)
		bounds[k] = sort.Search(n, func(v int) bool { return off[v] >= target })
	}
	return bounds
}

// detectPairs runs the sort-and-sweep over per-file interval lists (the
// paper's conflict_detection pseudocode) and builds the conflict groups
// without ever materializing a pair list.
//
// Parallel structure: after the per-file start-offset sort, each file's
// interval list is partitioned into contiguous slices sized by op count
// (sliceFile), so the sweep scales within a single shared file — the
// canonical N-ranks-to-one-file HPC pattern — not just across files. The
// sweep runs twice over the (file, slice) tasks: a counting pass
// accumulates per-op conflict degrees, a prefix sum turns them into offsets
// into the Result-wide ys arena, and a fill pass writes both directed
// endpoints of each pair into a scratch adjacency. A counting transpose
// then walks ops in ascending index order and scatters each into its
// partners' final buckets, which lands every group's ys ascending — the CSR
// layout the old path obtained from materializing 2P pairRecs and a global
// O(P log P) sort — and the per-rank runs fall out of one rank-monotone
// walk. Groups emerge already sorted by X. Every output byte is a function
// of the trace alone: the Result is identical at every worker count.
func detectPairs(res *Result, workers int, oc obs.Ctx) {
	sc, sweepSpan := oc.Start("sweep", obs.Int("files", len(res.Files)))
	defer sweepSpan.End()

	ops := res.Ops
	n := len(ops)
	nfiles := len(res.Files)
	publish := func(slicesN int, carryOps, scratchBytes int64) {
		if r := oc.R; r != nil {
			r.Gauge("conflict.sweep_slices").Set(int64(slicesN))
			r.Gauge("conflict.sweep_carry_ops").Set(carryOps)
			r.Gauge("conflict.sweep_scratch_bytes").Set(scratchBytes)
		}
	}
	if n == 0 || nfiles == 0 {
		publish(0, 0, 0)
		return
	}

	// Per-file interval index arena, built by counting so the partition
	// costs two passes and three allocations however many files there are.
	fileOff := make([]int32, nfiles+1)
	for i := range ops {
		fileOff[ops[i].FID+1]++
	}
	for f := 0; f < nfiles; f++ {
		fileOff[f+1] += fileOff[f]
	}
	idx := make([]int32, n)
	next := append([]int32(nil), fileOff[:nfiles]...)
	for i := range ops {
		f := ops[i].FID
		idx[next[f]] = int32(i)
		next[f]++
	}

	taskOff := make([]int32, nfiles+1)
	for f := 0; f < nfiles; f++ {
		taskOff[f+1] = taskOff[f] + int32(numSlices(int(fileOff[f+1]-fileOff[f])))
	}
	tasks := make([]sweepSlice, taskOff[nfiles])

	sortCtx, sortSpan := sc.Start("sweep-sort", obs.Int("tasks", len(tasks)))
	par.DoObs(sortCtx, "detect-sort", workers, nfiles, func(f int) {
		w := idx[fileOff[f]:fileOff[f+1]]
		if len(w) == 0 {
			return
		}
		slices.SortFunc(w, func(a, b int32) int {
			oa, ob := &ops[a], &ops[b]
			if oa.Start != ob.Start {
				return cmp.Compare(oa.Start, ob.Start)
			}
			// Op index order is (rank, seq) order: Ops is rank-major.
			return cmp.Compare(a, b)
		})
		sliceFile(ops, w, f, tasks[taskOff[f]:taskOff[f+1]])
	})
	sortSpan.End()

	var carryOps int64
	for i := range tasks {
		carryOps += int64(len(tasks[i].carry))
	}

	deg := make([]int32, n)
	taskPairs := make([]int64, len(tasks))
	countCtx, countSpan := sc.Start("sweep-count", obs.Int("slices", len(tasks)))
	par.DoObs(countCtx, "detect-sweep", workers, len(tasks), func(ti int) {
		t := &tasks[ti]
		w := idx[fileOff[t.fid]:fileOff[t.fid+1]]
		// Single-op files cannot conflict; skip their spans so traces on
		// wide file sets stay readable. The Enabled guard keeps the lane
		// name and attrs from being built on uninstrumented runs.
		if len(w) > 1 && countCtx.Enabled() {
			_, sp := countCtx.StartLane(t.lane(), "sweep-slice",
				obs.Int("fid", int(t.fid)), obs.Int("ops", int(t.hi-t.lo)),
				obs.Int("carry", len(t.carry)))
			defer sp.End()
		}
		taskPairs[ti] = t.count(ops, w, deg)
	})
	countSpan.End()
	for _, p := range taskPairs {
		res.Pairs += p
	}

	off := make([]int64, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + int64(deg[i])
	}
	total := off[n]

	// The transient footprint of the sweep: index + slice plan + degree /
	// offset / cursor tables + the scratch adjacency and transpose
	// histograms. The output arenas (ys, runs, groups) are retained and
	// excluded. CI gates this against the pair count.
	scratchBytes := 4*int64(n) /* idx */ + 4*int64(nfiles+1) /* fileOff */ +
		4*carryOps + 4*int64(n) /* deg */ + 8*int64(n+1) /* off */
	if total == 0 {
		publish(len(tasks), carryOps, scratchBytes)
		return
	}

	cur := make([]int64, n)
	copy(cur, off[:n])
	adj := make([]int32, total)
	fillCtx, fillSpan := sc.Start("sweep-fill", obs.Int("entries", int(total)))
	par.DoObs(fillCtx, "detect-fill", workers, len(tasks), func(ti int) {
		t := &tasks[ti]
		w := idx[fileOff[t.fid]:fileOff[t.fid+1]]
		if len(w) > 1 && fillCtx.Enabled() {
			_, sp := fillCtx.StartLane(t.lane(), "fill-slice", obs.Int("fid", int(t.fid)))
			defer sp.End()
		}
		t.fill(ops, w, cur, adj)
	})
	fillSpan.End()

	// Counting transpose into the final ys arena, over K op ranges balanced
	// by directed-entry count. Range k histograms its share of the scratch
	// adjacency, an exclusive scan across ranges turns the histograms into
	// per-range starting positions inside each destination bucket, and the
	// scatter writes every op v (ascending within each range, ranges
	// covering ascending v) into its partners' buckets — so each bucket
	// comes out ascending and every write lands at a position that depends
	// only on the adjacency, not on scheduling.
	K := transposeRanges(workers, n)
	bounds := rangeBounds(off, n, K)
	ys := make([]int32, total)
	hist := make([]int32, K*n)
	compactCtx, compactSpan := sc.Start("sweep-compact", obs.Int("ranges", K))
	par.DoObs(compactCtx, "detect-compact", workers, K, func(k int) {
		h := hist[k*n : (k+1)*n]
		for v := bounds[k]; v < bounds[k+1]; v++ {
			for p := off[v]; p < off[v+1]; p++ {
				h[adj[p]]++
			}
		}
	})
	for u := 0; u < n; u++ {
		run := int32(0)
		for k := 0; k < K; k++ {
			hist[k*n+u], run = run, run+hist[k*n+u]
		}
	}
	par.DoObs(compactCtx, "detect-compact", workers, K, func(k int) {
		h := hist[k*n : (k+1)*n]
		for v := bounds[k]; v < bounds[k+1]; v++ {
			for p := off[v]; p < off[v+1]; p++ {
				u := adj[p]
				ys[off[u]+int64(h[u])] = int32(v)
				h[u]++
			}
		}
	})
	compactSpan.End()

	// Build groups and per-rank runs over the same op ranges: a counting
	// pass sizes the runs arena exactly, a prefix sum places each range,
	// and the fill writes group-relative run offsets in one rank-monotone
	// walk per group. Ops with nonzero degree ascend, so the group list is
	// born sorted by X.
	rankOf := make([]int32, n)
	for i := range ops {
		rankOf[i] = int32(ops[i].Ref.Rank)
	}
	ngr := make([]int64, K+1)
	nrn := make([]int64, K+1)
	groupsCtx, groupsSpan := sc.Start("sweep-groups")
	par.DoObs(groupsCtx, "detect-groups", workers, K, func(k int) {
		var g, rn int64
		for v := bounds[k]; v < bounds[k+1]; v++ {
			lo, hi := off[v], off[v+1]
			if lo == hi {
				continue
			}
			g++
			runs := int64(1)
			prev := rankOf[ys[lo]]
			for p := lo + 1; p < hi; p++ {
				if r := rankOf[ys[p]]; r != prev {
					runs++
					prev = r
				}
			}
			rn += runs + 1
		}
		ngr[k+1], nrn[k+1] = g, rn
	})
	for k := 0; k < K; k++ {
		ngr[k+1] += ngr[k]
		nrn[k+1] += nrn[k]
	}
	groups := make([]Group, ngr[K])
	runsArena := make([]int32, nrn[K])
	par.DoObs(groupsCtx, "detect-groups", workers, K, func(k int) {
		gi, rp := ngr[k], nrn[k]
		for v := bounds[k]; v < bounds[k+1]; v++ {
			lo, hi := off[v], off[v+1]
			if lo == hi {
				continue
			}
			rlo := rp
			prev := int32(-1)
			for p := lo; p < hi; p++ {
				if r := rankOf[ys[p]]; r != prev {
					runsArena[rp] = int32(p - lo) // run offsets are group-relative
					rp++
					prev = r
				}
			}
			runsArena[rp] = int32(hi - lo)
			rp++
			groups[gi] = Group{X: v, ys: ys[lo:hi:hi], runs: runsArena[rlo:rp:rp]}
			gi++
		}
	})
	groupsSpan.End()
	res.Groups = groups

	scratchBytes += 8*int64(n) /* cur */ + 4*total /* adj */ +
		4*int64(K)*int64(n) /* hist */ + 4*int64(n) /* rankOf */
	publish(len(tasks), carryOps, scratchBytes)
}

package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzLimits keeps individual fuzz executions cheap so the engine can get
// through many inputs; the limit checks themselves are what's under test.
func fuzzLimits() Limits {
	return Limits{
		MaxMeta: 1 << 8, MaxStrings: 1 << 12, MaxStringLen: 1 << 12,
		MaxRanks: 1 << 6, MaxRecords: 1 << 12, MaxArgs: 1 << 6,
		MaxDepth: 1 << 6, MaxPayload: 1 << 22,
	}
}

func fuzzSeedTrace() *Trace {
	tr := New(2)
	tr.Meta["program"] = "fuzz-seed"
	tick := []int64{0, 0}
	add := func(rank int, layer Layer, fn string, depth int, chain []string, args ...string) {
		tick[rank] += 2
		tr.Append(Record{
			Rank: rank, Func: fn, Layer: layer, Depth: depth,
			Args: args, Tick: tick[rank], Ret: tick[rank] + 1, Chain: chain,
		})
	}
	for rank := 0; rank < 2; rank++ {
		add(rank, LayerPOSIX, "open", 0, nil, "f.bin", "rw", "3")
		for i := 0; i < 4; i++ {
			add(rank, LayerPOSIX, "pwrite", 1,
				[]string{"mpi-io:MPI_File_write_at"}, "3", "8", fmt.Sprint(8*i))
		}
		add(rank, LayerPOSIX, "close", 0, nil, "3")
	}
	return tr
}

// FuzzDecode drives the single-stream decoder with arbitrary bytes: it must
// never panic, must classify every failure as a DecodeError, and in
// tolerate mode must always hand back a structurally valid trace.
func FuzzDecode(f *testing.F) {
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Encode(&buf, fuzzSeedTrace(), EncodeOptions{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("VIOT\x01\x00"))
	f.Add([]byte("VIOT\x01\x00\x00\x00\x02\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, stats, err := DecodeWithOptions(bytes.NewReader(data), DecodeOptions{Limits: fuzzLimits()})
		if err != nil {
			if _, ok := AsDecodeError(err); !ok {
				t.Fatalf("unclassified decode error: %v", err)
			}
		} else {
			if !stats.Clean() {
				t.Fatalf("strict decode salvaged: %+v", stats)
			}
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("strict decode returned invalid trace: %v", verr)
			}
			var buf bytes.Buffer
			if eerr := Encode(&buf, tr, EncodeOptions{Compress: false}); eerr != nil {
				t.Fatalf("decoded trace does not re-encode: %v", eerr)
			}
		}

		ttr, _, terr := DecodeWithOptions(bytes.NewReader(data), DecodeOptions{Tolerate: true, Limits: fuzzLimits()})
		if terr != nil {
			if _, ok := AsDecodeError(terr); !ok {
				t.Fatalf("unclassified tolerant decode error: %v", terr)
			}
			if err == nil {
				t.Fatalf("tolerate failed where strict succeeded: %v", terr)
			}
		} else if verr := ttr.Validate(); verr != nil {
			t.Fatalf("tolerant decode returned invalid trace: %v", verr)
		}
	})
}

// FuzzStreamDecode drives the windowed streaming decoder with arbitrary
// bytes and holds it to the materializing decoder's answer: both must agree
// on success vs failure, and on success the concatenated batches must equal
// the materialized ranks — in strict and tolerate mode alike. The streaming
// path shares the record-decoding core with DecodeWithOptions, so this is
// the fuzz-strength version of the corpus equivalence tests.
func FuzzStreamDecode(f *testing.F) {
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Encode(&buf, fuzzSeedTrace(), EncodeOptions{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()*2/3]) // truncated mid-records
	}
	f.Add([]byte("VIOT\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tolerate := range []bool{false, true} {
			opts := DecodeOptions{Tolerate: tolerate, Limits: fuzzLimits()}
			want, wantStats, wantErr := DecodeWithOptions(bytes.NewReader(data), opts)

			ranks := [][]Record{}
			var gotErr error
			s, err := NewStream(bytes.NewReader(data), StreamOptions{DecodeOptions: opts, WindowBytes: 256})
			if err != nil {
				gotErr = err
			} else {
				ranks = make([][]Record, s.NumRanks())
				for {
					b, err := s.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						gotErr = err
						break
					}
					tmp := make([]Record, len(b.Recs))
					copy(tmp, b.Recs)
					ranks[b.Rank] = append(ranks[b.Rank], tmp...)
					b.Release()
				}
				s.Close()
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("tolerate=%v: stream err %v, decode err %v", tolerate, gotErr, wantErr)
			}
			if gotErr != nil {
				if _, ok := AsDecodeError(gotErr); !ok {
					t.Fatalf("tolerate=%v: unclassified stream error: %v", tolerate, gotErr)
				}
				continue
			}
			for rank := range want.Ranks {
				w := want.Ranks[rank]
				g := ranks[rank]
				if len(g) != len(w) {
					t.Fatalf("tolerate=%v rank %d: stream %d records, decode %d", tolerate, rank, len(g), len(w))
				}
				for i := range w {
					if !reflect.DeepEqual(g[i], w[i]) {
						t.Fatalf("tolerate=%v rank %d record %d differs", tolerate, rank, i)
					}
				}
			}
			if s.Stats().Salvaged() != wantStats.Salvaged() || s.Stats().Clean() != wantStats.Clean() {
				t.Fatalf("tolerate=%v: stream stats %+v, decode stats %+v", tolerate, s.Stats(), wantStats)
			}
		}
	})
}

// FuzzReadDir drives the directory reader with two arbitrary rank files.
// Tolerate mode must always produce a valid (possibly partly empty) trace —
// the lenient path can never be the thing that fails a verification run.
func FuzzReadDir(f *testing.F) {
	var files [2][]byte
	seed := fuzzSeedTrace()
	dir := f.TempDir()
	if err := WriteDir(dir, seed, EncodeOptions{Compress: true}); err != nil {
		f.Fatal(err)
	}
	for rank := range files {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank-%d.viot", rank)))
		if err != nil {
			f.Fatal(err)
		}
		files[rank] = data
	}
	f.Add(files[0], files[1])
	f.Add(files[0], files[1][:len(files[1])/2]) // rank 1 truncated mid-stream
	f.Add([]byte{}, files[1])
	f.Fuzz(func(t *testing.T, rank0, rank1 []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "rank-0.viot"), rank0, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "rank-1.viot"), rank1, 0o644); err != nil {
			t.Fatal(err)
		}
		if tr, stats, err := ReadDirWithOptions(dir, DecodeOptions{Limits: fuzzLimits()}); err == nil {
			if !stats.Clean() {
				t.Fatalf("strict ReadDir salvaged: %+v", stats)
			}
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("strict ReadDir returned invalid trace: %v", verr)
			}
		}
		tr, _, err := ReadDirWithOptions(dir, DecodeOptions{Tolerate: true, Limits: fuzzLimits()})
		if err != nil {
			t.Fatalf("tolerant ReadDir failed: %v", err)
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("tolerant ReadDir returned invalid trace: %v", verr)
		}
	})
}

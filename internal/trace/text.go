package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText renders the trace in a human-readable per-rank listing, the
// format `verifyio -dump` prints. Nesting depth is shown by indentation, so
// the I/O-stack structure (application call → library internals → POSIX) is
// visible at a glance:
//
//	# rank 0 (7 records)
//	[2] ncmpi_create(comm-world, data.nc, NC_CLOBBER)
//	[1]   MPI_File_open(comm-world, data.nc, ...)
//	[0]     open(data.nc, rw|creat, 3)
//
// Record order is completion order: a nested call appears before the call
// that issued it, with deeper indentation.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	keys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "# %s = %s\n", k, t.Meta[k])
	}
	for rank, recs := range t.Ranks {
		fmt.Fprintf(bw, "# rank %d (%d records)\n", rank, len(recs))
		for i := range recs {
			r := &recs[i]
			fmt.Fprintf(bw, "[%d]%s %s(%s)\n",
				r.Seq, strings.Repeat("  ", r.Depth), r.Func, strings.Join(r.Args, ", "))
		}
	}
	return bw.Flush()
}

// Command gen regenerates the checked-in fuzz seed corpora under
// internal/trace/testdata/fuzz. The seeds are a curated slice of the
// fault-injection corpus — one representative per mutation class — so a
// fresh checkout's `go test` exercises the interesting decoder paths and a
// real `-fuzz` run starts from structure-aware inputs instead of zero.
//
// Run from the repository root:
//
//	go run ./internal/trace/faultinject/gen
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"verifyio/internal/trace"
	"verifyio/internal/trace/faultinject"
)

func seedTrace() *trace.Trace {
	tr := trace.New(2)
	tr.Meta["program"] = "corpus-seed"
	tr.Meta["fs.mode"] = "posix"
	tick := []int64{0, 0}
	add := func(rank int, layer trace.Layer, fn string, depth int, chain []string, args ...string) {
		tick[rank] += 2
		tr.Append(trace.Record{
			Rank: rank, Func: fn, Layer: layer, Depth: depth,
			Args: args, Tick: tick[rank], Ret: tick[rank] + 1,
			Chain: chain, Site: fmt.Sprintf("site%d", rank),
		})
	}
	for rank := 0; rank < 2; rank++ {
		add(rank, trace.LayerMPIIO, "MPI_File_open", 0, nil, "comm0", "f.bin", "rw")
		add(rank, trace.LayerPOSIX, "open", 1, []string{"mpi-io:MPI_File_open@m"}, "f.bin", "rw", "3")
		for i := 0; i < 4; i++ {
			add(rank, trace.LayerPOSIX, "pwrite", 1,
				[]string{"mpi-io:MPI_File_write_at@m"}, "3", "8", fmt.Sprint(8*i))
		}
		add(rank, trace.LayerPOSIX, "close", 0, nil, "3")
	}
	if err := tr.Validate(); err != nil {
		log.Fatalf("seed trace invalid: %v", err)
	}
	return tr
}

func encode(tr *trace.Trace, compress bool) []byte {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr, trace.EncodeOptions{Compress: compress}); err != nil {
		log.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// writeSeed writes one corpus entry in the `go test fuzz v1` format; each
// argument becomes one []byte line.
func writeSeed(dir, name string, args ...[]byte) {
	var b strings.Builder
	b.WriteString("go test fuzz v1\n")
	for _, a := range args {
		fmt.Fprintf(&b, "[]byte(%q)\n", a)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Println(path)
}

// pick returns the first corpus case whose name has the given prefix.
func pick(cases []faultinject.Case, prefix string) faultinject.Case {
	for _, c := range cases {
		if strings.HasPrefix(c.Name, prefix) {
			return c
		}
	}
	log.Fatalf("no corpus case with prefix %q", prefix)
	return faultinject.Case{}
}

func main() {
	root := "internal/trace/testdata/fuzz"
	decodeDir := filepath.Join(root, "FuzzDecode")
	dirDir := filepath.Join(root, "FuzzReadDir")
	for _, d := range []string{decodeDir, dirDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	tr := seedTrace()
	plain := encode(tr, false)
	packed := encode(tr, true)

	writeSeed(decodeDir, "seed-plain", plain)
	writeSeed(decodeDir, "seed-compressed", packed)
	writeSeed(decodeDir, "seed-header-only", []byte("VIOT\x01\x00"))

	corpus := faultinject.Corpus(plain)
	writeSeed(decodeDir, "seed-bomb-depth", pick(corpus, "bomb@depth").Data)
	writeSeed(decodeDir, "seed-bomb-strings", pick(corpus, "bomb@string-count").Data)
	writeSeed(decodeDir, "seed-bomb-strindex", pick(corpus, "bomb@strindex").Data)
	writeSeed(decodeDir, "seed-truncated-records", pick(corpus, "truncate@record").Data)
	writeSeed(decodeDir, "seed-truncated-strings", pick(corpus, "truncate@string-table").Data)
	writeSeed(decodeDir, "seed-bitflip", pick(corpus, "bitflip@7").Data)
	writeSeed(decodeDir, "seed-compressed-truncated", packed[:len(packed)-3])

	// Directory seeds: two rank files per entry.
	tmp, err := os.MkdirTemp("", "viot-corpus")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	if err := trace.WriteDir(tmp, tr, trace.EncodeOptions{Compress: false}); err != nil {
		log.Fatal(err)
	}
	var ranks [2][]byte
	for i := range ranks {
		ranks[i], err = os.ReadFile(filepath.Join(tmp, fmt.Sprintf("rank-%d.viot", i)))
		if err != nil {
			log.Fatal(err)
		}
	}
	writeSeed(dirDir, "seed-intact", ranks[0], ranks[1])
	writeSeed(dirDir, "seed-rank1-truncated", ranks[0], ranks[1][:len(ranks[1])/2])
	writeSeed(dirDir, "seed-rank0-empty", nil, ranks[1])
	writeSeed(dirDir, "seed-rank1-bombed", ranks[0], pick(faultinject.Corpus(ranks[1]), "bomb@depth").Data)
}

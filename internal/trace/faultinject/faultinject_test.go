package faultinject

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"verifyio/internal/trace"
)

// sampleTrace is a small but representative trace: multiple ranks, nested
// calls with chains, args, and metadata — every decode section populated.
func sampleTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	tr := trace.New(2)
	tr.Meta["program"] = "faultinject"
	tr.Meta["fs.mode"] = "posix"
	tick := []int64{0, 0}
	add := func(rank int, layer trace.Layer, fn string, depth int, chain []string, args ...string) {
		tick[rank] += 2
		tr.Append(trace.Record{
			Rank: rank, Func: fn, Layer: layer, Depth: depth,
			Args: args, Tick: tick[rank], Ret: tick[rank] + 1,
			Chain: chain, Site: fmt.Sprintf("site%d", rank),
		})
	}
	for rank := 0; rank < 2; rank++ {
		add(rank, trace.LayerMPIIO, "MPI_File_open", 0, nil, "comm0", "f.bin", "rw")
		add(rank, trace.LayerPOSIX, "open", 1, []string{"mpi-io:MPI_File_open@m"}, "f.bin", "rw", "3")
		for i := 0; i < 6; i++ {
			add(rank, trace.LayerPOSIX, "pwrite", 1,
				[]string{"mpi-io:MPI_File_write_at@m"}, "3", "8", fmt.Sprint(8*i))
		}
		add(rank, trace.LayerPOSIX, "close", 0, nil, "3")
	}
	if err := tr.Validate(); err != nil {
		tb.Fatalf("sample trace invalid: %v", err)
	}
	return tr
}

func encode(tb testing.TB, tr *trace.Trace, compress bool) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr, trace.EncodeOptions{Compress: compress}); err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// testLimits is a deliberately tight budget so the allocation assertions
// have teeth: a varint bomb that slipped past a cap would blow through it
// by orders of magnitude.
func testLimits() trace.Limits {
	return trace.Limits{MaxPayload: 1 << 20}
}

// allocBudget is the harness-level allocation ceiling: the payload budget
// plus slack for append growth, bufio/flate buffers and test scaffolding.
// The bugs this guards against (a corrupt Depth varint driving a multi-GiB
// make) overshoot it by three orders of magnitude.
const allocBudget = 1<<20*4 + 1<<23

// TestCorpusResilience is the core fault-injection property: for every
// mutation of a valid trace — truncations at every section boundary, varint
// bombs, flipped bits, both compressed and not — Decode never panics, never
// allocates past the budget, and classifies every failure.
func TestCorpusResilience(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			data := encode(t, sampleTrace(t), compress)
			cases := Corpus(data)
			if len(cases) < 50 {
				t.Fatalf("suspiciously small corpus: %d cases", len(cases))
			}
			sections := map[string]bool{}
			for _, c := range cases {
				out := Exercise(c.Data, trace.DecodeOptions{Limits: testLimits()})
				if out.Panicked {
					t.Fatalf("%s: decoder panicked: %v", c.Name, out.PanicValue)
				}
				if out.AllocBytes > allocBudget {
					t.Errorf("%s: allocated %d bytes (budget %d)", c.Name, out.AllocBytes, allocBudget)
				}
				if out.Err != nil {
					de, ok := trace.AsDecodeError(out.Err)
					if !ok {
						t.Fatalf("%s: unclassified error: %v", c.Name, out.Err)
					}
					sections[de.Section] = true
				}

				// The same stream in tolerate mode: still no panic, and
				// whatever comes back must be a valid trace.
				tout := Exercise(c.Data, trace.DecodeOptions{Tolerate: true, Limits: testLimits()})
				if tout.Panicked {
					t.Fatalf("%s (tolerate): decoder panicked: %v", c.Name, tout.PanicValue)
				}
				if tout.Err == nil {
					if verr := tout.Trace.Validate(); verr != nil {
						t.Fatalf("%s (tolerate): salvaged trace invalid: %v", c.Name, verr)
					}
				} else if _, ok := trace.AsDecodeError(tout.Err); !ok {
					t.Fatalf("%s (tolerate): unclassified error: %v", c.Name, tout.Err)
				}
			}
			// The corpus must have hit every decode section.
			for _, want := range []string{"header", "meta", "string-table", "records"} {
				if !sections[want] {
					t.Errorf("no mutation produced a failure in section %q (got %v)", want, sections)
				}
			}
		})
	}
}

// TestBombsRejectedByLimits pins the satellite bug: size-field bombs (the
// corrupt Depth varint that used to drive a multi-GiB allocation, plus every
// other counter) must die on a limit or corruption check, cheaply.
func TestBombsRejectedByLimits(t *testing.T) {
	data := encode(t, sampleTrace(t), false)
	bombs := Bombs(data)
	if len(bombs) < 6 {
		t.Fatalf("expected bombs on every counter, got %d: %v", len(bombs), bombs)
	}
	seenDepth := false
	for _, c := range bombs {
		out := Exercise(c.Data, trace.DecodeOptions{Limits: testLimits()})
		if out.Panicked {
			t.Fatalf("%s: panicked: %v", c.Name, out.PanicValue)
		}
		if out.Err == nil {
			t.Fatalf("%s: bombed stream decoded successfully", c.Name)
		}
		de, ok := trace.AsDecodeError(out.Err)
		if !ok {
			t.Fatalf("%s: unclassified error: %v", c.Name, out.Err)
		}
		if de.Kind != trace.LimitExceeded && de.Kind != trace.Corrupt && de.Kind != trace.Truncated {
			t.Fatalf("%s: unexpected kind %v", c.Name, de.Kind)
		}
		if out.AllocBytes > allocBudget {
			t.Errorf("%s: allocated %d bytes for a bombed counter", c.Name, out.AllocBytes)
		}
		if c.Name == "bomb@depth[r0,i0]" {
			seenDepth = true
			if de.Kind != trace.LimitExceeded {
				t.Errorf("depth bomb classified %v, want limit-exceeded", de.Kind)
			}
		}
	}
	if !seenDepth {
		t.Error("corpus missing the depth bomb (the encode.go:250 regression)")
	}
}

// TestTruncationsCoverEverySectionBoundary checks the corpus construction
// itself: a truncation case exists at the end of each layout section.
func TestTruncationsCoverEverySectionBoundary(t *testing.T) {
	data := encode(t, sampleTrace(t), false)
	spans, err := trace.Layout(data)
	if err != nil {
		t.Fatal(err)
	}
	cuts := map[int64]bool{}
	for _, c := range Truncations(data) {
		cuts[int64(len(c.Data))] = true
	}
	for _, s := range spans {
		if s.End < int64(len(data)) && !cuts[s.End] {
			t.Errorf("no truncation at %s end (offset %d)", s.Name, s.End)
		}
	}
}

// TestExerciseDir covers the directory reader: a rank file truncated
// mid-stream fails strict ReadDir with a classified error and salvages in
// tolerate mode with accurate counts.
func TestExerciseDir(t *testing.T) {
	tr := sampleTrace(t)
	dir := t.TempDir()
	if err := trace.WriteDir(dir, tr, trace.EncodeOptions{Compress: false}); err != nil {
		t.Fatal(err)
	}
	// Chop rank 1's file mid-records: after its 4th record.
	path := filepath.Join(dir, "rank-1.viot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := trace.Layout(data)
	if err != nil {
		t.Fatal(err)
	}
	rec3, ok := trace.SpanByName(spans, "record", 0, 3)
	if !ok {
		t.Fatal("no span for record 3")
	}
	if err := os.WriteFile(path, data[:rec3.End+2], 0o644); err != nil {
		t.Fatal(err)
	}

	out := ExerciseDir(dir, trace.DecodeOptions{Limits: testLimits()})
	if out.Panicked {
		t.Fatalf("strict ReadDir panicked: %v", out.PanicValue)
	}
	if _, ok := trace.AsDecodeError(out.Err); !ok {
		t.Fatalf("strict ReadDir error not classified: %v", out.Err)
	}

	tout := ExerciseDir(dir, trace.DecodeOptions{Tolerate: true, Limits: testLimits()})
	if tout.Panicked {
		t.Fatalf("tolerant ReadDir panicked: %v", tout.PanicValue)
	}
	if tout.Err != nil {
		t.Fatalf("tolerant ReadDir failed: %v", tout.Err)
	}
	if got := len(tout.Trace.Ranks[1]); got != 4 {
		t.Errorf("salvaged %d records on rank 1, want 4", got)
	}
	if n := len(tout.Stats.Ranks); n != 1 {
		t.Fatalf("stats report %d damaged ranks, want 1", n)
	}
	rr := tout.Stats.Ranks[0]
	if rr.Rank != 1 || rr.Salvaged != 4 || rr.Dropped != len(tr.Ranks[1])-4 {
		t.Errorf("recovery = %+v, want rank 1 salvaged 4 dropped %d", rr, len(tr.Ranks[1])-4)
	}
	if verr := tout.Trace.Validate(); verr != nil {
		t.Errorf("salvaged trace invalid: %v", verr)
	}
}

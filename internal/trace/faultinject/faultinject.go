// Package faultinject systematically damages encoded VerifyIO traces to
// prove the ingestion pipeline is resilient: whatever a crashed job, a
// half-written file or a flipped bit produces, Decode and ReadDir must never
// panic, never allocate beyond their configured budget, and always return a
// classified trace.DecodeError (or, in tolerate mode, a salvaged prefix).
//
// The mutation corpus is generated from trace.Layout, so truncations land
// exactly on every decode section boundary (header, metadata, string table,
// per-rank record streams) and varint bombs land exactly on the size-bearing
// fields (counts, depths, string-table indices). The same corpus seeds the
// native go-fuzz targets in package trace.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"

	"verifyio/internal/trace"
)

// Case is one corrupted variant of an encoded trace.
type Case struct {
	// Name describes the mutation ("truncate@meta:end", "bomb@depth", ...).
	Name string
	// Data is the mutated encoding.
	Data []byte
}

// bombValue is the payload of a varint bomb: a size field claiming ~4.6
// exabytes. Every counter it lands on must be rejected by a limit, not
// allocated.
const bombValue = uint64(1) << 62

// Corpus generates the full mutation set for one encoded trace: boundary
// truncations, varint bombs, string-index corruption and bit flips. It works
// on compressed encodings too (layout-directed mutations then degrade to
// stride-based ones, which is exactly what exercises the DEFLATE error
// paths).
func Corpus(data []byte) []Case {
	var cases []Case
	cases = append(cases, Truncations(data)...)
	cases = append(cases, Bombs(data)...)
	cases = append(cases, BitFlips(data, 7)...)
	return cases
}

// Truncations cuts the encoding at every decode section boundary — and one
// byte before each, to land mid-field — plus a byte-stride sweep so
// compressed payloads (whose structure is invisible without inflating) are
// chopped everywhere too.
func Truncations(data []byte) []Case {
	cuts := map[int64]string{}
	if spans, err := trace.Layout(data); err == nil {
		for _, s := range spans {
			label := s.Name
			if s.Rank >= 0 {
				label = fmt.Sprintf("%s[r%d", s.Name, s.Rank)
				if s.Index >= 0 {
					label += fmt.Sprintf(",i%d", s.Index)
				}
				label += "]"
			}
			cuts[s.End] = label + ":end"
			if s.End > 0 {
				cuts[s.End-1] = label + ":end-1"
			}
		}
	}
	// Stride sweep: covers compressed traces and the bytes between spans.
	for off := int64(0); off < int64(len(data)); off += 5 {
		if _, ok := cuts[off]; !ok {
			cuts[off] = fmt.Sprintf("byte%d", off)
		}
	}
	var cases []Case
	for off, label := range cuts {
		if off < 0 || off >= int64(len(data)) {
			continue
		}
		cases = append(cases, Case{
			Name: "truncate@" + label,
			Data: bytes.Clone(data[:off]),
		})
	}
	return cases
}

// Bombs splices a maximal varint over every size-bearing field the layout
// exposes: metadata/string/rank/record counts, the per-record call depth
// (the Chain allocation), and the first record's leading string-table index.
func Bombs(data []byte) []Case {
	spans, err := trace.Layout(data)
	if err != nil {
		return nil // compressed or already damaged: nothing to aim at
	}
	var cases []Case
	add := func(name string, s trace.Span) {
		cases = append(cases, Case{Name: "bomb@" + name, Data: splice(data, s.Start, s.End, bombValue)})
	}
	for _, s := range spans {
		switch s.Name {
		case "meta-count", "string-count", "nranks":
			add(s.Name, s)
		case "rank-count":
			add(fmt.Sprintf("%s[r%d]", s.Name, s.Rank), s)
		case "depth":
			// One bomb per rank is enough coverage; every record's
			// depth field would square the corpus.
			if s.Index == 0 {
				add(fmt.Sprintf("%s[r%d,i%d]", s.Name, s.Rank, s.Index), s)
			}
		case "record":
			// The record starts with its Func string-table index:
			// bombing it exercises the out-of-table check.
			if s.Index == 0 {
				end := s.Start + varintLen(data, s.Start)
				add(fmt.Sprintf("strindex[r%d]", s.Rank),
					trace.Span{Start: s.Start, End: end})
			}
		}
	}
	return cases
}

// BitFlips flips one bit every stride bytes.
func BitFlips(data []byte, stride int) []Case {
	if stride <= 0 {
		stride = 7
	}
	var cases []Case
	for off := 0; off < len(data); off += stride {
		mut := bytes.Clone(data)
		mut[off] ^= 1 << (off % 8)
		cases = append(cases, Case{Name: fmt.Sprintf("bitflip@%d.%d", off, off%8), Data: mut})
	}
	return cases
}

// splice replaces data[start:end] with the varint encoding of v.
func splice(data []byte, start, end int64, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	out := make([]byte, 0, int64(len(data))+int64(n)-(end-start))
	out = append(out, data[:start]...)
	out = append(out, buf[:n]...)
	out = append(out, data[end:]...)
	return out
}

// varintLen returns the encoded length of the varint at data[off:].
func varintLen(data []byte, off int64) int64 {
	_, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 1
	}
	return int64(n)
}

// Outcome is what one decoding attempt did.
type Outcome struct {
	// Trace and Stats are the decode results (nil on error).
	Trace *trace.Trace
	Stats *trace.DecodeStats
	// Err is the decode error, if any.
	Err error
	// Panicked reports that the decoder panicked; PanicValue carries the
	// recovered value. A resilient decoder never sets this.
	Panicked   bool
	PanicValue any
	// AllocBytes is the total heap allocation the attempt performed
	// (runtime TotalAlloc delta — an upper bound including incidental
	// allocations).
	AllocBytes uint64
}

// Exercise decodes one mutated encoding under recover, measuring
// allocations, so tests can assert the three resilience properties: no
// panic, bounded allocation, classified error.
func Exercise(data []byte, opts trace.DecodeOptions) Outcome {
	return guard(func() (*trace.Trace, *trace.DecodeStats, error) {
		return trace.DecodeWithOptions(bytes.NewReader(data), opts)
	})
}

// ExerciseDir runs ReadDir on a trace directory under the same guards.
func ExerciseDir(dir string, opts trace.DecodeOptions) Outcome {
	return guard(func() (*trace.Trace, *trace.DecodeStats, error) {
		return trace.ReadDirWithOptions(dir, opts)
	})
}

func guard(fn func() (*trace.Trace, *trace.DecodeStats, error)) (out Outcome) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	func() {
		defer func() {
			if v := recover(); v != nil {
				out.Panicked = true
				out.PanicValue = v
			}
		}()
		out.Trace, out.Stats, out.Err = fn()
	}()
	runtime.ReadMemStats(&after)
	out.AllocBytes = after.TotalAlloc - before.TotalAlloc
	return out
}

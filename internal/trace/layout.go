package trace

import (
	"bytes"
	"errors"
)

// Span is a named byte range inside an uncompressed encoded trace. Offsets
// are absolute into the encoded stream (the 6-byte header included).
// Container spans ("meta", "string-table", "record") overlap the field spans
// they contain ("meta-count", "depth").
type Span struct {
	// Name identifies the region: "header", "meta-count", "meta",
	// "string-count", "string-table", "nranks", "rank-count", "record",
	// "depth".
	Name string
	// Rank scopes rank-level spans ("rank-count", "record", "depth");
	// -1 otherwise.
	Rank int
	// Index is the record index for "record"/"depth" spans; -1 otherwise.
	Index int
	// Start and End delimit the bytes [Start, End).
	Start, End int64
}

// Layout parses an uncompressed encoded trace and returns the byte span of
// every section and of the size-bearing fields a mutation harness wants to
// target (counts, depths, record boundaries). It is the map the
// fault-injection corpus is generated from — truncating at each span End
// exercises every section boundary of the decoder.
func Layout(data []byte) ([]Span, error) {
	if len(data) >= 6 && data[5]&flagCompress != 0 {
		return nil, errors.New("trace: Layout requires an uncompressed trace (encode with Compress: false)")
	}
	_, _, spans, err := decodeStream(bytes.NewReader(data), DecodeOptions{}, true)
	if err != nil {
		return nil, err
	}
	out := make([]Span, 0, len(spans)+1)
	out = append(out, Span{Name: "header", Rank: -1, Index: -1, Start: 0, End: 6})
	for _, s := range spans {
		// Decoder spans are payload-relative; make them absolute.
		s.Start += 6
		s.End += 6
		out = append(out, s)
	}
	return out, nil
}

// SpanByName returns the first span with the given name, rank and index
// (use -1 for unscoped spans).
func SpanByName(spans []Span, name string, rank, index int) (Span, bool) {
	for _, s := range spans {
		if s.Name == name && s.Rank == rank && s.Index == index {
			return s, true
		}
	}
	return Span{}, false
}

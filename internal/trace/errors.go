package trace

import (
	"errors"
	"fmt"
	"io"

	"verifyio/internal/obs"
)

// Structured decode errors and resource limits for the trace-ingestion
// pipeline.
//
// The whole VerifyIO workflow is trace-driven, and real Recorder traces come
// from preloaded tracers on jobs that crash, get killed, or truncate
// mid-write (the paper verifies legacy traces with missing information in
// §V-D). The decoder therefore never trusts its input: every length and count
// read from the stream is bounded before allocation, every failure is
// classified into a DecodeError, and a lenient mode (DecodeOptions.Tolerate)
// salvages the well-formed prefix of each rank stream instead of rejecting
// the whole trace.

// ErrKind classifies a decode failure.
type ErrKind uint8

// Decode failure kinds.
const (
	// Truncated: the stream ended before the structure it promised
	// (killed job, partial write, chopped compressed payload).
	Truncated ErrKind = iota
	// Corrupt: the bytes are structurally inconsistent (bad magic,
	// out-of-table string index, invalid varint, trailing garbage,
	// records violating trace invariants).
	Corrupt
	// LimitExceeded: a count or length field demands more resources than
	// the configured Limits allow (varint bombs, implausible depth or
	// table sizes). Distinguished from Corrupt so operators can raise
	// limits for legitimately huge traces.
	LimitExceeded
)

var errKindNames = [...]string{"truncated", "corrupt", "limit-exceeded"}

func (k ErrKind) String() string {
	if int(k) < len(errKindNames) {
		return errKindNames[k]
	}
	return fmt.Sprintf("errkind(%d)", uint8(k))
}

// DecodeError is the structured error every decoding entry point returns on
// malformed input. It pins the failure to a stream position so a damaged
// trace can be diagnosed (and, in tolerate mode, cut) precisely.
type DecodeError struct {
	// Kind classifies the failure.
	Kind ErrKind
	// Section names the region being decoded: "header", "meta",
	// "string-table", "records", "trailer", "validate", "directory".
	Section string
	// Rank is the rank stream being decoded, -1 outside rank records.
	Rank int
	// Record is the in-progress record index within Rank, -1 outside a
	// record.
	Record int
	// Offset is the byte offset into the decoded payload (the stream
	// after the 6-byte header, after decompression when the trace is
	// compressed) at which the failure was detected.
	Offset int64
	// Err is the underlying cause.
	Err error
}

func (e *DecodeError) Error() string {
	var b []byte
	b = append(b, "trace: "...)
	b = append(b, e.Section...)
	if e.Rank >= 0 {
		b = fmt.Appendf(b, ": rank %d", e.Rank)
		if e.Record >= 0 {
			b = fmt.Appendf(b, " record %d", e.Record)
		}
	}
	b = fmt.Appendf(b, " at payload offset %d: %s", e.Offset, e.Kind)
	if e.Err != nil {
		b = fmt.Appendf(b, ": %v", e.Err)
	}
	return string(b)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// AsDecodeError unwraps err to its DecodeError, if it carries one.
func AsDecodeError(err error) (*DecodeError, bool) {
	var de *DecodeError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// classifyIO maps an underlying read error to a decode-failure kind: end of
// stream means the trace was cut short, anything else (flate corruption,
// varint overflow) means the bytes themselves are bad.
func classifyIO(err error) ErrKind {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return Truncated
	}
	return Corrupt
}

// Limits bounds every allocation the decoder makes, so a corrupt or
// malicious length field can never drive an unbounded allocation or OOM.
// The zero value of any field means "use the default".
type Limits struct {
	// MaxMeta caps the number of metadata key/value pairs.
	MaxMeta int
	// MaxStrings caps the string-table entry count.
	MaxStrings int
	// MaxStringLen caps the byte length of any single string.
	MaxStringLen int
	// MaxRanks caps the rank-stream count.
	MaxRanks int
	// MaxRecords caps the per-rank record count.
	MaxRecords int
	// MaxArgs caps the argument count of one record.
	MaxArgs int
	// MaxDepth caps the call-nesting depth (and so the chain allocation)
	// of one record.
	MaxDepth int
	// MaxPayload is the total decoded-bytes budget for the whole trace:
	// string bytes plus per-entry bookkeeping. Decoding stops with
	// LimitExceeded as soon as the running total passes it.
	MaxPayload int64
}

// DefaultLimits returns the production bounds: far above anything a real
// Recorder trace produces, far below anything that could OOM the process.
func DefaultLimits() Limits {
	return Limits{
		MaxMeta:      1 << 16,
		MaxStrings:   1 << 22,
		MaxStringLen: 1 << 24,
		MaxRanks:     1 << 20,
		MaxRecords:   1 << 28,
		MaxArgs:      1 << 16,
		MaxDepth:     1 << 10,
		MaxPayload:   8 << 30,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxMeta <= 0 {
		l.MaxMeta = d.MaxMeta
	}
	if l.MaxStrings <= 0 {
		l.MaxStrings = d.MaxStrings
	}
	if l.MaxStringLen <= 0 {
		l.MaxStringLen = d.MaxStringLen
	}
	if l.MaxRanks <= 0 {
		l.MaxRanks = d.MaxRanks
	}
	if l.MaxRecords <= 0 {
		l.MaxRecords = d.MaxRecords
	}
	if l.MaxArgs <= 0 {
		l.MaxArgs = d.MaxArgs
	}
	if l.MaxDepth <= 0 {
		l.MaxDepth = d.MaxDepth
	}
	if l.MaxPayload <= 0 {
		l.MaxPayload = d.MaxPayload
	}
	return l
}

// DecodeOptions controls trace deserialization.
type DecodeOptions struct {
	// Tolerate enables lenient decoding: instead of failing on a damaged
	// stream, salvage the well-formed prefix of each rank's records and
	// report what was dropped in DecodeStats. Errors before any records
	// exist (bad header, corrupt string table) still fail: there is
	// nothing to salvage without them.
	Tolerate bool
	// Limits bounds decoder allocations; zero fields use DefaultLimits.
	Limits Limits
	// Obs carries telemetry sinks; the zero Ctx disables instrumentation.
	Obs obs.Ctx
}

// RankRecovery reports lenient-mode salvage on one damaged rank stream.
type RankRecovery struct {
	// Rank is the world rank of the damaged stream.
	Rank int
	// Salvaged is the number of records kept (the well-formed prefix).
	Salvaged int
	// Dropped is the number of records lost. It is -1 when the damage
	// hides the true count (the stream broke before declaring it).
	Dropped int
	// Err is the classified error that cut the stream.
	Err error
}

// DecodeStats reports what lenient decoding salvaged. A nil or empty stats
// means the stream decoded completely.
type DecodeStats struct {
	// Ranks lists the damaged rank streams, in rank order. Intact ranks
	// do not appear.
	Ranks []RankRecovery
}

// Clean reports whether the trace decoded with no salvage at all.
func (s *DecodeStats) Clean() bool { return s == nil || len(s.Ranks) == 0 }

// Salvaged sums the records kept on damaged ranks.
func (s *DecodeStats) Salvaged() int {
	n := 0
	if s != nil {
		for _, r := range s.Ranks {
			n += r.Salvaged
		}
	}
	return n
}

// Dropped sums the records lost on damaged ranks. exact is false when any
// damaged stream hides its true record count.
func (s *DecodeStats) Dropped() (n int, exact bool) {
	exact = true
	if s != nil {
		for _, r := range s.Ranks {
			if r.Dropped < 0 {
				exact = false
				continue
			}
			n += r.Dropped
		}
	}
	return n, exact
}

package trace

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeBytes encodes tr and returns the raw stream.
func encodeBytes(t *testing.T, tr *Trace, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr, EncodeOptions{Compress: compress}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// spliceVarint replaces the span [s.Start, s.End) in data with the varint
// encoding of v.
func spliceVarint(data []byte, s Span, v uint64) []byte {
	var enc []byte
	for v >= 0x80 {
		enc = append(enc, byte(v)|0x80)
		v >>= 7
	}
	enc = append(enc, byte(v))
	out := make([]byte, 0, len(data))
	out = append(out, data[:s.Start]...)
	out = append(out, enc...)
	out = append(out, data[s.End:]...)
	return out
}

func mustSpan(t *testing.T, data []byte, name string, rank, index int) Span {
	t.Helper()
	spans, err := Layout(data)
	if err != nil {
		t.Fatalf("Layout: %v", err)
	}
	s, ok := SpanByName(spans, name, rank, index)
	if !ok {
		t.Fatalf("no %s span (rank %d, index %d)", name, rank, index)
	}
	return s
}

// TestCorruptStreamsClassified is the table-driven regression suite for the
// ingestion hardening: each case plants one specific corruption and pins the
// DecodeError kind (and section) the decoder must classify it as.
func TestCorruptStreamsClassified(t *testing.T) {
	const bomb = uint64(1) << 62
	cases := []struct {
		name        string
		mutate      func(t *testing.T, data []byte) []byte
		wantKind    ErrKind
		wantSection string
	}{
		{
			// The original bug: a corrupt Depth varint drove
			// make([]string, rec.Depth) with a multi-GiB count.
			name: "depth varint bomb",
			mutate: func(t *testing.T, data []byte) []byte {
				return spliceVarint(data, mustSpan(t, data, "depth", 0, 0), bomb)
			},
			wantKind:    LimitExceeded,
			wantSection: "records",
		},
		{
			name: "meta count bomb",
			mutate: func(t *testing.T, data []byte) []byte {
				return spliceVarint(data, mustSpan(t, data, "meta-count", -1, -1), bomb)
			},
			wantKind:    LimitExceeded,
			wantSection: "meta",
		},
		{
			name: "string table count bomb",
			mutate: func(t *testing.T, data []byte) []byte {
				return spliceVarint(data, mustSpan(t, data, "string-count", -1, -1), bomb)
			},
			wantKind:    LimitExceeded,
			wantSection: "string-table",
		},
		{
			name: "rank count bomb",
			mutate: func(t *testing.T, data []byte) []byte {
				return spliceVarint(data, mustSpan(t, data, "nranks", -1, -1), bomb)
			},
			wantKind:    LimitExceeded,
			wantSection: "records",
		},
		{
			name: "record count bomb",
			mutate: func(t *testing.T, data []byte) []byte {
				return spliceVarint(data, mustSpan(t, data, "rank-count", 0, -1), bomb)
			},
			wantKind:    LimitExceeded,
			wantSection: "records",
		},
		{
			name: "string index out of table",
			mutate: func(t *testing.T, data []byte) []byte {
				s := mustSpan(t, data, "record", 0, 0)
				// The record leads with its Func string index.
				return spliceVarint(data, Span{Start: s.Start, End: s.Start + 1}, bomb)
			},
			wantKind:    Corrupt,
			wantSection: "records",
		},
		{
			name: "truncated mid-record",
			mutate: func(t *testing.T, data []byte) []byte {
				s := mustSpan(t, data, "record", 0, 1)
				return data[:s.Start+2]
			},
			wantKind:    Truncated,
			wantSection: "records",
		},
		{
			name: "truncated inside string table",
			mutate: func(t *testing.T, data []byte) []byte {
				s := mustSpan(t, data, "string-table", -1, -1)
				return data[:s.Start+3]
			},
			wantKind:    Truncated,
			wantSection: "string-table",
		},
		{
			name: "trailing garbage after payload",
			mutate: func(t *testing.T, data []byte) []byte {
				return append(bytes.Clone(data), "junk"...)
			},
			wantKind:    Corrupt,
			wantSection: "trailer",
		},
		{
			name: "overlong varint",
			mutate: func(t *testing.T, data []byte) []byte {
				s := mustSpan(t, data, "meta-count", -1, -1)
				over := bytes.Repeat([]byte{0xff}, 10) // > 64 bits
				out := append([]byte{}, data[:s.Start]...)
				out = append(out, over...)
				return append(out, data[s.End:]...)
			},
			wantKind:    Corrupt,
			wantSection: "meta",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := encodeBytes(t, sampleTrace(t), false)
			mut := tc.mutate(t, data)
			_, _, err := DecodeWithOptions(bytes.NewReader(mut), DecodeOptions{})
			de, ok := AsDecodeError(err)
			if !ok {
				t.Fatalf("error not classified: %v", err)
			}
			if de.Kind != tc.wantKind {
				t.Errorf("kind = %v, want %v (%v)", de.Kind, tc.wantKind, err)
			}
			if de.Section != tc.wantSection {
				t.Errorf("section = %q, want %q (%v)", de.Section, tc.wantSection, err)
			}
		})
	}
}

// TestFlateTruncationDetected pins the satellite fix for compressed
// payloads: a DEFLATE stream chopped anywhere — including after the last
// record but before the final-block terminator — must be reported, not
// silently ignored through the deferred Close.
func TestFlateTruncationDetected(t *testing.T) {
	data := encodeBytes(t, sampleTrace(t), true)
	for cut := 7; cut < len(data); cut += 3 {
		_, _, err := DecodeWithOptions(bytes.NewReader(data[:cut]), DecodeOptions{})
		if err == nil {
			t.Fatalf("decode accepted compressed stream cut at %d/%d bytes", cut, len(data))
		}
		de, ok := AsDecodeError(err)
		if !ok {
			t.Fatalf("cut at %d: unclassified error: %v", cut, err)
		}
		if de.Kind != Truncated && de.Kind != Corrupt {
			t.Errorf("cut at %d: kind %v, want truncated or corrupt", cut, de.Kind)
		}
	}
	// Cutting exactly the last byte (the final-block terminator lives at
	// the very end of the DEFLATE stream) must be Truncated specifically.
	_, _, err := DecodeWithOptions(bytes.NewReader(data[:len(data)-1]), DecodeOptions{})
	de, ok := AsDecodeError(err)
	if !ok || de.Kind != Truncated {
		t.Errorf("final-byte cut: got %v, want a Truncated DecodeError", err)
	}
}

// TestFlateTrailingGarbageDetected compresses a payload with junk appended
// inside the DEFLATE stream: the decoder must notice the payload keeps going
// past the decoded trace.
func TestFlateTrailingGarbageDetected(t *testing.T) {
	plain := encodeBytes(t, sampleTrace(t), false)
	var buf bytes.Buffer
	buf.Write([]byte(magic))
	buf.WriteByte(formatVer)
	buf.WriteByte(flagCompress)
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(plain[6:])
	fw.Write([]byte("garbage-after-the-trace"))
	fw.Close()

	_, _, derr := DecodeWithOptions(bytes.NewReader(buf.Bytes()), DecodeOptions{})
	de, ok := AsDecodeError(derr)
	if !ok || de.Kind != Corrupt || de.Section != "trailer" {
		t.Errorf("got %v, want a Corrupt trailer DecodeError", derr)
	}
	// Tolerate mode accepts the decoded trace and ignores the tail.
	tr, stats, terr := DecodeWithOptions(bytes.NewReader(buf.Bytes()), DecodeOptions{Tolerate: true})
	if terr != nil || !stats.Clean() {
		t.Fatalf("tolerate: err %v, stats %+v", terr, stats)
	}
	if !reflect.DeepEqual(tr, sampleTrace(t)) {
		t.Error("tolerate decode mismatch")
	}
}

// TestTolerateSalvagesPrefix checks lenient single-stream decoding: cutting
// a 2-rank stream inside rank 1's records keeps all of rank 0, the
// well-formed prefix of rank 1, and reports exact salvage counts.
func TestTolerateSalvagesPrefix(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeBytes(t, tr, false)
	s := mustSpan(t, data, "record", 1, 0)
	cut := data[:s.End+1] // one byte into rank 1's second record

	got, stats, err := DecodeWithOptions(bytes.NewReader(cut), DecodeOptions{Tolerate: true})
	if err != nil {
		t.Fatalf("tolerant decode failed: %v", err)
	}
	if len(got.Ranks[0]) != len(tr.Ranks[0]) {
		t.Errorf("rank 0: %d records, want %d (must be untouched)", len(got.Ranks[0]), len(tr.Ranks[0]))
	}
	if len(got.Ranks[1]) != 1 {
		t.Errorf("rank 1: %d records salvaged, want 1", len(got.Ranks[1]))
	}
	if verr := got.Validate(); verr != nil {
		t.Errorf("salvaged trace invalid: %v", verr)
	}
	if len(stats.Ranks) != 1 {
		t.Fatalf("stats: %+v, want one damaged rank", stats.Ranks)
	}
	rr := stats.Ranks[0]
	wantDropped := len(tr.Ranks[1]) - 1
	if rr.Rank != 1 || rr.Salvaged != 1 || rr.Dropped != wantDropped {
		t.Errorf("recovery %+v, want rank 1 salvaged 1 dropped %d", rr, wantDropped)
	}
	var de *DecodeError
	if !errors.As(rr.Err, &de) || de.Kind != Truncated {
		t.Errorf("recovery error %v, want Truncated DecodeError", rr.Err)
	}
	if n, exact := stats.Dropped(); n != wantDropped || !exact {
		t.Errorf("Dropped() = %d,%v, want %d,true", n, exact, wantDropped)
	}
}

// TestTolerateEqualsIntactPrefix is the lenient-mode correctness anchor: a
// trace salvaged from a truncated stream must be byte-identical (under
// WriteText) to the intact trace that only ever contained the prefix.
func TestTolerateEqualsIntactPrefix(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeBytes(t, tr, false)
	s := mustSpan(t, data, "record", 1, 0)

	got, _, err := DecodeWithOptions(bytes.NewReader(data[:s.End+1]), DecodeOptions{Tolerate: true})
	if err != nil {
		t.Fatal(err)
	}
	want := New(2)
	want.Meta = tr.Meta
	want.Ranks[0] = tr.Ranks[0]
	want.Ranks[1] = tr.Ranks[1][:1]

	var gotText, wantText bytes.Buffer
	if err := WriteText(&gotText, got); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&wantText, want); err != nil {
		t.Fatal(err)
	}
	if gotText.String() != wantText.String() {
		t.Errorf("salvaged trace differs from intact prefix:\n--- salvaged\n%s\n--- intact\n%s",
			gotText.String(), wantText.String())
	}
}

// TestTolerateTrimsInvariantViolations plants a corruption that decodes
// cleanly but violates the return-tick monotonicity: tolerate mode must trim
// to the longest valid prefix rather than hand verification an invalid
// trace.
func TestTolerateTrimsInvariantViolations(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeBytes(t, tr, false)
	// Zero the ret-delta of rank 0's second record: Ret stops increasing.
	// The delta varint follows func index (1 byte), layer (1 byte), depth
	// (1 byte) — locate it via the depth span.
	depth := mustSpan(t, data, "depth", 0, 1)
	mut := bytes.Clone(data)
	mut[depth.End] = 0 // ret delta varint → 0

	_, _, err := DecodeWithOptions(bytes.NewReader(mut), DecodeOptions{})
	if de, ok := AsDecodeError(err); !ok || de.Section != "validate" {
		t.Fatalf("strict decode: got %v, want validate-section DecodeError", err)
	}

	got, stats, err := DecodeWithOptions(bytes.NewReader(mut), DecodeOptions{Tolerate: true})
	if err != nil {
		t.Fatalf("tolerant decode failed: %v", err)
	}
	if verr := got.Validate(); verr != nil {
		t.Fatalf("salvaged trace invalid: %v", verr)
	}
	if len(got.Ranks[0]) != 1 {
		t.Errorf("rank 0 salvaged %d records, want 1", len(got.Ranks[0]))
	}
	if len(stats.Ranks) != 1 || stats.Ranks[0].Rank != 0 || stats.Ranks[0].Salvaged != 1 {
		t.Errorf("stats %+v, want rank 0 salvaged 1", stats.Ranks)
	}
}

// TestReadDirTolerantMissingRank checks that the directory reader tolerates
// a missing rank file, reporting it instead of failing.
func TestReadDirTolerantMissingRank(t *testing.T) {
	tr := sampleTrace(t)
	dir := filepath.Join(t.TempDir(), "tracedir")
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "rank-1.viot")); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadDirWithOptions(dir, DecodeOptions{Tolerate: true})
	if err != nil {
		t.Fatalf("tolerant ReadDir failed: %v", err)
	}
	if got.NumRanks() != 2 || len(got.Ranks[1]) != 0 {
		t.Errorf("got %d ranks, rank 1 has %d records; want 2 ranks, rank 1 empty",
			got.NumRanks(), len(got.Ranks[1]))
	}
	if len(stats.Ranks) != 1 || stats.Ranks[0].Rank != 1 || stats.Ranks[0].Dropped != -1 {
		t.Fatalf("stats %+v, want rank 1 dropped unknown", stats.Ranks)
	}
	if !strings.Contains(stats.Ranks[0].Err.Error(), "missing rank file") {
		t.Errorf("recovery error %v does not name the missing file", stats.Ranks[0].Err)
	}
}

// TestDecodeErrorRendering locks the DecodeError text format the CLIs and
// logs rely on.
func TestDecodeErrorRendering(t *testing.T) {
	e := &DecodeError{
		Kind: Truncated, Section: "records", Rank: 3, Record: 17, Offset: 1024,
		Err: fmt.Errorf("varint: unexpected EOF"),
	}
	got := e.Error()
	for _, want := range []string{"records", "rank 3", "record 17", "offset 1024", "truncated", "unexpected EOF"} {
		if !strings.Contains(got, want) {
			t.Errorf("DecodeError %q missing %q", got, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Error("DecodeError does not unwrap to its cause")
	}
}

// TestLimitsZeroValueUsesDefaults makes sure a zero Limits is never "no
// limits".
func TestLimitsZeroValueUsesDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if !reflect.DeepEqual(l, DefaultLimits()) {
		t.Errorf("withDefaults() = %+v, want %+v", l, DefaultLimits())
	}
	half := Limits{MaxDepth: 3}.withDefaults()
	if half.MaxDepth != 3 || half.MaxPayload != DefaultLimits().MaxPayload {
		t.Errorf("partial limits not merged: %+v", half)
	}
}

package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Content digests over trace records. The incremental verification cache
// (internal/vcache) identifies the reusable prefix of a re-recorded trace by
// comparing chained per-block record digests: block k's digest seeds with
// block k-1's, so two traces share a chain prefix exactly when they share
// the corresponding record prefix. The encoding below is the canonical
// record serialization those digests commit to; vcache.CodeVersion salts
// every cache key with the encoding generation, so changing this encoding
// requires bumping that constant or stale chains would alias.

// DigestBlock is the number of records one chain block covers. Smaller
// blocks localize a trace change more precisely (fewer falsely-dirty
// records ahead of the true divergence point) at the cost of a longer
// manifest; 64 keeps the manifest under a kilobyte per 2k records.
const DigestBlock = 64

// AppendRecordKey appends a canonical, self-delimiting binary encoding of
// the record to buf and returns the extended slice. Rank and Seq are
// deliberately excluded: they are positional (the chain index encodes them),
// and excluding them keeps the encoding reusable for positional and
// content-addressed digests alike.
func AppendRecordKey(buf []byte, rec *Record) []byte {
	buf = appendString(buf, rec.Func)
	buf = append(buf, byte(rec.Layer))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Depth))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Args)))
	for _, a := range rec.Args {
		buf = appendString(buf, a)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Tick))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Ret))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Chain)))
	for _, f := range rec.Chain {
		buf = appendString(buf, f)
	}
	buf = appendString(buf, rec.Site)
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// BlockChain digests one rank's records into chained blocks: block k covers
// records [k*DigestBlock, min((k+1)*DigestBlock, n)) and its digest is
// H(prev-block digest ‖ canonical records of block k). Equal chain prefixes
// therefore certify byte-equal record prefixes, which is what lets the
// verdict cache trust an old verdict for work entirely below the first
// diverging block.
func BlockChain(recs []Record) [][sha256.Size]byte {
	nblocks := (len(recs) + DigestBlock - 1) / DigestBlock
	chain := make([][sha256.Size]byte, 0, nblocks)
	var prev [sha256.Size]byte
	var buf []byte
	for lo := 0; lo < len(recs); lo += DigestBlock {
		hi := lo + DigestBlock
		if hi > len(recs) {
			hi = len(recs)
		}
		h := sha256.New()
		h.Write(prev[:])
		for i := lo; i < hi; i++ {
			buf = AppendRecordKey(buf[:0], &recs[i])
			h.Write(buf)
		}
		h.Sum(prev[:0])
		chain = append(chain, prev)
	}
	return chain
}

// ChainBuilder computes BlockChain incrementally, one record batch at a
// time, so the cache path can digest a streamed trace in the pass that feeds
// analysis instead of re-materializing the rank to hand BlockChain a slice.
// Feeding it a rank's records in order — in any batch partitioning — yields
// exactly BlockChain of the concatenation. The zero value is ready to use.
type ChainBuilder struct {
	chain [][sha256.Size]byte
	prev  [sha256.Size]byte
	h     hash.Hash // open block; nil exactly when at a block boundary
	n     int       // records in the open block
	count int
	buf   []byte
}

// Add feeds the next records of the rank into the chain.
func (b *ChainBuilder) Add(recs []Record) {
	for i := range recs {
		if b.h == nil {
			b.h = sha256.New()
			b.h.Write(b.prev[:])
		}
		b.buf = AppendRecordKey(b.buf[:0], &recs[i])
		b.h.Write(b.buf)
		b.n++
		b.count++
		if b.n == DigestBlock {
			b.h.Sum(b.prev[:0])
			b.chain = append(b.chain, b.prev)
			b.h, b.n = nil, 0
		}
	}
}

// Records returns how many records have been added.
func (b *ChainBuilder) Records() int { return b.count }

// Chain returns the block chain of everything added so far, sealing a
// partial final block without disturbing the builder: Add may continue
// afterwards (a later Chain call re-seals the then-current partial block).
func (b *ChainBuilder) Chain() [][sha256.Size]byte {
	out := make([][sha256.Size]byte, len(b.chain), len(b.chain)+1)
	copy(out, b.chain)
	if b.n > 0 {
		var d [sha256.Size]byte
		b.h.Sum(d[:0]) // Sum appends without consuming the running state
		out = append(out, d)
	}
	return out
}

// BlobDigests digests an uncompressed encoded trace per rank without
// decoding it: each rank's digest covers the raw bytes of its record spans
// (via Layout), so storage-side tooling can detect which ranks of an
// archived trace changed — or deduplicate identical ones — straight from the
// blob. The digests commit to the encoded representation, not the canonical
// record encoding above; the two identify the same content but are not
// interchangeable.
func BlobDigests(data []byte) ([][sha256.Size]byte, error) {
	spans, err := Layout(data)
	if err != nil {
		return nil, err
	}
	nranks := 0
	for _, s := range spans {
		if s.Name == "record" && s.Rank >= nranks {
			nranks = s.Rank + 1
		}
	}
	hs := make([]hash.Hash, nranks)
	for i := range hs {
		hs[i] = sha256.New()
	}
	// Layout emits record spans in stream order: rank-major, ascending
	// record index — the canonical order the digest commits to.
	for _, s := range spans {
		if s.Name != "record" || s.Rank < 0 {
			continue
		}
		hs[s.Rank].Write(data[s.Start:s.End])
	}
	out := make([][sha256.Size]byte, nranks)
	for i, h := range hs {
		h.Sum(out[i][:0])
	}
	return out, nil
}

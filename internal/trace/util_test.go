package trace

import "os"

func removeFile(path string) error { return os.Remove(path) }

package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"verifyio/internal/obs"
)

// Streaming, bounded-memory trace ingestion.
//
// The materializing decoders (Decode, ReadDir) hold every record of every
// rank resident before analysis starts, so peak memory is O(trace size). The
// Stream below is the pull-based alternative: it yields per-rank record
// batches in rank-major order, each batch bounded by a byte window, with an
// explicit Release that returns the batch buffer to the stream's pool. A
// consumer that releases each batch after processing it keeps peak decoded
// memory bounded by the window (plus the current file's string table), not by
// the trace.
//
// Both decoders share one record-decoding core (payloadStream), so streaming
// and materializing ingestion are behaviorally identical: the same Limits
// bound every allocation, the same DecodeErrors classify every failure, and
// tolerate-mode salvage keeps exactly the same per-rank prefixes with the
// same DecodeStats. ReadDirWithOptions is a thin wrapper that drains a
// Stream with an unbounded window.

// DefaultWindowBytes is the decoded-cost budget of one batch when
// StreamOptions.WindowBytes is zero: enough to amortize per-batch overhead,
// small enough that a multi-GB trace never has more than a few MB of records
// resident.
const DefaultWindowBytes = 4 << 20

// WindowUnbounded disables batch windowing: each rank arrives as a single
// batch (the materializing wrapper uses this to preserve its one-allocation-
// per-rank profile).
const WindowUnbounded = -1

// StreamOptions controls streaming ingestion. DecodeOptions (Limits,
// Tolerate, Obs) mean exactly what they mean for the materializing decoders.
type StreamOptions struct {
	DecodeOptions
	// WindowBytes bounds the decoded cost of one batch, in the same units
	// the payload budget (Limits.MaxPayload) is charged: string bytes plus
	// per-entity bookkeeping overhead. Zero selects DefaultWindowBytes;
	// WindowUnbounded (or any negative value) disables windowing.
	WindowBytes int64
}

// Batch is one contiguous run of a single rank's records, in program order.
// Recs[i].Seq == Start+i. The batch's buffer belongs to the Stream: call
// Release when done with it (and do not retain Recs after), or keep the
// records and never release — but not both.
type Batch struct {
	Rank  int
	Start int
	Recs  []Record

	cost int64
	s    *Stream
}

// Release returns the batch buffer to the stream's pool and credits its cost
// against the resident-bytes accounting.
//
// The pool contract for consumers (the analysis stages, the DFG builder):
// copy out anything you need before releasing — the buffer is recycled for
// a later batch, so retained Recs are silently overwritten. Release is
// idempotent: the first call severs the batch from its stream, so a second
// call is a no-op rather than a double-free (the buffer can never be pushed
// into the pool twice, and the resident accounting is credited exactly
// once).
func (b *Batch) Release() {
	if b == nil || b.s == nil {
		return
	}
	s := b.s
	s.resident -= b.cost
	if cap(b.Recs) > 0 {
		s.pool = append(s.pool, b.Recs[:0])
	}
	b.s = nil
	b.Recs = nil
}

// Stream decodes a trace incrementally, yielding per-rank record batches in
// rank-major order (all of rank 0's batches, then rank 1's, ...). It is not
// safe for concurrent use.
type Stream struct {
	opts   StreamOptions
	window int64

	// Single-reader mode (NewStream): one payload carrying every rank.
	single *streamSource

	// Directory mode (OpenStream): one single-rank file per world rank.
	dir      string
	names    map[int]string // world rank -> file name (parseable names only)
	order    []int          // ranks with readable files, ascending
	idx      int            // next index into order
	failed   map[int]error  // tolerate: files that salvaged nothing
	cur      *streamSource
	curRank  int
	rankSpan *obs.Span

	nranks int
	meta   map[string]string // trace-level meta (verifyio.* keys stripped)
	counts []int             // per-world-rank emitted record counts
	stats  *DecodeStats
	done   bool

	oc   obs.Ctx
	span *obs.Span // directory mode: the "read-trace" span

	resident int64
	peak     int64
	pool     [][]Record

	err    error // sticky failure
	closed bool
}

// streamSource is one open payload being decoded.
type streamSource struct {
	f  *os.File // nil in single-reader mode
	fr io.ReadCloser
	d  *decoder
	ps *payloadStream
}

func (src *streamSource) close() {
	if src.fr != nil {
		src.fr.Close()
		src.fr = nil
	}
	if src.f != nil {
		src.f.Close()
		src.f = nil
	}
}

// NewStream starts streaming one encoded trace stream (the format Encode
// writes). Batches cover every rank the stream declares, in rank-major
// order. Header, metadata, or string-table damage fails here; later damage
// surfaces from Next exactly as DecodeWithOptions would report it.
func NewStream(r io.Reader, opts StreamOptions) (*Stream, error) {
	src, err := openSource(r, opts.DecodeOptions)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		opts:   opts,
		window: resolveWindow(opts.WindowBytes),
		single: src,
		nranks: src.ps.nranks,
		meta:   src.ps.meta,
		counts: make([]int, src.ps.nranks),
		oc:     opts.Obs,
	}
	s.setWindowGauge()
	return s, nil
}

// OpenStream starts streaming a trace directory written by WriteDir: one
// batch run per world rank, ranks ascending. The directory's shape (rank
// count, missing files) is validated up front by decoding each file's
// metadata section; record damage surfaces from Next with the semantics of
// ReadDirWithOptions — strict mode fails, tolerate mode salvages per-rank
// prefixes and reports them in Stats.
func OpenStream(dir string, opts StreamOptions) (*Stream, error) {
	oc, span := opts.Obs.Start("read-trace", obs.String("dir", dir))
	span.SetCat("decode")
	s := &Stream{
		opts:    opts,
		window:  resolveWindow(opts.WindowBytes),
		dir:     dir,
		names:   make(map[int]string),
		failed:  make(map[int]error),
		curRank: -1,
		meta:    make(map[string]string),
		oc:      oc,
		span:    span,
	}
	if err := s.scanDir(); err != nil {
		span.End()
		return nil, err
	}
	s.setWindowGauge()
	return s, nil
}

func resolveWindow(w int64) int64 {
	switch {
	case w == 0:
		return DefaultWindowBytes
	case w < 0:
		return 0 // unbounded
	default:
		return w
	}
}

func (s *Stream) setWindowGauge() {
	if s.window > 0 {
		s.oc.R.Gauge("decode.window_bytes").Set(s.window)
	}
}

// scanDir enumerates the rank files and decodes each one's metadata section
// (a few bytes per file) to resolve the world rank count and run the strict
// completeness checks before any records decode.
func (s *Stream) scanDir() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	maxRank := -1
	for _, e := range entries {
		var rank int
		if _, err := fmt.Sscanf(e.Name(), "rank-%d.viot", &rank); err != nil {
			continue
		}
		s.names[rank] = e.Name()
		if rank > maxRank {
			maxRank = rank
		}
	}
	nranks := -1
	readable := 0
	ranks := make([]int, 0, len(s.names))
	for rank := range s.names {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		meta, err := s.prescanFile(s.names[rank])
		if err != nil {
			if de, ok := AsDecodeError(err); ok && de.Rank == 0 {
				de.Rank = rank
			}
			if !s.opts.Tolerate {
				return fmt.Errorf("trace: %s: %w", s.names[rank], err)
			}
			s.failed[rank] = err
			continue
		}
		readable++
		if rank >= 0 {
			s.order = append(s.order, rank)
		}
		if n := meta["verifyio.nranks"]; n != "" {
			fmt.Sscanf(n, "%d", &nranks)
		}
		if rank == 0 {
			for k, v := range meta {
				switch k {
				case "verifyio.rank", "verifyio.nranks":
				default:
					s.meta[k] = v
				}
			}
		}
	}
	if readable == 0 && len(s.failed) == 0 {
		return fmt.Errorf("trace: no rank files in %s", s.dir)
	}
	if nranks < 0 || (s.opts.Tolerate && maxRank+1 > nranks) {
		nranks = maxRank + 1
	}
	// The rank count came from file names and metadata — input, not ground
	// truth. Bound it like any other decoded count.
	if lim := s.opts.Limits.withDefaults(); nranks > lim.MaxRanks {
		if !s.opts.Tolerate {
			return &DecodeError{
				Kind: LimitExceeded, Section: "directory", Rank: -1, Record: -1,
				Err: fmt.Errorf("rank count %d exceeds limit %d", nranks, lim.MaxRanks),
			}
		}
		nranks = lim.MaxRanks
	}
	if !s.opts.Tolerate {
		if readable != nranks {
			return fmt.Errorf("trace: directory holds %d rank files, metadata says %d ranks", readable, nranks)
		}
		for rank := 0; rank < nranks; rank++ {
			if _, ok := s.names[rank]; !ok {
				return fmt.Errorf("trace: missing rank file for rank %d", rank)
			}
		}
	}
	s.nranks = nranks
	s.counts = make([]int, nranks)
	// Drop files beyond the resolved rank count (a clamped tolerate run).
	for len(s.order) > 0 && s.order[len(s.order)-1] >= nranks {
		s.order = s.order[:len(s.order)-1]
	}
	return nil
}

// prescanFile decodes the header and metadata section of one rank file.
func (s *Stream) prescanFile(name string) (map[string]string, error) {
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, fr, err := openPayload(f)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		defer fr.Close()
	}
	d := newDecoder(payload, s.opts.Limits, false)
	return d.decodeMetaSection()
}

// openSource opens one encoded stream: header checks, decompression, and the
// eager sections (metadata, string table, rank count).
func openSource(r io.Reader, opts DecodeOptions) (*streamSource, error) {
	payload, fr, err := openPayload(r)
	if err != nil {
		return nil, err
	}
	d := newDecoder(payload, opts.Limits, false)
	ps, err := newPayloadStream(d, opts.Tolerate)
	if err != nil {
		if fr != nil {
			fr.Close()
		}
		return nil, err
	}
	return &streamSource{fr: fr, d: d, ps: ps}, nil
}

// NumRanks returns the world rank count (known before any batch decodes).
func (s *Stream) NumRanks() int { return s.nranks }

// Meta returns the trace-level metadata (directory mode: rank 0's file,
// minus the verifyio.* bookkeeping keys — what the materialized Trace.Meta
// holds).
func (s *Stream) Meta() map[string]string { return s.meta }

// Counts returns the per-rank emitted record counts so far; after Next has
// returned io.EOF it is the full per-rank record count of the trace.
func (s *Stream) Counts() []int { return s.counts }

// Stats returns the tolerate-mode salvage stats. It is only complete after
// Next has returned io.EOF.
func (s *Stream) Stats() *DecodeStats {
	if s.stats == nil {
		return &DecodeStats{}
	}
	return s.stats
}

// Next returns the next batch, or io.EOF when the trace is exhausted (after
// which Stats and Counts are final). Errors are classified like the
// materializing decoders'; after an error the stream is dead.
func (s *Stream) Next() (*Batch, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, errors.New("trace: stream closed")
	}
	if s.done {
		return nil, io.EOF
	}
	var b *Batch
	var err error
	if s.single != nil {
		b, err = s.nextSingle()
	} else {
		b, err = s.nextDir()
	}
	if err != nil {
		if err != io.EOF {
			s.err = err
		} else {
			s.done = true
			s.finalize()
		}
		return nil, err
	}
	s.counts[b.Rank] += len(b.Recs)
	s.resident += b.cost
	if s.resident > s.peak {
		s.peak = s.resident
	}
	return b, nil
}

func (s *Stream) nextSingle() (*Batch, error) {
	src := s.single
	for {
		b, err := src.ps.nextBatch(s.takeBuf(), s.window)
		if err == io.EOF {
			stats, ferr := src.ps.finish()
			if ferr == nil && !s.opts.Tolerate {
				ferr = src.d.checkTrailer(src.fr)
			}
			if ferr != nil {
				return nil, ferr
			}
			s.stats = stats
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if len(b.recs) == 0 {
			continue
		}
		return &Batch{Rank: b.rank, Start: b.start, Recs: b.recs, cost: b.cost, s: s}, nil
	}
}

func (s *Stream) nextDir() (*Batch, error) {
	for {
		if s.cur == nil {
			if s.idx >= len(s.order) {
				s.finishDirStats()
				return nil, io.EOF
			}
			rank := s.order[s.idx]
			s.idx++
			if err := s.openRank(rank); err != nil {
				if !s.opts.Tolerate {
					return nil, err
				}
				continue // recorded in failed[rank]
			}
		}
		b, err := s.cur.ps.nextBatch(s.takeBuf(), s.window)
		if err == io.EOF {
			if err := s.closeRank(); err != nil {
				return nil, err
			}
			continue
		}
		if err != nil {
			// Tolerate-mode record damage is salvaged inside nextBatch, so
			// an error here is strict mode failing — name the file, remap
			// the in-file rank to the world rank, and stop.
			s.remapErr(err, s.curRank)
			return nil, fmt.Errorf("trace: %s: %w", s.names[s.curRank], err)
		}
		// Each file is a single-rank trace; batches for any other in-file
		// rank are decoded (for error fidelity) but not part of the world
		// trace.
		if b.rank != 0 {
			if cap(b.recs) > 0 {
				s.pool = append(s.pool, b.recs[:0])
			}
			continue
		}
		if len(b.recs) == 0 {
			continue
		}
		for i := range b.recs {
			b.recs[i].Rank = s.curRank
		}
		return &Batch{Rank: s.curRank, Start: b.start, Recs: b.recs, cost: b.cost, s: s}, nil
	}
}

// openRank opens the rank's file and decodes its eager sections. Failures in
// tolerate mode are recorded (the rank salvages nothing) and reported as a
// nil source.
func (s *Stream) openRank(rank int) error {
	name := s.names[rank]
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		if s.opts.Tolerate {
			s.failed[rank] = err
			return err
		}
		return err
	}
	_, rankSpan := s.oc.Start("read-rank", obs.Int("rank", rank))
	src, err := openSource(f, s.opts.DecodeOptions)
	if err != nil {
		rankSpan.End()
		f.Close()
		s.remapErr(err, rank)
		if s.opts.Tolerate {
			s.failed[rank] = err
			return err
		}
		return fmt.Errorf("trace: %s: %w", name, err)
	}
	src.f = f
	s.cur, s.curRank, s.rankSpan = src, rank, rankSpan
	return nil
}

// closeRank finishes the current rank file: salvage stats, strict trailer
// checks, span end.
func (s *Stream) closeRank() error {
	src, rank := s.cur, s.curRank
	stats, ferr := src.ps.finish()
	if ferr == nil && !s.opts.Tolerate {
		ferr = src.d.checkTrailer(src.fr)
	}
	src.close()
	s.rankSpan.End()
	s.cur, s.curRank, s.rankSpan = nil, -1, nil
	if ferr != nil {
		// finish only fails in strict mode (tolerate salvages).
		s.remapErr(ferr, rank)
		return fmt.Errorf("trace: %s: %w", s.names[rank], ferr)
	}
	// The file's salvage stats are for its in-file ranks; report the world
	// rank the file name declares.
	if s.stats == nil {
		s.stats = &DecodeStats{}
	}
	for _, rr := range stats.Ranks {
		s.remapErr(rr.Err, rank)
		rr.Rank = rank
		s.stats.Ranks = append(s.stats.Ranks, rr)
	}
	return nil
}

// remapErr rewrites a single-rank file's in-file rank 0 to the world rank.
func (s *Stream) remapErr(err error, rank int) {
	if de, ok := AsDecodeError(err); ok && de.Rank == 0 {
		de.Rank = rank
	}
}

// finishDirStats adds the entries for ranks that contributed nothing: files
// that failed to open or decode, and ranks with no file at all.
func (s *Stream) finishDirStats() {
	if s.stats == nil {
		s.stats = &DecodeStats{}
	}
	if s.opts.Tolerate {
		present := make(map[int]bool, len(s.order))
		for _, r := range s.order {
			if s.failed[r] == nil {
				present[r] = true
			}
		}
		for rank := 0; rank < s.nranks; rank++ {
			if present[rank] {
				continue
			}
			err := s.failed[rank]
			if err == nil {
				err = &DecodeError{
					Kind: Truncated, Section: "directory",
					Rank: rank, Record: -1,
					Err: errors.New("missing rank file"),
				}
			}
			s.stats.Ranks = append(s.stats.Ranks, RankRecovery{Rank: rank, Salvaged: 0, Dropped: -1, Err: err})
		}
	}
	sort.Slice(s.stats.Ranks, func(i, j int) bool { return s.stats.Ranks[i].Rank < s.stats.Ranks[j].Rank })
}

// finalize publishes the end-of-stream telemetry and ends the read-trace
// span.
func (s *Stream) finalize() {
	if r := s.oc.R; r != nil {
		decoded := 0
		for _, n := range s.counts {
			decoded += n
		}
		r.Counter("trace.records_decoded").Add(int64(decoded))
		r.Counter("trace.ranks_salvaged").Add(int64(len(s.Stats().Ranks)))
		r.Counter("trace.records_salvaged").Add(int64(s.Stats().Salvaged()))
		dropped, _ := s.Stats().Dropped()
		r.Counter("trace.records_dropped").Add(int64(dropped))
		r.Gauge("decode.peak_resident_bytes").SetMax(s.peak)
	}
	if s.span != nil {
		s.span.End()
		s.span = nil
	}
}

// PeakResidentBytes reports the high-water mark of unreleased batch cost —
// the quantity the decode.peak_resident_bytes gauge exports.
func (s *Stream) PeakResidentBytes() int64 { return s.peak }

// Close releases the stream's resources. It is idempotent; a stream that
// already returned io.EOF needs no Close but tolerates one.
func (s *Stream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur != nil {
		s.cur.close()
		s.rankSpan.End()
		s.cur, s.rankSpan = nil, nil
	}
	if s.single != nil {
		s.single.close()
		s.single = nil
	}
	if r := s.oc.R; r != nil {
		r.Gauge("decode.peak_resident_bytes").SetMax(s.peak)
	}
	if s.span != nil {
		s.span.End()
		s.span = nil
	}
	return nil
}

func (s *Stream) takeBuf() []Record {
	if n := len(s.pool); n > 0 {
		buf := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return buf
	}
	return nil
}

// ---------------------------------------------------------------------------
// payloadStream: the shared incremental record-decoding core.

// rawBatch is one decoded run of records before any world-rank renumbering.
type rawBatch struct {
	rank  int
	start int
	recs  []Record
	cost  int64
}

type pendingTrim struct{ rank, keep, total int }

// payloadStream decodes the payload of one encoded trace incrementally. It
// is the single implementation behind both the materializing decodeTrace and
// the streaming API: newPayloadStream eagerly decodes the metadata, string
// table, and rank count; nextBatch then decodes records on demand; finish
// runs the deferred validation and assembles the salvage stats.
type payloadStream struct {
	d        *decoder
	tolerate bool

	meta   map[string]string
	strs   []string
	str    func(uint64) (string, error)
	nranks int

	// Cursor state for the records section.
	rank    int  // current rank; nranks once the section is exhausted
	inRank  bool // the current rank's record count has been read
	nrec    int
	next    int // next record index within the current rank
	lastRet int64

	// Incremental trace-invariant tracking — the streaming equivalent of
	// validRecordPrefix: records at or past the first violating index are
	// decoded (offsets, budget, and later errors must match the
	// materializing path) but never emitted.
	validRet int64
	cut      int // first invariant-violating index of this rank, -1 if none

	// Strict mode: the first invariant violation anywhere, reported from
	// finish exactly as Trace.Validate would after a full decode.
	violation error

	entries []RankRecovery // decode-failure salvage entries (tolerate)
	trims   []pendingTrim  // deferred invariant-trim entries (tolerate)
	damaged map[int]bool
	done    bool
}

// newPayloadStream decodes the eager sections. Damage here fails in both
// modes: nothing downstream is interpretable without them.
func newPayloadStream(d *decoder, tolerate bool) (*payloadStream, error) {
	ps := &payloadStream{d: d, tolerate: tolerate}
	if tolerate {
		ps.damaged = make(map[int]bool)
	}
	var err error
	if ps.meta, err = d.decodeMetaSection(); err != nil {
		return nil, err
	}

	d.section = "string-table"
	sectionStart := d.off
	nstrs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nstrs > uint64(d.lim.MaxStrings) {
		return nil, d.fail(LimitExceeded, fmt.Errorf("string table size %d exceeds limit %d", nstrs, d.lim.MaxStrings))
	}
	d.span("string-count", -1, -1, sectionStart)
	strs := make([]string, 0, capHint(nstrs, d.hintMax(stringOverhead, 1<<16)))
	for i := uint64(0); i < nstrs; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		strs = append(strs, s)
	}
	d.span("string-table", -1, -1, sectionStart)
	ps.strs = strs
	ps.str = func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", d.fail(Corrupt, fmt.Errorf("string index %d out of table (%d entries)", i, len(strs)))
		}
		return strs[i], nil
	}

	d.section = "records"
	sectionStart = d.off
	nranks, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nranks > uint64(d.lim.MaxRanks) {
		return nil, d.fail(LimitExceeded, fmt.Errorf("rank count %d exceeds limit %d", nranks, d.lim.MaxRanks))
	}
	if err := d.charge(int64(nranks) * rankOverhead); err != nil {
		return nil, err
	}
	d.span("nranks", -1, -1, sectionStart)
	ps.nranks = int(nranks)
	return ps, nil
}

// markLost records that every rank from `from` on is gone with its record
// count unknown (the stream is unsyncable past the cut).
func (ps *payloadStream) markLost(from int, err error) {
	for r := from; r < ps.nranks; r++ {
		ps.entries = append(ps.entries, RankRecovery{Rank: r, Salvaged: 0, Dropped: -1, Err: err})
		ps.damaged[r] = true
	}
}

// nextBatch decodes records into buf (reused when non-nil) until the decoded
// cost reaches maxCost or the current rank's records end; batches never span
// ranks, so with maxCost <= 0 each rank arrives as one batch. It returns
// io.EOF once the records section is exhausted; the caller must then call
// finish (and, in strict mode, the trailer checks). In tolerate mode record
// damage never surfaces as an error: the partial batch holding the salvaged
// tail is returned and the next call reports io.EOF.
func (ps *payloadStream) nextBatch(buf []Record, maxCost int64) (rawBatch, error) {
	d := ps.d
	for {
		if ps.done {
			return rawBatch{}, io.EOF
		}
		if !ps.inRank {
			if ps.rank >= ps.nranks {
				ps.done = true
				d.rank, d.record = -1, -1
				return rawBatch{}, io.EOF
			}
			d.rank, d.record = ps.rank, -1
			countStart := d.off
			nrec, err := d.uvarint()
			if err == nil && nrec > uint64(d.lim.MaxRecords) {
				err = d.fail(LimitExceeded, fmt.Errorf("record count %d exceeds limit %d", nrec, d.lim.MaxRecords))
			}
			if err != nil {
				if ps.tolerate {
					ps.markLost(ps.rank, err)
					ps.done = true
					d.rank, d.record = -1, -1
					return rawBatch{}, io.EOF
				}
				return rawBatch{}, err
			}
			d.span("rank-count", ps.rank, -1, countStart)
			ps.inRank = true
			ps.nrec = int(nrec)
			ps.next = 0
			ps.lastRet = 0
			ps.validRet = -1
			ps.cut = -1
		}
		b := rawBatch{rank: ps.rank, start: ps.next}
		if buf != nil {
			b.recs = buf[:0]
			buf = nil
		} else if left := ps.nrec - ps.next; left > 0 {
			hint := capHint(uint64(left), d.hintMax(recordOverhead, 1<<14))
			if maxCost > 0 {
				if w := int(maxCost/recordOverhead) + 1; w < hint {
					hint = w
				}
			}
			b.recs = make([]Record, 0, hint)
		}
		for ps.next < ps.nrec {
			d.record = ps.next
			recStart := d.off
			budget0 := d.budget
			rec, err := d.decodeRecord(ps.str, ps.rank, ps.next, &ps.lastRet)
			if err != nil {
				if !ps.tolerate {
					return rawBatch{}, err
				}
				keep := ps.next
				if ps.cut >= 0 {
					keep = ps.cut
				}
				ps.entries = append(ps.entries, RankRecovery{
					Rank: ps.rank, Salvaged: keep, Dropped: ps.nrec - keep, Err: err,
				})
				ps.damaged[ps.rank] = true
				ps.markLost(ps.rank+1, err)
				ps.done = true
				d.rank, d.record = -1, -1
				if len(b.recs) > 0 {
					return b, nil
				}
				return rawBatch{}, io.EOF
			}
			cost := budget0 - d.budget
			d.span("record", ps.rank, ps.next, recStart)
			ps.next++
			if ps.cut < 0 {
				if rec.Ret <= ps.validRet || rec.Ret < rec.Tick || rec.Tick < 0 {
					ps.cut = ps.next - 1
					if !ps.tolerate && ps.violation == nil {
						ps.violation = invariantError(ps.rank, ps.next-1, &rec, ps.validRet)
					}
				} else {
					ps.validRet = rec.Ret
					b.recs = append(b.recs, rec)
					b.cost += cost
				}
			}
			if maxCost > 0 && b.cost >= maxCost {
				break
			}
		}
		if ps.next >= ps.nrec {
			// Rank finished cleanly; a rank that decoded records violating
			// the invariants is trimmed — deferred so the stats entry can
			// carry the final payload offset, as the materializing trim
			// pass does.
			d.record = -1
			if ps.tolerate && ps.cut >= 0 && !ps.damaged[ps.rank] {
				ps.trims = append(ps.trims, pendingTrim{rank: ps.rank, keep: ps.cut, total: ps.nrec})
			}
			ps.rank++
			ps.inRank = false
		}
		if len(b.recs) > 0 {
			return b, nil
		}
	}
}

// finish completes the payload decode: strict mode reports the deferred
// invariant violation the way Trace.Validate would; tolerate mode assembles
// the salvage stats (decode-failure entries plus invariant trims), sorted by
// rank. Call only after nextBatch returned io.EOF.
func (ps *payloadStream) finish() (*DecodeStats, error) {
	d := ps.d
	if !ps.tolerate {
		if ps.violation != nil {
			d.section = "validate"
			return nil, d.fail(Corrupt, ps.violation)
		}
		return &DecodeStats{}, nil
	}
	stats := &DecodeStats{Ranks: ps.entries}
	for _, tr := range ps.trims {
		verr := &DecodeError{
			Kind: Corrupt, Section: "validate",
			Rank: tr.rank, Record: tr.keep, Offset: d.off,
			Err: errors.New("record violates trace invariants"),
		}
		stats.Ranks = append(stats.Ranks, RankRecovery{
			Rank: tr.rank, Salvaged: tr.keep, Dropped: tr.total - tr.keep, Err: verr,
		})
	}
	sort.Slice(stats.Ranks, func(i, j int) bool { return stats.Ranks[i].Rank < stats.Ranks[j].Rank })
	return stats, nil
}

// invariantError reproduces the Trace.Validate message for the first
// violating record (decoding guarantees the structural fields, so only the
// timestamp invariants can fail here).
func invariantError(rank, seq int, rec *Record, lastRet int64) error {
	switch {
	case rec.Ret <= lastRet:
		return fmt.Errorf("trace: rank %d record %d return tick %d not increasing (prev %d)", rank, seq, rec.Ret, lastRet)
	case rec.Ret < rec.Tick:
		return fmt.Errorf("trace: rank %d record %d returns (%d) before entry (%d)", rank, seq, rec.Ret, rec.Tick)
	default:
		return fmt.Errorf("trace: rank %d record %d negative entry tick %d", rank, seq, rec.Tick)
	}
}

package trace

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Binary trace format.
//
// Recorder stores traces compactly (the paper keeps Recorder's compression
// unchanged in Recorder⁺). We mirror that with a simple self-contained
// format: a header, a string table (function names, layers and arguments are
// highly repetitive across records), then per-rank record streams with
// varint-encoded fields, optionally DEFLATE-compressed.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "VIOT"            (4 bytes)
//	version byte              (currently 1)
//	flags   byte              (bit 0: payload is flate-compressed)
//	payload:
//	  nmeta, then nmeta × (string key, string value)
//	  nstrings, then nstrings × (len, bytes)   -- string table
//	  nranks
//	  per rank: nrecords, then records
//
// Every string inside a record is a string-table index. Record fields are
// delta-encoded where they are monotonic (Seq is implicit, Tick is a delta).

const (
	magic        = "VIOT"
	formatVer    = 1
	flagCompress = 1
)

// EncodeOptions controls trace serialization.
type EncodeOptions struct {
	// Compress enables DEFLATE compression of the payload. On by default
	// via DefaultEncodeOptions.
	Compress bool
}

// DefaultEncodeOptions matches Recorder's default (compression on).
func DefaultEncodeOptions() EncodeOptions { return EncodeOptions{Compress: true} }

// Encode writes t to w.
func Encode(w io.Writer, t *Trace, opts EncodeOptions) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to encode invalid trace: %w", err)
	}
	hdr := [6]byte{magic[0], magic[1], magic[2], magic[3], formatVer, 0}
	if opts.Compress {
		hdr[5] |= flagCompress
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var payload io.Writer = w
	var fw *flate.Writer
	if opts.Compress {
		var err error
		fw, err = flate.NewWriter(w, flate.DefaultCompression)
		if err != nil {
			return err
		}
		payload = fw
	}
	bw := bufio.NewWriter(payload)
	if err := encodePayload(bw, t); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if fw != nil {
		return fw.Close()
	}
	return nil
}

func encodePayload(w *bufio.Writer, t *Trace) error {
	// Build the string table.
	table := make(map[string]uint64)
	var strs []string
	intern := func(s string) uint64 {
		if i, ok := table[s]; ok {
			return i
		}
		i := uint64(len(strs))
		table[s] = i
		strs = append(strs, s)
		return i
	}
	for _, rs := range t.Ranks {
		for i := range rs {
			r := &rs[i]
			intern(r.Func)
			intern(r.Site)
			for _, a := range r.Args {
				intern(a)
			}
			for _, c := range r.Chain {
				intern(c)
			}
		}
	}
	metaKeys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)

	putUvarint(w, uint64(len(metaKeys)))
	for _, k := range metaKeys {
		putString(w, k)
		putString(w, t.Meta[k])
	}
	putUvarint(w, uint64(len(strs)))
	for _, s := range strs {
		putString(w, s)
	}
	putUvarint(w, uint64(len(t.Ranks)))
	for _, rs := range t.Ranks {
		putUvarint(w, uint64(len(rs)))
		lastRet := int64(0)
		for i := range rs {
			r := &rs[i]
			putUvarint(w, table[r.Func])
			w.WriteByte(byte(r.Layer))
			putUvarint(w, uint64(r.Depth))
			putUvarint(w, uint64(r.Ret-lastRet))
			putUvarint(w, uint64(r.Ret-r.Tick))
			lastRet = r.Ret
			putUvarint(w, table[r.Site])
			putUvarint(w, uint64(len(r.Args)))
			for _, a := range r.Args {
				putUvarint(w, table[a])
			}
			for _, c := range r.Chain {
				putUvarint(w, table[c])
			}
		}
	}
	return nil
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, errors.New("trace: bad magic, not a VerifyIO trace")
	}
	if hdr[4] != formatVer {
		return nil, fmt.Errorf("trace: unsupported format version %d", hdr[4])
	}
	var payload io.Reader = r
	if hdr[5]&flagCompress != 0 {
		fr := flate.NewReader(r)
		defer fr.Close()
		payload = fr
	}
	return decodePayload(bufio.NewReader(payload))
}

func decodePayload(br *bufio.Reader) (*Trace, error) {
	nmeta, err := getUvarint(br)
	if err != nil {
		return nil, err
	}
	meta := make(map[string]string, nmeta)
	for i := uint64(0); i < nmeta; i++ {
		k, err := getString(br)
		if err != nil {
			return nil, err
		}
		v, err := getString(br)
		if err != nil {
			return nil, err
		}
		meta[k] = v
	}
	nstrs, err := getUvarint(br)
	if err != nil {
		return nil, err
	}
	if nstrs > math.MaxInt32 {
		return nil, fmt.Errorf("trace: implausible string table size %d", nstrs)
	}
	strs := make([]string, nstrs)
	for i := range strs {
		if strs[i], err = getString(br); err != nil {
			return nil, err
		}
	}
	str := func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", fmt.Errorf("trace: string index %d out of table (%d entries)", i, len(strs))
		}
		return strs[i], nil
	}
	nranks, err := getUvarint(br)
	if err != nil {
		return nil, err
	}
	if nranks > 1<<20 {
		return nil, fmt.Errorf("trace: implausible rank count %d", nranks)
	}
	t := New(int(nranks))
	t.Meta = meta
	for rank := 0; rank < int(nranks); rank++ {
		nrec, err := getUvarint(br)
		if err != nil {
			return nil, err
		}
		if nrec > math.MaxInt32 {
			return nil, fmt.Errorf("trace: implausible record count %d", nrec)
		}
		if nrec == 0 {
			continue
		}
		recs := make([]Record, nrec)
		lastRet := int64(0)
		for i := range recs {
			rec := &recs[i]
			rec.Rank = rank
			rec.Seq = i
			fi, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			if rec.Func, err = str(fi); err != nil {
				return nil, err
			}
			lb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			rec.Layer = Layer(lb)
			depth, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			rec.Depth = int(depth)
			dt, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			rec.Ret = lastRet + int64(dt)
			dr, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			rec.Tick = rec.Ret - int64(dr)
			lastRet = rec.Ret
			si, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			if rec.Site, err = str(si); err != nil {
				return nil, err
			}
			nargs, err := getUvarint(br)
			if err != nil {
				return nil, err
			}
			if nargs > 1<<16 {
				return nil, fmt.Errorf("trace: implausible arg count %d", nargs)
			}
			if nargs > 0 {
				rec.Args = make([]string, nargs)
				for a := range rec.Args {
					ai, err := getUvarint(br)
					if err != nil {
						return nil, err
					}
					if rec.Args[a], err = str(ai); err != nil {
						return nil, err
					}
				}
			}
			if rec.Depth > 0 {
				rec.Chain = make([]string, rec.Depth)
				for c := range rec.Chain {
					ci, err := getUvarint(br)
					if err != nil {
						return nil, err
					}
					if rec.Chain[c], err = str(ci); err != nil {
						return nil, err
					}
				}
			}
		}
		t.Ranks[rank] = recs
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded trace is invalid: %w", err)
	}
	return t, nil
}

// WriteDir stores the trace as a directory: one file per rank plus metadata,
// the on-disk layout Recorder uses (one stream per process).
func WriteDir(dir string, t *Trace, opts EncodeOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Each rank file is a complete single-rank trace; metadata travels in
	// rank 0's file plus a rank-count entry.
	for rank, rs := range t.Ranks {
		sub := New(1)
		sub.Ranks[0] = renumber(rs, 0)
		if rank == 0 {
			for k, v := range t.Meta {
				sub.Meta[k] = v
			}
		}
		sub.Meta["verifyio.rank"] = fmt.Sprint(rank)
		sub.Meta["verifyio.nranks"] = fmt.Sprint(len(t.Ranks))
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("rank-%d.viot", rank)))
		if err != nil {
			return err
		}
		if err := Encode(f, sub, opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads a trace directory written by WriteDir.
func ReadDir(dir string) (*Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byRank := make(map[int]*Trace)
	nranks := -1
	for _, e := range entries {
		var rank int
		if _, err := fmt.Sscanf(e.Name(), "rank-%d.viot", &rank); err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sub, err := Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", e.Name(), err)
		}
		if n := sub.Meta["verifyio.nranks"]; n != "" {
			fmt.Sscanf(n, "%d", &nranks)
		}
		byRank[rank] = sub
	}
	if len(byRank) == 0 {
		return nil, fmt.Errorf("trace: no rank files in %s", dir)
	}
	if nranks < 0 {
		nranks = len(byRank)
	}
	if len(byRank) != nranks {
		return nil, fmt.Errorf("trace: directory holds %d rank files, metadata says %d ranks", len(byRank), nranks)
	}
	t := New(nranks)
	for rank := 0; rank < nranks; rank++ {
		sub, ok := byRank[rank]
		if !ok {
			return nil, fmt.Errorf("trace: missing rank file for rank %d", rank)
		}
		t.Ranks[rank] = renumber(sub.Ranks[0], rank)
		if rank == 0 {
			for k, v := range sub.Meta {
				switch k {
				case "verifyio.rank", "verifyio.nranks":
				default:
					t.Meta[k] = v
				}
			}
		}
	}
	return t, nil
}

func renumber(rs []Record, rank int) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Rank = rank
		out[i].Seq = i
	}
	return out
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func getUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated varint: %w", err)
	}
	return v, nil
}

func getString(br *bufio.Reader) (string, error) {
	n, err := getUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("trace: truncated string: %w", err)
	}
	return string(buf), nil
}

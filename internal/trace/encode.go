package trace

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"verifyio/internal/obs"
)

// Binary trace format.
//
// Recorder stores traces compactly (the paper keeps Recorder's compression
// unchanged in Recorder⁺). We mirror that with a simple self-contained
// format: a header, a string table (function names, layers and arguments are
// highly repetitive across records), then per-rank record streams with
// varint-encoded fields, optionally DEFLATE-compressed.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "VIOT"            (4 bytes)
//	version byte              (currently 1)
//	flags   byte              (bit 0: payload is flate-compressed)
//	payload:
//	  nmeta, then nmeta × (string key, string value)
//	  nstrings, then nstrings × (len, bytes)   -- string table
//	  nranks
//	  per rank: nrecords, then records
//
// Every string inside a record is a string-table index. Record fields are
// delta-encoded where they are monotonic (Seq is implicit, Tick is a delta).
//
// Decoding never trusts the input: every count and length is bounded by
// Limits before allocation, failures are classified DecodeErrors carrying
// the payload offset, and DecodeOptions.Tolerate salvages the well-formed
// prefix of a damaged stream (see errors.go).

const (
	magic        = "VIOT"
	formatVer    = 1
	flagCompress = 1
)

// EncodeOptions controls trace serialization.
type EncodeOptions struct {
	// Compress enables DEFLATE compression of the payload. On by default
	// via DefaultEncodeOptions.
	Compress bool
}

// DefaultEncodeOptions matches Recorder's default (compression on).
func DefaultEncodeOptions() EncodeOptions { return EncodeOptions{Compress: true} }

// Encode writes t to w.
func Encode(w io.Writer, t *Trace, opts EncodeOptions) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to encode invalid trace: %w", err)
	}
	hdr := [6]byte{magic[0], magic[1], magic[2], magic[3], formatVer, 0}
	if opts.Compress {
		hdr[5] |= flagCompress
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var payload io.Writer = w
	var fw *flate.Writer
	if opts.Compress {
		var err error
		fw, err = flate.NewWriter(w, flate.DefaultCompression)
		if err != nil {
			return err
		}
		payload = fw
	}
	bw := bufio.NewWriter(payload)
	if err := encodePayload(bw, t); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if fw != nil {
		return fw.Close()
	}
	return nil
}

func encodePayload(w *bufio.Writer, t *Trace) error {
	// Build the string table.
	table := make(map[string]uint64)
	var strs []string
	intern := func(s string) uint64 {
		if i, ok := table[s]; ok {
			return i
		}
		i := uint64(len(strs))
		table[s] = i
		strs = append(strs, s)
		return i
	}
	for _, rs := range t.Ranks {
		for i := range rs {
			r := &rs[i]
			intern(r.Func)
			intern(r.Site)
			for _, a := range r.Args {
				intern(a)
			}
			for _, c := range r.Chain {
				intern(c)
			}
		}
	}
	metaKeys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)

	putUvarint(w, uint64(len(metaKeys)))
	for _, k := range metaKeys {
		putString(w, k)
		putString(w, t.Meta[k])
	}
	putUvarint(w, uint64(len(strs)))
	for _, s := range strs {
		putString(w, s)
	}
	putUvarint(w, uint64(len(t.Ranks)))
	for _, rs := range t.Ranks {
		putUvarint(w, uint64(len(rs)))
		lastRet := int64(0)
		for i := range rs {
			r := &rs[i]
			putUvarint(w, table[r.Func])
			w.WriteByte(byte(r.Layer))
			putUvarint(w, uint64(r.Depth))
			putUvarint(w, uint64(r.Ret-lastRet))
			putUvarint(w, uint64(r.Ret-r.Tick))
			lastRet = r.Ret
			putUvarint(w, table[r.Site])
			putUvarint(w, uint64(len(r.Args)))
			for _, a := range r.Args {
				putUvarint(w, table[a])
			}
			for _, c := range r.Chain {
				putUvarint(w, table[c])
			}
		}
	}
	return nil
}

// Decode reads a trace previously written by Encode, with default options
// (strict mode, default limits).
func Decode(r io.Reader) (*Trace, error) {
	t, _, err := DecodeWithOptions(r, DecodeOptions{})
	return t, err
}

// DecodeWithOptions reads a trace previously written by Encode. Failures are
// reported as *DecodeError. In tolerate mode a damaged record stream yields
// the salvaged well-formed prefix and non-Clean stats instead of an error;
// damage before any records exist (header, metadata, string table) still
// fails, because nothing downstream is interpretable without them.
func DecodeWithOptions(r io.Reader, opts DecodeOptions) (*Trace, *DecodeStats, error) {
	t, stats, _, err := decodeStream(r, opts, false)
	return t, stats, err
}

// decoder reads the trace payload while tracking the exact byte offset, the
// section being decoded, and the remaining allocation budget, so every
// failure can be classified and located.
type decoder struct {
	br      *bufio.Reader
	off     int64 // bytes consumed from the (decompressed) payload
	lim     Limits
	budget  int64 // remaining bytes of lim.MaxPayload
	section string
	rank    int
	record  int

	spans bool // record layout spans (Layout)
	marks []Span
}

// Approximate decoded-memory cost per entity, charged against the payload
// budget: a corrupt count field costs at most its charge, never a huge
// upfront allocation.
const (
	stringOverhead     = 16  // string header
	sliceEntryOverhead = 16  // one slice element (string header / map slot)
	recordOverhead     = 136 // Record struct incl. slice headers
	rankOverhead       = 24  // one Ranks[] slice header
)

func (d *decoder) fail(kind ErrKind, cause error) error {
	return &DecodeError{
		Kind: kind, Section: d.section,
		Rank: d.rank, Record: d.record,
		Offset: d.off, Err: cause,
	}
}

// ReadByte implements io.ByteReader so binary.ReadUvarint consumes the
// stream through the decoder's offset accounting. It returns the raw
// underlying error; callers classify it.
func (d *decoder) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, err
	}
	d.off++
	return b, nil
}

func (d *decoder) byteField() (byte, error) {
	b, err := d.ReadByte()
	if err != nil {
		return 0, d.fail(classifyIO(err), fmt.Errorf("byte field: %w", err))
	}
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		// EOF mid-stream means truncation; a >64-bit varint is corruption.
		return 0, d.fail(classifyIO(err), fmt.Errorf("varint: %w", err))
	}
	return v, nil
}

func (d *decoder) charge(n int64) error {
	d.budget -= n
	if d.budget < 0 {
		return d.fail(LimitExceeded, fmt.Errorf("decoded payload exceeds %d-byte budget", d.lim.MaxPayload))
	}
	return nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.lim.MaxStringLen) {
		return "", d.fail(LimitExceeded, fmt.Errorf("string length %d exceeds limit %d", n, d.lim.MaxStringLen))
	}
	if err := d.charge(int64(n) + stringOverhead); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", d.fail(classifyIO(err), fmt.Errorf("string body: %w", err))
	}
	d.off += int64(n)
	return string(buf), nil
}

func (d *decoder) span(name string, rank, index int, start int64) {
	if d.spans {
		d.marks = append(d.marks, Span{Name: name, Rank: rank, Index: index, Start: start, End: d.off})
	}
}

// decodeStream is the shared implementation behind DecodeWithOptions and
// Layout: header, optional decompression, payload, end-of-stream checks.
func decodeStream(r io.Reader, opts DecodeOptions, wantSpans bool) (*Trace, *DecodeStats, []Span, error) {
	hdrErr := func(kind ErrKind, cause error) error {
		return &DecodeError{Kind: kind, Section: "header", Rank: -1, Record: -1, Err: cause}
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, nil, hdrErr(Truncated, fmt.Errorf("reading header: %w", err))
	}
	if string(hdr[:4]) != magic {
		return nil, nil, nil, hdrErr(Corrupt, errors.New("bad magic, not a VerifyIO trace"))
	}
	if hdr[4] != formatVer {
		return nil, nil, nil, hdrErr(Corrupt, fmt.Errorf("unsupported format version %d", hdr[4]))
	}
	var payload io.Reader = r
	var fr io.ReadCloser
	if hdr[5]&flagCompress != 0 {
		fr = flate.NewReader(r)
		defer fr.Close()
		payload = fr
	}
	d := &decoder{
		br:     bufio.NewReader(payload),
		lim:    opts.Limits.withDefaults(),
		rank:   -1,
		record: -1,
		spans:  wantSpans,
	}
	d.budget = d.lim.MaxPayload
	t, stats, err := d.decodeTrace(opts.Tolerate)
	if err != nil {
		return nil, nil, nil, err
	}
	// A fully decoded strict stream must also end cleanly: a payload that
	// keeps going is corrupt, and a compressed stream must carry its
	// final-block terminator (a DEFLATE payload chopped after the last
	// record would otherwise pass unnoticed — the classic killed-job
	// artifact). Tolerate mode accepts both: the decoded prefix is the
	// trace.
	if !opts.Tolerate {
		d.section, d.rank, d.record = "trailer", -1, -1
		if _, err := d.br.ReadByte(); err == nil {
			return nil, nil, nil, d.fail(Corrupt, errors.New("trailing data after trace payload"))
		} else if err != io.EOF {
			return nil, nil, nil, d.fail(classifyIO(err), fmt.Errorf("stream end: %w", err))
		}
		if fr != nil {
			if err := fr.Close(); err != nil {
				return nil, nil, nil, d.fail(classifyIO(err), fmt.Errorf("closing compressed payload: %w", err))
			}
		}
	}
	return t, stats, d.marks, nil
}

func (d *decoder) decodeTrace(tolerate bool) (*Trace, *DecodeStats, error) {
	stats := &DecodeStats{}

	d.section = "meta"
	sectionStart := d.off
	nmeta, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nmeta > uint64(d.lim.MaxMeta) {
		return nil, nil, d.fail(LimitExceeded, fmt.Errorf("metadata pair count %d exceeds limit %d", nmeta, d.lim.MaxMeta))
	}
	d.span("meta-count", -1, -1, sectionStart)
	meta := make(map[string]string, capHint(nmeta, 1<<10))
	for i := uint64(0); i < nmeta; i++ {
		k, err := d.str()
		if err != nil {
			return nil, nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, nil, err
		}
		if err := d.charge(2 * sliceEntryOverhead); err != nil {
			return nil, nil, err
		}
		meta[k] = v
	}
	d.span("meta", -1, -1, sectionStart)

	d.section = "string-table"
	sectionStart = d.off
	nstrs, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nstrs > uint64(d.lim.MaxStrings) {
		return nil, nil, d.fail(LimitExceeded, fmt.Errorf("string table size %d exceeds limit %d", nstrs, d.lim.MaxStrings))
	}
	d.span("string-count", -1, -1, sectionStart)
	strs := make([]string, 0, capHint(nstrs, d.hintMax(stringOverhead, 1<<16)))
	for i := uint64(0); i < nstrs; i++ {
		s, err := d.str()
		if err != nil {
			return nil, nil, err
		}
		strs = append(strs, s)
	}
	d.span("string-table", -1, -1, sectionStart)
	str := func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", d.fail(Corrupt, fmt.Errorf("string index %d out of table (%d entries)", i, len(strs)))
		}
		return strs[i], nil
	}

	d.section = "records"
	sectionStart = d.off
	nranks, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nranks > uint64(d.lim.MaxRanks) {
		return nil, nil, d.fail(LimitExceeded, fmt.Errorf("rank count %d exceeds limit %d", nranks, d.lim.MaxRanks))
	}
	if err := d.charge(int64(nranks) * rankOverhead); err != nil {
		return nil, nil, err
	}
	d.span("nranks", -1, -1, sectionStart)
	t := New(int(nranks))
	t.Meta = meta

	// damaged marks ranks that already carry a stats entry, so the final
	// invariant trim does not double-report them.
	var damaged map[int]bool
	if tolerate {
		damaged = make(map[int]bool)
	}
	// markLost records that every rank from `from` on is gone with its
	// record count unknown (the stream is unsyncable past the cut).
	markLost := func(from int, err error) {
		for r := from; r < int(nranks); r++ {
			stats.Ranks = append(stats.Ranks, RankRecovery{Rank: r, Salvaged: 0, Dropped: -1, Err: err})
			damaged[r] = true
		}
	}

rankLoop:
	for rank := 0; rank < int(nranks); rank++ {
		d.rank, d.record = rank, -1
		countStart := d.off
		nrec, err := d.uvarint()
		if err == nil && nrec > uint64(d.lim.MaxRecords) {
			err = d.fail(LimitExceeded, fmt.Errorf("record count %d exceeds limit %d", nrec, d.lim.MaxRecords))
		}
		if err != nil {
			if tolerate {
				markLost(rank, err)
				break rankLoop
			}
			return nil, nil, err
		}
		d.span("rank-count", rank, -1, countStart)
		recs := make([]Record, 0, capHint(nrec, d.hintMax(recordOverhead, 1<<14)))
		lastRet := int64(0)
		for i := 0; i < int(nrec); i++ {
			d.record = i
			recStart := d.off
			rec, err := d.decodeRecord(str, rank, i, &lastRet)
			if err != nil {
				if tolerate {
					keep := validRecordPrefix(recs)
					if keep > 0 {
						t.Ranks[rank] = recs[:keep:keep]
					}
					stats.Ranks = append(stats.Ranks, RankRecovery{
						Rank: rank, Salvaged: keep, Dropped: int(nrec) - keep, Err: err,
					})
					damaged[rank] = true
					markLost(rank+1, err)
					break rankLoop
				}
				return nil, nil, err
			}
			recs = append(recs, rec)
			d.span("record", rank, i, recStart)
		}
		d.record = -1
		if len(recs) > 0 {
			t.Ranks[rank] = recs
		}
	}
	d.rank, d.record = -1, -1

	if !tolerate {
		d.section = "validate"
		if err := t.Validate(); err != nil {
			return nil, nil, d.fail(Corrupt, err)
		}
		return t, stats, nil
	}
	// A damaged stream can decode into records that still violate the
	// trace invariants (a bit flip that survives varint decoding); trim
	// every intact rank to its longest valid prefix so the salvaged trace
	// always validates.
	for rank, rs := range t.Ranks {
		if damaged[rank] {
			continue
		}
		if keep := validRecordPrefix(rs); keep < len(rs) {
			verr := &DecodeError{
				Kind: Corrupt, Section: "validate",
				Rank: rank, Record: keep, Offset: d.off,
				Err: errors.New("record violates trace invariants"),
			}
			t.Ranks[rank] = nil
			if keep > 0 {
				t.Ranks[rank] = rs[:keep:keep]
			}
			stats.Ranks = append(stats.Ranks, RankRecovery{
				Rank: rank, Salvaged: keep, Dropped: len(rs) - keep, Err: verr,
			})
		}
	}
	sort.Slice(stats.Ranks, func(i, j int) bool { return stats.Ranks[i].Rank < stats.Ranks[j].Rank })
	return t, stats, nil
}

func (d *decoder) decodeRecord(str func(uint64) (string, error), rank, seq int, lastRet *int64) (Record, error) {
	var rec Record
	rec.Rank, rec.Seq = rank, seq
	fi, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if rec.Func, err = str(fi); err != nil {
		return rec, err
	}
	lb, err := d.byteField()
	if err != nil {
		return rec, err
	}
	rec.Layer = Layer(lb)
	depthStart := d.off
	depth, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if depth > uint64(d.lim.MaxDepth) {
		return rec, d.fail(LimitExceeded, fmt.Errorf("call depth %d exceeds limit %d", depth, d.lim.MaxDepth))
	}
	d.span("depth", rank, seq, depthStart)
	rec.Depth = int(depth)
	dt, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Ret = *lastRet + int64(dt)
	dr, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Tick = rec.Ret - int64(dr)
	*lastRet = rec.Ret
	si, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if rec.Site, err = str(si); err != nil {
		return rec, err
	}
	nargs, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if nargs > uint64(d.lim.MaxArgs) {
		return rec, d.fail(LimitExceeded, fmt.Errorf("arg count %d exceeds limit %d", nargs, d.lim.MaxArgs))
	}
	if err := d.charge(recordOverhead + int64(nargs+depth)*sliceEntryOverhead); err != nil {
		return rec, err
	}
	if nargs > 0 {
		rec.Args = make([]string, nargs)
		for a := range rec.Args {
			ai, err := d.uvarint()
			if err != nil {
				return rec, err
			}
			if rec.Args[a], err = str(ai); err != nil {
				return rec, err
			}
		}
	}
	if rec.Depth > 0 {
		rec.Chain = make([]string, rec.Depth)
		for c := range rec.Chain {
			ci, err := d.uvarint()
			if err != nil {
				return rec, err
			}
			if rec.Chain[c], err = str(ci); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}

// validRecordPrefix returns the length of the longest prefix of rs that
// satisfies the per-rank trace invariants. Decoding guarantees the
// structural fields (rank, seq, depth/chain agreement), so only the
// timestamp ordering can break.
func validRecordPrefix(rs []Record) int {
	lastRet := int64(-1)
	for i := range rs {
		r := &rs[i]
		if r.Ret <= lastRet || r.Ret < r.Tick || r.Tick < 0 {
			return i
		}
		lastRet = r.Ret
	}
	return len(rs)
}

// capHint bounds an attacker-controlled count to a sane initial slice or
// map capacity; real growth beyond it goes through append and is paid for
// by the byte budget.
func capHint(n uint64, max int) int {
	if max < 0 {
		max = 0
	}
	if n < uint64(max) {
		return int(n)
	}
	return max
}

// hintMax caps an initial-capacity hint so even the hint allocation stays
// inside the remaining payload budget.
func (d *decoder) hintMax(perEntry int64, max int) int {
	if m := d.budget / perEntry; m < int64(max) {
		return int(m)
	}
	return max
}

// WriteDir stores the trace as a directory: one file per rank plus metadata,
// the on-disk layout Recorder uses (one stream per process).
func WriteDir(dir string, t *Trace, opts EncodeOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Each rank file is a complete single-rank trace; metadata travels in
	// rank 0's file plus a rank-count entry.
	for rank, rs := range t.Ranks {
		sub := New(1)
		sub.Ranks[0] = renumber(rs, 0)
		if rank == 0 {
			for k, v := range t.Meta {
				sub.Meta[k] = v
			}
		}
		sub.Meta["verifyio.rank"] = fmt.Sprint(rank)
		sub.Meta["verifyio.nranks"] = fmt.Sprint(len(t.Ranks))
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("rank-%d.viot", rank)))
		if err != nil {
			return err
		}
		if err := Encode(f, sub, opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads a trace directory written by WriteDir, with default options.
func ReadDir(dir string) (*Trace, error) {
	t, _, err := ReadDirWithOptions(dir, DecodeOptions{})
	return t, err
}

// ReadDirWithOptions loads a trace directory written by WriteDir. In
// tolerate mode, rank files that are damaged mid-stream contribute their
// salvaged prefix, and files that are missing or unreadable leave an empty
// rank stream; both are reported per rank in the stats.
func ReadDirWithOptions(dir string, opts DecodeOptions) (*Trace, *DecodeStats, error) {
	oc, span := opts.Obs.Start("read-trace", obs.String("dir", dir))
	span.SetCat("decode")
	defer span.End()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	byRank := make(map[int]*Trace)
	failed := make(map[int]error) // tolerate mode: files that salvaged nothing
	stats := &DecodeStats{}
	nranks, maxRank := -1, -1
	for _, e := range entries {
		var rank int
		if _, err := fmt.Sscanf(e.Name(), "rank-%d.viot", &rank); err != nil {
			continue
		}
		if rank > maxRank {
			maxRank = rank
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		_, rankSpan := oc.Start("read-rank", obs.Int("rank", rank))
		sub, fstats, err := DecodeWithOptions(f, opts)
		rankSpan.End()
		f.Close()
		if err != nil {
			// The file holds a single-rank stream whose in-file rank is
			// 0; report the world rank the file name declares.
			if de, ok := AsDecodeError(err); ok && de.Rank == 0 {
				de.Rank = rank
			}
			if !opts.Tolerate {
				return nil, nil, fmt.Errorf("trace: %s: %w", e.Name(), err)
			}
			failed[rank] = err
			continue
		}
		if n := sub.Meta["verifyio.nranks"]; n != "" {
			fmt.Sscanf(n, "%d", &nranks)
		}
		// The file's salvage stats are for its single in-file rank 0;
		// remap them to the world rank the file name declares.
		for _, rr := range fstats.Ranks {
			rr.Rank = rank
			if de, ok := AsDecodeError(rr.Err); ok && de.Rank == 0 {
				de.Rank = rank
			}
			stats.Ranks = append(stats.Ranks, rr)
		}
		byRank[rank] = sub
	}
	if len(byRank) == 0 && len(failed) == 0 {
		return nil, nil, fmt.Errorf("trace: no rank files in %s", dir)
	}
	if nranks < 0 || (opts.Tolerate && maxRank+1 > nranks) {
		nranks = maxRank + 1
	}
	// The rank count came from file names and metadata — input, not
	// ground truth. Bound it like any other decoded count.
	if lim := opts.Limits.withDefaults(); nranks > lim.MaxRanks {
		if !opts.Tolerate {
			return nil, nil, &DecodeError{
				Kind: LimitExceeded, Section: "directory", Rank: -1, Record: -1,
				Err: fmt.Errorf("rank count %d exceeds limit %d", nranks, lim.MaxRanks),
			}
		}
		nranks = lim.MaxRanks
	}
	if !opts.Tolerate && len(byRank) != nranks {
		return nil, nil, fmt.Errorf("trace: directory holds %d rank files, metadata says %d ranks", len(byRank), nranks)
	}
	t := New(nranks)
	for rank := 0; rank < nranks; rank++ {
		sub, ok := byRank[rank]
		if !ok {
			if !opts.Tolerate {
				return nil, nil, fmt.Errorf("trace: missing rank file for rank %d", rank)
			}
			err := failed[rank]
			if err == nil {
				err = &DecodeError{
					Kind: Truncated, Section: "directory",
					Rank: rank, Record: -1,
					Err: errors.New("missing rank file"),
				}
			}
			stats.Ranks = append(stats.Ranks, RankRecovery{Rank: rank, Salvaged: 0, Dropped: -1, Err: err})
			continue
		}
		if len(sub.Ranks) > 0 {
			t.Ranks[rank] = renumber(sub.Ranks[0], rank)
		}
		if rank == 0 {
			for k, v := range sub.Meta {
				switch k {
				case "verifyio.rank", "verifyio.nranks":
				default:
					t.Meta[k] = v
				}
			}
		}
	}
	sort.Slice(stats.Ranks, func(i, j int) bool { return stats.Ranks[i].Rank < stats.Ranks[j].Rank })
	if r := opts.Obs.R; r != nil {
		decoded := 0
		for _, rs := range t.Ranks {
			decoded += len(rs)
		}
		r.Counter("trace.records_decoded").Add(int64(decoded))
		r.Counter("trace.ranks_salvaged").Add(int64(len(stats.Ranks)))
		r.Counter("trace.records_salvaged").Add(int64(stats.Salvaged()))
		dropped, _ := stats.Dropped()
		r.Counter("trace.records_dropped").Add(int64(dropped))
	}
	return t, stats, nil
}

func renumber(rs []Record, rank int) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Rank = rank
		out[i].Seq = i
	}
	return out
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

package trace

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Binary trace format.
//
// Recorder stores traces compactly (the paper keeps Recorder's compression
// unchanged in Recorder⁺). We mirror that with a simple self-contained
// format: a header, a string table (function names, layers and arguments are
// highly repetitive across records), then per-rank record streams with
// varint-encoded fields, optionally DEFLATE-compressed.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "VIOT"            (4 bytes)
//	version byte              (currently 1)
//	flags   byte              (bit 0: payload is flate-compressed)
//	payload:
//	  nmeta, then nmeta × (string key, string value)
//	  nstrings, then nstrings × (len, bytes)   -- string table
//	  nranks
//	  per rank: nrecords, then records
//
// Every string inside a record is a string-table index. Record fields are
// delta-encoded where they are monotonic (Seq is implicit, Tick is a delta).
//
// Decoding never trusts the input: every count and length is bounded by
// Limits before allocation, failures are classified DecodeErrors carrying
// the payload offset, and DecodeOptions.Tolerate salvages the well-formed
// prefix of a damaged stream (see errors.go).

const (
	magic        = "VIOT"
	formatVer    = 1
	flagCompress = 1
)

// EncodeOptions controls trace serialization.
type EncodeOptions struct {
	// Compress enables DEFLATE compression of the payload. On by default
	// via DefaultEncodeOptions.
	Compress bool
}

// DefaultEncodeOptions matches Recorder's default (compression on).
func DefaultEncodeOptions() EncodeOptions { return EncodeOptions{Compress: true} }

// Encode writes t to w.
func Encode(w io.Writer, t *Trace, opts EncodeOptions) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to encode invalid trace: %w", err)
	}
	hdr := [6]byte{magic[0], magic[1], magic[2], magic[3], formatVer, 0}
	if opts.Compress {
		hdr[5] |= flagCompress
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var payload io.Writer = w
	var fw *flate.Writer
	if opts.Compress {
		var err error
		fw, err = flate.NewWriter(w, flate.DefaultCompression)
		if err != nil {
			return err
		}
		payload = fw
	}
	bw := bufio.NewWriter(payload)
	if err := encodePayload(bw, t); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if fw != nil {
		return fw.Close()
	}
	return nil
}

func encodePayload(w *bufio.Writer, t *Trace) error {
	// Build the string table.
	table := make(map[string]uint64)
	var strs []string
	intern := func(s string) uint64 {
		if i, ok := table[s]; ok {
			return i
		}
		i := uint64(len(strs))
		table[s] = i
		strs = append(strs, s)
		return i
	}
	for _, rs := range t.Ranks {
		for i := range rs {
			r := &rs[i]
			intern(r.Func)
			intern(r.Site)
			for _, a := range r.Args {
				intern(a)
			}
			for _, c := range r.Chain {
				intern(c)
			}
		}
	}
	metaKeys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)

	putUvarint(w, uint64(len(metaKeys)))
	for _, k := range metaKeys {
		putString(w, k)
		putString(w, t.Meta[k])
	}
	putUvarint(w, uint64(len(strs)))
	for _, s := range strs {
		putString(w, s)
	}
	putUvarint(w, uint64(len(t.Ranks)))
	for _, rs := range t.Ranks {
		putUvarint(w, uint64(len(rs)))
		lastRet := int64(0)
		for i := range rs {
			r := &rs[i]
			putUvarint(w, table[r.Func])
			w.WriteByte(byte(r.Layer))
			putUvarint(w, uint64(r.Depth))
			putUvarint(w, uint64(r.Ret-lastRet))
			putUvarint(w, uint64(r.Ret-r.Tick))
			lastRet = r.Ret
			putUvarint(w, table[r.Site])
			putUvarint(w, uint64(len(r.Args)))
			for _, a := range r.Args {
				putUvarint(w, table[a])
			}
			for _, c := range r.Chain {
				putUvarint(w, table[c])
			}
		}
	}
	return nil
}

// Decode reads a trace previously written by Encode, with default options
// (strict mode, default limits).
func Decode(r io.Reader) (*Trace, error) {
	t, _, err := DecodeWithOptions(r, DecodeOptions{})
	return t, err
}

// DecodeWithOptions reads a trace previously written by Encode. Failures are
// reported as *DecodeError. In tolerate mode a damaged record stream yields
// the salvaged well-formed prefix and non-Clean stats instead of an error;
// damage before any records exist (header, metadata, string table) still
// fails, because nothing downstream is interpretable without them.
func DecodeWithOptions(r io.Reader, opts DecodeOptions) (*Trace, *DecodeStats, error) {
	t, stats, _, err := decodeStream(r, opts, false)
	return t, stats, err
}

// decoder reads the trace payload while tracking the exact byte offset, the
// section being decoded, and the remaining allocation budget, so every
// failure can be classified and located.
type decoder struct {
	br      *bufio.Reader
	off     int64 // bytes consumed from the (decompressed) payload
	lim     Limits
	budget  int64 // remaining bytes of lim.MaxPayload
	section string
	rank    int
	record  int

	spans bool // record layout spans (Layout)
	marks []Span
}

// Approximate decoded-memory cost per entity, charged against the payload
// budget: a corrupt count field costs at most its charge, never a huge
// upfront allocation.
const (
	stringOverhead     = 16  // string header
	sliceEntryOverhead = 16  // one slice element (string header / map slot)
	recordOverhead     = 136 // Record struct incl. slice headers
	rankOverhead       = 24  // one Ranks[] slice header
)

func (d *decoder) fail(kind ErrKind, cause error) error {
	return &DecodeError{
		Kind: kind, Section: d.section,
		Rank: d.rank, Record: d.record,
		Offset: d.off, Err: cause,
	}
}

// ReadByte implements io.ByteReader so binary.ReadUvarint consumes the
// stream through the decoder's offset accounting. It returns the raw
// underlying error; callers classify it.
func (d *decoder) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, err
	}
	d.off++
	return b, nil
}

func (d *decoder) byteField() (byte, error) {
	b, err := d.ReadByte()
	if err != nil {
		return 0, d.fail(classifyIO(err), fmt.Errorf("byte field: %w", err))
	}
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		// EOF mid-stream means truncation; a >64-bit varint is corruption.
		return 0, d.fail(classifyIO(err), fmt.Errorf("varint: %w", err))
	}
	return v, nil
}

func (d *decoder) charge(n int64) error {
	d.budget -= n
	if d.budget < 0 {
		return d.fail(LimitExceeded, fmt.Errorf("decoded payload exceeds %d-byte budget", d.lim.MaxPayload))
	}
	return nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.lim.MaxStringLen) {
		return "", d.fail(LimitExceeded, fmt.Errorf("string length %d exceeds limit %d", n, d.lim.MaxStringLen))
	}
	if err := d.charge(int64(n) + stringOverhead); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", d.fail(classifyIO(err), fmt.Errorf("string body: %w", err))
	}
	d.off += int64(n)
	return string(buf), nil
}

func (d *decoder) span(name string, rank, index int, start int64) {
	if d.spans {
		d.marks = append(d.marks, Span{Name: name, Rank: rank, Index: index, Start: start, End: d.off})
	}
}

// openPayload checks the 6-byte header and sets up decompression. The
// returned reader yields the raw payload; fr is non-nil when the payload is
// flate-compressed (the caller owns closing it).
func openPayload(r io.Reader) (io.Reader, io.ReadCloser, error) {
	hdrErr := func(kind ErrKind, cause error) error {
		return &DecodeError{Kind: kind, Section: "header", Rank: -1, Record: -1, Err: cause}
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, hdrErr(Truncated, fmt.Errorf("reading header: %w", err))
	}
	if string(hdr[:4]) != magic {
		return nil, nil, hdrErr(Corrupt, errors.New("bad magic, not a VerifyIO trace"))
	}
	if hdr[4] != formatVer {
		return nil, nil, hdrErr(Corrupt, fmt.Errorf("unsupported format version %d", hdr[4]))
	}
	var payload io.Reader = r
	var fr io.ReadCloser
	if hdr[5]&flagCompress != 0 {
		fr = flate.NewReader(r)
		payload = fr
	}
	return payload, fr, nil
}

func newDecoder(payload io.Reader, lim Limits, wantSpans bool) *decoder {
	d := &decoder{
		br:     bufio.NewReader(payload),
		lim:    lim.withDefaults(),
		rank:   -1,
		record: -1,
		spans:  wantSpans,
	}
	d.budget = d.lim.MaxPayload
	return d
}

// checkTrailer verifies a fully decoded strict stream ends cleanly: a
// payload that keeps going is corrupt, and a compressed stream must carry
// its final-block terminator (a DEFLATE payload chopped after the last
// record would otherwise pass unnoticed — the classic killed-job artifact).
// Tolerate mode never calls this: the decoded prefix is the trace.
func (d *decoder) checkTrailer(fr io.ReadCloser) error {
	d.section, d.rank, d.record = "trailer", -1, -1
	if _, err := d.br.ReadByte(); err == nil {
		return d.fail(Corrupt, errors.New("trailing data after trace payload"))
	} else if err != io.EOF {
		return d.fail(classifyIO(err), fmt.Errorf("stream end: %w", err))
	}
	if fr != nil {
		if err := fr.Close(); err != nil {
			return d.fail(classifyIO(err), fmt.Errorf("closing compressed payload: %w", err))
		}
	}
	return nil
}

// decodeStream is the shared implementation behind DecodeWithOptions and
// Layout: header, optional decompression, payload, end-of-stream checks.
func decodeStream(r io.Reader, opts DecodeOptions, wantSpans bool) (*Trace, *DecodeStats, []Span, error) {
	payload, fr, err := openPayload(r)
	if err != nil {
		return nil, nil, nil, err
	}
	if fr != nil {
		defer fr.Close()
	}
	d := newDecoder(payload, opts.Limits, wantSpans)
	t, stats, err := d.decodeTrace(opts.Tolerate)
	if err != nil {
		return nil, nil, nil, err
	}
	if !opts.Tolerate {
		if err := d.checkTrailer(fr); err != nil {
			return nil, nil, nil, err
		}
	}
	return t, stats, d.marks, nil
}

// decodeMetaSection decodes the metadata section — the first payload
// section, shared by the materializing decoders, the streaming path, and
// the directory prescan (which wants only this section's few bytes).
func (d *decoder) decodeMetaSection() (map[string]string, error) {
	d.section = "meta"
	sectionStart := d.off
	nmeta, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nmeta > uint64(d.lim.MaxMeta) {
		return nil, d.fail(LimitExceeded, fmt.Errorf("metadata pair count %d exceeds limit %d", nmeta, d.lim.MaxMeta))
	}
	d.span("meta-count", -1, -1, sectionStart)
	meta := make(map[string]string, capHint(nmeta, 1<<10))
	for i := uint64(0); i < nmeta; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		if err := d.charge(2 * sliceEntryOverhead); err != nil {
			return nil, err
		}
		meta[k] = v
	}
	d.span("meta", -1, -1, sectionStart)
	return meta, nil
}

// decodeTrace materializes the whole payload by draining a payloadStream
// (stream.go) with an unbounded window: one batch per rank, each buffer
// owned outright by the resulting Trace. The streaming API shares the same
// core, so the two ingestion modes cannot drift apart.
func (d *decoder) decodeTrace(tolerate bool) (*Trace, *DecodeStats, error) {
	ps, err := newPayloadStream(d, tolerate)
	if err != nil {
		return nil, nil, err
	}
	t := New(ps.nranks)
	t.Meta = ps.meta
	for {
		b, err := ps.nextBatch(nil, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if len(b.recs) == 0 {
			continue
		}
		if existing := t.Ranks[b.rank]; len(existing) > 0 {
			t.Ranks[b.rank] = append(existing, b.recs...)
		} else {
			t.Ranks[b.rank] = b.recs
		}
	}
	stats, err := ps.finish()
	if err != nil {
		return nil, nil, err
	}
	return t, stats, nil
}

func (d *decoder) decodeRecord(str func(uint64) (string, error), rank, seq int, lastRet *int64) (Record, error) {
	var rec Record
	rec.Rank, rec.Seq = rank, seq
	fi, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if rec.Func, err = str(fi); err != nil {
		return rec, err
	}
	lb, err := d.byteField()
	if err != nil {
		return rec, err
	}
	rec.Layer = Layer(lb)
	depthStart := d.off
	depth, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if depth > uint64(d.lim.MaxDepth) {
		return rec, d.fail(LimitExceeded, fmt.Errorf("call depth %d exceeds limit %d", depth, d.lim.MaxDepth))
	}
	d.span("depth", rank, seq, depthStart)
	rec.Depth = int(depth)
	dt, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Ret = *lastRet + int64(dt)
	dr, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Tick = rec.Ret - int64(dr)
	*lastRet = rec.Ret
	si, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if rec.Site, err = str(si); err != nil {
		return rec, err
	}
	nargs, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if nargs > uint64(d.lim.MaxArgs) {
		return rec, d.fail(LimitExceeded, fmt.Errorf("arg count %d exceeds limit %d", nargs, d.lim.MaxArgs))
	}
	if err := d.charge(recordOverhead + int64(nargs+depth)*sliceEntryOverhead); err != nil {
		return rec, err
	}
	if nargs > 0 {
		rec.Args = make([]string, nargs)
		for a := range rec.Args {
			ai, err := d.uvarint()
			if err != nil {
				return rec, err
			}
			if rec.Args[a], err = str(ai); err != nil {
				return rec, err
			}
		}
	}
	if rec.Depth > 0 {
		rec.Chain = make([]string, rec.Depth)
		for c := range rec.Chain {
			ci, err := d.uvarint()
			if err != nil {
				return rec, err
			}
			if rec.Chain[c], err = str(ci); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}

// validRecordPrefix returns the length of the longest prefix of rs that
// satisfies the per-rank trace invariants. Decoding guarantees the
// structural fields (rank, seq, depth/chain agreement), so only the
// timestamp ordering can break.
func validRecordPrefix(rs []Record) int {
	lastRet := int64(-1)
	for i := range rs {
		r := &rs[i]
		if r.Ret <= lastRet || r.Ret < r.Tick || r.Tick < 0 {
			return i
		}
		lastRet = r.Ret
	}
	return len(rs)
}

// capHint bounds an attacker-controlled count to a sane initial slice or
// map capacity; real growth beyond it goes through append and is paid for
// by the byte budget.
func capHint(n uint64, max int) int {
	if max < 0 {
		max = 0
	}
	if n < uint64(max) {
		return int(n)
	}
	return max
}

// hintMax caps an initial-capacity hint so even the hint allocation stays
// inside the remaining payload budget.
func (d *decoder) hintMax(perEntry int64, max int) int {
	if m := d.budget / perEntry; m < int64(max) {
		return int(m)
	}
	return max
}

// WriteDir stores the trace as a directory: one file per rank plus metadata,
// the on-disk layout Recorder uses (one stream per process).
func WriteDir(dir string, t *Trace, opts EncodeOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Each rank file is a complete single-rank trace; metadata travels in
	// rank 0's file plus a rank-count entry.
	for rank, rs := range t.Ranks {
		sub := New(1)
		sub.Ranks[0] = renumber(rs, 0)
		if rank == 0 {
			for k, v := range t.Meta {
				sub.Meta[k] = v
			}
		}
		sub.Meta["verifyio.rank"] = fmt.Sprint(rank)
		sub.Meta["verifyio.nranks"] = fmt.Sprint(len(t.Ranks))
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("rank-%d.viot", rank)))
		if err != nil {
			return err
		}
		if err := Encode(f, sub, opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads a trace directory written by WriteDir, with default options.
func ReadDir(dir string) (*Trace, error) {
	t, _, err := ReadDirWithOptions(dir, DecodeOptions{})
	return t, err
}

// ReadDirWithOptions loads a trace directory written by WriteDir. In
// tolerate mode, rank files that are damaged mid-stream contribute their
// salvaged prefix, and files that are missing or unreadable leave an empty
// rank stream; both are reported per rank in the stats.
//
// It is a thin wrapper over OpenStream (stream.go) with windowing disabled:
// each rank arrives as one batch whose buffer the Trace keeps outright, so
// materializing pays no copy over the old direct decoder — only the peak
// memory the streaming API exists to avoid.
func ReadDirWithOptions(dir string, opts DecodeOptions) (*Trace, *DecodeStats, error) {
	s, err := OpenStream(dir, StreamOptions{DecodeOptions: opts, WindowBytes: WindowUnbounded})
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	t := New(s.NumRanks())
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		// Keep the batch (no Release): the buffer becomes the rank's
		// record slice.
		if existing := t.Ranks[b.Rank]; len(existing) > 0 {
			t.Ranks[b.Rank] = append(existing, b.Recs...)
		} else {
			t.Ranks[b.Rank] = b.Recs
		}
	}
	for k, v := range s.Meta() {
		t.Meta[k] = v
	}
	return t, s.Stats(), nil
}

func renumber(rs []Record, rank int) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Rank = rank
		out[i].Seq = i
	}
	return out
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(2)
	tr.Meta["program"] = "quickstart"
	tr.Meta["fs.mode"] = "posix"
	tick := []int64{0, 0}
	add := func(rank int, layer Layer, fn string, depth int, chain []string, args ...string) Ref {
		tick[rank] += 2
		return tr.Append(Record{
			Rank: rank, Func: fn, Layer: layer, Depth: depth,
			Args: args, Tick: tick[rank], Ret: tick[rank] + 1,
			Chain: chain, Site: fmt.Sprintf("site%d", rank),
		})
	}
	add(0, LayerMPIIO, "MPI_File_open", 0, nil, "comm0", "f.bin", "rw")
	add(0, LayerPOSIX, "open", 1, []string{"mpi-io:MPI_File_open@m"}, "f.bin", "rw", "3")
	add(0, LayerMPIIO, "MPI_File_write_at", 0, nil, "0", "0", "4")
	add(0, LayerPOSIX, "pwrite", 1, []string{"mpi-io:MPI_File_write_at@m"}, "3", "4", "0")
	add(1, LayerMPI, "MPI_Barrier", 0, nil, "comm0")
	add(1, LayerPOSIX, "pread", 0, nil, "3", "4", "0")
	if err := tr.Validate(); err != nil {
		t.Fatalf("sample trace invalid: %v", err)
	}
	return tr
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"wrong rank", func(tr *Trace) { tr.Ranks[0][1].Rank = 1 }, "holds record for rank"},
		{"wrong seq", func(tr *Trace) { tr.Ranks[0][1].Seq = 7 }, "has seq"},
		{"ret not increasing", func(tr *Trace) {
			tr.Ranks[0][1].Ret = tr.Ranks[0][0].Ret
			tr.Ranks[0][1].Tick = tr.Ranks[0][0].Ret
		}, "not increasing"},
		{"returns before entry", func(tr *Trace) { tr.Ranks[0][1].Tick = tr.Ranks[0][1].Ret + 1 }, "before entry"},
		{"chain/depth mismatch", func(tr *Trace) { tr.Ranks[0][1].Chain = nil }, "does not match chain length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := sampleTrace(t)
			tc.mutate(tr)
			err := tr.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, compress := range []bool{true, false} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			tr := sampleTrace(t)
			var buf bytes.Buffer
			if err := Encode(&buf, tr, EncodeOptions{Compress: compress}); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(&buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE\x01\x00rest"),
		"bad version": []byte("VIOT\x09\x00"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(data)); err == nil {
				t.Fatal("Decode accepted garbage input")
			}
		})
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr, EncodeOptions{Compress: false}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail to decode, never panic or succeed.
	for n := 0; n < len(full); n += 7 {
		if _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("Decode accepted truncated input of %d/%d bytes", n, len(full))
		}
	}
}

func TestCompressionShrinksRepetitiveTraces(t *testing.T) {
	tr := New(1)
	tick := int64(0)
	for i := 0; i < 2000; i++ {
		tick += 2
		tr.Append(Record{Rank: 0, Func: "pwrite", Layer: LayerPOSIX,
			Args: []string{"3", "4096", "0"}, Tick: tick, Ret: tick + 1})
	}
	var plain, packed bytes.Buffer
	if err := Encode(&plain, tr, EncodeOptions{Compress: false}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&packed, tr, EncodeOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len() {
		t.Errorf("compressed %d bytes >= plain %d bytes", packed.Len(), plain.Len())
	}
}

func TestWriteReadDir(t *testing.T) {
	tr := sampleTrace(t)
	dir := filepath.Join(t.TempDir(), "tracedir")
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("dir round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
	}
}

func TestReadDirMissingRank(t *testing.T) {
	tr := sampleTrace(t)
	dir := filepath.Join(t.TempDir(), "tracedir")
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	// Remove rank 1's stream: ReadDir must notice the hole.
	if err := removeFile(filepath.Join(dir, "rank-1.viot")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("ReadDir accepted a directory with a missing rank file")
	}
}

func TestLayerStringParseInverse(t *testing.T) {
	for l := Layer(0); l < numLayers; l++ {
		got, err := ParseLayer(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayer(%q) = %v, %v; want %v", l.String(), got, err, l)
		}
	}
	if _, err := ParseLayer("bogus"); err == nil {
		t.Error("ParseLayer accepted unknown layer")
	}
}

func TestFrameFormatParseInverse(t *testing.T) {
	cases := []Frame{
		{LayerHDF5, "H5Dwrite", "test.c:40"},
		{LayerMPI, "MPI_Send", ""},
	}
	for _, f := range cases {
		got, err := ParseFrame(FormatFrame(f.Layer, f.Func, f.Site))
		if err != nil || got != f {
			t.Errorf("ParseFrame(FormatFrame(%v)) = %v, %v", f, got, err)
		}
	}
	if _, err := ParseFrame("nocolon"); err == nil {
		t.Error("ParseFrame accepted malformed frame")
	}
}

func TestRecordArgAccessors(t *testing.T) {
	r := Record{Args: []string{"10", "abc"}}
	if got := r.Arg(0); got != "10" {
		t.Errorf("Arg(0) = %q", got)
	}
	if got := r.Arg(5); got != "" {
		t.Errorf("Arg(5) = %q, want empty", got)
	}
	if v, ok := r.IntArg(0); !ok || v != 10 {
		t.Errorf("IntArg(0) = %d, %v", v, ok)
	}
	if _, ok := r.IntArg(1); ok {
		t.Error("IntArg(1) parsed non-numeric arg")
	}
	if _, ok := r.IntArg(9); ok {
		t.Error("IntArg(9) parsed missing arg")
	}
}

func TestRefLess(t *testing.T) {
	cases := []struct {
		a, b Ref
		want bool
	}{
		{Ref{0, 5}, Ref{1, 0}, true},
		{Ref{1, 0}, Ref{0, 5}, false},
		{Ref{0, 1}, Ref{0, 2}, true},
		{Ref{0, 2}, Ref{0, 2}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// randomTrace builds a structurally valid random trace for property tests.
func randomTrace(rng *rand.Rand) *Trace {
	nranks := 1 + rng.Intn(4)
	tr := New(nranks)
	funcs := []string{"pwrite", "pread", "MPI_Send", "MPI_Recv", "H5Dwrite", "fsync"}
	for rank := 0; rank < nranks; rank++ {
		tick := int64(0)
		lastRet := int64(0)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			tick += int64(1 + rng.Intn(5))
			depth := rng.Intn(3)
			var chain []string
			for c := 0; c < depth; c++ {
				chain = append(chain, FormatFrame(Layer(rng.Intn(int(numLayers))), funcs[rng.Intn(len(funcs))], ""))
			}
			var args []string
			for a := rng.Intn(4); a > 0; a-- {
				args = append(args, fmt.Sprint(rng.Intn(1000)))
			}
			ret := tick + int64(rng.Intn(3))
			if ret <= lastRet {
				ret = lastRet + 1
			}
			lastRet = ret
			tr.Append(Record{
				Rank: rank, Func: funcs[rng.Intn(len(funcs))],
				Layer: Layer(rng.Intn(int(numLayers))), Depth: depth,
				Args: args, Tick: tick, Ret: ret,
				Chain: chain,
			})
		}
	}
	if len(tr.Meta) == 0 {
		tr.Meta["k"] = "v"
	}
	return tr
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, tr, EncodeOptions{Compress: seed%2 == 0}); err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWriteText(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# fs.mode = posix", "# program = quickstart",
		"# rank 0 (4 records)", "# rank 1 (2 records)",
		"MPI_File_open(comm0, f.bin, rw)",
		"  pwrite(3, 4, 0)", // depth-1 indentation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	WriteText(&buf2, tr)
	if buf.String() != buf2.String() {
		t.Error("WriteText is not deterministic")
	}
}

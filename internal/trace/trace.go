// Package trace defines the execution-trace model used by every step of the
// VerifyIO workflow.
//
// A trace is the output of step 1 (Recorder⁺): for each MPI rank, an ordered
// stream of records, one per intercepted function call. Records carry the
// function name, all runtime arguments (stringified, exactly as the original
// Recorder does), logical entry/exit timestamps, the nesting depth within the
// I/O stack (application → NetCDF → HDF5 → MPI-IO → POSIX) and the full call
// chain, which the verifier reports for data races so the root cause can be
// attributed to the application or to a specific library layer.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Layer identifies which level of the I/O software stack issued a call.
type Layer uint8

// Layers, from the application down to the storage interface.
const (
	LayerApp Layer = iota
	LayerNetCDF
	LayerPnetCDF
	LayerHDF5
	LayerMPIIO
	LayerMPI
	LayerPOSIX
	numLayers
)

var layerNames = [numLayers]string{
	"app", "netcdf", "pnetcdf", "hdf5", "mpi-io", "mpi", "posix",
}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// ParseLayer converts a layer name produced by Layer.String back to a Layer.
func ParseLayer(s string) (Layer, error) {
	for i, n := range layerNames {
		if n == s {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown layer %q", s)
}

// Record is one intercepted function call.
type Record struct {
	// Rank is the MPI rank that issued the call.
	Rank int
	// Seq is the per-rank program-order index (Def. 1): record k is the
	// k-th call recorded on this rank, counting every nesting level.
	Seq int
	// Func is the name of the intercepted function, using the original C
	// API spelling ("pwrite", "MPI_File_write_at", "H5Dwrite", ...).
	Func string
	// Layer is the stack level Func belongs to.
	Layer Layer
	// Depth is the call-nesting depth: 0 for calls issued directly by the
	// application, 1 for calls those made internally, and so on. The call
	// chain of a record is the sequence of enclosing records.
	Depth int
	// Args holds every runtime argument, stringified. Argument layout is
	// function specific and interpreted by the analysis steps (package
	// conflict and package match), mirroring how VerifyIO post-processes
	// Recorder traces.
	Args []string
	// Tick and Ret are the logical entry and return timestamps (a per-rank
	// monotonic counter advanced on every record boundary). They order
	// records within a rank and delimit nesting.
	Tick int64
	Ret  int64
	// Chain is the call chain, outermost frame first, not including Func
	// itself. Frames are "layer:func@site" strings; see FormatFrame.
	Chain []string
	// Site labels the call site of this record inside its caller; the
	// paper's future-work "backtrace" feature. Optional.
	Site string
}

// FormatFrame renders one call-chain frame.
func FormatFrame(layer Layer, fn, site string) string {
	if site == "" {
		return layer.String() + ":" + fn
	}
	return layer.String() + ":" + fn + "@" + site
}

// Frame is a parsed call-chain entry.
type Frame struct {
	Layer Layer
	Func  string
	Site  string
}

// ParseFrame parses a frame produced by FormatFrame.
func ParseFrame(s string) (Frame, error) {
	layerStr, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Frame{}, fmt.Errorf("trace: malformed frame %q", s)
	}
	l, err := ParseLayer(layerStr)
	if err != nil {
		return Frame{}, err
	}
	fn, site, _ := strings.Cut(rest, "@")
	return Frame{Layer: l, Func: fn, Site: site}, nil
}

// String renders a record in the one-line textual form used by the CLI tools.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d:%d] %s %s(%s)", r.Rank, r.Seq, r.Layer, r.Func,
		strings.Join(r.Args, ", "))
	if r.Depth > 0 {
		fmt.Fprintf(&b, " depth=%d", r.Depth)
	}
	return b.String()
}

// Arg returns argument i, or "" when absent.
func (r *Record) Arg(i int) string {
	if i < 0 || i >= len(r.Args) {
		return ""
	}
	return r.Args[i]
}

// IntArg returns argument i parsed as int64. Missing or malformed arguments
// return ok=false; analysis code treats those records as unusable rather
// than failing the whole run, matching VerifyIO's tolerance of partial
// traces from the legacy Recorder.
func (r *Record) IntArg(i int) (int64, bool) {
	v, err := strconv.ParseInt(r.Arg(i), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Ref identifies a record inside a trace by rank and per-rank sequence.
type Ref struct {
	Rank int
	Seq  int
}

func (ref Ref) String() string { return fmt.Sprintf("%d:%d", ref.Rank, ref.Seq) }

// Less orders refs by rank, then by program order.
func (ref Ref) Less(o Ref) bool {
	if ref.Rank != o.Rank {
		return ref.Rank < o.Rank
	}
	return ref.Seq < o.Seq
}

// Trace is a complete execution trace: one record stream per rank plus
// execution-wide metadata.
type Trace struct {
	// Ranks holds the per-rank record streams; Ranks[i][k].Seq == k.
	Ranks [][]Record
	// Meta carries free-form execution metadata (program name, simulated
	// file-system consistency mode, library versions, ...).
	Meta map[string]string
}

// New returns an empty trace for nranks ranks.
func New(nranks int) *Trace {
	return &Trace{Ranks: make([][]Record, nranks), Meta: make(map[string]string)}
}

// NumRanks returns the number of rank streams.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// NumRecords returns the total number of records across all ranks.
func (t *Trace) NumRecords() int {
	n := 0
	for _, rs := range t.Ranks {
		n += len(rs)
	}
	return n
}

// Record resolves a Ref. It returns nil when the ref is out of range.
func (t *Trace) Record(ref Ref) *Record {
	if ref.Rank < 0 || ref.Rank >= len(t.Ranks) {
		return nil
	}
	rs := t.Ranks[ref.Rank]
	if ref.Seq < 0 || ref.Seq >= len(rs) {
		return nil
	}
	return &rs[ref.Seq]
}

// Append adds a record to its rank's stream, assigning Seq. It returns the
// record's Ref.
func (t *Trace) Append(rec Record) Ref {
	rec.Seq = len(t.Ranks[rec.Rank])
	t.Ranks[rec.Rank] = append(t.Ranks[rec.Rank], rec)
	return Ref{Rank: rec.Rank, Seq: rec.Seq}
}

// Validate performs structural checks: sequence numbers must be dense and
// per-rank ticks strictly increasing. It reports the first problem found.
func (t *Trace) Validate() error {
	// Records are appended when a call returns (post-order for nested
	// calls), so the return timestamp is the strictly increasing field;
	// an enclosing call's entry tick precedes its nested records' ticks.
	for rank, rs := range t.Ranks {
		lastRet := int64(-1)
		for i := range rs {
			r := &rs[i]
			if r.Rank != rank {
				return fmt.Errorf("trace: rank %d stream holds record for rank %d at seq %d", rank, r.Rank, i)
			}
			if r.Seq != i {
				return fmt.Errorf("trace: rank %d record %d has seq %d", rank, i, r.Seq)
			}
			if r.Ret <= lastRet {
				return fmt.Errorf("trace: rank %d record %d return tick %d not increasing (prev %d)", rank, i, r.Ret, lastRet)
			}
			if r.Ret < r.Tick {
				return fmt.Errorf("trace: rank %d record %d returns (%d) before entry (%d)", rank, i, r.Ret, r.Tick)
			}
			if r.Tick < 0 {
				return fmt.Errorf("trace: rank %d record %d negative entry tick %d", rank, i, r.Tick)
			}
			lastRet = r.Ret
			if r.Depth < 0 || len(r.Chain) != r.Depth {
				return fmt.Errorf("trace: rank %d record %d depth %d does not match chain length %d", rank, i, r.Depth, len(r.Chain))
			}
		}
	}
	return nil
}

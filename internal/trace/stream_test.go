package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"verifyio/internal/obs"
)

// streamTestTrace builds a deterministic multi-rank trace big enough that a
// small window splits every rank into many batches.
func streamTestTrace(t *testing.T, nranks, nrecs int) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tr := New(nranks)
	tr.Meta["program"] = "stream-test"
	tr.Meta["fs.mode"] = "posix"
	for rank := 0; rank < nranks; rank++ {
		tick := int64(0)
		for i := 0; i < nrecs; i++ {
			tick += int64(1 + rng.Intn(3))
			rec := Record{
				Rank: rank, Func: "pwrite", Layer: LayerPOSIX,
				Args: []string{"3", fmt.Sprint(8 * i), "8"},
				Tick: tick, Ret: tick + 1,
				Site: fmt.Sprintf("site%d", i%17),
			}
			if i%5 == 0 {
				rec.Func = "MPI_File_write_at"
				rec.Layer = LayerMPIIO
			}
			tick++
			tr.Append(rec)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("stream test trace invalid: %v", err)
	}
	return tr
}

// drainStream collects every batch into a materialized per-rank view,
// releasing each batch after copying it out (the bounded-memory discipline).
func drainStream(t *testing.T, s *Stream) ([][]Record, int) {
	t.Helper()
	ranks := make([][]Record, s.NumRanks())
	batches := 0
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		batches++
		if b.Start != len(ranks[b.Rank]) {
			t.Fatalf("rank %d batch starts at %d, have %d records", b.Rank, b.Start, len(ranks[b.Rank]))
		}
		ranks[b.Rank] = append(ranks[b.Rank], b.Recs...)
		b.Release()
	}
	return ranks, batches
}

func TestStreamMatchesDecode(t *testing.T) {
	tr := streamTestTrace(t, 3, 400)
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, tr, EncodeOptions{Compress: compress}); err != nil {
				t.Fatal(err)
			}
			want, _, err := DecodeWithOptions(bytes.NewReader(buf.Bytes()), DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewStream(bytes.NewReader(buf.Bytes()), StreamOptions{WindowBytes: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.NumRanks() != len(want.Ranks) {
				t.Fatalf("NumRanks = %d, want %d", s.NumRanks(), len(want.Ranks))
			}
			ranks, batches := drainStream(t, s)
			if batches <= len(want.Ranks) {
				t.Fatalf("window produced only %d batches for %d ranks — not windowing", batches, len(want.Ranks))
			}
			for rank := range want.Ranks {
				if !reflect.DeepEqual(ranks[rank], want.Ranks[rank]) {
					t.Fatalf("rank %d records differ between stream and decode", rank)
				}
			}
			if !reflect.DeepEqual(s.Meta(), want.Meta) {
				t.Fatalf("Meta = %v, want %v", s.Meta(), want.Meta)
			}
			if !s.Stats().Clean() {
				t.Fatalf("clean stream salvaged: %+v", s.Stats())
			}
		})
	}
}

func TestOpenStreamMatchesReadDir(t *testing.T) {
	tr := streamTestTrace(t, 4, 300)
	dir := t.TempDir()
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	want, _, err := ReadDirWithOptions(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(dir, StreamOptions{WindowBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ranks, batches := drainStream(t, s)
	if batches <= len(want.Ranks) {
		t.Fatalf("window produced only %d batches for %d ranks — not windowing", batches, len(want.Ranks))
	}
	for rank := range want.Ranks {
		if !reflect.DeepEqual(ranks[rank], want.Ranks[rank]) {
			t.Fatalf("rank %d records differ between stream and ReadDir", rank)
		}
		if s.Counts()[rank] != len(want.Ranks[rank]) {
			t.Fatalf("Counts()[%d] = %d, want %d", rank, s.Counts()[rank], len(want.Ranks[rank]))
		}
	}
	if !reflect.DeepEqual(s.Meta(), want.Meta) {
		t.Fatalf("Meta = %v, want %v", s.Meta(), want.Meta)
	}
}

// TestStreamWindowBound is the memory contract: with every batch released
// before the next Next, peak resident cost never exceeds the window plus one
// record's worth of overshoot (a batch closes at the first record that
// reaches the window).
func TestStreamWindowBound(t *testing.T) {
	tr := streamTestTrace(t, 4, 1000)
	dir := t.TempDir()
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	const window = 1 << 12
	reg := obs.NewRegistry()
	s, err := OpenStream(dir, StreamOptions{
		DecodeOptions: DecodeOptions{Obs: obs.Ctx{R: reg}},
		WindowBytes:   window,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainStream(t, s)
	const slack = 1 << 10 // one record far exceeds this; strings live in the table
	if peak := s.PeakResidentBytes(); peak <= 0 || peak > window+slack {
		t.Fatalf("peak resident %d outside (0, %d]", peak, window+slack)
	}
	snap := reg.Snapshot()
	if got := snap.Stable.Gauges["decode.window_bytes"]; got != window {
		t.Fatalf("decode.window_bytes = %d, want %d", got, window)
	}
	if got := snap.Stable.Gauges["decode.peak_resident_bytes"]; got != s.PeakResidentBytes() {
		t.Fatalf("decode.peak_resident_bytes = %d, want %d", got, s.PeakResidentBytes())
	}

	// The materializing wrapper keeps every batch: its peak is the whole
	// decode cost, and must dwarf the windowed peak on this trace.
	whole, _, err := ReadDirWithOptions(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if whole.NumRecords() == 0 {
		t.Fatal("empty materialized trace")
	}
	sw, err := OpenStream(dir, StreamOptions{WindowBytes: WindowUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for {
		b, err := sw.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		_ = b // retained: materializing profile
	}
	if sw.PeakResidentBytes() < 10*s.PeakResidentBytes() {
		t.Fatalf("unbounded peak %d not >> windowed peak %d", sw.PeakResidentBytes(), s.PeakResidentBytes())
	}
}

// TestStreamTolerateSalvage pins that the streaming path salvages exactly
// what the materializing tolerate path does, stats included.
func TestStreamTolerateSalvage(t *testing.T) {
	tr := streamTestTrace(t, 3, 200)
	dir := t.TempDir()
	if err := WriteDir(dir, tr, EncodeOptions{Compress: false}); err != nil {
		t.Fatal(err)
	}
	// Truncate rank 1 mid-records.
	path := filepath.Join(dir, "rank-1.viot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := ReadDirWithOptions(dir, DecodeOptions{Tolerate: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(dir, StreamOptions{
		DecodeOptions: DecodeOptions{Tolerate: true},
		WindowBytes:   1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ranks, _ := drainStream(t, s)
	for rank := range want.Ranks {
		if !reflect.DeepEqual(ranks[rank], want.Ranks[rank]) {
			t.Fatalf("rank %d salvage differs: stream %d records, ReadDir %d",
				rank, len(ranks[rank]), len(want.Ranks[rank]))
		}
	}
	got := s.Stats()
	if len(got.Ranks) != len(wantStats.Ranks) {
		t.Fatalf("stats: stream %+v, ReadDir %+v", got, wantStats)
	}
	for i, rr := range got.Ranks {
		wr := wantStats.Ranks[i]
		if rr.Rank != wr.Rank || rr.Salvaged != wr.Salvaged || rr.Dropped != wr.Dropped {
			t.Fatalf("stats[%d] = %+v, want %+v", i, rr, wr)
		}
		if (rr.Err == nil) != (wr.Err == nil) || (rr.Err != nil && rr.Err.Error() != wr.Err.Error()) {
			t.Fatalf("stats[%d] error = %v, want %v", i, rr.Err, wr.Err)
		}
	}
}

func TestStreamStrictErrorsMatchReadDir(t *testing.T) {
	tr := streamTestTrace(t, 2, 50)
	dir := t.TempDir()
	if err := WriteDir(dir, tr, EncodeOptions{Compress: false}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "rank-1.viot")); err != nil {
		t.Fatal(err)
	}
	_, _, wantErr := ReadDirWithOptions(dir, DecodeOptions{})
	if wantErr == nil {
		t.Fatal("ReadDir accepted a missing rank file")
	}
	if _, err := OpenStream(dir, StreamOptions{}); err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("OpenStream error = %v, want %v", err, wantErr)
	}
}

func TestChainBuilderMatchesBlockChain(t *testing.T) {
	tr := streamTestTrace(t, 1, 3*DigestBlock+17)
	recs := tr.Ranks[0]
	for _, n := range []int{0, 1, DigestBlock - 1, DigestBlock, DigestBlock + 1, 2*DigestBlock + 5, len(recs)} {
		want := BlockChain(recs[:n])
		for _, step := range []int{1, 7, DigestBlock, n + 1} {
			var b ChainBuilder
			for lo := 0; lo < n; lo += step {
				hi := lo + step
				if hi > n {
					hi = n
				}
				b.Add(recs[lo:hi])
			}
			if got := b.Chain(); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d step=%d: ChainBuilder diverges from BlockChain", n, step)
			}
			if b.Records() != n {
				t.Fatalf("n=%d step=%d: Records() = %d", n, step, b.Records())
			}
		}
	}
	// Chain must be re-callable mid-stream without corrupting later blocks.
	var b ChainBuilder
	b.Add(recs[:DigestBlock/2])
	_ = b.Chain()
	b.Add(recs[DigestBlock/2:])
	if !reflect.DeepEqual(b.Chain(), BlockChain(recs)) {
		t.Fatal("mid-stream Chain() corrupted the builder")
	}
}

// TestBatchReleaseIdempotent is the pool contract Release documents: a
// second Release of the same batch must be a no-op — no double push of the
// buffer into the pool (which would hand the same backing array to two
// future batches) and no double credit against the resident accounting.
func TestBatchReleaseIdempotent(t *testing.T) {
	tr := streamTestTrace(t, 2, 200)
	dir := t.TempDir()
	if err := WriteDir(dir, tr, DefaultEncodeOptions()); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(dir, StreamOptions{WindowBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.cost <= 0 {
		t.Fatalf("batch cost = %d, want > 0", b.cost)
	}
	resident, pooled := s.resident, len(s.pool)
	cost := b.cost // Release severs b.s but leaves cost readable

	b.Release()
	if got, want := s.resident, resident-cost; got != want {
		t.Fatalf("after first Release resident = %d, want %d", got, want)
	}
	if len(s.pool) != pooled+1 {
		t.Fatalf("after first Release pool has %d buffers, want %d", len(s.pool), pooled+1)
	}
	if b.s != nil || b.Recs != nil {
		t.Fatalf("first Release must sever the batch: s=%v Recs=%v", b.s, b.Recs)
	}
	residentAfter, pooledAfter := s.resident, len(s.pool)

	// The misuse under test: releasing again must change nothing.
	b.Release()
	if s.resident != residentAfter {
		t.Fatalf("double Release moved resident accounting: %d -> %d", residentAfter, s.resident)
	}
	if len(s.pool) != pooledAfter {
		t.Fatalf("double Release pushed the buffer into the pool twice: %d -> %d buffers", pooledAfter, len(s.pool))
	}

	// And a released (nil-severed) batch from a drained stream plus a nil
	// batch are equally inert.
	var nb *Batch
	nb.Release()
}

package hbgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// SkeletonDigest returns a content digest of the sync skeleton: the per-rank
// membership (which records participate in synchronization) and the
// skeleton-level sync adjacency. Because every happens-before query the
// verifier issues resolves through skeleton reachability plus per-rank
// program order, this digest — together with the per-rank record counts —
// commits to the entire HB relation: two analyses with equal skeleton
// digests and equal rank lengths answer every HB query identically. The
// verdict cache uses it as the sync-epoch component of its keys, which is
// also why the digest must be a pure function of the build inputs (it is:
// the skeleton arrays are filled in deterministic edge order).
func (g *Graph) SkeletonDigest() [sha256.Size]byte {
	h := sha256.New()
	g.AppendSkeletonDigest(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// AppendSkeletonDigest writes the canonical skeleton encoding into h.
func (g *Graph) AppendSkeletonDigest(h hash.Hash) {
	s := &g.skel
	var b [8]byte
	u32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
	}
	u32(int32(s.nranks))
	u32(int32(s.n))
	for _, v := range s.base {
		u32(v)
	}
	writeI32s(h, s.seqs)
	writeI32s(h, s.succOff)
	writeI32s(h, s.succAdj)
}

func writeI32s(h hash.Hash, vs []int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(vs)))
	h.Write(b[:])
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		h.Write(b[:])
	}
}

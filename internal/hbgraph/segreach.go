package hbgraph

import (
	"fmt"

	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// Segment-reachability oracle: the dense S×S transitive closure of the sync
// skeleton, probed in O(1). Every record belongs to a program-order segment
// delimited by two skeleton nodes (its prev/next fringe, see skeleton.go),
// and a cross-rank HB query is exactly one bit of the segment×segment
// reachability matrix: HB(a, b) ⇔ bit(next(a), prev(b)). On sync-sparse
// traces S ≪ V, so the whole matrix is a few kilobytes — cheap enough to
// precompute once and share across every model pass and verification chunk.
//
// Unlike TCOracle (bounded by a node count), SegReachability is bounded by
// an explicit byte budget and its rows are filled level-parallel: the
// reverse wavefront processes one topological level at a time, and within a
// level no node's row depends on another's (every skeleton edge goes to a
// strictly later level), so the rows fill concurrently via internal/par.

// DefaultSegReachBudget bounds the S²-bit reachability matrix (64 MiB ≈ 23k
// skeleton nodes). Callers over budget fall back to the vector-clock oracle,
// mirroring the transitive-closure node budget.
const DefaultSegReachBudget = 64 << 20

// segMinParallelWidth is the level width below which the wavefront stays on
// the calling goroutine (a level holds at most one node per rank, so narrow
// levels never amortize the handoff) — same threshold as the vector-clock
// wavefront.
const segMinParallelWidth = 8

// SegOptions configures segment-reachability construction.
type SegOptions struct {
	// Workers bounds the wavefront parallelism; 0 means GOMAXPROCS, 1 forces
	// the serial path. The matrix is identical at every worker count: rows
	// within a level are independent, and bitwise OR is order-independent.
	Workers int
	// ByteBudget caps the closure matrix; 0 means DefaultSegReachBudget,
	// negative disables the cap. Construction fails (and the caller falls
	// back to another oracle) when S²/8 bytes exceed the budget.
	ByteBudget int
	// Obs carries telemetry: pool stats for the wavefront
	// ("par.seg-wavefront.*") and the hbgraph.segreach_bytes gauge.
	Obs obs.Ctx
}

// SegOracle answers hb queries from the precomputed segment×segment
// reachability matrix — one AND and one compare per cross-rank query.
type SegOracle struct {
	g     *Graph
	words int
	bits  []uint64 // S * words
}

// SegReachability materializes the skeleton's segment-reachability matrix.
// It refuses graphs whose matrix would exceed the byte budget; callers fall
// back to another oracle (the dynamic selection of §VII).
func (g *Graph) SegReachability(opts SegOptions) (*SegOracle, error) {
	s := &g.skel
	if s.cycleErr != nil {
		return nil, s.cycleErr
	}
	budget := opts.ByteBudget
	if budget == 0 {
		budget = DefaultSegReachBudget
	}
	words := (s.n + 63) / 64
	size := s.n * words * 8
	if budget > 0 && size > budget {
		return nil, fmt.Errorf("hbgraph: segment reachability over %d skeleton nodes needs %d bytes, over the %d-byte budget",
			s.n, size, budget)
	}
	bits := make([]uint64, s.n*words)
	// Reverse level-synchronized wavefront: levelOrder is a topological order
	// (every successor — po and sync — sits in a strictly later level), so
	// walking levels back to front guarantees every successor row is final,
	// and the rows within one level share no data. One closure is reused
	// across levels; levels run strictly in sequence.
	var nodes []int32
	step := func(i int) {
		id := nodes[i]
		row := bits[int(id)*words : (int(id)+1)*words]
		s.forEachSkelSucc(id, func(sc int32) {
			row[sc/64] |= 1 << (uint(sc) % 64)
			for w, v := range bits[int(sc)*words : (int(sc)+1)*words] {
				row[w] |= v
			}
		})
	}
	workers := par.Resolve(opts.Workers)
	for l := len(s.levelOff) - 2; l >= 0; l-- {
		nodes = s.levelOrder[s.levelOff[l]:s.levelOff[l+1]]
		if workers > 1 && len(nodes) >= segMinParallelWidth {
			par.DoObs(opts.Obs, "seg-wavefront", workers, len(nodes), step)
		} else {
			for i := range nodes {
				step(i)
			}
		}
	}
	if r := opts.Obs.R; r != nil {
		r.Gauge("hbgraph.segreach_bytes").Set(int64(8 * len(bits)))
	}
	return &SegOracle{g: g, words: words, bits: bits}, nil
}

// HB reports whether a happens-before b, via the same skeleton mapping as
// the other graph-based oracles.
func (o *SegOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if !o.g.inRange(a) || !o.g.inRange(b) {
		return false
	}
	src := o.g.skelNext(a)
	dst := o.g.skelPrev(b)
	return o.bits[int(src)*o.words+int(dst)/64]&(1<<(uint(dst)%64)) != 0
}

// Name identifies the algorithm.
func (o *SegOracle) Name() string { return "segment" }

// ArenaBytes returns the size of the reachability matrix — S²/8 bytes.
func (o *SegOracle) ArenaBytes() int { return 8 * len(o.bits) }

// SegGraph returns the graph whose skeleton coordinates ProbeSeg accepts.
func (o *SegOracle) SegGraph() *Graph { return o.g }

// ProbeSeg answers a pre-resolved cross-rank query in one bit probe.
func (o *SegOracle) ProbeSeg(aRank, aSeq, aNext, bPrev int32) bool {
	return o.bits[int(aNext)*o.words+int(bPrev)/64]&(1<<(uint(bPrev)%64)) != 0
}

// SegProber is the resolved-query fast path implemented by the graph-based
// oracles: the caller maps each query operand to its skeleton fringe once
// (SegCoords) and probes with the precomputed coordinates, skipping the
// per-query bounds check and prev/next resolution of Oracle.HB.
//
// The contract mirrors the skeleton query mapping: ProbeSeg answers
// HB(a, b) for a.Rank ≠ b.Rank, where aNext = next(a) and bPrev = prev(b)
// were resolved by SegGraph().SegCoords on in-range refs. Same-rank queries
// must be answered by program order before probing.
type SegProber interface {
	SegGraph() *Graph
	ProbeSeg(aRank, aSeq, aNext, bPrev int32) bool
}

// SegCoords resolves ref onto the skeleton fringe: prev is the last skeleton
// node at-or-before ref on its rank, next the first at-or-after. ok is false
// for refs outside the trace, which are never hb-related.
func (g *Graph) SegCoords(ref trace.Ref) (prev, next int32, ok bool) {
	if !g.inRange(ref) {
		return 0, 0, false
	}
	prev = g.skelPrev(ref)
	next = prev
	if int(g.skel.seqs[prev]) != ref.Seq {
		next = prev + 1
	}
	return prev, next, true
}

// Compile-time check: every graph-based oracle offers the resolved probe.
var (
	_ SegProber = (*VCOracle)(nil)
	_ SegProber = (*BFSOracle)(nil)
	_ SegProber = (*TCOracle)(nil)
	_ SegProber = (*SegOracle)(nil)
)

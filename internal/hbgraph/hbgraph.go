// Package hbgraph builds the happens-before graph (Def. 3) of an execution —
// the transitive closure of program order and synchronization order — and
// answers reachability (hb) queries with the four interchangeable algorithms
// of §IV-D:
//
//  1. Vector clocks: a topological sort propagates one clock entry per rank
//     through the graph; queries are O(1) afterwards.
//  2. Graph reachability: breadth-first search per query, with memoization.
//  3. Transitive closure: reverse-topological bitset union; O(1) queries,
//     O(V²/64) memory.
//  4. On-the-fly (package otf entry point below via NewOnTheFly): answers
//     queries directly from the matched synchronization edges without
//     building the graph.
//
// Nodes are trace records, identified by (rank, seq). Program-order edges
// are implicit: record (r, k) always precedes (r, k+1). Synchronization
// edges come from the MPI matcher.
package hbgraph

import (
	"fmt"
	"sort"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// Graph is the happens-before graph.
type Graph struct {
	counts []int // records per rank
	base   []int // node-id offset per rank (prefix sums)
	n      int   // total nodes

	// succ/pred hold only cross-rank (synchronization) adjacency; program
	// order is implicit.
	succ map[int32][]int32
	pred map[int32][]int32

	edgeCount int
}

// Build constructs the graph for tr with the matcher's synchronization
// edges. Edges referencing records outside the trace are rejected.
func Build(tr *trace.Trace, edges []match.Edge) (*Graph, error) {
	g := &Graph{
		counts: make([]int, tr.NumRanks()),
		base:   make([]int, tr.NumRanks()+1),
		succ:   make(map[int32][]int32),
		pred:   make(map[int32][]int32),
	}
	for rank, recs := range tr.Ranks {
		g.counts[rank] = len(recs)
		g.base[rank+1] = g.base[rank] + len(recs)
	}
	g.n = g.base[len(g.counts)]
	for _, e := range edges {
		from, ok1 := g.id(e.From)
		to, ok2 := g.id(e.To)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("hbgraph: edge %v→%v references records outside the trace", e.From, e.To)
		}
		g.succ[from] = append(g.succ[from], to)
		g.pred[to] = append(g.pred[to], from)
		g.edgeCount++
	}
	return g, nil
}

// Nodes returns the number of nodes.
func (g *Graph) Nodes() int { return g.n }

// SyncEdges returns the number of synchronization edges.
func (g *Graph) SyncEdges() int { return g.edgeCount }

// id maps a record ref to a dense node id.
func (g *Graph) id(ref trace.Ref) (int32, bool) {
	if ref.Rank < 0 || ref.Rank >= len(g.counts) {
		return 0, false
	}
	if ref.Seq < 0 || ref.Seq >= g.counts[ref.Rank] {
		return 0, false
	}
	return int32(g.base[ref.Rank] + ref.Seq), true
}

// ref maps a dense node id back to a record ref.
func (g *Graph) ref(id int32) trace.Ref {
	rank := sort.Search(len(g.counts), func(r int) bool { return g.base[r+1] > int(id) })
	return trace.Ref{Rank: rank, Seq: int(id) - g.base[rank]}
}

// forEachSucc visits all successors of id: the po successor (if any) and the
// synchronization successors.
func (g *Graph) forEachSucc(id int32, visit func(int32)) {
	ref := g.ref(id)
	if ref.Seq+1 < g.counts[ref.Rank] {
		visit(id + 1)
	}
	for _, s := range g.succ[id] {
		visit(s)
	}
}

// forEachPred visits all predecessors of id.
func (g *Graph) forEachPred(id int32, visit func(int32)) {
	ref := g.ref(id)
	if ref.Seq > 0 {
		visit(id - 1)
	}
	for _, p := range g.pred[id] {
		visit(p)
	}
}

// TopoOrder returns a topological order of all nodes, or an error if po ∪ so
// has a cycle (which Def. 2 forbids; a cycle means the trace or matcher is
// broken).
func (g *Graph) TopoOrder() ([]int32, error) {
	indeg := make([]int32, g.n)
	for id := int32(0); id < int32(g.n); id++ {
		g.forEachSucc(id, func(s int32) { indeg[s]++ })
	}
	// The queue doubles as the order: every node is appended exactly once,
	// and a head cursor pops without re-slicing (queue[1:] would pin the
	// whole backing array while shrinking the visible window).
	order := make([]int32, 0, g.n)
	for id := int32(0); id < int32(g.n); id++ {
		if indeg[id] == 0 {
			order = append(order, id)
		}
	}
	for head := 0; head < len(order); head++ {
		g.forEachSucc(order[head], func(s int32) {
			indeg[s]--
			if indeg[s] == 0 {
				order = append(order, s)
			}
		})
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("hbgraph: po ∪ so contains a cycle (%d of %d nodes ordered)", len(order), g.n)
	}
	return order, nil
}

// Oracle answers happens-before queries. HB(a, b) reports whether a
// happens-before b (strictly: a ≠ b and there is a path a → b).
//
// Implementations must be safe for concurrent HB calls once constructed —
// the parallel verifier shares one oracle across all its workers and model
// passes.
type Oracle interface {
	HB(a, b trace.Ref) bool
	Name() string
}

// sameRankHB answers the trivial program-order case; returns handled=false
// for cross-rank queries.
func sameRankHB(a, b trace.Ref) (result, handled bool) {
	if a.Rank == b.Rank {
		return a.Seq < b.Seq, true
	}
	return false, false
}

// Package hbgraph builds the happens-before graph (Def. 3) of an execution —
// the transitive closure of program order and synchronization order — and
// answers reachability (hb) queries with the four interchangeable algorithms
// of §IV-D:
//
//  1. Vector clocks: a topological sort propagates one clock entry per rank
//     through the graph; queries are O(1) afterwards.
//  2. Graph reachability: breadth-first search per query, with memoization.
//  3. Transitive closure: reverse-topological bitset union; O(1) queries.
//  4. On-the-fly (package otf entry point below via NewOnTheFly): answers
//     queries directly from the matched synchronization edges without
//     building the graph.
//
// Nodes are trace records, identified by (rank, seq). Program-order edges
// are implicit: record (r, k) always precedes (r, k+1). Synchronization
// edges come from the MPI matcher.
//
// The graph-based oracles do not operate on all V records: clocks and
// bitsets only change at synchronization endpoints, so they are computed on
// the sync skeleton (see skeleton.go) — the records that are endpoints of
// sync edges plus per-rank first/last sentinels. Queries on arbitrary refs
// map through the skeleton index and return exactly the full-graph answers.
package hbgraph

import (
	"fmt"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// Graph is the happens-before graph.
type Graph struct {
	counts []int   // records per rank
	base   []int   // node-id offset per rank (prefix sums)
	n      int     // total nodes
	rankOf []int32 // rank per node id — O(1) ref(), no binary search on hot paths

	// CSR cross-rank (synchronization) adjacency over dense node ids;
	// program order is implicit. succAdj[succOff[id]:succOff[id+1]] are the
	// sync successors of id, in matcher edge order.
	succOff []int32
	succAdj []int32
	predOff []int32
	predAdj []int32

	edgeCount int

	skel skeleton // sync skeleton; built once in Build
}

// Build constructs the graph for tr with the matcher's synchronization
// edges. Edges referencing records outside the trace are rejected.
func Build(tr *trace.Trace, edges []match.Edge) (*Graph, error) {
	counts := make([]int, tr.NumRanks())
	for rank, recs := range tr.Ranks {
		counts[rank] = len(recs)
	}
	return BuildCounts(counts, edges)
}

// BuildCounts constructs the graph from per-rank record counts alone — the
// graph's node space is positional, so the record contents are never needed.
// This is the entry point for streaming ingestion, where no materialized
// trace exists. Edges referencing records outside the counts are rejected.
func BuildCounts(counts []int, edges []match.Edge) (*Graph, error) {
	g := &Graph{
		counts: make([]int, len(counts)),
		base:   make([]int, len(counts)+1),
	}
	for rank, n := range counts {
		g.counts[rank] = n
		g.base[rank+1] = g.base[rank] + n
	}
	g.n = g.base[len(g.counts)]
	g.rankOf = make([]int32, g.n)
	for r := range g.counts {
		for id := g.base[r]; id < g.base[r+1]; id++ {
			g.rankOf[id] = int32(r)
		}
	}

	// CSR in two passes: count degrees into the offset arrays (shifted by
	// one), prefix-sum, then fill with per-node cursors.
	g.succOff = make([]int32, g.n+1)
	g.predOff = make([]int32, g.n+1)
	for _, e := range edges {
		from, ok1 := g.id(e.From)
		to, ok2 := g.id(e.To)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("hbgraph: edge %v→%v references records outside the trace", e.From, e.To)
		}
		g.succOff[from+1]++
		g.predOff[to+1]++
	}
	for i := 0; i < g.n; i++ {
		g.succOff[i+1] += g.succOff[i]
		g.predOff[i+1] += g.predOff[i]
	}
	g.succAdj = make([]int32, len(edges))
	g.predAdj = make([]int32, len(edges))
	scur := make([]int32, g.n)
	pcur := make([]int32, g.n)
	copy(scur, g.succOff[:g.n])
	copy(pcur, g.predOff[:g.n])
	for _, e := range edges {
		from, _ := g.id(e.From)
		to, _ := g.id(e.To)
		g.succAdj[scur[from]] = to
		scur[from]++
		g.predAdj[pcur[to]] = from
		pcur[to]++
	}
	g.edgeCount = len(edges)

	g.buildSkeleton(edges)
	return g, nil
}

// Nodes returns the number of nodes.
func (g *Graph) Nodes() int { return g.n }

// SyncEdges returns the number of synchronization edges.
func (g *Graph) SyncEdges() int { return g.edgeCount }

// SkeletonNodes returns the size S of the sync skeleton the graph-based
// oracles operate on (sync-edge endpoints plus per-rank sentinels).
func (g *Graph) SkeletonNodes() int { return g.skel.n }

// SkeletonLevels returns the number of topological levels in the skeleton's
// Kahn wavefront schedule (0 for an empty or cyclic skeleton).
func (g *Graph) SkeletonLevels() int {
	if g.skel.cycleErr != nil {
		return 0
	}
	return len(g.skel.levelOff) - 1
}

// SkeletonMaxLevelWidth returns the widest wavefront level — the available
// parallelism of the level-synchronized vector-clock pass. It is bounded by
// the rank count: skeleton nodes on one rank are chained by program order,
// so each level holds at most one node per rank.
func (g *Graph) SkeletonMaxLevelWidth() int { return g.skel.maxWidth }

// inRange reports whether ref names a record of the trace. All oracles share
// this bounds check; queries outside the trace are never hb-related.
func (g *Graph) inRange(ref trace.Ref) bool {
	return ref.Rank >= 0 && ref.Rank < len(g.counts) &&
		ref.Seq >= 0 && ref.Seq < g.counts[ref.Rank]
}

// id maps a record ref to a dense node id.
func (g *Graph) id(ref trace.Ref) (int32, bool) {
	if !g.inRange(ref) {
		return 0, false
	}
	return int32(g.base[ref.Rank] + ref.Seq), true
}

// ref maps a dense node id back to a record ref.
func (g *Graph) ref(id int32) trace.Ref {
	rank := g.rankOf[id]
	return trace.Ref{Rank: int(rank), Seq: int(id) - g.base[rank]}
}

// forEachSucc visits all successors of id: the po successor (if any) and the
// synchronization successors.
func (g *Graph) forEachSucc(id int32, visit func(int32)) {
	if int(id)+1 < g.base[g.rankOf[id]+1] {
		visit(id + 1)
	}
	for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
		visit(s)
	}
}

// forEachPred visits all predecessors of id.
func (g *Graph) forEachPred(id int32, visit func(int32)) {
	if int(id) > g.base[g.rankOf[id]] {
		visit(id - 1)
	}
	for _, p := range g.predAdj[g.predOff[id]:g.predOff[id+1]] {
		visit(p)
	}
}

// TopoOrder returns a topological order of all nodes, or an error if po ∪ so
// has a cycle (which Def. 2 forbids; a cycle means the trace or matcher is
// broken).
func (g *Graph) TopoOrder() ([]int32, error) {
	// Indegree pass hoisted per rank: program-order contributions come from
	// the rank cursor (every node but the rank's first has po indegree 1),
	// so no per-node rank lookup is needed, and sync contributions read the
	// CSR arena directly.
	indeg := make([]int32, g.n)
	for r := range g.counts {
		for id := g.base[r] + 1; id < g.base[r+1]; id++ {
			indeg[id] = 1
		}
	}
	for _, to := range g.succAdj {
		indeg[to]++
	}
	// The queue doubles as the order: every node is appended exactly once,
	// and a head cursor pops without re-slicing (queue[1:] would pin the
	// whole backing array while shrinking the visible window).
	order := make([]int32, 0, g.n)
	for id := int32(0); id < int32(g.n); id++ {
		if indeg[id] == 0 {
			order = append(order, id)
		}
	}
	for head := 0; head < len(order); head++ {
		g.forEachSucc(order[head], func(s int32) {
			indeg[s]--
			if indeg[s] == 0 {
				order = append(order, s)
			}
		})
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("hbgraph: po ∪ so contains a cycle (%d of %d nodes ordered)", len(order), g.n)
	}
	return order, nil
}

// Oracle answers happens-before queries. HB(a, b) reports whether a
// happens-before b (strictly: a ≠ b and there is a path a → b).
//
// Implementations must be safe for concurrent HB calls once constructed —
// the parallel verifier shares one oracle across all its workers and model
// passes.
type Oracle interface {
	HB(a, b trace.Ref) bool
	Name() string
}

// sameRankHB answers the trivial program-order case; returns handled=false
// for cross-rank queries.
func sameRankHB(a, b trace.Ref) (result, handled bool) {
	if a.Rank == b.Rank {
		return a.Seq < b.Seq, true
	}
	return false, false
}

package hbgraph

import (
	"fmt"
	"slices"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// skeleton is the sync skeleton of the happens-before graph: the records
// that are endpoints of synchronization edges, plus the first and last
// record of every non-empty rank as sentinels. Clocks and reachability
// bitsets only change at these nodes — between two consecutive skeleton
// nodes on a rank lies a pure program-order run with no incident sync edge —
// so the graph-based oracles compute on S = skeleton nodes instead of
// V = all records, and map arbitrary refs onto the skeleton at query time.
//
// Query mapping (the fringe argument): for any record b, every cross-rank
// path into b enters b's rank at a sync-edge target w with seq(w) ≤ seq(b);
// w is a skeleton node, so w po-precedes-or-equals prev(b), the last
// skeleton node at-or-before b. Hence b's full vector clock equals prev(b)'s
// skeleton clock on every rank except b's own. Symmetrically, every
// cross-rank path out of a leaves through a sync source at-or-after a,
// which po-follows-or-equals next(a), the first skeleton node at-or-after a.
// So for a.Rank ≠ b.Rank:
//
//	HB(a, b) ⇔ skeleton clock of prev(b) on a.Rank ≥ a.Seq  (vector clocks)
//	HB(a, b) ⇔ next(a) reaches prev(b) in the skeleton      (BFS / closure)
//
// The sentinels guarantee prev and next always exist for in-range refs.
// Same-rank queries never touch the skeleton (program order answers them).
type skeleton struct {
	nranks int
	n      int     // skeleton nodes S
	base   []int32 // len nranks+1: skeleton-id offset per rank
	seqs   []int32 // len S, rank-major, strictly ascending within a rank
	rankOf []int32 // len S

	// prev maps every full node id to the skeleton id of the last skeleton
	// record at-or-before it on the same rank — O(1) ref resolution, O(V)
	// int32s once per Build instead of a binary search per query.
	prev []int32

	// CSR sync adjacency over skeleton ids; program order is implicit
	// (skeleton ids on one rank are consecutive and po-chained).
	succOff []int32
	succAdj []int32
	predOff []int32
	predAdj []int32

	// Kahn wavefront schedule: levelOrder[levelOff[l]:levelOff[l+1]] holds
	// the skeleton nodes of level l; every node's predecessors sit in
	// earlier levels, so one level's clocks can be computed concurrently.
	levelOrder []int32
	levelOff   []int32
	maxWidth   int
	cycleErr   error // set when po ∪ so is cyclic; reported by clock/closure construction
}

// buildSkeleton populates g.skel from the validated edge list. Called once
// from Build, after the full-graph CSR exists.
func (g *Graph) buildSkeleton(edges []match.Edge) {
	s := &g.skel
	nranks := len(g.counts)
	s.nranks = nranks

	// Membership: first/last sentinels plus all sync endpoints, deduplicated
	// per rank.
	perRank := make([][]int32, nranks)
	for r, cnt := range g.counts {
		if cnt > 0 {
			perRank[r] = append(perRank[r], 0)
			if cnt > 1 {
				perRank[r] = append(perRank[r], int32(cnt-1))
			}
		}
	}
	for _, e := range edges {
		perRank[e.From.Rank] = append(perRank[e.From.Rank], int32(e.From.Seq))
		perRank[e.To.Rank] = append(perRank[e.To.Rank], int32(e.To.Seq))
	}
	s.base = make([]int32, nranks+1)
	total := 0
	for r := range perRank {
		slices.Sort(perRank[r])
		perRank[r] = slices.Compact(perRank[r])
		total += len(perRank[r])
		s.base[r+1] = int32(total)
	}
	s.n = total
	s.seqs = make([]int32, 0, total)
	s.rankOf = make([]int32, 0, total)
	for r, seqs := range perRank {
		s.seqs = append(s.seqs, seqs...)
		for range seqs {
			s.rankOf = append(s.rankOf, int32(r))
		}
	}

	// prev map: walk each rank once, advancing a cursor over its skeleton
	// seqs.
	s.prev = make([]int32, g.n)
	for r := 0; r < nranks; r++ {
		seqs := s.seqs[s.base[r]:s.base[r+1]]
		cur := 0
		for j := 0; j < g.counts[r]; j++ {
			for cur+1 < len(seqs) && int(seqs[cur+1]) <= j {
				cur++
			}
			s.prev[g.base[r]+j] = s.base[r] + int32(cur)
		}
	}

	// Sync CSR over skeleton ids. Edge endpoints are skeleton members, so
	// prev resolves them exactly.
	s.succOff = make([]int32, s.n+1)
	s.predOff = make([]int32, s.n+1)
	for _, e := range edges {
		from := s.prev[g.base[e.From.Rank]+e.From.Seq]
		to := s.prev[g.base[e.To.Rank]+e.To.Seq]
		s.succOff[from+1]++
		s.predOff[to+1]++
	}
	for i := 0; i < s.n; i++ {
		s.succOff[i+1] += s.succOff[i]
		s.predOff[i+1] += s.predOff[i]
	}
	s.succAdj = make([]int32, len(edges))
	s.predAdj = make([]int32, len(edges))
	scur := make([]int32, s.n)
	pcur := make([]int32, s.n)
	copy(scur, s.succOff[:s.n])
	copy(pcur, s.predOff[:s.n])
	for _, e := range edges {
		from := s.prev[g.base[e.From.Rank]+e.From.Seq]
		to := s.prev[g.base[e.To.Rank]+e.To.Seq]
		s.succAdj[scur[from]] = to
		scur[from]++
		s.predAdj[pcur[to]] = from
		pcur[to]++
	}

	s.computeLevels()
}

// poSucc returns the program-order successor of skeleton node v, or -1 at
// the end of its rank.
func (s *skeleton) poSucc(v int32) int32 {
	if v+1 < s.base[s.rankOf[v]+1] {
		return v + 1
	}
	return -1
}

// forEachSkelSucc visits v's successors in the skeleton graph: the po
// successor (if any) and the sync successors.
func (s *skeleton) forEachSkelSucc(v int32, visit func(int32)) {
	if w := s.poSucc(v); w >= 0 {
		visit(w)
	}
	for _, w := range s.succAdj[s.succOff[v]:s.succOff[v+1]] {
		visit(w)
	}
}

// computeLevels runs a level-synchronized Kahn pass: level l holds the nodes
// whose longest incoming path has length l. Any cycle in po ∪ so involves at
// least two sync edges, so all its nodes are skeleton nodes and the cycle
// surfaces here as an incomplete order.
func (s *skeleton) computeLevels() {
	indeg := make([]int32, s.n)
	for v := int32(0); v < int32(s.n); v++ {
		if v > s.base[s.rankOf[v]] {
			indeg[v]++ // po predecessor v-1
		}
		indeg[v] += s.predOff[v+1] - s.predOff[v]
	}
	s.levelOrder = make([]int32, 0, s.n)
	s.levelOff = append(s.levelOff[:0], 0)
	frontier := make([]int32, 0, s.nranks)
	for v := int32(0); v < int32(s.n); v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	var next []int32
	for len(frontier) > 0 {
		s.levelOrder = append(s.levelOrder, frontier...)
		s.levelOff = append(s.levelOff, int32(len(s.levelOrder)))
		if len(frontier) > s.maxWidth {
			s.maxWidth = len(frontier)
		}
		next = next[:0]
		for _, v := range frontier {
			s.forEachSkelSucc(v, func(w int32) {
				indeg[w]--
				if indeg[w] == 0 {
					next = append(next, w)
				}
			})
		}
		frontier, next = next, frontier
	}
	if len(s.levelOrder) != s.n {
		s.cycleErr = fmt.Errorf("hbgraph: po ∪ so contains a cycle (%d of %d skeleton nodes ordered)",
			len(s.levelOrder), s.n)
		s.levelOrder = s.levelOrder[:0]
		s.levelOff = s.levelOff[:1]
		s.maxWidth = 0
	}
}

// skelPrev returns the skeleton id governing ref on the program-order fringe
// before it: the last skeleton record at-or-before ref on its rank. Caller
// guarantees ref is in range.
func (g *Graph) skelPrev(ref trace.Ref) int32 {
	return g.skel.prev[g.base[ref.Rank]+ref.Seq]
}

// skelNext returns the first skeleton record at-or-after ref on its rank.
// Caller guarantees ref is in range; the last-record sentinel guarantees
// existence.
func (g *Graph) skelNext(ref trace.Ref) int32 {
	p := g.skelPrev(ref)
	if int(g.skel.seqs[p]) == ref.Seq {
		return p
	}
	return p + 1
}

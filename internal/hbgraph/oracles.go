package hbgraph

import (
	"fmt"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// ---------------------------------------------------------------------------
// 1. Vector clocks (§IV-D1)

// VCOracle answers hb queries from precomputed vector clocks: clock[v][r] is
// the highest sequence index on rank r that happens-before-or-equals v.
type VCOracle struct {
	g      *Graph
	clocks [][]int32 // node id -> per-rank clock (-1 = nothing known)
}

// VectorClocks computes vector clocks by propagating along a topological
// order — O(V·P + E·P) once, O(1) per query.
func (g *Graph) VectorClocks() (*VCOracle, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	nranks := len(g.counts)
	clocks := make([][]int32, g.n)
	for _, id := range order {
		c := make([]int32, nranks)
		for i := range c {
			c[i] = -1
		}
		ref := g.ref(id)
		c[ref.Rank] = int32(ref.Seq)
		g.forEachPred(id, func(p int32) {
			for r, v := range clocks[p] {
				if v > c[r] {
					c[r] = v
				}
			}
		})
		clocks[id] = c
	}
	return &VCOracle{g: g, clocks: clocks}, nil
}

// HB reports whether a happens-before b.
func (o *VCOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	bid, ok := o.g.id(b)
	if !ok {
		return false
	}
	aid, ok := o.g.id(a)
	if !ok {
		return false
	}
	_ = aid
	return o.clocks[bid][a.Rank] >= int32(a.Seq)
}

// Name identifies the algorithm.
func (o *VCOracle) Name() string { return "vector-clock" }

// ---------------------------------------------------------------------------
// 2. Graph reachability (§IV-D2)

// BFSOracle answers hb queries by forward breadth-first search, memoizing
// visited sets per source.
type BFSOracle struct {
	g    *Graph
	memo map[int32][]bool
}

// Reachability returns a BFS-based oracle.
func (g *Graph) Reachability() *BFSOracle {
	return &BFSOracle{g: g, memo: make(map[int32][]bool)}
}

// HB reports whether a happens-before b.
func (o *BFSOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	aid, ok1 := o.g.id(a)
	bid, ok2 := o.g.id(b)
	if !ok1 || !ok2 {
		return false
	}
	seen, ok := o.memo[aid]
	if !ok {
		seen = make([]bool, o.g.n)
		queue := []int32{aid}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			o.g.forEachSucc(id, func(s int32) {
				if !seen[s] {
					seen[s] = true
					queue = append(queue, s)
				}
			})
		}
		o.memo[aid] = seen
	}
	return seen[bid]
}

// Name identifies the algorithm.
func (o *BFSOracle) Name() string { return "reachability" }

// ---------------------------------------------------------------------------
// 3. Transitive closure (§IV-D3)

// TCOracle answers hb queries from a full transitive-closure bitset.
type TCOracle struct {
	g     *Graph
	words int
	bits  []uint64 // n * words
}

// maxTCNodes bounds the transitive closure's O(V²) memory (64 MiB of
// bitsets ≈ 23k nodes).
const maxTCNodes = 1 << 15

// TransitiveClosure materializes reachability bitsets in reverse topological
// order. It refuses graphs whose closure would not fit in memory; callers
// fall back to another oracle (the dynamic selection of §VII).
func (g *Graph) TransitiveClosure() (*TCOracle, error) {
	if g.n > maxTCNodes {
		return nil, fmt.Errorf("hbgraph: transitive closure over %d nodes exceeds the %d-node budget", g.n, maxTCNodes)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	words := (g.n + 63) / 64
	bits := make([]uint64, g.n*words)
	row := func(id int32) []uint64 { return bits[int(id)*words : (int(id)+1)*words] }
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		r := row(id)
		g.forEachSucc(id, func(s int32) {
			r[s/64] |= 1 << (uint(s) % 64)
			for w, v := range row(s) {
				r[w] |= v
			}
		})
	}
	return &TCOracle{g: g, words: words, bits: bits}, nil
}

// HB reports whether a happens-before b.
func (o *TCOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	aid, ok1 := o.g.id(a)
	bid, ok2 := o.g.id(b)
	if !ok1 || !ok2 {
		return false
	}
	return o.bits[int(aid)*o.words+int(bid)/64]&(1<<(uint(bid)%64)) != 0
}

// Name identifies the algorithm.
func (o *TCOracle) Name() string { return "transitive-closure" }

// ---------------------------------------------------------------------------
// 4. On-the-fly (§IV-D4)

// OTFOracle answers hb queries straight from the matched synchronization
// edges, without building the happens-before graph: per query it propagates
// a per-rank "earliest reachable sequence" frontier across the edge list
// until fixpoint.
type OTFOracle struct {
	nranks int
	counts []int
	// edgesByRank[r] holds the sync edges originating on rank r, sorted
	// by source sequence.
	edgesByRank [][]match.Edge
}

// NewOnTheFly builds the on-the-fly oracle from the matcher output alone.
func NewOnTheFly(tr *trace.Trace, edges []match.Edge) *OTFOracle {
	o := &OTFOracle{
		nranks:      tr.NumRanks(),
		counts:      make([]int, tr.NumRanks()),
		edgesByRank: make([][]match.Edge, tr.NumRanks()),
	}
	for rank, recs := range tr.Ranks {
		o.counts[rank] = len(recs)
	}
	for _, e := range edges {
		if e.From.Rank >= 0 && e.From.Rank < o.nranks {
			o.edgesByRank[e.From.Rank] = append(o.edgesByRank[e.From.Rank], e)
		}
	}
	return o
}

// HB reports whether a happens-before b.
func (o *OTFOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if a.Rank < 0 || a.Rank >= o.nranks || b.Rank < 0 || b.Rank >= o.nranks {
		return false
	}
	// earliest[r]: smallest sequence on rank r known to be hb-after a
	// (math.MaxInt when none).
	const inf = int(^uint(0) >> 1)
	earliest := make([]int, o.nranks)
	for i := range earliest {
		earliest[i] = inf
	}
	earliest[a.Rank] = a.Seq
	// Relax sync edges to fixpoint: an edge (u → v) applies when u is at
	// or after the frontier on its rank, and pulls v's rank's frontier
	// down to v's sequence. Program order is implicit in the ≥ test.
	for changed := true; changed; {
		changed = false
		for r := 0; r < o.nranks; r++ {
			if earliest[r] == inf {
				continue
			}
			for _, e := range o.edgesByRank[r] {
				if e.From.Seq < earliest[r] {
					continue
				}
				if e.To.Seq < earliest[e.To.Rank] {
					earliest[e.To.Rank] = e.To.Seq
					changed = true
				}
			}
		}
	}
	return earliest[b.Rank] <= b.Seq
}

// Name identifies the algorithm.
func (o *OTFOracle) Name() string { return "on-the-fly" }

package hbgraph

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// All oracles are safe for concurrent HB queries once constructed: VCOracle
// and TCOracle are immutable, BFSOracle guards its memo with striped locks,
// and OTFOracle keeps per-query state in a sync.Pool. The parallel verifier
// (internal/verify) relies on this contract.
//
// The three graph-based oracles compute over the sync skeleton (skeleton.go)
// and map query refs through it, so their state is O(S·P) / O(S²) instead of
// O(V·P) / O(V²).

// ---------------------------------------------------------------------------
// 1. Vector clocks (§IV-D1)

// VCOracle answers hb queries from precomputed skeleton vector clocks: the
// clock entry (v, r) is the highest sequence index on rank r that
// happens-before-or-equals skeleton node v. Clocks live in one flat
// node-major []int32 — a single allocation instead of one slice per node,
// and adjacent nodes' clocks share cache lines.
type VCOracle struct {
	g      *Graph
	nranks int
	clocks []int32 // len S*nranks; clocks[skelID*nranks+r] (-1 = nothing known)
}

// VCOptions configures vector-clock construction.
type VCOptions struct {
	// Workers bounds the wavefront parallelism; 0 means GOMAXPROCS, 1 forces
	// the serial path. The clocks are identical at every worker count:
	// within a level no node depends on another, and max-merge is
	// order-independent.
	Workers int
	// Obs carries telemetry: pool stats for the wavefront ("par.vc-wavefront.*")
	// and the clock-arena gauges.
	Obs obs.Ctx
}

// vcMinParallelWidth is the level width below which the wavefront pass stays
// on the calling goroutine: a level holds at most one node per rank, so
// narrow levels (few ranks) never amortize the handoff.
const vcMinParallelWidth = 8

// VectorClocks computes skeleton vector clocks serially — O(S·P + E·P) once,
// O(1) per query.
func (g *Graph) VectorClocks() (*VCOracle, error) {
	return g.VectorClocksOpts(VCOptions{Workers: 1})
}

// VectorClocksOpts computes skeleton vector clocks with level-synchronized
// (Kahn wavefront) propagation: levels are processed in order, and the nodes
// within one level — whose predecessors all sit in earlier levels — update
// their clocks concurrently.
func (g *Graph) VectorClocksOpts(opts VCOptions) (*VCOracle, error) {
	s := &g.skel
	if s.cycleErr != nil {
		return nil, s.cycleErr
	}
	nranks := s.nranks
	clocks := make([]int32, s.n*nranks)
	// One closure reused across levels (levels run strictly in sequence):
	// step(i) fills the clock row of the i-th node of the current level.
	var nodes []int32
	step := func(i int) {
		v := nodes[i]
		c := clocks[int(v)*nranks : (int(v)+1)*nranks]
		for r := range c {
			c[r] = -1
		}
		r := s.rankOf[v]
		if v > s.base[r] {
			mergeClock(c, clocks[int(v-1)*nranks:int(v)*nranks])
		}
		for _, p := range s.predAdj[s.predOff[v]:s.predOff[v+1]] {
			mergeClock(c, clocks[int(p)*nranks:(int(p)+1)*nranks])
		}
		if sq := s.seqs[v]; sq > c[r] {
			c[r] = sq
		}
	}
	workers := par.Resolve(opts.Workers)
	for l := 0; l+1 < len(s.levelOff); l++ {
		nodes = s.levelOrder[s.levelOff[l]:s.levelOff[l+1]]
		if workers > 1 && len(nodes) >= vcMinParallelWidth {
			par.DoObs(opts.Obs, "vc-wavefront", workers, len(nodes), step)
		} else {
			for i := range nodes {
				step(i)
			}
		}
	}
	if r := opts.Obs.R; r != nil {
		r.Gauge("hbgraph.vc_arena_bytes").Set(int64(4 * len(clocks)))
		r.Gauge("hbgraph.vc_full_arena_bytes").Set(int64(4 * g.n * nranks))
	}
	return &VCOracle{g: g, nranks: nranks, clocks: clocks}, nil
}

// mergeClock folds src into dst entrywise by max.
func mergeClock(dst, src []int32) {
	for r, v := range src {
		if v > dst[r] {
			dst[r] = v
		}
	}
}

// HB reports whether a happens-before b.
func (o *VCOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if !o.g.inRange(a) || !o.g.inRange(b) {
		return false
	}
	p := o.g.skelPrev(b)
	return o.clocks[int(p)*o.nranks+a.Rank] >= int32(a.Seq)
}

// ArenaBytes returns the size of the clock arena — 4·S·P bytes, versus the
// 4·V·P a full-graph clock table would need.
func (o *VCOracle) ArenaBytes() int { return 4 * len(o.clocks) }

// Name identifies the algorithm.
func (o *VCOracle) Name() string { return "vector-clock" }

// SegGraph returns the graph whose skeleton coordinates ProbeSeg accepts.
func (o *VCOracle) SegGraph() *Graph { return o.g }

// ProbeSeg answers a pre-resolved cross-rank query in one clock compare:
// the skeleton clock of prev(b) already folds in every path into b's
// segment, so next(a) is not needed.
func (o *VCOracle) ProbeSeg(aRank, aSeq, aNext, bPrev int32) bool {
	return o.clocks[int(bPrev)*o.nranks+int(aRank)] >= aSeq
}

// ---------------------------------------------------------------------------
// 2. Graph reachability (§IV-D2)

// bfsMemoBudget bounds the memory held by BFSOracle's memoized reachability
// rows (bitsets, not the O(V) []bool rows of the naive memo).
const bfsMemoBudget = 32 << 20

// bfsStripes is the lock-striping factor: queries for different source nodes
// contend only within their stripe.
const bfsStripes = 16

// BFSOracle answers hb queries by forward breadth-first search over the sync
// skeleton, memoizing reachability bitsets per source skeleton node in a
// bounded, mutex-striped LRU.
type BFSOracle struct {
	g       *Graph
	words   int // bitset words per row: ceil(S/64)
	stripes [bfsStripes]bfsStripe
}

type bfsStripe struct {
	mu   sync.Mutex
	max  int                     // row capacity of this stripe
	by   map[int32]*list.Element // source skeleton node -> LRU element
	lru  *list.List              // front = most recently used; values are *bfsRow
	hits int64                   // memo hits, under mu
	miss int64                   // memo misses (rows computed), under mu
}

type bfsRow struct {
	id   int32
	bits []uint64
}

// Reachability returns a BFS-based oracle with the default memo budget.
func (g *Graph) Reachability() *BFSOracle {
	return g.reachabilityWithBudget(bfsMemoBudget)
}

// reachabilityWithBudget is the constructor with an explicit memo budget in
// bytes (tests shrink it to force eviction).
func (g *Graph) reachabilityWithBudget(budget int) *BFSOracle {
	o := &BFSOracle{g: g, words: (g.skel.n + 63) / 64}
	rowBytes := 8 * o.words
	if rowBytes == 0 {
		rowBytes = 8
	}
	maxRows := budget / rowBytes
	if maxRows < bfsStripes {
		maxRows = bfsStripes
	}
	for i := range o.stripes {
		o.stripes[i].max = maxRows / bfsStripes
		o.stripes[i].by = make(map[int32]*list.Element)
		o.stripes[i].lru = list.New()
	}
	return o
}

// HB reports whether a happens-before b. Cross-rank queries reduce to
// skeleton reachability: a reaches b in the full graph iff next(a) reaches
// prev(b) in the skeleton (the path enters and leaves the endpoint ranks
// through skeleton nodes; see skeleton.go).
func (o *BFSOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if !o.g.inRange(a) || !o.g.inRange(b) {
		return false
	}
	src := o.g.skelNext(a)
	dst := o.g.skelPrev(b)
	bits := o.row(src)
	return bits[int(dst)/64]&(1<<(uint(dst)%64)) != 0
}

// row returns the reachability bitset for skeleton source id, computing and
// caching it on a miss. Two goroutines missing on the same source may both
// run the BFS; the duplicate work is bounded and the cached result is
// identical.
func (o *BFSOracle) row(id int32) []uint64 {
	s := &o.stripes[int(id)%bfsStripes]
	s.mu.Lock()
	if el, ok := s.by[id]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		bits := el.Value.(*bfsRow).bits
		s.mu.Unlock()
		return bits
	}
	s.miss++
	s.mu.Unlock()

	bits := o.computeRow(id)

	s.mu.Lock()
	if el, ok := s.by[id]; ok {
		// Lost the race to another goroutine; keep its row.
		s.lru.MoveToFront(el)
		bits = el.Value.(*bfsRow).bits
	} else {
		s.by[id] = s.lru.PushFront(&bfsRow{id: id, bits: bits})
		for s.lru.Len() > s.max {
			old := s.lru.Remove(s.lru.Back()).(*bfsRow)
			delete(s.by, old.id)
		}
	}
	s.mu.Unlock()
	return bits
}

// computeRow runs the forward BFS from skeleton node id into a fresh bitset.
func (o *BFSOracle) computeRow(id int32) []uint64 {
	bits := make([]uint64, o.words)
	queue := make([]int32, 1, 64)
	queue[0] = id
	for head := 0; head < len(queue); head++ {
		o.g.skel.forEachSkelSucc(queue[head], func(s int32) {
			w, m := int(s)/64, uint64(1)<<(uint(s)%64)
			if bits[w]&m == 0 {
				bits[w] |= m
				queue = append(queue, s)
			}
		})
	}
	return bits
}

// Name identifies the algorithm.
func (o *BFSOracle) Name() string { return "reachability" }

// SegGraph returns the graph whose skeleton coordinates ProbeSeg accepts.
func (o *BFSOracle) SegGraph() *Graph { return o.g }

// ProbeSeg answers a pre-resolved cross-rank query from the memoized row of
// next(a) — O(1) on a memo hit, one skeleton BFS on a miss.
func (o *BFSOracle) ProbeSeg(aRank, aSeq, aNext, bPrev int32) bool {
	bits := o.row(aNext)
	return bits[int(bPrev)/64]&(1<<(uint(bPrev)%64)) != 0
}

// MemoStats sums the memo hit/miss counts across stripes. The split is
// scheduling-dependent under concurrent queries (two goroutines can both
// miss on one source), so consumers record it as a volatile metric.
func (o *BFSOracle) MemoStats() (hits, misses int64) {
	for i := range o.stripes {
		s := &o.stripes[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.miss
		s.mu.Unlock()
	}
	return hits, misses
}

// ---------------------------------------------------------------------------
// 3. Transitive closure (§IV-D3)

// TCOracle answers hb queries from a full skeleton transitive-closure bitset.
type TCOracle struct {
	g     *Graph
	words int
	bits  []uint64 // S * words
}

// maxTCNodes bounds the transitive closure's O(S²) memory (64 MiB of
// bitsets ≈ 23k nodes). The budget is on skeleton nodes: sync-sparse traces
// of millions of records still qualify when their skeleton is small.
const maxTCNodes = 1 << 15

// TransitiveClosure materializes skeleton reachability bitsets in reverse
// topological order. It refuses graphs whose closure would not fit in
// memory; callers fall back to another oracle (the dynamic selection of
// §VII).
func (g *Graph) TransitiveClosure() (*TCOracle, error) {
	s := &g.skel
	if s.n > maxTCNodes {
		return nil, fmt.Errorf("hbgraph: transitive closure over %d skeleton nodes exceeds the %d-node budget", s.n, maxTCNodes)
	}
	if s.cycleErr != nil {
		return nil, s.cycleErr
	}
	words := (s.n + 63) / 64
	bits := make([]uint64, s.n*words)
	row := func(id int32) []uint64 { return bits[int(id)*words : (int(id)+1)*words] }
	// levelOrder is a topological order (every node's predecessors sit in
	// earlier levels), so its reverse processes successors first.
	for i := len(s.levelOrder) - 1; i >= 0; i-- {
		id := s.levelOrder[i]
		r := row(id)
		s.forEachSkelSucc(id, func(sc int32) {
			r[sc/64] |= 1 << (uint(sc) % 64)
			for w, v := range row(sc) {
				r[w] |= v
			}
		})
	}
	return &TCOracle{g: g, words: words, bits: bits}, nil
}

// HB reports whether a happens-before b, via the same skeleton mapping as
// BFSOracle.
func (o *TCOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if !o.g.inRange(a) || !o.g.inRange(b) {
		return false
	}
	src := o.g.skelNext(a)
	dst := o.g.skelPrev(b)
	return o.bits[int(src)*o.words+int(dst)/64]&(1<<(uint(dst)%64)) != 0
}

// Name identifies the algorithm.
func (o *TCOracle) Name() string { return "transitive-closure" }

// SegGraph returns the graph whose skeleton coordinates ProbeSeg accepts.
func (o *TCOracle) SegGraph() *Graph { return o.g }

// ProbeSeg answers a pre-resolved cross-rank query in one bit probe.
func (o *TCOracle) ProbeSeg(aRank, aSeq, aNext, bPrev int32) bool {
	return o.bits[int(aNext)*o.words+int(bPrev)/64]&(1<<(uint(bPrev)%64)) != 0
}

// ---------------------------------------------------------------------------
// 4. On-the-fly (§IV-D4)

// OTFOracle answers hb queries straight from the matched synchronization
// edges, without building the happens-before graph: per query it propagates
// a per-rank "earliest reachable sequence" frontier across the edge list
// until fixpoint. Frontier buffers are pooled across queries, and each
// relaxation pass binary-searches the seq-sorted per-rank edge list instead
// of scanning edges below the frontier.
type OTFOracle struct {
	nranks int
	counts []int
	// edgesByRank[r] holds the sync edges originating on rank r, sorted
	// by source sequence.
	edgesByRank [][]match.Edge
	frontiers   sync.Pool // *[]int scratch, len nranks
}

// NewOnTheFly builds the on-the-fly oracle from the matcher output alone.
func NewOnTheFly(tr *trace.Trace, edges []match.Edge) *OTFOracle {
	counts := make([]int, tr.NumRanks())
	for rank, recs := range tr.Ranks {
		counts[rank] = len(recs)
	}
	return NewOnTheFlyCounts(counts, edges)
}

// NewOnTheFlyCounts builds the oracle from per-rank record counts, for
// streaming callers that never materialize the trace.
func NewOnTheFlyCounts(counts []int, edges []match.Edge) *OTFOracle {
	o := &OTFOracle{
		nranks:      len(counts),
		counts:      make([]int, len(counts)),
		edgesByRank: make([][]match.Edge, len(counts)),
	}
	o.frontiers.New = func() any {
		buf := make([]int, o.nranks)
		return &buf
	}
	copy(o.counts, counts)
	for _, e := range edges {
		if e.From.Rank >= 0 && e.From.Rank < o.nranks {
			o.edgesByRank[e.From.Rank] = append(o.edgesByRank[e.From.Rank], e)
		}
	}
	for _, es := range o.edgesByRank {
		sort.Slice(es, func(i, j int) bool {
			if es[i].From.Seq != es[j].From.Seq {
				return es[i].From.Seq < es[j].From.Seq
			}
			return es[i].To.Less(es[j].To)
		})
	}
	return o
}

// HB reports whether a happens-before b.
func (o *OTFOracle) HB(a, b trace.Ref) bool {
	if res, ok := sameRankHB(a, b); ok {
		return res
	}
	if a.Rank < 0 || a.Rank >= o.nranks || b.Rank < 0 || b.Rank >= o.nranks ||
		a.Seq < 0 || a.Seq >= o.counts[a.Rank] || b.Seq < 0 || b.Seq >= o.counts[b.Rank] {
		return false
	}
	// earliest[r]: smallest sequence on rank r known to be hb-after a
	// (math.MaxInt when none).
	const inf = int(^uint(0) >> 1)
	ep := o.frontiers.Get().(*[]int)
	earliest := *ep
	for i := range earliest {
		earliest[i] = inf
	}
	earliest[a.Rank] = a.Seq
	// Relax sync edges to fixpoint: an edge (u → v) applies when u is at
	// or after the frontier on its rank, and pulls v's rank's frontier
	// down to v's sequence. Program order is implicit in the ≥ test, so
	// only the sorted suffix starting at the frontier can apply.
	for changed := true; changed; {
		changed = false
		for r := 0; r < o.nranks; r++ {
			if earliest[r] == inf {
				continue
			}
			es := o.edgesByRank[r]
			at := earliest[r]
			i := sort.Search(len(es), func(i int) bool { return es[i].From.Seq >= at })
			for _, e := range es[i:] {
				if e.To.Seq < earliest[e.To.Rank] {
					earliest[e.To.Rank] = e.To.Seq
					changed = true
				}
			}
		}
	}
	res := earliest[b.Rank] <= b.Seq
	o.frontiers.Put(ep)
	return res
}

// Name identifies the algorithm.
func (o *OTFOracle) Name() string { return "on-the-fly" }

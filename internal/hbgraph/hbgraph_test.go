package hbgraph

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// mkTrace builds a trace skeleton with the given per-rank record counts.
func mkTrace(counts ...int) *trace.Trace {
	tr := trace.New(len(counts))
	for rank, n := range counts {
		for i := 0; i < n; i++ {
			tr.Append(trace.Record{Rank: rank, Func: "op", Layer: trace.LayerPOSIX,
				Tick: int64(2*i + 1), Ret: int64(2*i + 2)})
		}
	}
	return tr
}

func ref(rank, seq int) trace.Ref { return trace.Ref{Rank: rank, Seq: seq} }

func edges(pairs ...[4]int) []match.Edge {
	out := make([]match.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = match.Edge{From: ref(p[0], p[1]), To: ref(p[2], p[3])}
	}
	return out
}

// allOracles builds the four graph-based oracles plus the on-the-fly one.
func allOracles(t *testing.T, tr *trace.Trace, es []match.Edge) []Oracle {
	t.Helper()
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := g.VectorClocks()
	if err != nil {
		t.Fatal(err)
	}
	tc, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	seg, err := g.SegReachability(SegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return []Oracle{vc, g.Reachability(), tc, seg, NewOnTheFly(tr, es)}
}

func TestProgramOrderIsHB(t *testing.T) {
	tr := mkTrace(3)
	for _, o := range allOracles(t, tr, nil) {
		if !o.HB(ref(0, 0), ref(0, 2)) {
			t.Errorf("%s: po not hb", o.Name())
		}
		if o.HB(ref(0, 2), ref(0, 0)) {
			t.Errorf("%s: po reversed", o.Name())
		}
		if o.HB(ref(0, 1), ref(0, 1)) {
			t.Errorf("%s: hb must be irreflexive", o.Name())
		}
	}
}

func TestCrossRankNeedsEdges(t *testing.T) {
	tr := mkTrace(2, 2)
	for _, o := range allOracles(t, tr, nil) {
		if o.HB(ref(0, 0), ref(1, 1)) {
			t.Errorf("%s: cross-rank hb without sync edges", o.Name())
		}
	}
}

func TestEdgeAndTransitivity(t *testing.T) {
	// rank0: a b ; rank1: c d ; rank2: e f
	// b → c, d → e gives a hb f transitively.
	tr := mkTrace(2, 2, 2)
	es := edges([4]int{0, 1, 1, 0}, [4]int{1, 1, 2, 0})
	for _, o := range allOracles(t, tr, es) {
		cases := []struct {
			a, b trace.Ref
			want bool
		}{
			{ref(0, 1), ref(1, 0), true},  // direct edge
			{ref(0, 0), ref(1, 1), true},  // po + edge + po
			{ref(0, 0), ref(2, 1), true},  // two hops
			{ref(1, 0), ref(0, 0), false}, // no reverse
			{ref(2, 0), ref(0, 1), false},
			{ref(1, 1), ref(2, 0), true},
		}
		for _, tc := range cases {
			if got := o.HB(tc.a, tc.b); got != tc.want {
				t.Errorf("%s: HB(%v,%v) = %v, want %v", o.Name(), tc.a, tc.b, got, tc.want)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	tr := mkTrace(1, 1)
	es := edges([4]int{0, 0, 1, 0}, [4]int{1, 0, 0, 0})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := g.VectorClocks(); err == nil {
		t.Fatal("vector clocks accepted a cyclic graph")
	}
}

func TestBuildRejectsOutOfRangeEdges(t *testing.T) {
	tr := mkTrace(1)
	if _, err := Build(tr, edges([4]int{0, 0, 3, 0})); err == nil {
		t.Fatal("edge to missing rank accepted")
	}
	if _, err := Build(tr, edges([4]int{0, 5, 0, 0})); err == nil {
		t.Fatal("edge from missing seq accepted")
	}
}

func TestTransitiveClosureBudget(t *testing.T) {
	// The budget is on skeleton nodes: a sync-dense graph whose skeleton
	// exceeds it is refused...
	per := maxTCNodes/2 + 1
	tr := mkTrace(per, per)
	es := make([]match.Edge, 0, per-1)
	for i := 0; i+1 < per; i++ {
		es = append(es, match.Edge{From: ref(0, i), To: ref(1, i+1)})
	}
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	if g.SkeletonNodes() <= maxTCNodes {
		t.Fatalf("test graph skeleton %d nodes, need > %d", g.SkeletonNodes(), maxTCNodes)
	}
	if _, err := g.TransitiveClosure(); err == nil {
		t.Fatal("transitive closure ignored its memory budget")
	}
	// ...while a sync-sparse trace with even more records now qualifies: its
	// skeleton is just the sentinels.
	sparse := mkTrace(maxTCNodes + 1)
	g2, err := Build(sparse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.TransitiveClosure(); err != nil {
		t.Fatalf("transitive closure refused a %d-record trace with a %d-node skeleton: %v",
			maxTCNodes+1, g2.SkeletonNodes(), err)
	}
}

// TestSegReachabilityBudget probes the byte-budget boundary exactly: a budget
// of the matrix's own size builds, one byte less refuses, and a negative
// budget disables the cap entirely.
func TestSegReachabilityBudget(t *testing.T) {
	tr := mkTrace(4, 4)
	es := edges([4]int{0, 0, 1, 1}, [4]int{1, 2, 0, 3})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	n := g.SkeletonNodes()
	size := n * ((n + 63) / 64) * 8
	seg, err := g.SegReachability(SegOptions{ByteBudget: size})
	if err != nil {
		t.Fatalf("budget %d refused a %d-byte matrix: %v", size, size, err)
	}
	if seg.ArenaBytes() != size {
		t.Errorf("arena = %d bytes, want %d", seg.ArenaBytes(), size)
	}
	if _, err := g.SegReachability(SegOptions{ByteBudget: size - 1}); err == nil {
		t.Fatal("segment reachability ignored its byte budget")
	}
	if _, err := g.SegReachability(SegOptions{ByteBudget: -1}); err != nil {
		t.Fatalf("negative budget must disable the cap: %v", err)
	}
	// The matrix is worker-count independent: rows within a level are
	// disjoint and OR is order-free.
	par4, err := g.SegReachability(SegOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seg.bits {
		if seg.bits[i] != par4.bits[i] {
			t.Fatalf("word %d differs between serial and parallel builds", i)
		}
	}
}

// TestOracleQueriesOutsideTrace covers the shared bounds check of all five
// algorithms: refs with out-of-range ranks or sequences (high and negative)
// are never hb-related in either direction.
func TestOracleQueriesOutsideTrace(t *testing.T) {
	tr := mkTrace(2, 2)
	es := edges([4]int{0, 0, 1, 1})
	in := ref(0, 0)
	out := []trace.Ref{ref(7, 0), ref(-1, 0), ref(1, 5), ref(1, -2)}
	for _, o := range allOracles(t, tr, es) {
		for _, x := range out {
			if o.HB(in, x) {
				t.Errorf("%s: HB(%v, %v) true for out-of-range ref", o.Name(), in, x)
			}
			if o.HB(x, in) {
				t.Errorf("%s: HB(%v, %v) true for out-of-range ref", o.Name(), x, in)
			}
		}
	}
}

// TestSkeletonMapping pins the skeleton construction and the prev/next ref
// resolution the oracles' query mapping is built on.
func TestSkeletonMapping(t *testing.T) {
	tr := mkTrace(6, 4)
	es := edges([4]int{0, 2, 1, 1}, [4]int{1, 3, 0, 4})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	// rank 0 members: sentinels {0, 5} + endpoints {2, 4} -> ids 0..3
	// rank 1 members: sentinels {0, 3} + endpoint {1}    -> ids 4..6
	if g.SkeletonNodes() != 7 {
		t.Fatalf("skeleton = %d nodes, want 7", g.SkeletonNodes())
	}
	prevCases := []struct {
		ref  trace.Ref
		want int32
	}{
		{ref(0, 0), 0}, {ref(0, 1), 0}, {ref(0, 2), 1}, {ref(0, 3), 1},
		{ref(0, 4), 2}, {ref(0, 5), 3},
		{ref(1, 0), 4}, {ref(1, 1), 5}, {ref(1, 2), 5}, {ref(1, 3), 6},
	}
	for _, c := range prevCases {
		if got := g.skelPrev(c.ref); got != c.want {
			t.Errorf("skelPrev(%v) = %d, want %d", c.ref, got, c.want)
		}
	}
	nextCases := []struct {
		ref  trace.Ref
		want int32
	}{
		{ref(0, 0), 0}, {ref(0, 1), 1}, {ref(0, 2), 1}, {ref(0, 3), 2},
		{ref(0, 5), 3},
		{ref(1, 2), 6}, {ref(1, 3), 6},
	}
	for _, c := range nextCases {
		if got := g.skelNext(c.ref); got != c.want {
			t.Errorf("skelNext(%v) = %d, want %d", c.ref, got, c.want)
		}
	}
	if lv := g.SkeletonLevels(); lv <= 0 {
		t.Errorf("SkeletonLevels = %d, want > 0", lv)
	}
	if w := g.SkeletonMaxLevelWidth(); w < 1 || w > tr.NumRanks() {
		t.Errorf("SkeletonMaxLevelWidth = %d, want within [1, %d]", w, tr.NumRanks())
	}
}

// TestVectorClockWavefrontDeterministic asserts the level-parallel clock
// pass produces bit-identical clocks at every worker count — max-merge is
// order-independent within a level.
func TestVectorClockWavefrontDeterministic(t *testing.T) {
	// 16 ranks: level 0 holds 16 rank-first sentinels, comfortably past the
	// parallel-width threshold, so workers > 1 genuinely exercises the
	// concurrent path.
	tr, es := synthGraph(16, 200, 0.2, 5)
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	if g.SkeletonMaxLevelWidth() < vcMinParallelWidth {
		t.Fatalf("max level width %d below parallel threshold %d; test graph too narrow",
			g.SkeletonMaxLevelWidth(), vcMinParallelWidth)
	}
	base, err := g.VectorClocks()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		vc, err := g.VectorClocksOpts(VCOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(vc.clocks, base.clocks) {
			t.Errorf("workers=%d: wavefront clocks differ from serial clocks", w)
		}
	}
}

// bruteOracle is the obviously-correct reference: DFS over po + so.
type bruteOracle struct {
	counts []int
	adj    map[trace.Ref][]trace.Ref
}

func newBrute(tr *trace.Trace, es []match.Edge) *bruteOracle {
	b := &bruteOracle{counts: make([]int, tr.NumRanks()), adj: map[trace.Ref][]trace.Ref{}}
	for rank, recs := range tr.Ranks {
		b.counts[rank] = len(recs)
		for i := 0; i+1 < len(recs); i++ {
			b.adj[ref(rank, i)] = append(b.adj[ref(rank, i)], ref(rank, i+1))
		}
	}
	for _, e := range es {
		b.adj[e.From] = append(b.adj[e.From], e.To)
	}
	return b
}

func (b *bruteOracle) HB(x, y trace.Ref) bool {
	seen := map[trace.Ref]bool{}
	var dfs func(trace.Ref) bool
	dfs = func(v trace.Ref) bool {
		for _, w := range b.adj[v] {
			if w == y {
				return true
			}
			if !seen[w] {
				seen[w] = true
				if dfs(w) {
					return true
				}
			}
		}
		return false
	}
	return dfs(x)
}

// TestPropertyAllAlgorithmsAgree is the §IV-D cross-validation: on random
// acyclic executions, all five oracles and the brute-force reference answer
// every query identically.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 2 + rng.Intn(3)
		counts := make([]int, nranks)
		type node struct {
			ref  trace.Ref
			time int
		}
		var nodes []node
		for r := range counts {
			counts[r] = 1 + rng.Intn(8)
			for s := 0; s < counts[r]; s++ {
				// Times increase along each rank so po edges always go
				// forward; random gaps leave room for cross edges.
				base := s * 10
				nodes = append(nodes, node{ref(r, s), base + rng.Intn(10)})
			}
		}
		tr := mkTrace(counts...)
		// Random forward-in-time cross-rank edges keep the graph acyclic.
		var es []match.Edge
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				a, b := nodes[i], nodes[j]
				if a.ref.Rank == b.ref.Rank || a.time >= b.time {
					continue
				}
				if rng.Intn(6) == 0 {
					es = append(es, match.Edge{From: a.ref, To: b.ref})
				}
			}
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From.Less(es[j].From)
			}
			return es[i].To.Less(es[j].To)
		})
		g, err := Build(tr, es)
		if err != nil {
			return false
		}
		vc, err := g.VectorClocks()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tc, err := g.TransitiveClosure()
		if err != nil {
			return false
		}
		seg, err := g.SegReachability(SegOptions{})
		if err != nil {
			return false
		}
		oracles := []Oracle{vc, g.Reachability(), tc, seg, NewOnTheFly(tr, es)}
		brute := newBrute(tr, es)
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				a, b := nodes[i].ref, nodes[j].ref
				want := a != b && brute.HB(a, b)
				for _, o := range oracles {
					if got := o.HB(a, b); got != want {
						t.Logf("seed %d: %s HB(%v,%v) = %v, brute = %v", seed, o.Name(), a, b, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGraphStats(t *testing.T) {
	tr := mkTrace(3, 2)
	es := edges([4]int{0, 0, 1, 0})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 5 || g.SyncEdges() != 1 {
		t.Errorf("nodes=%d edges=%d", g.Nodes(), g.SyncEdges())
	}
}

func TestDeterministicTopoOrder(t *testing.T) {
	tr := mkTrace(4, 4)
	es := edges([4]int{0, 1, 1, 2}, [4]int{1, 0, 0, 3})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.TopoOrder()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("topological order is not deterministic")
	}
}

func TestVectorClockMemoryShape(t *testing.T) {
	// A regression guard on the compact clock layout: one int32 per
	// (skeleton node, rank) pair in a single node-major slice — O(S·P)
	// memory, not O(V·P). With no sync edges the skeleton is just the
	// per-rank first/last sentinels.
	tr := mkTrace(5, 3)
	g, err := Build(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.SkeletonNodes() != 4 {
		t.Fatalf("skeleton = %d nodes, want 4 (two sentinels per rank)", g.SkeletonNodes())
	}
	vc, err := g.VectorClocks()
	if err != nil {
		t.Fatal(err)
	}
	if vc.nranks != 2 {
		t.Fatalf("nranks = %d, want 2", vc.nranks)
	}
	if len(vc.clocks) != 4*2 {
		t.Fatalf("clocks = %d entries, want 8 (4 skeleton nodes x 2 ranks)", len(vc.clocks))
	}
	if vc.ArenaBytes() != 4*len(vc.clocks) {
		t.Fatalf("ArenaBytes = %d, want %d", vc.ArenaBytes(), 4*len(vc.clocks))
	}
	// Each skeleton node knows itself: id 0 is (rank 0, seq 0), id 1 is
	// (rank 0, seq 4), id 3 is (rank 1, seq 2)...
	if vc.clocks[0*2+0] != 0 || vc.clocks[1*2+0] != 4 || vc.clocks[3*2+1] != 2 {
		t.Errorf("self entries wrong: %v", vc.clocks)
	}
	// ...and, with no sync, nothing about the other rank.
	if vc.clocks[1*2+1] != -1 || vc.clocks[3*2+0] != -1 {
		t.Errorf("cross-rank entries populated without sync edges: %v", vc.clocks)
	}
}

func TestVectorClockConstructionAllocsFlat(t *testing.T) {
	// The flat layout allocates a constant number of slices, not one
	// clock per node.
	tr := mkTrace(300, 300, 300)
	g, err := Build(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := g.VectorClocks(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("VectorClocks allocated %v objects for 900 nodes; want O(1), not O(V)", allocs)
	}
}

func TestBFSOracleEvictionStaysCorrect(t *testing.T) {
	// A memo budget too small for even one row per stripe forces constant
	// eviction; answers must not change.
	tr := mkTrace(6, 6, 6)
	es := edges([4]int{0, 1, 1, 2}, [4]int{1, 3, 2, 4}, [4]int{2, 0, 0, 4})
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	ref16 := g.Reachability()
	tiny := g.reachabilityWithBudget(1)
	for i := range tiny.stripes {
		if tiny.stripes[i].max < 1 {
			t.Fatalf("stripe capacity %d, want >= 1", tiny.stripes[i].max)
		}
	}
	for r1 := 0; r1 < 3; r1++ {
		for s1 := 0; s1 < 6; s1++ {
			for r2 := 0; r2 < 3; r2++ {
				for s2 := 0; s2 < 6; s2++ {
					a, b := ref(r1, s1), ref(r2, s2)
					if got, want := tiny.HB(a, b), ref16.HB(a, b); got != want {
						t.Fatalf("evicting oracle HB(%v,%v) = %v, want %v", a, b, got, want)
					}
				}
			}
		}
	}
}

// TestOraclesConcurrentQueries hammers every oracle from many goroutines and
// cross-checks against serial answers — the thread-safety contract the
// parallel verifier depends on (run under -race).
func TestOraclesConcurrentQueries(t *testing.T) {
	tr, es := synthGraph(4, 80, 0.15, 42)
	g, err := Build(tr, es)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := g.VectorClocks()
	if err != nil {
		t.Fatal(err)
	}
	tc, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Oracle{vc, g.Reachability(), tc, NewOnTheFly(tr, es)} {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			queries := make([][2]trace.Ref, 256)
			want := make([]bool, len(queries))
			for i := range queries {
				queries[i] = [2]trace.Ref{
					ref(rng.Intn(4), rng.Intn(80)),
					ref(rng.Intn(4), rng.Intn(80)),
				}
				want[i] = o.HB(queries[i][0], queries[i][1])
			}
			var wg sync.WaitGroup
			errs := make([]error, 8)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for rep := 0; rep < 4; rep++ {
						for i, q := range queries {
							if got := o.HB(q[0], q[1]); got != want[i] {
								errs[w] = fmt.Errorf("HB(%v,%v) = %v under concurrency, want %v", q[0], q[1], got, want[i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

package hbgraph

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// synthGraph builds a layered random DAG: nranks chains of length n with
// forward cross edges (≈ density per node).
func synthGraph(nranks, n int, density float64, seed int64) (*trace.Trace, []match.Edge) {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, nranks)
	for i := range counts {
		counts[i] = n
	}
	tr := mkTrace(counts...)
	var edges []match.Edge
	for r1 := 0; r1 < nranks; r1++ {
		for s1 := 0; s1 < n; s1++ {
			if rng.Float64() > density {
				continue
			}
			r2 := rng.Intn(nranks)
			if r2 == r1 {
				continue
			}
			// Forward in "time": target sequence strictly larger keeps
			// the graph acyclic across same-index chains.
			s2 := s1 + 1 + rng.Intn(n-s1)
			if s2 >= n {
				continue
			}
			edges = append(edges, match.Edge{From: ref(r1, s1), To: ref(r2, s2)})
		}
	}
	return tr, edges
}

// BenchmarkOracleConstruction compares building the three graph-based
// oracles (the fixed cost the on-the-fly algorithm avoids).
func BenchmarkOracleConstruction(b *testing.B) {
	tr, edges := synthGraph(8, 2000, 0.1, 7)
	g, err := Build(tr, edges)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vector-clock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.VectorClocks(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transitive-closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.TransitiveClosure(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reachability(lazy)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.Reachability()
		}
	})
}

// BenchmarkTopoOrder measures the full-graph topological sort; the indegree
// pass iterates per rank so program-order successors come from the rank
// cursor instead of a per-node binary search.
func BenchmarkTopoOrder(b *testing.B) {
	tr, edges := synthGraph(8, 2000, 0.1, 7)
	g, err := Build(tr, edges)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorClocks measures skeleton clock construction on a
// sync-sparse graph (S ≪ V — the common Recorder-trace shape) and a
// sync-dense one, serial and at GOMAXPROCS.
func BenchmarkVectorClocks(b *testing.B) {
	shapes := []struct {
		name    string
		density float64
	}{
		{"sparse", 0.005},
		{"dense", 0.5},
	}
	for _, sh := range shapes {
		tr, edges := synthGraph(8, 4000, sh.density, 13)
		g, err := Build(tr, edges)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/workers=%d", sh.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(float64(g.SkeletonNodes()), "skelnodes")
				for i := 0; i < b.N; i++ {
					if _, err := g.VectorClocksOpts(VCOptions{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOracleQueries compares per-query cost across the five algorithms
// on the same graph and query set.
func BenchmarkOracleQueries(b *testing.B) {
	tr, edges := synthGraph(8, 1000, 0.1, 11)
	g, err := Build(tr, edges)
	if err != nil {
		b.Fatal(err)
	}
	vc, err := g.VectorClocks()
	if err != nil {
		b.Fatal(err)
	}
	tc, err := g.TransitiveClosure()
	if err != nil {
		b.Fatal(err)
	}
	seg, err := g.SegReachability(SegOptions{})
	if err != nil {
		b.Fatal(err)
	}
	oracles := []Oracle{vc, g.Reachability(), tc, seg, NewOnTheFly(tr, edges)}
	rng := rand.New(rand.NewSource(3))
	queries := make([][2]trace.Ref, 512)
	for i := range queries {
		queries[i] = [2]trace.Ref{
			ref(rng.Intn(8), rng.Intn(1000)),
			ref(rng.Intn(8), rng.Intn(1000)),
		}
	}
	var want []bool
	for _, o := range oracles {
		o := o
		b.Run(o.Name(), func(b *testing.B) {
			got := make([]bool, len(queries))
			for i := 0; i < b.N; i++ {
				for q, pair := range queries {
					got[q] = o.HB(pair[0], pair[1])
				}
			}
			if want == nil {
				want = got
			} else {
				for q := range queries {
					if got[q] != want[q] {
						b.Fatalf("oracle %s disagrees on query %d", o.Name(), q)
					}
				}
			}
			b.ReportMetric(float64(len(queries)), "queries/op")
		})
	}
}

package vcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"os"
)

// The incremental manifest records what a past verification run looked like,
// in just enough detail to map a changed trace onto the minimal set of dirty
// chunks. The mapping works in two steps:
//
//  1. Per-rank stable prefixes. Each rank's records are digested into
//     chained blocks (trace.BlockChain); the common chain prefix between the
//     manifest and the new run certifies a byte-identical record prefix, and
//     the initial cut is that prefix length.
//
//  2. Edge closure. Happens-before must agree on the stable region, so the
//     cuts shrink until the region is closed under synchronization edges:
//     any edge present in only one of the two runs is expelled entirely
//     (both endpoints at or above the cuts), and no surviving edge may
//     straddle a cut. Within the closed region, program order and every sync
//     edge — hence every HB query and every MSC instance the verifier can
//     find — are identical across the two runs, so a chunk whose ops all lie
//     below the cuts may reuse its old-epoch verdict.
//
// One hazard remains: file identity. Canonical fids distinguish same-path
// generations separated by unlinks, and a rank's unlink total shifts the
// generation numbering seen by every later rank (conflict.mergeShards
// accumulates them). An unlink outside the stable region can therefore
// change sync-point cohorts for ops inside it without changing a single
// digested byte. UnlinkSafe guards the promotion: it requires every unlink
// of both runs to lie inside the stable region, which the caller proves by
// counting below-cut unlinks in the new trace.

// Edge is a synchronization-order edge by record identity.
type Edge struct {
	FromRank, FromSeq int32
	ToRank, ToSeq     int32
}

// RankManifest describes one rank of the recorded run.
type RankManifest struct {
	// Records is the rank's record count.
	Records int
	// Unlinks is the rank's total unlink count (fid-generation bumps).
	Unlinks int
	// Blocks is the chained block digest sequence (trace.BlockChain).
	Blocks []Digest
}

// Manifest is the persisted incremental state for one logical trace.
type Manifest struct {
	// CodeVersion pins the digest encodings the manifest was written with.
	CodeVersion string
	// Epoch is the sync-epoch digest of the recorded run — the epoch under
	// which its chunk verdicts were sealed.
	Epoch Digest
	// Skeleton is the recorded run's sync-skeleton digest (diagnostic: it
	// identifies the HB build artifact the verdicts were computed against).
	Skeleton Digest
	Ranks    []RankManifest
	Edges    []Edge
}

// DigestBlock mirrors trace.DigestBlock (vcache must not import the trace
// layer); the cache session asserts the two agree.
const DigestBlock = 64

// Cuts maps the recorded run onto a new run and returns per-rank record
// cuts delimiting the stable region: records [0, cuts[r]) of rank r are
// byte-identical in both runs and the region is closed under the sync edges
// of both. Returns nil when no region can be certified (rank count or code
// version mismatch).
func (m *Manifest) Cuts(ranks []RankManifest, edges []Edge) []int {
	if m.CodeVersion != CodeVersion || len(ranks) != len(m.Ranks) {
		return nil
	}
	nranks := len(ranks)
	cuts := make([]int, nranks)
	for r := range ranks {
		old, cur := &m.Ranks[r], &ranks[r]
		// Compare chains over full blocks only: a final partial block
		// digests a different record range at different lengths, so it is
		// only conclusive when both runs agree on everything.
		limit := min(len(old.Blocks), len(cur.Blocks))
		full := min(old.Records/DigestBlock, cur.Records/DigestBlock)
		if full < limit {
			limit = full
		}
		p := 0
		for p < limit && old.Blocks[p] == cur.Blocks[p] {
			p++
		}
		cuts[r] = p * DigestBlock
		if old.Records == cur.Records && len(old.Blocks) == len(cur.Blocks) {
			if p == full && chainTailEqual(old.Blocks, cur.Blocks, p) {
				cuts[r] = cur.Records // identical rank
			}
		}
	}
	// Edge closure: expel differing edges, then forbid straddling, to a
	// fixpoint (cuts only decrease, so termination is immediate).
	lower := func(rank, seq int32) bool {
		if rank < 0 || int(rank) >= nranks {
			return false
		}
		if int(seq) < cuts[rank] {
			if seq < 0 {
				seq = 0
			}
			cuts[rank] = int(seq)
			return true
		}
		return false
	}
	diff := edgeDiff(m.Edges, edges)
	for {
		changed := false
		for _, e := range diff {
			changed = lower(e.FromRank, e.FromSeq) || changed
			changed = lower(e.ToRank, e.ToSeq) || changed
		}
		for _, set := range [2][]Edge{m.Edges, edges} {
			for _, e := range set {
				fIn := inRegion(cuts, e.FromRank, e.FromSeq)
				tIn := inRegion(cuts, e.ToRank, e.ToSeq)
				if fIn != tIn {
					if fIn {
						changed = lower(e.FromRank, e.FromSeq) || changed
					} else {
						changed = lower(e.ToRank, e.ToSeq) || changed
					}
				}
			}
		}
		if !changed {
			return cuts
		}
	}
}

func inRegion(cuts []int, rank, seq int32) bool {
	return rank >= 0 && int(rank) < len(cuts) && seq >= 0 && int(seq) < cuts[rank]
}

func chainTailEqual(a, b []Digest, from int) bool {
	for i := from; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// edgeDiff returns the symmetric difference of the two edge multisets.
func edgeDiff(a, b []Edge) []Edge {
	count := make(map[Edge]int, len(a))
	for _, e := range a {
		count[e]++
	}
	for _, e := range b {
		count[e]--
	}
	var out []Edge
	for e, c := range count {
		if c != 0 {
			out = append(out, e)
		}
	}
	return out
}

// UnlinkSafe reports whether fid generations are provably identical across
// the stable region: every unlink of the recorded run and of the new run
// must lie below the cuts. newBelowCut[r] counts the new trace's unlinks at
// seq < cuts[r] (which, records being identical there, equals the old run's
// below-cut count); newTotal is the new run's per-rank totals.
func (m *Manifest) UnlinkSafe(cuts []int, newBelowCut, newTotal []int) bool {
	if len(cuts) != len(m.Ranks) || len(newBelowCut) != len(m.Ranks) || len(newTotal) != len(m.Ranks) {
		return false
	}
	for r := range m.Ranks {
		if m.Ranks[r].Unlinks != newBelowCut[r] || newTotal[r] != newBelowCut[r] {
			return false
		}
	}
	return true
}

func (m *Manifest) equal(o *Manifest) bool {
	if m.CodeVersion != o.CodeVersion || m.Epoch != o.Epoch || m.Skeleton != o.Skeleton ||
		len(m.Ranks) != len(o.Ranks) || len(m.Edges) != len(o.Edges) {
		return false
	}
	for i := range m.Ranks {
		a, b := &m.Ranks[i], &o.Ranks[i]
		if a.Records != b.Records || a.Unlinks != b.Unlinks || len(a.Blocks) != len(b.Blocks) {
			return false
		}
		for j := range a.Blocks {
			if a.Blocks[j] != b.Blocks[j] {
				return false
			}
		}
	}
	for i := range m.Edges {
		if m.Edges[i] != o.Edges[i] {
			return false
		}
	}
	return true
}

var manifestMagic = [5]byte{'V', 'I', 'O', 'M', 1}

func (m *Manifest) encode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.CodeVersion)))
	buf = append(buf, m.CodeVersion...)
	buf = append(buf, m.Epoch[:]...)
	buf = append(buf, m.Skeleton[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Ranks)))
	for i := range m.Ranks {
		r := &m.Ranks[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Records))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Unlinks))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Blocks)))
		for _, d := range r.Blocks {
			buf = append(buf, d[:]...)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Edges)))
	for _, e := range m.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.FromRank))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.FromSeq))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ToRank))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ToSeq))
	}
	return buf
}

// decodeManifest parses a manifest payload; every length is bounds-checked
// against the remaining input before allocation.
func decodeManifest(p []byte) (*Manifest, bool) {
	m := &Manifest{}
	cv, p, ok := decodeString(p)
	if !ok {
		return nil, false
	}
	m.CodeVersion = cv
	if len(p) < 2*sha256.Size+4 {
		return nil, false
	}
	copy(m.Epoch[:], p[:sha256.Size])
	copy(m.Skeleton[:], p[sha256.Size:2*sha256.Size])
	p = p[2*sha256.Size:]
	nranks := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if nranks > 1<<20 {
		return nil, false
	}
	m.Ranks = make([]RankManifest, nranks)
	for i := range m.Ranks {
		if len(p) < 12 {
			return nil, false
		}
		m.Ranks[i].Records = int(int32(binary.LittleEndian.Uint32(p[0:4])))
		m.Ranks[i].Unlinks = int(int32(binary.LittleEndian.Uint32(p[4:8])))
		nblocks := binary.LittleEndian.Uint32(p[8:12])
		p = p[12:]
		if m.Ranks[i].Records < 0 || m.Ranks[i].Unlinks < 0 {
			return nil, false
		}
		if int64(nblocks)*sha256.Size > int64(len(p)) {
			return nil, false
		}
		m.Ranks[i].Blocks = make([]Digest, nblocks)
		for j := range m.Ranks[i].Blocks {
			copy(m.Ranks[i].Blocks[j][:], p[:sha256.Size])
			p = p[sha256.Size:]
		}
	}
	if len(p) < 4 {
		return nil, false
	}
	nedges := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if int64(nedges)*16 != int64(len(p)) {
		return nil, false
	}
	m.Edges = make([]Edge, nedges)
	for i := range m.Edges {
		m.Edges[i] = Edge{
			FromRank: int32(binary.LittleEndian.Uint32(p[0:4])),
			FromSeq:  int32(binary.LittleEndian.Uint32(p[4:8])),
			ToRank:   int32(binary.LittleEndian.Uint32(p[8:12])),
			ToSeq:    int32(binary.LittleEndian.Uint32(p[12:16])),
		}
		p = p[16:]
	}
	return m, true
}

func decodeString(p []byte) (string, []byte, bool) {
	if len(p) < 4 {
		return "", nil, false
	}
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if n > 1<<16 || int(n) > len(p) {
		return "", nil, false
	}
	return string(p[:n]), p[n:], true
}

// loadManifest reads and validates a manifest file; any malformed content
// yields nil (recompute) rather than an error.
func loadManifest(path string) *Manifest {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	if len(data) < len(manifestMagic) || [5]byte(data[:5]) != manifestMagic {
		return nil
	}
	data = data[len(manifestMagic):]
	if len(data) < 8 {
		return nil
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	data = data[8:]
	if int64(length) != int64(len(data)) || length > frameMaxLen {
		return nil
	}
	if crc32.ChecksumIEEE(data) != sum {
		return nil
	}
	m, ok := decodeManifest(data)
	if !ok {
		return nil
	}
	return m
}

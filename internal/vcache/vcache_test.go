package vcache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

func testKey(b byte) Key {
	var k Key
	k.Chunk = sha256.Sum256([]byte{b, 1})
	k.Model = sha256.Sum256([]byte{b, 2})
	k.Epoch = sha256.Sum256([]byte{b, 3})
	return k
}

func testVerdict(n int) Verdict {
	v := Verdict{Checks: int64(100 + n), Races: int64(n)}
	for i := 0; i < n; i++ {
		v.Pairs = append(v.Pairs, RefPair{XRank: 0, XSeq: int32(i), YRank: 1, YSeq: int32(i + 1)})
	}
	return v
}

func verdictEqual(a, b Verdict) bool {
	if a.Checks != b.Checks || a.Races != b.Races || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

func TestMemoryStoreRoundTrip(t *testing.T) {
	s := NewMemory()
	k := testKey(7)
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store reported a hit")
	}
	want := testVerdict(3)
	s.Put(k, want)
	got, ok := s.Get(k)
	if !ok || !verdictEqual(got, want) {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, want)
	}
	// Distinct key components must address distinct entries.
	k2 := k
	k2.Epoch = sha256.Sum256([]byte("other"))
	if _, ok := s.Get(k2); ok {
		t.Fatal("epoch-variant key aliased the original")
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewMemory()
	s.maxEntries = 4
	for i := 0; i < 8; i++ {
		s.Put(testKey(byte(i)), testVerdict(0))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(testKey(7)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestDiskRoundTripAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testVerdict(2)
	s.Put(testKey(1), want)
	s.Put(testKey(2), testVerdict(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	got, ok := s2.Get(testKey(1))
	if !ok || !verdictEqual(got, want) {
		t.Fatalf("reopened verdict: got %+v ok=%v, want %+v", got, ok, want)
	}
}

// TestCorruptLogTailTruncated: a torn append must not lose the valid prefix,
// and the recovered store must keep working.
func TestCorruptLogTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testVerdict(1))
	s.Put(testKey(2), testVerdict(2))
	s.Close()

	path := filepath.Join(dir, "verdicts.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 7 bytes and append garbage.
	torn := append(append([]byte{}, data[:len(data)-7]...), 0xde, 0xad)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1 (valid prefix only)", s2.Len())
	}
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("valid prefix entry lost in recovery")
	}
	// The torn tail must be gone so appends continue from a clean frame.
	s2.Put(testKey(3), testVerdict(0))
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("post-recovery Len = %d, want 2", s3.Len())
	}
}

// TestCorruptFrameFlippedBit: CRC must reject an in-place flip, degrading to
// a shorter valid prefix, never to a wrong verdict.
func TestCorruptFrameFlippedBit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), testVerdict(4))
	s.Close()

	path := filepath.Join(dir, "verdicts.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(testKey(1)); ok {
		t.Fatal("bit-flipped frame served a verdict")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		CodeVersion: CodeVersion,
		Epoch:       sha256.Sum256([]byte("epoch")),
		Skeleton:    sha256.Sum256([]byte("skel")),
		Ranks: []RankManifest{
			{Records: 130, Unlinks: 1, Blocks: []Digest{sha256.Sum256([]byte("b0")), sha256.Sum256([]byte("b1")), sha256.Sum256([]byte("b2"))}},
			{Records: 64, Unlinks: 0, Blocks: []Digest{sha256.Sum256([]byte("c0"))}},
		},
		Edges: []Edge{{0, 3, 1, 4}, {1, 10, 0, 12}},
	}
	s.PutManifest("trace-a", m)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Manifest("trace-a")
	if got == nil {
		t.Fatal("manifest not reloaded from disk")
	}
	if !got.equal(m) {
		t.Fatalf("manifest round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if s2.Manifest("trace-b") != nil {
		t.Fatal("unknown id returned a manifest")
	}
}

func TestCorruptManifestIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{CodeVersion: CodeVersion, Ranks: []RankManifest{{Records: 1}}}
	s.PutManifest("trace-a", m)
	path := s.manifestPath("trace-a")
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Manifest("trace-a") != nil {
		t.Fatal("corrupt manifest was served")
	}
}

// TestCutsPrefix: an appended rank keeps its full-block prefix; the edge
// closure then pulls the cut below any straddling or changed edge.
func TestCutsPrefix(t *testing.T) {
	blocks := func(names ...string) []Digest {
		out := make([]Digest, len(names))
		for i, n := range names {
			out[i] = sha256.Sum256([]byte(n))
		}
		return out
	}
	old := &Manifest{
		CodeVersion: CodeVersion,
		Ranks: []RankManifest{
			{Records: 128, Blocks: blocks("a0", "a1")},
			{Records: 100, Blocks: blocks("b0", "b1")},
		},
		Edges: []Edge{{0, 10, 1, 11}},
	}
	// Rank 0 appended (chain extends, prefix intact); rank 1 unchanged.
	cur := []RankManifest{
		{Records: 200, Blocks: blocks("a0", "a1", "a2x")},
		{Records: 100, Blocks: blocks("b0", "b1")},
	}
	cuts := old.Cuts(cur, []Edge{{0, 10, 1, 11}})
	if cuts == nil {
		t.Fatal("Cuts returned nil for matching shape")
	}
	if cuts[0] != 128 || cuts[1] != 100 {
		t.Fatalf("cuts = %v, want [128 100]", cuts)
	}

	// A new edge out of the appended region into rank 1's stable region
	// must expel its rank-1 endpoint.
	cuts = old.Cuts(cur, []Edge{{0, 10, 1, 11}, {0, 150, 1, 50}})
	if cuts[1] != 50 {
		t.Fatalf("straddling edge: cuts = %v, want rank 1 cut 50", cuts)
	}

	// A changed rank count certifies nothing.
	if old.Cuts(cur[:1], nil) != nil {
		t.Fatal("rank-count mismatch should return nil")
	}
}

// TestCutsIdenticalRank: byte-identical ranks (partial last block included)
// get a full-length cut.
func TestCutsIdenticalRank(t *testing.T) {
	b := []Digest{sha256.Sum256([]byte("x0")), sha256.Sum256([]byte("x1"))}
	old := &Manifest{
		CodeVersion: CodeVersion,
		Ranks:       []RankManifest{{Records: 100, Blocks: b}},
	}
	cuts := old.Cuts([]RankManifest{{Records: 100, Blocks: b}}, nil)
	if cuts == nil || cuts[0] != 100 {
		t.Fatalf("cuts = %v, want [100]", cuts)
	}
}

func TestUnlinkGuard(t *testing.T) {
	m := &Manifest{
		CodeVersion: CodeVersion,
		Ranks:       []RankManifest{{Records: 100, Unlinks: 2}, {Records: 100, Unlinks: 0}},
	}
	cuts := []int{64, 64}
	// All unlinks below the cuts in both runs: safe.
	if !m.UnlinkSafe(cuts, []int{2, 0}, []int{2, 0}) {
		t.Fatal("fully below-cut unlinks should be safe")
	}
	// New run gained an unlink above the cut: unsafe.
	if m.UnlinkSafe(cuts, []int{2, 0}, []int{3, 0}) {
		t.Fatal("above-cut unlink in the new run must disable promotion")
	}
	// Old run had an unlink above the cut: unsafe.
	if m.UnlinkSafe(cuts, []int{1, 0}, []int{1, 0}) {
		t.Fatal("above-cut unlink in the old run must disable promotion")
	}
}

func TestKeysScheduleIndependent(t *testing.T) {
	s := NewMemory()
	ks := []Key{testKey(1), testKey(2), testKey(3)}
	for _, k := range ks {
		s.Put(k, testVerdict(0))
	}
	ids := s.Keys()
	if len(ids) != len(ks) {
		t.Fatalf("Keys = %d entries, want %d", len(ids), len(ks))
	}
	seen := map[Digest]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for _, k := range ks {
		id := k.id()
		if !seen[id] {
			t.Fatalf("key %x missing from Keys()", id[:8])
		}
	}
}

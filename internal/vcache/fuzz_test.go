package vcache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

// The on-disk cache is an integrity boundary: a corrupt file may cost a
// recompute, never a panic and never a wrong verdict. The fuzz targets below
// drive the two decode paths (verdict log replay, manifest load) with
// arbitrary bytes and assert the degraded-but-correct contract.

// FuzzLogReplay opens a store over an arbitrary verdicts.log. Whatever was
// decoded must round-trip: every served verdict must re-serve identically
// after the recovery truncation and a fresh append.
func FuzzLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(logMagic[:])
	// A valid one-entry log as a structure-aware seed.
	{
		dir := f.TempDir()
		s, err := Open(dir)
		if err != nil {
			f.Fatal(err)
		}
		s.Put(Key{Chunk: sha256.Sum256([]byte("c"))}, Verdict{Checks: 3, Races: 1, Pairs: []RefPair{{0, 1, 1, 2}}})
		s.Close()
		data, err := os.ReadFile(filepath.Join(dir, "verdicts.log"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-3])       // torn tail
		f.Add(append(data, 0xff, 0x00)) // trailing garbage
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "verdicts.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			// Only environmental failures may error; none should arise here.
			t.Fatalf("Open on corrupt log errored: %v", err)
		}
		snapshot := map[Digest]Verdict{}
		s.mu.Lock()
		for id, el := range s.entries {
			snapshot[id] = el.Value.(*entry).v
		}
		s.mu.Unlock()
		for _, v := range snapshot {
			if v.Checks < 0 || v.Races < 0 || int64(len(v.Pairs)) > v.Races {
				t.Fatalf("decoded verdict violates invariants: %+v", v)
			}
		}
		// Recovery truncated to a valid prefix: append must work and
		// nothing decoded may change on reopen.
		extra := Key{Chunk: sha256.Sum256([]byte("post-recovery"))}
		s.Put(extra, Verdict{Checks: 1})
		s.Close()
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after recovery errored: %v", err)
		}
		defer s2.Close()
		if _, ok := s2.Get(extra); !ok {
			t.Fatal("post-recovery append lost on reopen")
		}
		for id, want := range snapshot {
			s2.mu.Lock()
			el, ok := s2.entries[id]
			s2.mu.Unlock()
			if !ok {
				t.Fatalf("recovered entry %x lost on reopen", id[:8])
			}
			if got := el.Value.(*entry).v; !verdictEqual(got, want) {
				t.Fatalf("entry %x changed across reopen: %+v vs %+v", id[:8], got, want)
			}
		}
	})
}

// FuzzManifestLoad loads an arbitrary manifest file; the result must be nil
// or structurally sane, and Cuts on a sane result must never panic.
func FuzzManifestLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add(manifestMagic[:])
	{
		dir := f.TempDir()
		s, err := Open(dir)
		if err != nil {
			f.Fatal(err)
		}
		m := &Manifest{
			CodeVersion: CodeVersion,
			Epoch:       sha256.Sum256([]byte("e")),
			Ranks: []RankManifest{
				{Records: 130, Unlinks: 1, Blocks: []Digest{sha256.Sum256([]byte("b0")), sha256.Sum256([]byte("b1"))}},
			},
			Edges: []Edge{{0, 1, 0, 2}},
		}
		s.PutManifest("seed", m)
		data, err := os.ReadFile(s.manifestPath("seed"))
		if err != nil {
			f.Fatal(err)
		}
		s.Close()
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "manifest-x.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m := loadManifest(path)
		if m == nil {
			return // rejected: the degrade-to-recompute path
		}
		for i := range m.Ranks {
			if m.Ranks[i].Records < 0 || m.Ranks[i].Unlinks < 0 {
				t.Fatalf("decoded manifest rank %d has negative counts: %+v", i, m.Ranks[i])
			}
		}
		// Cuts must be total and in-bounds for arbitrary decoded content.
		cur := make([]RankManifest, len(m.Ranks))
		for i := range cur {
			cur[i] = RankManifest{Records: 64, Blocks: []Digest{sha256.Sum256([]byte{byte(i)})}}
		}
		cuts := m.Cuts(cur, []Edge{{0, 1, 0, 2}})
		if cuts == nil {
			return
		}
		for r, c := range cuts {
			if c < 0 || c > cur[r].Records {
				t.Fatalf("cut %d out of range for rank %d (records %d)", c, r, cur[r].Records)
			}
		}
	})
}

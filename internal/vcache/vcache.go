// Package vcache memoizes per-chunk verification verdicts by content digest,
// so re-verifying an unchanged — or slightly grown — trace reuses sealed
// results instead of recomputing them.
//
// A chunk is a contiguous span of conflict groups (the unit of parallel work
// in internal/verify). Its verdict — properly-synchronized check count, race
// count, and the detailed raced pairs — is a pure function of
//
//	(chunk content, consistency model + verifier options, sync epoch),
//
// where the chunk content digest covers every contributing op's identity and
// byte extents, the model digest covers the MSC specification and the
// options that change what the verifier counts, and the sync epoch digest
// covers everything chunk-external a verdict can observe: per-rank trace
// lengths, the sync-point cohorts, and the happens-before relation (via the
// sync-skeleton digest). Keys collapse these three digests plus CodeVersion
// into one id, claircore-style: the digest is the address, and a hit is
// valid by construction.
//
// The store is an in-memory LRU with an optional on-disk backing directory.
// The disk layout is an append-only, CRC-framed verdict log plus one
// manifest file per logical trace (see manifest.go); both decode defensively
// — a torn or corrupted file truncates to its valid prefix or is ignored,
// degrading to recompute, never to a wrong verdict.
package vcache

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// CodeVersion salts every cache key with the generation of the verifier and
// of the digest encodings. Bump it whenever verification semantics, the
// canonical record/group/skeleton encodings, or the verdict layout change:
// the new build then misses cleanly against caches written by the old one
// instead of replaying stale verdicts.
const CodeVersion = "verifyio-vcache-v1"

// Digest is a SHA-256 content digest.
type Digest = [sha256.Size]byte

// Key addresses one chunk verdict.
type Key struct {
	// Chunk digests the span of conflict groups (ops, extents, file
	// identity) — see conflict.AppendGroupKey.
	Chunk Digest
	// Model digests the consistency model and the verifier options that
	// affect verdict content.
	Model Digest
	// Epoch digests the chunk-external verification context: rank lengths,
	// sync points, and the happens-before relation.
	Epoch Digest
}

// id collapses the key (and CodeVersion) into the store address.
func (k Key) id() Digest {
	h := sha256.New()
	h.Write([]byte(CodeVersion))
	h.Write(k.Chunk[:])
	h.Write(k.Model[:])
	h.Write(k.Epoch[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// RefPair is one raced conflict pair, by record identity.
type RefPair struct {
	XRank, XSeq int32
	YRank, YSeq int32
}

// Verdict is the sealed outcome of verifying one chunk.
type Verdict struct {
	// Checks is the number of properly-synchronized evaluations the chunk
	// cost (the Fig. 3 pruning metric).
	Checks int64
	// Races is the exact race count.
	Races int64
	// Pairs holds the first MaxRaceDetails raced pairs in discovery order.
	// The slice is shared between the store and its callers; treat it as
	// read-only.
	Pairs []RefPair
}

// maxLogPairs bounds a decoded pair count before allocation; a frame
// claiming more is corrupt by definition (MaxRaceDetails caps real ones far
// lower).
const maxLogPairs = 1 << 20

// DefaultMaxEntries bounds the in-memory LRU. Verdicts are small (a few
// hundred bytes with a full detail set), so the default is generous; a
// million entries covers traces far beyond the evaluation corpus.
const DefaultMaxEntries = 1 << 20

type entry struct {
	id Digest
	v  Verdict
}

// Store is a thread-safe verdict cache: an in-memory LRU, optionally backed
// by a directory that persists verdicts and incremental manifests across
// processes.
type Store struct {
	mu         sync.Mutex
	maxEntries int
	entries    map[Digest]*list.Element
	lru        *list.List // front = most recently used
	manifests  map[string]*Manifest
	dir        string
	log        *os.File // open verdict log, nil for memory-only stores
	logErr     error    // first append failure; persisting degrades, lookups continue

	// Cumulative effectiveness counters, fed by the verifier per resolved
	// chunk (a chunk resolves to exactly one of hit or miss, regardless of
	// how many raw lookups the resolution needed).
	hits, misses, dirty atomic.Int64
}

// NewMemory returns a memory-only store.
func NewMemory() *Store {
	return &Store{
		maxEntries: DefaultMaxEntries,
		entries:    make(map[Digest]*list.Element),
		lru:        list.New(),
		manifests:  make(map[string]*Manifest),
	}
}

// Open returns a store backed by dir, creating it if needed. Existing
// verdicts are replayed from the log; a torn or corrupted tail is truncated
// away so the next append continues from the last valid frame.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vcache: %w", err)
	}
	s := NewMemory()
	s.dir = dir
	path := filepath.Join(dir, "verdicts.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vcache: %w", err)
	}
	valid, err := s.replayLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("vcache: truncating corrupt log tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("vcache: %w", err)
	}
	s.log = f
	return s, nil
}

var logMagic = [5]byte{'V', 'I', 'O', 'C', 1}

// replayLog loads every valid frame and returns the byte offset of the end
// of the valid prefix. Decode errors are recovery signals, not failures:
// they mark where the usable log ends.
func (s *Store) replayLog(f *os.File) (validEnd int64, err error) {
	r := bufio.NewReader(f)
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		// Empty (or shorter-than-header) file: write a fresh header.
		if _, err := f.WriteAt(logMagic[:], 0); err != nil {
			return 0, fmt.Errorf("vcache: %w", err)
		}
		return int64(len(logMagic)), nil
	}
	if magic != logMagic {
		// Foreign or old-version file: start over rather than guess.
		if _, err := f.WriteAt(logMagic[:], 0); err != nil {
			return 0, fmt.Errorf("vcache: %w", err)
		}
		return int64(len(logMagic)), nil
	}
	off := int64(len(logMagic))
	for {
		payload, n, ok := readFrame(r)
		if !ok {
			return off, nil
		}
		id, v, ok := decodeVerdict(payload)
		if !ok {
			return off, nil
		}
		s.putID(id, v)
		off += n
	}
}

// readFrame reads one [len][crc][payload] frame; ok=false on EOF, short
// read, oversized length, or checksum mismatch.
func readFrame(r io.Reader) (payload []byte, n int64, ok bool) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > frameMaxLen {
		return nil, 0, false
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, int64(8 + length), true
}

// frameMaxLen bounds any single frame (verdict or manifest) to keep a
// corrupted length field from provoking a giant allocation.
const frameMaxLen = 64 << 20

func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// decodeVerdict parses a verdict-log payload: id, checks, races, pair count,
// pairs. Every bound is checked before allocation.
func decodeVerdict(p []byte) (id Digest, v Verdict, ok bool) {
	if len(p) < sha256.Size+8+8+4 {
		return id, v, false
	}
	copy(id[:], p[:sha256.Size])
	p = p[sha256.Size:]
	v.Checks = int64(binary.LittleEndian.Uint64(p[0:8]))
	v.Races = int64(binary.LittleEndian.Uint64(p[8:16]))
	npairs := binary.LittleEndian.Uint32(p[16:20])
	p = p[20:]
	if npairs > maxLogPairs || len(p) != int(npairs)*16 {
		return id, v, false
	}
	if v.Checks < 0 || v.Races < 0 || int64(npairs) > v.Races {
		return id, v, false
	}
	if npairs > 0 {
		v.Pairs = make([]RefPair, npairs)
		for i := range v.Pairs {
			v.Pairs[i] = RefPair{
				XRank: int32(binary.LittleEndian.Uint32(p[0:4])),
				XSeq:  int32(binary.LittleEndian.Uint32(p[4:8])),
				YRank: int32(binary.LittleEndian.Uint32(p[8:12])),
				YSeq:  int32(binary.LittleEndian.Uint32(p[12:16])),
			}
			p = p[16:]
		}
	}
	return id, v, true
}

func encodeVerdict(buf []byte, id Digest, v Verdict) []byte {
	buf = append(buf, id[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Checks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Races))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Pairs)))
	for _, p := range v.Pairs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.XRank))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.XSeq))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.YRank))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.YSeq))
	}
	return buf
}

// Get returns the verdict stored under k. The returned Pairs slice is
// shared; callers must not mutate it.
func (s *Store) Get(k Key) (Verdict, bool) {
	id := k.id()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return Verdict{}, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).v, true
}

// Put stores v under k, persisting it when the store is disk-backed.
func (s *Store) Put(k Key, v Verdict) {
	id := k.id()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.putID(id, v) {
		return // already present: no re-append, keeps warm re-puts cheap
	}
	if s.log != nil && s.logErr == nil {
		payload := encodeVerdict(nil, id, v)
		if _, err := s.log.Write(appendFrame(nil, payload)); err != nil {
			s.logErr = err
		}
	}
}

// putID inserts under the lock; reports whether the entry is new.
func (s *Store) putID(id Digest, v Verdict) bool {
	if el, ok := s.entries[id]; ok {
		el.Value.(*entry).v = v
		s.lru.MoveToFront(el)
		return false
	}
	s.entries[id] = s.lru.PushFront(&entry{id: id, v: v})
	for s.lru.Len() > s.maxEntries {
		back := s.lru.Back()
		delete(s.entries, back.Value.(*entry).id)
		s.lru.Remove(back)
	}
	return true
}

// Len returns the number of cached verdicts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Keys returns every cached verdict id, unordered. It exists for the digest
// stability tests: the id set is a scheduling-independent fingerprint of
// everything a verification pass sealed.
func (s *Store) Keys() []Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Digest, 0, len(s.entries))
	for id := range s.entries {
		out = append(out, id)
	}
	return out
}

// CountHit / CountMiss / CountDirty feed the cumulative effectiveness
// counters; the verifier calls exactly one of CountHit/CountMiss per chunk.
func (s *Store) CountHit()   { s.hits.Add(1) }
func (s *Store) CountMiss()  { s.misses.Add(1) }
func (s *Store) CountDirty() { s.dirty.Add(1) }

// Stats returns the cumulative chunk-level hit/miss/dirty counts.
func (s *Store) Stats() (hits, misses, dirty int64) {
	return s.hits.Load(), s.misses.Load(), s.dirty.Load()
}

// Manifest returns the incremental manifest stored under the trace id, or
// nil. Disk-backed stores load lazily.
func (s *Store) Manifest(id string) *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.manifests[id]; ok {
		return m
	}
	if s.dir == "" {
		return nil
	}
	m := loadManifest(s.manifestPath(id))
	if m != nil {
		s.manifests[id] = m
	}
	return m
}

// PutManifest stores the manifest for the trace id, replacing any previous
// one. Disk-backed stores write atomically (temp file + rename), so a crash
// leaves either the old or the new manifest, never a torn one.
func (s *Store) PutManifest(id string, m *Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.manifests[id]; ok && old.equal(m) {
		return
	}
	s.manifests[id] = m
	if s.dir == "" {
		return
	}
	path := s.manifestPath(id)
	payload := m.encode(nil)
	buf := append([]byte{}, manifestMagic[:]...)
	buf = appendFrame(buf, payload)
	tmp, err := os.CreateTemp(s.dir, "manifest-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// manifestPath addresses a manifest file by the hash of its trace id (ids
// are arbitrary strings — often paths — and must not leak into file names).
func (s *Store) manifestPath(id string) string {
	sum := sha256.Sum256([]byte("manifest\x00" + id))
	return filepath.Join(s.dir, fmt.Sprintf("manifest-%x.bin", sum[:8]))
}

// Err reports the first persistence failure, if any. Lookup correctness is
// unaffected; the store just stops growing its on-disk log.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}

// Close releases the on-disk log. The in-memory contents stay usable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

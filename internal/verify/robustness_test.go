package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"verifyio/internal/semantics"
	"verifyio/internal/trace"
)

// TestPropertyPipelineNeverPanics feeds the whole pipeline structurally
// valid traces filled with adversarial record contents: realistic function
// names with randomized, often-garbage arguments. The pipeline must degrade
// gracefully — skipping uninterpretable records, reporting matcher problems
// — and never panic or loop, for every model and algorithm.
func TestPropertyPipelineNeverPanics(t *testing.T) {
	funcs := []string{
		"open", "close", "read", "write", "pread", "pwrite", "lseek",
		"fopen", "fclose", "fread", "fwrite", "fseek", "fsync",
		"ftruncate", "unlink", "readv", "writev", "stat",
		"MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Wait",
		"MPI_Waitall", "MPI_Test", "MPI_Testsome", "MPI_Barrier",
		"MPI_Bcast", "MPI_Reduce", "MPI_Allreduce", "MPI_Scan",
		"MPI_Sendrecv", "MPI_Comm_dup", "MPI_Comm_split",
		"MPI_File_open", "MPI_File_close", "MPI_File_sync",
		"MPI_File_write_at_all", "MPI_File_set_view",
	}
	argPool := []string{
		"", "0", "1", "3", "4", "-1", "comm-world", "comm-bogus", "f",
		"g", "rw|creat", "r", "SEEK_SET", "SEEK_END", "SEEK_BOGUS",
		"req-0.0", "req-9.9", "notanint", "9999999999999", "-7",
	}
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 1 + rng.Intn(4)
		tr := trace.New(nranks)
		for rank := 0; rank < nranks; rank++ {
			tick := int64(0)
			n := rng.Intn(60)
			for i := 0; i < n; i++ {
				tick += 2
				nargs := rng.Intn(7)
				args := make([]string, nargs)
				for a := range args {
					args[a] = argPool[rng.Intn(len(argPool))]
				}
				tr.Append(trace.Record{
					Rank: rank, Func: funcs[rng.Intn(len(funcs))],
					Layer: trace.Layer(rng.Intn(7)),
					Args:  args, Tick: tick, Ret: tick + 1,
				})
			}
		}
		for _, algo := range []Algo{AlgoVectorClock, AlgoOnTheFly} {
			a, err := Analyze(tr, algo)
			if err != nil {
				// Errors are acceptable (e.g. cyclic garbage edges are
				// impossible here, but analysis may reject traces);
				// panics are not.
				continue
			}
			for _, m := range semantics.All() {
				if _, err := a.Verify(Options{Model: m, ContinueOnUnmatched: rng.Intn(2) == 0}); err != nil {
					t.Logf("seed %d: verify error: %v", seed, err)
					return false
				}
			}
		}
		return true
	}
	// A pinned generator keeps the suite deterministic; bump MaxCount (or
	// drop Rand) locally to hunt with fresh seeds. Seed 2 covers the
	// huge-count regression this test originally caught (unbounded
	// Waitall/readv count loops).
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(run, cfg); err != nil {
		t.Error(err)
	}
}

package verify

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"verifyio/internal/conflict"
	"verifyio/internal/recorder"
	"verifyio/internal/semantics"
	"verifyio/internal/sim/posixfs"
	"verifyio/internal/trace"
)

// racyProgram produces many conflict groups with a mix of raced and
// properly-synchronized pairs, so the parallel merge is exercised on both
// counting and detail collection.
func racyProgram(r *recorder.Rank) error {
	c := r.Proc().CommWorld()
	fd, err := r.Open("par.dat", posixfs.ORdwr|posixfs.OCreate)
	if err != nil {
		return err
	}
	// Unsynchronized overlapping writes: races everywhere.
	for i := int64(0); i < 12; i++ {
		if _, err := r.Pwrite(fd, []byte("xy"), i*2); err != nil {
			return err
		}
	}
	if err := r.Fsync(fd); err != nil {
		return err
	}
	if err := r.Barrier(c); err != nil {
		return err
	}
	// Reads after fsync+barrier: properly synchronized under commit.
	for i := int64(0); i < 12; i++ {
		if _, err := r.Pread(fd, 2, i*2); err != nil {
			return err
		}
	}
	return r.Close(fd)
}

// normalize strips the fields that legitimately vary between runs (wall
// times) and the worker count itself, leaving everything determinism must
// cover: races, counts, ordering, verdicts.
func normalize(rep *Report) *Report {
	cp := *rep
	cp.Timing = Timing{}
	cp.Workers = 0
	return &cp
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(normalize(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelVerifyDeterministic asserts that Workers=8 produces a
// byte-identical report to Workers=1 across all four models and all five
// algorithms.
func TestParallelVerifyDeterministic(t *testing.T) {
	tr := runTraced(t, 4, racyProgram)
	for _, algo := range []Algo{AlgoVectorClock, AlgoReachability, AlgoTransitiveClosure, AlgoOnTheFly, AlgoSegment} {
		a, err := Analyze(tr, algo)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range semantics.All() {
			serial, err := a.Verify(Options{Model: m, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := a.Verify(Options{Model: m, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if sj, pj := reportJSON(t, serial), reportJSON(t, parallel); !bytes.Equal(sj, pj) {
				t.Errorf("%s/%s: parallel report differs from serial\nserial:   %s\nparallel: %s",
					algo, m.Name, sj, pj)
			}
		}
	}
}

// TestParallelMaxRaceDetailsPrefix asserts the parallel merge picks the
// same detailed-race prefix as the serial walk when the cap truncates.
func TestParallelMaxRaceDetailsPrefix(t *testing.T) {
	tr := runTraced(t, 4, racyProgram)
	a, err := Analyze(tr, AlgoVectorClock)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 3, 7} {
		serial, err := a.Verify(Options{Model: semantics.POSIXModel(), Workers: 1, MaxRaceDetails: cap})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := a.Verify(Options{Model: semantics.POSIXModel(), Workers: 8, MaxRaceDetails: cap})
		if err != nil {
			t.Fatal(err)
		}
		if serial.RaceCount != parallel.RaceCount {
			t.Errorf("cap %d: race count %d vs %d", cap, serial.RaceCount, parallel.RaceCount)
		}
		if len(serial.Races) != cap || len(parallel.Races) != cap {
			t.Fatalf("cap %d: details %d vs %d, want both %d", cap, len(serial.Races), len(parallel.Races), cap)
		}
		if sj, pj := reportJSON(t, serial), reportJSON(t, parallel); !bytes.Equal(sj, pj) {
			t.Errorf("cap %d: detailed prefixes differ", cap)
		}
	}
}

// TestVerifyAllConcurrentMatchesSerial runs the four models concurrently
// over one shared analysis and compares every report to the serial pass.
func TestVerifyAllConcurrentMatchesSerial(t *testing.T) {
	tr := runTraced(t, 4, racyProgram)
	a, err := Analyze(tr, AlgoVectorClock)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := a.VerifyAll(semantics.All(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := a.VerifyAll(semantics.All(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(concurrent) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(concurrent))
	}
	for i := range serial {
		if serial[i].Model != concurrent[i].Model {
			t.Errorf("report %d: model order changed: %s vs %s", i, serial[i].Model, concurrent[i].Model)
		}
		if sj, cj := reportJSON(t, serial[i]), reportJSON(t, concurrent[i]); !bytes.Equal(sj, cj) {
			t.Errorf("%s: concurrent VerifyAll differs from serial", serial[i].Model)
		}
	}
}

// TestWorkersDefaultRecorded asserts the resolved worker count lands in the
// report.
func TestWorkersDefaultRecorded(t *testing.T) {
	tr := runTraced(t, 2, racyProgram)
	a, err := Analyze(tr, AlgoVectorClock)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Verify(Options{Model: semantics.POSIXModel()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers < 1 {
		t.Errorf("report workers = %d, want >= 1 after default resolution", rep.Workers)
	}
	rep, err = a.Verify(Options{Model: semantics.POSIXModel(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 3 {
		t.Errorf("report workers = %d, want 3", rep.Workers)
	}
}

// TestSyncIndexSortGuard violates the documented "Syncs are (rank, seq)
// ordered" invariant on purpose: buildSyncIndex must detect the unsorted
// per-rank list and restore it, so MSC binary searches stay correct.
func TestSyncIndexSortGuard(t *testing.T) {
	res := &conflict.Result{
		Files: []string{"f"},
		Syncs: []conflict.SyncPoint{
			// Same rank, decreasing seq — out of order.
			{Ref: trace.Ref{Rank: 0, Seq: 9}, Func: "fsync", FID: 0},
			{Ref: trace.Ref{Rank: 0, Seq: 2}, Func: "fsync", FID: 0},
			{Ref: trace.Ref{Rank: 0, Seq: 5}, Func: "fsync", FID: 0},
			{Ref: trace.Ref{Rank: 1, Seq: 4}, Func: "fsync", FID: 0},
		},
	}
	idx := buildSyncIndex(res, semantics.CommitModel(), &opPlan{})
	for c := range idx.perRank {
		for fid, byRank := range idx.perRank[c] {
			for rank, cands := range byRank {
				sorted := sort.SliceIsSorted(cands, func(i, j int) bool {
					return cands[i].seq < cands[j].seq
				})
				if !sorted {
					t.Errorf("class %d file %d rank %d: candidates %v not sorted", c, fid, rank, cands)
				}
			}
		}
	}
	got := idx.perRank[0][0][0]
	if len(got) != 3 || got[0].seq != 2 || got[1].seq != 5 || got[2].seq != 9 {
		t.Errorf("rank 0 seqs = %v, want [2 5 9]", got)
	}
}

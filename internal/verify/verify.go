package verify

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/hbgraph"
	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
	"verifyio/internal/vcache"
)

// Options controls a verification pass.
type Options struct {
	// Model is the consistency model to verify against.
	Model semantics.Model
	// Algo selects the happens-before algorithm (Run only; Analysis
	// carries its own).
	Algo Algo
	// DisablePruning turns the Fig. 3 group pruning off (ablation).
	DisablePruning bool
	// MaxRaceDetails caps how many races carry full call-chain detail;
	// counting is always exact. 0 means the default (256).
	MaxRaceDetails int
	// ContinueOnUnmatched verifies even when the matcher reported
	// problems. By default, unmatched MPI calls abort verification —
	// the gray rows of Fig. 4.
	ContinueOnUnmatched bool
	// DisableFastPaths forces every properly-synchronized check through
	// the generic MSC search instead of the Table I shape fast paths
	// (cross-validation and custom-model testing).
	DisableFastPaths bool
	// Workers is the number of goroutines used to verify conflict groups
	// (and, in VerifyAll, to run models concurrently). 0 means
	// GOMAXPROCS; 1 keeps the serial path. Results are independent of the
	// worker count.
	Workers int
	// Cache attaches a verdict store: every chunk of the verification plan
	// is looked up by content digest before being verified and sealed into
	// the store after. Reports gain Cache statistics. Nil disables caching.
	Cache *vcache.Store
	// CacheID names the logical trace for the incremental manifest the
	// cache keeps (e.g. the trace directory path). Empty derives a stable
	// identity from the trace content. Only meaningful with Cache set.
	CacheID string
	// Obs carries telemetry sinks; the zero Ctx disables instrumentation.
	// When a registry is attached, Report.Metrics carries its snapshot.
	Obs obs.Ctx
}

// Race is one data race (Def. 7): a conflicting pair with no
// properly-synchronized order in either direction.
type Race struct {
	X, Y  conflict.Op
	File  string
	FuncX string
	FuncY string
	// ChainX/ChainY are the call chains (outermost first, the operation
	// itself last) — what the paper uses to attribute a race to the
	// application or to a library layer.
	ChainX, ChainY []string
}

// Level classifies where a race originates, from its call chains: the
// outermost frame of the deeper chain tells which layer issued the
// conflicting operation.
func (r Race) Level() string {
	pick := func(chain []string) string {
		if len(chain) <= 1 {
			return "application"
		}
		fr, err := trace.ParseFrame(chain[0])
		if err != nil {
			return "application"
		}
		return fr.Layer.String()
	}
	lx, ly := pick(r.ChainX), pick(r.ChainY)
	if lx == ly {
		return lx
	}
	return lx + "+" + ly
}

// Report is the outcome of verifying one trace against one model.
type Report struct {
	Model     string
	Algorithm string
	Ranks     int
	Records   int

	// ConflictPairs is the step-2 conflict count (model independent).
	ConflictPairs int64
	// RaceCount is the number of data races under the model.
	RaceCount int64
	// Races carries detail for up to MaxRaceDetails races.
	Races []Race
	// Problems are the matcher's unmatched/mismatched MPI calls.
	Problems []match.Problem
	// Verified is false when unmatched MPI calls prevented verification
	// (gray rows in Fig. 4).
	Verified bool
	// ProperlySynchronized is Verified && RaceCount == 0 (green rows).
	ProperlySynchronized bool

	// ChecksPerformed counts properly-synchronized evaluations — the
	// quantity the Fig. 3 pruning reduces.
	ChecksPerformed int64
	// Workers is the worker count the verification stage actually ran
	// with (after the GOMAXPROCS default is resolved).
	Workers        int
	GraphNodes     int
	GraphSyncEdges int
	// SkeletonNodes / SkeletonLevels describe the sync skeleton the
	// graph-based oracles computed on: S nodes (sync-edge endpoints plus
	// per-rank sentinels, S ≤ GraphNodes) scheduled across the given number
	// of wavefront levels. Zero when the on-the-fly algorithm ran.
	SkeletonNodes  int
	SkeletonLevels int
	Timing         Timing
	// Cache reports verdict-cache effectiveness for this pass. Nil unless
	// Options.Cache was set — so cacheless reports are byte-identical to
	// those of builds that predate the cache.
	Cache *CacheStats `json:",omitempty"`
	// Metrics is the telemetry registry snapshot taken when this report
	// was built. Nil unless Options.Obs carried a registry.
	Metrics *obs.Snapshot `json:",omitempty"`
}

// Run performs the whole pipeline (steps 2–4) on a trace for one model.
func Run(tr *trace.Trace, opts Options) (*Report, error) {
	a, err := AnalyzeOpts(tr, opts.Algo, AnalyzeOptions{Workers: opts.Workers, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	return a.Verify(opts)
}

// Verify checks every conflict of the analysis under opts.Model.
func (a *Analysis) Verify(opts Options) (*Report, error) {
	if err := opts.Model.MSC.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRaceDetails == 0 {
		opts.MaxRaceDetails = 256
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{
		Model:         opts.Model.Name,
		Algorithm:     a.Algorithm.String(),
		Ranks:         a.NumRanks(),
		Records:       a.NumRecords(),
		ConflictPairs: a.Conflicts.Pairs,
		Problems:      a.Match.Problems,
		Workers:       opts.Workers,
		Timing:        a.Timing,
	}
	if a.Graph != nil {
		rep.GraphNodes = a.Graph.Nodes()
		rep.GraphSyncEdges = a.Graph.SyncEdges()
		rep.SkeletonNodes = a.Graph.SkeletonNodes()
		rep.SkeletonLevels = a.Graph.SkeletonLevels()
	}
	if len(a.Match.Problems) > 0 && !opts.ContinueOnUnmatched {
		// Unmatched MPI calls: the synchronization order cannot be
		// trusted, so verification is not performed (§V-D).
		rep.Verified = false
		rep.Metrics = opts.Obs.R.Snapshot()
		return rep, nil
	}
	// Model passes run concurrently in VerifyAll, so each pass gets its own
	// lane; per-chunk shard spans fork off it below.
	oc, span := opts.Obs.StartLane("verify/"+opts.Model.Name, "verify",
		obs.String("model", opts.Model.Name), obs.String("algorithm", rep.Algorithm))
	span.SetCat("verify")
	defer span.End()

	start := time.Now()
	_, idxSpan := oc.Start("sync-index")
	plan := a.queryPlan()
	v := &verifier{a: a, opts: opts, oc: oc, idx: a.syncIndexFor(opts.Model, plan), plan: plan}
	v.initGroupState()
	idxSpan.End()
	var cs *cacheSession
	if opts.Cache != nil {
		cs = newCacheSession(a, opts, oc)
	}
	if cs != nil || (opts.Workers > 1 && len(a.Conflicts.Groups) > 1) {
		v.verifyChunks(opts.Workers, cs)
	} else {
		_, chunkSpan := oc.Start("groups", obs.Int("groups", len(a.Conflicts.Groups)))
		v.verifyGroups(0, len(a.Conflicts.Groups))
		chunkSpan.End()
	}
	if cs != nil {
		cs.finish()
		rep.Cache = cs.stats()
	}
	rep.RaceCount = v.raceCount
	if a.Trace == nil && len(v.pairs) > 0 {
		// Streaming analysis: re-decode exactly the raced records (the set
		// is capped at MaxRaceDetails) before materializing their chains.
		refs := make([]trace.Ref, 0, 2*len(v.pairs))
		for _, p := range v.pairs {
			refs = append(refs, p.x.Ref, p.y.Ref)
		}
		if err := a.prefetchRecords(refs); err != nil {
			return nil, fmt.Errorf("verify: race details: %w", err)
		}
	}
	for _, p := range v.pairs {
		rep.Races = append(rep.Races, v.makeRace(p))
	}
	rep.ChecksPerformed = v.checks
	rep.Timing.Verification = time.Since(start)
	rep.Verified = true
	rep.ProperlySynchronized = rep.RaceCount == 0
	sort.Slice(rep.Races, func(i, j int) bool {
		if rep.Races[i].X.Ref != rep.Races[j].X.Ref {
			return rep.Races[i].X.Ref.Less(rep.Races[j].X.Ref)
		}
		return rep.Races[i].Y.Ref.Less(rep.Races[j].Y.Ref)
	})
	if r := opts.Obs.R; r != nil {
		r.Counter("verify.groups").Add(int64(len(a.Conflicts.Groups)))
		r.Counter("verify.checks").Add(v.checks)
		r.Counter("verify.races").Add(v.raceCount)
		// Oracle pressure, split out of verify.checks: hb_queries counts
		// happens-before evaluations actually performed (cache-served chunks
		// perform none; per-group memo hits re-use earlier evaluations),
		// hb_fast_hits the subset answered by the O(1) resolved segment
		// probe, hb_fallbacks the subset that took the general Oracle.HB
		// path. All three are deterministic at any fixed worker count.
		r.Counter("verify.hb_queries").Add(v.hbQueries)
		r.Counter("verify.hb_fast_hits").Add(v.hbFast)
		r.Counter("verify.hb_fallbacks").Add(v.hbFall)
		// The memo hit/miss split under concurrent queries is
		// scheduling-dependent; Set (not Add) keeps re-snapshotting after
		// several model passes idempotent — the gauge always holds the
		// oracle's cumulative totals.
		if bfs, ok := a.Oracle.(*hbgraph.BFSOracle); ok {
			hits, misses := bfs.MemoStats()
			r.GaugeS("hb.memo_hits", obs.Volatile).Set(hits)
			r.GaugeS("hb.memo_misses", obs.Volatile).Set(misses)
		}
		if opts.Cache != nil {
			// Volatile: the values depend on cross-run cache state, the
			// quantity the CI warm gate asserts on. Set (not Add) for the
			// same idempotence reason as the memo gauges above — the store
			// carries the cumulative totals across model passes.
			hits, misses, dirty := opts.Cache.Stats()
			r.GaugeS("vcache.hits", obs.Volatile).Set(hits)
			r.GaugeS("vcache.misses", obs.Volatile).Set(misses)
			r.GaugeS("vcache.dirty_chunks", obs.Volatile).Set(dirty)
		}
		rep.Metrics = r.Snapshot()
	}
	return rep, nil
}

// verifier checks conflict groups and accumulates races locally. The shared
// fields (a, opts, idx, plan) are read-only during verification, so shards
// of the parallel path copy them and write only their own accumulators and
// group-scoped scratch.
type verifier struct {
	a    *Analysis
	opts Options
	oc   obs.Ctx
	idx  *syncIndex
	plan *opPlan

	// Group-scoped state (setGroup): within one group sweep the X op and
	// the conflicting file never change, so X's resolution and the file's
	// candidate-list map lookups hoist out of the per-pair checks.
	curXi int32                    // op index of the current group's X (-1 outside a sweep)
	gFile [][]resolvedRef          // per class: candidates on the group's file
	gRank []map[int][]resolvedRef  // per class: rank → candidates on the file

	// Lazily computed per-group extremes for the po-hb-po fast path: the
	// earliest class-0 candidate after X on X's rank (xS1) and the latest
	// class-(k-1) candidate before X on X's rank (xS2).
	xS1, xS2       resolvedRef
	xS1ok, xS2ok   bool
	xS1set, xS2set bool

	// Per-group witness sets for the hb-S-hb fast path. On each rank the
	// candidates reachable from X form a seq-suffix (po extends hb), so the
	// earliest reachable candidate per rank witnesses every MSC through
	// that rank; dually the latest candidate reaching X witnesses the
	// reverse direction. Each set is one binary search per rank, computed
	// on first use within a group and shared by every paired Y.
	wFrom, wTo       []resolvedRef
	wFromSet, wToSet bool
	// gRanks0/gRanksK are the group file's candidate ranks (classes 0 and
	// k-1), ascending — the witness searches' deterministic order.
	gRanks0, gRanksK []int

	// Run-scoped candidate lists (setRun): every Y of one CSR run lives on
	// one rank, so that rank's class-0 and class-(k-1) lists hoist out of
	// the binary-search probes.
	runC0, runCk []resolvedRef

	// Per-(X, candidate) edge memo, version-stamped so a group switch is
	// O(1): memoFrom caches the MSC's first edge X → candidate_j, memoTo
	// its last edge candidate_j → X. Within one group sweep those verdicts
	// recur across every paired Y.
	memoVer  int32
	memoFrom []memoCell
	memoTo   []memoCell

	// Accumulators: merged into the Report after verification. Pairs
	// carry no call-chain detail — that is materialized once, for the
	// merged prefix only, so shards never pay for details the cap will
	// drop.
	checks    int64
	hbQueries int64 // happens-before evaluations actually performed
	hbFast    int64 // …of which answered by the O(1) resolved segment probe
	hbFall    int64 // …of which answered by the general Oracle.HB path
	raceCount int64
	pairs     []racePair // first opts.MaxRaceDetails races, discovery order
}

// memoCell is one version-stamped memo slot; valid when ver matches the
// verifier's current group version.
type memoCell struct {
	ver int32
	val bool
}

// racePair is a raced conflict pair awaiting detail materialization.
type racePair struct {
	x, y *conflict.Op
}

// initGroupState sizes the group-scoped scratch to the model's MSC arity.
func (v *verifier) initGroupState() {
	k := len(v.idx.perFile)
	v.gFile = make([][]resolvedRef, k)
	v.gRank = make([]map[int][]resolvedRef, k)
	v.curXi = -1
}

// setGroup hoists the group-invariant lookups — the file's candidate lists
// per class — and invalidates the per-group memos.
func (v *verifier) setGroup(g *conflict.Group) {
	v.curXi = int32(g.X)
	fid := v.a.Conflicts.Ops[g.X].FID
	for c := range v.gFile {
		v.gFile[c] = v.idx.perFile[c][fid]
		v.gRank[c] = v.idx.perRank[c][fid]
	}
	if k := len(v.gFile); k > 0 {
		v.gRanks0 = v.idx.ranks[0][fid]
		v.gRanksK = v.idx.ranks[k-1][fid]
	}
	v.xS1set, v.xS2set = false, false
	v.wFromSet, v.wToSet = false, false
	v.memoVer++
}

// buildWFrom computes the forward witness set for the group's X: per rank,
// the earliest class-0 candidate S with X -hb-> S. X -hb-> S is monotone in
// S's sequence on each rank (X hb S and S po S' give X hb S'), so one binary
// search per rank finds the suffix boundary; the minimal element witnesses
// every MSC through that rank, because S' in the suffix with S' hb Y gives
// min po S' hb Y.
func (v *verifier) buildWFrom(xr resolvedRef) {
	v.wFrom = v.wFrom[:0]
	for _, q := range v.gRanks0 {
		cands := v.gRank[0][q]
		i := sort.Search(len(cands), func(i int) bool { return v.hbRes(xr, cands[i]) })
		if i < len(cands) {
			v.wFrom = append(v.wFrom, cands[i])
		}
	}
	v.wFromSet = true
}

// buildWTo computes the reverse witness set: per rank, the latest
// class-(k-1) candidate S with S -hb-> X. S -hb-> X holds on a seq-prefix of
// each rank, so the maximal element witnesses every MSC into X.
func (v *verifier) buildWTo(xr resolvedRef) {
	v.wTo = v.wTo[:0]
	for _, q := range v.gRanksK {
		cands := v.gRank[len(v.gRank)-1][q]
		i := sort.Search(len(cands), func(i int) bool { return !v.hbRes(cands[i], xr) })
		if i > 0 {
			v.wTo = append(v.wTo, cands[i-1])
		}
	}
	v.wToSet = true
}

// setRun hoists the run-invariant per-rank candidate lists (classes 0 and
// k-1, the ones the Table I fast paths search by rank).
func (v *verifier) setRun(rank int) {
	if k := len(v.gRank); k > 0 {
		v.runC0 = v.gRank[0][rank]
		v.runCk = v.gRank[k-1][rank]
	}
}

// ps implements Def. 6: X properly-synchronizes-before Y. xi and yi are the
// ops' indices in Conflicts.Ops — the plan's operand space.
func (v *verifier) ps(x, y *conflict.Op, xi, yi int32) bool {
	v.checks++
	if !x.Write {
		// Case 1: a read followed in happens-before order by the
		// conflicting (write) operation.
		return v.hbRes(v.plan.res[xi], v.plan.res[yi])
	}
	// Case 2: an MSC instance between X and Y.
	return v.mscExists(x, y, xi, yi)
}

// hbRes answers one happens-before query over resolved operands: program
// order for same-rank pairs, the O(1) segment probe when the plan resolved
// both operands, and the general Oracle.HB path otherwise.
func (v *verifier) hbRes(a, b resolvedRef) bool {
	v.hbQueries++
	if a.rank == b.rank {
		return a.seq < b.seq
	}
	if p := v.plan.prober; p != nil && a.next >= 0 && b.next >= 0 {
		v.hbFast++
		return p.ProbeSeg(a.rank, a.seq, a.next, b.prev)
	}
	v.hbFall++
	return v.a.Oracle.HB(trace.Ref{Rank: int(a.rank), Seq: int(a.seq)},
		trace.Ref{Rank: int(b.rank), Seq: int(b.seq)})
}

// edgeRes checks one MSC edge requirement between two resolved operands.
func (v *verifier) edgeRes(kind semantics.EdgeKind, a, b resolvedRef) bool {
	if kind == semantics.PO {
		return a.rank == b.rank && a.seq < b.seq
	}
	return v.hbRes(a, b)
}

// memoFromAt returns the memoized verdict of the MSC's first edge
// X → candidate_j, computing it on first use within the current group.
func (v *verifier) memoFromAt(j int, kind semantics.EdgeKind, x, cand resolvedRef) bool {
	if j >= len(v.memoFrom) {
		v.memoFrom = append(v.memoFrom, make([]memoCell, j+1-len(v.memoFrom))...)
	}
	c := &v.memoFrom[j]
	if c.ver != v.memoVer {
		c.ver = v.memoVer
		c.val = v.edgeRes(kind, x, cand)
	}
	return c.val
}

// memoToAt returns the memoized verdict of the MSC's last edge
// candidate_j → X, computing it on first use within the current group.
func (v *verifier) memoToAt(j int, kind semantics.EdgeKind, cand, x resolvedRef) bool {
	if j >= len(v.memoTo) {
		v.memoTo = append(v.memoTo, make([]memoCell, j+1-len(v.memoTo))...)
	}
	c := &v.memoTo[j]
	if c.ver != v.memoVer {
		c.ver = v.memoVer
		c.val = v.edgeRes(kind, cand, x)
	}
	return c.val
}

// mscExists searches for an instance of the model's MSC between x and y,
// with every synchronization operation acting on the conflicting file.
func (v *verifier) mscExists(x, y *conflict.Op, xi, yi int32) bool {
	msc := v.opts.Model.MSC
	k := msc.K()
	xr, yr := v.plan.res[xi], v.plan.res[yi]
	if k == 0 {
		// POSIX: -hb->
		return v.edgeRes(msc.Edges[0], xr, yr)
	}
	if v.opts.DisableFastPaths {
		return v.mscDFS(msc, 0, xr, xi, yi, yr)
	}
	// Fast path for the Table I shapes.
	switch {
	case k == 1 && msc.Edges[0] == semantics.HB && msc.Edges[1] == semantics.HB:
		// -hb-> S -hb-> : any sync op on the file with X hb S hb Y. The
		// group sweep always anchors one endpoint at the group's X, whose
		// per-rank extreme witnesses cover every candidate (see buildWFrom/
		// buildWTo) — each pair then costs at most one probe per rank
		// instead of a scan of the candidate list.
		if xi == v.curXi {
			if !v.wFromSet {
				v.buildWFrom(xr)
			}
			for _, w := range v.wFrom {
				if v.hbRes(w, yr) {
					return true
				}
			}
			return false
		}
		if yi == v.curXi {
			if !v.wToSet {
				v.buildWTo(yr)
			}
			for _, w := range v.wTo {
				if v.hbRes(xr, w) {
					return true
				}
			}
			return false
		}
		// Neither endpoint is the sweeping group's X (not reachable from
		// verifyGroups; kept for call-site safety): plain candidate scan.
		for _, cand := range v.gFile[0] {
			if v.hbRes(xr, cand) && v.hbRes(cand, yr) {
				return true
			}
		}
		return false
	case k == 2 && msc.Edges[0] == semantics.PO && msc.Edges[1] == semantics.HB && msc.Edges[2] == semantics.PO:
		// -po-> S1 -hb-> S2 -po-> : the earliest S1 after X on X's rank
		// and the latest S2 before Y on Y's rank suffice — if ANY
		// (S1', S2') pair works then this extreme pair works too,
		// because S1 -po-> S1' and S2' -po-> S2 extend the hb path.
		// Whichever endpoint is the group's X resolves its extreme once per
		// group; the other endpoint is a run Y, whose rank's candidate
		// lists are run-hoisted.
		var s1 resolvedRef
		var ok bool
		if xi == v.curXi {
			if !v.xS1set {
				v.xS1, v.xS1ok = firstAfterRes(v.gRank[0][int(xr.rank)], xr.seq)
				v.xS1set = true
			}
			s1, ok = v.xS1, v.xS1ok
		} else {
			s1, ok = firstAfterRes(v.runC0, xr.seq)
		}
		if !ok {
			return false
		}
		var s2 resolvedRef
		if yi == v.curXi {
			if !v.xS2set {
				v.xS2, v.xS2ok = lastBeforeRes(v.gRank[1][int(yr.rank)], yr.seq)
				v.xS2set = true
			}
			s2, ok = v.xS2, v.xS2ok
		} else {
			s2, ok = lastBeforeRes(v.runCk, yr.seq)
		}
		if !ok {
			return false
		}
		return v.hbRes(s1, s2)
	}
	// Generic DFS for custom models.
	return v.mscDFS(msc, 0, xr, xi, yi, yr)
}

// mscDFS anchors MSC element pos (0-based sync-op position) given the
// previously anchored operand. The first- and last-edge verdicts touching
// the group's X share the fast paths' per-group memos.
func (v *verifier) mscDFS(msc semantics.MSC, pos int, prev resolvedRef, xi, yi int32, yr resolvedRef) bool {
	k := msc.K()
	if pos == k {
		return v.edgeRes(msc.Edges[k], prev, yr)
	}
	cands := v.gFile[pos]
	useFrom := pos == 0 && xi == v.curXi
	useTo := pos == k-1 && yi == v.curXi
	for j := range cands {
		var ok bool
		if useFrom {
			ok = v.memoFromAt(j, msc.Edges[0], prev, cands[j])
		} else {
			ok = v.edgeRes(msc.Edges[pos], prev, cands[j])
		}
		if !ok {
			continue
		}
		if useTo {
			if v.memoToAt(j, msc.Edges[k], cands[j], yr) {
				return true
			}
			continue
		}
		if v.mscDFS(msc, pos+1, cands[j], xi, yi, yr) {
			return true
		}
	}
	return false
}

// verifyGroups walks the conflict groups in [lo, hi) and collects races.
// Each unordered pair appears in two mirrored groups; it is recorded only
// from the group whose X precedes Y in (rank, seq) order, so counting is
// exact. Groups are independent of each other, which is what makes the
// range a unit of parallel work.
func (v *verifier) verifyGroups(lo, hi int) {
	ops := v.a.Conflicts.Ops
	for gi := lo; gi < hi; gi++ {
		g := &v.a.Conflicts.Groups[gi]
		v.setGroup(g)
		x, xi := &ops[g.X], int32(g.X)
		// CSR runs are already ordered by ascending rank, each run in
		// program order — the walk the map-of-slices layout needed a
		// per-group rank sort to produce.
		for k := 0; k < g.NumRuns(); k++ {
			ys := g.RunAt(k)
			v.setRun(ops[ys[0]].Ref.Rank)
			if v.opts.DisablePruning {
				for _, yi := range ys {
					y := &ops[yi]
					if !v.ps(x, y, xi, yi) && !v.ps(y, x, yi, xi) {
						v.recordRace(x, y)
					}
				}
				continue
			}
			v.verifyRun(x, xi, ys)
		}
	}
}

// verifyRun applies the Fig. 3 pruning to one (X, ζ_r) run, generalized to
// a pair of binary searches over the two monotone predicates:
//
//   - X ps Y_i is monotone non-decreasing in i (rules 1 and 3): an MSC to
//     Y_i extends to any later Y_j by program order.
//   - Y_i ps X is monotone non-increasing in i (rules 2 and 4): an MSC
//     from Y_i restricts to any earlier Y_j.
//
// (The paper states rule 4 with Y_n; the sound monotone form anchors the
// negative direction at Y_1 — checking Y_1 clears or dooms the whole run.)
// Each of the paper's four scenarios is the degenerate case where a search
// terminates after one probe; in general the run costs O(log n) checks
// instead of n.
func (v *verifier) verifyRun(x *conflict.Op, xi int32, ys []int32) {
	ops := v.a.Conflicts.Ops
	n := len(ys)
	// iF: first index with X ps Y_i (n when none).
	iF := sort.Search(n, func(i int) bool { return v.ps(x, &ops[ys[i]], xi, ys[i]) })
	// iG: first index where Y_i ps X stops holding; indices < iG hold.
	iG := sort.Search(n, func(i int) bool { return !v.ps(&ops[ys[i]], x, ys[i], xi) })
	// Pairs in [iG, iF) are synchronized in neither direction.
	for i := iG; i < iF; i++ {
		v.recordRace(x, &ops[ys[i]])
	}
}

// verifyChunks runs the chunk plan — the shared unit of parallel work and
// of verdict caching. With workers > 1, workers claim chunks from an atomic
// cursor; the per-chunk verifiers are then merged in chunk order = group
// order, so the detailed-race prefix, the race count and the check count
// are exactly what the serial walk produces, at every worker count and for
// any mix of cached and recomputed chunks. A non-nil cs resolves chunks
// from the verdict cache first and seals fresh verdicts after.
func (v *verifier) verifyChunks(workers int, cs *cacheSession) {
	plan := planChunks(v.a.Conflicts)
	if cs != nil {
		plan = cs.art.plan // identical by construction; reuse the memo
	}
	nchunks := len(plan)
	shards := make([]verifier, nchunks)
	work := func(c int) {
		sh := &shards[c]
		sh.a, sh.opts, sh.idx, sh.plan = v.a, v.opts, v.idx, v.plan
		sh.initGroupState()
		if cs != nil && cs.tryApply(c, sh) {
			return
		}
		span := plan[c]
		_, sp := v.oc.StartLane(
			"verify/"+v.opts.Model.Name+"/chunk-"+fmt.Sprint(c),
			"chunk", obs.Int("chunk", c), obs.Int("groups", span.hi-span.lo))
		sh.verifyGroups(span.lo, span.hi)
		sp.End()
		if cs != nil {
			cs.seal(c, sh)
		}
	}
	if workers <= 1 || nchunks <= 1 {
		for c := 0; c < nchunks; c++ {
			work(c)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(cursor.Add(1)) - 1
					if c >= nchunks {
						return
					}
					work(c)
				}
			}()
		}
		wg.Wait()
	}
	// Merge in chunk order = group order: each shard capped its detail at
	// MaxRaceDetails, which is enough because the global detail prefix
	// draws at most that many races from any shard's own prefix.
	for c := range shards {
		sh := &shards[c]
		v.checks += sh.checks
		v.hbQueries += sh.hbQueries
		v.hbFast += sh.hbFast
		v.hbFall += sh.hbFall
		v.raceCount += sh.raceCount
		for i := range sh.pairs {
			if len(v.pairs) >= v.opts.MaxRaceDetails {
				break
			}
			v.pairs = append(v.pairs, sh.pairs[i])
		}
	}
}

func (v *verifier) recordRace(x, y *conflict.Op) {
	// Mirrored groups: record each unordered pair once.
	if !x.Ref.Less(y.Ref) {
		return
	}
	v.raceCount++
	if len(v.pairs) >= v.opts.MaxRaceDetails {
		return
	}
	v.pairs = append(v.pairs, racePair{x: x, y: y})
}

// makeRace materializes the reported detail (paths, call chains) for one
// raced pair.
func (v *verifier) makeRace(p racePair) Race {
	rx := v.a.record(p.x.Ref)
	ry := v.a.record(p.y.Ref)
	return Race{
		X: *p.x, Y: *p.y,
		File:   v.a.Conflicts.PathOf(p.x.FID),
		FuncX:  rx.Func,
		FuncY:  ry.Func,
		ChainX: fullChain(rx),
		ChainY: fullChain(ry),
	}
}

// fullChain returns the call chain with the operation itself appended.
func fullChain(rec *trace.Record) []string {
	out := make([]string, 0, len(rec.Chain)+1)
	out = append(out, rec.Chain...)
	out = append(out, trace.FormatFrame(rec.Layer, rec.Func, rec.Site))
	return out
}

// VerifyAll verifies the analysis against every given model, reusing the
// shared steps. With Workers != 1 the models run concurrently: the oracle
// is read-only after construction and safe for concurrent queries, and each
// model pass builds its own syncIndex. Report order always follows the
// models argument.
func (a *Analysis) VerifyAll(models []semantics.Model, opts Options) ([]*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*Report, len(models))
	errs := make([]error, len(models))
	if workers == 1 || len(models) == 1 {
		for i, m := range models {
			o := opts
			o.Model = m
			out[i], errs[i] = a.Verify(o)
		}
	} else {
		var wg sync.WaitGroup
		for i, m := range models {
			wg.Add(1)
			go func(i int, m semantics.Model) {
				defer wg.Done()
				o := opts
				o.Model = m
				out[i], errs[i] = a.Verify(o)
			}(i, m)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("verify: model %s: %w", models[i].Name, err)
		}
	}
	return out, nil
}

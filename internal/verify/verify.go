package verify

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/hbgraph"
	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
	"verifyio/internal/vcache"
)

// Options controls a verification pass.
type Options struct {
	// Model is the consistency model to verify against.
	Model semantics.Model
	// Algo selects the happens-before algorithm (Run only; Analysis
	// carries its own).
	Algo Algo
	// DisablePruning turns the Fig. 3 group pruning off (ablation).
	DisablePruning bool
	// MaxRaceDetails caps how many races carry full call-chain detail;
	// counting is always exact. 0 means the default (256).
	MaxRaceDetails int
	// ContinueOnUnmatched verifies even when the matcher reported
	// problems. By default, unmatched MPI calls abort verification —
	// the gray rows of Fig. 4.
	ContinueOnUnmatched bool
	// DisableFastPaths forces every properly-synchronized check through
	// the generic MSC search instead of the Table I shape fast paths
	// (cross-validation and custom-model testing).
	DisableFastPaths bool
	// Workers is the number of goroutines used to verify conflict groups
	// (and, in VerifyAll, to run models concurrently). 0 means
	// GOMAXPROCS; 1 keeps the serial path. Results are independent of the
	// worker count.
	Workers int
	// Cache attaches a verdict store: every chunk of the verification plan
	// is looked up by content digest before being verified and sealed into
	// the store after. Reports gain Cache statistics. Nil disables caching.
	Cache *vcache.Store
	// CacheID names the logical trace for the incremental manifest the
	// cache keeps (e.g. the trace directory path). Empty derives a stable
	// identity from the trace content. Only meaningful with Cache set.
	CacheID string
	// Obs carries telemetry sinks; the zero Ctx disables instrumentation.
	// When a registry is attached, Report.Metrics carries its snapshot.
	Obs obs.Ctx
}

// Race is one data race (Def. 7): a conflicting pair with no
// properly-synchronized order in either direction.
type Race struct {
	X, Y  conflict.Op
	File  string
	FuncX string
	FuncY string
	// ChainX/ChainY are the call chains (outermost first, the operation
	// itself last) — what the paper uses to attribute a race to the
	// application or to a library layer.
	ChainX, ChainY []string
}

// Level classifies where a race originates, from its call chains: the
// outermost frame of the deeper chain tells which layer issued the
// conflicting operation.
func (r Race) Level() string {
	pick := func(chain []string) string {
		if len(chain) <= 1 {
			return "application"
		}
		fr, err := trace.ParseFrame(chain[0])
		if err != nil {
			return "application"
		}
		return fr.Layer.String()
	}
	lx, ly := pick(r.ChainX), pick(r.ChainY)
	if lx == ly {
		return lx
	}
	return lx + "+" + ly
}

// Report is the outcome of verifying one trace against one model.
type Report struct {
	Model     string
	Algorithm string
	Ranks     int
	Records   int

	// ConflictPairs is the step-2 conflict count (model independent).
	ConflictPairs int64
	// RaceCount is the number of data races under the model.
	RaceCount int64
	// Races carries detail for up to MaxRaceDetails races.
	Races []Race
	// Problems are the matcher's unmatched/mismatched MPI calls.
	Problems []match.Problem
	// Verified is false when unmatched MPI calls prevented verification
	// (gray rows in Fig. 4).
	Verified bool
	// ProperlySynchronized is Verified && RaceCount == 0 (green rows).
	ProperlySynchronized bool

	// ChecksPerformed counts properly-synchronized evaluations — the
	// quantity the Fig. 3 pruning reduces.
	ChecksPerformed int64
	// Workers is the worker count the verification stage actually ran
	// with (after the GOMAXPROCS default is resolved).
	Workers        int
	GraphNodes     int
	GraphSyncEdges int
	// SkeletonNodes / SkeletonLevels describe the sync skeleton the
	// graph-based oracles computed on: S nodes (sync-edge endpoints plus
	// per-rank sentinels, S ≤ GraphNodes) scheduled across the given number
	// of wavefront levels. Zero when the on-the-fly algorithm ran.
	SkeletonNodes  int
	SkeletonLevels int
	Timing         Timing
	// Cache reports verdict-cache effectiveness for this pass. Nil unless
	// Options.Cache was set — so cacheless reports are byte-identical to
	// those of builds that predate the cache.
	Cache *CacheStats `json:",omitempty"`
	// Metrics is the telemetry registry snapshot taken when this report
	// was built. Nil unless Options.Obs carried a registry.
	Metrics *obs.Snapshot `json:",omitempty"`
}

// Run performs the whole pipeline (steps 2–4) on a trace for one model.
func Run(tr *trace.Trace, opts Options) (*Report, error) {
	a, err := AnalyzeOpts(tr, opts.Algo, AnalyzeOptions{Workers: opts.Workers, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	return a.Verify(opts)
}

// Verify checks every conflict of the analysis under opts.Model.
func (a *Analysis) Verify(opts Options) (*Report, error) {
	if err := opts.Model.MSC.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRaceDetails == 0 {
		opts.MaxRaceDetails = 256
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{
		Model:         opts.Model.Name,
		Algorithm:     a.Algorithm.String(),
		Ranks:         a.NumRanks(),
		Records:       a.NumRecords(),
		ConflictPairs: a.Conflicts.Pairs,
		Problems:      a.Match.Problems,
		Workers:       opts.Workers,
		Timing:        a.Timing,
	}
	if a.Graph != nil {
		rep.GraphNodes = a.Graph.Nodes()
		rep.GraphSyncEdges = a.Graph.SyncEdges()
		rep.SkeletonNodes = a.Graph.SkeletonNodes()
		rep.SkeletonLevels = a.Graph.SkeletonLevels()
	}
	if len(a.Match.Problems) > 0 && !opts.ContinueOnUnmatched {
		// Unmatched MPI calls: the synchronization order cannot be
		// trusted, so verification is not performed (§V-D).
		rep.Verified = false
		rep.Metrics = opts.Obs.R.Snapshot()
		return rep, nil
	}
	// Model passes run concurrently in VerifyAll, so each pass gets its own
	// lane; per-chunk shard spans fork off it below.
	oc, span := opts.Obs.StartLane("verify/"+opts.Model.Name, "verify",
		obs.String("model", opts.Model.Name), obs.String("algorithm", rep.Algorithm))
	span.SetCat("verify")
	defer span.End()

	start := time.Now()
	_, idxSpan := oc.Start("sync-index")
	v := &verifier{a: a, opts: opts, oc: oc, idx: buildSyncIndex(a.Conflicts, opts.Model)}
	idxSpan.End()
	var cs *cacheSession
	if opts.Cache != nil {
		cs = newCacheSession(a, opts, oc)
	}
	if cs != nil || (opts.Workers > 1 && len(a.Conflicts.Groups) > 1) {
		v.verifyChunks(opts.Workers, cs)
	} else {
		_, chunkSpan := oc.Start("groups", obs.Int("groups", len(a.Conflicts.Groups)))
		v.verifyGroups(0, len(a.Conflicts.Groups))
		chunkSpan.End()
	}
	if cs != nil {
		cs.finish()
		rep.Cache = cs.stats()
	}
	rep.RaceCount = v.raceCount
	if a.Trace == nil && len(v.pairs) > 0 {
		// Streaming analysis: re-decode exactly the raced records (the set
		// is capped at MaxRaceDetails) before materializing their chains.
		refs := make([]trace.Ref, 0, 2*len(v.pairs))
		for _, p := range v.pairs {
			refs = append(refs, p.x.Ref, p.y.Ref)
		}
		if err := a.prefetchRecords(refs); err != nil {
			return nil, fmt.Errorf("verify: race details: %w", err)
		}
	}
	for _, p := range v.pairs {
		rep.Races = append(rep.Races, v.makeRace(p))
	}
	rep.ChecksPerformed = v.checks
	rep.Timing.Verification = time.Since(start)
	rep.Verified = true
	rep.ProperlySynchronized = rep.RaceCount == 0
	sort.Slice(rep.Races, func(i, j int) bool {
		if rep.Races[i].X.Ref != rep.Races[j].X.Ref {
			return rep.Races[i].X.Ref.Less(rep.Races[j].X.Ref)
		}
		return rep.Races[i].Y.Ref.Less(rep.Races[j].Y.Ref)
	})
	if r := opts.Obs.R; r != nil {
		r.Counter("verify.groups").Add(int64(len(a.Conflicts.Groups)))
		r.Counter("verify.checks").Add(v.checks)
		r.Counter("verify.races").Add(v.raceCount)
		// The memo hit/miss split under concurrent queries is
		// scheduling-dependent; Set (not Add) keeps re-snapshotting after
		// several model passes idempotent — the gauge always holds the
		// oracle's cumulative totals.
		if bfs, ok := a.Oracle.(*hbgraph.BFSOracle); ok {
			hits, misses := bfs.MemoStats()
			r.GaugeS("hb.memo_hits", obs.Volatile).Set(hits)
			r.GaugeS("hb.memo_misses", obs.Volatile).Set(misses)
		}
		if opts.Cache != nil {
			// Volatile: the values depend on cross-run cache state, the
			// quantity the CI warm gate asserts on. Set (not Add) for the
			// same idempotence reason as the memo gauges above — the store
			// carries the cumulative totals across model passes.
			hits, misses, dirty := opts.Cache.Stats()
			r.GaugeS("vcache.hits", obs.Volatile).Set(hits)
			r.GaugeS("vcache.misses", obs.Volatile).Set(misses)
			r.GaugeS("vcache.dirty_chunks", obs.Volatile).Set(dirty)
		}
		rep.Metrics = r.Snapshot()
	}
	return rep, nil
}

// syncIndex organizes the trace's synchronization points for MSC lookup:
// for each MSC op class, per (file, rank) sorted sequence lists and a
// per-file global list.
type syncIndex struct {
	// perRank[class][fid][rank] = sorted seqs.
	perRank []map[int]map[int][]int
	// perFile[class][fid] = refs in (rank, seq) order.
	perFile []map[int][]trace.Ref
}

func buildSyncIndex(conf *conflict.Result, model semantics.Model) *syncIndex {
	k := model.MSC.K()
	idx := &syncIndex{
		perRank: make([]map[int]map[int][]int, k),
		perFile: make([]map[int][]trace.Ref, k),
	}
	for c := 0; c < k; c++ {
		idx.perRank[c] = make(map[int]map[int][]int)
		idx.perFile[c] = make(map[int][]trace.Ref)
	}
	for _, sp := range conf.Syncs {
		for c := 0; c < k; c++ {
			if !model.MSC.Ops[c].Contains(sp.Func) {
				continue
			}
			byRank, ok := idx.perRank[c][sp.FID]
			if !ok {
				byRank = make(map[int][]int)
				idx.perRank[c][sp.FID] = byRank
			}
			byRank[sp.Ref.Rank] = append(byRank[sp.Ref.Rank], sp.Ref.Seq)
			idx.perFile[c][sp.FID] = append(idx.perFile[c][sp.FID], sp.Ref)
		}
	}
	// conflict.Result.Syncs is produced rank-major in seq order, so the
	// per-rank lists are already sorted; the guard keeps the invariant
	// cheap to hold and safe if a future producer violates it.
	for c := 0; c < k; c++ {
		for _, byRank := range idx.perRank[c] {
			for _, seqs := range byRank {
				if !sort.IntsAreSorted(seqs) {
					sort.Ints(seqs)
				}
			}
		}
	}
	return idx
}

// firstAfter returns the lowest seq in the sorted list strictly greater
// than s, or -1.
func firstAfter(seqs []int, s int) int {
	i := sort.SearchInts(seqs, s+1)
	if i == len(seqs) {
		return -1
	}
	return seqs[i]
}

// lastBefore returns the highest seq strictly less than s, or -1.
func lastBefore(seqs []int, s int) int {
	i := sort.SearchInts(seqs, s)
	if i == 0 {
		return -1
	}
	return seqs[i-1]
}

// verifier checks conflict groups and accumulates races locally. The shared
// fields (a, opts, idx) are read-only during verification, so shards of the
// parallel path copy them and write only their own accumulators.
type verifier struct {
	a    *Analysis
	opts Options
	oc   obs.Ctx
	idx  *syncIndex

	// Accumulators: merged into the Report after verification. Pairs
	// carry no call-chain detail — that is materialized once, for the
	// merged prefix only, so shards never pay for details the cap will
	// drop.
	checks    int64
	raceCount int64
	pairs     []racePair // first opts.MaxRaceDetails races, discovery order
}

// racePair is a raced conflict pair awaiting detail materialization.
type racePair struct {
	x, y *conflict.Op
}

// ps implements Def. 6: X properly-synchronizes-before Y.
func (v *verifier) ps(x, y *conflict.Op) bool {
	v.checks++
	if !x.Write {
		// Case 1: a read followed in happens-before order by the
		// conflicting (write) operation.
		return v.hb(x.Ref, y.Ref)
	}
	// Case 2: an MSC instance between X and Y.
	return v.mscExists(x, y)
}

func (v *verifier) hb(a, b trace.Ref) bool { return v.a.Oracle.HB(a, b) }

// mscExists searches for an instance of the model's MSC between x and y,
// with every synchronization operation acting on the conflicting file.
func (v *verifier) mscExists(x, y *conflict.Op) bool {
	msc := v.opts.Model.MSC
	k := msc.K()
	if k == 0 {
		// POSIX: -hb->
		return v.edgeOK(msc.Edges[0], x.Ref, y.Ref)
	}
	if v.opts.DisableFastPaths {
		return v.mscDFS(msc, 0, x.Ref, x, y)
	}
	// Fast path for the Table I shapes.
	switch {
	case k == 1 && msc.Edges[0] == semantics.HB && msc.Edges[1] == semantics.HB:
		// -hb-> S -hb-> : any sync op on the file with X hb S hb Y.
		for _, s := range v.idx.perFile[0][x.FID] {
			if v.edgeOK(semantics.HB, x.Ref, s) && v.edgeOK(semantics.HB, s, y.Ref) {
				return true
			}
		}
		return false
	case k == 2 && msc.Edges[0] == semantics.PO && msc.Edges[1] == semantics.HB && msc.Edges[2] == semantics.PO:
		// -po-> S1 -hb-> S2 -po-> : the earliest S1 after X on X's rank
		// and the latest S2 before Y on Y's rank suffice — if ANY
		// (S1', S2') pair works then this extreme pair works too,
		// because S1 -po-> S1' and S2' -po-> S2 extend the hb path.
		s1seqs := v.idx.perRank[0][x.FID][x.Ref.Rank]
		s2seqs := v.idx.perRank[1][y.FID][y.Ref.Rank]
		s1 := firstAfter(s1seqs, x.Ref.Seq)
		s2 := lastBefore(s2seqs, y.Ref.Seq)
		if s1 < 0 || s2 < 0 {
			return false
		}
		return v.edgeOK(semantics.HB,
			trace.Ref{Rank: x.Ref.Rank, Seq: s1},
			trace.Ref{Rank: y.Ref.Rank, Seq: s2})
	}
	// Generic DFS for custom models.
	return v.mscDFS(msc, 0, x.Ref, x, y)
}

// mscDFS anchors MSC element pos (0-based sync-op position) given the
// previously anchored ref.
func (v *verifier) mscDFS(msc semantics.MSC, pos int, prev trace.Ref, x, y *conflict.Op) bool {
	if pos == msc.K() {
		return v.edgeOK(msc.Edges[pos], prev, y.Ref)
	}
	for _, cand := range v.idx.perFile[pos][x.FID] {
		if !v.edgeOK(msc.Edges[pos], prev, cand) {
			continue
		}
		if v.mscDFS(msc, pos+1, cand, x, y) {
			return true
		}
	}
	return false
}

// edgeOK checks one MSC edge requirement between two records.
func (v *verifier) edgeOK(kind semantics.EdgeKind, a, b trace.Ref) bool {
	switch kind {
	case semantics.PO:
		return a.Rank == b.Rank && a.Seq < b.Seq
	default:
		return v.hb(a, b)
	}
}

// verifyGroups walks the conflict groups in [lo, hi) and collects races.
// Each unordered pair appears in two mirrored groups; it is recorded only
// from the group whose X precedes Y in (rank, seq) order, so counting is
// exact. Groups are independent of each other, which is what makes the
// range a unit of parallel work.
func (v *verifier) verifyGroups(lo, hi int) {
	ops := v.a.Conflicts.Ops
	for gi := lo; gi < hi; gi++ {
		g := &v.a.Conflicts.Groups[gi]
		x := &ops[g.X]
		// CSR runs are already ordered by ascending rank, each run in
		// program order — the walk the map-of-slices layout needed a
		// per-group rank sort to produce.
		for k := 0; k < g.NumRuns(); k++ {
			ys := g.RunAt(k)
			if v.opts.DisablePruning {
				for _, yi := range ys {
					y := &ops[yi]
					if !v.ps(x, y) && !v.ps(y, x) {
						v.recordRace(x, y)
					}
				}
				continue
			}
			v.verifyRun(x, ys)
		}
	}
}

// verifyRun applies the Fig. 3 pruning to one (X, ζ_r) run, generalized to
// a pair of binary searches over the two monotone predicates:
//
//   - X ps Y_i is monotone non-decreasing in i (rules 1 and 3): an MSC to
//     Y_i extends to any later Y_j by program order.
//   - Y_i ps X is monotone non-increasing in i (rules 2 and 4): an MSC
//     from Y_i restricts to any earlier Y_j.
//
// (The paper states rule 4 with Y_n; the sound monotone form anchors the
// negative direction at Y_1 — checking Y_1 clears or dooms the whole run.)
// Each of the paper's four scenarios is the degenerate case where a search
// terminates after one probe; in general the run costs O(log n) checks
// instead of n.
func (v *verifier) verifyRun(x *conflict.Op, ys []int32) {
	ops := v.a.Conflicts.Ops
	n := len(ys)
	// iF: first index with X ps Y_i (n when none).
	iF := sort.Search(n, func(i int) bool { return v.ps(x, &ops[ys[i]]) })
	// iG: first index where Y_i ps X stops holding; indices < iG hold.
	iG := sort.Search(n, func(i int) bool { return !v.ps(&ops[ys[i]], x) })
	// Pairs in [iG, iF) are synchronized in neither direction.
	for i := iG; i < iF; i++ {
		v.recordRace(x, &ops[ys[i]])
	}
}

// verifyChunks runs the chunk plan — the shared unit of parallel work and
// of verdict caching. With workers > 1, workers claim chunks from an atomic
// cursor; the per-chunk verifiers are then merged in chunk order = group
// order, so the detailed-race prefix, the race count and the check count
// are exactly what the serial walk produces, at every worker count and for
// any mix of cached and recomputed chunks. A non-nil cs resolves chunks
// from the verdict cache first and seals fresh verdicts after.
func (v *verifier) verifyChunks(workers int, cs *cacheSession) {
	plan := planChunks(v.a.Conflicts)
	if cs != nil {
		plan = cs.art.plan // identical by construction; reuse the memo
	}
	nchunks := len(plan)
	shards := make([]verifier, nchunks)
	work := func(c int) {
		sh := &shards[c]
		sh.a, sh.opts, sh.idx = v.a, v.opts, v.idx
		if cs != nil && cs.tryApply(c, sh) {
			return
		}
		span := plan[c]
		_, sp := v.oc.StartLane(
			"verify/"+v.opts.Model.Name+"/chunk-"+fmt.Sprint(c),
			"chunk", obs.Int("chunk", c), obs.Int("groups", span.hi-span.lo))
		sh.verifyGroups(span.lo, span.hi)
		sp.End()
		if cs != nil {
			cs.seal(c, sh)
		}
	}
	if workers <= 1 || nchunks <= 1 {
		for c := 0; c < nchunks; c++ {
			work(c)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(cursor.Add(1)) - 1
					if c >= nchunks {
						return
					}
					work(c)
				}
			}()
		}
		wg.Wait()
	}
	// Merge in chunk order = group order: each shard capped its detail at
	// MaxRaceDetails, which is enough because the global detail prefix
	// draws at most that many races from any shard's own prefix.
	for c := range shards {
		sh := &shards[c]
		v.checks += sh.checks
		v.raceCount += sh.raceCount
		for i := range sh.pairs {
			if len(v.pairs) >= v.opts.MaxRaceDetails {
				break
			}
			v.pairs = append(v.pairs, sh.pairs[i])
		}
	}
}

func (v *verifier) recordRace(x, y *conflict.Op) {
	// Mirrored groups: record each unordered pair once.
	if !x.Ref.Less(y.Ref) {
		return
	}
	v.raceCount++
	if len(v.pairs) >= v.opts.MaxRaceDetails {
		return
	}
	v.pairs = append(v.pairs, racePair{x: x, y: y})
}

// makeRace materializes the reported detail (paths, call chains) for one
// raced pair.
func (v *verifier) makeRace(p racePair) Race {
	rx := v.a.record(p.x.Ref)
	ry := v.a.record(p.y.Ref)
	return Race{
		X: *p.x, Y: *p.y,
		File:   v.a.Conflicts.PathOf(p.x.FID),
		FuncX:  rx.Func,
		FuncY:  ry.Func,
		ChainX: fullChain(rx),
		ChainY: fullChain(ry),
	}
}

// fullChain returns the call chain with the operation itself appended.
func fullChain(rec *trace.Record) []string {
	out := make([]string, 0, len(rec.Chain)+1)
	out = append(out, rec.Chain...)
	out = append(out, trace.FormatFrame(rec.Layer, rec.Func, rec.Site))
	return out
}

// VerifyAll verifies the analysis against every given model, reusing the
// shared steps. With Workers != 1 the models run concurrently: the oracle
// is read-only after construction and safe for concurrent queries, and each
// model pass builds its own syncIndex. Report order always follows the
// models argument.
func (a *Analysis) VerifyAll(models []semantics.Model, opts Options) ([]*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*Report, len(models))
	errs := make([]error, len(models))
	if workers == 1 || len(models) == 1 {
		for i, m := range models {
			o := opts
			o.Model = m
			out[i], errs[i] = a.Verify(o)
		}
	} else {
		var wg sync.WaitGroup
		for i, m := range models {
			wg.Add(1)
			go func(i int, m semantics.Model) {
				defer wg.Done()
				o := opts
				o.Model = m
				out[i], errs[i] = a.Verify(o)
			}(i, m)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("verify: model %s: %w", models[i].Name, err)
		}
	}
	return out, nil
}

package verify

import (
	"fmt"
	"sort"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/match"
	"verifyio/internal/semantics"
	"verifyio/internal/trace"
)

// Options controls a verification pass.
type Options struct {
	// Model is the consistency model to verify against.
	Model semantics.Model
	// Algo selects the happens-before algorithm (Run only; Analysis
	// carries its own).
	Algo Algo
	// DisablePruning turns the Fig. 3 group pruning off (ablation).
	DisablePruning bool
	// MaxRaceDetails caps how many races carry full call-chain detail;
	// counting is always exact. 0 means the default (256).
	MaxRaceDetails int
	// ContinueOnUnmatched verifies even when the matcher reported
	// problems. By default, unmatched MPI calls abort verification —
	// the gray rows of Fig. 4.
	ContinueOnUnmatched bool
	// DisableFastPaths forces every properly-synchronized check through
	// the generic MSC search instead of the Table I shape fast paths
	// (cross-validation and custom-model testing).
	DisableFastPaths bool
}

// Race is one data race (Def. 7): a conflicting pair with no
// properly-synchronized order in either direction.
type Race struct {
	X, Y  conflict.Op
	File  string
	FuncX string
	FuncY string
	// ChainX/ChainY are the call chains (outermost first, the operation
	// itself last) — what the paper uses to attribute a race to the
	// application or to a library layer.
	ChainX, ChainY []string
}

// Level classifies where a race originates, from its call chains: the
// outermost frame of the deeper chain tells which layer issued the
// conflicting operation.
func (r Race) Level() string {
	pick := func(chain []string) string {
		if len(chain) <= 1 {
			return "application"
		}
		fr, err := trace.ParseFrame(chain[0])
		if err != nil {
			return "application"
		}
		return fr.Layer.String()
	}
	lx, ly := pick(r.ChainX), pick(r.ChainY)
	if lx == ly {
		return lx
	}
	return lx + "+" + ly
}

// Report is the outcome of verifying one trace against one model.
type Report struct {
	Model     string
	Algorithm string
	Ranks     int
	Records   int

	// ConflictPairs is the step-2 conflict count (model independent).
	ConflictPairs int64
	// RaceCount is the number of data races under the model.
	RaceCount int64
	// Races carries detail for up to MaxRaceDetails races.
	Races []Race
	// Problems are the matcher's unmatched/mismatched MPI calls.
	Problems []match.Problem
	// Verified is false when unmatched MPI calls prevented verification
	// (gray rows in Fig. 4).
	Verified bool
	// ProperlySynchronized is Verified && RaceCount == 0 (green rows).
	ProperlySynchronized bool

	// ChecksPerformed counts properly-synchronized evaluations — the
	// quantity the Fig. 3 pruning reduces.
	ChecksPerformed int64
	GraphNodes      int
	GraphSyncEdges  int
	Timing          Timing
}

// Run performs the whole pipeline (steps 2–4) on a trace for one model.
func Run(tr *trace.Trace, opts Options) (*Report, error) {
	a, err := Analyze(tr, opts.Algo)
	if err != nil {
		return nil, err
	}
	return a.Verify(opts)
}

// Verify checks every conflict of the analysis under opts.Model.
func (a *Analysis) Verify(opts Options) (*Report, error) {
	if err := opts.Model.MSC.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRaceDetails == 0 {
		opts.MaxRaceDetails = 256
	}
	rep := &Report{
		Model:         opts.Model.Name,
		Algorithm:     a.Algorithm.String(),
		Ranks:         a.Trace.NumRanks(),
		Records:       a.Trace.NumRecords(),
		ConflictPairs: a.Conflicts.Pairs,
		Problems:      a.Match.Problems,
		Timing:        a.Timing,
	}
	if a.Graph != nil {
		rep.GraphNodes = a.Graph.Nodes()
		rep.GraphSyncEdges = a.Graph.SyncEdges()
	}
	if len(a.Match.Problems) > 0 && !opts.ContinueOnUnmatched {
		// Unmatched MPI calls: the synchronization order cannot be
		// trusted, so verification is not performed (§V-D).
		rep.Verified = false
		return rep, nil
	}
	start := time.Now()
	v := &verifier{a: a, opts: opts, rep: rep, idx: buildSyncIndex(a.Conflicts, opts.Model)}
	v.verifyGroups()
	rep.Timing.Verification = time.Since(start)
	rep.Verified = true
	rep.ProperlySynchronized = rep.RaceCount == 0
	sort.Slice(rep.Races, func(i, j int) bool {
		if rep.Races[i].X.Ref != rep.Races[j].X.Ref {
			return rep.Races[i].X.Ref.Less(rep.Races[j].X.Ref)
		}
		return rep.Races[i].Y.Ref.Less(rep.Races[j].Y.Ref)
	})
	return rep, nil
}

// syncIndex organizes the trace's synchronization points for MSC lookup:
// for each MSC op class, per (file, rank) sorted sequence lists and a
// per-file global list.
type syncIndex struct {
	// perRank[class][fid][rank] = sorted seqs.
	perRank []map[int]map[int][]int
	// perFile[class][fid] = refs in (rank, seq) order.
	perFile []map[int][]trace.Ref
}

func buildSyncIndex(conf *conflict.Result, model semantics.Model) *syncIndex {
	k := model.MSC.K()
	idx := &syncIndex{
		perRank: make([]map[int]map[int][]int, k),
		perFile: make([]map[int][]trace.Ref, k),
	}
	for c := 0; c < k; c++ {
		idx.perRank[c] = make(map[int]map[int][]int)
		idx.perFile[c] = make(map[int][]trace.Ref)
	}
	for _, sp := range conf.Syncs {
		for c := 0; c < k; c++ {
			if !model.MSC.Ops[c].Contains(sp.Func) {
				continue
			}
			byRank, ok := idx.perRank[c][sp.FID]
			if !ok {
				byRank = make(map[int][]int)
				idx.perRank[c][sp.FID] = byRank
			}
			byRank[sp.Ref.Rank] = append(byRank[sp.Ref.Rank], sp.Ref.Seq)
			idx.perFile[c][sp.FID] = append(idx.perFile[c][sp.FID], sp.Ref)
		}
	}
	// conflict.Result.Syncs is produced rank-major in seq order, so the
	// per-rank lists are already sorted; keep the invariant explicit.
	for c := 0; c < k; c++ {
		for _, byRank := range idx.perRank[c] {
			for _, seqs := range byRank {
				sort.Ints(seqs)
			}
		}
	}
	return idx
}

// firstAfter returns the lowest seq in the sorted list strictly greater
// than s, or -1.
func firstAfter(seqs []int, s int) int {
	i := sort.SearchInts(seqs, s+1)
	if i == len(seqs) {
		return -1
	}
	return seqs[i]
}

// lastBefore returns the highest seq strictly less than s, or -1.
func lastBefore(seqs []int, s int) int {
	i := sort.SearchInts(seqs, s)
	if i == 0 {
		return -1
	}
	return seqs[i-1]
}

type verifier struct {
	a    *Analysis
	opts Options
	rep  *Report
	idx  *syncIndex
}

// ps implements Def. 6: X properly-synchronizes-before Y.
func (v *verifier) ps(x, y *conflict.Op) bool {
	v.rep.ChecksPerformed++
	if !x.Write {
		// Case 1: a read followed in happens-before order by the
		// conflicting (write) operation.
		return v.hb(x.Ref, y.Ref)
	}
	// Case 2: an MSC instance between X and Y.
	return v.mscExists(x, y)
}

func (v *verifier) hb(a, b trace.Ref) bool { return v.a.Oracle.HB(a, b) }

// mscExists searches for an instance of the model's MSC between x and y,
// with every synchronization operation acting on the conflicting file.
func (v *verifier) mscExists(x, y *conflict.Op) bool {
	msc := v.opts.Model.MSC
	k := msc.K()
	if k == 0 {
		// POSIX: -hb->
		return v.edgeOK(msc.Edges[0], x.Ref, y.Ref)
	}
	if v.opts.DisableFastPaths {
		return v.mscDFS(msc, 0, x.Ref, x, y)
	}
	// Fast path for the Table I shapes.
	switch {
	case k == 1 && msc.Edges[0] == semantics.HB && msc.Edges[1] == semantics.HB:
		// -hb-> S -hb-> : any sync op on the file with X hb S hb Y.
		for _, s := range v.idx.perFile[0][x.FID] {
			if v.edgeOK(semantics.HB, x.Ref, s) && v.edgeOK(semantics.HB, s, y.Ref) {
				return true
			}
		}
		return false
	case k == 2 && msc.Edges[0] == semantics.PO && msc.Edges[1] == semantics.HB && msc.Edges[2] == semantics.PO:
		// -po-> S1 -hb-> S2 -po-> : the earliest S1 after X on X's rank
		// and the latest S2 before Y on Y's rank suffice — if ANY
		// (S1', S2') pair works then this extreme pair works too,
		// because S1 -po-> S1' and S2' -po-> S2 extend the hb path.
		s1seqs := v.idx.perRank[0][x.FID][x.Ref.Rank]
		s2seqs := v.idx.perRank[1][y.FID][y.Ref.Rank]
		s1 := firstAfter(s1seqs, x.Ref.Seq)
		s2 := lastBefore(s2seqs, y.Ref.Seq)
		if s1 < 0 || s2 < 0 {
			return false
		}
		return v.edgeOK(semantics.HB,
			trace.Ref{Rank: x.Ref.Rank, Seq: s1},
			trace.Ref{Rank: y.Ref.Rank, Seq: s2})
	}
	// Generic DFS for custom models.
	return v.mscDFS(msc, 0, x.Ref, x, y)
}

// mscDFS anchors MSC element pos (0-based sync-op position) given the
// previously anchored ref.
func (v *verifier) mscDFS(msc semantics.MSC, pos int, prev trace.Ref, x, y *conflict.Op) bool {
	if pos == msc.K() {
		return v.edgeOK(msc.Edges[pos], prev, y.Ref)
	}
	for _, cand := range v.idx.perFile[pos][x.FID] {
		if !v.edgeOK(msc.Edges[pos], prev, cand) {
			continue
		}
		if v.mscDFS(msc, pos+1, cand, x, y) {
			return true
		}
	}
	return false
}

// edgeOK checks one MSC edge requirement between two records.
func (v *verifier) edgeOK(kind semantics.EdgeKind, a, b trace.Ref) bool {
	switch kind {
	case semantics.PO:
		return a.Rank == b.Rank && a.Seq < b.Seq
	default:
		return v.hb(a, b)
	}
}

// verifyGroups walks every conflict group and collects races. Each
// unordered pair appears in two mirrored groups; it is recorded only from
// the group whose X precedes Y in (rank, seq) order, so counting is exact.
func (v *verifier) verifyGroups() {
	ops := v.a.Conflicts.Ops
	for gi := range v.a.Conflicts.Groups {
		g := &v.a.Conflicts.Groups[gi]
		x := &ops[g.X]
		ranks := make([]int, 0, len(g.ByRank))
		for r := range g.ByRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			ys := g.ByRank[r]
			if v.opts.DisablePruning {
				for _, yi := range ys {
					y := &ops[yi]
					if !v.ps(x, y) && !v.ps(y, x) {
						v.recordRace(x, y)
					}
				}
				continue
			}
			v.verifyRun(x, ys)
		}
	}
}

// verifyRun applies the Fig. 3 pruning to one (X, ζ_r) run, generalized to
// a pair of binary searches over the two monotone predicates:
//
//   - X ps Y_i is monotone non-decreasing in i (rules 1 and 3): an MSC to
//     Y_i extends to any later Y_j by program order.
//   - Y_i ps X is monotone non-increasing in i (rules 2 and 4): an MSC
//     from Y_i restricts to any earlier Y_j.
//
// (The paper states rule 4 with Y_n; the sound monotone form anchors the
// negative direction at Y_1 — checking Y_1 clears or dooms the whole run.)
// Each of the paper's four scenarios is the degenerate case where a search
// terminates after one probe; in general the run costs O(log n) checks
// instead of n.
func (v *verifier) verifyRun(x *conflict.Op, ys []int) {
	ops := v.a.Conflicts.Ops
	n := len(ys)
	// iF: first index with X ps Y_i (n when none).
	iF := sort.Search(n, func(i int) bool { return v.ps(x, &ops[ys[i]]) })
	// iG: first index where Y_i ps X stops holding; indices < iG hold.
	iG := sort.Search(n, func(i int) bool { return !v.ps(&ops[ys[i]], x) })
	// Pairs in [iG, iF) are synchronized in neither direction.
	for i := iG; i < iF; i++ {
		v.recordRace(x, &ops[ys[i]])
	}
}

func (v *verifier) recordRace(x, y *conflict.Op) {
	// Mirrored groups: record each unordered pair once.
	if !x.Ref.Less(y.Ref) {
		return
	}
	v.rep.RaceCount++
	if len(v.rep.Races) >= v.opts.MaxRaceDetails {
		return
	}
	rx := v.a.Trace.Record(x.Ref)
	ry := v.a.Trace.Record(y.Ref)
	v.rep.Races = append(v.rep.Races, Race{
		X: *x, Y: *y,
		File:   v.a.Conflicts.PathOf(x.FID),
		FuncX:  rx.Func,
		FuncY:  ry.Func,
		ChainX: fullChain(rx),
		ChainY: fullChain(ry),
	})
}

// fullChain returns the call chain with the operation itself appended.
func fullChain(rec *trace.Record) []string {
	out := make([]string, 0, len(rec.Chain)+1)
	out = append(out, rec.Chain...)
	out = append(out, trace.FormatFrame(rec.Layer, rec.Func, rec.Site))
	return out
}

// VerifyAll verifies the analysis against every given model, reusing the
// shared steps.
func (a *Analysis) VerifyAll(models []semantics.Model, opts Options) ([]*Report, error) {
	out := make([]*Report, 0, len(models))
	for _, m := range models {
		o := opts
		o.Model = m
		rep, err := a.Verify(o)
		if err != nil {
			return nil, fmt.Errorf("verify: model %s: %w", m.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

package verify

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a human-readable report, including call chains for each
// detailed race — the output that helps users attribute a violation to the
// application or a library layer (§IV-D).
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "model:            %s\n", r.Model)
	fmt.Fprintf(w, "algorithm:        %s\n", r.Algorithm)
	if r.Workers > 0 {
		fmt.Fprintf(w, "workers:          %d\n", r.Workers)
	}
	fmt.Fprintf(w, "ranks:            %d\n", r.Ranks)
	fmt.Fprintf(w, "trace records:    %d\n", r.Records)
	if r.GraphNodes > 0 {
		fmt.Fprintf(w, "hb graph:         %d nodes, %d sync edges\n", r.GraphNodes, r.GraphSyncEdges)
	}
	if r.SkeletonNodes > 0 {
		fmt.Fprintf(w, "hb skeleton:      %d nodes, %d levels\n", r.SkeletonNodes, r.SkeletonLevels)
	}
	fmt.Fprintf(w, "conflict pairs:   %d\n", r.ConflictPairs)
	if !r.Verified {
		fmt.Fprintf(w, "result:           VERIFICATION ABORTED — unmatched MPI calls\n")
		for _, p := range r.Problems {
			fmt.Fprintf(w, "  [%s] %s\n", p.Kind, p.Detail)
		}
		return
	}
	if r.ProperlySynchronized {
		fmt.Fprintf(w, "result:           PROPERLY SYNCHRONIZED (no data races)\n")
	} else {
		fmt.Fprintf(w, "result:           %d DATA RACES\n", r.RaceCount)
	}
	fmt.Fprintf(w, "ps checks:        %d\n", r.ChecksPerformed)
	if r.Cache != nil {
		fmt.Fprintf(w, "verdict cache:    %d hits, %d misses (%d dirty chunks)\n",
			r.Cache.Hits, r.Cache.Misses, r.Cache.DirtyChunks)
	}
	if len(r.Races) > 0 {
		fmt.Fprintf(w, "races (%d shown):\n", len(r.Races))
		for i, race := range r.Races {
			fmt.Fprintf(w, "  #%d %s: %s[%d,%d) @%v  vs  %s[%d,%d) @%v  (level: %s)\n",
				i+1, race.File,
				race.FuncX, race.X.Start, race.X.End, race.X.Ref,
				race.FuncY, race.Y.Start, race.Y.End, race.Y.Ref,
				race.Level())
			fmt.Fprintf(w, "      X chain: %s\n", strings.Join(race.ChainX, " -> "))
			fmt.Fprintf(w, "      Y chain: %s\n", strings.Join(race.ChainY, " -> "))
		}
	}
	t := r.Timing
	fmt.Fprintf(w, "timing: read=%v detect=%v match=%v graph=%v vclock=%v verify=%v total=%v\n",
		t.ReadTrace, t.DetectConflicts, t.Match, t.BuildGraph, t.VectorClock, t.Verification, t.Total())
}

// Summary returns a one-line summary suitable for Fig. 4-style tables.
func (r *Report) Summary() string {
	if !r.Verified {
		return fmt.Sprintf("%-8s unmatched MPI calls (%d problems)", r.Model, len(r.Problems))
	}
	if r.ProperlySynchronized {
		return fmt.Sprintf("%-8s properly synchronized (%d conflicts)", r.Model, r.ConflictPairs)
	}
	return fmt.Sprintf("%-8s %d data races (%d conflicts)", r.Model, r.RaceCount, r.ConflictPairs)
}

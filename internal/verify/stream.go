package verify

import (
	"fmt"
	"io"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// StreamAnalyzeOptions tunes AnalyzeStream.
type StreamAnalyzeOptions struct {
	AnalyzeOptions
	// Decode passes trace decoding options through (tolerate mode, limits).
	// Its Obs field is overridden with AnalyzeOptions.Obs so the decode
	// spans join the analysis trace.
	Decode trace.DecodeOptions
	// WindowBytes bounds the decoded records resident at once, exactly as
	// trace.StreamOptions.WindowBytes: 0 means the default window, negative
	// means unbounded.
	WindowBytes int64
	// OnBatch, when set, observes every record batch of the fused pass
	// before the analysis stages consume it — the hook a secondary
	// consumer (the DFG builder) rides to share one bounded decode.
	// AnalyzeStream releases the batch after the analysis stages run, so
	// the callback must neither retain b.Recs nor call b.Release (the
	// pool contract documented on trace.Batch.Release).
	OnBatch func(b *trace.Batch)
}

// AnalyzeStream runs steps 2 and 3 directly off the decoder: conflict
// detection, MPI matching, and the cache digests all consume each record
// batch as it decodes, so peak memory is bounded by the decode window
// instead of the trace size. The resulting Analysis is verification-
// equivalent to AnalyzeOpts(ReadDir(dir)) — same conflicts, same matcher
// output, same oracle — but carries no materialized trace; race details are
// re-decoded on demand and the verdict cache reads the digests collected
// during the pass.
//
// Because decode, detect and match are fused into one pass, the per-stage
// Timing split differs from the materialized path: DetectConflicts and
// Match cover only each stage's cross-rank finish phase, and the fused
// pass's wall time is reported as DetectMatchWall (ReadTrace stays zero).
func AnalyzeStream(dir string, algo Algo, opts StreamAnalyzeOptions) (*Analysis, error) {
	workers := par.Resolve(opts.Workers)
	oc, span := opts.Obs.Start("analyze", obs.Int("workers", workers), obs.String("mode", "stream"))
	span.SetCat("analyze")
	defer span.End()

	dopts := opts.Decode
	dopts.Obs = oc
	s, err := trace.OpenStream(dir, trace.StreamOptions{DecodeOptions: dopts, WindowBytes: opts.WindowBytes})
	if err != nil {
		return nil, fmt.Errorf("verify: read trace: %w", err)
	}
	defer s.Close()

	a := &Analysis{streamDir: dir, streamOpts: opts.Decode}
	analyzeWall := time.Now()
	defer func() { a.Timing.AnalyzeWall = time.Since(analyzeWall) }()

	nranks := s.NumRanks()
	det := conflict.NewStreamDetector(nranks)
	sm := match.NewStreamMatcher(nranks)
	chains := make([]trace.ChainBuilder, nranks)
	unlinkSeqs := make([][]int32, nranks)

	wall := time.Now()
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("verify: read trace: %w", err)
		}
		if opts.OnBatch != nil {
			opts.OnBatch(b)
		}
		det.Feed(b.Rank, b.Recs)
		sm.Feed(b.Rank, b.Recs)
		chains[b.Rank].Add(b.Recs)
		for i := range b.Recs {
			if b.Recs[i].Func == "unlink" && b.Recs[i].Arg(0) != "" {
				unlinkSeqs[b.Rank] = append(unlinkSeqs[b.Rank], int32(b.Start+i))
			}
		}
		b.Release()
	}

	start := time.Now()
	conf, err := det.Finish(conflict.Options{Workers: opts.Workers, Obs: oc})
	a.Timing.DetectConflicts = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("verify: conflict detection: %w", err)
	}
	start = time.Now()
	mres, err := sm.Finish(match.Options{Workers: opts.Workers, Obs: oc})
	a.Timing.Match = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("verify: MPI matching: %w", err)
	}
	a.Timing.DetectMatchWall = time.Since(wall)
	a.Conflicts = conf
	a.Match = mres

	a.counts = append([]int(nil), s.Counts()...)
	a.salvage = s.Stats()
	a.chains = make([][][32]byte, nranks)
	for r := range chains {
		a.chains[r] = chains[r].Chain()
	}
	a.unlinkSeqs = unlinkSeqs

	if err := a.buildOracle(algo, opts.Workers, oc); err != nil {
		return nil, err
	}
	return a, nil
}

package verify

import (
	"bytes"
	"encoding/json"
	"testing"

	"verifyio/internal/obs"
	"verifyio/internal/semantics"
)

// pipelineTelemetry runs the full analyze+verify pipeline on the Fig. 2
// trace with telemetry attached and returns the tracer, registry, and
// exported events.
func pipelineTelemetry(t *testing.T, workers int) (*obs.Tracer, *obs.Registry, []obs.ChromeEvent) {
	t.Helper()
	tr := runTraced(t, 2, fig2Program)
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	oc := obs.Ctx{T: tracer, R: reg}
	a, err := AnalyzeOpts(tr, AlgoVectorClock, AnalyzeOptions{Workers: workers, Obs: oc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.VerifyAll(semantics.All(), Options{Workers: workers, Obs: oc}); err != nil {
		t.Fatal(err)
	}
	return tracer, reg, tracer.Events()
}

// TestPipelineSpansCoverAllStages asserts a telemetry-enabled run emits the
// documented span taxonomy: all five stages, with shard spans at Workers>1.
func TestPipelineSpansCoverAllStages(t *testing.T) {
	_, reg, events := pipelineTelemetry(t, 2)

	counts := map[string]int{}
	for _, e := range events {
		if e.Ph == "X" {
			counts[e.Name]++
		}
	}
	for _, stage := range []string{"analyze", "detect", "match", "build-graph", "vector-clocks", "verify"} {
		if counts[stage] == 0 {
			t.Errorf("no %q span emitted; spans: %v", stage, counts)
		}
	}
	// Shard spans: per-rank replay and scan (2 ranks), per-model verify
	// lanes (4 models).
	if counts["replay"] != 2 {
		t.Errorf("replay shard spans = %d, want 2", counts["replay"])
	}
	if counts["scan"] != 2 {
		t.Errorf("scan shard spans = %d, want 2", counts["scan"])
	}
	if counts["verify"] != 4 {
		t.Errorf("verify model spans = %d, want 4", counts["verify"])
	}
	if err := obs.ValidateEvents(events); err != nil {
		t.Errorf("pipeline trace fails validation: %v", err)
	}

	// The metric registry must cover the documented name families.
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, n := range []string{
		"conflict.ops", "conflict.pairs", "conflict.groups", "conflict.group_fanout",
		"match.edges", "match.collectives",
		"hbgraph.nodes", "hbgraph.sync_edges",
		"hbgraph.skeleton_nodes", "hbgraph.skeleton_levels", "hbgraph.skeleton_max_level_width",
		"hbgraph.vc_arena_bytes", "hbgraph.vc_full_arena_bytes",
		"verify.groups", "verify.checks", "verify.races",
		"verify.hb_queries", "verify.hb_fast_hits", "verify.hb_fallbacks",
		"par.detect-replay.tasks_submitted", "par.match-scan.tasks_completed",
	} {
		if !names[n] {
			t.Errorf("metric %q missing from registry; have %v", n, reg.Names())
		}
	}
}

// TestPipelineStableMetricsDeterministic runs the pipeline twice at the same
// worker count and asserts the stable metric section exports byte-identical
// JSON — the -metrics-out acceptance contract.
func TestPipelineStableMetricsDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var snaps [2]*obs.Snapshot
		for i := range snaps {
			_, reg, _ := pipelineTelemetry(t, workers)
			snaps[i] = reg.Snapshot()
			snaps[i].Volatile = obs.Section{} // timing/scheduling-valued; schema-checked elsewhere
		}
		var bufs [2][]byte
		for i, s := range snaps {
			b, err := json.Marshal(s) // map keys marshal sorted: equal snapshots are byte-equal
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = b
		}
		if !bytes.Equal(bufs[0], bufs[1]) {
			t.Errorf("workers=%d: stable metrics differ across runs:\n%s\nvs\n%s",
				workers, bufs[0], bufs[1])
		}
	}
}

// TestPipelineSpanContentWorkerIndependent asserts the exported span
// content (names, lanes/tids, ids, parents) is identical across runs at the
// same worker count, even though goroutine scheduling varies.
func TestPipelineSpanContentWorkerIndependent(t *testing.T) {
	shape := func() []obs.ChromeEvent {
		_, _, events := pipelineTelemetry(t, 4)
		return events
	}
	want := shape()
	for trial := 0; trial < 3; trial++ {
		got := shape()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Name != w.Name || g.TID != w.TID || g.Ph != w.Ph ||
				g.Args["id"] != w.Args["id"] || g.Args["parent"] != w.Args["parent"] {
				t.Fatalf("trial %d event %d: got %+v want %+v", trial, i, g, w)
			}
		}
	}
}

// TestReportEmbedsMetrics checks Report.Metrics carries the snapshot when a
// registry is attached and stays nil when telemetry is off.
func TestReportEmbedsMetrics(t *testing.T) {
	tr := runTraced(t, 2, fig2Program)
	a, err := Analyze(tr, AlgoVectorClock)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Verify(Options{Model: semantics.POSIXModel()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Error("Report.Metrics set without a registry")
	}

	reg := obs.NewRegistry()
	a2, err := AnalyzeOpts(tr, AlgoVectorClock, AnalyzeOptions{Obs: obs.Ctx{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := a2.Verify(Options{Model: semantics.POSIXModel(), Obs: obs.Ctx{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Metrics == nil {
		t.Fatal("Report.Metrics nil with a registry attached")
	}
	if rep2.Metrics.Stable.Counters["verify.checks"] == 0 {
		t.Error("embedded metrics missing verify.checks")
	}
}

// TestTelemetryDoesNotChangeReport asserts instrumented and plain runs
// produce identical verification outcomes.
func TestTelemetryDoesNotChangeReport(t *testing.T) {
	tr := runTraced(t, 2, fig2Program)
	plain, err := Run(tr, Options{Model: semantics.SessionModel()})
	if err != nil {
		t.Fatal(err)
	}
	oc := obs.Ctx{T: obs.NewTracer(), R: obs.NewRegistry()}
	instr, err := Run(tr, Options{Model: semantics.SessionModel(), Obs: oc})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RaceCount != instr.RaceCount || plain.ChecksPerformed != instr.ChecksPerformed ||
		plain.ConflictPairs != instr.ConflictPairs {
		t.Errorf("telemetry changed the report: plain races=%d checks=%d, instrumented races=%d checks=%d",
			plain.RaceCount, plain.ChecksPerformed, instr.RaceCount, instr.ChecksPerformed)
	}
}

package verify

import (
	"reflect"
	"testing"
	"time"
)

// TestTimingTotalSumsAllStages pins Total() to the Timing struct by
// reflection: every duration field must contribute to the sum except the
// ones in the explicit exclusion set (overlap diagnostics, not stages).
// Adding a stage field without updating Total (or this set) fails here.
func TestTimingTotalSumsAllStages(t *testing.T) {
	excluded := map[string]bool{
		// Wall-clock of the concurrent detect+match phase; reporting-only,
		// would double-count DetectConflicts and Match.
		"DetectMatchWall": true,
	}
	var tm Timing
	v := reflect.ValueOf(&tm).Elem()
	var want time.Duration
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if f.Type != reflect.TypeOf(time.Duration(0)) {
			t.Fatalf("Timing.%s is not a time.Duration; update this test", f.Name)
		}
		d := time.Duration(1) << uint(i) // distinct power of two per field
		v.Field(i).SetInt(int64(d))
		if excluded[f.Name] {
			continue
		}
		want += d
	}
	if got := tm.Total(); got != want {
		t.Errorf("Total() = %d, want %d: a stage field is missing from the sum (or an excluded field leaked in)", got, want)
	}
}

// TestTimingSerialWallEqualsSum checks the serial contract: with Workers=1
// the detect+match wall clock is the sum of the two stages (no overlap), and
// with Workers>1 it never exceeds that sum.
func TestTimingSerialWallEqualsSum(t *testing.T) {
	tr := runTraced(t, 2, fig2Program)
	a, err := AnalyzeOpts(tr, AlgoVectorClock, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Timing.DetectConflicts + a.Timing.Match
	if a.Timing.DetectMatchWall < sum {
		t.Errorf("serial wall %v < detect+match sum %v", a.Timing.DetectMatchWall, sum)
	}
	if a.Timing.Total() == 0 {
		t.Error("Total() is zero after a full analysis")
	}
}

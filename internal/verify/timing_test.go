package verify

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTimingTotalSumsAllStages pins Total() to the Timing struct by
// reflection: every duration field must contribute to the sum except the
// wall-clock overlap fields, which are identified by the "Wall" name suffix.
// Those re-measure elapsed time across stages that run concurrently, so
// adding one to Total would double-report; the suffix convention makes the
// exclusion automatic and this test makes it load-bearing. Adding a stage
// field without updating Total — or naming an overlap field without the
// suffix — fails here.
func TestTimingTotalSumsAllStages(t *testing.T) {
	var tm Timing
	v := reflect.ValueOf(&tm).Elem()
	var want time.Duration
	var sawWall []string
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if f.Type != reflect.TypeOf(time.Duration(0)) {
			t.Fatalf("Timing.%s is not a time.Duration; update this test", f.Name)
		}
		d := time.Duration(1) << uint(i) // distinct power of two per field
		v.Field(i).SetInt(int64(d))
		if strings.HasSuffix(f.Name, "Wall") {
			sawWall = append(sawWall, f.Name)
			continue
		}
		want += d
	}
	if got := tm.Total(); got != want {
		t.Errorf("Total() = %d, want %d: a stage field is missing from the sum (or a Wall-suffixed overlap field leaked in)", got, want)
	}
	// The overlap fields this PR series has introduced; a rename that breaks
	// the suffix convention shows up as a miscount here before it silently
	// double-reports in Total.
	if len(sawWall) != 2 {
		t.Errorf("found %d Wall-suffixed overlap fields %v, want 2 (DetectMatchWall, AnalyzeWall)", len(sawWall), sawWall)
	}
}

// TestTimingSerialWallEqualsSum checks the serial contract: with Workers=1
// the detect+match wall clock is the sum of the two stages (no overlap), and
// with Workers>1 it never exceeds that sum.
func TestTimingSerialWallEqualsSum(t *testing.T) {
	tr := runTraced(t, 2, fig2Program)
	a, err := AnalyzeOpts(tr, AlgoVectorClock, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Timing.DetectConflicts + a.Timing.Match
	if a.Timing.DetectMatchWall < sum {
		t.Errorf("serial wall %v < detect+match sum %v", a.Timing.DetectMatchWall, sum)
	}
	if a.Timing.AnalyzeWall < a.Timing.DetectMatchWall {
		t.Errorf("analyze wall %v < detect+match wall %v", a.Timing.AnalyzeWall, a.Timing.DetectMatchWall)
	}
	if a.Timing.Total() == 0 {
		t.Error("Total() is zero after a full analysis")
	}
}

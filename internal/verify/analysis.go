// Package verify implements step 4 of the VerifyIO workflow: deciding
// whether every detected conflict is properly synchronized (Def. 6) under a
// chosen consistency model, and reporting data races (Def. 7) with full call
// chains.
//
// The expensive, model-independent work — conflict detection, MPI matching,
// happens-before construction — is factored into Analyze, so one Analysis
// can be verified against all four models (how the evaluation produces one
// Fig. 4 row across four columns from a single trace).
package verify

import (
	"fmt"
	"io"
	"sync"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/hbgraph"
	"verifyio/internal/match"
	"verifyio/internal/obs"
	"verifyio/internal/par"
	"verifyio/internal/trace"
)

// Algo selects the happens-before algorithm (§IV-D).
type Algo int

// Algorithms.
const (
	// AlgoAuto picks dynamically from the conflict count and graph size —
	// the paper's future-work "dynamic selection of the verification
	// algorithm".
	AlgoAuto Algo = iota
	AlgoVectorClock
	AlgoReachability
	AlgoTransitiveClosure
	AlgoOnTheFly
	// AlgoSegment precomputes the dense segment×segment reachability matrix
	// of the sync skeleton — O(1) bit-probe queries; falls back to vector
	// clocks when the matrix exceeds its byte budget.
	AlgoSegment
)

var algoNames = map[Algo]string{
	AlgoAuto:              "auto",
	AlgoVectorClock:       "vector-clock",
	AlgoReachability:      "reachability",
	AlgoTransitiveClosure: "transitive-closure",
	AlgoOnTheFly:          "on-the-fly",
	AlgoSegment:           "segment",
}

func (a Algo) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// AlgoByName resolves an algorithm name.
func AlgoByName(name string) (Algo, error) {
	for a, n := range algoNames {
		if n == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("verify: unknown algorithm %q (have auto, vector-clock, reachability, transitive-closure, on-the-fly, segment)", name)
}

// Timing is the per-stage breakdown Table IV reports.
type Timing struct {
	// ReadTrace is set by callers that loaded the trace from storage.
	ReadTrace time.Duration
	// DetectConflicts covers step 2.
	DetectConflicts time.Duration
	// Match covers step 3 (MPI matching).
	Match time.Duration
	// BuildGraph covers happens-before graph construction.
	BuildGraph time.Duration
	// VectorClock covers clock generation (zero for other algorithms).
	VectorClock time.Duration
	// Verification covers the per-model conflict checking.
	Verification time.Duration

	// Wall-clock overlap fields. Every field whose name ends in "Wall"
	// measures elapsed wall time across stages that (can) run concurrently,
	// so it overlaps the per-stage durations above and MUST be excluded
	// from Total — adding one to the sum would double-report. The naming
	// convention is enforced by the reflection pin test in timing_test.go:
	// a new overlap field is excluded automatically by its suffix, and a
	// new per-stage field fails the test until Total is updated.

	// DetectMatchWall is the wall-clock time of the combined
	// detect-conflicts/match phase. With Workers != 1 the two stages run
	// concurrently (they are independent consumers of the trace), so this
	// is less than DetectConflicts + Match; serially it is their sum.
	DetectMatchWall time.Duration
	// AnalyzeWall is the wall-clock time of the whole Analyze call
	// (detect + match + graph build + clock generation), the elapsed time
	// a caller observes for steps 2–3.
	AnalyzeWall time.Duration
}

// Total sums the per-stage durations. Wall-clock overlap fields
// ("Wall"-suffixed) are intentionally excluded: they re-measure spans of
// the same stages and would double-report.
func (t Timing) Total() time.Duration {
	return t.ReadTrace + t.DetectConflicts + t.Match + t.BuildGraph + t.VectorClock + t.Verification
}

// Analysis is the model-independent part of a verification run.
type Analysis struct {
	// Trace is the materialized trace. Nil for analyses produced by
	// AnalyzeStream, which consume records as they decode and keep only
	// the derived state below.
	Trace     *trace.Trace
	Conflicts *conflict.Result
	Match     *match.Result
	Oracle    hbgraph.Oracle
	// Graph is nil when the on-the-fly algorithm was selected.
	Graph *hbgraph.Graph
	// Algorithm is the algorithm actually used (after auto selection).
	Algorithm Algo
	// Timing holds the stage durations accumulated so far.
	Timing Timing

	// counts are the per-rank record counts — the positional facts reports
	// and cache manifests need; always valid even when Trace is nil.
	counts []int
	// salvage is the decode salvage state of the ingested trace (nil or
	// clean for an intact trace). A salvaged analysis runs on partial
	// evidence: the verdict cache salts its epoch with the salvage extents
	// and publishes no incremental manifest (see cache.go).
	salvage *trace.DecodeStats
	// Streaming-only state (Trace == nil): the trace directory and decode
	// options for re-fetching race-detail records, the per-rank block
	// chains and unlink positions digested during the single pass (what
	// cacheArtifacts reads instead of the records).
	streamDir  string
	streamOpts trace.DecodeOptions
	chains     [][][32]byte
	unlinkSeqs [][]int32

	// raceRecs memoizes records re-decoded for race details on streaming
	// analyses; model passes share it.
	raceMu   sync.Mutex
	raceRecs map[trace.Ref]trace.Record

	// cacheArt memoizes the verdict-cache digests (chunk plan, content
	// digests, sync epoch, block chains): they are model independent, so
	// the four passes of VerifyAll share one computation.
	cacheMu  sync.Mutex
	cacheArt *cacheArtifacts

	// plan memoizes the resolved query plan (per-op skeleton coordinates
	// and the segment prober); model independent, shared by every pass.
	planMu sync.Mutex
	plan   *opPlan

	// idxMemo memoizes sync indexes across VerifyAll model passes, keyed by
	// the model's sync-op specification (syncSpecKey).
	idxMu   sync.Mutex
	idxMemo map[string]*syncIndex
}

// NumRanks returns the number of ranks analyzed.
func (a *Analysis) NumRanks() int { return len(a.counts) }

// NumRecords returns the total number of records analyzed.
func (a *Analysis) NumRecords() int {
	n := 0
	for _, c := range a.counts {
		n += c
	}
	return n
}

// Salvage returns the decode salvage state attached to this analysis; nil
// when none was recorded.
func (a *Analysis) Salvage() *trace.DecodeStats { return a.salvage }

// SetSalvage attaches the decode salvage state of the trace this analysis
// was built from. Callers that loaded a trace leniently (tolerate mode)
// should pass the decode stats through so the verdict cache can tell a
// salvaged trace from its repaired original; AnalyzeStream does this
// automatically.
func (a *Analysis) SetSalvage(stats *trace.DecodeStats) { a.salvage = stats }

// salvaged reports whether the analyzed trace lost records to decoding
// damage — the analysis ran on partial evidence.
func (a *Analysis) salvaged() bool {
	return a.salvage != nil && !a.salvage.Clean()
}

// record resolves one record for race-detail materialization. Streaming
// analyses serve it from the prefetched memo (see prefetchRecords); the
// ref must have been prefetched.
func (a *Analysis) record(ref trace.Ref) *trace.Record {
	if a.Trace != nil {
		return a.Trace.Record(ref)
	}
	a.raceMu.Lock()
	rec, ok := a.raceRecs[ref]
	a.raceMu.Unlock()
	if !ok {
		// Contract violation (prefetchRecords not called); fail soft with
		// an empty record rather than panicking inside report assembly.
		return &trace.Record{Rank: ref.Rank, Seq: ref.Seq}
	}
	return &rec
}

// prefetchRecords re-decodes the given records from the stream source into
// the race-detail memo. No-op for materialized analyses. The set is bounded
// by MaxRaceDetails, so the re-decode is a single cheap windowed pass.
func (a *Analysis) prefetchRecords(refs []trace.Ref) error {
	if a.Trace != nil || len(refs) == 0 {
		return nil
	}
	a.raceMu.Lock()
	defer a.raceMu.Unlock()
	need := make(map[trace.Ref]bool)
	for _, ref := range refs {
		if _, ok := a.raceRecs[ref]; !ok {
			need[ref] = true
		}
	}
	if len(need) == 0 {
		return nil
	}
	s, err := trace.OpenStream(a.streamDir, trace.StreamOptions{DecodeOptions: a.streamOpts})
	if err != nil {
		return err
	}
	defer s.Close()
	if a.raceRecs == nil {
		a.raceRecs = make(map[trace.Ref]trace.Record, len(need))
	}
	for len(need) > 0 {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := range b.Recs {
			ref := trace.Ref{Rank: b.Rank, Seq: b.Start + i}
			if need[ref] {
				a.raceRecs[ref] = b.Recs[i]
				delete(need, ref)
			}
		}
		b.Release()
	}
	if len(need) > 0 {
		return fmt.Errorf("verify: %d race records missing from re-decoded trace %s", len(need), a.streamDir)
	}
	return nil
}

// autoThresholds: with few conflicts but a huge graph, building clocks costs
// more than it saves; otherwise vector clocks win (O(1) queries).
const (
	autoFewConflicts = 512
	autoBigGraph     = 200_000
)

// AnalyzeOptions tunes Analyze.
type AnalyzeOptions struct {
	// Workers bounds the goroutines used inside steps 2–3: conflict.Detect
	// shards its per-rank replay and per-file sweep, match.Match its
	// per-rank scan, and with Workers != 1 the two steps additionally run
	// concurrently with each other. 0 means GOMAXPROCS; 1 forces the fully
	// serial path. The analysis is identical at every worker count.
	Workers int
	// Obs carries telemetry sinks through the whole analysis; the zero Ctx
	// disables instrumentation.
	Obs obs.Ctx
}

// Analyze runs steps 2 and 3 with a GOMAXPROCS-wide worker pool; see
// AnalyzeOpts.
func Analyze(tr *trace.Trace, algo Algo) (*Analysis, error) {
	return AnalyzeOpts(tr, algo, AnalyzeOptions{})
}

// AnalyzeOpts runs steps 2 and 3 on the trace and prepares the
// happens-before oracle.
func AnalyzeOpts(tr *trace.Trace, algo Algo, opts AnalyzeOptions) (*Analysis, error) {
	workers := par.Resolve(opts.Workers)
	a := &Analysis{Trace: tr, counts: make([]int, tr.NumRanks())}
	for rank, recs := range tr.Ranks {
		a.counts[rank] = len(recs)
	}
	oc, span := opts.Obs.Start("analyze", obs.Int("workers", workers))
	span.SetCat("analyze")
	defer span.End()
	analyzeWall := time.Now()
	defer func() { a.Timing.AnalyzeWall = time.Since(analyzeWall) }()

	// Steps 2 and 3 read the trace and nothing else, so they can overlap.
	// Each stage times itself; the shared wall clock records the overlap.
	var (
		conf    *conflict.Result
		confErr error
		mres    *match.Result
		mErr    error
	)
	wall := time.Now()
	detect := func() {
		start := time.Now()
		conf, confErr = conflict.DetectOpts(tr, conflict.Options{Workers: opts.Workers, Obs: oc})
		a.Timing.DetectConflicts = time.Since(start)
	}
	doMatch := func() {
		start := time.Now()
		mres, mErr = match.MatchOpts(tr, match.Options{Workers: opts.Workers, Obs: oc})
		a.Timing.Match = time.Since(start)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			doMatch()
		}()
		detect()
		wg.Wait()
	} else {
		detect()
		doMatch()
	}
	a.Timing.DetectMatchWall = time.Since(wall)
	if confErr != nil {
		return nil, fmt.Errorf("verify: conflict detection: %w", confErr)
	}
	if mErr != nil {
		return nil, fmt.Errorf("verify: MPI matching: %w", mErr)
	}
	a.Conflicts = conf
	a.Match = mres
	if err := a.buildOracle(algo, opts.Workers, oc); err != nil {
		return nil, err
	}
	return a, nil
}

// buildOracle runs auto algorithm selection and happens-before construction
// for an analysis whose Conflicts, Match and counts are already set — the
// shared tail of AnalyzeOpts and AnalyzeStream. Only positional facts (the
// per-rank counts) are consumed, never the records.
func (a *Analysis) buildOracle(algo Algo, workers int, oc obs.Ctx) error {
	start := time.Now()
	if algo == AlgoAuto {
		if a.Conflicts.Pairs < autoFewConflicts && a.NumRecords() > autoBigGraph {
			algo = AlgoOnTheFly
		} else {
			// Graph-backed default: the segment-reachability matrix gives
			// O(1) bit-probe queries; buildOracle degrades to vector clocks
			// if the matrix exceeds its byte budget.
			algo = AlgoSegment
		}
	}
	a.Algorithm = algo

	_, buildSpan := oc.Start("build-graph", obs.String("algorithm", algo.String()))
	if algo == AlgoOnTheFly {
		a.Oracle = hbgraph.NewOnTheFlyCounts(a.counts, a.Match.Edges)
		a.Timing.BuildGraph = time.Since(start)
		buildSpan.End()
		return nil
	}

	g, err := hbgraph.BuildCounts(a.counts, a.Match.Edges)
	if err != nil {
		buildSpan.End()
		return fmt.Errorf("verify: happens-before graph: %w", err)
	}
	a.Graph = g
	a.Timing.BuildGraph = time.Since(start)
	buildSpan.AddAttr(obs.Int("nodes", g.Nodes()), obs.Int("sync_edges", g.SyncEdges()),
		obs.Int("skeleton_nodes", g.SkeletonNodes()))
	buildSpan.End()
	if r := oc.R; r != nil {
		r.Gauge("hbgraph.nodes").Set(int64(g.Nodes()))
		r.Gauge("hbgraph.sync_edges").Set(int64(g.SyncEdges()))
		r.Gauge("hbgraph.skeleton_nodes").Set(int64(g.SkeletonNodes()))
		r.Gauge("hbgraph.skeleton_levels").Set(int64(g.SkeletonLevels()))
		r.Gauge("hbgraph.skeleton_max_level_width").Set(int64(g.SkeletonMaxLevelWidth()))
	}

	start = time.Now()
	buildVC := func() error {
		_, vcSpan := oc.Start("vector-clocks",
			obs.Int("skeleton_nodes", g.SkeletonNodes()),
			obs.Int("levels", g.SkeletonLevels()),
			obs.Int("max_level_width", g.SkeletonMaxLevelWidth()))
		vc, err := g.VectorClocksOpts(hbgraph.VCOptions{Workers: workers, Obs: oc})
		vcSpan.End()
		if err != nil {
			return fmt.Errorf("verify: vector clocks: %w", err)
		}
		a.Oracle = vc
		a.Timing.VectorClock = time.Since(start)
		return nil
	}
	switch algo {
	case AlgoVectorClock:
		return buildVC()
	case AlgoReachability:
		a.Oracle = g.Reachability()
	case AlgoTransitiveClosure:
		tc, err := g.TransitiveClosure()
		if err != nil {
			// Graph too large for the closure: degrade to BFS
			// reachability rather than failing the run.
			a.Oracle = g.Reachability()
			a.Algorithm = AlgoReachability
		} else {
			a.Oracle = tc
		}
	case AlgoSegment:
		_, segSpan := oc.Start("seg-reach",
			obs.Int("skeleton_nodes", g.SkeletonNodes()),
			obs.Int("levels", g.SkeletonLevels()))
		seg, err := g.SegReachability(hbgraph.SegOptions{Workers: workers, Obs: oc})
		segSpan.End()
		if err != nil {
			// Matrix over its byte budget (or skeleton not orderable):
			// degrade to vector clocks rather than failing the run —
			// mirroring the transitive-closure fallback above. A cyclic
			// skeleton still fails, in the clock pass.
			a.Algorithm = AlgoVectorClock
			return buildVC()
		}
		a.Oracle = seg
	default:
		return fmt.Errorf("verify: unsupported algorithm %v", algo)
	}
	return nil
}

// Package verify implements step 4 of the VerifyIO workflow: deciding
// whether every detected conflict is properly synchronized (Def. 6) under a
// chosen consistency model, and reporting data races (Def. 7) with full call
// chains.
//
// The expensive, model-independent work — conflict detection, MPI matching,
// happens-before construction — is factored into Analyze, so one Analysis
// can be verified against all four models (how the evaluation produces one
// Fig. 4 row across four columns from a single trace).
package verify

import (
	"fmt"
	"time"

	"verifyio/internal/conflict"
	"verifyio/internal/hbgraph"
	"verifyio/internal/match"
	"verifyio/internal/trace"
)

// Algo selects the happens-before algorithm (§IV-D).
type Algo int

// Algorithms.
const (
	// AlgoAuto picks dynamically from the conflict count and graph size —
	// the paper's future-work "dynamic selection of the verification
	// algorithm".
	AlgoAuto Algo = iota
	AlgoVectorClock
	AlgoReachability
	AlgoTransitiveClosure
	AlgoOnTheFly
)

var algoNames = map[Algo]string{
	AlgoAuto:              "auto",
	AlgoVectorClock:       "vector-clock",
	AlgoReachability:      "reachability",
	AlgoTransitiveClosure: "transitive-closure",
	AlgoOnTheFly:          "on-the-fly",
}

func (a Algo) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// AlgoByName resolves an algorithm name.
func AlgoByName(name string) (Algo, error) {
	for a, n := range algoNames {
		if n == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("verify: unknown algorithm %q (have auto, vector-clock, reachability, transitive-closure, on-the-fly)", name)
}

// Timing is the per-stage breakdown Table IV reports.
type Timing struct {
	// ReadTrace is set by callers that loaded the trace from storage.
	ReadTrace time.Duration
	// DetectConflicts covers step 2.
	DetectConflicts time.Duration
	// BuildGraph covers MPI matching plus happens-before construction.
	BuildGraph time.Duration
	// VectorClock covers clock generation (zero for other algorithms).
	VectorClock time.Duration
	// Verification covers the per-model conflict checking.
	Verification time.Duration
}

// Total sums all stages.
func (t Timing) Total() time.Duration {
	return t.ReadTrace + t.DetectConflicts + t.BuildGraph + t.VectorClock + t.Verification
}

// Analysis is the model-independent part of a verification run.
type Analysis struct {
	Trace     *trace.Trace
	Conflicts *conflict.Result
	Match     *match.Result
	Oracle    hbgraph.Oracle
	// Graph is nil when the on-the-fly algorithm was selected.
	Graph *hbgraph.Graph
	// Algorithm is the algorithm actually used (after auto selection).
	Algorithm Algo
	// Timing holds the stage durations accumulated so far.
	Timing Timing
}

// autoThresholds: with few conflicts but a huge graph, building clocks costs
// more than it saves; otherwise vector clocks win (O(1) queries).
const (
	autoFewConflicts = 512
	autoBigGraph     = 200_000
)

// Analyze runs steps 2 and 3 on the trace and prepares the happens-before
// oracle.
func Analyze(tr *trace.Trace, algo Algo) (*Analysis, error) {
	a := &Analysis{Trace: tr}

	start := time.Now()
	conf, err := conflict.Detect(tr)
	if err != nil {
		return nil, fmt.Errorf("verify: conflict detection: %w", err)
	}
	a.Conflicts = conf
	a.Timing.DetectConflicts = time.Since(start)

	start = time.Now()
	mres, err := match.Match(tr)
	if err != nil {
		return nil, fmt.Errorf("verify: MPI matching: %w", err)
	}
	a.Match = mres

	if algo == AlgoAuto {
		if conf.Pairs < autoFewConflicts && tr.NumRecords() > autoBigGraph {
			algo = AlgoOnTheFly
		} else {
			algo = AlgoVectorClock
		}
	}
	a.Algorithm = algo

	if algo == AlgoOnTheFly {
		a.Oracle = hbgraph.NewOnTheFly(tr, mres.Edges)
		a.Timing.BuildGraph = time.Since(start)
		return a, nil
	}

	g, err := hbgraph.Build(tr, mres.Edges)
	if err != nil {
		return nil, fmt.Errorf("verify: happens-before graph: %w", err)
	}
	a.Graph = g
	a.Timing.BuildGraph = time.Since(start)

	start = time.Now()
	switch algo {
	case AlgoVectorClock:
		vc, err := g.VectorClocks()
		if err != nil {
			return nil, fmt.Errorf("verify: vector clocks: %w", err)
		}
		a.Oracle = vc
		a.Timing.VectorClock = time.Since(start)
	case AlgoReachability:
		a.Oracle = g.Reachability()
	case AlgoTransitiveClosure:
		tc, err := g.TransitiveClosure()
		if err != nil {
			// Graph too large for the closure: degrade to BFS
			// reachability rather than failing the run.
			a.Oracle = g.Reachability()
			a.Algorithm = AlgoReachability
		} else {
			a.Oracle = tc
		}
	default:
		return nil, fmt.Errorf("verify: unsupported algorithm %v", algo)
	}
	return a, nil
}
